// Conflict scheduling: jobs that share a resource cannot run in the same
// time slot. Assigning slots is vertex colouring of the conflict graph
// (Algorithm 5, (1+o(1))∆ slots in O(1) rounds); picking a largest-possible
// set of jobs to run *right now* is a maximal independent set (Algorithm 6);
// and pairing up jobs that can exchange resources directly is edge
// colouring.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	const (
		jobs = 1500
		c    = 0.35
		mu   = 0.2
		seed = 5
	)
	r := rng.New(seed)
	conflicts := graph.Density(jobs, c, r)
	fmt.Printf("conflict graph: %d jobs, %d conflicts, max conflicts per job ∆=%d\n",
		conflicts.N, conflicts.M(), conflicts.MaxDegree())

	// Time slots via vertex colouring.
	col, err := core.VertexColouring(conflicts, core.Params{Mu: mu, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if !graph.IsProperVertexColouring(conflicts, col.Colours) {
		log.Fatal("conflicting jobs share a slot")
	}
	fmt.Printf("schedule: %d time slots (vs ∆+1 = %d sequential), computed in %d rounds on %d machines\n",
		col.NumColours, conflicts.MaxDegree()+1, col.Metrics.Rounds, col.Metrics.Machines)

	// Immediate batch via MIS.
	mis, err := core.MISFast(conflicts, core.Params{Mu: mu, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(conflicts, mis.Set) {
		log.Fatal("batch not maximal/independent")
	}
	fmt.Printf("first batch: %d conflict-free jobs (maximal), %d rounds\n",
		len(mis.Set), mis.Metrics.Rounds)

	// Pairwise handoff sessions via edge colouring: each colour class is a
	// set of resource handoffs that can happen simultaneously.
	ecol, err := core.EdgeColouring(conflicts, core.Params{Mu: mu, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if !graph.IsProperEdgeColouring(conflicts, ecol.Colours) {
		log.Fatal("handoff sessions clash")
	}
	fmt.Printf("handoffs: %d sessions for %d resource conflicts (Vizing bound ∆+1 = %d)\n",
		ecol.NumColours, conflicts.M(), conflicts.MaxDegree()+1)
}
