// Social network analysis: on a heavy-tailed friendship graph (preferential
// attachment — the workload Leskovec et al.'s densification observations
// motivate), find a maximal independent set of "spokespeople" (no two are
// friends), a maximal clique (a tight community seed), and a maximum-weight
// matching of users into collaboration pairs. This exercises the
// hungry-greedy technique where it is most interesting: a few vertices have
// enormous degree.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	const (
		users = 3000
		mu    = 0.2
		seed  = 13
	)
	r := rng.New(seed)
	g := graph.PreferentialAttachment(users, 6, r)
	g.AssignUniformWeights(r, 1, 10) // affinity scores
	deg := g.Degrees()
	maxDeg, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("network: %d users, %d friendships; avg degree %.1f, max %d (heavy tail)\n",
		g.N, g.M(), float64(sum)/float64(g.N), maxDeg)

	// Spokespeople: maximal independent set via hungry-greedy (Algorithm 6).
	mis, err := core.MISFast(g, core.Params{Mu: mu, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(g, mis.Set) {
		log.Fatal("spokespeople set invalid")
	}
	fmt.Printf("spokespeople: %d users, no two friends (hungry-greedy, %d sampling iterations, %d rounds)\n",
		len(mis.Set), mis.Iterations, mis.Metrics.Rounds)

	// Community seed: maximal clique without ever building the complement
	// graph (Appendix B's relabeling trick).
	clq, err := core.MaximalClique(g, core.Params{Mu: mu, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if !graph.IsMaximalClique(g, clq.Clique) {
		log.Fatal("community seed invalid")
	}
	fmt.Printf("community seed: clique of %d mutually-connected users (%d rounds; complement never stored)\n",
		len(clq.Clique), clq.Metrics.Rounds)

	// Collaboration pairs: 2-approx maximum affinity matching.
	match, err := core.RLRMatching(g, core.Params{Mu: mu, Seed: seed}, core.MatchingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !graph.IsMatching(g, match.Edges) {
		log.Fatal("pairing invalid")
	}
	fmt.Printf("collaboration pairs: %d pairs, total affinity %.1f (2-approx, %d rounds)\n",
		len(match.Edges), match.Weight, match.Metrics.Rounds)

	total := mis.Metrics.WordsSent + clq.Metrics.WordsSent + match.Metrics.WordsSent
	fmt.Printf("total communication across the three analyses: %d words on %d-machine clusters\n",
		total, match.Metrics.Machines)
}
