// Sensor coverage: choose a minimum-cost subset of candidate sensors so
// that every region of interest is monitored. This is weighted set cover;
// the example contrasts the paper's two MapReduce algorithms —
//
//   - Algorithm 1 (randomized local ratio, f-approximation): best when each
//     region is coverable by few sensors (small f, the n ≪ m regime), and
//   - Algorithm 3 (hungry-greedy, (1+ε)·ln∆): best when sensors are small
//     relative to the fleet (the m ≪ n regime),
//
// against the sequential greedy baseline.
//
//	go run ./examples/sensorcover
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
)

func main() {
	const seed = 11
	r := rng.New(seed)

	// Regime 1: 80 sensor types, 6000 regions, each region reachable by at
	// most 3 sensors (f = 3). Algorithm 1 gives an f-approximation with a
	// certified lower bound.
	inst1 := setcover.RandomFrequency(80, 6000, 3, 10, r.Split())
	res1, err := core.RLRSetCover(inst1, core.Params{Mu: 0.25, Seed: seed}, core.CoverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regime n<<m: f=%d, cover of %d sensors, cost %.2f\n",
		inst1.MaxFrequency(), len(res1.Cover), res1.Weight)
	fmt.Printf("  certified: cost <= %d x OPT (lower bound %.2f, measured ratio %.3f)\n",
		inst1.MaxFrequency(), res1.LowerBound, res1.Weight/res1.LowerBound)
	fmt.Printf("  cluster: %d machines, %d rounds\n", res1.Metrics.Machines, res1.Metrics.Rounds)

	// Regime 2: 5000 candidate sensors over 300 regions, each covering at
	// most 15 regions (∆ = 15). Algorithm 3 matches the greedy H_∆ quality.
	inst2 := setcover.RandomSized(5000, 300, 15, 10, r.Split())
	res2, err := core.HGSetCover(inst2, core.Params{Mu: 0.3, Seed: seed}, core.HGCoverOptions{Eps: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	greedy := inst2.Weight(seq.GreedySetCover(inst2, 0))
	fmt.Printf("regime m<<n: ∆=%d, cover of %d sensors, cost %.2f\n",
		inst2.MaxSetSize(), len(res2.Cover), res2.Weight)
	fmt.Printf("  vs sequential greedy %.2f (MR/greedy = %.3f), %d rounds on %d machines\n",
		greedy, res2.Weight/greedy, res2.Metrics.Rounds, res2.Metrics.Machines)

	if !inst1.IsCover(res1.Cover) || !inst2.IsCover(res2.Cover) {
		log.Fatal("coverage hole!")
	}
	fmt.Println("all regions covered in both regimes")
}
