// Quickstart: run the paper's headline algorithm — the randomized local
// ratio 2-approximation for maximum weight matching (Algorithm 4) — on a
// random dense graph, and inspect the MapReduce costs the simulator
// measured.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
)

func main() {
	// A graph with n vertices and m = n^{1+c} edges: the standard workload
	// of the MapReduce model (Leskovec et al. densification).
	const (
		n    = 2000
		c    = 0.3 // m = n^{1.3}
		mu   = 0.2 // each machine holds ~n^{1.2} words
		seed = 42
	)
	r := rng.New(seed)
	g := graph.Density(n, c, r)
	g.AssignUniformWeights(r, 1, 100)
	fmt.Printf("graph: n=%d m=%d (c=%.2f), total weight %.0f\n",
		g.N, g.M(), g.DensityExponent(), g.TotalWeight())

	// Run Algorithm 4. Params.Seed makes the run exactly reproducible.
	res, err := core.RLRMatching(g, core.Params{Mu: mu, Seed: seed}, core.MatchingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching: %d edges, weight %.2f (valid: %v)\n",
		len(res.Edges), res.Weight, graph.IsMatching(g, res.Edges))

	// Compare against the sequential Paz–Schwartzman local ratio baseline
	// (also a 2-approximation) — the distributed run should be comparable.
	ps := graph.MatchingWeight(g, seq.LocalRatioMatching(g))
	fmt.Printf("sequential local ratio weight: %.2f (MR/seq = %.3f)\n", ps, res.Weight/ps)

	// The costs the paper's Figure 1 bounds: rounds and space per machine.
	m := res.Metrics
	fmt.Printf("cluster: %d machines, %d MapReduce rounds (%d sampling iterations)\n",
		m.Machines, m.Rounds, res.Iterations)
	fmt.Printf("space: max %d words per machine (cap violations: %d); %d words sent\n",
		m.MaxSpace, m.Violations, m.WordsSent)
}
