// Ad network allocation: advertisers bid on impression slots; each
// advertiser has a campaign capacity (how many slots it may win) and each
// slot shows at most one ad. That is exactly maximum weight b-matching on a
// bipartite graph — the Appendix D algorithm — with plain matching (b = 1)
// as the special case of exclusive sponsorships.
//
//	go run ./examples/adnetwork
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	const (
		advertisers = 300
		slots       = 1200
		bids        = 12000 // advertiser-slot pairs with a bid
		mu          = 0.2
		seed        = 7
	)
	r := rng.New(seed)
	// Left vertices 0..advertisers-1, right vertices advertisers..(+slots).
	g := graph.RandomBipartite(advertisers, slots, bids, r)
	// Bids: heavy-tailed-ish by squaring a uniform.
	for i := range g.Edges {
		u := r.Float64()
		g.Edges[i].W = 1 + 99*u*u
	}
	g.Invalidate() // direct weight writes bypass the CSR weight slab
	fmt.Printf("ad network: %d advertisers, %d slots, %d bids, total bid value %.0f\n",
		advertisers, slots, bids, g.TotalWeight())

	// Capacity: each advertiser may win up to 4 slots; each slot shows one ad.
	capacity := func(v int) int {
		if v < advertisers {
			return 4
		}
		return 1
	}
	res, err := core.BMatching(g, core.Params{Mu: mu, Seed: seed},
		core.BMatchingOptions{B: capacity, Eps: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	if !graph.IsBMatching(g, res.Edges, capacity) {
		log.Fatal("allocation violates capacities")
	}
	fmt.Printf("allocation: %d bids won, revenue %.2f (ratio bound 3-2/b+2ε = %.2f)\n",
		len(res.Edges), res.Weight, 3-2.0/4+2*0.2)

	// Exclusive sponsorship variant: one slot per advertiser (b = 1) via
	// the dedicated matching algorithm.
	m1, err := core.RLRMatching(g, core.Params{Mu: mu, Seed: seed}, core.MatchingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exclusive (matching): %d pairs, revenue %.2f\n", len(m1.Edges), m1.Weight)

	fmt.Printf("cluster costs: b-matching %d rounds / %d words; matching %d rounds / %d words\n",
		res.Metrics.Rounds, res.Metrics.WordsSent, m1.Metrics.Rounds, m1.Metrics.WordsSent)
}
