// Package repro is a full reproduction of "Greedy and Local Ratio
// Algorithms in the MapReduce Model" (Harvey, Liaw, Liu — SPAA 2018,
// arXiv:1806.06421) as a Go library.
//
// The library lives in internal packages:
//
//   - internal/mpc      — the MapReduce/MPC cluster simulator (sparse
//     round scheduling that charges each round O(active machines) via the
//     Arm/ArmAll contract, per-machine space accounting over incremental
//     aggregates, broadcast trees, the pluggable round executor — a
//     persistent chunked worker pool in parallel mode — the columnar
//     zero-copy message plane that carries round traffic allocation-free,
//     and sharded execution: clusters partitioned across K shards over a
//     pluggable transport — in-memory zero-copy or framed CRC-checked
//     TCP — with results, metrics, and traces bit-identical to unsharded
//     runs, and fault tolerance on top: retrying dials with seeded
//     backoff, heartbeat failure detection, a round-checkpointed wire log
//     feeding deterministic replay recovery of crashed workers, and a
//     seeded chaos-injection wrapper for testing it all);
//   - internal/core     — the paper's eight MapReduce algorithms plus the
//     Luby and filtering baselines, dispatched through the algorithm
//     registry (name → runner + parameter schema);
//   - internal/seq      — sequential local ratio / greedy algorithms and
//     exact test oracles;
//   - internal/graph    — the CSR-native graph kernel (contiguous int32
//     neighbour/weight/edge-id slabs, parallel deterministic Build and
//     generators), solution validators, and the out-of-core binary
//     container (checksummed CSR sections opened zero-copy via mmap in
//     O(header) time, built streaming by an external sort byte-identical
//     to the in-heap path);
//   - internal/setcover — weighted set cover instances and generators;
//   - internal/bench    — the Figure 1 reproduction experiments;
//   - internal/service  — the concurrent job-serving subsystem (instance
//     cache keyed by spec hash, single-flight request batcher, bounded
//     worker pool, LRU result store, HTTP JSON API, metrics);
//   - internal/ledger   — the durable job ledger: a Merkle-chained,
//     CRC-framed, fsynced append-only log behind one Store interface
//     (in-memory and segmented-disk backends), with torn-tail recovery
//     after kill -9, full-chain verification, and a non-blocking write
//     batcher that degrades to memory-only on store failure — ledger IO
//     never fails a job;
//   - internal/rng      — deterministic splittable randomness.
//
// Entry points: cmd/mrbench (regenerate every Figure 1 row), cmd/mrrun (run
// one algorithm), cmd/mrserve (the job-serving daemon, degrading sharded
// jobs to bit-identical unsharded execution on transport failure, with
// -ledger persisting every completed job so a restarted daemon serves
// pre-crash results bit-identically without re-execution),
// cmd/mrshard (one job across K cooperating processes over the TCP
// transport, results byte-identical across the fleet — workers killed
// mid-job are respawned and recovered by deterministic replay),
// cmd/mrverify (offline ledger audit: verify the Merkle chain, re-execute
// ledgered jobs, prove the chained hashes reproduce),
// examples/ (runnable scenarios), and the
// root-level benchmarks in bench_test.go (one per Figure 1 row, plus the
// service throughput and sharded-round pairs). See README.md, DESIGN.md
// and EXPERIMENTS.md.
package repro
