package setcover

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text serialization for set cover instances, mirroring internal/graph's
// format:
//
//	setcover <n> <m>
//	s <weight> <elem> <elem> ...
//	...
//
// One "s" line per set, in index order; weights round-trip exactly.

// Encode writes the instance to w.
func Encode(w io.Writer, in *Instance) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "setcover %d %d\n", in.NumSets(), in.NumElements); err != nil {
		return err
	}
	for i, s := range in.Sets {
		if _, err := fmt.Fprintf(bw, "s %s", strconv.FormatFloat(in.Weights[i], 'g', -1, 64)); err != nil {
			return err
		}
		for _, e := range s {
			if _, err := fmt.Fprintf(bw, " %d", e); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads an instance in the format produced by Encode and validates
// it.
func Decode(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("setcover: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "setcover %d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("setcover: bad header %q: %v", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("setcover: negative dimensions")
	}
	in := &Instance{NumElements: m}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != "s" {
			return nil, fmt.Errorf("setcover: bad set line %q", line)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("setcover: bad weight %q", fields[1])
		}
		var elems []int
		for _, f := range fields[2:] {
			e, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("setcover: bad element %q", f)
			}
			elems = append(elems, e)
		}
		in.Sets = append(in.Sets, elems)
		in.Weights = append(in.Weights, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(in.Sets) != n {
		return nil, fmt.Errorf("setcover: header promises %d sets, found %d", n, len(in.Sets))
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
