package setcover

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestInstanceEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(130)
	in := RandomFrequency(15, 60, 3, 7, r)
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumSets() != in.NumSets() || out.NumElements != in.NumElements {
		t.Fatal("dimensions changed")
	}
	for i := range in.Sets {
		if in.Weights[i] != out.Weights[i] {
			t.Fatalf("weight %d changed: %v -> %v", i, in.Weights[i], out.Weights[i])
		}
		if len(in.Sets[i]) != len(out.Sets[i]) {
			t.Fatalf("set %d size changed", i)
		}
		for j := range in.Sets[i] {
			if in.Sets[i][j] != out.Sets[i][j] {
				t.Fatalf("set %d element %d changed", i, j)
			}
		}
	}
}

func TestInstanceDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "cover 2 2\n",
		"neg dims":    "setcover -1 2\n",
		"bad line":    "setcover 1 2\nx 1 0 1\n",
		"bad weight":  "setcover 1 2\ns zz 0 1\n",
		"bad elem":    "setcover 1 2\ns 1 a\n",
		"count miss":  "setcover 2 1\ns 1 0\n",
		"zero weight": "setcover 1 1\ns 0 0\n",
		"uncovered":   "setcover 1 2\ns 1 0\n",
		"out of rng":  "setcover 1 1\ns 1 5\n",
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestInstanceDecodeComments(t *testing.T) {
	in := "setcover 2 2\n# comment\ns 1.5 0\n\ns 2.5 0 1\n"
	out, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumSets() != 2 || out.Weights[1] != 2.5 {
		t.Fatalf("decoded %+v", out)
	}
}
