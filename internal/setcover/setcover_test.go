package setcover

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func tiny() *Instance {
	// Sets over elements {0,1,2,3}:
	//   S0 = {0,1} w=1,  S1 = {1,2} w=1,  S2 = {2,3} w=1,  S3 = {0,1,2,3} w=2.5
	return &Instance{
		NumElements: 4,
		Sets:        [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 1, 2, 3}},
		Weights:     []float64{1, 1, 1, 2.5},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := tiny()
	bad.Weights[0] = 0
	if bad.Validate() == nil {
		t.Fatal("zero weight accepted")
	}
	bad2 := tiny()
	bad2.Sets[0] = []int{0, 9}
	if bad2.Validate() == nil {
		t.Fatal("out of range element accepted")
	}
	bad3 := tiny()
	bad3.NumElements = 5
	if bad3.Validate() == nil {
		t.Fatal("uncovered element accepted")
	}
	bad4 := tiny()
	bad4.Weights = bad4.Weights[:2]
	if bad4.Validate() == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDualAndFrequency(t *testing.T) {
	in := tiny()
	d := in.Dual()
	if len(d) != 4 {
		t.Fatal("dual length")
	}
	// Element 1 is in S0, S1, S3.
	if len(d[1]) != 3 {
		t.Fatalf("freq(1) = %d", len(d[1]))
	}
	if in.MaxFrequency() != 3 {
		t.Fatalf("f = %d", in.MaxFrequency())
	}
	if in.MaxSetSize() != 4 {
		t.Fatalf("delta = %d", in.MaxSetSize())
	}
	if in.TotalSize() != 2+2+2+4 {
		t.Fatalf("total size = %d", in.TotalSize())
	}
}

func TestIsCoverAndWeight(t *testing.T) {
	in := tiny()
	if !in.IsCover([]int{3}) {
		t.Fatal("S3 covers everything")
	}
	if !in.IsCover([]int{0, 2}) {
		t.Fatal("S0+S2 covers")
	}
	if in.IsCover([]int{0, 1}) {
		t.Fatal("S0+S1 misses 3")
	}
	if in.IsCover([]int{9}) {
		t.Fatal("invalid index")
	}
	if w := in.Weight([]int{0, 2, 0}); w != 2 {
		t.Fatalf("weight with dup = %v", w)
	}
}

func TestWeightSpread(t *testing.T) {
	in := tiny()
	if s := in.WeightSpread(); s != 2.5 {
		t.Fatalf("spread %v", s)
	}
	empty := &Instance{}
	if empty.WeightSpread() != 1 {
		t.Fatal("empty spread")
	}
}

func TestClone(t *testing.T) {
	in := tiny()
	cp := in.Clone()
	cp.Sets[0][0] = 99
	cp.Weights[0] = 99
	if in.Sets[0][0] == 99 || in.Weights[0] == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestFromVertexCover(t *testing.T) {
	g := graph.Path(4) // edges (0,1),(1,2),(2,3)
	w := []float64{1, 2, 3, 4}
	in := FromVertexCover(g, w)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumSets() != 4 || in.NumElements != 3 {
		t.Fatal("dimensions")
	}
	if f := in.MaxFrequency(); f != 2 {
		t.Fatalf("vertex cover must have f=2, got %d", f)
	}
	// Vertex 1's set must contain edges 0 and 1.
	if len(in.Sets[1]) != 2 {
		t.Fatalf("set for vertex 1: %v", in.Sets[1])
	}
}

func TestRandomFrequency(t *testing.T) {
	r := rng.New(1)
	in := RandomFrequency(20, 500, 3, 10, r)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if f := in.MaxFrequency(); f > 3 || f < 1 {
		t.Fatalf("f = %d, want in [1,3]", f)
	}
	if in.NumSets() != 20 || in.NumElements != 500 {
		t.Fatal("dimensions")
	}
	for _, w := range in.Weights {
		if w < 1 || w >= 10 {
			t.Fatalf("weight %v", w)
		}
	}
}

func TestRandomSized(t *testing.T) {
	r := rng.New(2)
	in := RandomSized(200, 50, 8, 5, r)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := in.MaxSetSize(); d > 9 { // delta + at most slack from coverage fixes
		t.Fatalf("delta = %d, want <= 9", d)
	}
}

func TestRandomSizedDeltaClamp(t *testing.T) {
	r := rng.New(3)
	in := RandomSized(10, 3, 100, 2, r) // delta > m gets clamped
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.MaxSetSize() > 3 {
		t.Fatal("delta clamp failed")
	}
}

func TestQuickRandomFrequencyAlwaysCovered(t *testing.T) {
	r := rng.New(4)
	f := func(a, b, c uint8) bool {
		n := int(a%20) + 1
		m := int(b%100) + 1
		fq := int(c)%n + 1
		in := RandomFrequency(n, m, fq, 4, r)
		return in.Validate() == nil && in.MaxFrequency() <= fq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomSizedAlwaysCovered(t *testing.T) {
	r := rng.New(5)
	f := func(a, b, c uint8) bool {
		n := int(a%30) + 1
		m := int(b%40) + 1
		d := int(c%10) + 1
		in := RandomSized(n, m, d, 3, r)
		return in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
