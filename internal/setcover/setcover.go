// Package setcover provides weighted set cover instances, generators, and
// validators.
//
// An instance has n sets S_1..S_n over a ground set [m] with positive weights.
// Following the paper's notation: f is the largest frequency of any element
// (the number of sets containing it) and ∆ is the size of the largest set.
// Theorem 2.4 (the f-approximation) targets the regime n ≪ m; Theorem 4.6
// (the (1+ε)ln∆-approximation) targets m ≪ n.
package setcover

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Instance is a weighted set cover instance. Sets[i] lists the elements of
// set i in ascending order; Weights[i] > 0 is its weight.
type Instance struct {
	NumElements int
	Sets        [][]int
	Weights     []float64

	dual [][]int // element -> sets containing it, built lazily
}

// NumSets returns n, the number of sets.
func (in *Instance) NumSets() int { return len(in.Sets) }

// Validate checks structural invariants: weights positive, elements in
// range, every element covered by at least one set.
func (in *Instance) Validate() error {
	if len(in.Weights) != len(in.Sets) {
		return fmt.Errorf("setcover: %d sets but %d weights", len(in.Sets), len(in.Weights))
	}
	covered := make([]bool, in.NumElements)
	for i, s := range in.Sets {
		if in.Weights[i] <= 0 {
			return fmt.Errorf("setcover: set %d has non-positive weight %v", i, in.Weights[i])
		}
		for _, e := range s {
			if e < 0 || e >= in.NumElements {
				return fmt.Errorf("setcover: set %d contains out-of-range element %d", i, e)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("setcover: element %d is not covered by any set", e)
		}
	}
	return nil
}

// Dual returns the element→sets incidence (the sets T_j of §2.2). The result
// aliases internal storage and must not be modified.
func (in *Instance) Dual() [][]int {
	if in.dual == nil {
		in.dual = make([][]int, in.NumElements)
		for i, s := range in.Sets {
			for _, e := range s {
				in.dual[e] = append(in.dual[e], i)
			}
		}
	}
	return in.dual
}

// MaxFrequency returns f, the largest number of sets containing any element.
func (in *Instance) MaxFrequency() int {
	f := 0
	for _, sets := range in.Dual() {
		if len(sets) > f {
			f = len(sets)
		}
	}
	return f
}

// MaxSetSize returns ∆, the size of the largest set.
func (in *Instance) MaxSetSize() int {
	d := 0
	for _, s := range in.Sets {
		if len(s) > d {
			d = len(s)
		}
	}
	return d
}

// WeightSpread returns w_max / w_min (1 for empty instances).
func (in *Instance) WeightSpread() float64 {
	if len(in.Weights) == 0 {
		return 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, w := range in.Weights {
		lo = math.Min(lo, w)
		hi = math.Max(hi, w)
	}
	return hi / lo
}

// TotalSize returns Σ|S_i|, the input size N of the instance.
func (in *Instance) TotalSize() int {
	t := 0
	for _, s := range in.Sets {
		t += len(s)
	}
	return t
}

// IsCover reports whether the set indices in X cover every element.
func (in *Instance) IsCover(x []int) bool {
	covered := make([]bool, in.NumElements)
	cnt := 0
	for _, i := range x {
		if i < 0 || i >= len(in.Sets) {
			return false
		}
		for _, e := range in.Sets[i] {
			if !covered[e] {
				covered[e] = true
				cnt++
			}
		}
	}
	return cnt == in.NumElements
}

// Weight returns the total weight of the set indices in X (duplicates are
// counted once).
func (in *Instance) Weight(x []int) float64 {
	seen := make(map[int]bool, len(x))
	w := 0.0
	for _, i := range x {
		if !seen[i] {
			seen[i] = true
			w += in.Weights[i]
		}
	}
	return w
}

// Clone returns a deep copy of the instance (without the dual index).
func (in *Instance) Clone() *Instance {
	out := &Instance{NumElements: in.NumElements}
	out.Sets = make([][]int, len(in.Sets))
	for i, s := range in.Sets {
		out.Sets[i] = append([]int(nil), s...)
	}
	out.Weights = append([]float64(nil), in.Weights...)
	return out
}

// FromVertexCover converts a weighted vertex cover instance (graph g, vertex
// weights w) into set cover: one set per vertex containing its incident
// edges, so every element (edge) has frequency exactly 2.
func FromVertexCover(g *graph.Graph, w []float64) *Instance {
	if len(w) != g.N {
		panic("setcover: weight vector length mismatch")
	}
	in := &Instance{NumElements: g.M()}
	in.Sets = make([][]int, g.N)
	in.Weights = append([]float64(nil), w...)
	for v := 0; v < g.N; v++ {
		ids := g.IncidentEdges(v)
		set := make([]int, len(ids))
		for i, id := range ids {
			set[i] = int(id)
		}
		in.Sets[v] = set
	}
	return in
}

// RandomFrequency generates an instance with n sets, m elements, and maximum
// frequency at most f: each element joins between 1 and f distinct uniformly
// random sets. Weights are uniform in [1, wmax). This is the Theorem 2.4
// workload (n ≪ m).
func RandomFrequency(n, m, f int, wmax float64, r *rng.RNG) *Instance {
	if n < 1 || f < 1 || f > n {
		panic("setcover: RandomFrequency requires 1 <= f <= n")
	}
	in := &Instance{NumElements: m}
	in.Sets = make([][]int, n)
	in.Weights = make([]float64, n)
	for i := range in.Weights {
		in.Weights[i] = r.UniformWeight(1, math.Max(wmax, 1+1e-9))
	}
	for e := 0; e < m; e++ {
		k := 1 + r.Intn(f)
		for _, s := range r.SampleWithoutReplacement(n, k) {
			in.Sets[s] = append(in.Sets[s], e)
		}
	}
	return in
}

// RandomSized generates an instance with n sets over m elements where each
// set draws its size uniformly in [1, delta] and its elements uniformly; any
// element left uncovered is then added to a random set. This is the
// Theorem 4.6 workload (m ≪ n) with ∆ ≈ delta.
func RandomSized(n, m, delta int, wmax float64, r *rng.RNG) *Instance {
	if n < 1 || m < 1 || delta < 1 {
		panic("setcover: RandomSized requires positive parameters")
	}
	if delta > m {
		delta = m
	}
	in := &Instance{NumElements: m}
	in.Sets = make([][]int, n)
	in.Weights = make([]float64, n)
	for i := 0; i < n; i++ {
		sz := 1 + r.Intn(delta)
		in.Sets[i] = r.SampleWithoutReplacement(m, sz)
		in.Weights[i] = r.UniformWeight(1, math.Max(wmax, 1+1e-9))
	}
	covered := make([]bool, m)
	sizes := make([]int, n)
	for i, s := range in.Sets {
		sizes[i] = len(s)
		for _, e := range s {
			covered[e] = true
		}
	}
	for e := 0; e < m; e++ {
		if covered[e] {
			continue
		}
		// Add to a random set that still has room under delta, if any;
		// otherwise any random set (∆ may then exceed delta by a little).
		i := r.Intn(n)
		for tries := 0; tries < 4 && sizes[i] >= delta; tries++ {
			i = r.Intn(n)
		}
		in.Sets[i] = append(in.Sets[i], e)
		sizes[i]++
	}
	return in
}
