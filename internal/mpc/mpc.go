// Package mpc simulates the MapReduce (MRC) / massively-parallel-computation
// model of Karloff, Suri and Vassilvitskii, which is the execution model of
// the paper under reproduction.
//
// A Cluster has M machines, each with a space cap of S words. Computation
// proceeds in synchronous rounds: in a round every machine reads the messages
// delivered to it, performs an arbitrary local computation, and emits
// messages to be delivered at the start of the next round. The simulator
//
//   - counts rounds (the model's primary efficiency measure),
//   - counts every word communicated,
//   - tracks a per-machine space high-water mark, defined per round as
//     resident words + incoming words + outgoing words, and
//   - enforces the space cap, either strictly (an over-cap round returns
//     ErrSpaceExceeded, mirroring the explicit "fail" lines in the paper's
//     Algorithms 1, 3 and 4) or leniently (violations are only recorded),
//
// so the quantities bounded by the paper's theorems — rounds and space per
// machine — are measured, not asserted.
//
// Resident state (the partition of the input held by each machine) lives in
// the algorithm's own data structures for speed; algorithms declare its size
// honestly via SetResident/AddResident. Message traffic is accounted
// automatically.
//
// The broadcast and aggregation helpers implement the degree-d broadcast
// tree of §2.2/§4.1 of the paper as real message rounds, so "send C to all
// machines" costs the ceil(log_d M) rounds the paper charges for it.
package mpc

import (
	"errors"
	"fmt"
)

// ErrSpaceExceeded is returned when a machine exceeds its space cap in
// strict mode.
var ErrSpaceExceeded = errors.New("mpc: machine space cap exceeded")

// Message is a bundle of words sent from one machine to another. Ints and
// Floats each count one word per entry; a delivered message also carries one
// header word (the sender).
type Message struct {
	From, To int
	Ints     []int64
	Floats   []float64
}

// Words returns the accounted size of the message in words.
func (m *Message) Words() int { return 1 + len(m.Ints) + len(m.Floats) }

// Config configures a Cluster.
type Config struct {
	// Machines is M, the number of machines. Must be >= 1.
	Machines int
	// SpaceCap is S, the per-machine space cap in words. <= 0 disables
	// enforcement (the high-water mark is still tracked).
	SpaceCap int
	// Strict makes Round return ErrSpaceExceeded when a machine exceeds the
	// cap; otherwise violations are only counted in Metrics.Violations.
	Strict bool
	// Trace records a RoundStat per executed round, retrievable via
	// Trace(). Off by default (it costs memory proportional to rounds).
	Trace bool
}

// RoundStat is the per-round record captured when tracing is enabled.
type RoundStat struct {
	Round    int   // 1-based round number
	Words    int64 // words communicated in this round
	Messages int   // messages delivered in this round
	MaxLoad  int   // max over machines of resident+in+out this round
}

// Metrics accumulates the model-level costs of an execution.
type Metrics struct {
	Machines    int   // cluster size M
	Rounds      int   // synchronous rounds executed
	WordsSent   int64 // total words communicated
	Messages    int64 // total messages delivered
	MaxSpace    int   // max over (machine, round) of resident+in+out words
	MaxResident int   // max declared resident words on any machine
	Violations  int   // number of (machine, round) space-cap violations
}

// Cluster is a simulated MRC/MPC cluster.
type Cluster struct {
	cfg      Config
	resident []int
	inbox    [][]Message
	metrics  Metrics
	trace    []RoundStat
}

// NewCluster returns a cluster with the given configuration.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("mpc: need at least 1 machine, got %d", cfg.Machines))
	}
	return &Cluster{
		cfg:      cfg,
		resident: make([]int, cfg.Machines),
		inbox:    make([][]Message, cfg.Machines),
	}
}

// M returns the number of machines.
func (c *Cluster) M() int { return c.cfg.Machines }

// Cap returns the per-machine space cap in words (<= 0 if disabled).
func (c *Cluster) Cap() int { return c.cfg.SpaceCap }

// Metrics returns a copy of the accumulated metrics.
func (c *Cluster) Metrics() Metrics {
	m := c.metrics
	m.Machines = c.cfg.Machines
	return m
}

// Trace returns the per-round records captured so far (nil unless tracing
// was enabled in the Config). The slice must not be modified.
func (c *Cluster) Trace() []RoundStat { return c.trace }

// SetResident declares the resident state size of a machine, in words.
func (c *Cluster) SetResident(machine, words int) {
	c.resident[machine] = words
	if words > c.metrics.MaxResident {
		c.metrics.MaxResident = words
	}
}

// AddResident adjusts the declared resident state size of a machine.
func (c *Cluster) AddResident(machine, delta int) {
	c.SetResident(machine, c.resident[machine]+delta)
}

// Resident returns the declared resident words of a machine.
func (c *Cluster) Resident(machine int) int { return c.resident[machine] }

// Inbox returns the messages delivered to a machine at the start of the
// current round. The slice must not be modified.
func (c *Cluster) Inbox(machine int) []Message { return c.inbox[machine] }

// Outbox collects the messages a machine emits during a round.
type Outbox struct {
	from    int
	cluster *Cluster
	msgs    []Message
	words   int
}

// Send emits a message to machine `to` with the given payload. Payload
// slices are retained; callers must not reuse them.
func (o *Outbox) Send(to int, ints []int64, floats []float64) {
	if to < 0 || to >= o.cluster.cfg.Machines {
		panic(fmt.Sprintf("mpc: send to invalid machine %d (M=%d)", to, o.cluster.cfg.Machines))
	}
	m := Message{From: o.from, To: to, Ints: ints, Floats: floats}
	o.words += m.Words()
	o.msgs = append(o.msgs, m)
}

// SendInts is shorthand for Send(to, ints, nil).
func (o *Outbox) SendInts(to int, ints ...int64) { o.Send(to, ints, nil) }

// RoundFunc is the local computation of one machine in one round: it reads
// the machine's inbox and emits messages for the next round.
type RoundFunc func(machine int, in []Message, out *Outbox)

// Round executes one synchronous round: it runs f on every machine (in
// machine order — the simulation is deterministic), accounts space and
// traffic, checks the cap, and delivers the emitted messages, which become
// the inboxes of the next round.
func (c *Cluster) Round(f RoundFunc) error {
	c.metrics.Rounds++
	outWords := make([]int, c.cfg.Machines)
	inWords := make([]int, c.cfg.Machines)
	next := make([][]Message, c.cfg.Machines)
	for machine := 0; machine < c.cfg.Machines; machine++ {
		out := &Outbox{from: machine, cluster: c}
		f(machine, c.inbox[machine], out)
		outWords[machine] = out.words
		for _, m := range out.msgs {
			inWords[m.To] += m.Words()
			next[m.To] = append(next[m.To], m)
			c.metrics.WordsSent += int64(m.Words())
			c.metrics.Messages++
		}
	}
	var violated bool
	maxLoad := 0
	for machine := 0; machine < c.cfg.Machines; machine++ {
		used := c.resident[machine] + inWords[machine] + outWords[machine]
		if used > maxLoad {
			maxLoad = used
		}
		if used > c.metrics.MaxSpace {
			c.metrics.MaxSpace = used
		}
		if c.cfg.SpaceCap > 0 && used > c.cfg.SpaceCap {
			c.metrics.Violations++
			violated = true
		}
	}
	if c.cfg.Trace {
		stat := RoundStat{Round: c.metrics.Rounds, MaxLoad: maxLoad}
		for machine := range inWords {
			stat.Words += int64(inWords[machine])
			stat.Messages += len(next[machine])
		}
		c.trace = append(c.trace, stat)
	}
	c.inbox = next
	if violated && c.cfg.Strict {
		return fmt.Errorf("%w (cap %d words)", ErrSpaceExceeded, c.cfg.SpaceCap)
	}
	return nil
}

// Quiet runs a round in which no machine sends anything; useful to charge a
// round of pure local computation.
func (c *Cluster) Quiet() error {
	return c.Round(func(int, []Message, *Outbox) {})
}
