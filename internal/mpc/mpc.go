// Package mpc simulates the MapReduce (MRC) / massively-parallel-computation
// model of Karloff, Suri and Vassilvitskii, which is the execution model of
// the paper under reproduction.
//
// A Cluster has M machines, each with a space cap of S words. Computation
// proceeds in synchronous rounds: in a round every machine reads the records
// delivered to it, performs an arbitrary local computation, and emits
// records to be delivered at the start of the next round. The simulator
//
//   - counts rounds (the model's primary efficiency measure),
//   - counts every word communicated,
//   - tracks a per-machine space high-water mark, defined per round as
//     resident words + incoming words + outgoing words, and
//   - enforces the space cap, either strictly (an over-cap round returns
//     ErrSpaceExceeded, mirroring the explicit "fail" lines in the paper's
//     Algorithms 1, 3 and 4) or leniently (violations are only recorded),
//
// so the quantities bounded by the paper's theorems — rounds and space per
// machine — are measured, not asserted.
//
// Resident state (the partition of the input held by each machine) lives in
// the algorithm's own data structures for speed; algorithms declare its size
// honestly via SetResident/AddResident. Message traffic is accounted
// automatically. Physically, traffic moves over the columnar message plane
// of plane.go: records are framed into flat per-destination word buffers
// that are pooled across rounds, so the steady-state cost of a logical
// message is a few buffer appends, not an allocation.
//
// The broadcast and aggregation helpers implement the degree-d broadcast
// tree of §2.2/§4.1 of the paper as real message rounds, so "send C to all
// machines" costs the ceil(log_d M) rounds the paper charges for it.
//
// # Sparse rounds
//
// The paper's algorithms geometrically shrink the live problem, so in the
// tail rounds only a handful of machines have anything to do. With
// Config.Sparse set, a machine's RoundFunc is invoked in a round only if the
// machine has a non-empty inbox or was armed via Arm/ArmAll, and all
// post-round bookkeeping (merge, inbox recycling, outbox reset, space and
// cap accounting) walks only the machines that ran or received traffic, so
// the steady-state cost of a round is proportional to its actual activity
// rather than to M. Dormant machines are accounted as holding exactly their
// unchanged resident words, which keeps rounds, words, messages, space
// high-water marks, violations and trace loads bit-identical to dense
// execution for conforming algorithms (see Arm); only the activity
// measurements themselves (RoundStat.Active, Metrics.ActiveSum/ActiveMax)
// differ, since they record how many machines actually ran.
package mpc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrSpaceExceeded is returned when a machine exceeds its space cap in
// strict mode.
var ErrSpaceExceeded = errors.New("mpc: machine space cap exceeded")

// ErrClusterClosed is returned by Round and Quiet on a cluster whose Close
// has already run.
var ErrClusterClosed = errors.New("mpc: cluster is closed")

// Config configures a Cluster.
type Config struct {
	// Machines is M, the number of machines. Must be >= 1.
	Machines int
	// SpaceCap is S, the per-machine space cap in words. <= 0 disables
	// enforcement (the high-water mark is still tracked).
	SpaceCap int
	// Strict makes Round return ErrSpaceExceeded when a machine exceeds the
	// cap; otherwise violations are only counted in Metrics.Violations.
	Strict bool
	// Trace records a RoundStat per executed round, retrievable via
	// Trace(). Off by default (it costs memory proportional to rounds).
	Trace bool
	// Workers selects the round executor: 0 or 1 runs machines sequentially
	// on one goroutine (the default), > 1 runs each round's machines
	// concurrently on a persistent pool of that many goroutines, and < 0
	// sizes the pool to runtime.NumCPU(). Results and metrics are identical
	// across executors for conforming RoundFuncs (see Executor). Pools are
	// owned by the cluster; call Close when done with it.
	Workers int
	// Executor, when non-nil, overrides Workers with an explicit executor.
	Executor Executor
	// Sparse enables sparse round scheduling: a machine runs in a round
	// only if its inbox is non-empty or it was armed via Arm/ArmAll, and
	// per-round bookkeeping touches only active machines. Model metrics
	// and trace loads are bit-identical to dense execution provided every
	// machine that must act on an empty inbox is armed (see Arm); the
	// activity measurements (RoundStat.Active, Metrics.ActiveSum/
	// ActiveMax) record actual invocations and therefore differ. Off by
	// default: without arming calls a dense-written RoundFunc would
	// silently be skipped.
	Sparse bool
	// Shards partitions the machines contiguously across that many shards
	// and exchanges cross-shard traffic through a Transport (shard.go):
	// results, metrics, and traces stay bit-identical to unsharded
	// execution. Clamped to Machines; 0 or 1 runs unsharded. Transport
	// errors surface from Round.
	Shards int
	// Transport, when sharding, builds the transport endpoints this
	// process drives (transport.go). Nil selects the in-memory group
	// covering every shard — single-process sharding.
	Transport TransportFactory
	// Ctx, when non-nil, is checked between rounds: once it is canceled,
	// Round and Quiet return its error (wrapped) instead of executing, so an
	// abandoned job stops burning rounds at the next round boundary. Nil
	// means no cancellation.
	Ctx context.Context
	// Sink, when non-nil, receives an obs.RoundSpan at the end of every
	// round (Quiet rounds included): wall-clock phase timings — compute,
	// merge, barrier/replay exchange — next to the round's model
	// quantities. Timing lives only in the spans, never in Metrics or
	// RoundStat, so attaching a sink changes nothing the equivalence
	// suites compare; with Sink nil the round path takes no timestamps
	// and performs no allocations for tracing.
	Sink obs.TraceSink
	// TraceLabel annotates the cluster's spans (a job id, an algorithm
	// name); purely cosmetic.
	TraceLabel string
}

// RoundStat is the per-round record captured when tracing is enabled.
type RoundStat struct {
	Round    int   // 1-based round number
	Words    int64 // words communicated in this round
	Messages int   // records delivered in this round
	MaxLoad  int   // max over machines of resident+in+out this round
	Active   int   // machines whose RoundFunc was invoked this round
}

// Metrics accumulates the model-level costs of an execution.
//
// ActiveSum and ActiveMax measure the simulator's scheduling activity, not a
// model-level cost: under sparse scheduling they expose the geometric decay
// of per-round work the paper predicts, and under dense scheduling every
// non-Quiet round contributes M. They (and the matching RoundStat.Active
// trace field) are the only measurements that may differ between a sparse
// and a dense execution of the same algorithm.
type Metrics struct {
	Machines    int   // cluster size M
	Rounds      int   // synchronous rounds executed
	WordsSent   int64 // total words communicated
	Messages    int64 // total records delivered
	MaxSpace    int   // max over (machine, round) of resident+in+out words
	MaxResident int   // max declared resident words on any machine
	Violations  int   // number of (machine, round) space-cap violations
	ActiveSum   int64 // total RoundFunc invocations across all rounds
	ActiveMax   int   // max over rounds of RoundFunc invocations
}

// Cluster is a simulated MRC/MPC cluster.
type Cluster struct {
	cfg      Config
	exec     Executor
	pool     *Pool // non-nil when the cluster owns a persistent pool
	resident []int
	inbox    []Inbox
	outboxes []Outbox
	metrics  Metrics
	trace    []RoundStat
	// Per-round merge scratch, held across rounds so the steady-state round
	// allocates nothing.
	senders [][]int // dest -> sending machines, in machine order; empty outside Round
	recv    []int   // machines whose inboxes currently hold traffic
	recvNxt []int   // next round's receivers, swapped into recv after the merge
	// Sparse-scheduling state.
	inRound   bool
	armAll    bool
	armedNext []int  // machines armed for the next round (deduplicated)
	armedMark []bool // membership bitmap for armedNext
	armedSelf []bool // set by a machine's own RoundFunc, collected post-barrier
	runList   []int  // scratch: the machines running the current sparse round
	dirtyMark []bool // accounting dedup scratch, all-false between rounds
	// Incremental resident aggregates, so rounds never rescan all machines:
	// residentMax is max over machines of resident (exact when residentMaxOK;
	// recomputed lazily after a decrease of the max holder), residentOverCap
	// counts machines with resident > SpaceCap.
	residentMax     int
	residentMaxOK   bool
	residentOverCap int
	// Sharded execution (shard.go). shard is non-nil when the cluster runs
	// K >= 2 shards over a transport; shardErr records a transport-factory
	// failure, surfaced by the first Round instead of a NewCluster panic.
	shard    *shardEngine
	shardErr error
	closed   bool
	// traceID identifies this cluster in trace spans; allocated only when
	// a sink is configured, never reused within the process.
	traceID int64
}

// traceClusterSeq allocates process-unique cluster ids for trace spans.
var traceClusterSeq atomic.Int64

// NewCluster returns a cluster with the given configuration.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("mpc: need at least 1 machine, got %d", cfg.Machines))
	}
	c := &Cluster{
		cfg:           cfg,
		resident:      make([]int, cfg.Machines),
		inbox:         make([]Inbox, cfg.Machines),
		outboxes:      make([]Outbox, cfg.Machines),
		senders:       make([][]int, cfg.Machines),
		armedMark:     make([]bool, cfg.Machines),
		armedSelf:     make([]bool, cfg.Machines),
		dirtyMark:     make([]bool, cfg.Machines),
		residentMaxOK: true,
	}
	c.exec, c.pool = newExecutor(cfg)
	for machine := range c.outboxes {
		c.outboxes[machine] = Outbox{from: machine, cluster: c}
	}
	if cfg.Sink != nil {
		c.traceID = traceClusterSeq.Add(1)
	}
	c.shard, c.shardErr = newShardEngine(c, cfg)
	return c
}

// Close releases the cluster's persistent worker pool and its transport
// endpoints, if it owns any. It is idempotent and safe to call on clusters
// that never had either; Round and Quiet after Close return
// ErrClusterClosed. A cluster that is garbage-collected without Close leaks
// its pool goroutines only until the pool's finalizer runs.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.pool != nil {
		c.pool.Close()
		c.pool = nil
	}
	if c.shard != nil {
		c.shard.closeEndpoints()
	}
}

// Shards returns the effective shard count the cluster runs with (1 when
// unsharded).
func (c *Cluster) Shards() int {
	if c.shard == nil {
		return 1
	}
	return c.shard.k
}

// ready reports whether the cluster can run a round, translating closed
// clusters, canceled contexts, transport-factory failures, and earlier
// transport errors into the error every subsequent Round/Quiet returns.
// Transport-layer failures are additionally marked with ErrTransport so
// callers can distinguish fabric faults (healable by a deterministic re-run
// elsewhere) from algorithmic errors; cancellation deliberately is not — a
// canceled job is abandoned, not re-run.
func (c *Cluster) ready() error {
	if c.closed {
		return ErrClusterClosed
	}
	if ctx := c.cfg.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("mpc: round canceled: %w", err)
		}
	}
	if c.shardErr != nil {
		return fmt.Errorf("%w: %w", ErrTransport, c.shardErr)
	}
	if c.shard != nil && c.shard.broken != nil {
		return fmt.Errorf("mpc: cluster unusable after transport error: %w: %w", ErrTransport, c.shard.broken)
	}
	return nil
}

// M returns the number of machines.
func (c *Cluster) M() int { return c.cfg.Machines }

// Exec returns the cluster's round executor. Algorithms may use it to run
// per-machine local computation that happens between rounds (work the model
// charges as free local computation) under the same parallelism policy as
// the rounds themselves.
func (c *Cluster) Exec() Executor { return c.exec }

// Cap returns the per-machine space cap in words (<= 0 if disabled).
func (c *Cluster) Cap() int { return c.cfg.SpaceCap }

// Metrics returns a copy of the accumulated metrics.
func (c *Cluster) Metrics() Metrics {
	m := c.metrics
	m.Machines = c.cfg.Machines
	return m
}

// Trace returns the per-round records captured so far (nil unless tracing
// was enabled in the Config). The slice must not be modified.
func (c *Cluster) Trace() []RoundStat { return c.trace }

// SetResident declares the resident state size of a machine, in words. It
// must be called from driver code between rounds or by at most one machine's
// RoundFunc per round, never concurrently.
func (c *Cluster) SetResident(machine, words int) {
	old := c.resident[machine]
	c.resident[machine] = words
	if words > c.metrics.MaxResident {
		c.metrics.MaxResident = words
	}
	if cap := c.cfg.SpaceCap; cap > 0 {
		switch {
		case old <= cap && words > cap:
			c.residentOverCap++
		case old > cap && words <= cap:
			c.residentOverCap--
		}
	}
	// Keep the current-maximum aggregate: a new high is the max outright;
	// lowering the (possible) max holder invalidates it for a lazy rescan.
	if words >= c.residentMax {
		c.residentMax = words
		c.residentMaxOK = true
	} else if old == c.residentMax && words < old {
		c.residentMaxOK = false
	}
}

// AddResident adjusts the declared resident state size of a machine.
func (c *Cluster) AddResident(machine, delta int) {
	c.SetResident(machine, c.resident[machine]+delta)
}

// Resident returns the declared resident words of a machine.
func (c *Cluster) Resident(machine int) int { return c.resident[machine] }

// residentMaxNow returns max over machines of resident, rescanning only if a
// decrease invalidated the incremental value.
func (c *Cluster) residentMaxNow() int {
	if !c.residentMaxOK {
		max := 0
		for _, r := range c.resident {
			if r > max {
				max = r
			}
		}
		c.residentMax = max
		c.residentMaxOK = true
	}
	return c.residentMax
}

// Inbox returns a view over the records delivered to a machine at the start
// of the current round. The cursor is rewound at the start of every round;
// callers inspecting inboxes between rounds should Reset() after iterating.
func (c *Cluster) Inbox(machine int) *Inbox { return &c.inbox[machine] }

// Arm schedules a machine to run in the next round even if its inbox is
// empty. Under sparse scheduling (Config.Sparse) this is the contract that
// keeps sparse execution equivalent to dense: a machine whose RoundFunc
// must act without incoming traffic — a central machine starting a batch, a
// data machine replaying a sampling plan, a round-0 loader — is armed by the
// driver before the round; machines reacting to delivered records run
// automatically, and decided machines simply stop being armed and go
// dormant. The armed set is consumed by the next Round (or Quiet).
//
// Arm may be called from driver code between rounds for any machine, or
// from within a RoundFunc for the invoking machine itself (self-arming);
// arming another machine from inside a round is a data race. In dense mode
// (Config.Sparse unset) Arm is a no-op, so algorithms written against the
// arming contract run unchanged on dense clusters.
func (c *Cluster) Arm(machine int) {
	if machine < 0 || machine >= c.cfg.Machines {
		panic(fmt.Sprintf("mpc: Arm of invalid machine %d (M=%d)", machine, c.cfg.Machines))
	}
	if !c.cfg.Sparse {
		return
	}
	if c.inRound {
		c.armedSelf[machine] = true
		return
	}
	c.enqueueArm(machine)
}

// ArmAll schedules every machine to run in the next round, making it a dense
// round; used for genuinely global steps (e.g. every machine contributes to
// an aggregation). Driver-only: must not be called from inside a RoundFunc.
// A no-op in dense mode.
func (c *Cluster) ArmAll() {
	if c.cfg.Sparse {
		c.armAll = true
	}
}

// enqueueArm adds machine to the next round's armed set, deduplicated.
func (c *Cluster) enqueueArm(machine int) {
	if !c.armedMark[machine] {
		c.armedMark[machine] = true
		c.armedNext = append(c.armedNext, machine)
	}
}

// drainArmed empties the armed set (its machines are running, or a dense
// round subsumed them).
func (c *Cluster) drainArmed() {
	for _, m := range c.armedNext {
		c.armedMark[m] = false
	}
	c.armedNext = c.armedNext[:0]
	c.armAll = false
}

// RoundFunc is the local computation of one machine in one round: it reads
// the machine's inbox and emits records for the next round.
//
// Invocations for different machines may run concurrently (see
// Config.Workers), so a RoundFunc must confine its writes to state owned by
// its machine: its Outbox, its own Inbox cursor, elements of shared slices
// indexed by data the machine owns, or per-machine structs. Shared state may
// be read freely — the simulator never mutates cluster state while a round
// is executing. Records read from the inbox are views into buffers recycled
// when the round ends: consume them during the invocation, never retain.
type RoundFunc func(machine int, in *Inbox, out *Outbox)

// Round executes one synchronous round: it runs f on the scheduled machines
// via the configured executor (every machine when dense; the armed machines
// plus the machines with non-empty inboxes when sparse), each machine
// writing to its own Outbox, then — after the barrier — accounts space and
// traffic, checks the cap, and assembles each destination's inbox from the
// senders' columns in machine order, so delivery order, metrics, and traces
// are deterministic and executor-independent. The columns backing the
// inboxes consumed this round are recycled into the column pool.
func (c *Cluster) Round(f RoundFunc) error {
	if err := c.ready(); err != nil {
		return err
	}
	// Phase timing exists only for the sink: with no sink configured no
	// timestamp is taken and nothing below allocates for tracing.
	sink := c.cfg.Sink
	var spanStart, computeEnd time.Time
	if sink != nil {
		spanStart = time.Now()
	}
	c.metrics.Rounds++
	M := c.cfg.Machines

	// Schedule. A sparse round runs the union of the armed set and the
	// current receivers, in ascending machine order (the merge below walks
	// the run list in order, which is what keeps delivery deterministic).
	// ArmAll degrades the single next round to dense execution.
	sparse := c.cfg.Sparse && !c.armAll
	var run []int
	active := M
	if sparse {
		run = c.runList[:0]
		run = append(run, c.armedNext...)
		for _, m := range c.recv {
			if !c.armedMark[m] {
				run = append(run, m)
			}
		}
		c.runList = run
		sort.Ints(run)
		active = len(run)
	}
	c.drainArmed()

	// Rewind the receivers' cursors (other inboxes are empty) and execute.
	for _, m := range c.recv {
		c.inbox[m].Reset()
	}
	c.inRound = true
	switch {
	case c.shard != nil:
		c.shard.execute(f, run, sparse)
	case sparse:
		c.exec.Execute(len(run), func(i int) {
			m := run[i]
			f(m, &c.inbox[m], &c.outboxes[m])
		})
	default:
		c.exec.Execute(M, func(machine int) {
			f(machine, &c.inbox[machine], &c.outboxes[machine])
		})
	}
	c.inRound = false
	if sink != nil {
		computeEnd = time.Now()
	}
	c.metrics.ActiveSum += int64(active)
	if active > c.metrics.ActiveMax {
		c.metrics.ActiveMax = active
	}

	// Deterministic merge after the barrier: traffic totals come from the
	// per-outbox counters, and each inbox lists the senders' columns in
	// machine order, so its cursor yields records ordered by (sender,
	// emission order) regardless of the executor's scheduling. Only the
	// machines that ran can have sent, and only the machines that ran can
	// have self-armed. A sharded cluster routes the same walk through the
	// transport exchange (shard.go); a transport failure poisons the
	// cluster and surfaces here.
	c.recvNxt = c.recvNxt[:0]
	if c.shard != nil {
		if err := c.shard.merge(run, sparse); err != nil {
			c.shard.broken = err
			return fmt.Errorf("mpc: round %d transport exchange: %w: %w", c.metrics.Rounds, ErrTransport, err)
		}
	} else {
		mergeOne := func(machine int) {
			o := &c.outboxes[machine]
			if o.cur != nil {
				panic(fmt.Sprintf("mpc: machine %d ended the round with an open record (Begin without End)", machine))
			}
			c.metrics.WordsSent += int64(o.words)
			c.metrics.Messages += int64(o.count)
			for _, dest := range o.dests {
				if len(c.senders[dest]) == 0 {
					c.recvNxt = append(c.recvNxt, dest)
				}
				c.senders[dest] = append(c.senders[dest], machine)
			}
			if c.armedSelf[machine] {
				c.armedSelf[machine] = false
				c.enqueueArm(machine)
			}
		}
		if sparse {
			for _, m := range run {
				mergeOne(m)
			}
		} else {
			for machine := 0; machine < M; machine++ {
				mergeOne(machine)
			}
		}
	}

	// The round's computations have consumed the previous inboxes; recycle
	// their columns before handing over the new ones.
	for _, m := range c.recv {
		c.inbox[m].clear()
	}
	c.recv = c.recv[:0]
	// Each destination's inbox is assembled independently in fixed sender
	// order, so with many receivers the assembly itself fans out across the
	// round executor — deterministic either way.
	if len(c.recvNxt) >= mergeParDests && c.parallelExec() {
		c.exec.Execute(len(c.recvNxt), func(i int) {
			c.assembleInbox(c.recvNxt[i])
		})
	} else {
		for _, dest := range c.recvNxt {
			c.assembleInbox(dest)
		}
	}
	c.recv, c.recvNxt = c.recvNxt, c.recv

	// Space and cap accounting over the dirty set — the machines that ran
	// or received — against the incremental aggregates for everyone else: a
	// dormant machine's load is exactly its unchanged resident words.
	var violated bool
	maxLoad, roundViolations := c.accountDirty(run, sparse)
	if roundViolations > 0 {
		c.metrics.Violations += roundViolations
		violated = true
	}
	if maxLoad > c.metrics.MaxSpace {
		c.metrics.MaxSpace = maxLoad
	}
	if c.cfg.Trace {
		stat := RoundStat{Round: c.metrics.Rounds, MaxLoad: maxLoad, Active: active}
		for _, m := range c.recv {
			stat.Words += int64(c.inbox[m].words)
			stat.Messages += c.inbox[m].records
		}
		c.trace = append(c.trace, stat)
	}

	// Release the senders' outbox bookkeeping last: accounting above reads
	// the outboxes' word counters directly.
	if sparse {
		for _, m := range run {
			c.outboxes[m].reset()
		}
	} else {
		for machine := 0; machine < M; machine++ {
			c.outboxes[machine].reset()
		}
	}

	if sink != nil {
		end := time.Now()
		span := obs.RoundSpan{
			Label:   c.cfg.TraceLabel,
			Cluster: c.traceID,
			Round:   c.metrics.Rounds,
			Active:  active,
			MaxLoad: maxLoad,
			Start:   spanStart,
			End:     end,
			Compute: computeEnd.Sub(spanStart),
		}
		// Everything after compute is merge bookkeeping except the sharded
		// transport exchange, which the shard engine timed separately — as
		// a live barrier, or as replay when a respawned worker re-executed
		// the round detached from the wire.
		post := end.Sub(computeEnd)
		if c.shard != nil {
			exch := c.shard.phaseExchange
			if c.shard.lastDetached {
				span.Replay = exch
			} else {
				span.Barrier = exch
			}
			if post > exch {
				span.Merge = post - exch
			}
			span.ShardWords = c.shard.traceWire
		} else {
			span.Merge = post
		}
		for _, m := range c.recv {
			span.Words += int64(c.inbox[m].words)
			span.Messages += c.inbox[m].records
		}
		sink.RoundDone(span)
	}

	if violated && c.cfg.Strict {
		return fmt.Errorf("%w (cap %d words)", ErrSpaceExceeded, c.cfg.SpaceCap)
	}
	return nil
}

// mergeParDests is the receiver count above which the post-barrier inbox
// assembly fans out across the round executor. Assembling one inbox is a
// handful of slice appends, so parallelism pays only when a round delivers
// to many machines.
const mergeParDests = 64

// parallelExec reports whether the cluster's executor actually runs tasks
// concurrently (anything but the sequential executor).
func (c *Cluster) parallelExec() bool {
	_, seq := c.exec.(Sequential)
	return !seq
}

// assembleInbox builds one destination's inbox for the next round: the wire
// columns from shards below the destination's, the local senders' columns,
// then the wire columns from shards above — ascending sender order overall.
// Safe to run concurrently for distinct destinations: every slice touched
// is indexed by dest.
func (c *Cluster) assembleInbox(dest int) {
	in := &c.inbox[dest]
	if c.shard != nil {
		for _, sg := range c.shard.wirePre[dest] {
			in.segs = append(in.segs, sg)
			in.records += len(sg.col.recs)
			in.words += sg.col.words
		}
	}
	for _, src := range c.senders[dest] {
		col := c.outboxes[src].byDest[dest]
		in.segs = append(in.segs, segment{from: src, col: col})
		in.records += len(col.recs)
		in.words += col.words
	}
	c.senders[dest] = c.senders[dest][:0]
	if c.shard != nil {
		for _, sg := range c.shard.wirePost[dest] {
			in.segs = append(in.segs, sg)
			in.records += len(sg.col.recs)
			in.words += sg.col.words
		}
		c.shard.wirePre[dest] = c.shard.wirePre[dest][:0]
		c.shard.wirePost[dest] = c.shard.wirePost[dest][:0]
	}
}

// accountDirty computes this round's max load and cap-violation count. The
// dirty machines (ran or received this round) are measured directly as
// resident+in+out; every dormant machine's load is its resident words, which
// the incremental aggregates summarize without a scan. A machine can appear
// both in run and in recv; the dirtyMark scratch (all-false between rounds,
// and distinct from armedMark, which at this point already carries the next
// round's self-armed machines) deduplicates it.
func (c *Cluster) accountDirty(run []int, sparse bool) (maxLoad, roundViolations int) {
	cap := c.cfg.SpaceCap
	if !sparse {
		// Dense round: every machine is dirty; measure all of them directly.
		for machine := 0; machine < c.cfg.Machines; machine++ {
			used := c.resident[machine] + c.inbox[machine].words + c.outboxes[machine].words
			if used > maxLoad {
				maxLoad = used
			}
			if cap > 0 && used > cap {
				roundViolations++
			}
		}
		return maxLoad, roundViolations
	}
	maxLoad = c.residentMaxNow()
	if cap > 0 {
		roundViolations = c.residentOverCap
	}
	measure := func(m int) {
		used := c.resident[m] + c.inbox[m].words + c.outboxes[m].words
		if used > maxLoad {
			maxLoad = used
		}
		if cap > 0 {
			if c.resident[m] > cap {
				roundViolations-- // already counted in residentOverCap
			}
			if used > cap {
				roundViolations++
			}
		}
	}
	for _, m := range run {
		c.dirtyMark[m] = true
		measure(m)
	}
	for _, m := range c.recv {
		if !c.dirtyMark[m] {
			measure(m)
		}
	}
	for _, m := range run {
		c.dirtyMark[m] = false
	}
	return maxLoad, roundViolations
}

// Quiet runs a round in which no machine sends anything; useful to charge a
// round of pure local computation. It is a fast path: no RoundFunc is
// invoked (Active records 0) and no machine is scanned — the round reduces
// to O(1) accounting over the incremental aggregates plus recycling any
// undelivered traffic, with metrics identical to running a no-op RoundFunc
// on every machine. The pending armed set is consumed, exactly as a no-op
// round would consume it.
func (c *Cluster) Quiet() error {
	if err := c.ready(); err != nil {
		return err
	}
	sink := c.cfg.Sink
	var spanStart time.Time
	if sink != nil {
		spanStart = time.Now()
	}
	c.metrics.Rounds++
	c.drainArmed()
	// A no-op round discards any traffic delivered for it.
	for _, m := range c.recv {
		c.inbox[m].clear()
	}
	c.recv = c.recv[:0]
	maxLoad := c.residentMaxNow()
	if maxLoad > c.metrics.MaxSpace {
		c.metrics.MaxSpace = maxLoad
	}
	violations := 0
	if c.cfg.SpaceCap > 0 {
		violations = c.residentOverCap
	}
	c.metrics.Violations += violations
	if c.cfg.Trace {
		c.trace = append(c.trace, RoundStat{Round: c.metrics.Rounds, MaxLoad: maxLoad})
	}
	if sink != nil {
		// A quiet round has no compute or exchange; its whole (tiny)
		// duration is bookkeeping, kept in the stream so round numbers
		// stay contiguous in exported timelines.
		end := time.Now()
		sink.RoundDone(obs.RoundSpan{
			Label: c.cfg.TraceLabel, Cluster: c.traceID,
			Round: c.metrics.Rounds, MaxLoad: maxLoad,
			Start: spanStart, End: end, Merge: end.Sub(spanStart),
		})
	}
	if violations > 0 && c.cfg.Strict {
		return fmt.Errorf("%w (cap %d words)", ErrSpaceExceeded, c.cfg.SpaceCap)
	}
	return nil
}
