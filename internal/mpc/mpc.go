// Package mpc simulates the MapReduce (MRC) / massively-parallel-computation
// model of Karloff, Suri and Vassilvitskii, which is the execution model of
// the paper under reproduction.
//
// A Cluster has M machines, each with a space cap of S words. Computation
// proceeds in synchronous rounds: in a round every machine reads the records
// delivered to it, performs an arbitrary local computation, and emits
// records to be delivered at the start of the next round. The simulator
//
//   - counts rounds (the model's primary efficiency measure),
//   - counts every word communicated,
//   - tracks a per-machine space high-water mark, defined per round as
//     resident words + incoming words + outgoing words, and
//   - enforces the space cap, either strictly (an over-cap round returns
//     ErrSpaceExceeded, mirroring the explicit "fail" lines in the paper's
//     Algorithms 1, 3 and 4) or leniently (violations are only recorded),
//
// so the quantities bounded by the paper's theorems — rounds and space per
// machine — are measured, not asserted.
//
// Resident state (the partition of the input held by each machine) lives in
// the algorithm's own data structures for speed; algorithms declare its size
// honestly via SetResident/AddResident. Message traffic is accounted
// automatically. Physically, traffic moves over the columnar message plane
// of plane.go: records are framed into flat per-destination word buffers
// that are pooled across rounds, so the steady-state cost of a logical
// message is a few buffer appends, not an allocation.
//
// The broadcast and aggregation helpers implement the degree-d broadcast
// tree of §2.2/§4.1 of the paper as real message rounds, so "send C to all
// machines" costs the ceil(log_d M) rounds the paper charges for it.
package mpc

import (
	"errors"
	"fmt"
)

// ErrSpaceExceeded is returned when a machine exceeds its space cap in
// strict mode.
var ErrSpaceExceeded = errors.New("mpc: machine space cap exceeded")

// Config configures a Cluster.
type Config struct {
	// Machines is M, the number of machines. Must be >= 1.
	Machines int
	// SpaceCap is S, the per-machine space cap in words. <= 0 disables
	// enforcement (the high-water mark is still tracked).
	SpaceCap int
	// Strict makes Round return ErrSpaceExceeded when a machine exceeds the
	// cap; otherwise violations are only counted in Metrics.Violations.
	Strict bool
	// Trace records a RoundStat per executed round, retrievable via
	// Trace(). Off by default (it costs memory proportional to rounds).
	Trace bool
	// Workers selects the round executor: 0 or 1 runs machines sequentially
	// on one goroutine (the default), > 1 runs each round's machines
	// concurrently on a pool of that many goroutines, and < 0 sizes the
	// pool to runtime.NumCPU(). Results and metrics are identical across
	// executors for conforming RoundFuncs (see Executor).
	Workers int
	// Executor, when non-nil, overrides Workers with an explicit executor.
	Executor Executor
}

// RoundStat is the per-round record captured when tracing is enabled.
type RoundStat struct {
	Round    int   // 1-based round number
	Words    int64 // words communicated in this round
	Messages int   // records delivered in this round
	MaxLoad  int   // max over machines of resident+in+out this round
}

// Metrics accumulates the model-level costs of an execution.
type Metrics struct {
	Machines    int   // cluster size M
	Rounds      int   // synchronous rounds executed
	WordsSent   int64 // total words communicated
	Messages    int64 // total records delivered
	MaxSpace    int   // max over (machine, round) of resident+in+out words
	MaxResident int   // max declared resident words on any machine
	Violations  int   // number of (machine, round) space-cap violations
}

// Cluster is a simulated MRC/MPC cluster.
type Cluster struct {
	cfg      Config
	exec     Executor
	resident []int
	inbox    []Inbox
	outboxes []Outbox
	metrics  Metrics
	trace    []RoundStat
	// Per-round merge scratch, held across rounds so the steady-state round
	// allocates nothing.
	senders  [][]int // dest -> sending machines, in machine order; empty outside Round
	active   []int   // destinations with at least one sender this round
	inWords  []int
	outWords []int
}

// NewCluster returns a cluster with the given configuration.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("mpc: need at least 1 machine, got %d", cfg.Machines))
	}
	c := &Cluster{
		cfg:      cfg,
		resident: make([]int, cfg.Machines),
		inbox:    make([]Inbox, cfg.Machines),
		outboxes: make([]Outbox, cfg.Machines),
		senders:  make([][]int, cfg.Machines),
		inWords:  make([]int, cfg.Machines),
		outWords: make([]int, cfg.Machines),
	}
	c.exec = newExecutor(cfg)
	for machine := range c.outboxes {
		c.outboxes[machine] = Outbox{from: machine, cluster: c}
	}
	return c
}

// M returns the number of machines.
func (c *Cluster) M() int { return c.cfg.Machines }

// Exec returns the cluster's round executor. Algorithms may use it to run
// per-machine local computation that happens between rounds (work the model
// charges as free local computation) under the same parallelism policy as
// the rounds themselves.
func (c *Cluster) Exec() Executor { return c.exec }

// Cap returns the per-machine space cap in words (<= 0 if disabled).
func (c *Cluster) Cap() int { return c.cfg.SpaceCap }

// Metrics returns a copy of the accumulated metrics.
func (c *Cluster) Metrics() Metrics {
	m := c.metrics
	m.Machines = c.cfg.Machines
	return m
}

// Trace returns the per-round records captured so far (nil unless tracing
// was enabled in the Config). The slice must not be modified.
func (c *Cluster) Trace() []RoundStat { return c.trace }

// SetResident declares the resident state size of a machine, in words.
func (c *Cluster) SetResident(machine, words int) {
	c.resident[machine] = words
	if words > c.metrics.MaxResident {
		c.metrics.MaxResident = words
	}
}

// AddResident adjusts the declared resident state size of a machine.
func (c *Cluster) AddResident(machine, delta int) {
	c.SetResident(machine, c.resident[machine]+delta)
}

// Resident returns the declared resident words of a machine.
func (c *Cluster) Resident(machine int) int { return c.resident[machine] }

// Inbox returns a view over the records delivered to a machine at the start
// of the current round. The cursor is rewound at the start of every round;
// callers inspecting inboxes between rounds should Reset() after iterating.
func (c *Cluster) Inbox(machine int) *Inbox { return &c.inbox[machine] }

// RoundFunc is the local computation of one machine in one round: it reads
// the machine's inbox and emits records for the next round.
//
// Invocations for different machines may run concurrently (see
// Config.Workers), so a RoundFunc must confine its writes to state owned by
// its machine: its Outbox, its own Inbox cursor, elements of shared slices
// indexed by data the machine owns, or per-machine structs. Shared state may
// be read freely — the simulator never mutates cluster state while a round
// is executing. Records read from the inbox are views into buffers recycled
// when the round ends: consume them during the invocation, never retain.
type RoundFunc func(machine int, in *Inbox, out *Outbox)

// Round executes one synchronous round: it runs f on every machine via the
// configured executor, each machine writing to its own Outbox, then — after
// the barrier — accounts space and traffic, checks the cap, and assembles
// each destination's inbox from the senders' columns in machine order, so
// delivery order, metrics, and traces are deterministic and
// executor-independent. The columns backing the inboxes consumed this round
// are recycled into the column pool.
func (c *Cluster) Round(f RoundFunc) error {
	c.metrics.Rounds++
	M := c.cfg.Machines
	for machine := range c.inbox {
		c.inbox[machine].Reset()
	}
	c.exec.Execute(M, func(machine int) {
		f(machine, &c.inbox[machine], &c.outboxes[machine])
	})
	// Deterministic merge after the barrier: traffic totals come from the
	// per-outbox counters, and each inbox lists the senders' columns in
	// machine order, so its cursor yields records ordered by (sender,
	// emission order) regardless of the executor's scheduling.
	c.active = c.active[:0]
	for machine := 0; machine < M; machine++ {
		o := &c.outboxes[machine]
		if o.cur != nil {
			panic(fmt.Sprintf("mpc: machine %d ended the round with an open record (Begin without End)", machine))
		}
		c.outWords[machine] = o.words
		c.metrics.WordsSent += int64(o.words)
		c.metrics.Messages += int64(o.count)
		for _, dest := range o.dests {
			if len(c.senders[dest]) == 0 {
				c.active = append(c.active, dest)
			}
			c.senders[dest] = append(c.senders[dest], machine)
		}
	}
	// The round's computations have consumed the previous inboxes; recycle
	// their columns and empty them before handing over the new ones.
	for machine := range c.inbox {
		c.inbox[machine].clear()
		c.inWords[machine] = 0
	}
	for _, dest := range c.active {
		in := &c.inbox[dest]
		for _, src := range c.senders[dest] {
			col := c.outboxes[src].byDest[dest]
			in.segs = append(in.segs, segment{from: src, col: col})
			in.records += len(col.recs)
			in.words += col.words
		}
		c.inWords[dest] = in.words
		c.senders[dest] = c.senders[dest][:0]
	}
	for machine := 0; machine < M; machine++ {
		c.outboxes[machine].reset()
	}
	var violated bool
	maxLoad := 0
	for machine := 0; machine < M; machine++ {
		used := c.resident[machine] + c.inWords[machine] + c.outWords[machine]
		if used > maxLoad {
			maxLoad = used
		}
		if used > c.metrics.MaxSpace {
			c.metrics.MaxSpace = used
		}
		if c.cfg.SpaceCap > 0 && used > c.cfg.SpaceCap {
			c.metrics.Violations++
			violated = true
		}
	}
	if c.cfg.Trace {
		stat := RoundStat{Round: c.metrics.Rounds, MaxLoad: maxLoad}
		for machine := range c.inbox {
			stat.Words += int64(c.inWords[machine])
			stat.Messages += c.inbox[machine].records
		}
		c.trace = append(c.trace, stat)
	}
	if violated && c.cfg.Strict {
		return fmt.Errorf("%w (cap %d words)", ErrSpaceExceeded, c.cfg.SpaceCap)
	}
	return nil
}

// Quiet runs a round in which no machine sends anything; useful to charge a
// round of pure local computation.
func (c *Cluster) Quiet() error {
	return c.Round(func(int, *Inbox, *Outbox) {})
}
