// Package mpc simulates the MapReduce (MRC) / massively-parallel-computation
// model of Karloff, Suri and Vassilvitskii, which is the execution model of
// the paper under reproduction.
//
// A Cluster has M machines, each with a space cap of S words. Computation
// proceeds in synchronous rounds: in a round every machine reads the messages
// delivered to it, performs an arbitrary local computation, and emits
// messages to be delivered at the start of the next round. The simulator
//
//   - counts rounds (the model's primary efficiency measure),
//   - counts every word communicated,
//   - tracks a per-machine space high-water mark, defined per round as
//     resident words + incoming words + outgoing words, and
//   - enforces the space cap, either strictly (an over-cap round returns
//     ErrSpaceExceeded, mirroring the explicit "fail" lines in the paper's
//     Algorithms 1, 3 and 4) or leniently (violations are only recorded),
//
// so the quantities bounded by the paper's theorems — rounds and space per
// machine — are measured, not asserted.
//
// Resident state (the partition of the input held by each machine) lives in
// the algorithm's own data structures for speed; algorithms declare its size
// honestly via SetResident/AddResident. Message traffic is accounted
// automatically.
//
// The broadcast and aggregation helpers implement the degree-d broadcast
// tree of §2.2/§4.1 of the paper as real message rounds, so "send C to all
// machines" costs the ceil(log_d M) rounds the paper charges for it.
package mpc

import (
	"errors"
	"fmt"
)

// ErrSpaceExceeded is returned when a machine exceeds its space cap in
// strict mode.
var ErrSpaceExceeded = errors.New("mpc: machine space cap exceeded")

// Message is a bundle of words sent from one machine to another. Ints and
// Floats each count one word per entry; a delivered message also carries one
// header word (the sender).
type Message struct {
	From, To int
	Ints     []int64
	Floats   []float64
}

// Words returns the accounted size of the message in words.
func (m *Message) Words() int { return 1 + len(m.Ints) + len(m.Floats) }

// Config configures a Cluster.
type Config struct {
	// Machines is M, the number of machines. Must be >= 1.
	Machines int
	// SpaceCap is S, the per-machine space cap in words. <= 0 disables
	// enforcement (the high-water mark is still tracked).
	SpaceCap int
	// Strict makes Round return ErrSpaceExceeded when a machine exceeds the
	// cap; otherwise violations are only counted in Metrics.Violations.
	Strict bool
	// Trace records a RoundStat per executed round, retrievable via
	// Trace(). Off by default (it costs memory proportional to rounds).
	Trace bool
	// Workers selects the round executor: 0 or 1 runs machines sequentially
	// on one goroutine (the default), > 1 runs each round's machines
	// concurrently on a pool of that many goroutines, and < 0 sizes the
	// pool to runtime.NumCPU(). Results and metrics are identical across
	// executors for conforming RoundFuncs (see Executor).
	Workers int
	// Executor, when non-nil, overrides Workers with an explicit executor.
	Executor Executor
}

// RoundStat is the per-round record captured when tracing is enabled.
type RoundStat struct {
	Round    int   // 1-based round number
	Words    int64 // words communicated in this round
	Messages int   // messages delivered in this round
	MaxLoad  int   // max over machines of resident+in+out this round
}

// Metrics accumulates the model-level costs of an execution.
type Metrics struct {
	Machines    int   // cluster size M
	Rounds      int   // synchronous rounds executed
	WordsSent   int64 // total words communicated
	Messages    int64 // total messages delivered
	MaxSpace    int   // max over (machine, round) of resident+in+out words
	MaxResident int   // max declared resident words on any machine
	Violations  int   // number of (machine, round) space-cap violations
}

// Cluster is a simulated MRC/MPC cluster.
type Cluster struct {
	cfg      Config
	exec     Executor
	resident []int
	inbox    [][]Message
	metrics  Metrics
	trace    []RoundStat
}

// NewCluster returns a cluster with the given configuration.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines < 1 {
		panic(fmt.Sprintf("mpc: need at least 1 machine, got %d", cfg.Machines))
	}
	return &Cluster{
		cfg:      cfg,
		exec:     newExecutor(cfg),
		resident: make([]int, cfg.Machines),
		inbox:    make([][]Message, cfg.Machines),
	}
}

// M returns the number of machines.
func (c *Cluster) M() int { return c.cfg.Machines }

// Exec returns the cluster's round executor. Algorithms may use it to run
// per-machine local computation that happens between rounds (work the model
// charges as free local computation) under the same parallelism policy as
// the rounds themselves.
func (c *Cluster) Exec() Executor { return c.exec }

// Cap returns the per-machine space cap in words (<= 0 if disabled).
func (c *Cluster) Cap() int { return c.cfg.SpaceCap }

// Metrics returns a copy of the accumulated metrics.
func (c *Cluster) Metrics() Metrics {
	m := c.metrics
	m.Machines = c.cfg.Machines
	return m
}

// Trace returns the per-round records captured so far (nil unless tracing
// was enabled in the Config). The slice must not be modified.
func (c *Cluster) Trace() []RoundStat { return c.trace }

// SetResident declares the resident state size of a machine, in words.
func (c *Cluster) SetResident(machine, words int) {
	c.resident[machine] = words
	if words > c.metrics.MaxResident {
		c.metrics.MaxResident = words
	}
}

// AddResident adjusts the declared resident state size of a machine.
func (c *Cluster) AddResident(machine, delta int) {
	c.SetResident(machine, c.resident[machine]+delta)
}

// Resident returns the declared resident words of a machine.
func (c *Cluster) Resident(machine int) int { return c.resident[machine] }

// Inbox returns the messages delivered to a machine at the start of the
// current round. The slice must not be modified.
func (c *Cluster) Inbox(machine int) []Message { return c.inbox[machine] }

// Outbox collects the messages a machine emits during a round, bucketed by
// destination so the post-round merge can deliver to each inbox without
// scanning every message.
type Outbox struct {
	from    int
	cluster *Cluster
	byDest  [][]Message
	dests   []int // destinations with at least one message, in first-use order
	words   int
	count   int
}

// Send emits a message to machine `to` with the given payload. Payload
// slices are retained; callers must not reuse them.
func (o *Outbox) Send(to int, ints []int64, floats []float64) {
	if to < 0 || to >= o.cluster.cfg.Machines {
		panic(fmt.Sprintf("mpc: send to invalid machine %d (M=%d)", to, o.cluster.cfg.Machines))
	}
	if o.byDest == nil {
		o.byDest = make([][]Message, o.cluster.cfg.Machines)
	}
	if len(o.byDest[to]) == 0 {
		o.dests = append(o.dests, to)
	}
	m := Message{From: o.from, To: to, Ints: ints, Floats: floats}
	o.words += m.Words()
	o.count++
	o.byDest[to] = append(o.byDest[to], m)
}

// SendInts is shorthand for Send(to, ints, nil).
func (o *Outbox) SendInts(to int, ints ...int64) { o.Send(to, ints, nil) }

// RoundFunc is the local computation of one machine in one round: it reads
// the machine's inbox and emits messages for the next round.
//
// Invocations for different machines may run concurrently (see
// Config.Workers), so a RoundFunc must confine its writes to state owned by
// its machine: its Outbox, elements of shared slices indexed by data the
// machine owns, or per-machine structs. Shared state may be read freely —
// the simulator never mutates cluster state while a round is executing.
type RoundFunc func(machine int, in []Message, out *Outbox)

// Round executes one synchronous round: it runs f on every machine via the
// configured executor, each machine writing to its own Outbox, then — after
// the barrier — accounts space and traffic, checks the cap, and delivers the
// emitted messages in machine order, so delivery, metrics, and traces are
// deterministic and executor-independent.
func (c *Cluster) Round(f RoundFunc) error {
	c.metrics.Rounds++
	outboxes := make([]*Outbox, c.cfg.Machines)
	for machine := range outboxes {
		outboxes[machine] = &Outbox{from: machine, cluster: c}
	}
	c.exec.Execute(c.cfg.Machines, func(machine int) {
		f(machine, c.inbox[machine], outboxes[machine])
	})
	// Deterministic merge after the barrier: traffic totals come from the
	// per-outbox counters, and each inbox is assembled from the outboxes in
	// machine order, so it sees messages ordered by (sender, emission
	// order) regardless of the executor's scheduling. Assembly is
	// per-destination work and runs under the executor as well.
	outWords := make([]int, c.cfg.Machines)
	senders := make([][]int, c.cfg.Machines) // dest -> sending machines, in machine order
	var active []int                         // destinations with at least one sender
	for machine, out := range outboxes {
		outWords[machine] = out.words
		c.metrics.WordsSent += int64(out.words)
		c.metrics.Messages += int64(out.count)
		for _, dest := range out.dests {
			if len(senders[dest]) == 0 {
				active = append(active, dest)
			}
			senders[dest] = append(senders[dest], machine)
		}
	}
	inWords := make([]int, c.cfg.Machines)
	next := make([][]Message, c.cfg.Machines)
	// Assemble only the inboxes that received anything; in the common
	// sample-to-central rounds that is a single destination, so the pool is
	// sized by real work, not by M.
	c.exec.Execute(len(active), func(k int) {
		dest := active[k]
		total := 0
		for _, src := range senders[dest] {
			total += len(outboxes[src].byDest[dest])
		}
		msgs := make([]Message, 0, total)
		words := 0
		for _, src := range senders[dest] {
			for _, m := range outboxes[src].byDest[dest] {
				words += m.Words()
				msgs = append(msgs, m)
			}
		}
		inWords[dest] = words
		next[dest] = msgs
	})
	var violated bool
	maxLoad := 0
	for machine := 0; machine < c.cfg.Machines; machine++ {
		used := c.resident[machine] + inWords[machine] + outWords[machine]
		if used > maxLoad {
			maxLoad = used
		}
		if used > c.metrics.MaxSpace {
			c.metrics.MaxSpace = used
		}
		if c.cfg.SpaceCap > 0 && used > c.cfg.SpaceCap {
			c.metrics.Violations++
			violated = true
		}
	}
	if c.cfg.Trace {
		stat := RoundStat{Round: c.metrics.Rounds, MaxLoad: maxLoad}
		for machine := range inWords {
			stat.Words += int64(inWords[machine])
			stat.Messages += len(next[machine])
		}
		c.trace = append(c.trace, stat)
	}
	c.inbox = next
	if violated && c.cfg.Strict {
		return fmt.Errorf("%w (cap %d words)", ErrSpaceExceeded, c.cfg.SpaceCap)
	}
	return nil
}

// Quiet runs a round in which no machine sends anything; useful to charge a
// round of pure local computation.
func (c *Cluster) Quiet() error {
	return c.Round(func(int, []Message, *Outbox) {})
}
