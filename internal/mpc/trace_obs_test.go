package mpc

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTracingDoesNotChangeResults is the determinism-vs-timing segregation
// proof at the mpc layer: attaching a TraceSink changes nothing the
// equivalence suites compare — state, metrics, and model traces are
// bit-identical with and without a sink, unsharded and sharded — while the
// sink itself observes exactly the executed rounds.
func TestTracingDoesNotChangeResults(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		for _, shards := range []int{0, 3} {
			base := Config{Machines: 33, SpaceCap: 1 << 20, Sparse: sparse, Shards: shards}
			wantState, wantMetrics, wantTrace, err := runShardWorkload(base)
			if err != nil {
				t.Fatalf("sparse=%v shards=%d untraced: %v", sparse, shards, err)
			}

			ring := obs.NewRingSink(1024)
			traced := base
			traced.Sink = ring
			traced.TraceLabel = "workload"
			state, metrics, trace, err := runShardWorkload(traced)
			if err != nil {
				t.Fatalf("sparse=%v shards=%d traced: %v", sparse, shards, err)
			}
			if !reflect.DeepEqual(state, wantState) {
				t.Errorf("sparse=%v shards=%d: tracing changed state", sparse, shards)
			}
			if metrics != wantMetrics {
				t.Errorf("sparse=%v shards=%d: tracing changed metrics\n got %+v\nwant %+v",
					sparse, shards, metrics, wantMetrics)
			}
			if !reflect.DeepEqual(trace, wantTrace) {
				t.Errorf("sparse=%v shards=%d: tracing changed the model trace", sparse, shards)
			}

			// The sink saw every round, in order, with the model quantities
			// agreeing with the model trace and timing fields consistent.
			spans := ring.Snapshot()
			if len(spans) != metrics.Rounds {
				t.Fatalf("sparse=%v shards=%d: %d spans for %d rounds",
					sparse, shards, len(spans), metrics.Rounds)
			}
			for i, s := range spans {
				st := wantTrace[i]
				if s.Round != st.Round || s.Words != st.Words ||
					s.Messages != st.Messages || s.MaxLoad != st.MaxLoad ||
					s.Active != st.Active {
					t.Errorf("span %d model quantities diverge from RoundStat:\nspan %+v\nstat %+v",
						i, s, st)
				}
				if s.Label != "workload" || s.Cluster == 0 {
					t.Errorf("span %d label/cluster not set: %+v", i, s)
				}
				if s.End.Before(s.Start) {
					t.Errorf("span %d ends before it starts", i)
				}
				if sum := s.Compute + s.Merge + s.Barrier + s.Replay; sum > s.Duration()+time.Millisecond {
					t.Errorf("span %d phases (%v) exceed duration (%v)", i, sum, s.Duration())
				}
				if shards > 1 && s.Active > 0 && len(s.ShardWords) != 3 {
					t.Errorf("span %d: sharded run should report 3 shard wire columns, got %v",
						i, s.ShardWords)
				}
			}
		}
	}
}

// TestShardedSpanWireWords checks the per-shard wire accounting: in a
// single-process sharded cluster every cross-shard column is shipped, so
// summing a round's ShardWords over rounds must equal the wire words the
// transport actually moved (which the in-memory transport counts too).
func TestShardedSpanWireWords(t *testing.T) {
	ring := obs.NewRingSink(64)
	c := NewCluster(Config{Machines: 8, Shards: 2, Sink: ring})
	defer c.Close()
	// Machine m sends one 2-word record to machine (m+4)%8 — every column
	// crosses the shard boundary (shards are [0,4) and [4,8)).
	err := c.Round(func(m int, in *Inbox, out *Outbox) {
		out.SendInts((m+4)%8, int64(m), int64(m))
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := ring.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	var wire int64
	for _, w := range spans[0].ShardWords {
		wire += w
	}
	if wire != spans[0].Words {
		t.Errorf("all traffic is cross-shard here, so wire words (%d) should equal delivered words (%d)",
			wire, spans[0].Words)
	}
}

// TestQuietRoundEmitsSpan checks Quiet keeps the span stream's round
// numbering contiguous with no compute or exchange time.
func TestQuietRoundEmitsSpan(t *testing.T) {
	ring := obs.NewRingSink(8)
	c := NewCluster(Config{Machines: 4, Sink: ring})
	defer c.Close()
	if err := c.Round(func(m int, in *Inbox, out *Outbox) {}); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiet(); err != nil {
		t.Fatal(err)
	}
	spans := ring.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	q := spans[1]
	if q.Round != 2 || q.Compute != 0 || q.Barrier != 0 || q.Active != 0 {
		t.Errorf("quiet span wrong: %+v", q)
	}
}

// TestRoundTraceOffNoAllocs pins the tracing-off contract: with no sink
// configured the steady-state round path allocates exactly what it did
// before tracing existed (1 object per round for this workload, a fixed
// Round bookkeeping cost) — the instrumentation adds zero.
func TestRoundTraceOffNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; pin measured without -race")
	}
	const machines = 64
	c := NewCluster(Config{Machines: machines})
	defer c.Close()
	round := func() {
		err := c.Round(func(m int, in *Inbox, out *Outbox) {
			for _, ok := in.Next(); ok; _, ok = in.Next() {
			}
			out.SendInts((m+machines/2)%machines, int64(m), int64(m))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		round() // warm the column pool and merge scratch
	}
	const preTraceBaseline = 1 // measured on this workload before tracing landed
	if avg := testing.AllocsPerRun(100, round); avg > preTraceBaseline {
		t.Fatalf("tracing-off round allocates %.1f objects per round, want <= %d (tracing must add zero)",
			avg, preTraceBaseline)
	}
}
