package mpc

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// runShardWorkload drives a structurally rich deterministic workload — a
// dense scatter, a sparse funnel with self-arming, float payloads, a quiet
// round — and returns the per-machine state, metrics, and trace. It is the
// oracle body for the sharding equivalence tests and safe to run off the
// test goroutine (it returns errors instead of failing t).
func runShardWorkload(cfg Config) ([]int64, Metrics, []RoundStat, error) {
	cfg.Trace = true
	c := NewCluster(cfg)
	defer c.Close()
	M := cfg.Machines
	state := make([]int64, M)

	// Round 1: every machine scatters two records.
	c.ArmAll()
	err := c.Round(func(m int, in *Inbox, out *Outbox) {
		out.Begin((m*7 + 1) % M)
		out.Int(int64(m))
		out.Float(float64(m) * 0.5)
		out.End()
		out.SendInts((m+3)%M, int64(m), int64(m*m))
	})
	if err != nil {
		return nil, Metrics{}, nil, fmt.Errorf("scatter round: %w", err)
	}

	// Funnel rounds: receivers fold their traffic toward machine 0; every
	// 8th machine self-arms once more after it first accumulates state.
	for r := 0; r < 6; r++ {
		err := c.Round(func(m int, in *Inbox, out *Outbox) {
			var sum int64
			for rec, ok := in.Next(); ok; rec, ok = in.Next() {
				sum += int64(rec.From)
				for _, v := range rec.Ints {
					sum += v
				}
				for _, f := range rec.Floats {
					sum += int64(f * 2)
				}
			}
			if sum != 0 {
				state[m] += sum
				if m > 0 {
					out.SendInts(m/2, sum)
				}
				if m%8 == 0 {
					c.Arm(m)
				}
			}
		})
		if err != nil {
			return nil, Metrics{}, nil, fmt.Errorf("funnel round %d: %w", r, err)
		}
		c.SetResident(r%M, 10+r)
	}
	if err := c.Quiet(); err != nil {
		return nil, Metrics{}, nil, fmt.Errorf("quiet round: %w", err)
	}
	return state, c.Metrics(), c.Trace(), nil
}

// TestShardedEquivalence is the mpc-level oracle: state, metrics, and
// traces are bit-identical across unsharded execution, K in-memory shards,
// and K TCP-loopback shards, dense and sparse, sequential and pooled.
func TestShardedEquivalence(t *testing.T) {
	for _, M := range []int{1, 2, 5, 33} {
		for _, sparse := range []bool{false, true} {
			base := Config{Machines: M, SpaceCap: 1 << 20, Sparse: sparse}
			wantState, wantMetrics, wantTrace, err := runShardWorkload(base)
			if err != nil {
				t.Fatalf("M=%d sparse=%v unsharded: %v", M, sparse, err)
			}
			variants := []struct {
				name string
				cfg  Config
			}{
				{"mem-k2", Config{Shards: 2}},
				{"mem-k3", Config{Shards: 3}},
				{"mem-k4-pooled", Config{Shards: 4, Workers: 4}},
				{"tcp-k2", Config{Shards: 2, Transport: TCPLoopback(TCPOptions{})}},
				{"tcp-k4-pooled", Config{Shards: 4, Workers: 4, Transport: TCPLoopback(TCPOptions{})}},
			}
			for _, v := range variants {
				cfg := base
				cfg.Shards = v.cfg.Shards
				cfg.Workers = v.cfg.Workers
				cfg.Transport = v.cfg.Transport
				state, metrics, trace, err := runShardWorkload(cfg)
				if err != nil {
					t.Fatalf("M=%d sparse=%v %s: %v", M, sparse, v.name, err)
				}
				if !reflect.DeepEqual(state, wantState) {
					t.Errorf("M=%d sparse=%v %s: state diverged\n got %v\nwant %v", M, sparse, v.name, state, wantState)
				}
				if metrics != wantMetrics {
					t.Errorf("M=%d sparse=%v %s: metrics diverged\n got %+v\nwant %+v", M, sparse, v.name, metrics, wantMetrics)
				}
				if !reflect.DeepEqual(trace, wantTrace) {
					t.Errorf("M=%d sparse=%v %s: trace diverged\n got %v\nwant %v", M, sparse, v.name, trace, wantTrace)
				}
			}
		}
	}
}

// TestReplicatedShardingLockstep runs K full replicas of the workload on K
// goroutines, each owning exactly one shard of a shared transport group —
// the multi-process deployment shape of cmd/mrshard, in-process. Every
// replica must finish with the unsharded state and metrics.
func TestReplicatedShardingLockstep(t *testing.T) {
	for _, transport := range []string{"mem", "tcp"} {
		const M, K = 26, 3
		base := Config{Machines: M, SpaceCap: 1 << 20, Sparse: true}
		wantState, wantMetrics, wantTrace, err := runShardWorkload(base)
		if err != nil {
			t.Fatalf("unsharded: %v", err)
		}

		var groups [][]Transport
		switch transport {
		case "mem":
			eps, err := NewMemGroup(K)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < K; i++ {
				groups = append(groups, []Transport{eps[i]})
			}
		case "tcp":
			nodes := make([]*TCPNode, K)
			addrs := make([]string, K)
			for i := range nodes {
				nd, err := ListenTCP(i, K, "127.0.0.1:0", TCPOptions{})
				if err != nil {
					t.Fatal(err)
				}
				defer nd.Close()
				nodes[i] = nd
				addrs[i] = nd.Addr()
			}
			for _, nd := range nodes {
				if err := nd.Connect(addrs); err != nil {
					t.Fatal(err)
				}
			}
			for i := range nodes {
				ep, err := nodes[i].Endpoint(K)
				if err != nil {
					t.Fatal(err)
				}
				groups = append(groups, []Transport{ep})
			}
		}

		states := make([][]int64, K)
		metrics := make([]Metrics, K)
		traces := make([][]RoundStat, K)
		errs := make([]error, K)
		var wg sync.WaitGroup
		for i := 0; i < K; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cfg := base
				cfg.Shards = K
				cfg.Transport = func(k int) ([]Transport, error) {
					if k != K {
						return nil, fmt.Errorf("replica %d: want %d shards, got %d", i, K, k)
					}
					return groups[i], nil
				}
				states[i], metrics[i], traces[i], errs[i] = runShardWorkload(cfg)
			}(i)
		}
		wg.Wait()
		for i := 0; i < K; i++ {
			if errs[i] != nil {
				t.Fatalf("%s replica %d: %v", transport, i, errs[i])
			}
			if !reflect.DeepEqual(states[i], wantState) {
				t.Errorf("%s replica %d: state diverged", transport, i)
			}
			if metrics[i] != wantMetrics {
				t.Errorf("%s replica %d: metrics diverged\n got %+v\nwant %+v", transport, i, metrics[i], wantMetrics)
			}
			if !reflect.DeepEqual(traces[i], wantTrace) {
				t.Errorf("%s replica %d: trace diverged", transport, i)
			}
		}
	}
}

// TestCloseIdempotentAndGuard covers the Close regression: Close twice is
// fine, and Round/Quiet on a closed cluster return ErrClusterClosed
// instead of panicking on (or hanging against) the released pool.
func TestCloseIdempotentAndGuard(t *testing.T) {
	noop := func(m int, in *Inbox, out *Outbox) {}
	for _, cfg := range []Config{
		{Machines: 4},
		{Machines: 4, Workers: 3},
		{Machines: 8, Shards: 2},
		{Machines: 8, Shards: 3, Workers: 2},
	} {
		c := NewCluster(cfg)
		if err := c.Round(noop); err != nil {
			t.Fatalf("cfg %+v: round on fresh cluster: %v", cfg, err)
		}
		c.Close()
		c.Close() // idempotent
		if err := c.Round(noop); !errors.Is(err, ErrClusterClosed) {
			t.Fatalf("cfg %+v: Round after Close returned %v, want ErrClusterClosed", cfg, err)
		}
		if err := c.Quiet(); !errors.Is(err, ErrClusterClosed) {
			t.Fatalf("cfg %+v: Quiet after Close returned %v, want ErrClusterClosed", cfg, err)
		}
	}
}

// TestShardsClamped: shard counts beyond M clamp, 0/1 run unsharded.
func TestShardsClamped(t *testing.T) {
	for _, tc := range []struct{ m, shards, want int }{
		{1, 4, 1}, {3, 8, 3}, {8, 0, 1}, {8, 1, 1}, {8, 3, 3},
	} {
		c := NewCluster(Config{Machines: tc.m, Shards: tc.shards})
		if got := c.Shards(); got != tc.want {
			t.Errorf("M=%d Shards=%d: effective %d, want %d", tc.m, tc.shards, got, tc.want)
		}
		c.Close()
	}
}
