package mpc

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunJobWordCount(t *testing.T) {
	// Classic word count: keys are "words", values are counts.
	c := NewCluster(Config{Machines: 4})
	input := make([][]KV, 4)
	words := []int64{7, 3, 7, 7, 3, 9, 9, 9, 9, 1}
	for i, w := range words {
		m := i % 4
		input[m] = append(input[m], KV{Key: w, Value: 1})
	}
	out, err := RunJob(c, input,
		func(kv KV) []KV { return []KV{kv} },
		func(key int64, values []int64) []KV {
			sum := int64(0)
			for _, v := range values {
				sum += v
			}
			return []KV{{Key: key, Value: sum}}
		})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int64{}
	for _, part := range out {
		for _, kv := range part {
			counts[kv.Key] += kv.Value
		}
	}
	want := map[int64]int64{7: 3, 3: 2, 9: 4, 1: 1}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("count[%d] = %d, want %d", k, counts[k], v)
		}
	}
	if c.Metrics().Rounds != 2 {
		t.Fatalf("job took %d rounds, want 2", c.Metrics().Rounds)
	}
}

func TestRunJobKeyLocality(t *testing.T) {
	// All pairs with the same key must be reduced together: a reducer that
	// emits the number of values it saw per key should see each key once
	// globally.
	c := NewCluster(Config{Machines: 3})
	input := make([][]KV, 3)
	for i := 0; i < 30; i++ {
		input[i%3] = append(input[i%3], KV{Key: int64(i % 5), Value: int64(i)})
	}
	out, err := RunJob(c, input,
		func(kv KV) []KV { return []KV{kv} },
		func(key int64, values []int64) []KV {
			return []KV{{Key: key, Value: int64(len(values))}}
		})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int{}
	for _, part := range out {
		for _, kv := range part {
			seen[kv.Key]++
			if kv.Value != 6 {
				t.Fatalf("key %d reduced over %d values, want 6", kv.Key, kv.Value)
			}
		}
	}
	for k, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("key %d reduced %d times", k, cnt)
		}
	}
}

func TestRunJobMapperFanOut(t *testing.T) {
	// A mapper may emit multiple pairs: compute degree of each endpoint
	// from an edge list.
	c := NewCluster(Config{Machines: 2})
	edges := [][2]int64{{0, 1}, {0, 2}, {1, 2}, {2, 3}}
	input := make([][]KV, 2)
	for i, e := range edges {
		input[i%2] = append(input[i%2], KV{Key: e[0], Value: e[1]})
	}
	out, err := RunJob(c, input,
		func(kv KV) []KV {
			return []KV{{Key: kv.Key, Value: 1}, {Key: kv.Value, Value: 1}}
		},
		func(key int64, values []int64) []KV {
			sum := int64(0)
			for _, v := range values {
				sum += v
			}
			return []KV{{Key: key, Value: sum}}
		})
	if err != nil {
		t.Fatal(err)
	}
	deg := map[int64]int64{}
	for _, part := range out {
		for _, kv := range part {
			deg[kv.Key] = kv.Value
		}
	}
	want := map[int64]int64{0: 2, 1: 2, 2: 3, 3: 1}
	for k, v := range want {
		if deg[k] != v {
			t.Fatalf("deg[%d] = %d, want %d", k, deg[k], v)
		}
	}
}

func TestRunJobSpaceCapApplies(t *testing.T) {
	// A shuffle that funnels everything to one key must blow a tiny cap.
	c := NewCluster(Config{Machines: 2, SpaceCap: 5, Strict: true})
	input := [][]KV{
		{{Key: 0, Value: 1}, {Key: 0, Value: 2}, {Key: 0, Value: 3}},
		{{Key: 0, Value: 4}, {Key: 0, Value: 5}, {Key: 0, Value: 6}},
	}
	_, err := RunJob(c, input,
		func(kv KV) []KV { return []KV{kv} },
		func(key int64, values []int64) []KV { return nil })
	if err == nil {
		t.Fatal("expected space cap violation")
	}
}

func TestRunJobChained(t *testing.T) {
	// Two chained jobs: first computes per-key sums, second computes the
	// histogram of sums.
	c := NewCluster(Config{Machines: 3})
	input := make([][]KV, 3)
	for i := 0; i < 12; i++ {
		input[i%3] = append(input[i%3], KV{Key: int64(i % 4), Value: 1})
	}
	sums, err := RunJob(c, input,
		func(kv KV) []KV { return []KV{kv} },
		func(key int64, values []int64) []KV {
			total := int64(0)
			for _, v := range values {
				total += v
			}
			return []KV{{Key: key, Value: total}}
		})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := RunJob(c, sums,
		func(kv KV) []KV { return []KV{{Key: kv.Value, Value: 1}} },
		func(key int64, values []int64) []KV {
			return []KV{{Key: key, Value: int64(len(values))}}
		})
	if err != nil {
		t.Fatal(err)
	}
	// All four keys have sum 3, so the histogram is {3: 4}.
	got := map[int64]int64{}
	for _, part := range hist {
		for _, kv := range part {
			got[kv.Key] = kv.Value
		}
	}
	if len(got) != 1 || got[3] != 4 {
		t.Fatalf("histogram = %v, want {3:4}", got)
	}
	if c.Metrics().Rounds != 4 {
		t.Fatalf("two jobs took %d rounds, want 4", c.Metrics().Rounds)
	}
}

func TestSortInt64s(t *testing.T) {
	f := func(vals []int64) bool {
		a := append([]int64(nil), vals...)
		sortInt64s(a)
		return sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
