package mpc

// This file implements the formal key-value MapReduce layer of Karloff,
// Suri and Vassilvitskii on top of the round-level simulator. In their
// formalization an algorithm is a sequence of jobs; each job applies a map
// function to every input record, shuffles the emitted pairs so that all
// pairs with the same key land on the same machine, and applies a reduce
// function per key. The paper's algorithms are written against the
// round-level API directly (as the paper's own implementation sections do),
// but the job layer documents the model the round-level API simulates and
// is exercised by the test suite; a job costs exactly one shuffle round.

// KV is a key-value pair; key and value each count one word.
type KV struct {
	Key, Value int64
}

// MapFunc transforms one input record into zero or more intermediate pairs.
type MapFunc func(kv KV) []KV

// ReduceFunc folds all values that share a key into zero or more output
// pairs.
type ReduceFunc func(key int64, values []int64) []KV

// RunJob executes one MapReduce job on the cluster: input[machine] is each
// machine's resident partition of the records; the mapper runs where the
// data lives, emitted pairs are shuffled by hash(key) mod M (executed as a
// real message round, so space caps apply to the shuffle), and the reducer
// runs on the receiving machine. The returned slice holds each machine's
// output partition, which can be fed to a subsequent job.
func RunJob(c *Cluster, input [][]KV, mapf MapFunc, reducef ReduceFunc) ([][]KV, error) {
	if len(input) != c.M() {
		panic("mpc: RunJob input must have one partition per machine")
	}
	dest := func(key int64) int {
		d := int(key % int64(c.M()))
		if d < 0 {
			d += c.M()
		}
		return d
	}
	// Round 1: map and shuffle. The mappers run where the data lives, so
	// under sparse scheduling every machine with a non-empty partition is
	// armed; the reducers of round 2 run off their inboxes on their own.
	for machine := 0; machine < c.M(); machine++ {
		if len(input[machine]) > 0 {
			c.Arm(machine)
		}
	}
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		for _, rec := range input[machine] {
			for _, kv := range mapf(rec) {
				out.SendInts(dest(kv.Key), kv.Key, kv.Value)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	// Round 2: group by key and reduce.
	output := make([][]KV, c.M())
	err = c.Round(func(machine int, in *Inbox, out *Outbox) {
		groups := make(map[int64][]int64)
		var order []int64
		for msg, ok := in.Next(); ok; msg, ok = in.Next() {
			for i := 0; i+1 < len(msg.Ints); i += 2 {
				k, v := msg.Ints[i], msg.Ints[i+1]
				if _, seen := groups[k]; !seen {
					order = append(order, k)
				}
				groups[k] = append(groups[k], v)
			}
		}
		// Deterministic key order (insertion order is already deterministic
		// because machines run in id order, but sort anyway for clarity).
		sortInt64s(order)
		for _, k := range order {
			output[machine] = append(output[machine], reducef(k, groups[k])...)
		}
	})
	if err != nil {
		return nil, err
	}
	return output, nil
}

func sortInt64s(a []int64) {
	// Insertion-free shell sort keeps this dependency-free and is plenty
	// fast for per-machine key sets.
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j-gap] > a[j]; j -= gap {
				a[j-gap], a[j] = a[j], a[j-gap]
			}
		}
	}
}
