package mpc

// Tests for sparse round scheduling: the arming contract, dirty-set
// accounting equivalence against dense execution, the Quiet fast path, and
// the Active activity measurements.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// chatterScript runs a fixed multi-round conversation on a cluster: a
// central machine seeds work, receivers react, traffic decays geometrically
// — the shape of the paper's tail rounds. It arms exactly the machines that
// must act on empty inboxes, so it behaves identically dense and sparse.
func chatterScript(t *testing.T, c *Cluster) (string, Metrics) {
	t.Helper()
	m := c.M()
	var transcript strings.Builder
	record := func(round int) {
		for machine := 0; machine < m; machine++ {
			in := c.Inbox(machine)
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				fmt.Fprintf(&transcript, "r%d m%d<-%d:%v/%v;", round, machine, msg.From, msg.Ints, msg.Floats)
			}
			in.Reset()
		}
	}
	// Round 1: machine 0 fans out to a third of the cluster.
	c.Arm(0)
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine != 0 {
			return
		}
		for to := 1; to < m; to += 3 {
			out.SendInts(to, int64(to), 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	record(1)
	// Rounds 2..5: every receiver halves the fan-out back toward machine 0,
	// plus machine 1 self-arms a heartbeat in round 3.
	for round := 2; round <= 5; round++ {
		err := c.Round(func(machine int, in *Inbox, out *Outbox) {
			if round == 2 && machine == 1 {
				c.Arm(machine) // self-arm: runs round 3 with an empty inbox
			}
			if round == 3 && machine == 1 && in.Len() == 0 {
				out.Send(0, []int64{-1}, []float64{0.5})
			}
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				if len(msg.Ints) > 0 && msg.Ints[0] > 1 {
					out.SendInts(int(msg.Ints[0])/2, msg.Ints[0]/2)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		record(round)
	}
	// A quiet round plus a final dense round.
	if err := c.Quiet(); err != nil {
		t.Fatal(err)
	}
	c.ArmAll()
	err = c.Round(func(machine int, in *Inbox, out *Outbox) {
		out.SendInts((machine+1)%m, int64(machine))
	})
	if err != nil {
		t.Fatal(err)
	}
	record(7)
	return transcript.String(), c.Metrics()
}

// scrubActivity zeroes the activity fields, which are the only metrics
// allowed to differ between sparse and dense execution.
func scrubActivity(m Metrics) Metrics {
	m.ActiveSum, m.ActiveMax = 0, 0
	return m
}

func TestSparseMatchesDense(t *testing.T) {
	for _, workers := range []int{1, 4} {
		denseC := NewCluster(Config{Machines: 19, SpaceCap: 60, Workers: workers})
		denseT, denseM := chatterScript(t, denseC)
		denseC.Close()
		sparseC := NewCluster(Config{Machines: 19, SpaceCap: 60, Workers: workers, Sparse: true})
		sparseT, sparseM := chatterScript(t, sparseC)
		sparseC.Close()
		if denseT != sparseT {
			t.Fatalf("workers=%d transcripts diverge:\ndense:  %.300s\nsparse: %.300s", workers, denseT, sparseT)
		}
		if scrubActivity(denseM) != scrubActivity(sparseM) {
			t.Fatalf("workers=%d metrics diverge:\ndense:  %+v\nsparse: %+v", workers, denseM, sparseM)
		}
		if sparseM.ActiveSum >= denseM.ActiveSum {
			t.Fatalf("sparse ran %d invocations, dense %d — sparse must skip dormant machines",
				sparseM.ActiveSum, denseM.ActiveSum)
		}
	}
}

func TestSparseSkipsDormantMachines(t *testing.T) {
	c := NewCluster(Config{Machines: 100, Sparse: true, Trace: true})
	ran := make([]int, c.M())
	// Nothing armed, nothing in flight: nobody runs, but the round counts.
	if err := c.Round(func(machine int, in *Inbox, out *Outbox) { ran[machine]++ }); err != nil {
		t.Fatal(err)
	}
	for machine, n := range ran {
		if n != 0 {
			t.Fatalf("machine %d ran in an idle sparse round", machine)
		}
	}
	// Arm one machine; only it runs, and its receiver runs next round.
	c.Arm(42)
	if err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		ran[machine]++
		out.SendInts(7, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Round(func(machine int, in *Inbox, out *Outbox) { ran[machine]++ }); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range ran {
		total += n
	}
	if ran[42] != 1 || ran[7] != 1 || total != 2 {
		t.Fatalf("sparse scheduling ran the wrong machines: ran[42]=%d ran[7]=%d total=%d", ran[42], ran[7], total)
	}
	m := c.Metrics()
	if m.Rounds != 3 || m.ActiveSum != 2 || m.ActiveMax != 1 {
		t.Fatalf("activity accounting: %+v", m)
	}
	tr := c.Trace()
	if len(tr) != 3 || tr[0].Active != 0 || tr[1].Active != 1 || tr[2].Active != 1 {
		t.Fatalf("trace Active: %+v", tr)
	}
}

func TestSparseArmAllRunsEveryMachine(t *testing.T) {
	c := NewCluster(Config{Machines: 31, Sparse: true})
	ran := make([]int, c.M())
	c.ArmAll()
	if err := c.Round(func(machine int, in *Inbox, out *Outbox) { ran[machine]++ }); err != nil {
		t.Fatal(err)
	}
	for machine, n := range ran {
		if n != 1 {
			t.Fatalf("ArmAll: machine %d ran %d times", machine, n)
		}
	}
	// The flag is consumed: the next round is sparse again.
	if err := c.Round(func(machine int, in *Inbox, out *Outbox) { ran[machine]++ }); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().ActiveSum != int64(c.M()) {
		t.Fatalf("ArmAll must not leak into later rounds: %+v", c.Metrics())
	}
}

// TestQuietFastPathMetricsEquivalence pins the Quiet fast path to the
// metrics of the old implementation (a Round over M no-op RoundFuncs): same
// rounds, violations, space high-water and trace, on both dense and sparse
// clusters, including undelivered-traffic disposal.
func TestQuietFastPathMetricsEquivalence(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		run := func(quiet bool) (Metrics, []RoundStat, error) {
			c := NewCluster(Config{Machines: 5, SpaceCap: 10, Trace: true, Sparse: sparse})
			defer c.Close()
			c.SetResident(1, 13) // over cap: every round records a violation
			c.SetResident(2, 9)
			// Leave traffic in flight so the quiet round must discard it.
			c.Arm(0)
			err := c.Round(func(machine int, in *Inbox, out *Outbox) {
				if machine == 0 {
					out.SendInts(3, 1, 2, 3)
				}
			})
			if err != nil {
				return Metrics{}, nil, err
			}
			var qerr error
			if quiet {
				qerr = c.Quiet()
			} else {
				qerr = c.Round(func(int, *Inbox, *Outbox) {}) // the old Quiet
			}
			if qerr != nil {
				return Metrics{}, nil, qerr
			}
			// One more exchange proves the in-flight columns were recycled
			// identically.
			c.Arm(4)
			err = c.Round(func(machine int, in *Inbox, out *Outbox) {
				if machine == 4 && in.Len() == 0 {
					out.SendInts(0, 9)
				}
			})
			return c.Metrics(), c.Trace(), err
		}
		newM, newT, err := run(true)
		if err != nil {
			t.Fatal(err)
		}
		oldM, oldT, err := run(false)
		if err != nil {
			t.Fatal(err)
		}
		if scrubActivity(newM) != scrubActivity(oldM) {
			t.Fatalf("sparse=%v: Quiet fast path diverges from no-op round:\nfast: %+v\nold:  %+v", sparse, newM, oldM)
		}
		if len(newT) != len(oldT) {
			t.Fatalf("trace lengths diverge: %d vs %d", len(newT), len(oldT))
		}
		for i := range newT {
			a, b := newT[i], oldT[i]
			a.Active, b.Active = 0, 0
			if a != b {
				t.Fatalf("sparse=%v round %d trace diverges: %+v vs %+v", sparse, i+1, newT[i], oldT[i])
			}
		}
		if newT[1].Active != 0 {
			t.Fatalf("Quiet must not invoke RoundFuncs: %+v", newT[1])
		}
	}
}

func TestQuietStrictViolation(t *testing.T) {
	c := NewCluster(Config{Machines: 2, SpaceCap: 3, Strict: true})
	c.SetResident(0, 5)
	if err := c.Quiet(); !errors.Is(err, ErrSpaceExceeded) {
		t.Fatalf("err = %v, want ErrSpaceExceeded", err)
	}
	if c.Metrics().Violations != 1 {
		t.Fatalf("violations = %d", c.Metrics().Violations)
	}
}

// TestResidentDecreaseAccounting exercises the lazy residentMax repair: the
// machine holding the maximum shrinks while dormant machines keep the old
// values, and the per-round MaxLoad must follow exactly.
func TestResidentDecreaseAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 4, SpaceCap: 100, Trace: true, Sparse: true})
	c.SetResident(0, 50)
	c.SetResident(1, 30)
	if err := c.Quiet(); err != nil {
		t.Fatal(err)
	}
	c.SetResident(0, 10) // the max holder shrinks; machine 1 is the new max
	if err := c.Quiet(); err != nil {
		t.Fatal(err)
	}
	c.SetResident(1, 120) // over cap while dormant
	if err := c.Quiet(); err != nil {
		t.Fatal(err)
	}
	tr := c.Trace()
	if tr[0].MaxLoad != 50 || tr[1].MaxLoad != 30 || tr[2].MaxLoad != 120 {
		t.Fatalf("max loads: %+v", tr)
	}
	m := c.Metrics()
	if m.Violations != 1 || m.MaxSpace != 120 || m.MaxResident != 120 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestTreeHelpersSparse(t *testing.T) {
	// Broadcast and AggregateSum must produce identical metrics and results
	// on sparse and dense clusters (their arming covers the tree's senders).
	for _, machines := range []int{1, 2, 9, 17} {
		run := func(sparse bool) (int64, Metrics) {
			c := NewCluster(Config{Machines: machines, Sparse: sparse})
			defer c.Close()
			tr := NewTree(c, 0, 3)
			if err := tr.Broadcast(c, []int64{5}, nil); err != nil {
				t.Fatal(err)
			}
			total, err := tr.AllReduceSum(c, 1, func(machine int) []int64 {
				return []int64{int64(machine + 1)}
			})
			if err != nil {
				t.Fatal(err)
			}
			for machine := 0; machine < machines; machine++ {
				if c.Inbox(machine).Len() != 0 {
					t.Fatalf("machine %d inbox not drained", machine)
				}
			}
			return total[0], c.Metrics()
		}
		wantTotal := int64(machines) * int64(machines+1) / 2
		dTot, dM := run(false)
		sTot, sM := run(true)
		if dTot != wantTotal || sTot != wantTotal {
			t.Fatalf("machines=%d totals: dense %d sparse %d want %d", machines, dTot, sTot, wantTotal)
		}
		if scrubActivity(dM) != scrubActivity(sM) {
			t.Fatalf("machines=%d metrics diverge:\ndense:  %+v\nsparse: %+v", machines, dM, sM)
		}
	}
}

func TestRunJobSparse(t *testing.T) {
	run := func(sparse bool) ([][]KV, Metrics) {
		c := NewCluster(Config{Machines: 3, Sparse: sparse})
		defer c.Close()
		input := [][]KV{{{Key: 1, Value: 2}, {Key: 4, Value: 1}}, {{Key: 1, Value: 3}}, nil}
		out, err := RunJob(c, input,
			func(kv KV) []KV { return []KV{kv} },
			func(key int64, values []int64) []KV {
				sum := int64(0)
				for _, v := range values {
					sum += v
				}
				return []KV{{Key: key, Value: sum}}
			})
		if err != nil {
			t.Fatal(err)
		}
		return out, c.Metrics()
	}
	dOut, dM := run(false)
	sOut, sM := run(true)
	if fmt.Sprint(dOut) != fmt.Sprint(sOut) {
		t.Fatalf("RunJob output diverges: %v vs %v", dOut, sOut)
	}
	if scrubActivity(dM) != scrubActivity(sM) {
		t.Fatalf("RunJob metrics diverge: %+v vs %+v", dM, sM)
	}
}

// TestSelfArmPlusTrafficRunsOnce is the regression test for the accounting
// scratch: a machine that self-arms for the next round AND receives traffic
// in the same round must run exactly once, and a driver Arm after a
// self-arm must not double-enqueue it.
func TestSelfArmPlusTrafficRunsOnce(t *testing.T) {
	c := NewCluster(Config{Machines: 6, Sparse: true})
	ran := make([]int, c.M())
	// Round 1: machine 2 self-arms and sends to itself, so in round 2 it is
	// both armed and a receiver.
	c.Arm(2)
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 2 {
			c.Arm(2) // self-arm for round 2
			out.SendInts(2, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Arm(2) // driver re-arm must deduplicate against the self-arm
	err = c.Round(func(machine int, in *Inbox, out *Outbox) {
		ran[machine]++
		for _, ok := in.Next(); ok; _, ok = in.Next() {
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran[2] != 1 {
		t.Fatalf("machine 2 ran %d times in round 2, want exactly 1", ran[2])
	}
	if m := c.Metrics(); m.ActiveSum != 2 || m.ActiveMax != 1 {
		t.Fatalf("activity accounting: %+v", m)
	}
}
