package mpc

// This file implements sharded cluster execution: the machines of one
// logical Cluster are partitioned contiguously across K shards, each
// shard's RoundFuncs run through the ordinary executor, and cross-shard
// columns travel through a Transport instead of being handed directly to
// the destination inbox. Everything observable — delivery order, metrics,
// traces — is bit-identical to a single-process run.
//
// # Determinism
//
// The single-process merge delivers each destination's columns in
// ascending sender order. Sharding preserves that order structurally: the
// partition is contiguous (machines of shard u all precede machines of
// shard u+1), each batch is built by the same ascending walk over the
// sender machines, and received batches are replayed in ascending source
// shard order. A destination's inbox is therefore assembled as
//
//	[wire columns from shards below mine] ++ [local columns] ++
//	[wire columns from shards above mine]
//
// which is exactly ascending sender order again. Word and message totals
// are accumulated per shard during the walk and reduced into the cluster's
// Metrics — the coordinator reduction — and sum to the single-process
// totals because every column is counted exactly once, at its sender.
//
// # Ownership of processes
//
// The engine supports two deployment shapes through one rule set. In
// single-process sharding (mrserve -shards K, benchmarks) the factory
// returns all K endpoints, every shard is "owned", and cross-shard traffic
// genuinely travels through the transport while intra-shard traffic takes
// the ordinary zero-copy path. In multi-process replicated execution
// (cmd/mrshard) every process runs the whole deterministic driver — the
// round functions of all machines — but owns exactly one shard: only the
// owned shard's outbound columns are shipped, inbound wire columns replace
// the locally computed (bit-identical) copies for owned destinations, and
// the local copies of unowned pairs stand in for traffic this process will
// never see on the wire. Per (sender shard u, destination shard t):
//
//	ship    = owned[u] && u != t      (authoritative cross-shard traffic)
//	local   = u == t  || !owned[t]    (delivered from the local outbox)
//	discard = !ship && !local         (wire copy is authoritative)
//
// # Arming
//
// Self-armed machines (Cluster.Arm from inside a RoundFunc) propagate as a
// tiny control column on the end-of-round marker: each shard's marker
// carries the machine ids its RoundFuncs armed, and receivers enqueue them
// exactly as the local merge does. Deduplication via the cluster's armed
// bitmap makes local and wire application commute, so sparse schedules
// stay identical across process counts.

import (
	"fmt"
	"time"
)

// resumable is implemented by transports whose node rejoined an established
// mesh after a crash (ReconnectTCP): rounds before the resume point are
// re-executed detached — purely locally, no wire activity — because the
// peers already consumed them, and the engine reattaches to the wire
// exactly at the resume round while peers replay what this process missed.
type resumable interface {
	// DetachedRound reports whether cluster-relative round seq predates the
	// resume point.
	DetachedRound(seq uint32) bool
	// NoteDetachedRound records a locally-replayed round so the transport's
	// sequence tracking stays aligned with the wire.
	NoteDetachedRound(seq uint32)
}

// shardEngine is the sharded-execution state of a Cluster. It exists only
// when the effective shard count is at least 2.
type shardEngine struct {
	c       *Cluster
	k       int     // effective shard count, in [2, M]
	bounds  []int   // k+1 partition bounds; shard s holds [bounds[s], bounds[s+1])
	shardOf []int32 // machine -> shard
	eps     []Transport
	epOf    []int  // shard -> index into eps, -1 if not owned by this process
	owned   []bool // shard -> this process ships its traffic
	seq     uint32 // rounds exchanged so far
	broken  error  // first transport error; poisons subsequent rounds

	// res is set when this process's single endpoint supports detached
	// replay (a respawned worker); detached flags the round in flight as
	// predating the resume point, which turns off shipping entirely —
	// every column is delivered locally, as on a pure replica.
	res      resumable
	detached bool

	// Per-round scratch, reused so a steady-state round allocates little.
	bat        [][]*Batch  // [src shard][dst shard] outbound batches
	shardArmed [][]int32   // [shard] self-armed machines collected in the walk
	words      []int64     // [shard] words sent this round
	msgs       []int64     // [shard] records sent this round
	wirePre    [][]segment // [machine] wire columns from shards below the dest's
	wirePost   [][]segment // [machine] wire columns from shards above the dest's

	// Trace-only state (nil/zero unless the cluster has a Config.Sink):
	// wall-clock of the round's Phase B wire exchange, whether that round
	// replayed detached, and the wire words shipped per destination shard.
	// Strictly observational — never read by the deterministic round path.
	phaseExchange time.Duration
	lastDetached  bool
	traceWire     []int64
}

// effectiveShards returns the shard count a config actually runs with: K
// clamped to the machine count, and 1 (unsharded) unless at least 2.
func effectiveShards(cfg Config) int {
	k := cfg.Shards
	if k > cfg.Machines {
		k = cfg.Machines
	}
	if k < 2 {
		return 1
	}
	return k
}

// newShardEngine builds the sharded-execution state for a cluster, calling
// the transport factory (in-memory by default). Returns nil if the config
// resolves to unsharded execution.
func newShardEngine(c *Cluster, cfg Config) (*shardEngine, error) {
	k := effectiveShards(cfg)
	if k < 2 {
		return nil, nil
	}
	factory := cfg.Transport
	if factory == nil {
		factory = MemTransport
	}
	eps, err := factory(k)
	if err != nil {
		return nil, fmt.Errorf("mpc: transport factory for %d shards: %w", k, err)
	}
	M := cfg.Machines
	sc := &shardEngine{
		c:          c,
		k:          k,
		bounds:     make([]int, k+1),
		shardOf:    make([]int32, M),
		eps:        eps,
		epOf:       make([]int, k),
		owned:      make([]bool, k),
		bat:        make([][]*Batch, k),
		shardArmed: make([][]int32, k),
		words:      make([]int64, k),
		msgs:       make([]int64, k),
		wirePre:    make([][]segment, M),
		wirePost:   make([][]segment, M),
	}
	if cfg.Sink != nil {
		sc.traceWire = make([]int64, k)
	}
	for s := 0; s <= k; s++ {
		sc.bounds[s] = s * M / k
	}
	for s := 0; s < k; s++ {
		sc.epOf[s] = -1
		sc.bat[s] = make([]*Batch, k)
		for m := sc.bounds[s]; m < sc.bounds[s+1]; m++ {
			sc.shardOf[m] = int32(s)
		}
	}
	for i, ep := range eps {
		if ep.Shards() != k {
			sc.closeEndpoints()
			return nil, fmt.Errorf("mpc: transport endpoint %d built for %d shards, cluster runs %d", i, ep.Shards(), k)
		}
		s := ep.Shard()
		if s < 0 || s >= k {
			sc.closeEndpoints()
			return nil, fmt.Errorf("mpc: transport endpoint %d speaks for invalid shard %d (K=%d)", i, s, k)
		}
		if sc.owned[s] {
			sc.closeEndpoints()
			return nil, fmt.Errorf("mpc: duplicate transport endpoint for shard %d", s)
		}
		sc.owned[s] = true
		sc.epOf[s] = i
	}
	// A multi-process worker owns exactly one endpoint; if its node rejoined
	// the mesh after a crash, rounds before the resume point replay detached.
	if len(eps) == 1 {
		if r, ok := eps[0].(resumable); ok {
			sc.res = r
		}
	}
	return sc, nil
}

// closeEndpoints closes every transport endpoint. Idempotent through the
// endpoints' own idempotency.
func (sc *shardEngine) closeEndpoints() {
	for _, ep := range sc.eps {
		_ = ep.Close()
	}
}

// execute runs f over the scheduled machines shard by shard through the
// cluster's executor — the per-shard batches mirror how a fleet schedules
// the round, and change nothing observable.
func (sc *shardEngine) execute(f RoundFunc, run []int, sparse bool) {
	c := sc.c
	if sparse {
		lo := 0
		for s := 0; s < sc.k; s++ {
			hi := lo
			for hi < len(run) && run[hi] < sc.bounds[s+1] {
				hi++
			}
			if hi > lo {
				sub := run[lo:hi]
				c.exec.Execute(len(sub), func(i int) {
					m := sub[i]
					f(m, &c.inbox[m], &c.outboxes[m])
				})
			}
			lo = hi
		}
		return
	}
	for s := 0; s < sc.k; s++ {
		lo, hi := sc.bounds[s], sc.bounds[s+1]
		c.exec.Execute(hi-lo, func(i int) {
			m := lo + i
			f(m, &c.inbox[m], &c.outboxes[m])
		})
	}
}

// mergeOne classifies one sender machine's outbox: words and messages are
// charged to its shard, each destination column is shipped, delivered
// locally, or discarded per the ownership rules, and self-armed machines
// are collected for the control column.
func (sc *shardEngine) mergeOne(m int) {
	c := sc.c
	o := &c.outboxes[m]
	if o.cur != nil {
		panic(fmt.Sprintf("mpc: machine %d ended the round with an open record (Begin without End)", m))
	}
	s := int(sc.shardOf[m])
	sc.words[s] += int64(o.words)
	sc.msgs[s] += int64(o.count)
	for _, dest := range o.dests {
		t := int(sc.shardOf[dest])
		col := o.byDest[dest]
		ship := !sc.detached && sc.owned[s] && t != s
		local := s == t || !sc.owned[t] || sc.detached
		if ship && sc.traceWire != nil {
			sc.traceWire[t] += int64(col.words)
		}
		if ship {
			wcol := col
			if local && sc.eps[sc.epOf[s]].Retains() {
				// The column must live in a local inbox AND be owned by the
				// retaining transport: hand the transport a copy.
				wcol = cloneColumn(col)
			}
			b := sc.bat[s][t]
			if b == nil {
				b = &Batch{Src: s, Dst: t}
				sc.bat[s][t] = b
			}
			b.add(m, dest, wcol, local)
		}
		switch {
		case local:
			if len(c.senders[dest]) == 0 {
				c.recvNxt = append(c.recvNxt, dest)
			}
			c.senders[dest] = append(c.senders[dest], m)
		case !ship:
			// Replicated execution: the owner's wire copy is authoritative;
			// this locally computed duplicate goes straight back to the pool.
			putColumn(col)
		}
	}
	if c.armedSelf[m] {
		c.armedSelf[m] = false
		c.enqueueArm(m)
		sc.shardArmed[s] = append(sc.shardArmed[s], int32(m))
	}
}

// merge runs the post-barrier merge of a sharded round: the ascending
// sender walk (building outbound batches), the transport exchange, and the
// ingestion of received columns into the wirePre/wirePost staging used by
// inbox assembly. On error the engine is left broken: the round's state is
// indeterminate and the cluster refuses further rounds.
func (sc *shardEngine) merge(run []int, sparse bool) error {
	c := sc.c
	traced := c.cfg.Sink != nil
	if traced {
		sc.phaseExchange = 0
		for i := range sc.traceWire {
			sc.traceWire[i] = 0
		}
	}

	// A respawned worker replays rounds before its resume point detached:
	// purely local delivery, no wire activity — the peers consumed those
	// rounds long ago and deterministic re-execution rebuilds the state.
	sc.detached = sc.res != nil && sc.res.DetachedRound(sc.seq+1)
	sc.lastDetached = sc.detached

	// Phase A: ascending walk over the machines that ran.
	if sparse {
		for _, m := range run {
			sc.mergeOne(m)
		}
	} else {
		for m := 0; m < c.cfg.Machines; m++ {
			sc.mergeOne(m)
		}
	}
	// Coordinator reduction: per-shard traffic counters fold into the
	// cluster metrics. The sum equals the single-process accumulation
	// because each column is counted once, at its sender.
	for s := 0; s < sc.k; s++ {
		c.metrics.WordsSent += sc.words[s]
		c.metrics.Messages += sc.msgs[s]
		sc.words[s], sc.msgs[s] = 0, 0
	}

	// Phase B: ship batches, flush every owned shard's end-of-round marker
	// (with its armed control column), then collect the peers' exchanges.
	sc.seq++
	seq := sc.seq
	var exchStart time.Time
	if traced {
		exchStart = time.Now()
	}
	if sc.detached {
		// Detached replay: every column was delivered locally in Phase A and
		// arming is already complete (mergeOne enqueued the self-armed
		// machines of all shards — the whole fleet runs locally here), so
		// the round only advances sequence tracking.
		sc.res.NoteDetachedRound(seq)
		for s := range sc.shardArmed {
			sc.shardArmed[s] = sc.shardArmed[s][:0]
		}
		if traced {
			sc.phaseExchange = time.Since(exchStart)
		}
		return nil
	}
	for s := 0; s < sc.k; s++ {
		ei := sc.epOf[s]
		for t := 0; t < sc.k; t++ {
			b := sc.bat[s][t]
			if b == nil {
				continue
			}
			sc.bat[s][t] = nil
			if ei < 0 {
				// Unowned shard (defensive: ship is never set without
				// ownership, so b should not exist).
				b.recycle()
				continue
			}
			ep := sc.eps[ei]
			err := ep.Send(t, b)
			if !ep.Retains() {
				// Encoding transport: the engine keeps ownership; columns
				// not shared with a local inbox go back to the pool.
				for _, bc := range b.cols {
					if !bc.shared {
						putColumn(bc.col)
					}
				}
				b.cols = nil
			} else if err != nil {
				b.recycle() // undelivered; shared columns were cloned
			}
			if err != nil {
				return fmt.Errorf("shard %d -> %d: %w", s, t, err)
			}
		}
	}
	for _, ep := range sc.eps {
		if err := ep.Barrier(seq, sc.shardArmed[ep.Shard()]); err != nil {
			return fmt.Errorf("shard %d barrier: %w", ep.Shard(), err)
		}
	}
	for s := range sc.shardArmed {
		sc.shardArmed[s] = sc.shardArmed[s][:0]
	}
	for _, ep := range sc.eps {
		ex, err := ep.Receive(seq)
		if err != nil {
			return fmt.Errorf("shard %d receive: %w", ep.Shard(), err)
		}
		for _, armed := range ex.Armed {
			for _, am := range armed {
				m := int(am)
				if m < 0 || m >= c.cfg.Machines {
					return fmt.Errorf("shard %d receive: armed machine %d out of range (M=%d)", ep.Shard(), m, c.cfg.Machines)
				}
				if c.cfg.Sparse {
					c.enqueueArm(m)
				}
			}
		}
		for _, b := range ex.Batches {
			if err := sc.ingest(ep.Shard(), b); err != nil {
				return fmt.Errorf("shard %d receive: %w", ep.Shard(), err)
			}
		}
	}
	if traced {
		sc.phaseExchange = time.Since(exchStart)
	}
	return nil
}

// ingest stages one received batch's columns for inbox assembly,
// registering new receivers and validating that every column's endpoints
// lie in the shards the frame claims.
func (sc *shardEngine) ingest(dstShard int, b *Batch) error {
	c := sc.c
	if b.Dst != dstShard {
		return fmt.Errorf("batch from shard %d addressed to shard %d arrived at shard %d", b.Src, b.Dst, dstShard)
	}
	if b.Src < 0 || b.Src >= sc.k || b.Src == dstShard {
		return fmt.Errorf("batch with invalid source shard %d (K=%d)", b.Src, sc.k)
	}
	pre := b.Src < dstShard
	for _, bc := range b.cols {
		from, to := int(bc.from), int(bc.to)
		if from < sc.bounds[b.Src] || from >= sc.bounds[b.Src+1] {
			return fmt.Errorf("batch from shard %d carries column from machine %d outside the shard", b.Src, from)
		}
		if to < sc.bounds[dstShard] || to >= sc.bounds[dstShard+1] {
			return fmt.Errorf("batch for shard %d carries column to machine %d outside the shard", dstShard, to)
		}
		if len(c.senders[to]) == 0 && len(sc.wirePre[to]) == 0 && len(sc.wirePost[to]) == 0 {
			c.recvNxt = append(c.recvNxt, to)
		}
		sg := segment{from: from, col: bc.col}
		if pre {
			sc.wirePre[to] = append(sc.wirePre[to], sg)
		} else {
			sc.wirePost[to] = append(sc.wirePost[to], sg)
		}
	}
	b.cols = nil
	return nil
}
