package mpc

// The wire log: the sender-side round-checkpointed record of outbound
// transport frames that makes deterministic replay recovery possible.
//
// Each recovery-enabled TCP node logs every encoded outbound frame (batch
// and end-of-round alike — the bytes that went, or should have gone, on
// the wire) keyed by (destination peer, wire sequence number). The log is
// a bounded ring over rounds: when round s is barriered, rounds at or
// below s-W are evicted — lockstep execution keeps peers within one round
// of each other, so a small W is already safe and the default (8) is
// generous slack for respawn latency.
//
// When a peer reconnects — a redial after a torn connection, or a
// respawned worker rejoining via ReconnectTCP — the node replays its
// logged frames to that peer from the round the peer still needs. Replayed
// frames are bit-identical to the originals (the whole execution is
// deterministic), so a receiver that already consumed some of them simply
// drops the duplicates.
//
// Memory is bounded twice over: the ring bounds rounds, and a byte budget
// spills the oldest retained rounds to disk (one file per round, each
// frame length-prefixed and CRC-32C'd — frames internally carry CRCs too,
// so a spilled round is doubly checksummed). Spill files are removed on
// eviction and on close.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// wlogRound is one round's outbound frames, in send order, with the
// destination peer of each frame recorded alongside.
type wlogRound struct {
	seq    uint32
	frames [][]byte // nil when spilled
	peers  []int    // destination peer per frame (kept in memory even when spilled)
	bytes  int64
	file   string // non-empty when the frames live on disk
}

// wireLog is the per-node outbound frame log. All methods are safe for
// concurrent use: the round engine appends while accept/redial goroutines
// replay.
type wireLog struct {
	shard     int
	keep      int   // rounds retained after eviction
	memBudget int64 // in-memory frame bytes before spilling
	dir       string

	mu       sync.Mutex
	rounds   []*wlogRound // ascending seq
	memBytes int64
	closed   bool
}

// newWireLog builds a log retaining `keep` rounds, spilling to dir beyond
// memBudget bytes. dir == "" uses the OS temp directory.
func newWireLog(shard, keep int, memBudget int64, dir string) *wireLog {
	if dir == "" {
		dir = os.TempDir()
	}
	return &wireLog{shard: shard, keep: keep, memBudget: memBudget, dir: dir}
}

// append records one outbound frame for round seq addressed to peer.
// Frames must arrive in non-decreasing round order (the round engine's
// send order guarantees it).
func (l *wireLog) append(peer int, seq uint32, frame []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	var r *wlogRound
	if n := len(l.rounds); n > 0 && l.rounds[n-1].seq == seq {
		r = l.rounds[n-1]
	} else {
		r = &wlogRound{seq: seq}
		l.rounds = append(l.rounds, r)
	}
	r.frames = append(r.frames, frame)
	r.peers = append(r.peers, peer)
	r.bytes += int64(len(frame))
	l.memBytes += int64(len(frame))
	l.spillLocked()
}

// evict drops every round at or below barriered-keep, the rounds no replay
// can ever need again.
func (l *wireLog) evict(barriered uint32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int64(barriered) < int64(l.keep) {
		return
	}
	cut := barriered - uint32(l.keep)
	i := 0
	for i < len(l.rounds) && l.rounds[i].seq <= cut {
		r := l.rounds[i]
		if r.file != "" {
			os.Remove(r.file)
		} else {
			l.memBytes -= r.bytes
		}
		i++
	}
	if i > 0 {
		l.rounds = append(l.rounds[:0], l.rounds[i:]...)
	}
}

// oldest returns the lowest retained round seq, or (0, false) when empty.
func (l *wireLog) oldest() (uint32, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.rounds) == 0 {
		return 0, false
	}
	return l.rounds[0].seq, true
}

// replayTo returns every logged frame addressed to peer with round >= from,
// in (round, send order) order. It fails if a needed round was already
// evicted — the peer fell more than W rounds behind and replay cannot make
// it whole.
func (l *wireLog) replayTo(peer int, from uint32) ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.rounds) > 0 && from < l.rounds[0].seq {
		// Rounds below the retained window were evicted only after being
		// barriered at least W rounds ago; a peer asking for them is
		// unrecoverably behind.
		return nil, fmt.Errorf("mpc: wire log shard %d: round %d needed for replay, oldest retained is %d (W=%d)",
			l.shard, from, l.rounds[0].seq, l.keep)
	}
	var out [][]byte
	for _, r := range l.rounds {
		if r.seq < from {
			continue
		}
		frames := r.frames
		if r.file != "" {
			loaded, err := readWlogFile(r.file, len(r.peers))
			if err != nil {
				return nil, fmt.Errorf("mpc: wire log shard %d: reload round %d: %w", l.shard, r.seq, err)
			}
			frames = loaded
		}
		for i, f := range frames {
			if r.peers[i] == peer {
				out = append(out, f)
			}
		}
	}
	return out, nil
}

// close evicts everything, removing spill files.
func (l *wireLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	for _, r := range l.rounds {
		if r.file != "" {
			os.Remove(r.file)
		}
	}
	l.rounds = nil
	l.memBytes = 0
}

// spillLocked moves the oldest in-memory rounds to disk while the byte
// budget is exceeded, never touching the newest round (it is still being
// appended to). Requires l.mu.
func (l *wireLog) spillLocked() {
	for i := 0; l.memBytes > l.memBudget && i < len(l.rounds)-1; i++ {
		r := l.rounds[i]
		if r.file != "" {
			continue
		}
		path := filepath.Join(l.dir, fmt.Sprintf("wlog-%d-%d-%d.bin", os.Getpid(), l.shard, r.seq))
		if err := writeWlogFile(path, r.frames); err != nil {
			// Spilling is an optimization; on failure the round stays in
			// memory and the budget is simply exceeded.
			os.Remove(path)
			continue
		}
		l.memBytes -= r.bytes
		r.file = path
		r.frames = nil
	}
}

// Spill file format: per frame, u32 length + u32 CRC-32C + bytes.

func writeWlogFile(path string, frames [][]byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var hdr [8]byte
	for _, fr := range frames {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(fr)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(fr, tcpCastagnoli))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(fr); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func readWlogFile(path string, count int) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	frames := make([][]byte, 0, count)
	off := 0
	for off < len(data) {
		if off+8 > len(data) {
			return nil, fmt.Errorf("%w: truncated spilled wire-log record", errBadFrame)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if off+n > len(data) {
			return nil, fmt.Errorf("%w: spilled wire-log record overruns file", errBadFrame)
		}
		fr := data[off : off+n : off+n]
		if got := crc32.Checksum(fr, tcpCastagnoli); got != want {
			return nil, fmt.Errorf("%w: spilled wire-log record checksum mismatch (got %08x, want %08x)", errBadFrame, got, want)
		}
		frames = append(frames, fr)
		off += n
	}
	if len(frames) != count {
		return nil, fmt.Errorf("%w: spilled wire-log round holds %d frames, expected %d", errBadFrame, len(frames), count)
	}
	return frames, nil
}
