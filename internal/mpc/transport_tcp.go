package mpc

// This file implements the length-prefixed TCP transport: column batches
// travel as CRC-32C-checksummed frames over a full mesh of reused
// connections, one per unordered shard pair, with pipelined writes (a
// per-connection writer goroutine drains a frame queue, so Send never
// waits on the network) and a per-connection reader goroutine decoding
// frames into pooled columns as they arrive.
//
// # Wire format
//
// Every frame is a 20-byte little-endian header followed by the payload:
//
//	offset  size  field
//	0       4     seq         round sequence number
//	4       1     kind        1 batch · 2 end-of-round · 3 hello
//	5       1     src         source shard
//	6       1     dst         destination shard
//	7       1     reserved    0
//	8       4     payloadLen
//	12      4     payloadCRC  CRC-32C (Castagnoli) of the payload
//	16      4     headerCRC   CRC-32C of header bytes [0,16)
//
// A batch payload is a column count followed by, per column,
//
//	u32 fromMachine · u32 toMachine · u32 nRecs · u32 nInts · u32 nFloats
//	nRecs × (u32 intLen · u32 floatLen)
//	nInts × u64 · nFloats × u64 (IEEE-754 bits)
//
// — the plane's column layout verbatim, so encode/decode is a handful of
// bulk copies. An end-of-round payload is the armed control column: a u32
// count followed by u32 machine ids. A hello payload (sent once by the
// dialing side of each connection) is magic · shard · shard count.
//
// The framing discipline — checksummed fixed header, checksummed payload,
// truncation and corruption always detected — follows the graph
// container's (internal/graph/container.go).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

var tcpCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame is the base error for corrupt or truncated transport frames.
var errBadFrame = errors.New("mpc: corrupt transport frame")

const (
	frameHdrSize = 20
	frameBatch   = 1
	frameEOR     = 2
	frameHello   = 3
	helloMagic   = 0x4d525348 // "MRSH"
	// maxFramePayload bounds a frame so a corrupt length prefix cannot ask
	// the decoder to allocate gigabytes.
	maxFramePayload = 1 << 30
	// tcpConnectTimeout bounds mesh establishment (dial plus hello).
	tcpConnectTimeout = 30 * time.Second
)

// TCPOptions tunes a TCP transport node.
type TCPOptions struct {
	// BarrierTimeout bounds how long Receive waits for the peers'
	// end-of-round markers before failing the round; 0 means 2 minutes. A
	// lost peer or a desynchronized barrier therefore surfaces as an error
	// from Round, never a hang.
	BarrierTimeout time.Duration
}

func (o TCPOptions) barrierTimeout() time.Duration {
	if o.BarrierTimeout > 0 {
		return o.BarrierTimeout
	}
	return 2 * time.Minute
}

// frame assembly ------------------------------------------------------------

// appendFrame appends a complete frame (header + payload) to dst.
func appendFrame(dst []byte, seq uint32, kind, src, dstShard byte, payload []byte) []byte {
	off := len(dst)
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], seq)
	hdr[4], hdr[5], hdr[6], hdr[7] = kind, src, dstShard, 0
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload, tcpCastagnoli))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], tcpCastagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst[:off+frameHdrSize], payload...)
}

// frameHeader is a decoded frame header.
type frameHeader struct {
	seq              uint32
	kind, src, dst   byte
	payloadLen, pcrc uint32
}

// readFrame reads one frame. io.EOF is returned only at a clean frame
// boundary; any mid-frame truncation or checksum mismatch wraps
// errBadFrame.
func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return frameHeader{}, nil, io.EOF
		}
		return frameHeader{}, nil, fmt.Errorf("%w: truncated header: %v", errBadFrame, err)
	}
	if got, want := crc32.Checksum(hdr[:16], tcpCastagnoli), binary.LittleEndian.Uint32(hdr[16:]); got != want {
		return frameHeader{}, nil, fmt.Errorf("%w: header checksum mismatch (got %08x, want %08x)", errBadFrame, got, want)
	}
	h := frameHeader{
		seq:        binary.LittleEndian.Uint32(hdr[0:]),
		kind:       hdr[4],
		src:        hdr[5],
		dst:        hdr[6],
		payloadLen: binary.LittleEndian.Uint32(hdr[8:]),
		pcrc:       binary.LittleEndian.Uint32(hdr[12:]),
	}
	if h.payloadLen > maxFramePayload {
		return frameHeader{}, nil, fmt.Errorf("%w: payload length %d exceeds limit", errBadFrame, h.payloadLen)
	}
	payload := make([]byte, h.payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frameHeader{}, nil, fmt.Errorf("%w: truncated payload: %v", errBadFrame, err)
	}
	if got := crc32.Checksum(payload, tcpCastagnoli); got != h.pcrc {
		return frameHeader{}, nil, fmt.Errorf("%w: payload checksum mismatch (got %08x, want %08x)", errBadFrame, got, h.pcrc)
	}
	return h, payload, nil
}

// appendBatchPayload encodes a batch's columns.
func appendBatchPayload(dst []byte, b *Batch) []byte {
	var u [8]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u[:4], v)
		dst = append(dst, u[:4]...)
	}
	p32(uint32(len(b.cols)))
	for _, bc := range b.cols {
		col := bc.col
		p32(uint32(bc.from))
		p32(uint32(bc.to))
		p32(uint32(len(col.recs)))
		p32(uint32(len(col.ints)))
		p32(uint32(len(col.floats)))
		for _, rm := range col.recs {
			p32(uint32(rm.intLen))
			p32(uint32(rm.floatLen))
		}
		for _, v := range col.ints {
			binary.LittleEndian.PutUint64(u[:], uint64(v))
			dst = append(dst, u[:]...)
		}
		for _, f := range col.floats {
			binary.LittleEndian.PutUint64(u[:], math.Float64bits(f))
			dst = append(dst, u[:]...)
		}
	}
	return dst
}

// decodeBatchPayload rebuilds a batch from a frame payload, columns drawn
// from the plane's pool. The payload has already passed its CRC, so errors
// here mean a malformed encoding, not line noise.
func decodeBatchPayload(src, dst int, payload []byte) (*Batch, error) {
	rd := payloadReader{buf: payload}
	n, err := rd.u32()
	if err != nil {
		return nil, err
	}
	b := &Batch{Src: src, Dst: dst}
	for i := uint32(0); i < n; i++ {
		from, err1 := rd.u32()
		to, err2 := rd.u32()
		nRecs, err3 := rd.u32()
		nInts, err4 := rd.u32()
		nFlts, err5 := rd.u32()
		if err := firstErr(err1, err2, err3, err4, err5); err != nil {
			b.recycle()
			return nil, err
		}
		if rd.remaining() < int64(nRecs)*8+int64(nInts)*8+int64(nFlts)*8 {
			b.recycle()
			return nil, fmt.Errorf("%w: batch column overruns payload", errBadFrame)
		}
		col := getColumn()
		sumInt, sumFlt := 0, 0
		for r := uint32(0); r < nRecs; r++ {
			il, _ := rd.u32()
			fl, _ := rd.u32()
			col.recs = append(col.recs, recMeta{int32(il), int32(fl)})
			sumInt += int(il)
			sumFlt += int(fl)
		}
		if sumInt != int(nInts) || sumFlt != int(nFlts) {
			putColumn(col)
			b.recycle()
			return nil, fmt.Errorf("%w: batch record framing inconsistent with payload lengths", errBadFrame)
		}
		for v := uint32(0); v < nInts; v++ {
			x, _ := rd.u64()
			col.ints = append(col.ints, int64(x))
		}
		for v := uint32(0); v < nFlts; v++ {
			x, _ := rd.u64()
			col.floats = append(col.floats, math.Float64frombits(x))
		}
		col.words = int(nRecs) + int(nInts) + int(nFlts)
		b.add(int(from), int(to), col, false)
	}
	if rd.remaining() != 0 {
		b.recycle()
		return nil, fmt.Errorf("%w: %d trailing bytes after batch payload", errBadFrame, rd.remaining())
	}
	return b, nil
}

// appendEORPayload encodes the armed control column.
func appendEORPayload(dst []byte, armed []int32) []byte {
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(armed)))
	dst = append(dst, u[:]...)
	for _, m := range armed {
		binary.LittleEndian.PutUint32(u[:], uint32(m))
		dst = append(dst, u[:]...)
	}
	return dst
}

// decodeEORPayload decodes the armed control column.
func decodeEORPayload(payload []byte) ([]int32, error) {
	rd := payloadReader{buf: payload}
	n, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if rd.remaining() != int64(n)*4 {
		return nil, fmt.Errorf("%w: end-of-round armed column length mismatch", errBadFrame)
	}
	if n == 0 {
		return nil, nil
	}
	armed := make([]int32, n)
	for i := range armed {
		v, _ := rd.u32()
		armed[i] = int32(v)
	}
	return armed, nil
}

// payloadReader is a bounds-checked cursor over a frame payload.
type payloadReader struct {
	buf []byte
	off int
}

func (r *payloadReader) remaining() int64 { return int64(len(r.buf) - r.off) }

func (r *payloadReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: payload underrun", errBadFrame)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *payloadReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: payload underrun", errBadFrame)
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// node ----------------------------------------------------------------------

// tcpItem is one decoded inbound event: a batch, an end-of-round marker, or
// a connection failure.
type tcpItem struct {
	src   int
	seq   uint32
	batch *Batch
	eor   bool
	armed []int32
	err   error
	// eof marks a clean connection close (FIN at a frame boundary), as
	// opposed to a mid-frame truncation or checksum failure. A clean close
	// is legitimate when the peer already delivered its end-of-round marker
	// for the round in flight — a finished worker exits while slower shards
	// are still collecting the final exchange — and an error only if its
	// marker is still owed.
	eof bool
}

// tcpConn is one meshed connection, used bidirectionally between a pair of
// shards. Outbound frames queue through a writer goroutine so the round
// engine's Send returns immediately; a reader goroutine decodes inbound
// frames into the node's receive channel.
type tcpConn struct {
	peer int
	c    net.Conn
	br   *bufio.Reader

	mu      sync.Mutex
	cond    *sync.Cond
	q       [][]byte
	werr    error
	closing bool
	flushed chan struct{}
}

func newTCPConn(peer int, c net.Conn, br *bufio.Reader) *tcpConn {
	tc := &tcpConn{peer: peer, c: c, br: br, flushed: make(chan struct{})}
	tc.cond = sync.NewCond(&tc.mu)
	return tc
}

// enqueue hands one encoded frame to the writer goroutine.
func (tc *tcpConn) enqueue(frame []byte) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.werr != nil {
		return tc.werr
	}
	if tc.closing {
		return fmt.Errorf("%w (peer shard %d)", errTransportClosed, tc.peer)
	}
	tc.q = append(tc.q, frame)
	tc.cond.Signal()
	return nil
}

// writer is the connection's write loop: it drains the frame queue in
// order, and on shutdown flushes everything queued before closing the
// socket, so a peer still waiting on our final end-of-round marker gets it.
func (tc *tcpConn) writer() {
	defer close(tc.flushed)
	for {
		tc.mu.Lock()
		for len(tc.q) == 0 && !tc.closing && tc.werr == nil {
			tc.cond.Wait()
		}
		if tc.werr != nil || (tc.closing && len(tc.q) == 0) {
			tc.mu.Unlock()
			tc.c.Close()
			return
		}
		frames := tc.q
		tc.q = nil
		tc.mu.Unlock()
		for _, f := range frames {
			if _, err := tc.c.Write(f); err != nil {
				tc.mu.Lock()
				tc.werr = fmt.Errorf("mpc: tcp transport write to peer shard %d: %w", tc.peer, err)
				tc.mu.Unlock()
				tc.c.Close()
				return
			}
			transportBytesTotal.Add(uint64(len(f)))
		}
	}
}

// shutdown asks the writer to flush and close, then waits for it.
func (tc *tcpConn) shutdown() {
	tc.mu.Lock()
	tc.closing = true
	tc.cond.Broadcast()
	tc.mu.Unlock()
	<-tc.flushed
}

// TCPNode is one process's membership in a TCP transport mesh: a listener,
// one reused connection per peer shard, and the per-connection reader and
// writer goroutines. A node outlives individual clusters — Endpoint hands
// out a fresh Transport per cluster run over the same connections (the
// lockstep barrier guarantees the previous cluster's traffic is fully
// drained before the next begins).
type TCPNode struct {
	shard, shards int
	opts          TCPOptions
	ln            net.Listener
	conns         []*tcpConn // by peer shard; nil at own index
	recv          chan tcpItem
	pend          []tcpItem
	done          chan struct{}
	closeOnce     sync.Once
	readers       sync.WaitGroup

	// seqBase rebases wire sequence numbers across endpoint generations: a
	// long-lived worker node serves one cluster after another, each
	// restarting its round counter at 1, while the wire needs globally
	// monotone seqs so a peer's early next-cluster traffic is stashed
	// instead of misread as a stale frame. Closing a non-owning endpoint
	// advances the base by the rounds it consumed; every replica runs the
	// same clusters for the same rounds, so bases stay in lockstep.
	seqBase uint32
	// gone[t] records a clean close from peer t that arrived after its
	// end-of-round marker: the peer finished and exited. Any later round
	// that still needs t fails fast instead of waiting out the barrier
	// timeout. Only the round-driving goroutine touches it (via Receive).
	gone []bool
}

// ListenTCP creates a transport node for the given shard, listening on
// addr (e.g. "127.0.0.1:0"). Call Connect with every node's address to
// establish the mesh, then Endpoint for each cluster run, and Close when
// the fleet is done.
func ListenTCP(shard, shards int, addr string, opts TCPOptions) (*TCPNode, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("mpc: tcp node shard %d out of range (K=%d)", shard, shards)
	}
	if shards > 256 {
		return nil, fmt.Errorf("mpc: tcp transport supports at most 256 shards, got %d", shards)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpc: tcp node listen: %w", err)
	}
	return &TCPNode{
		shard:  shard,
		shards: shards,
		opts:   opts,
		ln:     ln,
		conns:  make([]*tcpConn, shards),
		recv:   make(chan tcpItem, 4*shards+8),
		done:   make(chan struct{}),
		gone:   make([]bool, shards),
	}, nil
}

// Addr returns the node's listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Connect establishes the full mesh: this node dials every higher-numbered
// shard (addrs indexed by shard; its own entry is ignored) and accepts a
// connection from every lower-numbered shard, identified by a hello frame.
// One connection per unordered pair, reused in both directions and across
// cluster runs.
func (n *TCPNode) Connect(addrs []string) error {
	if len(addrs) != n.shards {
		return fmt.Errorf("mpc: tcp node connect: %d addresses for %d shards", len(addrs), n.shards)
	}
	type accepted struct {
		peer int
		tc   *tcpConn
		err  error
	}
	lower := n.shard
	acceptCh := make(chan accepted, lower)
	if lower > 0 {
		if d, ok := n.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Now().Add(tcpConnectTimeout))
		}
		go func() {
			for i := 0; i < lower; i++ {
				c, err := n.ln.Accept()
				if err != nil {
					acceptCh <- accepted{err: fmt.Errorf("mpc: tcp node accept: %w", err)}
					return
				}
				br := bufio.NewReaderSize(c, 1<<16)
				hdr, payload, err := readFrame(br)
				if err != nil || hdr.kind != frameHello || len(payload) != 12 {
					c.Close()
					acceptCh <- accepted{err: fmt.Errorf("mpc: tcp node handshake: bad hello (%v)", err)}
					return
				}
				magic := binary.LittleEndian.Uint32(payload[0:])
				peer := int(binary.LittleEndian.Uint32(payload[4:]))
				k := int(binary.LittleEndian.Uint32(payload[8:]))
				if magic != helloMagic || k != n.shards || peer < 0 || peer >= n.shard {
					c.Close()
					acceptCh <- accepted{err: fmt.Errorf("mpc: tcp node handshake: hello from invalid peer %d (magic %08x, K %d)", peer, magic, k)}
					return
				}
				acceptCh <- accepted{peer: peer, tc: newTCPConn(peer, c, br)}
			}
		}()
	}
	// Dial every higher shard while the lower ones dial us.
	for t := n.shard + 1; t < n.shards; t++ {
		c, err := net.DialTimeout("tcp", addrs[t], tcpConnectTimeout)
		if err != nil {
			return fmt.Errorf("mpc: tcp node dial shard %d (%s): %w", t, addrs[t], err)
		}
		var hello [12]byte
		binary.LittleEndian.PutUint32(hello[0:], helloMagic)
		binary.LittleEndian.PutUint32(hello[4:], uint32(n.shard))
		binary.LittleEndian.PutUint32(hello[8:], uint32(n.shards))
		frame := appendFrame(nil, 0, frameHello, byte(n.shard), byte(t), hello[:])
		if _, err := c.Write(frame); err != nil {
			c.Close()
			return fmt.Errorf("mpc: tcp node hello to shard %d: %w", t, err)
		}
		n.conns[t] = newTCPConn(t, c, bufio.NewReaderSize(c, 1<<16))
	}
	for i := 0; i < lower; i++ {
		a := <-acceptCh
		if a.err != nil {
			return a.err
		}
		if n.conns[a.peer] != nil {
			a.tc.c.Close()
			return fmt.Errorf("mpc: tcp node handshake: duplicate connection from shard %d", a.peer)
		}
		n.conns[a.peer] = a.tc
	}
	if d, ok := n.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	for _, tc := range n.conns {
		if tc == nil {
			continue
		}
		go tc.writer()
		n.readers.Add(1)
		go n.reader(tc)
	}
	return nil
}

// reader decodes one connection's inbound frames into the node's receive
// channel until the connection dies.
func (n *TCPNode) reader(tc *tcpConn) {
	defer n.readers.Done()
	for {
		hdr, payload, err := readFrame(tc.br)
		if err != nil {
			clean := err == io.EOF
			if clean {
				err = fmt.Errorf("mpc: tcp transport: peer shard %d disconnected", tc.peer)
			} else {
				err = fmt.Errorf("mpc: tcp transport from peer shard %d: %w", tc.peer, err)
			}
			n.push(tcpItem{src: tc.peer, err: err, eof: clean})
			return
		}
		if int(hdr.src) != tc.peer || int(hdr.dst) != n.shard {
			n.push(tcpItem{src: tc.peer, err: fmt.Errorf("mpc: tcp transport: frame claims %d->%d on the %d<->%d connection", hdr.src, hdr.dst, tc.peer, n.shard)})
			return
		}
		switch hdr.kind {
		case frameBatch:
			b, derr := decodeBatchPayload(tc.peer, n.shard, payload)
			if derr != nil {
				n.push(tcpItem{src: tc.peer, err: fmt.Errorf("mpc: tcp transport from peer shard %d: %w", tc.peer, derr)})
				return
			}
			n.push(tcpItem{src: tc.peer, seq: hdr.seq, batch: b})
		case frameEOR:
			armed, derr := decodeEORPayload(payload)
			if derr != nil {
				n.push(tcpItem{src: tc.peer, err: fmt.Errorf("mpc: tcp transport from peer shard %d: %w", tc.peer, derr)})
				return
			}
			n.push(tcpItem{src: tc.peer, seq: hdr.seq, eor: true, armed: armed})
		default:
			n.push(tcpItem{src: tc.peer, err: fmt.Errorf("mpc: tcp transport from peer shard %d: unknown frame kind %d", tc.peer, hdr.kind)})
			return
		}
	}
}

// push delivers one inbound item unless the node is shutting down.
func (n *TCPNode) push(it tcpItem) {
	select {
	case n.recv <- it:
	case <-n.done:
		if it.batch != nil {
			it.batch.recycle()
		}
	}
}

// Close tears down the mesh: queued outbound frames are flushed first, so
// peers still collecting the final round observe a clean shutdown.
// Idempotent.
func (n *TCPNode) Close() error {
	n.closeOnce.Do(func() {
		for _, tc := range n.conns {
			if tc != nil {
				tc.shutdown()
			}
		}
		n.ln.Close()
		close(n.done)
		n.readers.Wait()
		// Recycle any columns still parked in the receive queue.
		for {
			select {
			case it := <-n.recv:
				if it.batch != nil {
					it.batch.recycle()
				}
			default:
				return
			}
		}
	})
	return nil
}

// Endpoint returns a Transport over the node's mesh for one cluster run
// with an effective shard count of k (clamped shard counts leave the
// higher mesh members as pure replicas: they own no endpoint and exchange
// nothing). The endpoint's sequence tracking is its own, so consecutive
// cluster runs reuse the mesh cleanly.
func (n *TCPNode) Endpoint(k int) (Transport, error) {
	if k < 1 || k > n.shards {
		return nil, fmt.Errorf("mpc: tcp endpoint for %d shards on a %d-shard mesh", k, n.shards)
	}
	if n.shard >= k {
		return nil, fmt.Errorf("mpc: tcp endpoint: shard %d outside effective shard count %d", n.shard, k)
	}
	return &tcpEndpoint{node: n, k: k, base: n.seqBase}, nil
}

// Factory returns a TransportFactory over this node for multi-process
// fleets: the worker's cluster gets this node's endpoint when the
// effective shard count covers the node's shard, and no endpoints (pure
// replica) otherwise.
func (n *TCPNode) Factory() TransportFactory {
	return func(shards int) ([]Transport, error) {
		if shards > n.shards {
			return nil, fmt.Errorf("mpc: cluster wants %d shards, tcp mesh has %d", shards, n.shards)
		}
		if n.shard >= shards {
			return nil, nil
		}
		ep, err := n.Endpoint(shards)
		if err != nil {
			return nil, err
		}
		return []Transport{ep}, nil
	}
}

// tcpEndpoint is one cluster run's Transport over a TCPNode. ownsNodes
// lists nodes the endpoint closes with itself (the loopback group's nodes
// are owned by their endpoints; a worker process's long-lived node is
// not).
type tcpEndpoint struct {
	node         *TCPNode
	k            int
	base         uint32 // wire seq = base + cluster-relative seq
	lastBarrier  uint32
	lastReceived uint32
	ownsNode     bool
	scratch      []byte
}

func (e *tcpEndpoint) Shard() int    { return e.node.shard }
func (e *tcpEndpoint) Shards() int   { return e.k }
func (e *tcpEndpoint) Retains() bool { return false }

// Send implements Transport: the batch is encoded and queued on the
// destination's connection; the writer goroutine pipelines the actual
// socket writes. Ownership of the columns stays with the caller.
func (e *tcpEndpoint) Send(dst int, b *Batch) error {
	if dst < 0 || dst >= e.k || dst == e.node.shard {
		return fmt.Errorf("mpc: tcp transport send from shard %d to invalid shard %d (K=%d)", e.node.shard, dst, e.k)
	}
	transportBatchesTotal.Add(1)
	payload := appendBatchPayload(e.scratch[:0], b)
	e.scratch = payload[:0]
	frame := appendFrame(nil, e.base+e.lastBarrier+1, frameBatch, byte(e.node.shard), byte(dst), payload)
	return e.node.conns[dst].enqueue(frame)
}

// Barrier implements Transport: one end-of-round frame, carrying the armed
// control column, to every effective peer.
func (e *tcpEndpoint) Barrier(seq uint32, armed []int32) error {
	if seq != e.lastBarrier+1 {
		return fmt.Errorf("mpc: tcp transport shard %d: barrier for round %d out of order (expected %d)", e.node.shard, seq, e.lastBarrier+1)
	}
	e.lastBarrier = seq
	payload := appendEORPayload(e.scratch[:0], armed)
	e.scratch = payload[:0]
	for t := 0; t < e.k; t++ {
		if t == e.node.shard {
			continue
		}
		frame := appendFrame(nil, e.base+seq, frameEOR, byte(e.node.shard), byte(t), payload)
		if err := e.node.conns[t].enqueue(frame); err != nil {
			return err
		}
	}
	return nil
}

// Receive implements Transport: it drains the node's inbound queue until
// every effective peer's end-of-round marker for seq has arrived, staging
// any early next-round traffic for the following call. Connection
// failures, protocol desyncs, and the barrier timeout all surface as
// errors.
func (e *tcpEndpoint) Receive(seq uint32) (*Exchange, error) {
	if seq != e.lastReceived+1 {
		return nil, fmt.Errorf("mpc: tcp transport shard %d: receive for round %d out of order (expected %d)", e.node.shard, seq, e.lastReceived+1)
	}
	n := e.node
	want := e.k - 1
	wseq := e.base + seq
	ex := &Exchange{Armed: make([][]int32, e.k)}
	eors := 0
	consume := func(it tcpItem) error {
		switch {
		case it.err != nil:
			if it.eof && it.src < e.k && ex.Armed[it.src] != nil {
				// The peer closed cleanly after delivering this round's
				// marker: it finished the job and exited first.
				n.gone[it.src] = true
				return nil
			}
			return it.err
		case it.seq == wseq+1:
			// Peer already finished its next round's compute; keep for the
			// next Receive.
			n.pend = append(n.pend, it)
			return nil
		case it.seq != wseq:
			return fmt.Errorf("mpc: tcp transport shard %d: round-%d traffic from peer shard %d while receiving round %d", n.shard, it.seq, it.src, wseq)
		case it.eor:
			if it.src >= e.k {
				return fmt.Errorf("mpc: tcp transport shard %d: end-of-round from shard %d outside effective shard count %d", n.shard, it.src, e.k)
			}
			if ex.Armed[it.src] != nil {
				return fmt.Errorf("mpc: tcp transport shard %d: duplicate end-of-round from shard %d in round %d", n.shard, it.src, seq)
			}
			if it.armed == nil {
				it.armed = []int32{}
			}
			ex.Armed[it.src] = it.armed
			eors++
			return nil
		default:
			ex.Batches = append(ex.Batches, it.batch)
			return nil
		}
	}
	fail := func(err error) (*Exchange, error) {
		for _, b := range ex.Batches {
			b.recycle()
		}
		return nil, err
	}
	// First replay traffic that arrived early during the previous round.
	if len(n.pend) > 0 {
		staged := n.pend
		n.pend = nil
		for i, it := range staged {
			if err := consume(it); err != nil {
				n.pend = append(n.pend, staged[i+1:]...)
				return fail(err)
			}
		}
	}
	// A peer that already finished and exited can never deliver this
	// round's marker: fail now rather than waiting out the timeout.
	for t := 0; t < e.k; t++ {
		if t != n.shard && n.gone[t] && ex.Armed[t] == nil {
			return fail(fmt.Errorf("mpc: tcp transport: peer shard %d disconnected", t))
		}
	}
	timer := time.NewTimer(n.opts.barrierTimeout())
	defer timer.Stop()
	for eors < want {
		select {
		case it := <-n.recv:
			if err := consume(it); err != nil {
				return fail(err)
			}
		case <-timer.C:
			return fail(fmt.Errorf("mpc: tcp transport shard %d: barrier timeout after %v waiting for round %d (%d/%d end-of-round markers)", n.shard, n.opts.barrierTimeout(), seq, eors, want))
		case <-n.done:
			return fail(fmt.Errorf("%w (shard %d)", errTransportClosed, n.shard))
		}
	}
	e.lastReceived = seq
	sortBatches(ex.Batches)
	return ex, nil
}

// Close implements Transport. A non-owning endpoint (a worker process's
// long-lived node) leaves the node open for the next cluster and advances
// its wire-seq base past the rounds this cluster consumed.
func (e *tcpEndpoint) Close() error {
	if e.ownsNode {
		return e.node.Close()
	}
	e.node.seqBase = e.base + e.lastReceived
	return nil
}

// TCPLoopback returns a TransportFactory that builds a complete in-process
// TCP mesh over the loopback interface: K nodes listening on 127.0.0.1:0,
// fully connected, one endpoint per node, all owned by (and closed with)
// the cluster. It exercises the real wire path — framing, checksums,
// socket scheduling — without any other process.
func TCPLoopback(opts TCPOptions) TransportFactory {
	return func(shards int) ([]Transport, error) {
		nodes := make([]*TCPNode, shards)
		fail := func(err error) ([]Transport, error) {
			for _, nd := range nodes {
				if nd != nil {
					nd.Close()
				}
			}
			return nil, err
		}
		addrs := make([]string, shards)
		for i := 0; i < shards; i++ {
			nd, err := ListenTCP(i, shards, "127.0.0.1:0", opts)
			if err != nil {
				return fail(err)
			}
			nodes[i] = nd
			addrs[i] = nd.Addr()
		}
		for _, nd := range nodes {
			if err := nd.Connect(addrs); err != nil {
				return fail(err)
			}
		}
		eps := make([]Transport, shards)
		for i, nd := range nodes {
			ep, err := nd.Endpoint(shards)
			if err != nil {
				return fail(err)
			}
			ep.(*tcpEndpoint).ownsNode = true
			eps[i] = ep
		}
		return eps, nil
	}
}
