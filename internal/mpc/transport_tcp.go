package mpc

// This file implements the length-prefixed TCP transport: column batches
// travel as CRC-32C-checksummed frames over a full mesh of reused
// connections, one per unordered shard pair, with pipelined writes (a
// per-connection writer goroutine drains a frame queue, so Send never
// waits on the network) and a per-connection reader goroutine decoding
// frames into pooled columns as they arrive.
//
// # Wire format
//
// Every frame is a 20-byte little-endian header followed by the payload:
//
//	offset  size  field
//	0       4     seq         round sequence number (0 for control frames)
//	4       1     kind        1 batch · 2 end-of-round · 3 hello ·
//	                          4 hello-ack · 5 heartbeat · 6 resume
//	5       1     src         source shard
//	6       1     dst         destination shard
//	7       1     reserved    0
//	8       4     payloadLen
//	12      4     payloadCRC  CRC-32C (Castagnoli) of the payload
//	16      4     headerCRC   CRC-32C of header bytes [0,16)
//
// A batch payload is a column count followed by, per column,
//
//	u32 fromMachine · u32 toMachine · u32 nRecs · u32 nInts · u32 nFloats
//	nRecs × (u32 intLen · u32 floatLen)
//	nInts × u64 · nFloats × u64 (IEEE-754 bits)
//
// — the plane's column layout verbatim, so encode/decode is a handful of
// bulk copies. An end-of-round payload is the armed control column: a u32
// count followed by u32 machine ids. A hello payload (sent by the dialing
// side of each connection) is magic · shard · shard count · flags ·
// nextNeeded; a hello-ack payload is the single u32 wire round the acking
// side still needs from the dialer, and a resume payload is the single u32
// fleet-wide resume round a respawned worker settled on. Heartbeats carry
// no payload.
//
// # Failure detection and recovery
//
// Dial and hello exchange retry with deterministic exponential
// backoff+jitter (see backoffDelay). When TransportOpts.HeartbeatInterval
// is set, idle connections carry heartbeat frames and a peer silent for
// PeerDeadAfter is declared dead mid-round instead of stalling the barrier
// until its timeout.
//
// With TransportOpts.Recover enabled the node keeps a wire log — a bounded
// ring of the last W rounds' outbound frames (see wirelog.go) — and a
// connection failure marks the peer down instead of failing the round: the
// original dialer of the pair redials with backoff, and either side
// accepts a reconnect handshake that replays the logged frames the other
// still needs. A respawned worker rejoins via ReconnectTCP: it dials every
// peer, learns the earliest round any of them still needs from it (the
// hello-ack), announces that round as the fleet-wide resume point, then
// re-executes earlier rounds detached (purely local, deterministic) and
// reattaches to the wire exactly at the resume round while peers replay
// what it missed. Determinism makes replayed frames bit-identical to the
// originals, so receivers drop duplicates by sequence number and the
// recovered run's results, metrics, and traces match the fault-free run
// byte for byte.
//
// The framing discipline — checksummed fixed header, checksummed payload,
// truncation and corruption always detected — follows the graph
// container's (internal/graph/container.go).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

var tcpCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame is the base error for corrupt or truncated transport frames.
var errBadFrame = errors.New("mpc: corrupt transport frame")

const (
	frameHdrSize   = 20
	frameBatch     = 1
	frameEOR       = 2
	frameHello     = 3
	frameHelloAck  = 4
	frameHeartbeat = 5
	frameResume    = 6
	helloMagic     = 0x4d525348 // "MRSH"
	helloLen       = 20
	// helloFlagReconnect marks a hello as a reconnect handshake: the dialer
	// is rejoining an established mesh and expects a hello-ack (and replay)
	// rather than initial mesh assembly.
	helloFlagReconnect = 1
	// resumeUnknown in a reconnect hello's nextNeeded field means the dialer
	// is a respawned worker that lost its sequence state; it will announce
	// the fleet-wide resume round in a follow-up resume frame.
	resumeUnknown = ^uint32(0)
	// maxFramePayload bounds a frame so a corrupt length prefix cannot ask
	// the decoder to allocate gigabytes.
	maxFramePayload = 1 << 30
)

// frame assembly ------------------------------------------------------------

// appendFrame appends a complete frame (header + payload) to dst.
func appendFrame(dst []byte, seq uint32, kind, src, dstShard byte, payload []byte) []byte {
	off := len(dst)
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], seq)
	hdr[4], hdr[5], hdr[6], hdr[7] = kind, src, dstShard, 0
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload, tcpCastagnoli))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], tcpCastagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst[:off+frameHdrSize], payload...)
}

// frameHeader is a decoded frame header.
type frameHeader struct {
	seq              uint32
	kind, src, dst   byte
	payloadLen, pcrc uint32
}

// readFrame reads one frame. io.EOF is returned only at a clean frame
// boundary; any mid-frame truncation or checksum mismatch wraps
// errBadFrame.
func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return frameHeader{}, nil, io.EOF
		}
		return frameHeader{}, nil, fmt.Errorf("%w: truncated header: %v", errBadFrame, err)
	}
	if got, want := crc32.Checksum(hdr[:16], tcpCastagnoli), binary.LittleEndian.Uint32(hdr[16:]); got != want {
		return frameHeader{}, nil, fmt.Errorf("%w: header checksum mismatch (got %08x, want %08x)", errBadFrame, got, want)
	}
	h := frameHeader{
		seq:        binary.LittleEndian.Uint32(hdr[0:]),
		kind:       hdr[4],
		src:        hdr[5],
		dst:        hdr[6],
		payloadLen: binary.LittleEndian.Uint32(hdr[8:]),
		pcrc:       binary.LittleEndian.Uint32(hdr[12:]),
	}
	if h.payloadLen > maxFramePayload {
		return frameHeader{}, nil, fmt.Errorf("%w: payload length %d exceeds limit", errBadFrame, h.payloadLen)
	}
	payload := make([]byte, h.payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frameHeader{}, nil, fmt.Errorf("%w: truncated payload: %v", errBadFrame, err)
	}
	if got := crc32.Checksum(payload, tcpCastagnoli); got != h.pcrc {
		return frameHeader{}, nil, fmt.Errorf("%w: payload checksum mismatch (got %08x, want %08x)", errBadFrame, got, h.pcrc)
	}
	return h, payload, nil
}

// appendHelloPayload encodes a hello: magic, shard, shard count, flags,
// and the next wire round the dialer still needs from the accepting side
// (meaningful only with helloFlagReconnect).
func appendHelloPayload(dst []byte, shard, shards int, flags, nextNeeded uint32) []byte {
	var u [helloLen]byte
	binary.LittleEndian.PutUint32(u[0:], helloMagic)
	binary.LittleEndian.PutUint32(u[4:], uint32(shard))
	binary.LittleEndian.PutUint32(u[8:], uint32(shards))
	binary.LittleEndian.PutUint32(u[12:], flags)
	binary.LittleEndian.PutUint32(u[16:], nextNeeded)
	return append(dst, u[:]...)
}

// helloInfo is a decoded hello payload.
type helloInfo struct {
	peer, k           int
	flags, nextNeeded uint32
}

func decodeHello(p []byte) (helloInfo, bool) {
	if len(p) != helloLen || binary.LittleEndian.Uint32(p) != helloMagic {
		return helloInfo{}, false
	}
	return helloInfo{
		peer:       int(binary.LittleEndian.Uint32(p[4:])),
		k:          int(binary.LittleEndian.Uint32(p[8:])),
		flags:      binary.LittleEndian.Uint32(p[12:]),
		nextNeeded: binary.LittleEndian.Uint32(p[16:]),
	}, true
}

// appendBatchPayload encodes a batch's columns.
func appendBatchPayload(dst []byte, b *Batch) []byte {
	var u [8]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u[:4], v)
		dst = append(dst, u[:4]...)
	}
	p32(uint32(len(b.cols)))
	for _, bc := range b.cols {
		col := bc.col
		p32(uint32(bc.from))
		p32(uint32(bc.to))
		p32(uint32(len(col.recs)))
		p32(uint32(len(col.ints)))
		p32(uint32(len(col.floats)))
		for _, rm := range col.recs {
			p32(uint32(rm.intLen))
			p32(uint32(rm.floatLen))
		}
		for _, v := range col.ints {
			binary.LittleEndian.PutUint64(u[:], uint64(v))
			dst = append(dst, u[:]...)
		}
		for _, f := range col.floats {
			binary.LittleEndian.PutUint64(u[:], math.Float64bits(f))
			dst = append(dst, u[:]...)
		}
	}
	return dst
}

// decodeBatchPayload rebuilds a batch from a frame payload, columns drawn
// from the plane's pool. The payload has already passed its CRC, so errors
// here mean a malformed encoding, not line noise.
func decodeBatchPayload(src, dst int, payload []byte) (*Batch, error) {
	rd := payloadReader{buf: payload}
	n, err := rd.u32()
	if err != nil {
		return nil, err
	}
	b := &Batch{Src: src, Dst: dst}
	for i := uint32(0); i < n; i++ {
		from, err1 := rd.u32()
		to, err2 := rd.u32()
		nRecs, err3 := rd.u32()
		nInts, err4 := rd.u32()
		nFlts, err5 := rd.u32()
		if err := firstErr(err1, err2, err3, err4, err5); err != nil {
			b.recycle()
			return nil, err
		}
		if rd.remaining() < int64(nRecs)*8+int64(nInts)*8+int64(nFlts)*8 {
			b.recycle()
			return nil, fmt.Errorf("%w: batch column overruns payload", errBadFrame)
		}
		col := getColumn()
		sumInt, sumFlt := 0, 0
		for r := uint32(0); r < nRecs; r++ {
			il, _ := rd.u32()
			fl, _ := rd.u32()
			col.recs = append(col.recs, recMeta{int32(il), int32(fl)})
			sumInt += int(il)
			sumFlt += int(fl)
		}
		if sumInt != int(nInts) || sumFlt != int(nFlts) {
			putColumn(col)
			b.recycle()
			return nil, fmt.Errorf("%w: batch record framing inconsistent with payload lengths", errBadFrame)
		}
		for v := uint32(0); v < nInts; v++ {
			x, _ := rd.u64()
			col.ints = append(col.ints, int64(x))
		}
		for v := uint32(0); v < nFlts; v++ {
			x, _ := rd.u64()
			col.floats = append(col.floats, math.Float64frombits(x))
		}
		col.words = int(nRecs) + int(nInts) + int(nFlts)
		b.add(int(from), int(to), col, false)
	}
	if rd.remaining() != 0 {
		b.recycle()
		return nil, fmt.Errorf("%w: %d trailing bytes after batch payload", errBadFrame, rd.remaining())
	}
	return b, nil
}

// appendEORPayload encodes the armed control column.
func appendEORPayload(dst []byte, armed []int32) []byte {
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(armed)))
	dst = append(dst, u[:]...)
	for _, m := range armed {
		binary.LittleEndian.PutUint32(u[:], uint32(m))
		dst = append(dst, u[:]...)
	}
	return dst
}

// decodeEORPayload decodes the armed control column.
func decodeEORPayload(payload []byte) ([]int32, error) {
	rd := payloadReader{buf: payload}
	n, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if rd.remaining() != int64(n)*4 {
		return nil, fmt.Errorf("%w: end-of-round armed column length mismatch", errBadFrame)
	}
	if n == 0 {
		return nil, nil
	}
	armed := make([]int32, n)
	for i := range armed {
		v, _ := rd.u32()
		armed[i] = int32(v)
	}
	return armed, nil
}

// payloadReader is a bounds-checked cursor over a frame payload.
type payloadReader struct {
	buf []byte
	off int
}

func (r *payloadReader) remaining() int64 { return int64(len(r.buf) - r.off) }

func (r *payloadReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: payload underrun", errBadFrame)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *payloadReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: payload underrun", errBadFrame)
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// node ----------------------------------------------------------------------

// tcpItem is one decoded inbound event: a batch, an end-of-round marker, or
// a connection failure.
type tcpItem struct {
	src   int
	gen   uint64 // connection generation the item arrived on
	seq   uint32
	batch *Batch
	eor   bool
	armed []int32
	err   error
	// eof marks a clean connection close (FIN at a frame boundary), as
	// opposed to a mid-frame truncation or checksum failure. A clean close
	// is legitimate when the peer already delivered its end-of-round marker
	// for the round in flight — a finished worker exits while slower shards
	// are still collecting the final exchange — and an error only if its
	// marker is still owed.
	eof bool
}

// tcpConn is one meshed connection, used bidirectionally between a pair of
// shards. Outbound frames queue through a writer goroutine so the round
// engine's Send returns immediately; a reader goroutine decodes inbound
// frames into the node's receive channel.
type tcpConn struct {
	peer int
	gen  uint64
	c    net.Conn
	br   *bufio.Reader

	// lastHeard / lastSent (unix nanos) feed heartbeat emission and silence
	// detection.
	lastHeard atomic.Int64
	lastSent  atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	q       [][]byte
	werr    error
	closing bool
	running bool
	flushed chan struct{}
}

func newTCPConn(peer int, c net.Conn, br *bufio.Reader) *tcpConn {
	tc := &tcpConn{peer: peer, c: c, br: br, flushed: make(chan struct{})}
	tc.cond = sync.NewCond(&tc.mu)
	now := time.Now().UnixNano()
	tc.lastHeard.Store(now)
	tc.lastSent.Store(now)
	return tc
}

// start launches the writer goroutine.
func (tc *tcpConn) start() {
	tc.mu.Lock()
	tc.running = true
	tc.mu.Unlock()
	go tc.writer()
}

// enqueue hands one encoded frame to the writer goroutine.
func (tc *tcpConn) enqueue(frame []byte) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.werr != nil {
		return tc.werr
	}
	if tc.closing {
		return fmt.Errorf("%w (peer shard %d)", errTransportClosed, tc.peer)
	}
	tc.q = append(tc.q, frame)
	tc.lastSent.Store(time.Now().UnixNano())
	tc.cond.Signal()
	return nil
}

// writer is the connection's write loop: it drains the frame queue in
// order, and on shutdown flushes everything queued before closing the
// socket, so a peer still waiting on our final end-of-round marker gets it.
func (tc *tcpConn) writer() {
	defer close(tc.flushed)
	for {
		tc.mu.Lock()
		for len(tc.q) == 0 && !tc.closing && tc.werr == nil {
			tc.cond.Wait()
		}
		if tc.werr != nil || (tc.closing && len(tc.q) == 0) {
			tc.mu.Unlock()
			tc.c.Close()
			return
		}
		frames := tc.q
		tc.q = nil
		tc.mu.Unlock()
		for _, f := range frames {
			if _, err := tc.c.Write(f); err != nil {
				tc.mu.Lock()
				tc.werr = fmt.Errorf("mpc: tcp transport write to peer shard %d: %w", tc.peer, err)
				tc.mu.Unlock()
				tc.c.Close()
				return
			}
			transportBytesTotal.Add(uint64(len(f)))
		}
	}
}

// shutdown asks the writer to flush and close, then waits for it. A
// connection whose writer never started is simply closed.
func (tc *tcpConn) shutdown() {
	tc.mu.Lock()
	tc.closing = true
	tc.cond.Broadcast()
	running := tc.running
	tc.mu.Unlock()
	if running {
		<-tc.flushed
	} else {
		tc.c.Close()
	}
}

// kill severs the connection immediately: queued frames are dropped, the
// socket closed mid-flight. With recovery enabled the wire log makes the
// dropped frames replayable; without it both sides observe a hard failure.
func (tc *tcpConn) kill(err error) {
	tc.mu.Lock()
	if tc.werr == nil {
		tc.werr = err
	}
	tc.cond.Broadcast()
	tc.mu.Unlock()
	tc.c.Close()
}

// TCPNode is one process's membership in a TCP transport mesh: a listener,
// one reused connection per peer shard, and the per-connection reader and
// writer goroutines. A node outlives individual clusters — Endpoint hands
// out a fresh Transport per cluster run over the same connections (the
// lockstep barrier guarantees the previous cluster's traffic is fully
// drained before the next begins).
type TCPNode struct {
	shard, shards int
	opts          TransportOpts
	ln            net.Listener // nil for a ReconnectTCP node
	recv          chan tcpItem
	pend          []tcpItem
	done          chan struct{}
	closeOnce     sync.Once
	readers       sync.WaitGroup
	wlog          *wireLog // non-nil iff opts.Recover

	// connMu guards the connection table and its down/generation state;
	// swapping a connection takes the write lock, every send or state probe
	// the read lock.
	connMu    sync.RWMutex
	conns     []*tcpConn // by peer shard; nil at own index
	connGen   []uint64   // bumped on every swap-in
	down      []bool     // peer connection failed, awaiting reconnect
	redialing []bool     // redial goroutine in flight
	closing   bool
	addrs     []string // saved at Connect for redials

	// eorSeen[t] is the wire seq of the last end-of-round marker consumed
	// from peer t — exactly the state a reconnect handshake needs to tell
	// the peer what to replay (nextNeeded = eorSeen+1). Written by the
	// round-driving goroutine, read by accept/redial goroutines.
	eorSeen []atomic.Uint32

	// resumeWire, on a ReconnectTCP node, is the first wire seq the
	// respawned worker runs attached; rounds below it replay detached.
	resumeWire uint32

	// seqBase rebases wire sequence numbers across endpoint generations: a
	// long-lived worker node serves one cluster after another, each
	// restarting its round counter at 1, while the wire needs globally
	// monotone seqs so a peer's early next-cluster traffic is stashed
	// instead of misread as a stale frame. Closing a non-owning endpoint
	// advances the base by the rounds it consumed; every replica runs the
	// same clusters for the same rounds, so bases stay in lockstep.
	seqBase uint32
	// gone[t] records a clean close from peer t that arrived after its
	// end-of-round marker: the peer finished and exited. Without recovery,
	// any later round that still needs t fails fast instead of waiting out
	// the barrier timeout; with recovery a respawn may still rejoin.
	gone []atomic.Bool
}

func newTCPNode(shard, shards int, opts TransportOpts) *TCPNode {
	n := &TCPNode{
		shard:     shard,
		shards:    shards,
		opts:      opts,
		recv:      make(chan tcpItem, 4*shards+8),
		done:      make(chan struct{}),
		conns:     make([]*tcpConn, shards),
		connGen:   make([]uint64, shards),
		down:      make([]bool, shards),
		redialing: make([]bool, shards),
		eorSeen:   make([]atomic.Uint32, shards),
		gone:      make([]atomic.Bool, shards),
	}
	if opts.Recover {
		n.wlog = newWireLog(shard, opts.wireLogRounds(), opts.wireLogMemBytes(), opts.WireLogDir)
	}
	return n
}

// ListenTCP creates a transport node for the given shard, listening on
// addr (e.g. "127.0.0.1:0"). Call Connect with every node's address to
// establish the mesh, then Endpoint for each cluster run, and Close when
// the fleet is done.
func ListenTCP(shard, shards int, addr string, opts TransportOpts) (*TCPNode, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("mpc: tcp node shard %d out of range (K=%d)", shard, shards)
	}
	if shards > 256 {
		return nil, fmt.Errorf("mpc: tcp transport supports at most 256 shards, got %d", shards)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpc: tcp node listen: %w", err)
	}
	n := newTCPNode(shard, shards, opts)
	n.ln = ln
	return n, nil
}

// Addr returns the node's listen address ("" for a reconnected node, which
// has no listener).
func (n *TCPNode) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// connectWindow bounds mesh establishment (all dials plus hellos, and the
// accept side's wait for slower fleet members).
func (n *TCPNode) connectWindow() time.Duration {
	return n.opts.dialTimeout() * time.Duration(n.opts.dialRetries()+2)
}

// Connect establishes the full mesh: this node dials every higher-numbered
// shard (addrs indexed by shard; its own entry is ignored) and accepts a
// connection from every lower-numbered shard, identified by a hello frame.
// One connection per unordered pair, reused in both directions and across
// cluster runs. Dials and hello writes retry with deterministic
// backoff+jitter up to the configured retry budget.
func (n *TCPNode) Connect(addrs []string) error {
	if len(addrs) != n.shards {
		return fmt.Errorf("mpc: tcp node connect: %d addresses for %d shards", len(addrs), n.shards)
	}
	n.addrs = append([]string(nil), addrs...)
	type accepted struct {
		peer int
		tc   *tcpConn
		err  error
	}
	lower := n.shard
	acceptCh := make(chan accepted, lower)
	if lower > 0 {
		if d, ok := n.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Now().Add(n.connectWindow()))
		}
		go func() {
			for i := 0; i < lower; i++ {
				c, err := n.ln.Accept()
				if err != nil {
					acceptCh <- accepted{err: fmt.Errorf("mpc: tcp node accept: %w", err)}
					return
				}
				br := bufio.NewReaderSize(c, 1<<16)
				hdr, payload, err := readFrame(br)
				if err != nil || hdr.kind != frameHello {
					c.Close()
					acceptCh <- accepted{err: fmt.Errorf("mpc: tcp node handshake: bad hello (%v)", err)}
					return
				}
				h, ok := decodeHello(payload)
				if !ok || h.k != n.shards || h.peer < 0 || h.peer >= n.shard || h.flags != 0 {
					c.Close()
					acceptCh <- accepted{err: fmt.Errorf("mpc: tcp node handshake: hello from invalid peer %d (K %d, flags %#x)", h.peer, h.k, h.flags)}
					return
				}
				acceptCh <- accepted{peer: h.peer, tc: newTCPConn(h.peer, c, br)}
			}
		}()
	}
	// Dial every higher shard while the lower ones dial us.
	for t := n.shard + 1; t < n.shards; t++ {
		tc, err := n.dialMesh(t, addrs[t])
		if err != nil {
			return err
		}
		n.conns[t] = tc
	}
	for i := 0; i < lower; i++ {
		a := <-acceptCh
		if a.err != nil {
			return a.err
		}
		if n.conns[a.peer] != nil {
			a.tc.c.Close()
			return fmt.Errorf("mpc: tcp node handshake: duplicate connection from shard %d", a.peer)
		}
		n.conns[a.peer] = a.tc
	}
	if d, ok := n.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	for t, tc := range n.conns {
		if tc == nil {
			continue
		}
		n.connGen[t] = 1
		tc.gen = 1
		tc.start()
		n.readers.Add(1)
		go n.reader(tc)
	}
	// The listener keeps accepting after mesh-up: reconnect handshakes from
	// redialing peers and respawned workers arrive here.
	n.readers.Add(1)
	go n.acceptLoop()
	if n.opts.HeartbeatInterval > 0 {
		n.readers.Add(1)
		go n.heartbeatLoop()
	}
	return nil
}

// dialMesh dials one higher-numbered peer and sends the initial hello,
// retrying the dial-plus-hello exchange on the backoff schedule.
func (n *TCPNode) dialMesh(t int, addr string) (*tcpConn, error) {
	o := n.opts
	seed := o.RetrySeed
	if seed == 0 {
		seed = uint64(n.shard+1)<<16 ^ uint64(t+1)
	}
	attempts := o.dialRetries() + 1
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			transportRetriesTotal.Add(1)
			time.Sleep(backoffDelay(a-1, o.retryBase(), o.retryMax(), seed))
		}
		c, err := net.DialTimeout("tcp", addr, o.dialTimeout())
		if err != nil {
			lastErr = err
			continue
		}
		hello := appendHelloPayload(nil, n.shard, n.shards, 0, 0)
		frame := appendFrame(nil, 0, frameHello, byte(n.shard), byte(t), hello)
		c.SetDeadline(time.Now().Add(o.dialTimeout()))
		if _, err := c.Write(frame); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		c.SetDeadline(time.Time{})
		return newTCPConn(t, c, bufio.NewReaderSize(c, 1<<16)), nil
	}
	return nil, fmt.Errorf("mpc: tcp node dial shard %d (%s) after %d attempts: %w", t, addr, attempts, lastErr)
}

// dialReconnect performs one reconnect dial: hello (with the reconnect
// flag and our nextNeeded), then the peer's hello-ack telling us the first
// wire round it still needs from us.
func (n *TCPNode) dialReconnect(peer int, addr string, nextNeeded uint32) (net.Conn, *bufio.Reader, uint32, error) {
	c, err := net.DialTimeout("tcp", addr, n.opts.dialTimeout())
	if err != nil {
		return nil, nil, 0, err
	}
	c.SetDeadline(time.Now().Add(n.opts.dialTimeout()))
	hello := appendHelloPayload(nil, n.shard, n.shards, helloFlagReconnect, nextNeeded)
	if _, err := c.Write(appendFrame(nil, 0, frameHello, byte(n.shard), byte(peer), hello)); err != nil {
		c.Close()
		return nil, nil, 0, err
	}
	br := bufio.NewReaderSize(c, 1<<16)
	hdr, payload, err := readFrame(br)
	if err != nil || hdr.kind != frameHelloAck || len(payload) != 4 {
		c.Close()
		return nil, nil, 0, fmt.Errorf("mpc: tcp reconnect to shard %d: bad hello-ack (%v)", peer, err)
	}
	c.SetDeadline(time.Time{})
	return c, br, binary.LittleEndian.Uint32(payload), nil
}

// acceptLoop accepts reconnect handshakes after mesh establishment, until
// the listener closes.
func (n *TCPNode) acceptLoop() {
	defer n.readers.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.handleReconnect(c)
	}
}

// handleReconnect validates one reconnect handshake and swaps the
// connection in, replaying logged frames from the round the peer needs. A
// respawned worker (nextNeeded == resumeUnknown) gets our ack first and
// then tells us the fleet-wide resume round it settled on.
func (n *TCPNode) handleReconnect(c net.Conn) {
	if !n.opts.Recover {
		c.Close()
		return
	}
	c.SetDeadline(time.Now().Add(n.connectWindow()))
	br := bufio.NewReaderSize(c, 1<<16)
	hdr, payload, err := readFrame(br)
	if err != nil || hdr.kind != frameHello {
		c.Close()
		return
	}
	h, ok := decodeHello(payload)
	if !ok || h.k != n.shards || h.peer < 0 || h.peer >= n.shards || h.peer == n.shard || h.flags&helloFlagReconnect == 0 {
		c.Close()
		return
	}
	var ack [4]byte
	binary.LittleEndian.PutUint32(ack[:], n.eorSeen[h.peer].Load()+1)
	if _, err := c.Write(appendFrame(nil, 0, frameHelloAck, byte(n.shard), byte(h.peer), ack[:])); err != nil {
		c.Close()
		return
	}
	replayFrom := h.nextNeeded
	if replayFrom == resumeUnknown {
		rh, rp, err := readFrame(br)
		if err != nil || rh.kind != frameResume || len(rp) != 4 {
			c.Close()
			return
		}
		replayFrom = binary.LittleEndian.Uint32(rp)
	}
	c.SetDeadline(time.Time{})
	n.swapConn(h.peer, c, br, replayFrom)
}

// swapConn replaces the connection to peer with a fresh one, pre-loading
// its queue with the wire log's replay from replayFrom so no logged frame
// can be lost between the swap and the next Send (sends log first, then
// look up the connection: any frame logged before the replay snapshot is
// in the replay, any logged after sees the new connection).
func (n *TCPNode) swapConn(peer int, c net.Conn, br *bufio.Reader, replayFrom uint32) error {
	n.connMu.Lock()
	if n.closing {
		n.connMu.Unlock()
		c.Close()
		return fmt.Errorf("%w (shard %d)", errTransportClosed, n.shard)
	}
	var replay [][]byte
	if n.wlog != nil {
		var err error
		replay, err = n.wlog.replayTo(peer, replayFrom)
		if err != nil {
			n.connMu.Unlock()
			c.Close()
			return err
		}
	}
	old := n.conns[peer]
	n.connGen[peer]++
	tc := newTCPConn(peer, c, br)
	tc.gen = n.connGen[peer]
	tc.q = append(tc.q, replay...)
	n.conns[peer] = tc
	n.down[peer] = false
	n.gone[peer].Store(false)
	n.connMu.Unlock()
	if old != nil {
		old.kill(fmt.Errorf("mpc: tcp transport: connection to peer shard %d superseded", peer))
	}
	transportReconnectsTotal.Add(1)
	tc.start()
	n.readers.Add(1)
	go n.reader(tc)
	return nil
}

// markDown records a failed peer connection and, when this node is the
// original dialer of the pair, kicks off the redial loop.
func (n *TCPNode) markDown(peer int) {
	if peer < 0 || peer >= n.shards || peer == n.shard {
		return
	}
	n.connMu.Lock()
	if n.closing {
		n.connMu.Unlock()
		return
	}
	n.down[peer] = true
	spawn := n.opts.Recover && peer > n.shard && !n.redialing[peer] && len(n.addrs) == n.shards
	if spawn {
		n.redialing[peer] = true
	}
	n.connMu.Unlock()
	if spawn {
		go n.redial(peer)
	}
}

// redial re-establishes a failed connection from the dialer side on the
// backoff schedule, aborting if the peer reconnected to us first.
func (n *TCPNode) redial(peer int) {
	defer func() {
		n.connMu.Lock()
		n.redialing[peer] = false
		n.connMu.Unlock()
	}()
	o := n.opts
	seed := o.RetrySeed
	if seed == 0 {
		seed = uint64(n.shard+1)<<16 ^ uint64(peer+1)
	}
	attempts := o.dialRetries() + 1
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			transportRetriesTotal.Add(1)
			t := time.NewTimer(backoffDelay(a-1, o.retryBase(), o.retryMax(), seed))
			select {
			case <-t.C:
			case <-n.done:
				t.Stop()
				return
			}
		}
		n.connMu.RLock()
		stillDown := n.down[peer] && !n.closing
		addr := n.addrs[peer]
		n.connMu.RUnlock()
		if !stillDown {
			return
		}
		c, br, ackNext, err := n.dialReconnect(peer, addr, n.eorSeen[peer].Load()+1)
		if err != nil {
			continue
		}
		n.swapConn(peer, c, br, ackNext)
		return
	}
}

// heartbeatLoop emits a heartbeat frame on every connection that has been
// idle for the configured interval, so silence detection on the far side
// has a signal to miss.
func (n *TCPNode) heartbeatLoop() {
	defer n.readers.Done()
	iv := n.opts.HeartbeatInterval
	step := iv / 2
	if step < time.Millisecond {
		step = time.Millisecond
	}
	tick := time.NewTicker(step)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		n.connMu.RLock()
		conns := append([]*tcpConn(nil), n.conns...)
		n.connMu.RUnlock()
		for _, tc := range conns {
			if tc == nil || now-tc.lastSent.Load() < int64(iv) {
				continue
			}
			// Best-effort: an enqueue failure means the connection is dying
			// and the reader/down path is already handling it.
			tc.enqueue(appendFrame(nil, 0, frameHeartbeat, byte(n.shard), byte(tc.peer), nil))
		}
	}
}

// sendFrame routes one outbound data frame: logged first (when recovery is
// on — the log, not the socket queue, is the durable buffer), then queued
// on the peer's current connection. With recovery, a missing or failing
// connection swallows the frame (replay will deliver it); without, it
// surfaces as an error.
func (n *TCPNode) sendFrame(peer int, seq uint32, frame []byte) error {
	if n.wlog != nil {
		n.wlog.append(peer, seq, frame)
	}
	n.connMu.RLock()
	tc := n.conns[peer]
	isDown := n.down[peer]
	n.connMu.RUnlock()
	if tc == nil {
		if n.opts.Recover {
			return nil
		}
		return fmt.Errorf("mpc: tcp transport: no connection to peer shard %d", peer)
	}
	if isDown && n.opts.Recover {
		return nil
	}
	if err := tc.enqueue(frame); err != nil {
		if n.opts.Recover {
			n.markDown(peer)
			return nil
		}
		return err
	}
	return nil
}

// reader decodes one connection's inbound frames into the node's receive
// channel until the connection dies.
func (n *TCPNode) reader(tc *tcpConn) {
	defer n.readers.Done()
	for {
		hdr, payload, err := readFrame(tc.br)
		if err != nil {
			clean := err == io.EOF
			if clean {
				err = fmt.Errorf("mpc: tcp transport: peer shard %d disconnected", tc.peer)
			} else {
				err = fmt.Errorf("mpc: tcp transport from peer shard %d: %w", tc.peer, err)
			}
			if !clean && n.opts.Recover {
				// A non-clean death (killed or torn locally) starts the redial
				// immediately, even if this side's engine already finished its
				// rounds and will never call Receive again — a lagging peer
				// may still need the replay. Clean EOFs stay with Receive's
				// round-aware handling so ordinary teardown doesn't redial.
				n.connMu.RLock()
				current := tc.gen == n.connGen[tc.peer]
				n.connMu.RUnlock()
				if current {
					n.markDown(tc.peer)
				}
			}
			n.push(tcpItem{src: tc.peer, gen: tc.gen, err: err, eof: clean})
			return
		}
		tc.lastHeard.Store(time.Now().UnixNano())
		if hdr.kind == frameHeartbeat {
			// Liveness only; updating lastHeard was the whole effect.
			continue
		}
		if int(hdr.src) != tc.peer || int(hdr.dst) != n.shard {
			n.push(tcpItem{src: tc.peer, gen: tc.gen, err: fmt.Errorf("mpc: tcp transport: frame claims %d->%d on the %d<->%d connection", hdr.src, hdr.dst, tc.peer, n.shard)})
			return
		}
		switch hdr.kind {
		case frameBatch:
			b, derr := decodeBatchPayload(tc.peer, n.shard, payload)
			if derr != nil {
				n.push(tcpItem{src: tc.peer, gen: tc.gen, err: fmt.Errorf("mpc: tcp transport from peer shard %d: %w", tc.peer, derr)})
				return
			}
			n.push(tcpItem{src: tc.peer, gen: tc.gen, seq: hdr.seq, batch: b})
		case frameEOR:
			armed, derr := decodeEORPayload(payload)
			if derr != nil {
				n.push(tcpItem{src: tc.peer, gen: tc.gen, err: fmt.Errorf("mpc: tcp transport from peer shard %d: %w", tc.peer, derr)})
				return
			}
			n.push(tcpItem{src: tc.peer, gen: tc.gen, seq: hdr.seq, eor: true, armed: armed})
		default:
			n.push(tcpItem{src: tc.peer, gen: tc.gen, err: fmt.Errorf("mpc: tcp transport from peer shard %d: unknown frame kind %d", tc.peer, hdr.kind)})
			return
		}
	}
}

// push delivers one inbound item unless the node is shutting down.
func (n *TCPNode) push(it tcpItem) {
	select {
	case n.recv <- it:
	case <-n.done:
		if it.batch != nil {
			it.batch.recycle()
		}
	}
}

// KillConn severs the connection to peer abruptly (a chaos hook): queued
// frames are lost and both sides observe a connection error. With recovery
// enabled the dialer side redials and replay makes the loss invisible;
// without it the round fails, as it would on a real network fault. Reports
// whether a connection existed.
func (n *TCPNode) KillConn(peer int) bool {
	n.connMu.RLock()
	var tc *tcpConn
	if peer >= 0 && peer < len(n.conns) {
		tc = n.conns[peer]
	}
	n.connMu.RUnlock()
	if tc == nil {
		return false
	}
	tc.kill(fmt.Errorf("mpc: chaos: connection %d<->%d killed", n.shard, peer))
	return true
}

// TearConn injects garbage into the connection's byte stream and then
// severs it (a chaos hook): the peer observes a torn write — a checksum or
// framing failure mid-stream — rather than a clean close.
func (n *TCPNode) TearConn(peer int) bool {
	n.connMu.RLock()
	var tc *tcpConn
	if peer >= 0 && peer < len(n.conns) {
		tc = n.conns[peer]
	}
	n.connMu.RUnlock()
	if tc == nil {
		return false
	}
	// Racing the writer goroutine is the point: the garbage lands at an
	// arbitrary offset in the stream, exactly like a torn write.
	tc.c.Write([]byte{0xde, 0xad, 0xfa, 0x11, 0x00, 0xff, 0x00, 0xff})
	tc.kill(fmt.Errorf("mpc: chaos: connection %d<->%d torn", n.shard, peer))
	return true
}

// Abort tears the node down abruptly — no flush, queued frames lost — the
// in-process equivalent of kill -9 for chaos tests. Idempotent with Close.
func (n *TCPNode) Abort() {
	n.closeOnce.Do(func() {
		n.connMu.Lock()
		n.closing = true
		conns := append([]*tcpConn(nil), n.conns...)
		n.connMu.Unlock()
		for _, tc := range conns {
			if tc != nil {
				tc.kill(fmt.Errorf("mpc: tcp transport shard %d aborted", n.shard))
			}
		}
		if n.ln != nil {
			n.ln.Close()
		}
		close(n.done)
		n.readers.Wait()
		n.drainRecv()
		if n.wlog != nil {
			n.wlog.close()
		}
	})
}

// Close tears down the mesh: queued outbound frames are flushed first, so
// peers still collecting the final round observe a clean shutdown.
// Idempotent.
func (n *TCPNode) Close() error {
	n.closeOnce.Do(func() {
		n.connMu.Lock()
		n.closing = true
		conns := append([]*tcpConn(nil), n.conns...)
		n.connMu.Unlock()
		for _, tc := range conns {
			if tc != nil {
				tc.shutdown()
			}
		}
		if n.ln != nil {
			n.ln.Close()
		}
		close(n.done)
		n.readers.Wait()
		n.drainRecv()
		if n.wlog != nil {
			n.wlog.close()
		}
	})
	return nil
}

// drainRecv recycles any columns still parked in the receive queue.
func (n *TCPNode) drainRecv() {
	for {
		select {
		case it := <-n.recv:
			if it.batch != nil {
				it.batch.recycle()
			}
		default:
			return
		}
	}
}

// ReconnectTCP rejoins an established mesh as the respawned incarnation of
// a dead worker. It dials every peer (the node has no listener of its own)
// with a reconnect hello, collects each peer's hello-ack — the first wire
// round that peer still needs from this shard — and announces the minimum
// as the fleet-wide resume round A. Peers replay their logged frames from
// A; this worker re-executes rounds below A detached (purely local — the
// replicated SPMD execution is deterministic, so local state is free) and
// reattaches to the wire exactly at A. Returns the node and A. Recovery is
// forced on regardless of opts.Recover.
//
// Lockstep execution keeps the fleet within one round of the dead worker,
// so A is at most one round behind the most advanced peer and the one-round
// lookahead stash absorbs the spread.
func ReconnectTCP(shard, shards int, addrs []string, opts TransportOpts) (*TCPNode, uint32, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, 0, fmt.Errorf("mpc: tcp reconnect shard %d out of range (K=%d)", shard, shards)
	}
	if shards > 256 {
		return nil, 0, fmt.Errorf("mpc: tcp transport supports at most 256 shards, got %d", shards)
	}
	if len(addrs) != shards {
		return nil, 0, fmt.Errorf("mpc: tcp reconnect: %d addresses for %d shards", len(addrs), shards)
	}
	opts.Recover = true
	n := newTCPNode(shard, shards, opts)
	n.addrs = append([]string(nil), addrs...)
	type dialed struct {
		tc   *tcpConn
		next uint32
	}
	peers := make([]dialed, shards)
	fail := func(err error) (*TCPNode, uint32, error) {
		for _, d := range peers {
			if d.tc != nil {
				d.tc.c.Close()
			}
		}
		n.wlog.close()
		close(n.done)
		return nil, 0, err
	}
	seed := opts.RetrySeed
	if seed == 0 {
		seed = uint64(shard+1) * 0x9e3779b9
	}
	for t := 0; t < shards; t++ {
		if t == shard {
			continue
		}
		var (
			c    net.Conn
			br   *bufio.Reader
			next uint32
			err  error
		)
		attempts := opts.dialRetries() + 1
		for a := 1; a <= attempts; a++ {
			if a > 1 {
				transportRetriesTotal.Add(1)
				time.Sleep(backoffDelay(a-1, opts.retryBase(), opts.retryMax(), seed^uint64(t)))
			}
			c, br, next, err = n.dialReconnect(t, addrs[t], resumeUnknown)
			if err == nil {
				break
			}
		}
		if err != nil {
			return fail(fmt.Errorf("mpc: tcp reconnect shard %d: peer shard %d: %w", shard, t, err))
		}
		tc := newTCPConn(t, c, br)
		tc.gen = 1
		peers[t] = dialed{tc: tc, next: next}
	}
	resume := uint32(math.MaxUint32)
	for t := range peers {
		if t != shard && peers[t].next < resume {
			resume = peers[t].next
		}
	}
	if shards == 1 {
		resume = 1
	}
	// Announce the agreed resume round, then bring the connections up.
	var rp [4]byte
	binary.LittleEndian.PutUint32(rp[:], resume)
	for t := range peers {
		if t == shard {
			continue
		}
		tc := peers[t].tc
		tc.c.SetDeadline(time.Now().Add(opts.dialTimeout()))
		if _, err := tc.c.Write(appendFrame(nil, 0, frameResume, byte(shard), byte(t), rp[:])); err != nil {
			return fail(fmt.Errorf("mpc: tcp reconnect shard %d: resume to peer shard %d: %w", shard, t, err))
		}
		tc.c.SetDeadline(time.Time{})
	}
	for t := range peers {
		if t == shard {
			continue
		}
		tc := peers[t].tc
		n.connGen[t] = 1
		n.conns[t] = tc
		n.eorSeen[t].Store(resume - 1)
		tc.start()
		n.readers.Add(1)
		go n.reader(tc)
	}
	n.resumeWire = resume
	if opts.HeartbeatInterval > 0 {
		n.readers.Add(1)
		go n.heartbeatLoop()
	}
	workerRespawnsTotal.Add(1)
	return n, resume, nil
}

// Endpoint returns a Transport over the node's mesh for one cluster run
// with an effective shard count of k (clamped shard counts leave the
// higher mesh members as pure replicas: they own no endpoint and exchange
// nothing). The endpoint's sequence tracking is its own, so consecutive
// cluster runs reuse the mesh cleanly.
func (n *TCPNode) Endpoint(k int) (Transport, error) {
	if k < 1 || k > n.shards {
		return nil, fmt.Errorf("mpc: tcp endpoint for %d shards on a %d-shard mesh", k, n.shards)
	}
	if n.shard >= k {
		return nil, fmt.Errorf("mpc: tcp endpoint: shard %d outside effective shard count %d", n.shard, k)
	}
	return &tcpEndpoint{node: n, k: k, base: n.seqBase}, nil
}

// Factory returns a TransportFactory over this node for multi-process
// fleets: the worker's cluster gets this node's endpoint when the
// effective shard count covers the node's shard, and no endpoints (pure
// replica) otherwise.
func (n *TCPNode) Factory() TransportFactory {
	return func(shards int) ([]Transport, error) {
		if shards > n.shards {
			return nil, fmt.Errorf("mpc: cluster wants %d shards, tcp mesh has %d", shards, n.shards)
		}
		if n.shard >= shards {
			return nil, nil
		}
		ep, err := n.Endpoint(shards)
		if err != nil {
			return nil, err
		}
		return []Transport{ep}, nil
	}
}

// tcpEndpoint is one cluster run's Transport over a TCPNode. ownsNode
// marks endpoints that close their node with themselves (the loopback
// group's nodes are owned by their endpoints; a worker process's
// long-lived node is not).
type tcpEndpoint struct {
	node         *TCPNode
	k            int
	base         uint32 // wire seq = base + cluster-relative seq
	lastBarrier  uint32
	lastReceived uint32
	ownsNode     bool
	scratch      []byte
	batchSeen    []bool // per-Receive dedup: one batch per source shard per round
}

func (e *tcpEndpoint) Shard() int    { return e.node.shard }
func (e *tcpEndpoint) Shards() int   { return e.k }
func (e *tcpEndpoint) Retains() bool { return false }

// DetachedRound reports whether cluster-relative round seq predates the
// node's resume point: a respawned worker re-executes those rounds purely
// locally (deterministic replay) with no wire activity. Implements the
// engine's resumable interface.
func (e *tcpEndpoint) DetachedRound(seq uint32) bool {
	return e.base+seq < e.node.resumeWire
}

// NoteDetachedRound records a locally-replayed round so sequence tracking
// (and the seqBase advance on Close) stays aligned with the wire.
func (e *tcpEndpoint) NoteDetachedRound(seq uint32) {
	e.lastBarrier, e.lastReceived = seq, seq
}

// Send implements Transport: the batch is encoded and queued on the
// destination's connection; the writer goroutine pipelines the actual
// socket writes. Ownership of the columns stays with the caller.
func (e *tcpEndpoint) Send(dst int, b *Batch) error {
	if dst < 0 || dst >= e.k || dst == e.node.shard {
		return fmt.Errorf("mpc: tcp transport send from shard %d to invalid shard %d (K=%d)", e.node.shard, dst, e.k)
	}
	transportBatchesTotal.Add(1)
	payload := appendBatchPayload(e.scratch[:0], b)
	e.scratch = payload[:0]
	wseq := e.base + e.lastBarrier + 1
	frame := appendFrame(nil, wseq, frameBatch, byte(e.node.shard), byte(dst), payload)
	return e.node.sendFrame(dst, wseq, frame)
}

// Barrier implements Transport: one end-of-round frame, carrying the armed
// control column, to every effective peer. Barriering round seq also
// evicts wire-log rounds no replay can need anymore.
func (e *tcpEndpoint) Barrier(seq uint32, armed []int32) error {
	if seq != e.lastBarrier+1 {
		return fmt.Errorf("mpc: tcp transport shard %d: barrier for round %d out of order (expected %d)", e.node.shard, seq, e.lastBarrier+1)
	}
	e.lastBarrier = seq
	payload := appendEORPayload(e.scratch[:0], armed)
	e.scratch = payload[:0]
	wseq := e.base + seq
	for t := 0; t < e.k; t++ {
		if t == e.node.shard {
			continue
		}
		frame := appendFrame(nil, wseq, frameEOR, byte(e.node.shard), byte(t), payload)
		if err := e.node.sendFrame(t, wseq, frame); err != nil {
			return err
		}
	}
	if e.node.wlog != nil {
		e.node.wlog.evict(wseq)
	}
	return nil
}

// Receive implements Transport: it drains the node's inbound queue until
// every effective peer's end-of-round marker for seq has arrived, staging
// any early next-round traffic for the following call. Replayed duplicates
// from reconnecting peers are dropped by sequence number (determinism makes
// them bit-identical to what was already consumed). Connection failures,
// protocol desyncs, and the barrier timeout surface as errors — except with
// recovery enabled, where a connection failure marks the peer down and the
// wait continues while redial/replay heal the mesh, bounded by the barrier
// timeout. With heartbeats configured, a peer silent past PeerDeadAfter is
// declared dead mid-round instead of stalling until that timeout.
func (e *tcpEndpoint) Receive(seq uint32) (*Exchange, error) {
	if seq != e.lastReceived+1 {
		return nil, fmt.Errorf("mpc: tcp transport shard %d: receive for round %d out of order (expected %d)", e.node.shard, seq, e.lastReceived+1)
	}
	n := e.node
	recov := n.opts.Recover
	want := e.k - 1
	wseq := e.base + seq
	ex := &Exchange{Armed: make([][]int32, e.k)}
	eors := 0
	if cap(e.batchSeen) < e.k {
		e.batchSeen = make([]bool, e.k)
	}
	e.batchSeen = e.batchSeen[:e.k]
	for i := range e.batchSeen {
		e.batchSeen[i] = false
	}
	consume := func(it tcpItem) error {
		switch {
		case it.err != nil:
			n.connMu.RLock()
			cur := n.connGen[it.src]
			n.connMu.RUnlock()
			if it.gen < cur {
				// A superseded connection's death is history, not news.
				return nil
			}
			if it.eof && it.src < e.k && ex.Armed[it.src] != nil {
				// The peer closed cleanly after delivering this round's
				// marker: it finished the job and exited first.
				n.gone[it.src].Store(true)
				return nil
			}
			if recov {
				n.markDown(it.src)
				return nil
			}
			return it.err
		case it.seq < wseq:
			// A replayed duplicate of a round already consumed: a
			// reconnecting peer resends conservatively, and determinism
			// guarantees the copy we consumed was bit-identical.
			if it.batch != nil {
				it.batch.recycle()
			}
			staleFramesDropped.Add(1)
			return nil
		case it.seq == wseq+1:
			// Peer already finished its next round's compute; keep for the
			// next Receive.
			n.pend = append(n.pend, it)
			return nil
		case it.seq != wseq:
			return fmt.Errorf("mpc: tcp transport shard %d: round-%d traffic from peer shard %d while receiving round %d", n.shard, it.seq, it.src, wseq)
		case it.eor:
			if it.src >= e.k {
				return fmt.Errorf("mpc: tcp transport shard %d: end-of-round from shard %d outside effective shard count %d", n.shard, it.src, e.k)
			}
			if ex.Armed[it.src] != nil {
				// Duplicate marker from a replay overlap.
				staleFramesDropped.Add(1)
				return nil
			}
			if it.armed == nil {
				it.armed = []int32{}
			}
			ex.Armed[it.src] = it.armed
			n.eorSeen[it.src].Store(wseq)
			eors++
			return nil
		default:
			if it.src < e.k && e.batchSeen[it.src] {
				// Duplicate batch from a replay overlap; at most one batch
				// per source shard per round leaves the engine.
				it.batch.recycle()
				staleFramesDropped.Add(1)
				return nil
			}
			if it.src < e.k {
				e.batchSeen[it.src] = true
			}
			ex.Batches = append(ex.Batches, it.batch)
			return nil
		}
	}
	fail := func(err error) (*Exchange, error) {
		for _, b := range ex.Batches {
			b.recycle()
		}
		return nil, err
	}
	// First replay traffic that arrived early during the previous round.
	if len(n.pend) > 0 {
		staged := n.pend
		n.pend = nil
		for i, it := range staged {
			if err := consume(it); err != nil {
				n.pend = append(n.pend, staged[i+1:]...)
				return fail(err)
			}
		}
	}
	// A peer that already finished and exited can never deliver this
	// round's marker: without recovery, fail now rather than waiting out
	// the timeout (with recovery a respawn may still rejoin).
	if !recov {
		for t := 0; t < e.k; t++ {
			if t != n.shard && n.gone[t].Load() && ex.Armed[t] == nil {
				return fail(fmt.Errorf("mpc: tcp transport: peer shard %d disconnected", t))
			}
		}
	}
	timer := time.NewTimer(n.opts.barrierTimeout())
	defer timer.Stop()
	var silence <-chan time.Time
	pd := n.opts.peerDeadAfter()
	if pd > 0 {
		step := pd / 4
		if step < time.Millisecond {
			step = time.Millisecond
		}
		st := time.NewTicker(step)
		defer st.Stop()
		silence = st.C
	}
	for eors < want {
		select {
		case it := <-n.recv:
			if err := consume(it); err != nil {
				return fail(err)
			}
		case <-silence:
			now := time.Now().UnixNano()
			for t := 0; t < e.k; t++ {
				if t == n.shard || ex.Armed[t] != nil {
					continue
				}
				n.connMu.RLock()
				tc := n.conns[t]
				isDown := n.down[t]
				n.connMu.RUnlock()
				if tc == nil || isDown || now-tc.lastHeard.Load() <= int64(pd) {
					continue
				}
				err := fmt.Errorf("mpc: tcp transport shard %d: peer shard %d silent for over %v during round %d (missed heartbeats)", n.shard, t, pd, seq)
				if recov {
					// Declare the connection dead; the down/redial path
					// takes over.
					tc.kill(err)
					n.markDown(t)
					continue
				}
				return fail(err)
			}
		case <-timer.C:
			return fail(fmt.Errorf("mpc: tcp transport shard %d: barrier timeout after %v waiting for round %d (%d/%d end-of-round markers)", n.shard, n.opts.barrierTimeout(), seq, eors, want))
		case <-n.done:
			return fail(fmt.Errorf("%w (shard %d)", errTransportClosed, n.shard))
		}
	}
	e.lastReceived = seq
	sortBatches(ex.Batches)
	return ex, nil
}

// Close implements Transport. A non-owning endpoint (a worker process's
// long-lived node) leaves the node open for the next cluster and advances
// its wire-seq base past the rounds this cluster consumed.
func (e *tcpEndpoint) Close() error {
	if e.ownsNode {
		return e.node.Close()
	}
	e.node.seqBase = e.base + e.lastReceived
	return nil
}

// TCPLoopback returns a TransportFactory that builds a complete in-process
// TCP mesh over the loopback interface: K nodes listening on 127.0.0.1:0,
// fully connected, one endpoint per node, all owned by (and closed with)
// the cluster. It exercises the real wire path — framing, checksums,
// socket scheduling — without any other process.
func TCPLoopback(opts TransportOpts) TransportFactory {
	return func(shards int) ([]Transport, error) {
		nodes := make([]*TCPNode, shards)
		fail := func(err error) ([]Transport, error) {
			for _, nd := range nodes {
				if nd != nil {
					nd.Close()
				}
			}
			return nil, err
		}
		addrs := make([]string, shards)
		for i := 0; i < shards; i++ {
			nd, err := ListenTCP(i, shards, "127.0.0.1:0", opts)
			if err != nil {
				return fail(err)
			}
			nodes[i] = nd
			addrs[i] = nd.Addr()
		}
		for _, nd := range nodes {
			if err := nd.Connect(addrs); err != nil {
				return fail(err)
			}
		}
		eps := make([]Transport, shards)
		for i, nd := range nodes {
			ep, err := nd.Endpoint(shards)
			if err != nil {
				return fail(err)
			}
			ep.(*tcpEndpoint).ownsNode = true
			eps[i] = ep
		}
		return eps, nil
	}
}
