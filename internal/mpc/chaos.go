package mpc

// Fault injection as a first-class subsystem: ChaosSpec wraps any
// TransportFactory with a seeded, deterministic schedule of faults —
// delays, duplicate frames, connection kills ("drops": without delivery
// acknowledgements a silently dropped frame is indistinguishable from a
// slow one, so the detectable version of a drop is a severed connection),
// and torn writes (garbage bytes mid-stream before the close).
//
// The schedule is a pure function of (seed, shard, operation index): every
// run of the same workload with the same spec injects the same faults at
// the same points, which is what lets the chaos tests assert bit-identical
// results under fault load. Faults requiring a real wire (kills, tears)
// apply only to TCP endpoints and are skipped for in-memory transports;
// delays and duplicates apply everywhere duplicates are safe (duplication
// needs an encoding transport — re-sending a retained batch would alias
// pooled columns).
//
// Injected faults are counted process-wide and exported via ChaosTotals for
// the service layer's /metrics.

import (
	"sync/atomic"
	"time"
)

// ChaosSpec is a deterministic fault schedule. Each fault family triggers
// on every Nth transport operation (Send or Barrier) of an endpoint, phase-
// shifted per shard by the seed so the fleet's faults don't align. Zero
// values disable the family; the zero spec injects nothing.
type ChaosSpec struct {
	// Seed decorrelates the per-shard fault phases. Same seed, same faults.
	Seed uint64
	// DelayEvery delays every Nth operation by Delay before it executes.
	DelayEvery int
	Delay      time.Duration
	// DupEvery re-sends every Nth batch (encoding transports only); the
	// receiver's dedup must drop the copy.
	DupEvery int
	// DropEvery kills the connection to the operation's peer on every Nth
	// operation (TCP only): queued frames are lost and both sides see a
	// connection error — recovery redials and replays, or the round fails.
	DropEvery int
	// TearEvery tears the connection on every Nth operation (TCP only):
	// garbage bytes land mid-stream before the close, so the peer sees a
	// checksum/framing failure instead of a clean disconnect.
	TearEvery int
}

// Enabled reports whether the spec injects any faults at all.
func (s ChaosSpec) Enabled() bool {
	return s.DelayEvery > 0 || s.DupEvery > 0 || s.DropEvery > 0 || s.TearEvery > 0
}

// Wrap returns a TransportFactory injecting this spec's faults around the
// endpoints of inner. A disabled spec returns inner unchanged.
func (s ChaosSpec) Wrap(inner TransportFactory) TransportFactory {
	if !s.Enabled() {
		return inner
	}
	return func(shards int) ([]Transport, error) {
		eps, err := inner(shards)
		if err != nil {
			return nil, err
		}
		out := make([]Transport, len(eps))
		for i, ep := range eps {
			out[i] = newChaosEndpoint(ep, s)
		}
		return out, nil
	}
}

// Process-wide fault-injection counters.
var (
	chaosDelays atomic.Uint64
	chaosDups   atomic.Uint64
	chaosDrops  atomic.Uint64
	chaosTears  atomic.Uint64
)

// ChaosTotals reports process-wide injected fault counts by family.
func ChaosTotals() (delays, dups, drops, tears uint64) {
	return chaosDelays.Load(), chaosDups.Load(), chaosDrops.Load(), chaosTears.Load()
}

// chaosEndpoint wraps one Transport with the fault schedule.
type chaosEndpoint struct {
	inner Transport
	spec  ChaosSpec
	ops   uint64
	// Per-fault phase offsets, derived from (seed, shard, family).
	phDelay, phDup, phDrop, phTear uint64
}

func newChaosEndpoint(inner Transport, s ChaosSpec) *chaosEndpoint {
	e := &chaosEndpoint{inner: inner, spec: s}
	sh := uint64(inner.Shard())
	e.phDelay = chaosPhase(s.Seed, sh, 1, s.DelayEvery)
	e.phDup = chaosPhase(s.Seed, sh, 2, s.DupEvery)
	e.phDrop = chaosPhase(s.Seed, sh, 3, s.DropEvery)
	e.phTear = chaosPhase(s.Seed, sh, 4, s.TearEvery)
	return e
}

func chaosPhase(seed, shard, family uint64, every int) uint64 {
	if every <= 0 {
		return 0
	}
	return splitmix64(seed^shard<<8^family) % uint64(every)
}

func chaosDue(op uint64, every int, phase uint64) bool {
	return every > 0 && op%uint64(every) == phase
}

// inject applies the wire-level faults scheduled for operation op, directed
// at peer.
func (e *chaosEndpoint) inject(op uint64, peer int) {
	s := e.spec
	if chaosDue(op, s.DelayEvery, e.phDelay) && s.Delay > 0 {
		chaosDelays.Add(1)
		time.Sleep(s.Delay)
	}
	tn, ok := e.inner.(*tcpEndpoint)
	if !ok || peer == e.inner.Shard() {
		return
	}
	if chaosDue(op, s.TearEvery, e.phTear) && tn.node.TearConn(peer) {
		chaosTears.Add(1)
	}
	if chaosDue(op, s.DropEvery, e.phDrop) && tn.node.KillConn(peer) {
		chaosDrops.Add(1)
	}
}

func (e *chaosEndpoint) Shard() int    { return e.inner.Shard() }
func (e *chaosEndpoint) Shards() int   { return e.inner.Shards() }
func (e *chaosEndpoint) Retains() bool { return e.inner.Retains() }
func (e *chaosEndpoint) Close() error  { return e.inner.Close() }

func (e *chaosEndpoint) Send(dst int, b *Batch) error {
	op := e.ops
	e.ops++
	e.inject(op, dst)
	if err := e.inner.Send(dst, b); err != nil {
		return err
	}
	if chaosDue(op, e.spec.DupEvery, e.phDup) && !e.inner.Retains() {
		// An encoding transport re-frames the batch, so the duplicate is a
		// bit-identical second frame the receiver must dedup away.
		chaosDups.Add(1)
		return e.inner.Send(dst, b)
	}
	return nil
}

func (e *chaosEndpoint) Barrier(seq uint32, armed []int32) error {
	op := e.ops
	e.ops++
	if k := e.inner.Shards(); k > 1 {
		peer := int(op % uint64(k))
		if peer == e.inner.Shard() {
			peer = (peer + 1) % k
		}
		e.inject(op, peer)
	}
	return e.inner.Barrier(seq, armed)
}

func (e *chaosEndpoint) Receive(seq uint32) (*Exchange, error) {
	return e.inner.Receive(seq)
}
