package mpc

// This file implements the pluggable round executor. A Cluster delegates the
// "run every machine's local computation" step of a round to an Executor;
// everything observable — message delivery order, space and word accounting,
// metrics, traces — is computed after the executor's barrier, in machine
// order, so a conforming RoundFunc produces identical results under every
// executor.
//
// A RoundFunc is conforming when each invocation's writes are confined to
// state owned by its machine (its own Outbox, per-machine slice elements,
// per-machine structs): the algorithms in internal/core are structured this
// way, with random sampling decisions drawn before the round and genuinely
// central state touched only by the central machine's invocation. `go test
// -race ./...` is the enforcement mechanism.
//
// Two parallel executors exist. Parallel spawns its workers per Execute call
// — simple, but for thousands of short rounds the spawn/teardown dominates.
// Pool keeps long-lived workers blocked on a job channel and hands tasks out
// in chunks, so a steady-state round costs a handful of channel operations
// and no goroutine creation; clusters configured with Workers > 1 own a Pool
// and release it via Cluster.Close.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Executor runs a batch of independent tasks — most prominently the
// per-machine local computations of one round.
type Executor interface {
	// Execute calls run(i) exactly once for every index in [0, n) and
	// returns only after all invocations have completed. The index is an
	// opaque task id: the Cluster passes machine ids when running a round's
	// computations, but algorithms also pass other work-item counts (e.g.
	// colour groups) via Cluster.Exec, so implementations must not
	// interpret it as a machine identity. Implementations may run
	// invocations concurrently; callers must not assume any ordering
	// between them.
	Execute(n int, run func(i int))
}

// Sequential runs machines one after another on the calling goroutine, in
// machine order — the original simulator behaviour, bit for bit.
type Sequential struct{}

// Execute implements Executor.
func (Sequential) Execute(machines int, run func(machine int)) {
	for machine := 0; machine < machines; machine++ {
		run(machine)
	}
}

// Parallel runs machines concurrently on a pool of Workers goroutines
// spawned per Execute call. Machines are handed out by an atomic counter, so
// low-id machines start first but completion order is scheduler-dependent;
// the Cluster merges results deterministically after the barrier. A panic in
// any machine's computation is re-raised on the calling goroutine after the
// pool drains. Prefer Pool for repeated Execute calls: Parallel pays a
// goroutine spawn per worker per call.
type Parallel struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
}

// Execute implements Executor.
func (p Parallel) Execute(machines int, run func(machine int)) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > machines {
		workers = machines
	}
	if workers <= 1 {
		Sequential{}.Execute(machines, run)
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			machine := -1
			defer func() {
				if r := recover(); r != nil {
					// Preserve the faulty machine, the original panic value,
					// and the panicking goroutine's stack: the re-raise below
					// happens on the caller, whose own stack says nothing
					// about where the computation failed.
					panicked.CompareAndSwap(nil, fmt.Sprintf(
						"mpc: machine %d computation panicked: %v\n%s", machine, r, debug.Stack()))
				}
			}()
			for {
				machine = int(next.Add(1)) - 1
				if machine >= machines {
					return
				}
				run(machine)
			}
		}()
	}
	wg.Wait()
	if msg := panicked.Load(); msg != nil {
		panic(msg)
	}
}

// Process-wide pool activity totals, for operational metrics (the service
// layer's /metrics reports them). They aggregate over every Pool in the
// process.
var (
	poolRoundsTotal atomic.Uint64
	poolChunksTotal atomic.Uint64
)

// PoolTotals reports process-wide persistent-pool activity: the number of
// Execute batches run and the number of task chunks claimed by pooled
// workers, summed over every Pool created in this process.
func PoolTotals() (rounds, chunks uint64) {
	return poolRoundsTotal.Load(), poolChunksTotal.Load()
}

// poolChunksPerWorker controls the chunked handout granularity: each Execute
// splits its n tasks into up to workers*poolChunksPerWorker chunks, so one
// atomic claim amortizes over several tasks while stragglers can still be
// balanced across workers.
const poolChunksPerWorker = 4

// poolJob is one Execute batch handed to the pool's workers.
type poolJob struct {
	n        int
	chunk    int
	run      func(int)
	next     atomic.Int64
	wg       sync.WaitGroup
	panicked atomic.Value
}

// Pool is a persistent parallel executor: its worker goroutines are created
// once and live until Close, blocked on a job channel between Execute calls,
// so a steady-state Execute spawns no goroutines. Tasks are handed out in
// chunks claimed by a single atomic per chunk. A panic inside a task is
// re-raised on the calling goroutine after the batch drains, and the pool
// remains usable for subsequent Execute calls.
//
// Execute must not be called concurrently with itself or from inside a
// running task (the cluster's driver loop is single-threaded, which
// satisfies both).
type Pool struct {
	workers int
	work    chan *poolJob
	stats   *poolStats
	closed  atomic.Bool
	once    sync.Once
	rounds  atomic.Uint64
}

// poolStats is the part of a pool its workers touch. It is separate from
// Pool so the workers hold no reference to the Pool itself, which lets an
// unclosed pool's finalizer fire and release the workers.
type poolStats struct {
	chunks atomic.Uint64
}

// NewPool starts a persistent pool of the given size; workers <= 0 means
// runtime.NumCPU(). Call Close to release the worker goroutines; a pool
// that becomes unreachable without Close is closed by a finalizer.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, work: make(chan *poolJob, workers), stats: new(poolStats)}
	for w := 0; w < workers; w++ {
		go poolWorker(p.work, p.stats)
	}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Stats reports the batches executed and chunks claimed by this pool.
func (p *Pool) Stats() (rounds, chunks uint64) {
	return p.rounds.Load(), p.stats.chunks.Load()
}

// Execute implements Executor.
func (p *Pool) Execute(n int, run func(i int)) {
	if n <= 0 {
		return
	}
	if p.closed.Load() {
		panic("mpc: Execute on a closed Pool")
	}
	p.rounds.Add(1)
	poolRoundsTotal.Add(1)
	// Clamp the engaged workers to the task count so tiny batches (the
	// sparse tail rounds) wake only as many workers as there are chunks.
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		Sequential{}.Execute(n, run)
		return
	}
	chunk := n / (workers * poolChunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	needed := (n + chunk - 1) / chunk
	if needed > workers {
		needed = workers
	}
	job := &poolJob{n: n, chunk: chunk, run: run}
	job.wg.Add(needed)
	for w := 0; w < needed; w++ {
		p.work <- job
	}
	job.wg.Wait()
	if msg := job.panicked.Load(); msg != nil {
		panic(msg)
	}
}

// poolWorker is the long-lived loop of one pool goroutine. It holds no
// reference to the Pool (see poolStats).
func poolWorker(work <-chan *poolJob, stats *poolStats) {
	for job := range work {
		runPoolChunks(job, stats)
	}
}

// runPoolChunks claims and runs chunks of one job until it is drained. A
// task panic is recorded on the job and ends this worker's participation
// (the remaining chunks drain through the other workers), but never kills
// the worker goroutine — the pool stays reusable.
func runPoolChunks(job *poolJob, stats *poolStats) {
	defer job.wg.Done()
	task := -1
	defer func() {
		if r := recover(); r != nil {
			job.panicked.CompareAndSwap(nil, fmt.Sprintf(
				"mpc: machine %d computation panicked: %v\n%s", task, r, debug.Stack()))
		}
	}()
	for {
		c := int(job.next.Add(1)) - 1
		start := c * job.chunk
		if start >= job.n {
			return
		}
		stats.chunks.Add(1)
		poolChunksTotal.Add(1)
		end := start + job.chunk
		if end > job.n {
			end = job.n
		}
		for task = start; task < end; task++ {
			job.run(task)
		}
	}
}

// Close stops the pool's workers. Idempotent; Execute after Close panics.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.closed.Store(true)
		close(p.work)
	})
}

// newExecutor resolves a Config to an executor: an explicit Executor wins,
// otherwise Workers selects Sequential (0 or 1) or a cluster-owned
// persistent Pool of that size (> 1; < 0 sizes it to runtime.NumCPU()). The
// returned Pool is non-nil exactly when the cluster owns one and must
// release it on Close.
func newExecutor(cfg Config) (Executor, *Pool) {
	if cfg.Executor != nil {
		return cfg.Executor, nil
	}
	switch {
	case cfg.Workers == 0 || cfg.Workers == 1:
		return Sequential{}, nil
	case cfg.Workers < 0:
		p := NewPool(0)
		return p, p
	default:
		p := NewPool(cfg.Workers)
		return p, p
	}
}
