package mpc

// This file implements the pluggable round executor. A Cluster delegates the
// "run every machine's local computation" step of a round to an Executor;
// everything observable — message delivery order, space and word accounting,
// metrics, traces — is computed after the executor's barrier, in machine
// order, so a conforming RoundFunc produces identical results under every
// executor.
//
// A RoundFunc is conforming when each invocation's writes are confined to
// state owned by its machine (its own Outbox, per-machine slice elements,
// per-machine structs): the algorithms in internal/core are structured this
// way, with random sampling decisions drawn before the round and genuinely
// central state touched only by the central machine's invocation. `go test
// -race ./...` is the enforcement mechanism.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Executor runs a batch of independent tasks — most prominently the
// per-machine local computations of one round.
type Executor interface {
	// Execute calls run(i) exactly once for every index in [0, n) and
	// returns only after all invocations have completed. The index is an
	// opaque task id: the Cluster passes machine ids when running a round's
	// computations, but algorithms also pass other work-item counts (e.g.
	// colour groups) via Cluster.Exec, so implementations must not
	// interpret it as a machine identity. Implementations may run
	// invocations concurrently; callers must not assume any ordering
	// between them.
	Execute(n int, run func(i int))
}

// Sequential runs machines one after another on the calling goroutine, in
// machine order — the original simulator behaviour, bit for bit.
type Sequential struct{}

// Execute implements Executor.
func (Sequential) Execute(machines int, run func(machine int)) {
	for machine := 0; machine < machines; machine++ {
		run(machine)
	}
}

// Parallel runs machines concurrently on a pool of Workers goroutines.
// Machines are handed out by an atomic counter, so low-id machines start
// first but completion order is scheduler-dependent; the Cluster merges
// results deterministically after the barrier. A panic in any machine's
// computation is re-raised on the calling goroutine after the pool drains.
type Parallel struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
}

// Execute implements Executor.
func (p Parallel) Execute(machines int, run func(machine int)) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > machines {
		workers = machines
	}
	if workers <= 1 {
		Sequential{}.Execute(machines, run)
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			machine := -1
			defer func() {
				if r := recover(); r != nil {
					// Preserve the faulty machine, the original panic value,
					// and the panicking goroutine's stack: the re-raise below
					// happens on the caller, whose own stack says nothing
					// about where the computation failed.
					panicked.CompareAndSwap(nil, fmt.Sprintf(
						"mpc: machine %d computation panicked: %v\n%s", machine, r, debug.Stack()))
				}
			}()
			for {
				machine = int(next.Add(1)) - 1
				if machine >= machines {
					return
				}
				run(machine)
			}
		}()
	}
	wg.Wait()
	if msg := panicked.Load(); msg != nil {
		panic(msg)
	}
}

// newExecutor resolves a Config to an executor: an explicit Executor wins,
// otherwise Workers selects Sequential (0 or 1), Parallel with that pool
// size (> 1), or Parallel sized to runtime.NumCPU() (< 0).
func newExecutor(cfg Config) Executor {
	if cfg.Executor != nil {
		return cfg.Executor
	}
	switch {
	case cfg.Workers == 0 || cfg.Workers == 1:
		return Sequential{}
	case cfg.Workers < 0:
		return Parallel{}
	default:
		return Parallel{Workers: cfg.Workers}
	}
}
