//go:build !race

package mpc

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation pins skip themselves.
const raceEnabled = false
