//go:build race

package mpc

// The race detector's instrumentation allocates on its own account, so the
// steady-state gate only enforces the order of magnitude under -race.
const steadyStateAllocBound = 64
