package mpc

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelExecutesEveryMachineOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, machines := range []int{1, 2, 7, 100} {
			counts := make([]int32, machines)
			Parallel{Workers: workers}.Execute(machines, func(machine int) {
				atomic.AddInt32(&counts[machine], 1)
			})
			for machine, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d machines=%d: machine %d ran %d times",
						workers, machines, machine, c)
				}
			}
		}
	}
}

func TestParallelPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Parallel{Workers: 4}.Execute(16, func(machine int) {
		if machine == 11 {
			panic("boom")
		}
	})
}

func TestNewExecutorSelection(t *testing.T) {
	if e, p := newExecutor(Config{Machines: 1}); p != nil {
		t.Fatal("Workers=0 must not own a pool")
	} else if _, ok := e.(Sequential); !ok {
		t.Fatal("Workers=0 must select Sequential")
	}
	if e, p := newExecutor(Config{Machines: 1, Workers: 1}); p != nil {
		t.Fatal("Workers=1 must not own a pool")
	} else if _, ok := e.(Sequential); !ok {
		t.Fatal("Workers=1 must select Sequential")
	}
	if e, p := newExecutor(Config{Machines: 1, Workers: 6}); p == nil || e != Executor(p) || p.Workers() != 6 {
		t.Fatal("Workers=6 must select an owned 6-worker Pool")
	} else {
		p.Close()
	}
	if e, p := newExecutor(Config{Machines: 1, Workers: -1}); p == nil || e != Executor(p) || p.Workers() < 1 {
		t.Fatal("Workers=-1 must select an owned NumCPU-sized Pool")
	} else {
		p.Close()
	}
	if e, p := newExecutor(Config{Machines: 1, Workers: 5, Executor: Sequential{}}); p != nil {
		t.Fatal("an explicit Executor must not own a pool")
	} else if _, ok := e.(Sequential); !ok {
		t.Fatal("an explicit Executor must win over Workers")
	}
}

func TestParallelRoundsMatchSequential(t *testing.T) {
	// Identical chatter on Sequential and Parallel clusters must produce an
	// identical transcript (delivery order included) and identical metrics.
	// The transcript is captured from the inboxes between rounds, where the
	// cluster state is quiescent.
	record := func(workers int) (string, Metrics) {
		c := NewCluster(Config{Machines: 17, SpaceCap: 1000, Trace: true, Workers: workers})
		m := c.M()
		var transcript strings.Builder
		for round := 0; round < 5; round++ {
			// Capture each machine's inbox deterministically before the
			// round, then run the senders.
			for machine := 0; machine < m; machine++ {
				in := c.Inbox(machine)
				for msg, ok := in.Next(); ok; msg, ok = in.Next() {
					fmt.Fprintf(&transcript, "r%d m%d<-%d:%v;", round, machine, msg.From, msg.Ints)
				}
				in.Reset()
			}
			err := c.Round(func(machine int, in *Inbox, out *Outbox) {
				for k := 1; k <= 3; k++ {
					to := (machine*7 + k*k + round) % m
					out.SendInts(to, int64(machine*1000+to), int64(round))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return transcript.String(), c.Metrics()
	}
	seqT, seqM := record(1)
	parT, parM := record(8)
	if seqT != parT {
		t.Fatalf("transcripts diverge:\nseq: %.200s\npar: %.200s", seqT, parT)
	}
	if seqM != parM {
		t.Fatalf("metrics diverge: %+v vs %+v", seqM, parM)
	}
}

func TestPoolExecutesEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		p := NewPool(workers)
		// The pool must clamp correctly when workers > n (including n = 0
		// and n = 1), waking only as many workers as there are chunks.
		for _, n := range []int{0, 1, 2, 7, 100} {
			counts := make([]int32, n)
			p.Execute(n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestPoolPanicThenReuse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic to propagate")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
				t.Fatalf("unexpected panic payload: %v", r)
			}
		}()
		p.Execute(64, func(i int) {
			if i == 17 {
				panic("boom")
			}
		})
	}()
	// The pool must remain fully usable after a task panicked: subsequent
	// batches run every task exactly once.
	for round := 0; round < 3; round++ {
		counts := make([]int32, 128)
		p.Execute(len(counts), func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("after panic, round %d: task %d ran %d times", round, i, c)
			}
		}
	}
}

func TestPoolSteadyStateSpawnsNoGoroutines(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Warm up: the pool's goroutines exist after NewPool; Execute must not
	// create more.
	p.Execute(256, func(int) {})
	runtime.GC() // settle any unrelated runtime goroutines
	before := runtime.NumGoroutine()
	for round := 0; round < 200; round++ {
		p.Execute(256, func(int) {})
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("goroutines grew across pooled rounds: %d -> %d", before, after)
	}
	rounds, chunks := p.Stats()
	if rounds < 200 || chunks == 0 {
		t.Fatalf("pool stats not accounted: rounds=%d chunks=%d", rounds, chunks)
	}
}

func TestPoolExecuteAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Execute after Close must panic")
		}
	}()
	p.Execute(4, func(int) {})
}

func TestClusterCloseReleasesPool(t *testing.T) {
	c := NewCluster(Config{Machines: 8, Workers: 4})
	if err := c.Round(func(machine int, in *Inbox, out *Outbox) {}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
}
