package mpc

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelExecutesEveryMachineOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, machines := range []int{1, 2, 7, 100} {
			counts := make([]int32, machines)
			Parallel{Workers: workers}.Execute(machines, func(machine int) {
				atomic.AddInt32(&counts[machine], 1)
			})
			for machine, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d machines=%d: machine %d ran %d times",
						workers, machines, machine, c)
				}
			}
		}
	}
}

func TestParallelPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Parallel{Workers: 4}.Execute(16, func(machine int) {
		if machine == 11 {
			panic("boom")
		}
	})
}

func TestNewExecutorSelection(t *testing.T) {
	if _, ok := newExecutor(Config{Machines: 1}).(Sequential); !ok {
		t.Fatal("Workers=0 must select Sequential")
	}
	if _, ok := newExecutor(Config{Machines: 1, Workers: 1}).(Sequential); !ok {
		t.Fatal("Workers=1 must select Sequential")
	}
	if p, ok := newExecutor(Config{Machines: 1, Workers: 6}).(Parallel); !ok || p.Workers != 6 {
		t.Fatal("Workers=6 must select a 6-worker Parallel")
	}
	if p, ok := newExecutor(Config{Machines: 1, Workers: -1}).(Parallel); !ok || p.Workers != 0 {
		t.Fatal("Workers=-1 must select a NumCPU-sized Parallel")
	}
	if _, ok := newExecutor(Config{Machines: 1, Workers: 5, Executor: Sequential{}}).(Sequential); !ok {
		t.Fatal("an explicit Executor must win over Workers")
	}
}

func TestParallelRoundsMatchSequential(t *testing.T) {
	// Identical chatter on Sequential and Parallel clusters must produce an
	// identical transcript (delivery order included) and identical metrics.
	// The transcript is captured from the inboxes between rounds, where the
	// cluster state is quiescent.
	record := func(workers int) (string, Metrics) {
		c := NewCluster(Config{Machines: 17, SpaceCap: 1000, Trace: true, Workers: workers})
		m := c.M()
		var transcript strings.Builder
		for round := 0; round < 5; round++ {
			// Capture each machine's inbox deterministically before the
			// round, then run the senders.
			for machine := 0; machine < m; machine++ {
				in := c.Inbox(machine)
				for msg, ok := in.Next(); ok; msg, ok = in.Next() {
					fmt.Fprintf(&transcript, "r%d m%d<-%d:%v;", round, machine, msg.From, msg.Ints)
				}
				in.Reset()
			}
			err := c.Round(func(machine int, in *Inbox, out *Outbox) {
				for k := 1; k <= 3; k++ {
					to := (machine*7 + k*k + round) % m
					out.SendInts(to, int64(machine*1000+to), int64(round))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return transcript.String(), c.Metrics()
	}
	seqT, seqM := record(1)
	parT, parM := record(8)
	if seqT != parT {
		t.Fatalf("transcripts diverge:\nseq: %.200s\npar: %.200s", seqT, parT)
	}
	if seqM != parM {
		t.Fatalf("metrics diverge: %+v vs %+v", seqM, parM)
	}
}
