package mpc

// Fault-tolerance tests: the backoff schedule, the wire log ring and its
// disk spill, heartbeat-bounded failure detection, context cancellation,
// and the two recovery soaks — deterministic healing under injected chaos,
// and a worker kill + respawn with replay, both asserting bit-identical
// results against the clean run.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestBackoffSchedule: exponential doubling capped at max, deterministic
// jitter in [0.5, 1.0) of the nominal delay.
func TestBackoffSchedule(t *testing.T) {
	const base, max = 50 * time.Millisecond, 2 * time.Second
	cases := []struct {
		attempt int
		nominal time.Duration
	}{
		{1, 50 * time.Millisecond},
		{2, 100 * time.Millisecond},
		{3, 200 * time.Millisecond},
		{4, 400 * time.Millisecond},
		{5, 800 * time.Millisecond},
		{6, 1600 * time.Millisecond},
		{7, 2 * time.Second}, // capped
		{12, 2 * time.Second},
		{0, 50 * time.Millisecond}, // clamped to attempt 1
	}
	for _, seed := range []uint64{0, 1, 0xdeadbeef} {
		for _, tc := range cases {
			d := backoffDelay(tc.attempt, base, max, seed)
			if d < tc.nominal/2 || d >= tc.nominal {
				t.Errorf("seed %d attempt %d: delay %v outside [%v, %v)",
					seed, tc.attempt, d, tc.nominal/2, tc.nominal)
			}
			if again := backoffDelay(tc.attempt, base, max, seed); again != d {
				t.Errorf("seed %d attempt %d: nondeterministic (%v then %v)", seed, tc.attempt, d, again)
			}
		}
	}
	// Different seeds must decorrelate at least one attempt (thundering-herd
	// protection is the point of the jitter).
	same := true
	for a := 1; a <= 6; a++ {
		if backoffDelay(a, base, max, 1) != backoffDelay(a, base, max, 2) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical schedules across 6 attempts")
	}
}

// TestWireLogRingEviction: the ring retains the last W barriered rounds,
// refuses replay below the retained window, and replays per-peer frames in
// order.
func TestWireLogRingEviction(t *testing.T) {
	l := newWireLog(0, 3, 1<<20, t.TempDir())
	defer l.close()
	frame := func(seq uint32, peer, i int) []byte {
		return []byte(fmt.Sprintf("r%d-p%d-f%d", seq, peer, i))
	}
	for seq := uint32(1); seq <= 6; seq++ {
		l.append(1, seq, frame(seq, 1, 0))
		l.append(2, seq, frame(seq, 2, 0))
		l.append(1, seq, frame(seq, 1, 1))
	}
	// Barriered rounds below keep are never evicted.
	l.evict(2)
	if got, ok := l.oldest(); !ok || got != 1 {
		t.Fatalf("oldest after evict(2) = %d,%v, want 1", got, ok)
	}
	// evict(6) with keep=3 drops rounds <= 3.
	l.evict(6)
	if got, ok := l.oldest(); !ok || got != 4 {
		t.Fatalf("oldest after evict(6) = %d,%v, want 4", got, ok)
	}
	if _, err := l.replayTo(1, 3); err == nil {
		t.Fatal("replayTo below the retained window succeeded")
	}
	got, err := l.replayTo(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for seq := uint32(4); seq <= 6; seq++ {
		want = append(want, frame(seq, 1, 0), frame(seq, 1, 1))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayTo(1, 4):\n got %q\nwant %q", got, want)
	}
	// Replay for the other peer sees only its own frames.
	got2, err := l.replayTo(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 || string(got2[0]) != "r5-p2-f0" || string(got2[1]) != "r6-p2-f0" {
		t.Fatalf("replayTo(2, 5) = %q", got2)
	}
}

// TestWireLogSpill: rounds beyond the memory budget spill to disk (never
// the newest), replay reloads them CRC-checked and bit-identical, eviction
// and close remove the files, and corruption is detected.
func TestWireLogSpill(t *testing.T) {
	dir := t.TempDir()
	l := newWireLog(7, 8, 64, dir) // 64-byte budget forces spilling
	payload := func(seq uint32) []byte {
		b := make([]byte, 40)
		for i := range b {
			b[i] = byte(seq) + byte(i)
		}
		return b
	}
	var want [][]byte
	for seq := uint32(1); seq <= 4; seq++ {
		p := payload(seq)
		want = append(want, p)
		l.append(1, seq, p)
	}
	spilled, _ := filepath.Glob(filepath.Join(dir, "wlog-*.bin"))
	if len(spilled) == 0 {
		t.Fatal("no rounds spilled under a 64-byte budget")
	}
	got, err := l.replayTo(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("spilled replay is not bit-identical to the appended frames")
	}
	// Corrupt one spilled round: replay through it must fail checksum.
	data, err := os.ReadFile(spilled[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(spilled[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.replayTo(1, 1); !errors.Is(err, errBadFrame) {
		t.Fatalf("replay of corrupted spill returned %v, want errBadFrame", err)
	}
	l.close()
	if left, _ := filepath.Glob(filepath.Join(dir, "wlog-*.bin")); len(left) != 0 {
		t.Fatalf("close left spill files behind: %v", left)
	}
}

// TestHeartbeatFailureDetection: with heartbeats on, a silent peer is
// declared dead within ~PeerDeadAfter instead of the barrier timeout. Node
// 1 emits no heartbeats and never rounds, so node 0 hears nothing after
// the handshake.
func TestHeartbeatFailureDetection(t *testing.T) {
	long := 30 * time.Second
	n0, err := ListenTCP(0, 2, "127.0.0.1:0", TransportOpts{
		BarrierTimeout:    long,
		HeartbeatInterval: 40 * time.Millisecond,
		PeerDeadAfter:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := ListenTCP(1, 2, "127.0.0.1:0", TransportOpts{BarrierTimeout: long})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	addrs := []string{n0.Addr(), n1.Addr()}
	if err := n0.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	if err := n1.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	ep0, err := n0.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep0.Barrier(1, nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := ep0.Receive(1); err == nil {
		t.Fatal("Receive succeeded with a silent peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("silent peer took %v to detect, want ~200ms (well under the %v barrier timeout)", elapsed, long)
	}
}

// TestRoundContextCancel: a canceled Config.Ctx fails the next round with
// the context's error — and deliberately not ErrTransport, so the service
// layer's unsharded fallback does not re-run abandoned jobs.
func TestRoundContextCancel(t *testing.T) {
	noop := func(m int, in *Inbox, out *Outbox) {}
	for _, cfg := range []Config{
		{Machines: 4},
		{Machines: 8, Shards: 2},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg.Ctx = ctx
		c := NewCluster(cfg)
		c.ArmAll()
		if err := c.Round(noop); err != nil {
			t.Fatalf("cfg %+v: round before cancel: %v", cfg, err)
		}
		cancel()
		err := c.Round(noop)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cfg %+v: round after cancel returned %v, want context.Canceled", cfg, err)
		}
		if errors.Is(err, ErrTransport) {
			t.Fatalf("cfg %+v: cancellation classified as transport failure: %v", cfg, err)
		}
		c.Close()
	}
}

// tcpFleet builds a K-node connected TCP mesh with the given options,
// closing every node at test cleanup.
func tcpFleet(t *testing.T, K int, opts TransportOpts) ([]*TCPNode, []string) {
	t.Helper()
	nodes := make([]*TCPNode, K)
	addrs := make([]string, K)
	for i := range nodes {
		nd, err := ListenTCP(i, K, "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		nodes[i] = nd
		addrs[i] = nd.Addr()
	}
	for _, nd := range nodes {
		if err := nd.Connect(addrs); err != nil {
			t.Fatal(err)
		}
	}
	return nodes, addrs
}

// recoverOpts is the transport tuning the soaks share: recovery on, fast
// retries, heartbeats, and a barrier timeout generous enough for respawn
// but far below the test timeout.
func recoverOpts() TransportOpts {
	return TransportOpts{
		Recover:           true,
		BarrierTimeout:    30 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		RetryBase:         10 * time.Millisecond,
		RetryMax:          200 * time.Millisecond,
	}
}

// TestChaosHealsDeterministically: replicated K-shard fleets under a
// seeded chaos schedule — duplicated frames, killed and torn connections —
// heal through redial + replay and still produce state, metrics, and
// traces bit-identical to the clean unsharded run.
func TestChaosHealsDeterministically(t *testing.T) {
	const M = 26
	base := Config{Machines: M, SpaceCap: 1 << 20, Sparse: true}
	wantState, wantMetrics, wantTrace, err := runShardWorkload(base)
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	for _, K := range []int{2, 4} {
		t.Run(fmt.Sprintf("K=%d", K), func(t *testing.T) {
			_, reconBefore, _ := RecoveryTotals()
			_, _, dropsBefore, tearsBefore := ChaosTotals()
			nodes, _ := tcpFleet(t, K, recoverOpts())
			spec := ChaosSpec{Seed: 42, DupEvery: 3, DropEvery: 9, TearEvery: 13}
			states := make([][]int64, K)
			metrics := make([]Metrics, K)
			traces := make([][]RoundStat, K)
			errs := make([]error, K)
			var wg sync.WaitGroup
			for i := 0; i < K; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cfg := base
					cfg.Shards = K
					cfg.Transport = spec.Wrap(nodes[i].Factory())
					states[i], metrics[i], traces[i], errs[i] = runShardWorkload(cfg)
				}(i)
			}
			wg.Wait()
			for i := 0; i < K; i++ {
				if errs[i] != nil {
					t.Fatalf("replica %d: %v", i, errs[i])
				}
				if !reflect.DeepEqual(states[i], wantState) {
					t.Errorf("replica %d: state diverged under chaos", i)
				}
				if metrics[i] != wantMetrics {
					t.Errorf("replica %d: metrics diverged under chaos\n got %+v\nwant %+v", i, metrics[i], wantMetrics)
				}
				if !reflect.DeepEqual(traces[i], wantTrace) {
					t.Errorf("replica %d: trace diverged under chaos", i)
				}
			}
			_, _, drops, tears := ChaosTotals()
			if drops+tears == dropsBefore+tearsBefore {
				t.Fatal("chaos schedule injected no connection faults; the test proved nothing")
			}
			if _, recon, _ := RecoveryTotals(); recon == reconBefore {
				t.Error("connections were killed but no reconnect was recorded")
			}
		})
	}
}

// killAtEndpoint simulates kill -9 of a worker: at the configured barrier
// round it aborts the whole node — no flush, listener gone, queued frames
// lost — and fails the replica's run.
type killAtEndpoint struct {
	Transport
	node   *TCPNode
	killAt uint32
}

func (e *killAtEndpoint) Barrier(seq uint32, armed []int32) error {
	if seq == e.killAt {
		e.node.Abort()
		return fmt.Errorf("simulated kill -9 of shard %d at round %d", e.Transport.Shard(), seq)
	}
	return e.Transport.Barrier(seq, armed)
}

// TestKillRespawnRecovery is the in-process chaos soak the mrshard
// supervisor runs across real processes: a victim replica dies abruptly at
// a seeded round, respawns via ReconnectTCP, re-executes its local rounds
// detached, is caught up by the survivors' replay, and the whole fleet
// finishes with state, metrics, and traces bit-identical to the clean run.
func TestKillRespawnRecovery(t *testing.T) {
	const M = 26
	base := Config{Machines: M, SpaceCap: 1 << 20, Sparse: true}
	wantState, wantMetrics, wantTrace, err := runShardWorkload(base)
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	for _, tc := range []struct {
		K, victim int
		killAt    uint32
	}{
		{2, 1, 4},
		{4, 2, 5},
		{4, 0, 2}, // shard 0 dies early: every survivor is an accept-side peer
	} {
		t.Run(fmt.Sprintf("K=%d/victim=%d/round=%d", tc.K, tc.victim, tc.killAt), func(t *testing.T) {
			respawnsBefore := func() uint64 { _, _, r := RecoveryTotals(); return r }()
			nodes, addrs := tcpFleet(t, tc.K, recoverOpts())
			states := make([][]int64, tc.K)
			metrics := make([]Metrics, tc.K)
			traces := make([][]RoundStat, tc.K)
			errs := make([]error, tc.K)
			var wg sync.WaitGroup
			for i := 0; i < tc.K; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cfg := base
					cfg.Shards = tc.K
					if i != tc.victim {
						cfg.Transport = nodes[i].Factory()
						states[i], metrics[i], traces[i], errs[i] = runShardWorkload(cfg)
						return
					}
					// First incarnation: dies at the scheduled round.
					cfg.Transport = func(k int) ([]Transport, error) {
						ep, err := nodes[i].Endpoint(k)
						if err != nil {
							return nil, err
						}
						return []Transport{&killAtEndpoint{Transport: ep, node: nodes[i], killAt: tc.killAt}}, nil
					}
					if _, _, _, err := runShardWorkload(cfg); err == nil {
						errs[i] = fmt.Errorf("victim outlived its own kill")
						return
					}
					// Respawn: rejoin the mesh, rerun from round 0. Rounds
					// below the negotiated resume run detached (local only);
					// the wire picks up exactly at the resume round.
					nd, resume, err := ReconnectTCP(i, tc.K, addrs, recoverOpts())
					if err != nil {
						errs[i] = fmt.Errorf("respawn: %w", err)
						return
					}
					defer nd.Close()
					if resume < 1 || resume > tc.killAt {
						errs[i] = fmt.Errorf("resume round %d outside [1, %d]", resume, tc.killAt)
						return
					}
					cfg.Transport = nd.Factory()
					states[i], metrics[i], traces[i], errs[i] = runShardWorkload(cfg)
				}(i)
			}
			wg.Wait()
			for i := 0; i < tc.K; i++ {
				if errs[i] != nil {
					t.Fatalf("replica %d: %v", i, errs[i])
				}
				if !reflect.DeepEqual(states[i], wantState) {
					t.Errorf("replica %d: state diverged after respawn", i)
				}
				if metrics[i] != wantMetrics {
					t.Errorf("replica %d: metrics diverged after respawn\n got %+v\nwant %+v", i, metrics[i], wantMetrics)
				}
				if !reflect.DeepEqual(traces[i], wantTrace) {
					t.Errorf("replica %d: trace diverged after respawn", i)
				}
			}
			if got := func() uint64 { _, _, r := RecoveryTotals(); return r }(); got != respawnsBefore+1 {
				t.Errorf("worker respawn total advanced by %d, want 1", got-respawnsBefore)
			}
		})
	}
}
