package mpc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// --- codec ------------------------------------------------------------------

// testBatch builds a two-column batch with mixed payloads.
func testBatch() *Batch {
	b := &Batch{Src: 0, Dst: 1}
	c1 := getColumn()
	c1.ints = append(c1.ints, 1, -2, 1<<40)
	c1.floats = append(c1.floats, 0.5)
	c1.recs = append(c1.recs, recMeta{2, 0}, recMeta{1, 1})
	c1.words = 2 + 3 + 1
	b.add(3, 17, c1, false)
	c2 := getColumn()
	c2.recs = append(c2.recs, recMeta{0, 0})
	c2.words = 1
	b.add(5, 18, c2, false)
	return b
}

func TestBatchPayloadRoundTrip(t *testing.T) {
	b := testBatch()
	payload := appendBatchPayload(nil, b)
	got, err := decodeBatchPayload(0, 1, payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.cols) != len(b.cols) {
		t.Fatalf("decoded %d columns, want %d", len(got.cols), len(b.cols))
	}
	for i := range b.cols {
		w, g := b.cols[i], got.cols[i]
		if w.from != g.from || w.to != g.to || w.col.words != g.col.words {
			t.Fatalf("column %d header mismatch: got (%d,%d,%d) want (%d,%d,%d)",
				i, g.from, g.to, g.col.words, w.from, w.to, w.col.words)
		}
		if !reflectEqualColumn(w.col, g.col) {
			t.Fatalf("column %d payload mismatch", i)
		}
	}
	got.recycle()
	b.recycle()
}

func reflectEqualColumn(a, b *column) bool {
	if len(a.ints) != len(b.ints) || len(a.floats) != len(b.floats) || len(a.recs) != len(b.recs) {
		return false
	}
	for i := range a.ints {
		if a.ints[i] != b.ints[i] {
			return false
		}
	}
	for i := range a.floats {
		if a.floats[i] != b.floats[i] {
			return false
		}
	}
	for i := range a.recs {
		if a.recs[i] != b.recs[i] {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	payload := appendEORPayload(nil, []int32{7, 9, 200})
	frame := appendFrame(nil, 42, frameEOR, 1, 0, payload)
	hdr, got, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if hdr.seq != 42 || hdr.kind != frameEOR || hdr.src != 1 || hdr.dst != 0 {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	armed, err := decodeEORPayload(got)
	if err != nil {
		t.Fatalf("decodeEOR: %v", err)
	}
	if len(armed) != 3 || armed[0] != 7 || armed[1] != 9 || armed[2] != 200 {
		t.Fatalf("armed mismatch: %v", armed)
	}
	// A second read at the clean boundary is io.EOF, not a frame error.
	if _, _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

// TestFrameFaults: every corruption or truncation of a valid frame is
// detected and wraps errBadFrame.
func TestFrameFaults(t *testing.T) {
	payload := appendEORPayload(nil, []int32{1, 2, 3})
	frame := appendFrame(nil, 7, frameEOR, 0, 1, payload)
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated header", func(f []byte) []byte { return f[:frameHdrSize-5] }},
		{"truncated payload", func(f []byte) []byte { return f[:len(f)-3] }},
		{"corrupt header", func(f []byte) []byte { f[2] ^= 0x40; return f }},
		{"corrupt payload crc", func(f []byte) []byte { f[13] ^= 0x01; return f }},
		{"corrupt payload byte", func(f []byte) []byte { f[frameHdrSize+2] ^= 0x80; return f }},
	}
	for _, tc := range cases {
		f := tc.mangle(append([]byte(nil), frame...))
		if _, _, err := readFrame(bytes.NewReader(f)); !errors.Is(err, errBadFrame) {
			t.Errorf("%s: got %v, want errBadFrame", tc.name, err)
		}
	}
}

// --- fault injection at the Transport seam ----------------------------------

// faultTransport wraps a working endpoint and injects one failure at a
// chosen round and operation, standing in for every way a real link can
// die: an I/O error on send, a corrupt frame on receive, a protocol
// desync (double barrier).
type faultTransport struct {
	inner Transport
	op    string // "send" | "barrier" | "receive" | "double-barrier"
	at    uint32 // 1-based round to fail in
	err   error
	seq   uint32 // barriers completed
}

func (f *faultTransport) Shard() int    { return f.inner.Shard() }
func (f *faultTransport) Shards() int   { return f.inner.Shards() }
func (f *faultTransport) Retains() bool { return f.inner.Retains() }
func (f *faultTransport) Close() error  { return f.inner.Close() }

func (f *faultTransport) Send(dst int, b *Batch) error {
	if f.op == "send" && f.seq+1 == f.at {
		return f.err
	}
	return f.inner.Send(dst, b)
}

func (f *faultTransport) Barrier(seq uint32, armed []int32) error {
	if f.op == "barrier" && seq == f.at {
		return f.err
	}
	if err := f.inner.Barrier(seq, armed); err != nil {
		return err
	}
	f.seq = seq
	if f.op == "double-barrier" && seq == f.at {
		// The protocol violation itself: the inner endpoint must refuse the
		// replay rather than wedge the fabric.
		return f.inner.Barrier(seq, armed)
	}
	return nil
}

func (f *faultTransport) Receive(seq uint32) (*Exchange, error) {
	if f.op == "receive" && seq == f.at {
		return nil, f.err
	}
	return f.inner.Receive(seq)
}

var errInjected = errors.New("injected transport fault")

// TestRoundSurfacesTransportFaults: every transport failure mode surfaces
// as a wrapped error from Round — never a deadlock, never a panic — and
// poisons the cluster for subsequent rounds.
func TestRoundSurfacesTransportFaults(t *testing.T) {
	mkErr := func(base error) error { return fmt.Errorf("link: %w", base) }
	cases := []struct {
		name   string
		op     string
		err    error
		target error // errors.Is target expected from Round
	}{
		{"send io error", "send", mkErr(errInjected), errInjected},
		{"barrier io error", "barrier", mkErr(errInjected), errInjected},
		{"receive disconnect", "receive", mkErr(io.ErrUnexpectedEOF), io.ErrUnexpectedEOF},
		{"receive truncated frame", "receive", fmt.Errorf("%w: truncated payload", errBadFrame), errBadFrame},
		{"receive bad crc", "receive", fmt.Errorf("%w: payload checksum mismatch", errBadFrame), errBadFrame},
		{"double barrier", "double-barrier", nil, nil}, // inner error expected
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const failRound = 2
			factory := func(k int) ([]Transport, error) {
				eps, err := NewMemGroup(k)
				if err != nil {
					return nil, err
				}
				eps[1] = &faultTransport{inner: eps[1], op: tc.op, at: failRound, err: tc.err}
				return eps, nil
			}
			c := NewCluster(Config{Machines: 8, Shards: 2, Transport: factory})
			defer c.Close()
			scatter := func(m int, in *Inbox, out *Outbox) {
				out.SendInts((m+5)%8, int64(m))
			}
			if err := c.Round(scatter); err != nil {
				t.Fatalf("round 1: %v", err)
			}
			err := c.Round(scatter)
			if err == nil {
				t.Fatal("round 2: fault did not surface")
			}
			if tc.target != nil && !errors.Is(err, tc.target) {
				t.Fatalf("round 2: error %v does not wrap %v", err, tc.target)
			}
			// The cluster is poisoned: later rounds fail fast with the same cause.
			err3 := c.Round(scatter)
			if err3 == nil {
				t.Fatal("round 3: poisoned cluster accepted a round")
			}
			if tc.target != nil && !errors.Is(err3, tc.target) {
				t.Fatalf("round 3: poisoned error %v does not wrap %v", err3, tc.target)
			}
			if err := c.Quiet(); err == nil {
				t.Fatal("Quiet on poisoned cluster succeeded")
			}
		})
	}
}

// TestTransportFactoryErrorSurfaces: a failing factory turns into an error
// from the first Round, not a NewCluster panic.
func TestTransportFactoryErrorSurfaces(t *testing.T) {
	boom := errors.New("no fabric")
	c := NewCluster(Config{Machines: 4, Shards: 2, Transport: func(int) ([]Transport, error) { return nil, boom }})
	defer c.Close()
	if err := c.Round(func(int, *Inbox, *Outbox) {}); !errors.Is(err, boom) {
		t.Fatalf("Round returned %v, want factory error", err)
	}
}

// --- real TCP failure paths -------------------------------------------------

// tcpPair builds a connected 2-node mesh with a short barrier timeout.
func tcpPair(t *testing.T, timeout time.Duration) (*TCPNode, *TCPNode) {
	t.Helper()
	opts := TCPOptions{BarrierTimeout: timeout}
	n0, err := ListenTCP(0, 2, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := ListenTCP(1, 2, "127.0.0.1:0", opts)
	if err != nil {
		n0.Close()
		t.Fatal(err)
	}
	addrs := []string{n0.Addr(), n1.Addr()}
	if err := n0.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	if err := n1.Connect(addrs); err != nil {
		t.Fatal(err)
	}
	return n0, n1
}

// TestTCPPeerDisconnectMidRound: a peer dying between our barrier and its
// own surfaces as an error from Receive within the timeout.
func TestTCPPeerDisconnectMidRound(t *testing.T) {
	n0, n1 := tcpPair(t, 5*time.Second)
	defer n0.Close()
	ep0, err := n0.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep0.Barrier(1, nil); err != nil {
		t.Fatal(err)
	}
	n1.Close() // peer dies without ever ending round 1
	if _, err := ep0.Receive(1); err == nil {
		t.Fatal("Receive succeeded with a dead peer")
	}
}

// TestTCPBarrierTimeout: a peer that never ends the round trips the
// barrier timeout instead of hanging.
func TestTCPBarrierTimeout(t *testing.T) {
	n0, n1 := tcpPair(t, 150*time.Millisecond)
	defer n0.Close()
	defer n1.Close()
	ep0, err := n0.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep0.Barrier(1, nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := ep0.Receive(1); err == nil {
		t.Fatal("Receive succeeded without the peer's end-of-round")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestTCPCorruptFrameOnWire: a corrupted frame injected into a live
// connection surfaces as errBadFrame from the peer's Receive.
func TestTCPCorruptFrameOnWire(t *testing.T) {
	n0, n1 := tcpPair(t, 5*time.Second)
	defer n0.Close()
	defer n1.Close()
	ep1, err := n1.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	frame := appendFrame(nil, 1, frameEOR, 0, 1, appendEORPayload(nil, nil))
	frame[len(frame)-1] ^= 0xff // flip a payload byte after the CRC was computed
	if err := n0.conns[1].enqueue(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := ep1.Receive(1); !errors.Is(err, errBadFrame) {
		t.Fatalf("Receive returned %v, want errBadFrame", err)
	}
}

// TestMemGroupProtocolGuards: out-of-order barriers and receives are
// refused, and double-close is fine.
func TestMemGroupProtocolGuards(t *testing.T) {
	eps, err := NewMemGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Barrier(2, nil); err == nil {
		t.Fatal("out-of-order barrier accepted")
	}
	if err := eps[0].Barrier(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := eps[1].Barrier(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].Receive(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].Receive(1); err == nil {
		t.Fatal("double receive accepted")
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	// The surviving endpoint cannot complete a barrier against a closed
	// peer: error, not deadlock.
	if err := eps[1].Barrier(2, nil); err == nil {
		if _, err := eps[1].Receive(2); err == nil {
			t.Fatal("receive completed against a closed peer")
		}
	}
}
