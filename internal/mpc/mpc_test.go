package mpc

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundDelivery(t *testing.T) {
	c := NewCluster(Config{Machines: 3})
	// Round 1: machine 0 sends to 1 and 2.
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 0 {
			out.SendInts(1, 10)
			out.SendInts(2, 20, 21)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: check inboxes.
	got := make(map[int][]int64)
	err = c.Round(func(machine int, in *Inbox, out *Outbox) {
		for m, ok := in.Next(); ok; m, ok = in.Next() {
			got[machine] = append(got[machine], m.Ints...)
			if m.From != 0 {
				t.Errorf("From = %d", m.From)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 1 || got[1][0] != 10 {
		t.Fatalf("machine 1 inbox: %v", got[1])
	}
	if len(got[2]) != 2 || got[2][0] != 20 {
		t.Fatalf("machine 2 inbox: %v", got[2])
	}
	m := c.Metrics()
	if m.Rounds != 2 {
		t.Fatalf("rounds = %d", m.Rounds)
	}
	// words: msg1 = 1 header + 1 int = 2; msg2 = 1 + 2 = 3.
	if m.WordsSent != 5 {
		t.Fatalf("words = %d", m.WordsSent)
	}
	if m.Messages != 2 {
		t.Fatalf("messages = %d", m.Messages)
	}
}

func TestSendPanicsOnBadDestination(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = c.Round(func(machine int, in *Inbox, out *Outbox) {
		out.SendInts(5, 1)
	})
}

func TestSpaceAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 2, SpaceCap: 10})
	c.SetResident(0, 4)
	c.SetResident(1, 2)
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 0 {
			out.Send(1, []int64{1, 2, 3}, nil) // 4 words
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	// machine0: resident 4 + out 4 = 8; machine1: resident 2 + in 4 = 6.
	if m.MaxSpace != 8 {
		t.Fatalf("MaxSpace = %d, want 8", m.MaxSpace)
	}
	if m.Violations != 0 {
		t.Fatal("no violation expected")
	}
	if m.MaxResident != 4 {
		t.Fatalf("MaxResident = %d", m.MaxResident)
	}
}

func TestStrictCapViolation(t *testing.T) {
	c := NewCluster(Config{Machines: 2, SpaceCap: 3, Strict: true})
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 0 {
			out.Send(1, []int64{1, 2, 3, 4, 5}, nil) // 6 words > cap 3
		}
	})
	if !errors.Is(err, ErrSpaceExceeded) {
		t.Fatalf("err = %v, want ErrSpaceExceeded", err)
	}
	if c.Metrics().Violations == 0 {
		t.Fatal("violation not recorded")
	}
}

func TestLenientCapViolation(t *testing.T) {
	c := NewCluster(Config{Machines: 2, SpaceCap: 3, Strict: false})
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 0 {
			out.Send(1, []int64{1, 2, 3, 4, 5}, nil)
		}
	})
	if err != nil {
		t.Fatal("lenient mode must not error")
	}
	if c.Metrics().Violations != 2 {
		// Both sender (out) and receiver (in) exceed the tiny cap.
		t.Fatalf("violations = %d, want 2", c.Metrics().Violations)
	}
}

func TestFloatsAccounted(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	_ = c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 0 {
			out.Send(1, []int64{1}, []float64{2.5, 3.5})
		}
	})
	if c.Metrics().WordsSent != 4 { // header + 1 int + 2 floats
		t.Fatalf("words = %d", c.Metrics().WordsSent)
	}
	var got []float64
	_ = c.Round(func(machine int, in *Inbox, out *Outbox) {
		for m, ok := in.Next(); ok; m, ok = in.Next() {
			got = append(got, m.Floats...)
		}
	})
	if len(got) != 2 || got[0] != 2.5 {
		t.Fatalf("floats = %v", got)
	}
}

func TestTreeStructure(t *testing.T) {
	c := NewCluster(Config{Machines: 13})
	tr := NewTree(c, 0, 3)
	// Root.
	if tr.parent(0) != -1 || tr.depth(0) != 0 {
		t.Fatal("root")
	}
	// Children of root are 1,2,3.
	ch := tr.children(0)
	if len(ch) != 3 || ch[0] != 1 || ch[2] != 3 {
		t.Fatalf("children(0) = %v", ch)
	}
	// Every non-root machine's parent lists it as a child.
	for machine := 1; machine < 13; machine++ {
		p := tr.parent(machine)
		found := false
		for _, ch := range tr.children(p) {
			if ch == machine {
				found = true
			}
		}
		if !found {
			t.Fatalf("machine %d not child of its parent %d", machine, p)
		}
		if tr.depth(machine) != tr.depth(p)+1 {
			t.Fatalf("depth mismatch at %d", machine)
		}
	}
	// 13 machines, degree 3: depths 0,1,1,1,2,... depth = 2? positions 4..12 are depth 2.
	if d := tr.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
}

func TestTreeNonZeroRoot(t *testing.T) {
	c := NewCluster(Config{Machines: 5})
	tr := NewTree(c, 3, 2)
	if tr.depth(3) != 0 {
		t.Fatal("root depth")
	}
	seen := map[int]bool{3: true}
	frontier := []int{3}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, ch := range tr.children(v) {
				if seen[ch] {
					t.Fatalf("machine %d reached twice", ch)
				}
				seen[ch] = true
				next = append(next, ch)
			}
		}
		frontier = next
	}
	if len(seen) != 5 {
		t.Fatalf("tree covers %d machines, want 5", len(seen))
	}
}

func TestBroadcastChargesRounds(t *testing.T) {
	c := NewCluster(Config{Machines: 9})
	tr := NewTree(c, 0, 2)
	depth := tr.Depth()
	if err := tr.Broadcast(c, []int64{7}, nil); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Rounds != depth+1 {
		t.Fatalf("rounds = %d, want %d", m.Rounds, depth+1)
	}
	// Every non-root machine receives the payload exactly once: 8 messages,
	// 2 words each.
	if m.Messages != 8 {
		t.Fatalf("messages = %d", m.Messages)
	}
	if m.WordsSent != 16 {
		t.Fatalf("words = %d", m.WordsSent)
	}
	// Inboxes are clean after the helper.
	for machine := 0; machine < 9; machine++ {
		if c.Inbox(machine).Len() != 0 {
			t.Fatalf("machine %d inbox not drained", machine)
		}
	}
}

func TestBroadcastSingleMachine(t *testing.T) {
	c := NewCluster(Config{Machines: 1})
	tr := NewTree(c, 0, 2)
	if err := tr.Broadcast(c, []int64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().Rounds != 0 {
		t.Fatal("single machine broadcast should be free")
	}
}

func TestAggregateSum(t *testing.T) {
	c := NewCluster(Config{Machines: 10})
	tr := NewTree(c, 0, 3)
	total, err := tr.AggregateSum(c, 2, func(machine int) []int64 {
		return []int64{int64(machine), 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total[0] != 45 || total[1] != 10 {
		t.Fatalf("total = %v, want [45 10]", total)
	}
	for machine := 0; machine < 10; machine++ {
		if c.Inbox(machine).Len() != 0 {
			t.Fatalf("machine %d inbox not drained", machine)
		}
	}
}

func TestAggregateSumNonZeroRoot(t *testing.T) {
	c := NewCluster(Config{Machines: 7})
	tr := NewTree(c, 4, 2)
	total, err := tr.AggregateSum(c, 1, func(machine int) []int64 {
		return []int64{1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total[0] != 7 {
		t.Fatalf("total = %v", total)
	}
}

func TestAllReduceSum(t *testing.T) {
	c := NewCluster(Config{Machines: 6})
	tr := NewTree(c, 0, 2)
	total, err := tr.AllReduceSum(c, 1, func(machine int) []int64 {
		return []int64{int64(machine + 1)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total[0] != 21 {
		t.Fatalf("total = %v", total)
	}
}

func TestQuickAggregateMatchesDirectSum(t *testing.T) {
	f := func(mRaw, degRaw uint8, vals []int16) bool {
		m := int(mRaw%20) + 1
		deg := int(degRaw%4) + 2
		c := NewCluster(Config{Machines: m})
		tr := NewTree(c, 0, deg)
		want := int64(0)
		local := make([]int64, m)
		for i := 0; i < m; i++ {
			var v int64
			if i < len(vals) {
				v = int64(vals[i])
			}
			local[i] = v
			want += v
		}
		got, err := tr.AggregateSum(c, 1, func(machine int) []int64 {
			return []int64{local[machine]}
		})
		return err == nil && got[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuietChargesRound(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	if err := c.Quiet(); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().Rounds != 1 {
		t.Fatal("Quiet must charge one round")
	}
}

func TestResidentTracking(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	c.SetResident(0, 5)
	c.AddResident(0, 3)
	if c.Resident(0) != 8 {
		t.Fatalf("resident = %d", c.Resident(0))
	}
	c.AddResident(0, -2)
	if c.Resident(0) != 6 {
		t.Fatal("negative delta")
	}
	if c.Metrics().MaxResident != 8 {
		t.Fatalf("MaxResident = %d", c.Metrics().MaxResident)
	}
}

func TestTraceRecordsRounds(t *testing.T) {
	c := NewCluster(Config{Machines: 2, Trace: true})
	c.SetResident(0, 3)
	_ = c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 0 {
			out.SendInts(1, 7, 8) // 3 words
		}
	})
	_ = c.Quiet()
	tr := c.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length %d, want 2", len(tr))
	}
	if tr[0].Round != 1 || tr[0].Words != 3 || tr[0].Messages != 1 {
		t.Fatalf("round 1 stat: %+v", tr[0])
	}
	// Round 1 max load: machine 0 resident 3 + out 3 = 6.
	if tr[0].MaxLoad != 6 {
		t.Fatalf("round 1 max load %d, want 6", tr[0].MaxLoad)
	}
	if tr[1].Words != 0 || tr[1].Messages != 0 {
		t.Fatalf("quiet round stat: %+v", tr[1])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	_ = c.Quiet()
	if c.Trace() != nil {
		t.Fatal("trace recorded without being enabled")
	}
}
