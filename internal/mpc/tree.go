package mpc

import "fmt"

// This file implements the degree-d broadcast/aggregation tree of §2.2 and
// §4.1 of the paper. Sending a message from a central machine to all M
// machines directly could exceed the sender's space cap, so the paper routes
// it over a tree of degree d = n^µ and depth ceil(log_d M), charging that
// many MapReduce rounds. The helpers here execute those rounds for real on
// the cluster, so round counts and word counts include the tree traffic.
//
// Delivery semantics: a message emitted in round r is readable at the start
// of round r+1. Each helper therefore runs Depth()+1 rounds (for M > 1): the
// final round consumes the last in-flight messages, leaving the cluster's
// inboxes empty for the caller.

// Tree is a rooted d-ary tree over the machines of a cluster. The tree
// shape is fixed at construction: per-position depths and the height are
// computed once in NewTree and cached, because the per-round closures of
// Broadcast and AggregateSum consult them for every machine every round.
type Tree struct {
	root    int
	degree  int
	m       int
	depths  []int   // depth by tree position (position 0 = root)
	height  int     // max over positions of depths
	byDepth [][]int // machine ids per depth, used to arm each level's senders
}

// NewTree returns a d-ary tree over the cluster's machines rooted at root.
// Degrees below 2 are clamped to 2.
func NewTree(c *Cluster, root, degree int) *Tree {
	if degree < 2 {
		degree = 2
	}
	if root < 0 || root >= c.M() {
		panic(fmt.Sprintf("mpc: tree root %d out of range", root))
	}
	t := &Tree{root: root, degree: degree, m: c.M()}
	// depths[p] follows from the parent recurrence p -> (p-1)/d; positions
	// are numbered level by level, so the height is the last position's
	// depth (the closed form ceil(log_d(p(d-1)+1)) without the float error).
	t.depths = make([]int, t.m)
	for p := 1; p < t.m; p++ {
		t.depths[p] = t.depths[(p-1)/degree] + 1
	}
	if t.m > 1 {
		t.height = t.depths[t.m-1]
	}
	t.byDepth = make([][]int, t.height+1)
	for p := 0; p < t.m; p++ {
		t.byDepth[t.depths[p]] = append(t.byDepth[t.depths[p]], t.machine(p))
	}
	return t
}

// pos maps a machine id to its position in the tree (root has position 0).
func (t *Tree) pos(machine int) int { return ((machine - t.root) + t.m) % t.m }

// machine maps a tree position back to a machine id.
func (t *Tree) machine(pos int) int { return (pos + t.root) % t.m }

// parent returns the machine id of the parent, or -1 for the root.
func (t *Tree) parent(machine int) int {
	p := t.pos(machine)
	if p == 0 {
		return -1
	}
	return t.machine((p - 1) / t.degree)
}

// childRange returns the half-open position range [lo, hi) of the children
// of position p: the contiguous block p·d+1 .. p·d+d, clipped to the tree.
func (t *Tree) childRange(p int) (lo, hi int) {
	lo = p*t.degree + 1
	hi = lo + t.degree
	if lo > t.m {
		lo = t.m
	}
	if hi > t.m {
		hi = t.m
	}
	return lo, hi
}

// children returns the machine ids of the children of machine.
func (t *Tree) children(machine int) []int {
	lo, hi := t.childRange(t.pos(machine))
	var out []int
	for q := lo; q < hi; q++ {
		out = append(out, t.machine(q))
	}
	return out
}

// depth returns the depth of machine in the tree (root = 0).
func (t *Tree) depth(machine int) int { return t.depths[t.pos(machine)] }

// Depth returns the height of the tree: the number of hops a broadcast
// needs to reach the deepest machine.
func (t *Tree) Depth() int { return t.height }

// Broadcast sends the payload from the tree's root to every machine over
// Depth()+1 rounds. The payload itself is shared simulator-side; what the
// helper does is execute (and charge) the real message traffic.
func (t *Tree) Broadcast(c *Cluster, ints []int64, floats []float64) error {
	depth := t.Depth()
	if depth == 0 {
		return nil
	}
	for r := 0; r <= depth; r++ {
		if r == 0 {
			// Sparse scheduling: the root starts with an empty inbox; every
			// later level has just received the payload and runs on its own.
			c.Arm(t.root)
		}
		err := c.Round(func(machine int, in *Inbox, out *Outbox) {
			// A machine at depth r has just received the payload (or is the
			// root); it forwards to its children. Send copies the payload
			// into the outbox's columns, so the shared slices need no
			// defensive clone.
			if t.depth(machine) != r {
				return
			}
			// Iterating the child position range directly avoids
			// materializing a child list per machine per round.
			lo, hi := t.childRange(t.pos(machine))
			for q := lo; q < hi; q++ {
				out.Send(t.machine(q), ints, floats)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// AggregateSum sums per-machine int64 vectors up the tree to the root over
// Depth()+1 rounds and returns the elementwise total. value(machine)
// supplies each machine's local contribution; all vectors must have length
// width.
func (t *Tree) AggregateSum(c *Cluster, width int, value func(machine int) []int64) ([]int64, error) {
	acc := make([][]int64, c.M())
	for machine := 0; machine < c.M(); machine++ {
		v := value(machine)
		if len(v) != width {
			panic(fmt.Sprintf("mpc: aggregate width mismatch: machine %d has %d, want %d", machine, len(v), width))
		}
		acc[machine] = append([]int64(nil), v...)
	}
	depth := t.Depth()
	if depth == 0 {
		return acc[t.root], nil
	}
	for r := 0; r <= depth; r++ {
		sendDepth := depth - r // machines at this depth send to their parent
		if sendDepth >= 1 {
			// Sparse scheduling: every machine of the sending level must run
			// this round — leaves at this depth have empty inboxes (internal
			// nodes received their children's sums and run on their own, but
			// arming is idempotent, so the whole level is armed).
			for _, m := range t.byDepth[sendDepth] {
				c.Arm(m)
			}
		}
		err := c.Round(func(machine int, in *Inbox, out *Outbox) {
			for m, ok := in.Next(); ok; m, ok = in.Next() {
				for i, v := range m.Ints {
					acc[machine][i] += v
				}
			}
			if sendDepth >= 1 && t.depth(machine) == sendDepth {
				out.Send(t.parent(machine), acc[machine], nil)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return acc[t.root], nil
}

// AllReduceSum aggregates per-machine vectors to the root and broadcasts the
// total back down.
func (t *Tree) AllReduceSum(c *Cluster, width int, value func(machine int) []int64) ([]int64, error) {
	total, err := t.AggregateSum(c, width, value)
	if err != nil {
		return nil, err
	}
	if err := t.Broadcast(c, total, nil); err != nil {
		return nil, err
	}
	return total, nil
}
