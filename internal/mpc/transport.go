package mpc

// This file defines the transport seam under the columnar message plane:
// the interface a sharded cluster uses to move cross-shard columns, plus
// the in-memory reference implementation that makes K-shard in-process
// execution an (almost) zero-cost permutation of the single-process path.
//
// A Transport value is one *endpoint*: it speaks for exactly one shard and
// exchanges column batches with the endpoints of every other shard. One
// synchronous round maps onto the endpoint as
//
//	Send(dst, batch)*       — queue this shard's outbound columns per
//	                          destination shard (any order, non-blocking),
//	Barrier(seq, armed)     — flush an end-of-round marker to every peer,
//	                          carrying the shard's self-armed machines as a
//	                          tiny control column (non-blocking),
//	Receive(seq)            — block until every peer's end-of-round marker
//	                          for seq has arrived; return their batches and
//	                          armed sets.
//
// Barrier and Receive are split so a single goroutine can drive several
// in-process endpoints: it first flushes every endpoint's barrier, then
// collects every endpoint's exchange — a combined blocking barrier would
// deadlock waiting for markers the later endpoints had not yet sent.
//
// Ownership. Batches carry *column buffers from the plane's pool. A
// transport with Retains() == true (the in-memory group) takes ownership of
// the columns passed to Send and hands ownership of received columns to the
// caller; a transport with Retains() == false (TCP) encodes the columns
// during Send and leaves them owned by the caller, while received columns
// are freshly decoded from the pool and owned by the caller. Either way the
// columns inside a Receive'd exchange end up in destination inboxes and are
// recycled by the normal inbox clear path.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Transport is one shard's endpoint of a K-shard exchange fabric. Methods
// are driven by the round engine only (never concurrently for one
// endpoint). Implementations must make Send and Barrier non-blocking with
// respect to the peers' progress, and must make Receive fail with an error
// rather than block forever when the fabric breaks (peer gone, protocol
// desync, closed endpoint).
type Transport interface {
	// Shard returns the shard this endpoint speaks for, in [0, Shards()).
	Shard() int
	// Shards returns K, the number of shards in the fabric.
	Shards() int
	// Send queues one batch of columns addressed to shard dst. The batch's
	// columns are owned by the transport afterwards iff Retains() is true.
	Send(dst int, b *Batch) error
	// Barrier marks the end of round seq towards every peer, propagating
	// the shard's self-armed machine ids as the round's control column. It
	// must not wait for the peers.
	Barrier(seq uint32, armed []int32) error
	// Receive blocks until every peer has ended round seq and returns their
	// batches (ownership passes to the caller) and armed sets, indexed by
	// source shard.
	Receive(seq uint32) (*Exchange, error)
	// Retains reports whether Send takes ownership of the batch's columns
	// (true for zero-copy in-memory delivery, false for encoding
	// transports).
	Retains() bool
	// Close releases the endpoint. Idempotent. Pending and subsequent
	// Receives fail.
	Close() error
}

// TransportFactory builds the endpoints a cluster uses for a K-shard run.
// It returns the endpoints this process drives: all K for single-process
// sharding (the in-memory group, TCP loopback), exactly one for a worker
// process in a multi-process fleet, and none for a pure replica that owns
// no shard (e.g. a worker whose shard id exceeds the effective shard count
// of a small cluster). The cluster owns the returned endpoints and closes
// them in Close.
type TransportFactory func(shards int) ([]Transport, error)

// Batch is the set of columns one source shard ships to one destination
// shard for one round, in ascending (sender, destination) machine order.
type Batch struct {
	Src, Dst int
	cols     []batchCol
}

// batchCol is one (sender machine, destination machine) column inside a
// batch. shared marks columns that are also delivered locally by the
// sending process (replicated execution), so non-retaining transports know
// the engine keeps ownership.
type batchCol struct {
	from, to int32
	col      *column
	shared   bool
}

// add appends one column to the batch.
func (b *Batch) add(from, to int, col *column, shared bool) {
	b.cols = append(b.cols, batchCol{from: int32(from), to: int32(to), col: col, shared: shared})
}

// Len returns the number of columns in the batch.
func (b *Batch) Len() int { return len(b.cols) }

// Exchange is everything one endpoint receives for one round: the peers'
// batches and their armed control columns indexed by source shard.
type Exchange struct {
	Batches []*Batch
	Armed   [][]int32
}

// cloneColumn returns a pooled deep copy of col, used when a column must
// both stay in a local inbox and be handed to a retaining transport.
func cloneColumn(col *column) *column {
	cp := getColumn()
	cp.ints = append(cp.ints, col.ints...)
	cp.floats = append(cp.floats, col.floats...)
	cp.recs = append(cp.recs, col.recs...)
	cp.words = col.words
	return cp
}

// Process-wide transport activity totals, for operational metrics (the
// service layer's /metrics reports them). Batches counts Send calls over
// every transport; bytes counts frame bytes written by encoding transports
// (zero for the in-memory group).
var (
	transportBatchesTotal atomic.Uint64
	transportBytesTotal   atomic.Uint64
)

// TransportTotals reports process-wide transport activity: column batches
// sent and wire bytes written, summed over every transport endpoint created
// in this process.
func TransportTotals() (batches, bytes uint64) {
	return transportBatchesTotal.Load(), transportBytesTotal.Load()
}

// errTransportClosed is the base error for operations on closed endpoints.
var errTransportClosed = errors.New("mpc: transport endpoint closed")

// ErrTransport marks every transport-layer failure surfaced from Round (or
// from a transport factory via the first Round): connection loss, barrier
// timeout, protocol desync, corrupt frames. Callers use errors.Is(err,
// ErrTransport) to distinguish fabric failures — which a deterministic
// re-run on different infrastructure (e.g. mrserve's unsharded fallback)
// can heal — from algorithmic or input errors, which it cannot.
var ErrTransport = errors.New("mpc: transport failure")

// ---------------------------------------------------------------------------
// In-memory transport

// memItem is one queued delivery inside the in-memory hub.
type memItem struct {
	src   int
	seq   uint32
	batch *Batch  // nil for end-of-round markers
	eor   bool    // end-of-round marker
	armed []int32 // armed control column, markers only
}

// memHub connects the K endpoints of one in-memory group. All state is
// guarded by mu; Receive waits on cond.
type memHub struct {
	shards int
	mu     sync.Mutex
	cond   *sync.Cond
	pend   [][]memItem // per destination shard
	closed []bool      // per endpoint
}

// memEndpoint is one shard's endpoint of an in-memory group. Delivery is
// zero-copy: Send moves column pointers through the hub's queues, so a
// K-shard in-process exchange costs a few slice appends per batch.
type memEndpoint struct {
	hub          *memHub
	shard        int
	lastBarrier  uint32
	lastReceived uint32
}

// NewMemGroup returns the K connected endpoints of an in-memory transport
// group, endpoint i speaking for shard i. It is the default transport for
// sharded clusters, and the reference implementation for the Transport
// contract: Send hands column pointers through per-shard queues
// (Retains() == true), Barrier enqueues an end-of-round marker, and Receive
// waits until the markers of all K-1 peers for the round have arrived.
//
// The endpoints may be driven by one goroutine (a single process simulating
// a fleet) or by K goroutines in lockstep (replicated execution tests);
// peers may run at most one round ahead, which the queues absorb.
func NewMemGroup(shards int) ([]Transport, error) {
	if shards < 1 {
		return nil, fmt.Errorf("mpc: mem transport group needs at least 1 shard, got %d", shards)
	}
	hub := &memHub{
		shards: shards,
		pend:   make([][]memItem, shards),
		closed: make([]bool, shards),
	}
	hub.cond = sync.NewCond(&hub.mu)
	eps := make([]Transport, shards)
	for i := range eps {
		eps[i] = &memEndpoint{hub: hub, shard: i}
	}
	return eps, nil
}

// MemTransport is the TransportFactory for in-process sharding over
// NewMemGroup. It is the default when Config.Transport is nil.
func MemTransport(shards int) ([]Transport, error) { return NewMemGroup(shards) }

func (e *memEndpoint) Shard() int    { return e.shard }
func (e *memEndpoint) Shards() int   { return e.hub.shards }
func (e *memEndpoint) Retains() bool { return true }

// deliver enqueues one item for shard dst.
func (e *memEndpoint) deliver(dst int, it memItem) error {
	h := e.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed[e.shard] {
		return fmt.Errorf("%w (shard %d)", errTransportClosed, e.shard)
	}
	if h.closed[dst] {
		return fmt.Errorf("mpc: mem transport send from shard %d: peer shard %d is closed", e.shard, dst)
	}
	h.pend[dst] = append(h.pend[dst], it)
	h.cond.Broadcast()
	return nil
}

// Send implements Transport.
func (e *memEndpoint) Send(dst int, b *Batch) error {
	if dst < 0 || dst >= e.hub.shards || dst == e.shard {
		return fmt.Errorf("mpc: mem transport send from shard %d to invalid shard %d (K=%d)", e.shard, dst, e.hub.shards)
	}
	transportBatchesTotal.Add(1)
	// The batch is queued for the round the *next* Barrier will seal; tag it
	// with that sequence number so Receive can separate rounds.
	return e.deliver(dst, memItem{src: e.shard, seq: e.lastBarrier + 1, batch: b})
}

// Barrier implements Transport.
func (e *memEndpoint) Barrier(seq uint32, armed []int32) error {
	if seq != e.lastBarrier+1 {
		return fmt.Errorf("mpc: mem transport shard %d: barrier for round %d out of order (expected %d)", e.shard, seq, e.lastBarrier+1)
	}
	e.lastBarrier = seq
	// Copy the armed set: the caller's scratch slice is reused next round.
	var a []int32
	if len(armed) > 0 {
		a = append(a, armed...)
	}
	for t := 0; t < e.hub.shards; t++ {
		if t == e.shard {
			continue
		}
		if err := e.deliver(t, memItem{src: e.shard, seq: seq, eor: true, armed: a}); err != nil {
			return err
		}
	}
	return nil
}

// Receive implements Transport.
func (e *memEndpoint) Receive(seq uint32) (*Exchange, error) {
	if seq != e.lastReceived+1 {
		return nil, fmt.Errorf("mpc: mem transport shard %d: receive for round %d out of order (expected %d)", e.shard, seq, e.lastReceived+1)
	}
	h := e.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.closed[e.shard] {
			return nil, fmt.Errorf("%w (shard %d)", errTransportClosed, e.shard)
		}
		eors := 0
		for _, it := range h.pend[e.shard] {
			if it.seq < seq {
				return nil, fmt.Errorf("mpc: mem transport shard %d: stale round-%d traffic while receiving round %d", e.shard, it.seq, seq)
			}
			if it.eor && it.seq == seq {
				eors++
			}
		}
		if eors == h.shards-1 {
			break
		}
		if eors > h.shards-1 {
			return nil, fmt.Errorf("mpc: mem transport shard %d: %d end-of-round markers for round %d from %d peers", e.shard, eors, seq, h.shards-1)
		}
		// Closed peers can never complete the barrier: fail instead of
		// waiting forever.
		for t, closed := range h.closed {
			if closed && t != e.shard {
				return nil, fmt.Errorf("mpc: mem transport shard %d: peer shard %d closed during round %d", e.shard, t, seq)
			}
		}
		h.cond.Wait()
	}
	ex := &Exchange{Armed: make([][]int32, h.shards)}
	rest := h.pend[e.shard][:0]
	for _, it := range h.pend[e.shard] {
		switch {
		case it.seq != seq:
			rest = append(rest, it) // next round, peer running ahead
		case it.eor:
			ex.Armed[it.src] = it.armed
		default:
			ex.Batches = append(ex.Batches, it.batch)
		}
	}
	h.pend[e.shard] = rest
	e.lastReceived = seq
	sortBatches(ex.Batches)
	return ex, nil
}

// Close implements Transport.
func (e *memEndpoint) Close() error {
	h := e.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed[e.shard] {
		return nil
	}
	h.closed[e.shard] = true
	// Orphaned queued columns go back to the pool.
	for _, it := range h.pend[e.shard] {
		if it.batch != nil {
			it.batch.recycle()
		}
	}
	h.pend[e.shard] = nil
	h.cond.Broadcast()
	return nil
}

// recycle returns every column owned by the batch to the pool.
func (b *Batch) recycle() {
	for _, bc := range b.cols {
		putColumn(bc.col)
	}
	b.cols = nil
}

// sortBatches orders received batches by source shard (each peer sends at
// most one batch per destination per round, so this is a total order).
func sortBatches(bs []*Batch) {
	sort.Slice(bs, func(i, j int) bool { return bs[i].Src < bs[j].Src })
}
