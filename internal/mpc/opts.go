package mpc

// Transport tuning and the deterministic retry/backoff schedule shared by
// the TCP transport's dial, reconnect, and failure-detection paths.

import (
	"sync/atomic"
	"time"
)

// TransportOpts tunes a transport node: deadlines, the dial retry budget,
// heartbeat-based failure detection, and the recovery machinery (wire log +
// reconnect handshake). The zero value reproduces the pre-recovery
// behavior: single dial attempt semantics via the default retry budget, no
// heartbeats, no recovery — a connection failure fails the round.
type TransportOpts struct {
	// BarrierTimeout bounds how long Receive waits for the peers'
	// end-of-round markers before failing the round; 0 means 2 minutes. A
	// lost peer or a desynchronized barrier therefore surfaces as an error
	// from Round, never a hang.
	BarrierTimeout time.Duration
	// DialTimeout bounds one dial-plus-hello attempt; 0 means 10 seconds.
	DialTimeout time.Duration
	// DialRetries is the number of additional dial attempts after the
	// first, spaced by the backoff schedule; 0 means 3, negative means
	// none.
	DialRetries int
	// RetryBase is the first backoff delay; 0 means 50ms. Successive
	// delays double, capped at RetryMax, each scaled by a deterministic
	// jitter in [0.5, 1.0) derived from RetrySeed.
	RetryBase time.Duration
	// RetryMax caps the backoff delay; 0 means 2 seconds.
	RetryMax time.Duration
	// RetrySeed seeds the backoff jitter. 0 derives a seed from the shard
	// pair so fleet members don't thunder in phase.
	RetrySeed uint64
	// HeartbeatInterval, when positive, makes the node emit a heartbeat
	// frame on every connection idle for that long, so silence becomes a
	// detectable signal. 0 disables heartbeats.
	HeartbeatInterval time.Duration
	// PeerDeadAfter, when positive, declares a peer dead when nothing —
	// heartbeat or traffic — arrived on its connection for that long while
	// the round still owes its end-of-round marker. Detection is then
	// bounded by PeerDeadAfter instead of BarrierTimeout. 0 disables
	// silence detection (detection falls back to connection errors and the
	// barrier timeout).
	PeerDeadAfter time.Duration
	// Recover enables fault tolerance: outbound frames are retained in a
	// wire log (last WireLogRounds rounds), connection failures mark the
	// peer down instead of failing the round, the original dialer redials
	// with backoff, and reconnecting peers (including respawned workers,
	// via ReconnectTCP) are caught up by deterministic replay of the
	// logged frames. Off by default: without it any connection failure
	// poisons the round, as before.
	Recover bool
	// WireLogRounds is W, the number of trailing rounds of outbound frames
	// the wire log retains for replay; 0 means 8. Lockstep execution keeps
	// peers within one round of each other, so W >= 2 suffices; the slack
	// covers respawn latency.
	WireLogRounds int
	// WireLogMemBytes bounds the wire log's in-memory frame bytes; older
	// retained rounds beyond it spill to WireLogDir. 0 means 64 MiB.
	WireLogMemBytes int64
	// WireLogDir is where spilled wire-log rounds go; "" means the OS temp
	// directory.
	WireLogDir string
}

// TCPOptions is the original name of TransportOpts, kept as an alias for
// the -shards call sites that predate the recovery options.
type TCPOptions = TransportOpts

func (o TransportOpts) barrierTimeout() time.Duration {
	if o.BarrierTimeout > 0 {
		return o.BarrierTimeout
	}
	return 2 * time.Minute
}

func (o TransportOpts) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 10 * time.Second
}

func (o TransportOpts) dialRetries() int {
	if o.DialRetries == 0 {
		return 3
	}
	if o.DialRetries < 0 {
		return 0
	}
	return o.DialRetries
}

func (o TransportOpts) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 50 * time.Millisecond
}

func (o TransportOpts) retryMax() time.Duration {
	if o.RetryMax > 0 {
		return o.RetryMax
	}
	return 2 * time.Second
}

func (o TransportOpts) peerDeadAfter() time.Duration {
	if o.PeerDeadAfter > 0 {
		return o.PeerDeadAfter
	}
	if o.HeartbeatInterval > 0 {
		return 3 * o.HeartbeatInterval
	}
	return 0
}

func (o TransportOpts) wireLogRounds() int {
	if o.WireLogRounds > 0 {
		return o.WireLogRounds
	}
	return 8
}

func (o TransportOpts) wireLogMemBytes() int64 {
	if o.WireLogMemBytes > 0 {
		return o.WireLogMemBytes
	}
	return 64 << 20
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche mix,
// used to derive deterministic jitter from (seed, attempt).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffDelay returns the delay before retry attempt `attempt` (1-based:
// the delay between the first failure and the second try is attempt 1).
// The schedule is exponential from base, capped at max, with each step
// scaled by a jitter factor in [0.5, 1.0) that is a pure function of
// (seed, attempt) — deterministic, so tests and replayed recoveries see
// identical timing decisions.
func backoffDelay(attempt int, base, max time.Duration, seed uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	// Jitter scales into [0.5, 1.0): half the nominal delay is always kept,
	// so the schedule stays monotone in expectation while decorrelating
	// concurrent retries.
	frac := float64(splitmix64(seed^uint64(attempt))>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// BackoffDelay is the exported form of backoffDelay: the deterministic
// jittered exponential retry schedule the TCP transport uses for dials and
// reconnects, reused by other subsystems (the durable job ledger retries
// transient IO errors on the same schedule before declaring itself
// degraded). attempt is 1-based; the returned delay is the exponential
// step from base capped at max, scaled by a jitter factor in [0.5, 1.0)
// that is a pure function of (seed, attempt).
func BackoffDelay(attempt int, base, max time.Duration, seed uint64) time.Duration {
	return backoffDelay(attempt, base, max, seed)
}

// Process-wide recovery counters, exported alongside TransportTotals for
// the service layer's /metrics.
var (
	transportRetriesTotal    atomic.Uint64 // dial attempts beyond the first
	transportReconnectsTotal atomic.Uint64 // successful connection swap-ins
	workerRespawnsTotal      atomic.Uint64 // ReconnectTCP rejoins + supervisor respawns
	staleFramesDropped       atomic.Uint64 // duplicate/stale frames discarded by dedup
)

// RecoveryTotals reports process-wide fault-recovery activity: transport
// dial retries, successful reconnects (connection swap-ins after a
// failure), and worker respawns (mesh rejoins via ReconnectTCP plus
// respawns recorded by a supervisor through AddWorkerRespawns).
func RecoveryTotals() (retries, reconnects, respawns uint64) {
	return transportRetriesTotal.Load(), transportReconnectsTotal.Load(), workerRespawnsTotal.Load()
}

// AddWorkerRespawns records n worker respawns performed by an external
// supervisor (cmd/mrshard), so fleet-level recovery shows up in the same
// process-wide totals the in-process paths use.
func AddWorkerRespawns(n uint64) { workerRespawnsTotal.Add(n) }
