//go:build !race

package mpc

// steadyStateAllocBound is the per-round allocation budget the steady-state
// gate enforces; generous enough for column-pool misses after a GC, two
// orders of magnitude below per-message allocation.
const steadyStateAllocBound = 8
