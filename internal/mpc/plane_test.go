package mpc

// Edge-case coverage for the columnar message plane: record framing
// (including empty payloads), the batched append API, self-sends, Quiet()
// accounting, buffer reuse across rounds, and degenerate trees.

import (
	"testing"
)

func TestSteadyStateRoundAllocsNothingPerRecord(t *testing.T) {
	// The gate on the plane's core promise: once the column pool is warm, a
	// round moving many records allocates (amortized) nothing per record.
	// The bound is per-round, generous enough for pool misses after a GC,
	// and two orders of magnitude below what per-message allocation costs.
	const machines = 8
	const recordsPerRound = (machines - 1) * 16
	c := NewCluster(Config{Machines: machines})
	chatter := func(machine int, in *Inbox, out *Outbox) {
		for r, ok := in.Next(); ok; r, ok = in.Next() {
			_ = r.Ints[0]
		}
		if machine == 0 {
			return
		}
		for k := 0; k < 16; k++ {
			out.Begin(0)
			out.Int(int64(machine))
			out.Int(int64(k))
			out.End()
		}
	}
	for warm := 0; warm < 3; warm++ {
		if err := c.Round(chatter); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := c.Round(chatter); err != nil {
			t.Fatal(err)
		}
	})
	if avg > steadyStateAllocBound {
		t.Fatalf("steady-state round averaged %.1f allocs for %d records; the message plane should be allocation-free",
			avg, recordsPerRound)
	}
}

func TestBatchedAppendFraming(t *testing.T) {
	c := NewCluster(Config{Machines: 3})
	// Interleave records to two destinations through the batched API; the
	// framing must keep them separate and in emission order per destination.
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine != 0 {
			return
		}
		out.Begin(1)
		out.Int(10)
		out.Ints(11, 12)
		out.Float(0.5)
		out.End()
		out.Begin(2)
		out.Int(20)
		out.End()
		out.Begin(1)
		out.Floats(1.5, 2.5)
		out.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Record words: (1+3+1) + (1+1) + (1+0+2) = 10.
	if w := c.Metrics().WordsSent; w != 10 {
		t.Fatalf("words = %d, want 10", w)
	}
	in1 := c.Inbox(1)
	if in1.Len() != 2 || in1.Words() != 8 {
		t.Fatalf("machine 1 inbox: len=%d words=%d", in1.Len(), in1.Words())
	}
	r1, ok := in1.Next()
	if !ok || r1.From != 0 || len(r1.Ints) != 3 || r1.Ints[2] != 12 || len(r1.Floats) != 1 || r1.Floats[0] != 0.5 {
		t.Fatalf("first record: %+v ok=%v", r1, ok)
	}
	r2, ok := in1.Next()
	if !ok || len(r2.Ints) != 0 || len(r2.Floats) != 2 || r2.Floats[1] != 2.5 {
		t.Fatalf("second record: %+v ok=%v", r2, ok)
	}
	if _, ok := in1.Next(); ok {
		t.Fatal("inbox 1 should be exhausted")
	}
	// Reset rewinds the cursor.
	in1.Reset()
	if r, ok := in1.Next(); !ok || r.Ints[0] != 10 {
		t.Fatalf("after Reset: %+v ok=%v", r, ok)
	}
	in2 := c.Inbox(2)
	if r, ok := in2.Next(); !ok || r.From != 0 || r.Ints[0] != 20 {
		t.Fatalf("machine 2 record: %+v ok=%v", r, ok)
	}
}

func TestEmptyPayloadRecord(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		if machine == 0 {
			out.Send(1, nil, nil) // header-only record
			out.Begin(1)
			out.End() // another one, via the batched API
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.WordsSent != 2 || m.Messages != 2 {
		t.Fatalf("words=%d messages=%d, want 2/2", m.WordsSent, m.Messages)
	}
	in := c.Inbox(1)
	if in.Len() != 2 || in.Words() != 2 {
		t.Fatalf("inbox: len=%d words=%d", in.Len(), in.Words())
	}
	for i := 0; i < 2; i++ {
		r, ok := in.Next()
		if !ok || r.From != 0 || len(r.Ints) != 0 || len(r.Floats) != 0 || r.Words() != 1 {
			t.Fatalf("record %d: %+v ok=%v", i, r, ok)
		}
	}
}

func TestOutboxSelfSend(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	err := c.Round(func(machine int, in *Inbox, out *Outbox) {
		out.SendInts(machine, int64(100+machine)) // every machine to itself
	})
	if err != nil {
		t.Fatal(err)
	}
	// A self-send is delivered at the start of the next round like any other
	// record, and the sender is charged both out and in words.
	got := make([]int64, 2)
	err = c.Round(func(machine int, in *Inbox, out *Outbox) {
		for r, ok := in.Next(); ok; r, ok = in.Next() {
			if r.From != machine {
				t.Errorf("machine %d got record from %d", machine, r.From)
			}
			got[machine] = r.Ints[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[1] != 101 {
		t.Fatalf("self-sent values = %v", got)
	}
	m := c.Metrics()
	if m.WordsSent != 4 || m.Messages != 2 {
		t.Fatalf("words=%d messages=%d", m.WordsSent, m.Messages)
	}
	// Round 1 load on each machine: in 2 + out 2 (resident 0).
	if m.MaxSpace != 4 {
		t.Fatalf("MaxSpace = %d, want 4", m.MaxSpace)
	}
}

func TestQuietAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 3, Trace: true})
	c.SetResident(1, 7)
	if err := c.Quiet(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Rounds != 1 {
		t.Fatalf("rounds = %d", m.Rounds)
	}
	if m.WordsSent != 0 || m.Messages != 0 {
		t.Fatalf("quiet round moved traffic: words=%d messages=%d", m.WordsSent, m.Messages)
	}
	// Space is still accounted: the resident words are the round's load.
	if m.MaxSpace != 7 {
		t.Fatalf("MaxSpace = %d, want 7", m.MaxSpace)
	}
	tr := c.Trace()
	if len(tr) != 1 || tr[0].Words != 0 || tr[0].Messages != 0 || tr[0].MaxLoad != 7 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestColumnReuseAcrossRounds(t *testing.T) {
	// Reading the previous round's records while emitting new ones to the
	// same destinations must not corrupt either: delivered columns are owned
	// by the inboxes and recycled only after the consuming round ends.
	c := NewCluster(Config{Machines: 2})
	const rounds = 5
	for round := 0; round < rounds; round++ {
		round := round
		err := c.Round(func(machine int, in *Inbox, out *Outbox) {
			sum := int64(0)
			for r, ok := in.Next(); ok; r, ok = in.Next() {
				for _, v := range r.Ints {
					sum += v
				}
				if want := int64(round); len(r.Floats) != 1 || r.Floats[0] != float64(want) {
					t.Errorf("round %d machine %d floats: %v", round, machine, r.Floats)
				}
			}
			if round > 0 && sum != int64(3*round) {
				t.Errorf("round %d machine %d sum = %d, want %d", round, machine, sum, 3*round)
			}
			other := 1 - machine
			out.Begin(other)
			out.Ints(int64(round+1), int64(round+1), int64(round+1))
			out.Float(float64(round + 1))
			out.End()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	m := c.Metrics()
	if m.Messages != 2*rounds || m.WordsSent != 2*rounds*5 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestOpenRecordPanics(t *testing.T) {
	t.Run("IntOutsideRecord", func(t *testing.T) {
		c := NewCluster(Config{Machines: 2})
		defer expectPanic(t)
		_ = c.Round(func(machine int, in *Inbox, out *Outbox) { out.Int(1) })
	})
	t.Run("EndWithoutBegin", func(t *testing.T) {
		c := NewCluster(Config{Machines: 2})
		defer expectPanic(t)
		_ = c.Round(func(machine int, in *Inbox, out *Outbox) { out.End() })
	})
	t.Run("DoubleBegin", func(t *testing.T) {
		c := NewCluster(Config{Machines: 2})
		defer expectPanic(t)
		_ = c.Round(func(machine int, in *Inbox, out *Outbox) {
			if machine == 0 {
				out.Begin(1)
				out.Begin(1)
			}
		})
	})
	t.Run("UnclosedAtBarrier", func(t *testing.T) {
		c := NewCluster(Config{Machines: 2})
		defer expectPanic(t)
		_ = c.Round(func(machine int, in *Inbox, out *Outbox) {
			if machine == 0 {
				out.Begin(1)
				out.Int(1)
			}
		})
	})
}

func expectPanic(t *testing.T) {
	t.Helper()
	if recover() == nil {
		t.Fatal("expected panic")
	}
}

func TestTreeSingleMachine(t *testing.T) {
	c := NewCluster(Config{Machines: 1})
	tr := NewTree(c, 0, 2)
	if tr.Depth() != 0 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
	// Broadcast is free; aggregation returns the root's own vector without
	// charging rounds.
	if err := tr.Broadcast(c, []int64{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	total, err := tr.AggregateSum(c, 1, func(machine int) []int64 { return []int64{41} })
	if err != nil {
		t.Fatal(err)
	}
	if total[0] != 41 {
		t.Fatalf("total = %v", total)
	}
	if c.Metrics().Rounds != 0 || c.Metrics().WordsSent != 0 {
		t.Fatalf("single-machine tree charged %+v", c.Metrics())
	}
}

func TestTreeDegreeAtLeastM(t *testing.T) {
	// Degree >= M makes the tree a star: depth 1, one hop per machine, and
	// the helpers still drain cleanly.
	c := NewCluster(Config{Machines: 5})
	tr := NewTree(c, 0, 8)
	if tr.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1 (star)", tr.Depth())
	}
	if err := tr.Broadcast(c, []int64{9}, nil); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Rounds != 2 { // depth+1
		t.Fatalf("rounds = %d, want 2", m.Rounds)
	}
	if m.Messages != 4 || m.WordsSent != 8 {
		t.Fatalf("messages=%d words=%d", m.Messages, m.WordsSent)
	}
	total, err := tr.AggregateSum(c, 1, func(machine int) []int64 { return []int64{1} })
	if err != nil {
		t.Fatal(err)
	}
	if total[0] != 5 {
		t.Fatalf("total = %v", total)
	}
	for machine := 0; machine < 5; machine++ {
		if c.Inbox(machine).Len() != 0 {
			t.Fatalf("machine %d inbox not drained", machine)
		}
	}
}
