package mpc

// This file implements the columnar message plane: the physical
// representation of message traffic. Logical messages (records) are written
// into flat per-destination word buffers instead of individual Message
// structs, so the steady-state cost of a record is a few appends into
// reused buffers — zero allocations per message.
//
// Physical layout. Each (sender, destination) pair that exchanges traffic
// in a round owns one *column*: an []int64 buffer, a []float64 buffer, and
// a record-framing index holding (intLen, floatLen) per record. A record's
// accounted size is 1 header word (the sender) + intLen + floatLen, the
// exact accounting the Message representation used. After the round's
// barrier, each destination's Inbox is the ordered list of the columns sent
// to it — senders in machine order — and a cursor walks records in (sender,
// emission order) order, so delivery order, metrics, and traces are
// bit-identical to the per-Message representation.
//
// Pooling. Columns are recycled through a sync.Pool: a column travels
// outbox → inbox → pool → outbox. The columns backing a round's inboxes are
// released when the round that consumed them ends, which is why Records are
// views that must not be retained across rounds.

import (
	"fmt"
	"sync"
)

// Record is one delivered logical message: the sender and the payload
// words. Ints and Floats are views into the round's column buffers — valid
// only until the end of the round that delivered them, and must not be
// modified or retained.
type Record struct {
	From   int
	Ints   []int64
	Floats []float64
}

// Words returns the accounted size of the record in words: one header word
// (the sender) plus one word per int and float.
func (r Record) Words() int { return 1 + len(r.Ints) + len(r.Floats) }

// recMeta frames one record inside a column.
type recMeta struct{ intLen, floatLen int32 }

// column holds every record one machine sent to one destination in one
// round: flat payload buffers plus the framing index.
type column struct {
	ints   []int64
	floats []float64
	recs   []recMeta
	words  int // accounted words, including one header word per record
}

func (c *column) reset() {
	c.ints, c.floats, c.recs, c.words = c.ints[:0], c.floats[:0], c.recs[:0], 0
}

// columnPool recycles columns across rounds (and clusters). Get/Put are
// concurrency-safe, so outboxes may acquire columns from inside a parallel
// round.
var columnPool = sync.Pool{New: func() any { return new(column) }}

func getColumn() *column { return columnPool.Get().(*column) }

func putColumn(c *column) {
	c.reset()
	columnPool.Put(c)
}

// Outbox collects the records a machine emits during a round, written into
// per-destination columns so the post-round merge hands whole buffers to
// the inboxes without copying or scanning messages.
//
// The batched append API frames one record as
//
//	out.Begin(to); out.Int(x); out.Ints(xs...); out.Float(f); out.End()
//
// and Send/SendInts are one-call conveniences over it. Payloads are copied
// into the columns at append time, so callers may freely reuse their own
// buffers after the call (unlike the retired Message representation, which
// retained payload slices).
type Outbox struct {
	from    int
	cluster *Cluster
	byDest  []*column // lazily allocated, one column per destination with traffic
	dests   []int     // destinations with at least one record, in first-use order
	words   int
	count   int
	cur     *column // column of the open record, nil outside Begin/End
	curInt  int     // len(cur.ints) at Begin
	curFlt  int     // len(cur.floats) at Begin
}

// Begin opens a record addressed to machine `to`. Every Begin must be
// matched by an End before the round's computation returns.
func (o *Outbox) Begin(to int) {
	if o.cur != nil {
		panic("mpc: Outbox.Begin with a record already open")
	}
	if to < 0 || to >= o.cluster.cfg.Machines {
		panic(fmt.Sprintf("mpc: send to invalid machine %d (M=%d)", to, o.cluster.cfg.Machines))
	}
	if o.byDest == nil {
		o.byDest = make([]*column, o.cluster.cfg.Machines)
	}
	col := o.byDest[to]
	if col == nil {
		col = getColumn()
		o.byDest[to] = col
		o.dests = append(o.dests, to)
	}
	o.cur = col
	o.curInt = len(col.ints)
	o.curFlt = len(col.floats)
}

// Int appends one int word to the open record.
func (o *Outbox) Int(v int64) {
	if o.cur == nil {
		panic("mpc: Outbox.Int outside Begin/End")
	}
	o.cur.ints = append(o.cur.ints, v)
}

// Ints appends int words to the open record.
func (o *Outbox) Ints(vs ...int64) {
	if o.cur == nil {
		panic("mpc: Outbox.Ints outside Begin/End")
	}
	o.cur.ints = append(o.cur.ints, vs...)
}

// Float appends one float word to the open record.
func (o *Outbox) Float(v float64) {
	if o.cur == nil {
		panic("mpc: Outbox.Float outside Begin/End")
	}
	o.cur.floats = append(o.cur.floats, v)
}

// Floats appends float words to the open record.
func (o *Outbox) Floats(vs ...float64) {
	if o.cur == nil {
		panic("mpc: Outbox.Floats outside Begin/End")
	}
	o.cur.floats = append(o.cur.floats, vs...)
}

// End closes the open record, framing it and charging its words (one header
// word plus the appended payload words).
func (o *Outbox) End() {
	col := o.cur
	if col == nil {
		panic("mpc: Outbox.End without Begin")
	}
	intLen := len(col.ints) - o.curInt
	floatLen := len(col.floats) - o.curFlt
	col.recs = append(col.recs, recMeta{int32(intLen), int32(floatLen)})
	w := 1 + intLen + floatLen
	col.words += w
	o.words += w
	o.count++
	o.cur = nil
}

// Send emits one record to machine `to` with the given payload. The slices
// are copied into the column buffers; callers may reuse them.
func (o *Outbox) Send(to int, ints []int64, floats []float64) {
	o.Begin(to)
	o.Ints(ints...)
	o.Floats(floats...)
	o.End()
}

// SendInts is shorthand for Send(to, ints, nil). It does not allocate.
func (o *Outbox) SendInts(to int, ints ...int64) {
	o.Begin(to)
	o.Ints(ints...)
	o.End()
}

// reset prepares the outbox for the next round. The columns it filled are
// owned by the destination inboxes from the merge onwards, so only the
// references are dropped here.
func (o *Outbox) reset() {
	for _, dest := range o.dests {
		o.byDest[dest] = nil
	}
	o.dests = o.dests[:0]
	o.words, o.count = 0, 0
}

// segment is one sender's column inside an inbox.
type segment struct {
	from int
	col  *column
}

// Inbox is a cursor over the records delivered to one machine at the start
// of the current round, in (sender machine, emission order) order:
//
//	for rec, ok := in.Next(); ok; rec, ok = in.Next() { ... }
//
// Records are views into pooled buffers that are recycled when the round
// ends; they must not be retained or modified. Use Reset to iterate again
// within the same round.
type Inbox struct {
	segs    []segment
	records int
	words   int
	// cursor state
	seg, rec   int
	iOff, fOff int
}

// Len returns the number of records delivered.
func (in *Inbox) Len() int { return in.records }

// Words returns the accounted incoming words (headers included).
func (in *Inbox) Words() int { return in.words }

// Reset rewinds the cursor to the first record.
func (in *Inbox) Reset() { in.seg, in.rec, in.iOff, in.fOff = 0, 0, 0, 0 }

// Next returns the next record, or ok=false when the inbox is exhausted.
func (in *Inbox) Next() (rec Record, ok bool) {
	for in.seg < len(in.segs) {
		s := &in.segs[in.seg]
		if in.rec < len(s.col.recs) {
			meta := s.col.recs[in.rec]
			rec = Record{
				From:   s.from,
				Ints:   s.col.ints[in.iOff : in.iOff+int(meta.intLen)],
				Floats: s.col.floats[in.fOff : in.fOff+int(meta.floatLen)],
			}
			in.rec++
			in.iOff += int(meta.intLen)
			in.fOff += int(meta.floatLen)
			return rec, true
		}
		in.seg++
		in.rec, in.iOff, in.fOff = 0, 0, 0
	}
	return Record{}, false
}

// clear releases the inbox's columns back to the pool and empties it.
func (in *Inbox) clear() {
	for _, seg := range in.segs {
		putColumn(seg.col)
	}
	in.segs = in.segs[:0]
	in.records, in.words = 0, 0
	in.Reset()
}
