package seq

import (
	"math"

	"repro/internal/graph"
	"repro/internal/setcover"
)

// This file contains exact exponential-time solvers used as test oracles on
// small instances. They are deliberately independent of the approximation
// algorithms (straightforward exhaustive search with pruning) so that a bug
// in a solver cannot be masked by the same bug in its oracle.

// BruteForceSetCover returns an optimal weighted set cover and its weight.
// It enumerates subsets with branch-and-bound and is intended for instances
// with at most ~20 sets.
func BruteForceSetCover(inst *setcover.Instance) ([]int, float64) {
	n := inst.NumSets()
	if n > 30 {
		panic("seq: BruteForceSetCover instance too large")
	}
	bestW := math.Inf(1)
	var best []int
	var cur []int

	covered := make([]int, inst.NumElements) // coverage multiplicity
	remaining := inst.NumElements

	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if w >= bestW {
			return
		}
		if remaining == 0 {
			bestW = w
			best = append(best[:0], cur...)
			return
		}
		if i == n {
			return
		}
		// Feasibility prune: every uncovered element must still be coverable
		// by a remaining set. Check the lowest uncovered element only (cheap
		// and sound when sets are processed in index order against the dual).
		// Find the first uncovered element; if no remaining set contains it,
		// this branch is dead.
		first := -1
		for e := 0; e < inst.NumElements; e++ {
			if covered[e] == 0 {
				first = e
				break
			}
		}
		if first >= 0 {
			ok := false
			for _, s := range inst.Dual()[first] {
				if s >= i {
					ok = true
					break
				}
			}
			if !ok {
				return
			}
		}
		// Branch: take set i.
		cur = append(cur, i)
		for _, e := range inst.Sets[i] {
			if covered[e] == 0 {
				remaining--
			}
			covered[e]++
		}
		rec(i+1, w+inst.Weights[i])
		for _, e := range inst.Sets[i] {
			covered[e]--
			if covered[e] == 0 {
				remaining++
			}
		}
		cur = cur[:len(cur)-1]
		// Branch: skip set i.
		rec(i+1, w)
	}
	rec(0, 0)
	return best, bestW
}

// BruteForceVertexCover returns an optimal weighted vertex cover of g under
// vertex weights w, by branching on an uncovered edge. Intended for small
// graphs.
func BruteForceVertexCover(g *graph.Graph, w []float64) (map[int]bool, float64) {
	bestW := math.Inf(1)
	var best map[int]bool
	in := make([]bool, g.N)

	var rec func(weight float64)
	rec = func(weight float64) {
		if weight >= bestW {
			return
		}
		// Find an uncovered edge.
		var e *graph.Edge
		for i := range g.Edges {
			if !in[g.Edges[i].U] && !in[g.Edges[i].V] {
				e = &g.Edges[i]
				break
			}
		}
		if e == nil {
			bestW = weight
			best = make(map[int]bool)
			for v, b := range in {
				if b {
					best[v] = true
				}
			}
			return
		}
		in[e.U] = true
		rec(weight + w[e.U])
		in[e.U] = false
		in[e.V] = true
		rec(weight + w[e.V])
		in[e.V] = false
	}
	rec(0)
	return best, bestW
}

// BruteForceMatching returns the weight of a maximum weight matching of g,
// by include/exclude recursion over edges. Intended for graphs with at most
// ~24 edges.
func BruteForceMatching(g *graph.Graph) float64 {
	if g.M() > 26 {
		panic("seq: BruteForceMatching instance too large")
	}
	used := make([]bool, g.N)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == g.M() {
			return 0
		}
		best := rec(i + 1) // skip edge i
		e := g.Edges[i]
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if take := e.W + rec(i+1); take > best {
				best = take
			}
			used[e.U], used[e.V] = false, false
		}
		return best
	}
	return rec(0)
}

// BruteForceBMatching returns the weight of a maximum weight b-matching of
// g. Intended for graphs with at most ~24 edges.
func BruteForceBMatching(g *graph.Graph, b func(v int) int) float64 {
	if g.M() > 26 {
		panic("seq: BruteForceBMatching instance too large")
	}
	load := make([]int, g.N)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == g.M() {
			return 0
		}
		best := rec(i + 1)
		e := g.Edges[i]
		if load[e.U] < b(e.U) && load[e.V] < b(e.V) {
			load[e.U]++
			load[e.V]++
			if take := e.W + rec(i+1); take > best {
				best = take
			}
			load[e.U]--
			load[e.V]--
		}
		return best
	}
	return rec(0)
}
