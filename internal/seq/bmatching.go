package seq

import (
	"repro/internal/graph"
)

// BMatchingLocalRatio is the incremental state of the ε-adjusted local ratio
// algorithm for maximum weight b-matching (Appendix D). As in the matching
// case the state keeps a potential ϕ(v) per vertex, but a selection of edge
// e = {u,v} with current weight ψ increases ϕ(u) by ψ/b(u) and ϕ(v) by
// ψ/b(v) (the selected edge itself is reduced to zero and stacked).
//
// The ε-adjustment changes the kill rule: an edge is discarded as soon as
//
//	w(e) <= (1+ε) · (ϕ(u) + ϕ(v)),
//
// i.e. when its weight has been reduced by at least a 1/(1+ε) fraction.
// Without this (ε = 0, b >= 2) a vertex would need to select all b of its
// incident unit-weight edges before any of them died, defeating the
// sampling argument; with it the approximation becomes 3 − 2/b + 2ε.
type BMatchingLocalRatio struct {
	g     *graph.Graph
	b     func(v int) int
	eps   float64
	phi   []float64
	stack []int
	onStk []bool
}

// NewBMatchingLocalRatio returns a fresh state. b(v) must be >= 1 for every
// vertex; eps must be >= 0.
func NewBMatchingLocalRatio(g *graph.Graph, b func(v int) int, eps float64) *BMatchingLocalRatio {
	if eps < 0 {
		panic("seq: negative eps")
	}
	return &BMatchingLocalRatio{
		g:     g,
		b:     b,
		eps:   eps,
		phi:   make([]float64, g.N),
		onStk: make([]bool, g.M()),
	}
}

// Reduced returns the current reduced weight of edge id, w − ϕ(u) − ϕ(v).
func (lr *BMatchingLocalRatio) Reduced(id int) float64 {
	e := lr.g.Edges[id]
	return e.W - lr.phi[e.U] - lr.phi[e.V]
}

// Alive reports whether edge id survives the ε-adjusted kill rule and is not
// stacked.
func (lr *BMatchingLocalRatio) Alive(id int) bool {
	if lr.onStk[id] {
		return false
	}
	e := lr.g.Edges[id]
	return e.W > (1+lr.eps)*(lr.phi[e.U]+lr.phi[e.V])
}

// Phi returns ϕ(v).
func (lr *BMatchingLocalRatio) Phi(v int) float64 { return lr.phi[v] }

// OnStack reports whether edge id has been pushed.
func (lr *BMatchingLocalRatio) OnStack(id int) bool { return lr.onStk[id] }

// StackSize returns the number of stacked edges.
func (lr *BMatchingLocalRatio) StackSize() int { return len(lr.stack) }

// Push applies the b-matching weight reduction for edge id and stacks it.
// Pushing a dead or stacked edge is a no-op returning (0, false).
func (lr *BMatchingLocalRatio) Push(id int) (float64, bool) {
	if !lr.Alive(id) {
		return 0, false
	}
	e := lr.g.Edges[id]
	psi := e.W - lr.phi[e.U] - lr.phi[e.V]
	if psi <= 0 {
		return 0, false
	}
	lr.phi[e.U] += psi / float64(lr.b(e.U))
	lr.phi[e.V] += psi / float64(lr.b(e.V))
	lr.onStk[id] = true
	lr.stack = append(lr.stack, id)
	return psi, true
}

// Unwind pops the stack, adding each edge when both endpoints still have
// residual capacity. The result is a valid b-matching.
func (lr *BMatchingLocalRatio) Unwind() []int {
	load := make([]int, lr.g.N)
	var match []int
	for i := len(lr.stack) - 1; i >= 0; i-- {
		id := lr.stack[i]
		e := lr.g.Edges[id]
		if load[e.U] < lr.b(e.U) && load[e.V] < lr.b(e.V) {
			load[e.U]++
			load[e.V]++
			match = append(match, id)
		}
	}
	return match
}

// LocalRatioBMatching runs the sequential ε-adjusted local ratio algorithm
// for maximum weight b-matching, processing edges in index order, and
// returns a (3 − 2/max{2,b} + 2ε)-approximate b-matching (Theorem D.1 and
// the ε-adjustment discussion of Appendix D.2).
func LocalRatioBMatching(g *graph.Graph, b func(v int) int, eps float64) []int {
	lr := NewBMatchingLocalRatio(g, b, eps)
	for id := range g.Edges {
		lr.Push(id)
	}
	return lr.Unwind()
}
