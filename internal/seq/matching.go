package seq

import (
	"sort"

	"repro/internal/graph"
)

// MatchingLocalRatio is the incremental state of the Paz–Schwartzman local
// ratio algorithm for maximum weight matching (Theorem 5.1), in the
// potential-function formulation of the paper's §5.3: the state keeps a
// value ϕ(v) per vertex equal to the total weight reduction applied to edges
// incident to v. The current (reduced) weight of an un-stacked edge e={u,v}
// with original weight w is w − ϕ(u) − ϕ(v); e is alive while that is
// positive.
//
// Push(e) performs the local ratio reduction for e (increasing ϕ at both
// endpoints by e's current weight) and pushes e on the stack. Unwind() pops
// the stack greedily into a matching, which is a 2-approximation of the
// maximum weight matching of the original graph.
type MatchingLocalRatio struct {
	g     *graph.Graph
	phi   []float64
	stack []int
	onStk []bool
}

// NewMatchingLocalRatio returns a fresh state for g.
func NewMatchingLocalRatio(g *graph.Graph) *MatchingLocalRatio {
	return &MatchingLocalRatio{
		g:     g,
		phi:   make([]float64, g.N),
		onStk: make([]bool, g.M()),
	}
}

// Reduced returns the current reduced weight of edge id.
func (lr *MatchingLocalRatio) Reduced(id int) float64 {
	e := lr.g.Edges[id]
	return e.W - lr.phi[e.U] - lr.phi[e.V]
}

// Alive reports whether edge id still has positive reduced weight and is not
// on the stack.
func (lr *MatchingLocalRatio) Alive(id int) bool {
	return !lr.onStk[id] && lr.Reduced(id) > 0
}

// OnStack reports whether edge id has been pushed.
func (lr *MatchingLocalRatio) OnStack(id int) bool { return lr.onStk[id] }

// Phi returns ϕ(v).
func (lr *MatchingLocalRatio) Phi(v int) float64 { return lr.phi[v] }

// StackSize returns the number of stacked edges.
func (lr *MatchingLocalRatio) StackSize() int { return len(lr.stack) }

// Push applies the weight reduction for edge id and stacks it. It returns
// the reduction ψ (the edge's reduced weight at push time) and reports
// whether the push happened; pushing a dead or already-stacked edge is a
// no-op returning (0, false).
func (lr *MatchingLocalRatio) Push(id int) (float64, bool) {
	if lr.onStk[id] {
		return 0, false
	}
	psi := lr.Reduced(id)
	if psi <= 0 {
		return 0, false
	}
	e := lr.g.Edges[id]
	lr.phi[e.U] += psi
	lr.phi[e.V] += psi
	lr.onStk[id] = true
	lr.stack = append(lr.stack, id)
	return psi, true
}

// Unwind pops the stack, adding each edge to the matching if both endpoints
// are still free. The result is a valid matching.
func (lr *MatchingLocalRatio) Unwind() []int {
	used := make([]bool, lr.g.N)
	var match []int
	for i := len(lr.stack) - 1; i >= 0; i-- {
		id := lr.stack[i]
		e := lr.g.Edges[id]
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			match = append(match, id)
		}
	}
	return match
}

// LocalRatioMatching runs the sequential local ratio algorithm for maximum
// weight matching, processing edges in index order, and returns a matching
// of weight at least half the optimum (Theorem 5.1).
func LocalRatioMatching(g *graph.Graph) []int {
	lr := NewMatchingLocalRatio(g)
	for id := range g.Edges {
		if lr.Alive(id) {
			lr.Push(id)
		}
	}
	return lr.Unwind()
}

// GreedyMatching sorts edges by decreasing weight and adds each edge whose
// endpoints are free. This is the classic sequential 2-approximation.
func GreedyMatching(g *graph.Graph) []int {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := g.Edges[order[a]], g.Edges[order[b]]
		if ea.W != eb.W {
			return ea.W > eb.W
		}
		return order[a] < order[b]
	})
	used := make([]bool, g.N)
	var match []int
	for _, id := range order {
		e := g.Edges[id]
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			match = append(match, id)
		}
	}
	return match
}

// MaximalMatching adds edges in index order whenever both endpoints are
// free, producing an (unweighted) maximal matching — the Lattanzi et al.
// filtering baseline's central-machine subroutine.
func MaximalMatching(g *graph.Graph) []int {
	used := make([]bool, g.N)
	var match []int
	for id, e := range g.Edges {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			match = append(match, id)
		}
	}
	return match
}
