// Package seq implements the sequential algorithms that the paper's
// MapReduce algorithms build on, plus the baselines and exact oracles the
// experiments compare against:
//
//   - the Bar-Yehuda–Even local ratio algorithm for weighted set cover
//     (Theorem 2.1), exposed as a reusable incremental state so the central
//     machine of MapReduce Algorithm 1 can drive it element by element;
//   - the Chvátal greedy / ε-greedy algorithm for weighted set cover (§4);
//   - the Paz–Schwartzman local ratio algorithm for weighted matching
//     (Theorem 5.1), again as an incremental state reused by Algorithm 4;
//   - the ε-adjusted local ratio algorithm for b-matching (Appendix D);
//   - greedy matching, greedy MIS, greedy (∆+1) vertex colouring, and the
//     Misra–Gries (∆+1) edge colouring used by Remark 6.5;
//   - brute-force exact solvers used as test oracles on small instances.
package seq

import (
	"repro/internal/setcover"
)

// CoverLocalRatio is the incremental state of the Bar-Yehuda–Even local
// ratio algorithm for minimum weight set cover. Elements are processed in an
// arbitrary order (that flexibility is exactly what the paper's randomized
// sampling exploits); processing element j reduces the weight of every set
// containing j by the minimum residual weight among them. Sets whose
// residual weight reaches zero join the cover.
//
// The accumulated reduction SumEps is a certified lower bound on OPT: every
// feasible cover must pay at least eps_j for each processed element j, and
// the final cover weighs at most f * SumEps (the f-approximation guarantee).
type CoverLocalRatio struct {
	inst     *setcover.Instance
	residual []float64
	inCover  []bool
	cover    []int
	// SumEps is the total weight reduction performed; a lower bound on OPT.
	SumEps float64
}

// NewCoverLocalRatio returns a fresh local ratio state over inst. The
// instance's weights are not modified; reductions happen on a copy.
func NewCoverLocalRatio(inst *setcover.Instance) *CoverLocalRatio {
	lr := &CoverLocalRatio{
		inst:     inst,
		residual: append([]float64(nil), inst.Weights...),
		inCover:  make([]bool, inst.NumSets()),
	}
	return lr
}

// Covered reports whether element j is covered by the current cover, i.e.
// some set containing j has zero residual weight.
func (lr *CoverLocalRatio) Covered(j int) bool {
	for _, i := range lr.inst.Dual()[j] {
		if lr.inCover[i] {
			return true
		}
	}
	return false
}

// Process applies the local ratio step to element j: if the minimum residual
// weight among sets containing j is positive, subtract it from all of them
// and move the new zero-weight sets into the cover. It returns the reduction
// applied (zero if j was already covered).
func (lr *CoverLocalRatio) Process(j int) float64 {
	sets := lr.inst.Dual()[j]
	if len(sets) == 0 {
		return 0
	}
	eps := -1.0
	for _, i := range sets {
		if lr.inCover[i] {
			return 0 // already covered: min weight is zero
		}
		if eps < 0 || lr.residual[i] < eps {
			eps = lr.residual[i]
		}
	}
	if eps <= 0 {
		return 0
	}
	for _, i := range sets {
		lr.residual[i] -= eps
		if lr.residual[i] <= 1e-12 && !lr.inCover[i] {
			lr.residual[i] = 0
			lr.inCover[i] = true
			lr.cover = append(lr.cover, i)
		}
	}
	lr.SumEps += eps
	return eps
}

// Residual returns the current residual weight of set i.
func (lr *CoverLocalRatio) Residual(i int) float64 { return lr.residual[i] }

// InCover reports whether set i has joined the cover.
func (lr *CoverLocalRatio) InCover(i int) bool { return lr.inCover[i] }

// Cover returns the indices of the sets currently in the cover, in the order
// they joined. The slice must not be modified.
func (lr *CoverLocalRatio) Cover() []int { return lr.cover }

// LocalRatioSetCover runs the sequential local ratio algorithm (Theorem 2.1)
// over all elements in index order and returns the cover and the certified
// lower bound on OPT. The cover weighs at most f times the lower bound.
func LocalRatioSetCover(inst *setcover.Instance) (cover []int, lowerBound float64) {
	lr := NewCoverLocalRatio(inst)
	for j := 0; j < inst.NumElements; j++ {
		if !lr.Covered(j) {
			lr.Process(j)
		}
	}
	return append([]int(nil), lr.Cover()...), lr.SumEps
}

// GreedySetCover runs the classic Chvátal greedy algorithm with ε-slack: in
// each iteration it adds a set whose cost ratio |S \ C| / w is at least
// 1/(1+eps) times the maximum. With eps = 0 this is exact greedy, giving an
// H_∆ approximation; eps > 0 gives (1+eps)·H_∆ (the variant Algorithm 3
// implements in MapReduce). Ties and the ε-window are resolved toward lower
// set index, which makes the function deterministic.
func GreedySetCover(inst *setcover.Instance, eps float64) []int {
	n := inst.NumSets()
	uncov := make([]int, n) // |S_i \ C|
	for i, s := range inst.Sets {
		uncov[i] = len(s)
	}
	covered := make([]bool, inst.NumElements)
	remaining := inst.NumElements
	var cover []int
	for remaining > 0 {
		best := -1
		bestRatio := 0.0
		for i := 0; i < n; i++ {
			if uncov[i] == 0 {
				continue
			}
			ratio := float64(uncov[i]) / inst.Weights[i]
			if ratio > bestRatio {
				bestRatio = ratio
				best = i
			}
		}
		if best < 0 {
			break // unreachable on valid instances
		}
		pick := best
		if eps > 0 {
			// Take the lowest-indexed set within the ε-window, mimicking the
			// arbitrary choice the ε-greedy analysis permits.
			for i := 0; i < n; i++ {
				if uncov[i] > 0 && float64(uncov[i])/inst.Weights[i] >= bestRatio/(1+eps) {
					pick = i
					break
				}
			}
		}
		cover = append(cover, pick)
		for _, e := range inst.Sets[pick] {
			if !covered[e] {
				covered[e] = true
				remaining--
				for _, i := range inst.Dual()[e] {
					uncov[i]--
				}
			}
		}
	}
	return cover
}
