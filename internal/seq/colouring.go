package seq

import (
	"fmt"

	"repro/internal/graph"
)

// GreedyVertexColouring colours vertices in the given order (or 0..n-1 when
// order is nil) with the smallest colour unused among coloured neighbours.
// It uses at most ∆+1 colours; colours are 0-based. This is the "standard
// (∆_i + 1)-vertex colouring algorithm" each central machine runs in
// Algorithm 5.
func GreedyVertexColouring(g *graph.Graph, order []int) []int {
	if order == nil {
		order = make([]int, g.N)
		for v := range order {
			order[v] = v
		}
	}
	colour := make([]int, g.N)
	for i := range colour {
		colour[i] = -1
	}
	// usedAt[c] == step marks colour c as used by the current vertex's
	// neighbours; the stamp replaces a per-vertex map and the greedy rule
	// needs at most ∆+1 ≤ n palette slots.
	usedAt := make([]int, g.N+1)
	for i := range usedAt {
		usedAt[i] = -1
	}
	for step, v := range order {
		for _, u := range g.Neighbors(v) {
			if cu := colour[u]; cu >= 0 {
				usedAt[cu] = step
			}
		}
		c := 0
		for usedAt[c] == step {
			c++
		}
		colour[v] = c
	}
	return colour
}

// MisraGries edge-colours g with at most ∆+1 colours (Vizing's bound),
// following the constructive algorithm of Misra and Gries (1992), which is
// the subroutine Remark 6.5 uses to colour each edge group. Colours are
// 0-based in the returned slice (internally 1..∆+1). It runs in O(nm) time.
func MisraGries(g *graph.Graph) []int {
	g.Build()
	maxC := g.MaxDegree() + 1
	if g.M() == 0 {
		return []int{}
	}
	colour := make([]int, g.M()) // 0 = uncoloured; valid colours 1..maxC
	// The (vertex, colour) index stores edge id + 1 for the edge coloured c
	// at v, 0 when the colour is free. On near-regular graphs it is a flat
	// slab (at[v*stride+c]) — direct indexing, no hashing. A flat slab is
	// Θ(n·∆) though, which a skewed degree sequence (one hub) can blow up
	// to Θ(n²), so when the slab would exceed a constant factor of the
	// graph's own size the index falls back to lazy per-vertex maps. Both
	// layouts answer identical queries, so the colouring is the same.
	stride := maxC + 1
	var flat []int32
	var sparse []map[int]int32
	if g.N*stride <= 8*(g.N+2*g.M())+1024 {
		flat = make([]int32, g.N*stride)
	} else {
		sparse = make([]map[int]int32, g.N)
	}
	atGet := func(v, c int) int32 {
		if flat != nil {
			return flat[v*stride+c]
		}
		return sparse[v][c] // nil map reads as 0
	}
	atPut := func(v, c int, id int32) {
		if flat != nil {
			flat[v*stride+c] = id
			return
		}
		if id == 0 {
			delete(sparse[v], c)
			return
		}
		if sparse[v] == nil {
			sparse[v] = make(map[int]int32)
		}
		sparse[v][c] = id
	}

	isFree := func(v, c int) bool { return atGet(v, c) == 0 }
	edgeAt := func(v, c int) (int, bool) {
		id := atGet(v, c)
		return int(id) - 1, id != 0
	}
	freeColour := func(v int) int {
		for c := 1; c <= maxC; c++ {
			if atGet(v, c) == 0 {
				return c
			}
		}
		panic("seq: no free colour; degree exceeds maxC-1")
	}
	setColour := func(id, c int) {
		e := g.Edges[id]
		if old := colour[id]; old != 0 {
			atPut(e.U, old, 0)
			atPut(e.V, old, 0)
		}
		colour[id] = c
		if c != 0 {
			atPut(e.U, c, int32(id)+1)
			atPut(e.V, c, int32(id)+1)
		}
	}

	// makeFan builds a maximal fan of u starting at v: a sequence of distinct
	// neighbours F[0]=v, F[1], ... such that edge (u,F[i+1]) is coloured with
	// a colour free on F[i].
	makeFan := func(u, v int) []int {
		fan := []int{v}
		inFan := map[int]bool{v: true}
		ids := g.IncidentEdges(u)
		nbrs := g.Neighbors(u)
		for {
			last := fan[len(fan)-1]
			extended := false
			for i, id := range ids {
				w := int(nbrs[i])
				if inFan[w] || colour[id] == 0 {
					continue
				}
				if isFree(last, colour[id]) {
					fan = append(fan, w)
					inFan[w] = true
					extended = true
					break
				}
			}
			if !extended {
				return fan
			}
		}
	}

	// invertPath walks the cd-path from u (u has d used, c free) and swaps
	// the two colours along it.
	invertPath := func(u, c, d int) {
		var path []int
		cur, col := u, d
		for {
			id, ok := edgeAt(cur, col)
			if !ok {
				break
			}
			path = append(path, id)
			cur = g.Edges[id].Other(cur)
			if col == d {
				col = c
			} else {
				col = d
			}
		}
		// Two phases: uncolour the whole path first, then apply the swapped
		// colours. Doing it in one pass would transiently register two edges
		// under the same (vertex, colour) key and corrupt the index.
		swapped := make([]int, len(path))
		for i, id := range path {
			if colour[id] == c {
				swapped[i] = d
			} else {
				swapped[i] = c
			}
			setColour(id, 0)
		}
		for i, id := range path {
			setColour(id, swapped[i])
		}
	}

	// rotateFan shifts colours along the fan prefix F[0..w] and colours the
	// last edge d.
	rotateFan := func(u int, fan []int, w, d int) {
		nbrs := g.Neighbors(u)
		edgeTo := func(x int) int {
			for i, nb := range nbrs {
				if int(nb) == x {
					// Prefer the edge currently carrying the fan colour; for
					// simple graphs any incident edge to x is unique.
					return int(g.IncidentEdges(u)[i])
				}
			}
			panic("seq: fan vertex not adjacent")
		}
		// Collect the shift first, uncolour, then assign: assigning in place
		// would transiently give two edges at u the same colour and corrupt
		// the (vertex, colour) index.
		ids := make([]int, w+1)
		for i := 0; i <= w; i++ {
			ids[i] = edgeTo(fan[i])
		}
		newCol := make([]int, w+1)
		for i := 0; i < w; i++ {
			newCol[i] = colour[ids[i+1]]
		}
		newCol[w] = d
		for _, id := range ids {
			setColour(id, 0)
		}
		for i, id := range ids {
			if newCol[i] != 0 {
				setColour(id, newCol[i])
			}
		}
	}

	for id := range g.Edges {
		if colour[id] != 0 {
			continue
		}
		u, v := g.Edges[id].U, g.Edges[id].V
		for attempt := 0; ; attempt++ {
			if attempt > 2*g.N+10 {
				panic(fmt.Sprintf("seq: MisraGries failed to colour edge %d", id))
			}
			fan := makeFan(u, v)
			c := freeColour(u)
			d := freeColour(fan[len(fan)-1])
			if c != d && !isFree(u, d) {
				invertPath(u, c, d)
			}
			// After the inversion d is free on u. Find a prefix F[0..w] that
			// is still a fan (colours may have changed) with d free on F[w].
			w := -1
			for i := range fan {
				if i > 0 {
					// Prefix validity: colour of (u, fan[i]) must be free on
					// fan[i-1].
					ci := 0
					uIDs := g.IncidentEdges(u)
					for k, nb := range g.Neighbors(u) {
						if int(nb) == fan[i] {
							ci = colour[uIDs[k]]
							break
						}
					}
					if ci == 0 || !isFree(fan[i-1], ci) {
						break
					}
				}
				if isFree(fan[i], d) {
					w = i
					break
				}
			}
			if w < 0 {
				// The inversion disturbed the fan; rebuild and retry (the
				// Misra–Gries invariants guarantee progress).
				continue
			}
			rotateFan(u, fan, w, d)
			break
		}
	}

	out := make([]int, g.M())
	for id, c := range colour {
		if c == 0 {
			panic("seq: MisraGries left an edge uncoloured")
		}
		out[id] = c - 1
	}
	return out
}
