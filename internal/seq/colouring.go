package seq

import (
	"fmt"

	"repro/internal/graph"
)

// GreedyVertexColouring colours vertices in the given order (or 0..n-1 when
// order is nil) with the smallest colour unused among coloured neighbours.
// It uses at most ∆+1 colours; colours are 0-based. This is the "standard
// (∆_i + 1)-vertex colouring algorithm" each central machine runs in
// Algorithm 5.
func GreedyVertexColouring(g *graph.Graph, order []int) []int {
	if order == nil {
		order = make([]int, g.N)
		for v := range order {
			order[v] = v
		}
	}
	colour := make([]int, g.N)
	for i := range colour {
		colour[i] = -1
	}
	for _, v := range order {
		used := make(map[int]bool)
		for _, id := range g.IncidentEdges(v) {
			u := g.Edges[id].Other(v)
			if colour[u] >= 0 {
				used[colour[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colour[v] = c
	}
	return colour
}

// MisraGries edge-colours g with at most ∆+1 colours (Vizing's bound),
// following the constructive algorithm of Misra and Gries (1992), which is
// the subroutine Remark 6.5 uses to colour each edge group. Colours are
// 0-based in the returned slice (internally 1..∆+1). It runs in O(nm) time.
func MisraGries(g *graph.Graph) []int {
	g.Build()
	maxC := g.MaxDegree() + 1
	if g.M() == 0 {
		return []int{}
	}
	colour := make([]int, g.M()) // 0 = uncoloured; valid colours 1..maxC
	// at[v][c] = edge id coloured c at v.
	at := make([]map[int]int, g.N)
	for v := range at {
		at[v] = make(map[int]int)
	}

	isFree := func(v, c int) bool { _, used := at[v][c]; return !used }
	freeColour := func(v int) int {
		for c := 1; c <= maxC; c++ {
			if isFree(v, c) {
				return c
			}
		}
		panic("seq: no free colour; degree exceeds maxC-1")
	}
	setColour := func(id, c int) {
		e := g.Edges[id]
		if old := colour[id]; old != 0 {
			delete(at[e.U], old)
			delete(at[e.V], old)
		}
		colour[id] = c
		if c != 0 {
			at[e.U][c] = id
			at[e.V][c] = id
		}
	}

	// makeFan builds a maximal fan of u starting at v: a sequence of distinct
	// neighbours F[0]=v, F[1], ... such that edge (u,F[i+1]) is coloured with
	// a colour free on F[i].
	makeFan := func(u, v int) []int {
		fan := []int{v}
		inFan := map[int]bool{v: true}
		for {
			last := fan[len(fan)-1]
			extended := false
			for _, id := range g.IncidentEdges(u) {
				w := g.Edges[id].Other(u)
				if inFan[w] || colour[id] == 0 {
					continue
				}
				if isFree(last, colour[id]) {
					fan = append(fan, w)
					inFan[w] = true
					extended = true
					break
				}
			}
			if !extended {
				return fan
			}
		}
	}

	// invertPath walks the cd-path from u (u has d used, c free) and swaps
	// the two colours along it.
	invertPath := func(u, c, d int) {
		var path []int
		cur, col := u, d
		for {
			id, ok := at[cur][col]
			if !ok {
				break
			}
			path = append(path, id)
			cur = g.Edges[id].Other(cur)
			if col == d {
				col = c
			} else {
				col = d
			}
		}
		// Two phases: uncolour the whole path first, then apply the swapped
		// colours. Doing it in one pass would transiently register two edges
		// under the same (vertex, colour) key and corrupt the index.
		swapped := make([]int, len(path))
		for i, id := range path {
			if colour[id] == c {
				swapped[i] = d
			} else {
				swapped[i] = c
			}
			setColour(id, 0)
		}
		for i, id := range path {
			setColour(id, swapped[i])
		}
	}

	// rotateFan shifts colours along the fan prefix F[0..w] and colours the
	// last edge d.
	rotateFan := func(u int, fan []int, w, d int) {
		edgeTo := func(x int) int {
			for _, id := range g.IncidentEdges(u) {
				if g.Edges[id].Other(u) == x {
					// Prefer the edge currently carrying the fan colour; for
					// simple graphs any incident edge to x is unique.
					return id
				}
			}
			panic("seq: fan vertex not adjacent")
		}
		// Collect the shift first, uncolour, then assign: assigning in place
		// would transiently give two edges at u the same colour and corrupt
		// the (vertex, colour) index.
		ids := make([]int, w+1)
		for i := 0; i <= w; i++ {
			ids[i] = edgeTo(fan[i])
		}
		newCol := make([]int, w+1)
		for i := 0; i < w; i++ {
			newCol[i] = colour[ids[i+1]]
		}
		newCol[w] = d
		for _, id := range ids {
			setColour(id, 0)
		}
		for i, id := range ids {
			if newCol[i] != 0 {
				setColour(id, newCol[i])
			}
		}
	}

	for id := range g.Edges {
		if colour[id] != 0 {
			continue
		}
		u, v := g.Edges[id].U, g.Edges[id].V
		for attempt := 0; ; attempt++ {
			if attempt > 2*g.N+10 {
				panic(fmt.Sprintf("seq: MisraGries failed to colour edge %d", id))
			}
			fan := makeFan(u, v)
			c := freeColour(u)
			d := freeColour(fan[len(fan)-1])
			if c != d && !isFree(u, d) {
				invertPath(u, c, d)
			}
			// After the inversion d is free on u. Find a prefix F[0..w] that
			// is still a fan (colours may have changed) with d free on F[w].
			w := -1
			for i := range fan {
				if i > 0 {
					// Prefix validity: colour of (u, fan[i]) must be free on
					// fan[i-1].
					ci := 0
					for _, eid := range g.IncidentEdges(u) {
						if g.Edges[eid].Other(u) == fan[i] {
							ci = colour[eid]
							break
						}
					}
					if ci == 0 || !isFree(fan[i-1], ci) {
						break
					}
				}
				if isFree(fan[i], d) {
					w = i
					break
				}
			}
			if w < 0 {
				// The inversion disturbed the fan; rebuild and retry (the
				// Misra–Gries invariants guarantee progress).
				continue
			}
			rotateFan(u, fan, w, d)
			break
		}
	}

	out := make([]int, g.M())
	for id, c := range colour {
		if c == 0 {
			panic("seq: MisraGries left an edge uncoloured")
		}
		out[id] = c - 1
	}
	return out
}
