package seq

import "repro/internal/graph"

// GreedyMIS scans vertices in the given order (or 0..n-1 when order is nil)
// and adds each vertex not adjacent to the set so far, producing a maximal
// independent set. This is the subroutine the paper's MIS algorithms run on
// the central machine once the residual graph fits in memory.
func GreedyMIS(g *graph.Graph, order []int) map[int]bool {
	if order == nil {
		order = make([]int, g.N)
		for v := range order {
			order[v] = v
		}
	}
	inSet := make([]bool, g.N)
	blocked := make([]bool, g.N)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		inSet[v] = true
		blocked[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return graph.VertexSet(inSet)
}

// GreedyMISSubset is GreedyMIS restricted to the induced subgraph on the
// vertices for which active(v) is true: the returned set is independent in g
// and maximal within the active set.
func GreedyMISSubset(g *graph.Graph, active func(v int) bool, order []int) map[int]bool {
	if order == nil {
		order = make([]int, g.N)
		for v := range order {
			order[v] = v
		}
	}
	inSet := make([]bool, g.N)
	blocked := make([]bool, g.N)
	for _, v := range order {
		if !active(v) || blocked[v] {
			continue
		}
		inSet[v] = true
		blocked[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return graph.VertexSet(inSet)
}

// GreedyMaximalClique grows a clique from seed by scanning vertices in index
// order and adding any vertex adjacent to the whole current clique. Used as
// the centralized finish of the maximal clique algorithm and as a test
// oracle.
func GreedyMaximalClique(g *graph.Graph, seed []int) []int {
	clique := append([]int(nil), seed...)
	have := g.HasEdgeSet()
	inClique := make(map[int]bool, len(clique))
	for _, v := range clique {
		inClique[v] = true
	}
	for v := 0; v < g.N; v++ {
		if inClique[v] {
			continue
		}
		ok := true
		for _, u := range clique {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if !have[[2]int{a, b}] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, v)
			inClique[v] = true
		}
	}
	return clique
}
