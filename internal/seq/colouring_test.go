package seq

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestGreedyVertexColouringProper(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(30)
		maxM := n * (n - 1) / 2
		m := r.Intn(maxM + 1)
		g := graph.GNM(n, m, r)
		col := GreedyVertexColouring(g, nil)
		if !graph.IsProperVertexColouring(g, col) {
			t.Fatalf("trial %d: improper colouring", trial)
		}
		if nc := graph.NumColours(col); nc > g.MaxDegree()+1 {
			t.Fatalf("trial %d: %d colours > delta+1 = %d", trial, nc, g.MaxDegree()+1)
		}
	}
}

func TestGreedyVertexColouringCustomOrder(t *testing.T) {
	g := graph.Cycle(4)
	col := GreedyVertexColouring(g, []int{3, 2, 1, 0})
	if !graph.IsProperVertexColouring(g, col) {
		t.Fatal("improper")
	}
	if graph.NumColours(col) > 2 {
		t.Fatalf("C4 should 2-colour greedily in this order: %v", col)
	}
}

func TestMisraGriesSmallKnown(t *testing.T) {
	// A triangle has delta=2 and chromatic index 3 = delta+1.
	g := graph.Cycle(3)
	col := MisraGries(g)
	if !graph.IsProperEdgeColouring(g, col) {
		t.Fatal("triangle: improper")
	}
	if nc := graph.NumColours(col); nc != 3 {
		t.Fatalf("triangle needs exactly 3 colours, used %d", nc)
	}
}

func TestMisraGriesStar(t *testing.T) {
	// A star's edges all share the centre: needs exactly delta colours.
	g := graph.Star(6)
	col := MisraGries(g)
	if !graph.IsProperEdgeColouring(g, col) {
		t.Fatal("star: improper")
	}
	if nc := graph.NumColours(col); nc != 5 {
		t.Fatalf("star K1,5 needs 5 colours, used %d", nc)
	}
}

func TestMisraGriesSkewedUsesSparseIndex(t *testing.T) {
	// A large hub makes the flat (vertex, colour) slab Θ(n·∆) = Θ(n²), so
	// MisraGries must take the sparse per-vertex-map index path and still
	// produce a proper ≤ ∆+1 colouring.
	g := graph.Star(400) // n=400, ∆=399: 400·400 slots >> 8·(n+2m)
	for v := 1; v+1 < g.N; v += 2 {
		g.AddEdge(v, v+1, 1) // a ring of extra edges so ∆+1 is not forced tight
	}
	col := MisraGries(g)
	if !graph.IsProperEdgeColouring(g, col) {
		t.Fatal("skewed: improper colouring")
	}
	if nc := graph.NumColours(col); nc > g.MaxDegree()+1 {
		t.Fatalf("skewed: %d colours exceeds ∆+1 = %d", nc, g.MaxDegree()+1)
	}
}

func TestMisraGriesEmptyAndSingle(t *testing.T) {
	if col := MisraGries(graph.New(3)); len(col) != 0 {
		t.Fatal("empty graph")
	}
	g := graph.Path(2)
	col := MisraGries(g)
	if len(col) != 1 {
		t.Fatal("single edge")
	}
}

func TestMisraGriesVizingBoundRandom(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(25)
		maxM := n * (n - 1) / 2
		m := r.Intn(maxM + 1)
		g := graph.GNM(n, m, r)
		col := MisraGries(g)
		if !graph.IsProperEdgeColouring(g, col) {
			t.Fatalf("trial %d (n=%d m=%d): improper edge colouring", trial, n, m)
		}
		if nc := graph.NumColours(col); nc > g.MaxDegree()+1 {
			t.Fatalf("trial %d: %d colours > delta+1 = %d", trial, nc, g.MaxDegree()+1)
		}
	}
}

func TestMisraGriesDenseAndStructured(t *testing.T) {
	cases := []*graph.Graph{
		graph.Complete(6),
		graph.Complete(7),
		graph.Grid(4, 5),
		graph.Cycle(9),
		graph.PreferentialAttachment(40, 3, rng.New(34)),
	}
	for i, g := range cases {
		col := MisraGries(g)
		if !graph.IsProperEdgeColouring(g, col) {
			t.Fatalf("case %d: improper", i)
		}
		if nc := graph.NumColours(col); nc > g.MaxDegree()+1 {
			t.Fatalf("case %d: %d > delta+1", i, nc)
		}
	}
}

func TestGreedyMISProperties(t *testing.T) {
	r := rng.New(35)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(25)
		m := r.Intn(n * 2)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		set := GreedyMIS(g, nil)
		if !graph.IsMaximalIndependentSet(g, set) {
			t.Fatalf("trial %d: not an MIS", trial)
		}
		// Random order variant.
		set2 := GreedyMIS(g, r.Perm(g.N))
		if !graph.IsMaximalIndependentSet(g, set2) {
			t.Fatalf("trial %d: random order not an MIS", trial)
		}
	}
}

func TestGreedyMISSubset(t *testing.T) {
	g := graph.Path(6)
	active := func(v int) bool { return v >= 2 } // restrict to vertices 2..5
	set := GreedyMISSubset(g, active, nil)
	if !graph.IsIndependentSet(g, set) {
		t.Fatal("not independent")
	}
	for v := range set {
		if v < 2 {
			t.Fatal("inactive vertex selected")
		}
	}
	// Maximal within active: every active vertex is in set or adjacent to it.
	for v := 2; v < 6; v++ {
		if set[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if set[int(u)] {
				dominated = true
			}
		}
		if !dominated {
			t.Fatalf("active vertex %d not dominated", v)
		}
	}
}

func TestGreedyMaximalClique(t *testing.T) {
	r := rng.New(36)
	for trial := 0; trial < 30; trial++ {
		g := graph.GNM(12, 30, r)
		cl := GreedyMaximalClique(g, nil)
		if !graph.IsMaximalClique(g, cl) {
			t.Fatalf("trial %d: not a maximal clique: %v", trial, cl)
		}
	}
	// With a seed.
	g := graph.Complete(5)
	cl := GreedyMaximalClique(g, []int{2})
	if len(cl) != 5 {
		t.Fatalf("K5 maximal clique from seed: %v", cl)
	}
}
