package seq

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func harmonic(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

func TestLocalRatioSetCoverTiny(t *testing.T) {
	inst := &setcover.Instance{
		NumElements: 4,
		Sets:        [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 1, 2, 3}},
		Weights:     []float64{1, 1, 1, 2.5},
	}
	cover, lb := LocalRatioSetCover(inst)
	if !inst.IsCover(cover) {
		t.Fatalf("not a cover: %v", cover)
	}
	f := inst.MaxFrequency()
	if w := inst.Weight(cover); w > float64(f)*lb+1e-9 {
		t.Fatalf("weight %v exceeds f*lb = %d*%v", w, f, lb)
	}
	_, opt := BruteForceSetCover(inst)
	if lb > opt+1e-9 {
		t.Fatalf("lower bound %v exceeds OPT %v", lb, opt)
	}
}

func TestLocalRatioSetCoverRandom(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(8)
		m := 4 + r.Intn(20)
		f := 1 + r.Intn(min(3, n))
		inst := setcover.RandomFrequency(n, m, f, 5, r)
		cover, lb := LocalRatioSetCover(inst)
		if !inst.IsCover(cover) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		_, opt := BruteForceSetCover(inst)
		w := inst.Weight(cover)
		ff := inst.MaxFrequency()
		if w > float64(ff)*opt+1e-9 {
			t.Fatalf("trial %d: weight %v > f*OPT = %d*%v", trial, w, ff, opt)
		}
		if lb > opt+1e-9 {
			t.Fatalf("trial %d: lb %v > OPT %v", trial, lb, opt)
		}
		if w > float64(ff)*lb+1e-9 {
			t.Fatalf("trial %d: weight %v > f*lb", trial, w)
		}
	}
}

func TestCoverLocalRatioIncremental(t *testing.T) {
	inst := &setcover.Instance{
		NumElements: 3,
		Sets:        [][]int{{0, 1}, {1, 2}},
		Weights:     []float64{2, 3},
	}
	lr := NewCoverLocalRatio(inst)
	if lr.Covered(0) {
		t.Fatal("nothing covered yet")
	}
	eps := lr.Process(1) // both sets contain element 1; min weight 2
	if eps != 2 {
		t.Fatalf("eps = %v, want 2", eps)
	}
	if !lr.InCover(0) {
		t.Fatal("set 0 should have zero weight now")
	}
	if lr.Residual(1) != 1 {
		t.Fatalf("residual(1) = %v, want 1", lr.Residual(1))
	}
	if !lr.Covered(0) || !lr.Covered(1) {
		t.Fatal("elements 0,1 covered by set 0")
	}
	if lr.Covered(2) {
		t.Fatal("element 2 uncovered")
	}
	// Processing a covered element is a no-op.
	if e := lr.Process(0); e != 0 {
		t.Fatalf("covered element processed with eps %v", e)
	}
	eps = lr.Process(2)
	if eps != 1 {
		t.Fatalf("eps = %v, want 1", eps)
	}
	if len(lr.Cover()) != 2 {
		t.Fatalf("cover = %v", lr.Cover())
	}
	if lr.SumEps != 3 {
		t.Fatalf("SumEps = %v", lr.SumEps)
	}
}

func TestCoverLocalRatioOrderInvariantApproximation(t *testing.T) {
	// Whatever order elements are processed in, the f-approximation holds.
	r := rng.New(7)
	inst := setcover.RandomFrequency(8, 15, 3, 4, r)
	_, opt := BruteForceSetCover(inst)
	f := float64(inst.MaxFrequency())
	for trial := 0; trial < 20; trial++ {
		lr := NewCoverLocalRatio(inst)
		for _, j := range r.Perm(inst.NumElements) {
			if !lr.Covered(j) {
				lr.Process(j)
			}
		}
		cover := append([]int(nil), lr.Cover()...)
		if !inst.IsCover(cover) {
			t.Fatalf("order trial %d: incomplete cover", trial)
		}
		if w := inst.Weight(cover); w > f*opt+1e-9 {
			t.Fatalf("order trial %d: %v > f*OPT", trial, w)
		}
	}
}

func TestGreedySetCoverExact(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(8)
		m := 4 + r.Intn(15)
		inst := setcover.RandomSized(n, m, 5, 4, r)
		cover := GreedySetCover(inst, 0)
		if !inst.IsCover(cover) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		_, opt := BruteForceSetCover(inst)
		bound := harmonic(inst.MaxSetSize()) * opt
		if w := inst.Weight(cover); w > bound+1e-9 {
			t.Fatalf("trial %d: greedy %v > H_delta * OPT %v", trial, w, bound)
		}
	}
}

func TestGreedySetCoverEps(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(8)
		m := 4 + r.Intn(15)
		inst := setcover.RandomSized(n, m, 5, 4, r)
		eps := 0.3
		cover := GreedySetCover(inst, eps)
		if !inst.IsCover(cover) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		_, opt := BruteForceSetCover(inst)
		bound := (1 + eps) * harmonic(inst.MaxSetSize()) * opt
		if w := inst.Weight(cover); w > bound+1e-9 {
			t.Fatalf("trial %d: eps-greedy %v > (1+eps)H*OPT %v", trial, w, bound)
		}
	}
}

func TestBruteForceSetCoverKnown(t *testing.T) {
	inst := &setcover.Instance{
		NumElements: 4,
		Sets:        [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}},
		Weights:     []float64{1, 1, 1.5},
	}
	cover, w := BruteForceSetCover(inst)
	if math.Abs(w-1.5) > 1e-12 {
		t.Fatalf("OPT = %v, want 1.5 (the big set)", w)
	}
	if !inst.IsCover(cover) {
		t.Fatal("brute cover invalid")
	}
}

func TestBruteForceVertexCoverKnown(t *testing.T) {
	g := graph.Star(5)
	w := []float64{1, 10, 10, 10, 10}
	cover, cw := BruteForceVertexCover(g, w)
	if cw != 1 || !cover[0] {
		t.Fatalf("star cover should be centre: got %v weight %v", cover, cw)
	}
	if !graph.IsVertexCover(g, cover) {
		t.Fatal("invalid cover")
	}
}

func TestVertexCoverViaSetCoverAgreesWithBrute(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 20; trial++ {
		g := graph.GNM(8, 12, r)
		w := make([]float64, g.N)
		for i := range w {
			w[i] = r.UniformWeight(1, 5)
		}
		inst := setcover.FromVertexCover(g, w)
		cover, lb := LocalRatioSetCover(inst)
		coverSet := map[int]bool{}
		for _, v := range cover {
			coverSet[v] = true
		}
		if !graph.IsVertexCover(g, coverSet) {
			t.Fatalf("trial %d: invalid vertex cover", trial)
		}
		_, opt := BruteForceVertexCover(g, w)
		got := graph.CoverWeight(coverSet, w)
		if got > 2*opt+1e-9 {
			t.Fatalf("trial %d: cover %v > 2*OPT %v", trial, got, opt)
		}
		if lb > opt+1e-9 {
			t.Fatalf("trial %d: lb %v > OPT %v", trial, lb, opt)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
