package seq

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func randWeighted(n, m int, r *rng.RNG) *graph.Graph {
	g := graph.GNM(n, m, r)
	g.AssignUniformWeights(r, 1, 10)
	return g
}

func TestLocalRatioMatchingTiny(t *testing.T) {
	// Path with weights 1, 10, 1: OPT takes the middle edge (10); any
	// 2-approx must weigh at least 5.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 1)
	m := LocalRatioMatching(g)
	if !graph.IsMatching(g, m) {
		t.Fatal("invalid matching")
	}
	if w := graph.MatchingWeight(g, m); w < 5 {
		t.Fatalf("weight %v below half of OPT 10", w)
	}
}

func TestLocalRatioMatchingTwoApprox(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(6)
		maxM := n * (n - 1) / 2
		m := 1 + r.Intn(min(maxM, 20))
		g := randWeighted(n, m, r)
		sel := LocalRatioMatching(g)
		if !graph.IsMatching(g, sel) {
			t.Fatalf("trial %d: invalid matching", trial)
		}
		opt := BruteForceMatching(g)
		if w := graph.MatchingWeight(g, sel); 2*w < opt-1e-9 {
			t.Fatalf("trial %d: weight %v < OPT/2 = %v/2", trial, w, opt)
		}
	}
}

func TestGreedyMatchingTwoApprox(t *testing.T) {
	r := rng.New(22)
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(6)
		m := 1 + r.Intn(15)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := randWeighted(n, m, r)
		sel := GreedyMatching(g)
		if !graph.IsMatching(g, sel) {
			t.Fatalf("trial %d: invalid", trial)
		}
		opt := BruteForceMatching(g)
		if w := graph.MatchingWeight(g, sel); 2*w < opt-1e-9 {
			t.Fatalf("trial %d: %v < OPT/2", trial, w)
		}
	}
}

func TestGreedyMatchingIsMaximal(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 20; trial++ {
		g := graph.GNM(10, 20, r)
		if !graph.IsMaximalMatching(g, GreedyMatching(g)) {
			t.Fatalf("trial %d: greedy matching not maximal", trial)
		}
	}
}

func TestMaximalMatching(t *testing.T) {
	r := rng.New(24)
	for trial := 0; trial < 20; trial++ {
		g := graph.GNM(12, 25, r)
		sel := MaximalMatching(g)
		if !graph.IsMaximalMatching(g, sel) {
			t.Fatalf("trial %d: not maximal", trial)
		}
	}
}

func TestMatchingLocalRatioState(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 5) // edge 0
	g.AddEdge(1, 2, 3) // edge 1
	lr := NewMatchingLocalRatio(g)
	if !lr.Alive(0) || !lr.Alive(1) {
		t.Fatal("all edges alive initially")
	}
	psi, ok := lr.Push(0)
	if !ok || psi != 5 {
		t.Fatalf("push(0) = %v, %v", psi, ok)
	}
	if lr.Phi(0) != 5 || lr.Phi(1) != 5 {
		t.Fatal("phi not updated at both endpoints")
	}
	// Edge 1 now has reduced weight 3 - 5 = -2: dead.
	if lr.Alive(1) {
		t.Fatal("edge 1 should be dead")
	}
	if lr.Reduced(1) != -2 {
		t.Fatalf("reduced(1) = %v", lr.Reduced(1))
	}
	// Pushing a dead edge is a no-op.
	if _, ok := lr.Push(1); ok {
		t.Fatal("pushed dead edge")
	}
	// Re-pushing stacked edge is a no-op.
	if _, ok := lr.Push(0); ok {
		t.Fatal("re-pushed stacked edge")
	}
	m := lr.Unwind()
	if len(m) != 1 || m[0] != 0 {
		t.Fatalf("unwind = %v", m)
	}
}

func TestUnwindPrefersLaterPushes(t *testing.T) {
	// Stack unwinding is LIFO: the edge pushed last wins conflicts. Build a
	// triangle and push in a known order.
	g := graph.New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 8)
	g.AddEdge(0, 2, 7)
	lr := NewMatchingLocalRatio(g)
	lr.Push(0) // psi 10; edges 1,2 get reduced by 10 → dead
	m := lr.Unwind()
	if len(m) != 1 || m[0] != 0 {
		t.Fatalf("unwind = %v", m)
	}
}

func TestBruteForceMatchingKnown(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 4)
	g.AddEdge(2, 3, 3)
	if opt := BruteForceMatching(g); math.Abs(opt-6) > 1e-12 {
		t.Fatalf("OPT = %v, want 6 (edges 0 and 2)", opt)
	}
}

func TestBMatchingDegeneratesToMatching(t *testing.T) {
	r := rng.New(25)
	b1 := func(int) int { return 1 }
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(5)
		m := 1 + r.Intn(12)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := randWeighted(n, m, r)
		sel := LocalRatioBMatching(g, b1, 0)
		if !graph.IsMatching(g, sel) {
			t.Fatalf("trial %d: b=1 result is not a matching", trial)
		}
		opt := BruteForceMatching(g)
		if w := graph.MatchingWeight(g, sel); 2*w < opt-1e-9 {
			t.Fatalf("trial %d: b=1 weight %v < OPT/2 %v", trial, w, opt/2)
		}
	}
}

func TestBMatchingApproximation(t *testing.T) {
	r := rng.New(26)
	for _, b := range []int{2, 3} {
		bf := func(int) int { return b }
		for trial := 0; trial < 30; trial++ {
			n := 4 + r.Intn(5)
			m := 1 + r.Intn(14)
			if max := n * (n - 1) / 2; m > max {
				m = max
			}
			g := randWeighted(n, m, r)
			eps := 0.1
			sel := LocalRatioBMatching(g, bf, eps)
			if !graph.IsBMatching(g, sel, bf) {
				t.Fatalf("b=%d trial %d: invalid b-matching", b, trial)
			}
			opt := BruteForceBMatching(g, bf)
			ratio := 3 - 2/float64(b) + 2*eps
			if w := graph.MatchingWeight(g, sel); ratio*w < opt-1e-9 {
				t.Fatalf("b=%d trial %d: weight %v, OPT %v, ratio bound %v violated",
					b, trial, w, opt, ratio)
			}
		}
	}
}

func TestBMatchingHeterogeneousCapacities(t *testing.T) {
	r := rng.New(27)
	for trial := 0; trial < 20; trial++ {
		g := randWeighted(6, 10, r)
		caps := make([]int, g.N)
		for v := range caps {
			caps[v] = 1 + r.Intn(3)
		}
		bf := func(v int) int { return caps[v] }
		sel := LocalRatioBMatching(g, bf, 0.2)
		if !graph.IsBMatching(g, sel, bf) {
			t.Fatalf("trial %d: invalid heterogeneous b-matching", trial)
		}
	}
}

func TestBMatchingStarWithCapacity(t *testing.T) {
	// Star with b(centre)=2: the two heaviest spokes should be selectable.
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 2, 4)
	g.AddEdge(0, 3, 1)
	caps := []int{2, 1, 1, 1}
	bf := func(v int) int { return caps[v] }
	sel := LocalRatioBMatching(g, bf, 0.05)
	if !graph.IsBMatching(g, sel, bf) {
		t.Fatal("invalid")
	}
	opt := BruteForceBMatching(g, bf) // 9
	if math.Abs(opt-9) > 1e-12 {
		t.Fatalf("brute OPT = %v, want 9", opt)
	}
	w := graph.MatchingWeight(g, sel)
	if (3-2.0/2+0.1)*w < opt-1e-9 {
		t.Fatalf("weight %v too small vs OPT %v", w, opt)
	}
}

func TestBMatchingNegativeEpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBMatchingLocalRatio(graph.Path(3), func(int) int { return 1 }, -0.1)
}
