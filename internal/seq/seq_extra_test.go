package seq

// Additional edge-case and property tests for the sequential algorithms.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func TestLocalRatioMatchingEmptyAndSingle(t *testing.T) {
	if m := LocalRatioMatching(graph.New(3)); len(m) != 0 {
		t.Fatal("empty graph")
	}
	g := graph.New(2)
	g.AddEdge(0, 1, 5)
	if m := LocalRatioMatching(g); len(m) != 1 {
		t.Fatal("single edge must be matched")
	}
}

func TestLocalRatioMatchingZeroWeightEdgesIgnored(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 0) // dead from the start
	g.AddEdge(2, 3, 1)
	m := LocalRatioMatching(g)
	if len(m) != 1 || m[0] != 1 {
		t.Fatalf("matching = %v, want only the positive edge", m)
	}
}

func TestMatchingLocalRatioProcessingOrderIrrelevantForBound(t *testing.T) {
	// Theorem 5.1 holds for ANY processing order; verify across random
	// permutations on one instance.
	r := rng.New(140)
	g := graph.GNM(7, 12, r)
	g.AssignUniformWeights(r, 1, 10)
	opt := BruteForceMatching(g)
	for trial := 0; trial < 30; trial++ {
		lr := NewMatchingLocalRatio(g)
		for _, id := range r.Perm(g.M()) {
			lr.Push(id)
		}
		w := graph.MatchingWeight(g, lr.Unwind())
		if 2*w < opt-1e-9 {
			t.Fatalf("trial %d: order broke the 2-approximation: %v vs OPT %v", trial, w, opt)
		}
	}
}

func TestBMatchingLocalRatioOrderIrrelevantForBound(t *testing.T) {
	r := rng.New(141)
	g := graph.GNM(6, 10, r)
	g.AssignUniformWeights(r, 1, 10)
	b := func(int) int { return 2 }
	eps := 0.2
	opt := BruteForceBMatching(g, b)
	bound := 3 - 2.0/2 + 2*eps
	for trial := 0; trial < 30; trial++ {
		lr := NewBMatchingLocalRatio(g, b, eps)
		for _, id := range r.Perm(g.M()) {
			lr.Push(id)
		}
		sel := lr.Unwind()
		if !graph.IsBMatching(g, sel, b) {
			t.Fatalf("trial %d: invalid", trial)
		}
		if w := graph.MatchingWeight(g, sel); bound*w < opt-1e-9 {
			t.Fatalf("trial %d: %v vs OPT %v breaks bound %v", trial, w, opt, bound)
		}
	}
}

func TestGreedySetCoverSingletonSets(t *testing.T) {
	// Only singleton sets: greedy must pick the cheapest set per element.
	inst := &setcover.Instance{
		NumElements: 3,
		Sets:        [][]int{{0}, {0}, {1}, {2}},
		Weights:     []float64{5, 1, 1, 1},
	}
	cover := GreedySetCover(inst, 0)
	if !inst.IsCover(cover) {
		t.Fatal("not a cover")
	}
	if w := inst.Weight(cover); w != 3 {
		t.Fatalf("weight %v, want 3 (cheapest per element)", w)
	}
}

func TestGreedySetCoverDeterministic(t *testing.T) {
	r := rng.New(142)
	inst := setcover.RandomSized(20, 30, 6, 5, r)
	a := GreedySetCover(inst, 0.2)
	b := GreedySetCover(inst, 0.2)
	if len(a) != len(b) {
		t.Fatal("non-deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic pick order")
		}
	}
}

func TestBruteForceSetCoverAgreesWithVertexCover(t *testing.T) {
	// The two independent exact solvers must agree through the reduction.
	r := rng.New(143)
	for trial := 0; trial < 15; trial++ {
		g := graph.GNM(7, 10, r)
		w := make([]float64, g.N)
		for i := range w {
			w[i] = r.UniformWeight(1, 5)
		}
		_, optVC := BruteForceVertexCover(g, w)
		inst := setcover.FromVertexCover(g, w)
		_, optSC := BruteForceSetCover(inst)
		if math.Abs(optVC-optSC) > 1e-9 {
			t.Fatalf("trial %d: VC OPT %v != SC OPT %v", trial, optVC, optSC)
		}
	}
}

func TestCoverLocalRatioResidualNeverNegative(t *testing.T) {
	r := rng.New(144)
	f := func(s uint8) bool {
		inst := setcover.RandomFrequency(6, 12, 3, 5, r)
		lr := NewCoverLocalRatio(inst)
		for _, j := range r.Perm(inst.NumElements) {
			lr.Process(j)
			for i := 0; i < inst.NumSets(); i++ {
				if lr.Residual(i) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMisraGriesBipartiteUsesAtMostDeltaPlusOne(t *testing.T) {
	// König: bipartite graphs are ∆-edge-colourable; Misra-Gries guarantees
	// ∆+1, so assert ≤ ∆+1 and proper.
	r := rng.New(145)
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomBipartite(8, 10, 30, r)
		col := MisraGries(g)
		if !graph.IsProperEdgeColouring(g, col) {
			t.Fatalf("trial %d: improper", trial)
		}
		if graph.NumColours(col) > g.MaxDegree()+1 {
			t.Fatalf("trial %d: too many colours", trial)
		}
	}
}

func TestGreedyVertexColouringPathTwoColours(t *testing.T) {
	col := GreedyVertexColouring(graph.Path(10), nil)
	if graph.NumColours(col) != 2 {
		t.Fatalf("path coloured with %d colours, want 2", graph.NumColours(col))
	}
}

func TestGreedyMISIsolatedVertices(t *testing.T) {
	g := graph.New(5) // no edges at all
	set := GreedyMIS(g, nil)
	if len(set) != 5 {
		t.Fatalf("MIS of empty graph must be all vertices, got %d", len(set))
	}
}

func TestUnwindEmptyStack(t *testing.T) {
	lr := NewMatchingLocalRatio(graph.New(3))
	if m := lr.Unwind(); len(m) != 0 {
		t.Fatal("unwinding empty stack")
	}
	blr := NewBMatchingLocalRatio(graph.New(3), func(int) int { return 1 }, 0)
	if m := blr.Unwind(); len(m) != 0 {
		t.Fatal("unwinding empty b-stack")
	}
}
