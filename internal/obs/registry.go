// Package obs is the repo's dependency-free observability kernel: a
// concurrent metrics registry with deterministic Prometheus-style
// plain-text exposition (registry.go, histogram.go), and a streaming
// phase-timed round-trace layer (trace.go, ring.go, perfetto.go) that the
// simulator feeds and the daemons export.
//
// # Determinism vs. timing
//
// The repo's core invariant is bit-identity: results, model metrics
// (mpc.Metrics) and model traces (mpc.RoundStat) are identical across
// executors, shard counts and transports. Wall-clock measurements can
// never satisfy that, so this package keeps them strictly segregated:
// timing lives only in RoundSpan records streamed to a TraceSink, never
// in the model structs the equivalence suites compare. Attaching or
// detaching a sink changes nothing observable about an execution except
// the stream itself.
//
// # Exposition determinism
//
// WriteText renders collectors in registration order, and each collector
// renders its own lines deterministically (CounterSet sorts its names).
// Two registries built by the same code therefore emit byte-identical
// documents for the same counter values — the property the mrserve
// /metrics golden test pins.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Collector renders one or more exposition lines. Implementations must be
// safe for concurrent use with their own update methods.
type Collector interface {
	// AppendText appends complete exposition lines (no trailing newline per
	// line) to dst and returns the extended slice.
	AppendText(dst []string) []string
}

// Registry is an ordered set of collectors. Registration order is
// rendering order, which is what keeps the exposition format stable:
// callers lay out the document once, at wiring time.
type Registry struct {
	mu   sync.Mutex
	cols []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector to the rendering order.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.cols = append(r.cols, c)
	r.mu.Unlock()
}

// WriteText renders every collector's lines in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	var lines []string
	for _, c := range r.cols {
		lines = c.AppendText(lines)
	}
	r.mu.Unlock()
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	name string
	v    atomic.Uint64
}

// NewCounter returns a counter rendered as "<name> <value>".
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// AppendText implements Collector.
func (c *Counter) AppendText(dst []string) []string {
	return append(dst, fmt.Sprintf("%s %d", c.name, c.v.Load()))
}

// GaugeFunc exposes an externally owned value — e.g. one leg of a
// process-wide totals struct — as a single exposition line, read at
// render time.
type GaugeFunc struct {
	name string
	fn   func() uint64
}

// NewGaugeFunc returns a gauge rendered as "<name> <fn()>".
func NewGaugeFunc(name string, fn func() uint64) *GaugeFunc {
	return &GaugeFunc{name: name, fn: fn}
}

// AppendText implements Collector.
func (g *GaugeFunc) AppendText(dst []string) []string {
	return append(dst, fmt.Sprintf("%s %d", g.name, g.fn()))
}

// CounterSet is a dynamic family of named counters sharing a prefix,
// rendered in sorted-name order — the shape of mrserve's service
// counters, where names appear as jobs complete.
type CounterSet struct {
	prefix string
	mu     sync.Mutex
	v      map[string]uint64
}

// NewCounterSet returns an empty set; each counter renders as
// "<prefix><name> <value>".
func NewCounterSet(prefix string) *CounterSet {
	return &CounterSet{prefix: prefix, v: make(map[string]uint64)}
}

// Add increments the named counter by delta, creating it at zero first.
// A zero delta therefore materializes the counter as an explicit 0 line.
func (s *CounterSet) Add(name string, delta uint64) {
	s.mu.Lock()
	s.v[name] += delta
	s.mu.Unlock()
}

// Set overwrites the named counter, creating it if needed. It lets a
// CounterSet carry gauge-like values (a 0/1 degradation flag, a record
// count) inside the same sorted exposition block as its counters.
func (s *CounterSet) Set(name string, value uint64) {
	s.mu.Lock()
	s.v[name] = value
	s.mu.Unlock()
}

// Value returns the named counter (0 if never added).
func (s *CounterSet) Value(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v[name]
}

// AppendText implements Collector: one line per counter, names sorted.
func (s *CounterSet) AppendText(dst []string) []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.v))
	for name := range s.v {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dst = append(dst, fmt.Sprintf("%s%s %d", s.prefix, name, s.v[name]))
	}
	s.mu.Unlock()
	return dst
}
