package obs

import "sync"

// RingSink is a TraceSink retaining the most recent spans in a fixed-size
// ring — the in-memory trace behind mrserve's /v1/jobs/{id}/trace. Older
// spans are overwritten; Dropped counts them. Each slot owns its
// ShardWords backing array and reuses it across laps, so a steady-state
// traced round costs two small copies and no allocation once the ring is
// warm. Safe for concurrent use.
type RingSink struct {
	mu      sync.Mutex
	slots   []RoundSpan
	next    int // slot the next span lands in
	filled  int // live slots, <= len(slots)
	dropped uint64
}

// NewRingSink returns a ring retaining the last capacity spans
// (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{slots: make([]RoundSpan, capacity)}
}

// RoundDone implements TraceSink.
func (r *RingSink) RoundDone(s RoundSpan) {
	r.mu.Lock()
	slot := &r.slots[r.next]
	buf := slot.ShardWords[:0]
	*slot = s
	slot.ShardWords = append(buf, s.ShardWords...)
	r.next = (r.next + 1) % len(r.slots)
	if r.filled < len(r.slots) {
		r.filled++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Close implements TraceSink; the ring stays readable.
func (r *RingSink) Close() error { return nil }

// Len returns the number of retained spans.
func (r *RingSink) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filled
}

// Dropped returns how many spans were overwritten by newer ones.
func (r *RingSink) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot returns the retained spans oldest-first. The spans and their
// ShardWords are deep copies, safe to hold while the ring keeps rolling.
func (r *RingSink) Snapshot() []RoundSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RoundSpan, 0, r.filled)
	start := r.next - r.filled
	if start < 0 {
		start += len(r.slots)
	}
	for i := 0; i < r.filled; i++ {
		s := r.slots[(start+i)%len(r.slots)]
		if s.ShardWords != nil {
			s.ShardWords = append([]int64(nil), s.ShardWords...)
		}
		out = append(out, s)
	}
	return out
}
