package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// parsedEvent mirrors traceEvent for decoding sink output in tests.
type parsedEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// goldenSpans is a deterministic two-cluster trace: fixed times, sharded
// and unsharded rounds, a replay round.
func goldenSpans() []RoundSpan {
	t0 := time.Unix(1700000000, 0).UTC()
	at := func(us int64) time.Time { return t0.Add(time.Duration(us) * time.Microsecond) }
	return []RoundSpan{
		{
			Label: "mis n=1000", Cluster: 1, Round: 1,
			Active: 64, MaxLoad: 4096, Words: 1234, Messages: 321,
			Start: at(0), End: at(900),
			Compute: 500 * time.Microsecond, Merge: 250 * time.Microsecond,
			Barrier:    100 * time.Microsecond,
			ShardWords: []int64{0, 617, 617},
		},
		{
			Label: "mis n=1000", Cluster: 1, Round: 2,
			Active: 8, MaxLoad: 4096, Words: 99, Messages: 12,
			Start: at(1000), End: at(1400),
			Compute: 120 * time.Microsecond, Merge: 80 * time.Microsecond,
			Replay:     150 * time.Microsecond,
			ShardWords: []int64{0, 0, 0},
		},
		{
			Label: "", Cluster: 2, Round: 1,
			Active: 16, MaxLoad: 512, Words: 50, Messages: 5,
			Start: at(1200), End: at(1300),
			Compute: 60 * time.Microsecond, Merge: 30 * time.Microsecond,
		},
		{
			// Quiet round: no compute, bookkeeping only.
			Label: "mis n=1000", Cluster: 1, Round: 3,
			MaxLoad: 4096,
			Start:   at(1500), End: at(1502),
			Merge: 2 * time.Microsecond,
		},
	}
}

// renderGolden runs the golden spans through a sink pinned to the golden
// zero timestamp and returns the file bytes.
func renderGolden(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := NewChromeTraceAt(&buf, time.Unix(1700000000, 0).UTC())
	for _, s := range goldenSpans() {
		sink.RoundDone(s)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// decodeTrace parses sink output and returns the traceEvents array.
func decodeTrace(t *testing.T, raw []byte) []parsedEvent {
	t.Helper()
	var doc struct {
		TraceEvents []parsedEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, raw)
	}
	return doc.TraceEvents
}

// TestChromeTraceGolden pins the exporter's exact output. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/obs -run TestChromeTraceGolden
func TestChromeTraceGolden(t *testing.T) {
	got := renderGolden(t)
	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace output drifted from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestChromeTraceRoundTrip checks the output is strict JSON carrying
// every span: one named track per cluster, one round event per span with
// the model quantities intact, and the phase children.
func TestChromeTraceRoundTrip(t *testing.T) {
	events := decodeTrace(t, renderGolden(t))
	spans := goldenSpans()

	rounds := 0
	tracks := map[int64]string{}
	for _, ev := range events {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			name, _ := ev.Args["name"].(string)
			tracks[ev.Tid] = name
		case ev.Cat == "round":
			rounds++
		}
	}
	if rounds != len(spans) {
		t.Errorf("%d round events for %d spans", rounds, len(spans))
	}
	if len(tracks) != 2 {
		t.Errorf("expected 2 named tracks, got %v", tracks)
	}
	if tracks[1] != "mis n=1000" {
		t.Errorf("cluster 1 track name = %q", tracks[1])
	}
	if tracks[2] != "cluster 2" {
		t.Errorf("cluster 2 track name = %q", tracks[2])
	}
	// The first span's model quantities survive into the round args.
	for _, ev := range events {
		if ev.Cat == "round" && ev.Tid == 1 && ev.Name == "round 1" {
			if ev.Args["words"].(float64) != 1234 || ev.Args["active"].(float64) != 64 {
				t.Errorf("round 1 args lost model quantities: %v", ev.Args)
			}
			sw, ok := ev.Args["shard_wire_words"].([]any)
			if !ok || len(sw) != 3 || sw[1].(float64) != 617 {
				t.Errorf("round 1 shard_wire_words = %v", ev.Args["shard_wire_words"])
			}
		}
	}
}

// TestChromeTraceValidNesting checks every phase event lies within its
// round event on the same track — the property that makes Perfetto render
// phases as children instead of overlapping slices.
func TestChromeTraceValidNesting(t *testing.T) {
	events := decodeTrace(t, renderGolden(t))
	const eps = 1e-6
	for _, ph := range events {
		if ph.Cat != "phase" {
			continue
		}
		nested := false
		for _, round := range events {
			if round.Cat != "round" || round.Tid != ph.Tid {
				continue
			}
			if ph.Ts >= round.Ts-eps && ph.Ts+ph.Dur <= round.Ts+round.Dur+eps {
				nested = true
				break
			}
		}
		if !nested {
			t.Errorf("phase %q at ts=%g dur=%g tid=%d not nested in any round event",
				ph.Name, ph.Ts, ph.Dur, ph.Tid)
		}
	}
}

// TestChromeTraceMonotonicTimestamps checks timestamps never go backwards
// within a track (rounds are emitted in order per cluster; phases advance
// a cursor from the round start).
func TestChromeTraceMonotonicTimestamps(t *testing.T) {
	events := decodeTrace(t, renderGolden(t))
	last := map[int64]float64{}
	lastRound := map[int64]float64{}
	for _, ev := range events {
		if ev.Ph == "M" {
			continue
		}
		switch ev.Cat {
		case "round":
			if ev.Ts < lastRound[ev.Tid] {
				t.Errorf("round event %q ts=%g precedes previous round ts=%g on tid %d",
					ev.Name, ev.Ts, lastRound[ev.Tid], ev.Tid)
			}
			lastRound[ev.Tid] = ev.Ts
			last[ev.Tid] = ev.Ts
		case "phase":
			if ev.Ts < last[ev.Tid] {
				t.Errorf("phase %q ts=%g precedes previous event ts=%g on tid %d",
					ev.Name, ev.Ts, last[ev.Tid], ev.Tid)
			}
			last[ev.Tid] = ev.Ts
		}
	}
}

// TestChromeTraceEmptyClose checks a sink closed with no spans still
// writes a valid, loadable document.
func TestChromeTraceEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeTrace(&buf)
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if events := decodeTrace(t, buf.Bytes()); len(events) != 1 {
		t.Fatalf("empty trace should carry only the sentinel, got %d events", len(events))
	}
	// Close is idempotent.
	if err := sink.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestChromeTraceFile exercises the file constructor end to end.
func TestChromeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	sink, err := NewChromeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.RoundDone(goldenSpans()[0])
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if events := decodeTrace(t, raw); len(events) < 2 {
		t.Fatalf("file trace too small: %d events", len(events))
	}
}
