package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// render returns the registry document as a line slice (no trailing "").
func render(t *testing.T, r *Registry) []string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := strings.Split(sb.String(), "\n")
	if len(out) > 0 && out[len(out)-1] == "" {
		out = out[:len(out)-1]
	}
	return out
}

func TestRegistryRendersInRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("z_first")
	c.Add(7)
	r.Register(c)
	set := NewCounterSet("app_")
	set.Add("b", 2)
	set.Add("a", 1)
	r.Register(set)
	r.Register(NewGaugeFunc("a_last", func() uint64 { return 42 }))

	want := []string{
		"z_first 7",
		"app_a 1",
		"app_b 2",
		"a_last 42",
	}
	got := render(t, r)
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCounterSetZeroDeltaMaterializes(t *testing.T) {
	set := NewCounterSet("p_")
	set.Add("seeded", 0)
	got := set.AppendText(nil)
	if len(got) != 1 || got[0] != "p_seeded 0" {
		t.Fatalf("zero-delta counter not materialized: %v", got)
	}
}

func TestHistogramRendering(t *testing.T) {
	h := NewHistogram("lat", 3) // bounds 1, 2, 4
	h.Observe(0.5)              // le=1
	h.Observe(2)                // le=2
	h.Observe(3)                // le=4
	h.Observe(100)              // +Inf
	want := []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="4"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_sum 105.500",
		"lat_count 4",
	}
	got := h.AppendText(nil)
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}
}

// TestRegistryConcurrency hammers every collector type from many
// goroutines while concurrently rendering; run under -race this is the
// registry's thread-safety proof, and the final totals check that no
// update was lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("c")
	set := NewCounterSet("s_")
	h := NewHistogram("h", 8)
	r.Register(c)
	r.Register(set)
	r.Register(h)

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("k%d", w%4)
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				set.Add(name, 1)
				h.Observe(float64(i % 300))
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Errorf("concurrent WriteText: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Errorf("counter lost updates: %d != %d", c.Value(), workers*perWorker)
	}
	total := uint64(0)
	for k := 0; k < 4; k++ {
		total += set.Value(fmt.Sprintf("k%d", k))
	}
	if total != workers*perWorker {
		t.Errorf("counter set lost updates: %d != %d", total, workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram lost observations: %d != %d", h.Count(), workers*perWorker)
	}
}
