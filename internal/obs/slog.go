package obs

import (
	"context"
	"log/slog"
)

// nopHandler drops every record without formatting it. Enabled returns
// false, so callers skip attribute evaluation entirely — a daemon built
// without -log pays nothing for its lifecycle logging calls.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that discards everything. Components take a
// *slog.Logger and substitute this for nil so call sites never need a nil
// check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
