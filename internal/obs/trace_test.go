package obs

import (
	"testing"
	"time"
)

// span returns a synthetic round span with deterministic timestamps.
func span(round int, shardWords []int64) RoundSpan {
	base := time.Unix(1000, 0).Add(time.Duration(round) * time.Millisecond)
	return RoundSpan{
		Label:      "test",
		Cluster:    1,
		Round:      round,
		Active:     round * 2,
		MaxLoad:    100 + round,
		Words:      int64(10 * round),
		Messages:   round,
		Start:      base,
		End:        base.Add(900 * time.Microsecond),
		Compute:    400 * time.Microsecond,
		Merge:      300 * time.Microsecond,
		Barrier:    200 * time.Microsecond,
		ShardWords: shardWords,
	}
}

func TestRingSinkRetainsNewestOldestFirst(t *testing.T) {
	r := NewRingSink(4)
	scratch := []int64{0, 0}
	for round := 1; round <= 10; round++ {
		// Reuse one scratch slice like the simulator does: the sink must
		// copy, not retain.
		scratch[0], scratch[1] = int64(round), int64(round*2)
		r.RoundDone(span(round, scratch))
	}
	if r.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", r.Dropped())
	}
	got := r.Snapshot()
	for i, s := range got {
		wantRound := 7 + i
		if s.Round != wantRound {
			t.Errorf("snapshot[%d].Round = %d, want %d", i, s.Round, wantRound)
		}
		if len(s.ShardWords) != 2 || s.ShardWords[0] != int64(wantRound) {
			t.Errorf("snapshot[%d].ShardWords = %v, want [%d %d] (scratch not copied?)",
				i, s.ShardWords, wantRound, wantRound*2)
		}
	}
	// Mutating the snapshot must not reach the ring's slots.
	got[0].ShardWords[0] = -1
	if again := r.Snapshot(); again[0].ShardWords[0] == -1 {
		t.Error("Snapshot shares ShardWords backing with the ring")
	}
}

func TestRingSinkPartialFill(t *testing.T) {
	r := NewRingSink(8)
	r.RoundDone(span(1, nil))
	r.RoundDone(span(2, nil))
	got := r.Snapshot()
	if len(got) != 2 || got[0].Round != 1 || got[1].Round != 2 {
		t.Fatalf("partial snapshot wrong: %+v", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped() = %d on a non-full ring", r.Dropped())
	}
}

func TestMultiSinkFanOutAndNilFiltering(t *testing.T) {
	if MultiSink() != nil {
		t.Error("MultiSink() should be nil")
	}
	if MultiSink(nil, nil) != nil {
		t.Error("MultiSink(nil, nil) should be nil")
	}
	solo := NewRingSink(2)
	if MultiSink(nil, solo) != TraceSink(solo) {
		t.Error("MultiSink with one live sink should return it directly")
	}
	a, b := NewRingSink(4), NewRingSink(4)
	m := MultiSink(a, nil, b)
	m.RoundDone(span(1, nil))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out missed a sink: a=%d b=%d", a.Len(), b.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestPhaseAccumulatorMeans(t *testing.T) {
	var acc PhaseAccumulator
	if m := acc.Means(); m.Rounds != 0 || m.ComputeUS != 0 {
		t.Fatalf("empty accumulator means = %+v", m)
	}
	acc.RoundDone(RoundSpan{Compute: 100 * time.Microsecond, Merge: 50 * time.Microsecond})
	acc.RoundDone(RoundSpan{Compute: 300 * time.Microsecond, Barrier: 80 * time.Microsecond})
	m := acc.Means()
	if m.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", m.Rounds)
	}
	if m.ComputeUS != 200 {
		t.Errorf("ComputeUS = %g, want 200", m.ComputeUS)
	}
	if m.MergeUS != 25 {
		t.Errorf("MergeUS = %g, want 25", m.MergeUS)
	}
	if m.BarrierUS != 40 {
		t.Errorf("BarrierUS = %g, want 40", m.BarrierUS)
	}
}
