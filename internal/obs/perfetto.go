package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// ChromeTraceSink is a TraceSink streaming spans as a Chrome trace event
// file — the "JSON object format" both chrome://tracing and Perfetto
// load. Each traced cluster becomes one named track (a tid under pid 0);
// every round renders as a complete ("ph":"X") event carrying the model
// quantities in args, with its compute/merge/barrier/replay phases as
// complete events nested inside it back-to-back. Timestamps are
// microseconds relative to the sink's zero point, so a file starts near
// ts 0 no matter when the process booted.
//
// Events are written as they arrive; Close writes the closing bracket and
// flushes. A file abandoned without Close is still salvageable — viewers
// tolerate a truncated event array — but incomplete by contract.
type ChromeTraceSink struct {
	w      io.Writer
	buf    *bufio.Writer
	zero   time.Time
	wrote  bool           // at least one event emitted (comma bookkeeping)
	named  map[int64]bool // cluster tracks with thread_name metadata emitted
	closed bool
	err    error // first write error; subsequent spans are dropped
}

// traceEvent is one entry of the traceEvents array. Field order is the
// serialization order, which keeps output deterministic for golden tests.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int64   `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Args any     `json:"args,omitempty"`
}

// roundArgs annotates a round's parent event with the model quantities.
type roundArgs struct {
	Active     int     `json:"active"`
	Words      int64   `json:"words"`
	Messages   int     `json:"messages"`
	MaxLoad    int     `json:"max_load"`
	ShardWords []int64 `json:"shard_wire_words,omitempty"`
}

// NewChromeTrace returns a sink streaming to w, with the zero timestamp
// taken now. If w implements io.Closer, Close closes it.
func NewChromeTrace(w io.Writer) *ChromeTraceSink {
	return NewChromeTraceAt(w, time.Now())
}

// NewChromeTraceAt pins the zero timestamp explicitly: ts values in the
// file are microseconds since zero. Used by golden tests and by
// coordinators that rebuild a timeline from collected spans after the
// fact (the zero should then be the earliest span start, or ts goes
// negative).
func NewChromeTraceAt(w io.Writer, zero time.Time) *ChromeTraceSink {
	return &ChromeTraceSink{
		w:     w,
		buf:   bufio.NewWriter(w),
		zero:  zero,
		named: make(map[int64]bool),
	}
}

// NewChromeTraceFile creates (or truncates) path and returns a sink
// streaming to it.
func NewChromeTraceFile(path string) (*ChromeTraceSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewChromeTrace(f), nil
}

// us converts a timestamp to trace microseconds relative to the zero
// point, keeping sub-microsecond precision.
func (c *ChromeTraceSink) us(t time.Time) float64 {
	return float64(t.Sub(c.zero).Nanoseconds()) / 1e3
}

// emit writes one event, handling the array syntax and error latching.
func (c *ChromeTraceSink) emit(ev traceEvent) {
	if c.err != nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	if !c.wrote {
		_, c.err = c.buf.WriteString(`{"traceEvents":[` + "\n")
		c.wrote = true
	}
	if c.err == nil {
		_, c.err = c.buf.Write(raw)
	}
	if c.err == nil {
		_, c.err = c.buf.WriteString(",\n")
	}
}

// RoundDone implements TraceSink. Not safe for concurrent use across
// goroutines; wrap per-cluster sinks or serialize externally (the
// simulator calls it from the single goroutine driving the cluster).
func (c *ChromeTraceSink) RoundDone(s RoundSpan) {
	if c.closed {
		return
	}
	if !c.named[s.Cluster] {
		c.named[s.Cluster] = true
		// The label names the track verbatim when set: producers fold their
		// own identity into it (mrshard: "alg shard K"), and same-named
		// tracks stay distinct rows through their tids. Unlabeled clusters
		// fall back to the numeric id.
		name := s.Label
		if name == "" {
			name = fmt.Sprintf("cluster %d", s.Cluster)
		}
		c.emit(traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: s.Cluster,
			Args: map[string]string{"name": name},
		})
	}
	args := roundArgs{
		Active: s.Active, Words: s.Words, Messages: s.Messages,
		MaxLoad: s.MaxLoad,
	}
	if len(s.ShardWords) > 0 {
		args.ShardWords = append([]int64(nil), s.ShardWords...)
	}
	c.emit(traceEvent{
		Name: fmt.Sprintf("round %d", s.Round), Cat: "round", Ph: "X",
		Pid: 0, Tid: s.Cluster,
		Ts: c.us(s.Start), Dur: float64(s.Duration().Nanoseconds()) / 1e3,
		Args: args,
	})
	// Phases nest inside the round event back-to-back from its start; the
	// measured phases partition the round (up to inter-phase instants), so
	// the chain never overruns the parent and timestamps stay monotonic.
	cursor := s.Start
	for _, ph := range [...]struct {
		name string
		d    time.Duration
	}{
		{"compute", s.Compute},
		{"merge", s.Merge},
		{"barrier", s.Barrier},
		{"replay", s.Replay},
	} {
		if ph.d <= 0 {
			continue
		}
		c.emit(traceEvent{
			Name: ph.name, Cat: "phase", Ph: "X", Pid: 0, Tid: s.Cluster,
			Ts: c.us(cursor), Dur: float64(ph.d.Nanoseconds()) / 1e3,
		})
		cursor = cursor.Add(ph.d)
	}
}

// Close implements TraceSink: terminates the event array, flushes, and
// closes the underlying writer if it is a Closer. Idempotent.
func (c *ChromeTraceSink) Close() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	if c.err == nil {
		if !c.wrote {
			_, c.err = c.buf.WriteString(`{"traceEvents":[` + "\n")
		}
		// The trailing ",\n" after the last event is legal in the Chrome
		// format but not strict JSON; close the array with a metadata
		// sentinel so python3 -m json.tool and jq accept the file.
		if c.err == nil {
			_, c.err = c.buf.WriteString(`{"name":"trace_done","ph":"M","pid":0,"tid":0,"ts":0}` + "\n]}\n")
		}
	}
	if err := c.buf.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	if closer, ok := c.w.(io.Closer); ok {
		if err := closer.Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	return c.err
}
