package obs

import (
	"sync"
	"time"
)

// RoundSpan is the wall-clock record of one simulator round, streamed to a
// TraceSink as the round ends. It deliberately duplicates the *model*
// quantities of mpc.RoundStat (round number, words, messages, load,
// activity) next to the *timing* quantities the model must never see:
// phase durations and real timestamps. The model structs stay
// bit-identical across executors and shard counts; spans do not and are
// never compared for identity.
//
// The phase split follows the round structure of mpc.Cluster.Round:
//
//	Compute — the executor running the scheduled RoundFuncs
//	Merge   — post-barrier bookkeeping: the sender walk, inbox assembly,
//	          space accounting (everything after compute except the wire)
//	Barrier — the sharded transport exchange: Send + Barrier + Receive +
//	          ingest (zero when unsharded)
//	Replay  — a detached replay round's exchange phase on a respawned
//	          worker: the round is re-executed locally, so the wire time
//	          it replaces is reported separately from a live barrier
type RoundSpan struct {
	// Label identifies the traced execution (a job id, an algorithm name);
	// empty when the caller never set one.
	Label string
	// Cluster distinguishes concurrently traced clusters within one
	// process; ids are allocated per traced cluster and never reused.
	Cluster int64
	// Round is the 1-based round number (mpc.RoundStat.Round).
	Round int
	// Active is the number of RoundFunc invocations this round.
	Active int
	// MaxLoad is the round's per-machine space high-water mark, in words.
	MaxLoad int
	// Words and Messages are the traffic delivered into next-round inboxes.
	Words    int64
	Messages int

	// Start and End bound the round in real time.
	Start, End time.Time
	// Compute, Merge, Barrier and Replay partition End.Sub(Start) (up to
	// the instants between phases); see the phase split above.
	Compute, Merge, Barrier, Replay time.Duration

	// ShardWords[t] is the wire words this process shipped to shard t this
	// round (nil when unsharded). The slice is scratch owned by the
	// producer, valid only during the RoundDone call — sinks that retain
	// the span must copy it.
	ShardWords []int64
}

// Duration returns the round's total wall-clock time.
func (s RoundSpan) Duration() time.Duration { return s.End.Sub(s.Start) }

// TraceSink consumes round spans. RoundDone is called synchronously at
// the end of every traced round, from whichever goroutine drives the
// cluster; a sink shared across clusters must be safe for concurrent use.
// Close flushes and releases the sink (file sinks write their trailer).
type TraceSink interface {
	RoundDone(s RoundSpan)
	Close() error
}

// multiSink fans spans out to several sinks.
type multiSink struct {
	sinks []TraceSink
}

// MultiSink returns a sink that forwards every span to each of sinks in
// order and closes them all (returning the first error). Nil entries are
// skipped; with zero or one live sinks the sink (or nil) is returned
// directly.
func MultiSink(sinks ...TraceSink) TraceSink {
	live := make([]TraceSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multiSink{sinks: live}
}

func (m *multiSink) RoundDone(s RoundSpan) {
	for _, sink := range m.sinks {
		sink.RoundDone(s)
	}
}

func (m *multiSink) Close() error {
	var first error
	for _, sink := range m.sinks {
		if err := sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PhaseAccumulator is a TraceSink that folds spans into per-phase totals —
// the aggregate mrbench reports per experiment. Safe for concurrent use.
type PhaseAccumulator struct {
	mu      sync.Mutex
	rounds  int64
	compute time.Duration
	merge   time.Duration
	barrier time.Duration
	replay  time.Duration
}

// PhaseMeans is an accumulator snapshot: mean microseconds per round for
// each phase across every observed round.
type PhaseMeans struct {
	Rounds    int64   `json:"rounds"`
	ComputeUS float64 `json:"compute_us"`
	MergeUS   float64 `json:"merge_us"`
	BarrierUS float64 `json:"barrier_us"`
	ReplayUS  float64 `json:"replay_us,omitempty"`
}

// RoundDone implements TraceSink.
func (a *PhaseAccumulator) RoundDone(s RoundSpan) {
	a.mu.Lock()
	a.rounds++
	a.compute += s.Compute
	a.merge += s.Merge
	a.barrier += s.Barrier
	a.replay += s.Replay
	a.mu.Unlock()
}

// Close implements TraceSink; it keeps the totals readable.
func (a *PhaseAccumulator) Close() error { return nil }

// Means returns the per-round phase means observed so far.
func (a *PhaseAccumulator) Means() PhaseMeans {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := PhaseMeans{Rounds: a.rounds}
	if a.rounds == 0 {
		return m
	}
	per := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / float64(a.rounds)
	}
	m.ComputeUS = per(a.compute)
	m.MergeUS = per(a.merge)
	m.BarrierUS = per(a.barrier)
	m.ReplayUS = per(a.replay)
	return m
}
