package obs

import (
	"fmt"
	"sync"
)

// Histogram is a fixed-size power-of-two-bucket histogram: bucket i counts
// observations <= 2^i, observations beyond the last bound land in +Inf.
// It renders in the cumulative Prometheus style:
//
//	<name>_bucket{le="1"} c0
//	<name>_bucket{le="2"} c0+c1
//	...
//	<name>_bucket{le="+Inf"} total
//	<name>_sum s
//	<name>_count n
//
// which is byte-for-byte the format mrserve's /metrics has always used
// for its latency and activity histograms.
type Histogram struct {
	name string

	mu      sync.Mutex
	buckets []uint64
	over    uint64
	sum     float64
	count   uint64
}

// NewHistogram returns a histogram with bounds 1, 2, 4, ..., 2^(buckets-1).
func NewHistogram(name string, buckets int) *Histogram {
	return &Histogram{name: name, buckets: make([]uint64, buckets)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.sum += v
	h.count++
	bound := 1.0
	placed := false
	for i := range h.buckets {
		if v <= bound {
			h.buckets[i]++
			placed = true
			break
		}
		bound *= 2
	}
	if !placed {
		h.over++
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// AppendText implements Collector.
func (h *Histogram) AppendText(dst []string) []string {
	h.mu.Lock()
	cum := uint64(0)
	bound := 1
	for i := range h.buckets {
		cum += h.buckets[i]
		dst = append(dst, fmt.Sprintf("%s_bucket{le=%q} %d", h.name, fmt.Sprint(bound), cum))
		bound *= 2
	}
	dst = append(dst,
		fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", h.name, cum+h.over),
		fmt.Sprintf("%s_sum %.3f", h.name, h.sum),
		fmt.Sprintf("%s_count %d", h.name, h.count))
	h.mu.Unlock()
	return dst
}
