package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ledger"
	"repro/internal/mpc"
	"repro/internal/obs"
)

// JobRequest is one job submission: run an algorithm on an instance with a
// seed. The tuple (Instance, Alg, canonical Args, Mu, Seed) fully
// determines the Result.
type JobRequest struct {
	Instance InstanceSpec       `json:"instance"`
	Alg      string             `json:"alg"`
	Args     map[string]float64 `json:"args,omitempty"`
	// Mu is the space exponent µ (core.Params.Mu). nil means the default
	// 0.2; explicit 0 selects the linear-space regime.
	Mu   *float64 `json:"mu,omitempty"`
	Seed uint64   `json:"seed"`
}

// defaultMu mirrors cmd/mrrun's -mu default.
const defaultMu = 0.2

// ErrQueueFull reports transient backpressure: the execution queue is at
// capacity. Unlike validation errors, the same request can succeed once
// in-flight work drains (the HTTP layer maps it to 503).
var ErrQueueFull = errors.New("service: job queue full")

// Result is the deterministic outcome of a job: identical for the same
// request whether served cold, coalesced, or from the result cache.
type Result struct {
	InstanceID string             `json:"instance_id"`
	Alg        string             `json:"alg"`
	Args       map[string]float64 `json:"args,omitempty"`
	Mu         float64            `json:"mu"`
	Seed       uint64             `json:"seed"`
	core.RunResult
}

// JobStatus is the lifecycle state of a job.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Source records which serving path answered a job.
type Source string

const (
	SourceRun    Source = "run"    // this job's flight executed the algorithm
	SourceBatch  Source = "batch"  // coalesced into an identical in-flight job
	SourceCache  Source = "cache"  // answered from the LRU result store
	SourceLedger Source = "ledger" // recovered from the durable job ledger
)

// Job is one submitted job's mutable record. Fields are guarded by the
// engine mutex; Snapshot returns a consistent copy and Done signals
// completion.
type Job struct {
	ID     string
	Key    string
	Source Source
	Status JobStatus
	Result *Result
	Err    string

	created  time.Time
	finished time.Time
	done     chan struct{}
	// flight is the execution this job is attached to, nil for cache hits;
	// Engine.Abandon uses it to withdraw this job's interest in the result.
	flight *flight
}

// JobView is the JSON projection of a Job.
type JobView struct {
	ID       string    `json:"id"`
	Status   JobStatus `json:"status"`
	Source   Source    `json:"source,omitempty"`
	Result   *Result   `json:"result,omitempty"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished"`
}

// Engine is the concurrent job engine: a bounded worker pool over the
// instance cache, the single-flight batcher, and the LRU result store.
type Engine struct {
	cfg       Config
	metrics   *Metrics
	log       *slog.Logger
	instances *instanceCache
	transport mpc.TransportFactory // resolved once from cfg (nil = in-memory)
	ledger    *ledger.Ledger       // durable job ledger; nil when disabled
	// ledgerRecoveryErr remembers a failed startup recovery (corrupt chain
	// on disk): the ledger above is then a memory-only substitute and every
	// verification must keep reporting the damaged on-disk history instead
	// of the substitute's clean chain. Written once in openLedger, before
	// any concurrency; read-only after.
	ledgerRecoveryErr error

	mu      sync.Mutex
	closed  bool
	batch   *batcher
	results *resultStore
	jobs    map[string]*Job
	jobSeq  uint64
	history []string // job ids in creation order, for bounded retention

	queue chan *flight
	wg    sync.WaitGroup
}

// NewEngine starts an engine with cfg's worker pool.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	e := &Engine{
		cfg:       cfg,
		metrics:   m,
		log:       cfg.logger(),
		instances: newInstanceCache(cfg.Instances, cfg.DataDir, m),
		transport: cfg.transport(),
		batch:     newBatcher(),
		results:   newResultStore(cfg.Results),
		jobs:      make(map[string]*Job),
		queue:     make(chan *flight, cfg.QueueDepth),
	}
	// Export the configured shard count as a gauge so operators can tell a
	// sharded deployment from /metrics alone.
	m.inc("shards", uint64(cfg.Shards))
	// Seed the degradation counters so they render as explicit zeros in
	// /metrics before the first incident.
	m.inc("fallback_unsharded_total", 0)
	m.inc("jobs_abandoned_total", 0)
	// flights_executed_total renders as an explicit zero from the start so
	// a restarted server can prove "everything served from the ledger,
	// nothing re-executed" straight off /metrics.
	m.inc("flights_executed_total", 0)
	// Open (and, after a crash, recover) the durable job ledger before any
	// job can complete, so the chain never misses a record.
	e.openLedger()
	for i := 0; i < cfg.Pool; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Metrics exposes the engine's metrics set (for GET /metrics).
func (e *Engine) Metrics() *Metrics { return e.metrics }

// jobKey canonicalizes a request into the batching/caching key.
func jobKey(instanceID, alg string, args map[string]float64, mu float64, seed uint64) string {
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "inst=%s alg=%s mu=%g seed=%d", instanceID, alg, mu, seed)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%g", k, args[k])
	}
	return b.String()
}

// Submit validates a request and enqueues (or instantly answers) a job.
// The returned Job's Done channel closes on completion.
func (e *Engine) Submit(req JobRequest) (*Job, error) {
	alg, ok := core.LookupAlgorithm(req.Alg)
	if !ok {
		return nil, fmt.Errorf("service: unknown algorithm %q", req.Alg)
	}
	args, err := alg.CanonArgs(req.Args)
	if err != nil {
		return nil, err
	}
	if err := req.Instance.Validate(); err != nil {
		return nil, err
	}
	if !req.Instance.Provides(alg.Input) {
		return nil, fmt.Errorf("service: instance type %q does not provide the %s input algorithm %q needs",
			req.Instance.Type, alg.Input, req.Alg)
	}
	instID, err := SpecID(req.Instance)
	if err != nil {
		return nil, err
	}
	mu := defaultMu
	if req.Mu != nil {
		mu = *req.Mu
	}
	key := jobKey(instID, req.Alg, args, mu, req.Seed)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("service: engine is shut down")
	}
	e.jobSeq++
	j := &Job{
		ID:      fmt.Sprintf("j-%08d", e.jobSeq),
		Key:     key,
		Status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	e.jobs[j.ID] = j
	e.history = append(e.history, j.ID)
	e.pruneHistoryLocked()
	e.metrics.inc("jobs_submitted_total", 1)

	if res, ok := e.results.get(key); ok {
		j.Source = SourceCache
		e.finishLocked(j, res, nil)
		e.metrics.inc("jobs_cache_hits_total", 1)
		e.log.Info("job served from cache", "job", j.ID, "alg", req.Alg, "instance", instID)
		return j, nil
	}
	if res, ok := e.ledgerLookup(key); ok {
		// The durable chain remembers jobs the volatile LRU has never seen
		// (a restart) or has evicted. Promote the record into the LRU and
		// answer without re-executing — the payload's hash was checked
		// against the chain, and the chain is the determinism contract.
		j.Source = SourceLedger
		e.results.put(key, res)
		e.finishLocked(j, res, nil)
		e.metrics.inc("ledger_hits_total", 1)
		e.log.Info("job served from ledger", "job", j.ID, "alg", req.Alg, "instance", instID)
		return j, nil
	}
	f, leader := e.batch.attach(key, j, func() *flight {
		ctx, cancel := context.WithCancel(context.Background())
		f := &flight{alg: req.Alg, spec: req.Instance, instID: instID,
			args: args, mu: mu, seed: req.Seed, ctx: ctx, cancel: cancel}
		if e.cfg.TraceRounds > 0 {
			f.ring = obs.NewRingSink(e.cfg.TraceRounds)
		}
		return f
	})
	if leader {
		j.Source = SourceRun
		select {
		case e.queue <- f:
		default:
			// Queue full: roll back the flight and the job record.
			e.batch.complete(key)
			f.cancel()
			delete(e.jobs, j.ID)
			e.history = e.history[:len(e.history)-1]
			e.metrics.inc("jobs_rejected_total", 1)
			return nil, fmt.Errorf("%w (%d queued)", ErrQueueFull, e.cfg.QueueDepth)
		}
	} else {
		j.Source = SourceBatch
		e.metrics.inc("jobs_coalesced_total", 1)
	}
	e.log.Info("job submitted", "job", j.ID, "alg", req.Alg, "instance", instID,
		"seed", req.Seed, "source", string(j.Source))
	return j, nil
}

// Abandon withdraws j's interest in its flight's result — the HTTP layer
// calls it when a waiting client disconnects. When every job attached to
// the flight has been abandoned, the flight's context is canceled and the
// execution stops at its next simulator round instead of silently running
// to completion; the jobs then finish failed with the cancellation error.
// Abandoning a completed or cache-served job is a no-op.
func (e *Engine) Abandon(j *Job) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := j.flight
	if f == nil || j.Status == StatusDone || j.Status == StatusFailed {
		return
	}
	e.metrics.inc("jobs_abandoned_total", 1)
	f.waiters--
	if f.waiters <= 0 && f.cancel != nil {
		f.cancel()
	}
}

// Wait blocks until the job completes and returns its final snapshot.
func (j *Job) Wait() { <-j.done }

// Done returns the completion channel.
func (j *Job) Done() <-chan struct{} { return j.done }

// Get returns a snapshot of the job with the given id.
func (e *Engine) Get(id string) (JobView, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.viewLocked(), true
}

// Snapshot returns the job's current view.
func (e *Engine) Snapshot(j *Job) JobView {
	e.mu.Lock()
	defer e.mu.Unlock()
	return j.viewLocked()
}

// viewLocked projects the job; requires the engine mutex.
func (j *Job) viewLocked() JobView {
	return JobView{
		ID: j.ID, Status: j.Status, Source: j.Source,
		Result: j.Result, Error: j.Err,
		Created: j.created, Finished: j.finished,
	}
}

// Instances lists the instance cache (GET /v1/instances).
func (e *Engine) Instances() []InstanceInfo { return e.instances.list() }

// Upload decodes graph bytes — any format graph.DecodeAuto accepts — stores
// the built instance in the cache, and returns its content-hash id (the id
// is format-invariant: text, gzip and binary uploads of the same graph
// coincide). Jobs may then reference it as {"type": "upload", "id": id}.
// With Config.DataDir set, the graph is additionally spooled to
// DataDir/<id>.mrg and served zero-copy from the mapped container.
func (e *Engine) Upload(data []byte) (string, InstanceInfo, error) {
	spec := InstanceSpec{Type: "upload", Data: data}
	id, err := SpecID(spec)
	if err != nil {
		return "", InstanceInfo{}, err
	}
	in, err := BuildInstance(spec)
	if err != nil {
		return "", InstanceInfo{}, err
	}
	in = e.spoolInput(id, in)
	e.instances.put(id, spec, in)
	return id, e.uploadInfo(id, in), nil
}

// PreloadFile registers a graph file from local disk as an uploaded
// instance without going through the HTTP body: mrserve -preload. Raw
// binary containers open mapped directly (O(header), zero-copy); other
// formats decode to the heap and, with Config.DataDir set, are spooled and
// remapped. The returned id is the same the file's bytes would get through
// Upload.
func (e *Engine) PreloadFile(path string) (string, InstanceInfo, error) {
	g, err := graph.ReadFile(path)
	if err != nil {
		return "", InstanceInfo{}, err
	}
	canon, err := uploadCanonical(g)
	if err != nil {
		return "", InstanceInfo{}, err
	}
	id := canonicalID(canon)
	in := e.spoolInput(id, core.Input{Graph: g})
	materialize(in)
	e.instances.put(id, InstanceSpec{Type: "upload", ID: id}, in)
	return id, e.uploadInfo(id, in), nil
}

// spoolInput writes the input's graph to the data directory and swaps in
// the mapped form. Without a data directory — or if spooling fails — the
// instance stays on the heap; the spool is an optimization, never a
// correctness requirement.
func (e *Engine) spoolInput(id string, in core.Input) core.Input {
	if e.cfg.DataDir == "" || in.Graph == nil || in.Graph.Mapped() {
		return in
	}
	mg, err := spoolMapped(e.cfg.DataDir, id, in.Graph)
	if err != nil {
		return in
	}
	e.metrics.inc("instances_spooled_total", 1)
	return core.Input{Graph: mg}
}

// uploadInfo summarizes a registered upload.
func (e *Engine) uploadInfo(id string, in core.Input) InstanceInfo {
	info := InstanceInfo{ID: id, Type: "upload", Words: instanceWords(in), Uploaded: true}
	if g := in.Graph; g != nil {
		info.N, info.M, info.Mapped = g.N, g.M(), g.Mapped()
	}
	return info
}

// worker executes flights until the queue closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	for f := range e.queue {
		e.execute(f)
	}
}

// execute runs one flight's algorithm and fans the result out to every
// attached job.
func (e *Engine) execute(f *flight) {
	start := time.Now()
	e.mu.Lock()
	lead := ""
	for _, j := range f.jobs {
		if j.Status == StatusQueued {
			j.Status = StatusRunning
		}
		if lead == "" {
			lead = j.ID
		}
	}
	e.mu.Unlock()
	e.log.Info("flight executing", "job", lead, "alg", f.alg,
		"instance", f.instID, "jobs", len(f.jobs))

	var res *Result
	in, err := e.instances.get(f.instID, f.spec)
	if err == nil {
		var run *core.RunResult
		alg, _ := core.LookupAlgorithm(f.alg)
		run, err = e.run(alg, in, f)
		if err == nil {
			res = &Result{
				InstanceID: f.instID, Alg: f.alg, Args: f.args,
				Mu: f.mu, Seed: f.seed, RunResult: *run,
			}
		}
	}

	e.mu.Lock()
	fl := e.batch.complete(f.key)
	if res != nil {
		e.results.put(f.key, res)
	}
	for _, j := range fl.jobs {
		e.finishLocked(j, res, err)
	}
	e.mu.Unlock()
	if res != nil {
		// Ledger the completed job off the engine mutex: Append chains in
		// memory and returns; the batcher owns the fsync.
		e.recordLedger(f, res)
	}
	if f.cancel != nil {
		f.cancel()
	}
	e.metrics.observeLatency(time.Since(start))
	if err != nil {
		e.metrics.inc("flights_failed_total", 1)
		e.log.Error("flight failed", "job", lead, "alg", f.alg,
			"elapsed", time.Since(start), "err", err)
	} else {
		e.metrics.inc("flights_executed_total", 1)
		e.metrics.observeActivity(res.Metrics)
		e.log.Info("flight done", "job", lead, "alg", f.alg,
			"elapsed", time.Since(start), "rounds", res.Metrics.Rounds)
	}
}

// run executes one flight's algorithm under the engine's sharding and
// transport configuration. A sharded flight that dies with a transport
// error — its fleet unhealthy beyond what recovery could repair — is
// gracefully degraded: the job re-runs unsharded in this process, which is
// bit-identical by construction (sharded and unsharded execution carry the
// same results, metrics and traces), and the incident is counted in
// fallback_unsharded_total. Canceled flights are not retried: their error
// is deliberately not an mpc.ErrTransport, and nobody is waiting.
func (e *Engine) run(alg core.Algorithm, in core.Input, f *flight) (*core.RunResult, error) {
	p := core.Params{Mu: f.mu, Seed: f.seed, Workers: e.cfg.Workers,
		Shards: e.cfg.Shards, Transport: e.transport, Ctx: f.ctx}
	if f.ring != nil {
		// Guarded assignment: an unconditional p.Sink = f.ring would store a
		// typed-nil in the interface and turn tracing "on" with a nil sink.
		p.Sink = f.ring
		p.TraceLabel = f.alg
	}
	run, err := alg.Run(in, p, f.args)
	if err != nil && errors.Is(err, mpc.ErrTransport) && e.cfg.Shards > 1 && !e.cfg.NoFallback {
		e.metrics.inc("fallback_unsharded_total", 1)
		e.log.Warn("sharded flight hit a transport failure; retrying unsharded",
			"alg", f.alg, "instance", f.instID, "err", err)
		p.Shards, p.Transport = 0, nil
		run, err = alg.Run(in, p, f.args)
	}
	return run, err
}

// finishLocked completes a job; requires the engine mutex.
func (e *Engine) finishLocked(j *Job, res *Result, err error) {
	if err != nil {
		j.Status = StatusFailed
		j.Err = err.Error()
		e.metrics.inc("jobs_failed_total", 1)
	} else {
		j.Status = StatusDone
		j.Result = res
		e.metrics.inc("jobs_completed_total", 1)
	}
	j.finished = time.Now()
	close(j.done)
}

// pruneHistoryLocked drops the oldest finished job records beyond the
// retention cap so a long-lived daemon's job map stays bounded.
func (e *Engine) pruneHistoryLocked() {
	if len(e.history) <= e.cfg.JobHistory {
		return
	}
	kept := e.history[:0]
	excess := len(e.history) - e.cfg.JobHistory
	for i, id := range e.history {
		j := e.jobs[id]
		if excess > 0 && i < len(e.history)-1 && j != nil &&
			(j.Status == StatusDone || j.Status == StatusFailed) {
			delete(e.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.history = kept
}

// Close drains the queue — every accepted job still completes — then stops
// the workers and flushes and closes the ledger, so a graceful shutdown
// leaves every completed job durably chained.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.queue)
	e.wg.Wait()
	if e.ledger != nil {
		if err := e.ledger.Close(); err != nil {
			e.log.Error("ledger close", "err", err)
		}
	}
}
