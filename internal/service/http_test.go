package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// encodeGraph serializes a built instance's graph in the Encode text
// format.
func encodeGraph(t testing.TB, in core.Input) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Encode(&buf, in.Graph); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer starts an engine and its HTTP server; both shut down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Engine) {
	t.Helper()
	e := NewEngine(cfg)
	srv := httptest.NewServer(NewServer(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv, e
}

// postJSON posts v and decodes the JSON response into out.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestHTTPJobBitIdenticalToDirectRun is the end-to-end API determinism
// test: a job served over HTTP (wait=true) returns exactly the summary and
// model metrics of the direct mrrun-style run for the same spec and seed.
func TestHTTPJobBitIdenticalToDirectRun(t *testing.T) {
	srv, _ := newTestServer(t, Config{Pool: 2})
	req := JobRequest{
		Instance: InstanceSpec{Type: "density", N: 150, C: 0.3, Seed: 7},
		Alg:      "matching", Seed: 7,
	}
	want := directRun(t, req)

	var view JobView
	status := postJSON(t, srv.URL+"/v1/jobs", jobSubmission{JobRequest: req, Wait: true}, &view)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if view.Status != StatusDone {
		t.Fatalf("job status %s, error %q", view.Status, view.Error)
	}
	assertSameResult(t, "http-wait", view.Result, want)
}

// TestHTTPSubmitAndPoll exercises the async path: 202 on submit, poll
// GET /v1/jobs/{id} to completion.
func TestHTTPSubmitAndPoll(t *testing.T) {
	srv, _ := newTestServer(t, Config{Pool: 1})
	req := JobRequest{
		Instance: InstanceSpec{Type: "density", N: 100, C: 0.3, Seed: 11},
		Alg:      "mis", Seed: 11,
	}
	want := directRun(t, req)

	var view JobView
	if status := postJSON(t, srv.URL+"/v1/jobs", jobSubmission{JobRequest: req}, &view); status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	deadline := time.Now().Add(30 * time.Second)
	for view.Status != StatusDone && view.Status != StatusFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", view.ID, view.Status)
		}
		time.Sleep(10 * time.Millisecond)
		if status := getJSON(t, srv.URL+"/v1/jobs/"+view.ID, &view); status != http.StatusOK {
			t.Fatalf("poll status %d", status)
		}
	}
	if view.Status != StatusDone {
		t.Fatalf("job failed: %s", view.Error)
	}
	assertSameResult(t, "http-poll", view.Result, want)

	var errBody map[string]string
	if status := getJSON(t, srv.URL+"/v1/jobs/j-99999999", &errBody); status != http.StatusNotFound {
		t.Fatalf("unknown job status %d", status)
	}
}

// TestHTTPUploadGzipAndServe uploads a gzip-compressed graph and runs a
// job against it by id; the instance listing must show it.
func TestHTTPUploadGzipAndServe(t *testing.T) {
	srv, _ := newTestServer(t, Config{Pool: 1})
	in, err := BuildInstance(InstanceSpec{Type: "density", N: 90, C: 0.3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	plain := encodeGraph(t, in)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/v1/instances", "application/octet-stream", &gz)
	if err != nil {
		t.Fatal(err)
	}
	var info InstanceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.ID == "" || info.N != 90 {
		t.Fatalf("upload: status %d, info %+v", resp.StatusCode, info)
	}

	// The gzip and plain uploads name the same content.
	resp2, err := http.Post(srv.URL+"/v1/instances", "application/octet-stream", bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	var info2 InstanceInfo
	if err := json.NewDecoder(resp2.Body).Decode(&info2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if info2.ID != info.ID {
		t.Fatalf("gzip upload id %s != plain upload id %s", info.ID, info2.ID)
	}

	want := directRun(t, JobRequest{Instance: InstanceSpec{Type: "upload", Data: plain}, Alg: "mis", Seed: 4})
	var view JobView
	postJSON(t, srv.URL+"/v1/jobs", jobSubmission{
		JobRequest: JobRequest{Instance: InstanceSpec{Type: "upload", ID: info.ID}, Alg: "mis", Seed: 4},
		Wait:       true,
	}, &view)
	if view.Status != StatusDone {
		t.Fatalf("job status %s, error %q", view.Status, view.Error)
	}
	assertSameResult(t, "uploaded", view.Result, want)

	var listing struct {
		Instances []InstanceInfo `json:"instances"`
	}
	getJSON(t, srv.URL+"/v1/instances", &listing)
	found := false
	for _, i := range listing.Instances {
		if i.ID == info.ID && i.Uploaded {
			found = true
		}
	}
	if !found {
		t.Fatalf("uploaded instance %s missing from listing %+v", info.ID, listing.Instances)
	}
}

func TestHTTPAlgorithmsAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t, Config{Pool: 1})
	var listing struct {
		Algorithms []struct {
			Name   string           `json:"name"`
			Input  string           `json:"input"`
			Params []core.ParamSpec `json:"params"`
		} `json:"algorithms"`
	}
	if status := getJSON(t, srv.URL+"/v1/algorithms", &listing); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(listing.Algorithms) != len(core.Algorithms()) {
		t.Fatalf("%d algorithms listed, want %d", len(listing.Algorithms), len(core.Algorithms()))
	}
	foundB := false
	for _, a := range listing.Algorithms {
		if a.Name == "bmatching" {
			foundB = true
			if a.Input != "graph" || len(a.Params) != 2 {
				t.Fatalf("bmatching row %+v", a)
			}
		}
	}
	if !foundB {
		t.Fatal("bmatching missing from listing")
	}

	var view JobView
	postJSON(t, srv.URL+"/v1/jobs", jobSubmission{JobRequest: JobRequest{
		Instance: InstanceSpec{Type: "density", N: 60, C: 0.3, Seed: 2},
		Alg:      "luby", Seed: 2,
	}, Wait: true}, &view)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"mrserve_jobs_submitted_total 1",
		"mrserve_jobs_completed_total 1",
		"mrserve_instances_built_total 1",
		"mrserve_job_latency_ms_count 1",
		`mrserve_job_latency_ms_bucket{le="+Inf"} 1`,
		// Scheduling-efficiency instrumentation: one completed job lands in
		// the active-machines histogram, and the process-wide executor-pool
		// counters render (their values depend on prior pooled activity, so
		// only the line prefix is pinned).
		"mrserve_job_active_machines_count 1",
		`mrserve_job_active_machines_bucket{le="+Inf"} 1`,
		"mrserve_executor_pool_rounds_total ",
		"mrserve_executor_pool_chunks_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, Config{Pool: 1})
	for name, body := range map[string]string{
		"not json":        "nope",
		"unknown field":   `{"bogus": 1}`,
		"unknown alg":     `{"instance":{"type":"density","n":10,"c":0.3},"alg":"wat"}`,
		"bad spec":        `{"instance":{"type":"density","n":-5},"alg":"mis"}`,
		"incompatible":    `{"instance":{"type":"setcover-greedy","n":40},"alg":"mis"}`,
		"upload no data":  `{"instance":{"type":"upload"},"alg":"mis"}`,
		"unknown arg":     `{"instance":{"type":"density","n":10,"c":0.3},"alg":"mis","args":{"zeta":2}}`,
		"bad upload body": "",
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/instances", "application/octet-stream", strings.NewReader("graf"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad upload: status %d, want 400", resp.StatusCode)
	}

	if resp, err = http.Get(srv.URL + "/v1/jobs"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /v1/jobs without id should not be OK")
	}
}

// TestHTTPWaitClientGone: a waiting client whose connection dies abandons
// the job — the flight's context is canceled instead of burning the worker
// pool on a result nobody will read, and the job is left pollable in a
// terminal state. (Previously the orphaned job kept running to completion.)
func TestHTTPWaitClientGone(t *testing.T) {
	srv, e := newTestServer(t, Config{Pool: 1})
	// Occupy the single worker with a job big enough that the 5ms client
	// timeout below reliably fires while the waited job is still queued.
	blocker := mustSubmit(t, e, JobRequest{
		Instance: InstanceSpec{Type: "density", N: 20000, C: 0.3, Seed: 42},
		Alg:      "luby", Seed: 42,
	})
	req := JobRequest{
		Instance: InstanceSpec{Type: "density", N: 80, C: 0.3, Seed: 21},
		Alg:      "mis", Seed: 21,
	}
	body, _ := json.Marshal(jobSubmission{JobRequest: req, Wait: true})
	httpReq, _ := http.NewRequest("POST", srv.URL+"/v1/jobs", bytes.NewReader(body))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(httpReq.WithContext(ctx))
		errc <- err
	}()
	// Cancel the client only once the waited job demonstrably exists and is
	// queued behind the blocker — the disconnect is then deterministic.
	for {
		if _, ok := e.Get("j-00000002"); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		// The job still slipped through before the cancellation landed; the
		// abandonment path didn't trigger and there is nothing to assert.
		t.Skip("wait completed before the disconnect; abandonment not exercised")
	}
	blocker.Wait()

	// The abandoned job must reach a terminal state — canceled, not
	// hanging, and not silently occupying the pool.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v1, ok1 := e.Get("j-00000001")
		v2, ok2 := e.Get("j-00000002")
		if ok1 && ok2 && v1.Status != StatusRunning && v1.Status != StatusQueued &&
			v2.Status != StatusRunning && v2.Status != StatusQueued {
			if v1.Status != StatusDone {
				t.Fatalf("blocker (never abandoned) finished %s: %s", v1.Status, v1.Error)
			}
			if v2.Status != StatusFailed || !strings.Contains(v2.Error, "canceled") {
				t.Fatalf("abandoned job: status %s error %q, want failed with a canceled error", v2.Status, v2.Error)
			}
			if got := e.metrics.counter("jobs_abandoned_total"); got != 1 {
				t.Fatalf("jobs_abandoned_total = %d, want 1", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not reach terminal states: %+v / %+v", v1, v2)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
