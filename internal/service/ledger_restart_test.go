package service

// Crash-restart coverage for the durable job ledger: a restarted engine
// serves pre-crash results bit-identically from the recovered chain, a
// kill -9'd server repairs its torn tail exactly once, and on-disk
// corruption is pinpointed — not papered over.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/graph"
)

// ledgerReqs are the workload jobs for the restart tests: distinct
// algorithms so each is its own chain record.
func ledgerReqs() []JobRequest {
	return []JobRequest{
		{Instance: InstanceSpec{Type: "density", N: 120, C: 0.3, Seed: 7}, Alg: "matching", Seed: 7},
		{Instance: InstanceSpec{Type: "density", N: 100, C: 0.3, Seed: 4}, Alg: "mis", Seed: 4},
		{Instance: InstanceSpec{Type: "setcover-greedy", N: 80, Seed: 9}, Alg: "setcover-greedy",
			Args: map[string]float64{"eps": 0.3}, Seed: 9},
	}
}

// TestLedgerRestartServesPreCrashResults is the in-process restart test:
// jobs completed before a (graceful) shutdown are served by a fresh engine
// on the same directories with Source "ledger", bit-identical results, and
// zero flight executions — including a job on an uploaded graph, which the
// ledger records by content id against the DataDir spool.
func TestLedgerRestartServesPreCrashResults(t *testing.T) {
	ledgerDir := filepath.Join(t.TempDir(), "ledger")
	dataDir := filepath.Join(t.TempDir(), "data")
	reqs := ledgerReqs()

	var text bytes.Buffer
	if err := graph.Encode(&text, uploadGraph()); err != nil {
		t.Fatal(err)
	}

	e1 := NewEngine(Config{Pool: 2, LedgerDir: ledgerDir, DataDir: dataDir})
	id, _, err := e1.Upload(text.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	reqs = append(reqs, JobRequest{Instance: InstanceSpec{Type: "upload", ID: id}, Alg: "mis", Seed: 3})
	before := make([]JobView, len(reqs))
	for i, req := range reqs {
		before[i] = finished(t, e1, mustSubmit(t, e1, req))
	}
	e1.SyncLedger()
	if head := e1.ledger.Head(); head.Persisted != uint64(len(reqs)) {
		t.Fatalf("persisted %d records, want %d", head.Persisted, len(reqs))
	}
	e1.Close()

	e2 := NewEngine(Config{Pool: 2, LedgerDir: ledgerDir, DataDir: dataDir})
	defer e2.Close()
	if rep, ok := e2.VerifyLedger(); !ok || !rep.OK {
		t.Fatalf("recovered chain did not verify: %+v", rep)
	}
	for i, req := range reqs {
		v := finished(t, e2, mustSubmit(t, e2, req))
		if v.Source != SourceLedger {
			t.Fatalf("job %d source %q, want ledger", i, v.Source)
		}
		// Bit-identical: the ledger stores the exact canonical result
		// bytes, so the decoded documents must match field for field.
		got, _ := json.Marshal(v.Result)
		want, _ := json.Marshal(before[i].Result)
		if !bytes.Equal(got, want) {
			t.Fatalf("job %d result differs across restart:\n  before: %s\n  after:  %s", i, want, got)
		}
	}
	if n := e2.metrics.counter("flights_executed_total"); n != 0 {
		t.Fatalf("restarted engine executed %d flights, want 0 (all served from ledger)", n)
	}
	if n := e2.metrics.counter("ledger_hits_total"); n != uint64(len(reqs)) {
		t.Fatalf("ledger hits %d, want %d", n, len(reqs))
	}
}

// TestLedgerVerifyPinpointsCorruption flips one byte of a persisted record
// under a live engine and requires POST-style verification to fail naming
// the damaged file — while job serving keeps working (degradation, not
// death).
func TestLedgerVerifyPinpointsCorruption(t *testing.T) {
	ledgerDir := filepath.Join(t.TempDir(), "ledger")
	e := NewEngine(Config{Pool: 1, LedgerDir: ledgerDir})
	defer e.Close()
	req := ledgerReqs()[0]
	want := finished(t, e, mustSubmit(t, e, req))
	e.SyncLedger()

	active := filepath.Join(ledgerDir, "ledger.active")
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	data[40] ^= 0xff
	if err := os.WriteFile(active, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, enabled := e.VerifyLedger()
	if !enabled {
		t.Fatal("ledger reported disabled")
	}
	if rep.OK {
		t.Fatal("verification passed over a corrupted record")
	}
	if !strings.Contains(rep.Error, "ledger.active") {
		t.Fatalf("verification error does not pinpoint the damaged file: %q", rep.Error)
	}
	if e.metrics.counter("ledger_verify_failed_total") != 1 {
		t.Fatal("ledger_verify_failed_total not incremented")
	}
	// The engine still serves: the in-memory chain and LRU are intact.
	v := finished(t, e, mustSubmit(t, e, req))
	if v.Result.Summary != want.Result.Summary {
		t.Fatal("corruption broke in-process serving")
	}
}

// TestLedgerRecoveryFailureSurfacedByVerify: when startup recovery fails
// on a corrupt chain, the engine keeps serving on a memory-only substitute
// — and verification must keep reporting the damaged on-disk history
// instead of blessing the substitute's clean (empty) chain.
func TestLedgerRecoveryFailureSurfacedByVerify(t *testing.T) {
	ledgerDir := filepath.Join(t.TempDir(), "ledger")
	e1 := NewEngine(Config{Pool: 1, LedgerDir: ledgerDir})
	reqs := ledgerReqs()
	finished(t, e1, mustSubmit(t, e1, reqs[0]))
	finished(t, e1, mustSubmit(t, e1, reqs[1]))
	e1.SyncLedger()
	e1.Close()

	// Mid-file corruption with valid records after it: not a torn tail, so
	// recovery must refuse the history rather than repair it.
	active := filepath.Join(ledgerDir, "ledger.active")
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	data[40] ^= 0xff
	if err := os.WriteFile(active, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(Config{Pool: 1, LedgerDir: ledgerDir})
	defer e2.Close()
	rep, enabled := e2.VerifyLedger()
	if !enabled {
		t.Fatal("ledger reported disabled after failed recovery")
	}
	if rep.OK {
		t.Fatal("verify blessed the memory-only substitute over a corrupt on-disk ledger")
	}
	if !strings.Contains(rep.Error, "recovery failed") || !strings.Contains(rep.Error, "ledger.active") {
		t.Fatalf("verify error does not surface the recovery failure: %q", rep.Error)
	}
	if v := e2.LedgerInfo(); v.RecoveryError == "" {
		t.Fatal("LedgerInfo does not surface the recovery error")
	}
	// Degraded, not dead: jobs still execute and serve.
	if v := finished(t, e2, mustSubmit(t, e2, reqs[0])); v.Error != "" {
		t.Fatalf("job failed in degraded mode: %q", v.Error)
	}
}

// crashChildEnv is the marker that turns the test binary into the crash
// harness's server process.
const crashChildEnv = "MRSERVE_LEDGER_CRASH_CHILD"

// TestLedgerCrashChild is not a test: re-executed by TestLedgerKillMinus9
// with crashChildEnv set, it runs a real engine+HTTP server on an
// ephemeral port and blocks until the parent SIGKILLs it.
func TestLedgerCrashChild(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("helper process for TestLedgerKillMinus9")
	}
	e := NewEngine(Config{
		Pool:      2,
		LedgerDir: os.Getenv("MRSERVE_LEDGER_DIR"),
		DataDir:   os.Getenv("MRSERVE_DATA_DIR"),
	})
	srv := &http.Server{Handler: NewServer(e)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The parent scrapes this line for the address; everything else the
	// child prints is test chatter.
	fmt.Printf("CHILD_ADDR %s\n", ln.Addr())
	_ = srv.Serve(ln) // blocks until SIGKILL
}

// TestLedgerKillMinus9 is the crash harness: a real server process is
// SIGKILLed mid-life, its active ledger file is given a torn tail record,
// and the restarted process must (1) truncate the tear exactly once,
// (2) verify its chain, and (3) serve every pre-crash result byte-identically
// without executing a single flight.
func TestLedgerKillMinus9(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ledgerDir := filepath.Join(t.TempDir(), "ledger")
	dataDir := filepath.Join(t.TempDir(), "data")
	env := append(os.Environ(),
		crashChildEnv+"=1",
		"MRSERVE_LEDGER_DIR="+ledgerDir,
		"MRSERVE_DATA_DIR="+dataDir,
	)

	start := func() (*exec.Cmd, string) {
		cmd := exec.Command(exe, "-test.run=^TestLedgerCrashChild$", "-test.v")
		cmd.Env = env
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "CHILD_ADDR "); ok {
				// Keep draining stdout so the child never blocks on a full
				// pipe.
				go func() {
					for sc.Scan() {
					}
				}()
				return cmd, "http://" + addr
			}
		}
		t.Fatalf("child exited before announcing its address (scan err %v)", sc.Err())
		return nil, ""
	}
	kill := func(cmd *exec.Cmd) {
		if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		_ = cmd.Wait()
	}

	type ledgerDoc struct {
		Enabled   bool   `json:"enabled"`
		Seq       uint64 `json:"seq"`
		Persisted uint64 `json:"persisted"`
		TornTails uint64 `json:"torn_tails"`
	}
	type jobDoc struct {
		Status string          `json:"status"`
		Source string          `json:"source"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	submit := func(url string, req JobRequest) jobDoc {
		t.Helper()
		body, _ := json.Marshal(jobSubmission{JobRequest: req, Wait: true})
		resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc jobDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != "done" {
			t.Fatalf("job failed: status %q error %q", doc.Status, doc.Error)
		}
		return doc
	}
	ledgerState := func(url string) ledgerDoc {
		t.Helper()
		resp, err := http.Get(url + "/v1/ledger")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc ledgerDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	// Round 1: run the workload, wait for durability, then SIGKILL.
	cmd, url := start()
	reqs := ledgerReqs()
	before := make([]jobDoc, len(reqs))
	for i, req := range reqs {
		before[i] = submit(url, req)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := ledgerState(url); st.Persisted == uint64(len(reqs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records never became durable: %+v", ledgerState(url))
		}
		time.Sleep(10 * time.Millisecond)
	}
	kill(cmd)

	// Simulate the torn write the SIGKILL could have left behind: a frame
	// header claiming 200 body bytes with only 40 present at EOF.
	f, err := os.OpenFile(filepath.Join(ledgerDir, "ledger.active"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 48)
	binary.LittleEndian.PutUint32(torn[0:], 0xdeadbeef)
	binary.LittleEndian.PutUint32(torn[4:], 200)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Round 2: restart on the same directories.
	cmd, url = start()
	st := ledgerState(url)
	if !st.Enabled || st.Seq != uint64(len(reqs)) {
		t.Fatalf("recovered ledger head %+v, want seq %d", st, len(reqs))
	}
	if st.TornTails != 1 {
		t.Fatalf("torn tails %d, want 1 (recovery must truncate the tear)", st.TornTails)
	}
	resp, err := http.Post(url+"/v1/ledger/verify", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-crash chain verification returned %d, want 200", resp.StatusCode)
	}
	for i, req := range reqs {
		doc := submit(url, req)
		if doc.Source != "ledger" {
			t.Fatalf("job %d source %q after restart, want ledger", i, doc.Source)
		}
		if !bytes.Equal(doc.Result, before[i].Result) {
			t.Fatalf("job %d result not byte-identical across kill -9:\n  before: %s\n  after:  %s",
				i, before[i].Result, doc.Result)
		}
	}
	metrics, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(metrics.Body)
	metrics.Body.Close()
	for _, line := range []string{
		"mrserve_flights_executed_total 0",
		"mrserve_ledger_torn_tail_total 1",
		"mrserve_ledger_degraded 0",
		fmt.Sprintf("mrserve_ledger_hits_total %d", len(reqs)),
	} {
		if !strings.Contains(buf.String(), line+"\n") {
			t.Errorf("metrics missing %q", line)
		}
	}
	kill(cmd)

	// Round 3: the tear was truncated exactly once — a clean restart sees
	// no torn tail and the same head.
	cmd, url = start()
	defer kill(cmd)
	st = ledgerState(url)
	if st.TornTails != 0 {
		t.Fatalf("second restart reports %d torn tails, want 0 (truncate exactly once)", st.TornTails)
	}
	if st.Seq != uint64(len(reqs)) {
		t.Fatalf("second restart head seq %d, want %d", st.Seq, len(reqs))
	}
}
