package service

import (
	"time"

	"repro/internal/obs"
)

// The job trace endpoint: GET /v1/jobs/{id}/trace serves the wall-clock
// round spans the job's flight recorded — phase timings, per-shard wire
// bytes — as JSON. This is observability data, deliberately outside the
// deterministic Result: two runs of the same job return bit-identical
// Results and arbitrarily different traces. The ring is internally
// synchronized, so a running job's trace can be read live.

// TraceRound is one round span in the JSON projection. Durations are
// microseconds; the *_us keys mirror the Perfetto exporter's phase names.
type TraceRound struct {
	Round    int       `json:"round"`
	Active   int       `json:"active"`
	MaxLoad  int       `json:"max_load"`
	Words    int64     `json:"words"`
	Messages int       `json:"messages"`
	Start    time.Time `json:"start"`
	WallUS   float64   `json:"wall_clock_us"`
	Compute  float64   `json:"compute_us"`
	Merge    float64   `json:"merge_us"`
	Barrier  float64   `json:"barrier_us,omitempty"`
	Replay   float64   `json:"replay_us,omitempty"`
	// ShardWireWords is the per-destination-shard cross-shard traffic of a
	// sharded round (words shipped to each shard, own shard always 0).
	ShardWireWords []int64 `json:"shard_wire_words,omitempty"`
}

// TraceView is the GET /v1/jobs/{id}/trace response.
type TraceView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Source Source    `json:"source,omitempty"`
	Label  string    `json:"label,omitempty"`
	// Dropped counts spans evicted from the ring (rounds beyond the
	// configured TraceRounds retention).
	Dropped uint64       `json:"dropped_rounds,omitempty"`
	Rounds  []TraceRound `json:"rounds"`
}

// Trace returns the round trace of the job with the given id. Jobs served
// from the result cache (and jobs on an engine with tracing disabled)
// report zero rounds: only executed flights record spans.
func (e *Engine) Trace(id string) (TraceView, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return TraceView{}, false
	}
	v := TraceView{ID: j.ID, Status: j.Status, Source: j.Source}
	var ring *obs.RingSink
	if j.flight != nil {
		v.Label = j.flight.alg
		ring = j.flight.ring
	}
	e.mu.Unlock()

	v.Rounds = []TraceRound{} // render as [] not null when empty
	if ring == nil {
		return v, true
	}
	v.Dropped = ring.Dropped()
	for _, s := range ring.Snapshot() {
		v.Rounds = append(v.Rounds, TraceRound{
			Round: s.Round, Active: s.Active, MaxLoad: s.MaxLoad,
			Words: s.Words, Messages: s.Messages, Start: s.Start,
			WallUS:         us(s.Duration()),
			Compute:        us(s.Compute),
			Merge:          us(s.Merge),
			Barrier:        us(s.Barrier),
			Replay:         us(s.Replay),
			ShardWireWords: s.ShardWords,
		})
	}
	return v, true
}

// us converts a duration to float microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
