package service

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ledger"
	"repro/internal/rng"
)

// The durable job ledger (internal/ledger) turns the engine's volatile LRU
// result store into a system of record: every completed flight appends a
// Merkle-chained record of (job key → result hash, metrics hash,
// timestamp) plus a self-contained replay envelope, and a restarted server
// serves pre-crash results bit-identically from the recovered chain
// instead of re-executing them. Ledger IO is strictly off the job path —
// the batcher owns every write, a store failure degrades the ledger to
// memory-only operation (mrserve_ledger_degraded) and never fails a job.

// ledgerEnvelope is the payload stored with every record: enough to serve
// the result on restart (Result) and to re-execute the job offline
// (Spec — for uploads, by id against the spooled DataDir container).
// Result holds the exact canonical bytes whose SHA-256 is the record's
// ResultHash, so serving from the ledger is bit-identical by construction.
type ledgerEnvelope struct {
	Spec   InstanceSpec    `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// openLedger opens (or recovers) the configured ledger. Any failure —
// unreadable directory, corrupt chain — is degraded to memory-only
// operation with a structured log and the mrserve_ledger_degraded gauge,
// never a dead daemon: the torn-tail case (kill -9 mid-write) is repaired
// by the store itself and does not land here.
func (e *Engine) openLedger() {
	if e.cfg.LedgerDir == "" {
		return
	}
	m := e.metrics
	for _, c := range []string{"ledger_appends_total", "ledger_hits_total",
		"ledger_torn_tail_total", "ledger_verify_total", "ledger_verify_failed_total"} {
		m.inc(c, 0)
	}
	m.set("ledger_records", 0)
	m.set("ledger_degraded", 0)

	opts := ledger.Options{
		RetrySeed: rng.New(uint64(time.Now().UnixNano())).Uint64(),
		OnDegrade: func(err error) {
			m.set("ledger_degraded", 1)
			e.log.Error("ledger store failed; degrading to memory-only operation", "err", err)
		},
	}
	store, stats, err := ledger.OpenDisk(e.cfg.LedgerDir, ledger.DiskOptions{
		SegmentBytes: e.cfg.LedgerSegmentBytes})
	if err == nil {
		opts.Store = store
		var lerr error
		e.ledger, lerr = ledger.Open(opts)
		if lerr != nil {
			store.Close()
			err = lerr
		}
	}
	if err != nil {
		// Unrecoverable history (corruption, chain break): report loudly,
		// keep serving with an in-process chain so /v1/ledger still works
		// and the operator can see what happened. The error is kept on the
		// engine so VerifyLedger reports the damaged on-disk history
		// instead of blessing the substitute store's clean chain.
		e.log.Error("ledger recovery failed; running memory-only", "dir", e.cfg.LedgerDir, "err", err)
		m.set("ledger_degraded", 1)
		e.ledgerRecoveryErr = err
		opts.Store = ledger.NewMemStore()
		e.ledger, _ = ledger.Open(opts)
		return
	}
	if stats.TornTail {
		m.inc("ledger_torn_tail_total", 1)
		e.log.Warn("ledger recovery truncated a torn tail record",
			"dir", e.cfg.LedgerDir, "truncated_bytes", stats.TruncatedBytes)
	}
	head := e.ledger.Head()
	m.set("ledger_records", head.Seq)
	e.log.Info("ledger recovered", "dir", e.cfg.LedgerDir, "records", head.Seq,
		"segments", stats.Segments, "head", head.Link)
}

// recordLedger appends one completed flight's result to the ledger. Called
// off the engine mutex; Append never blocks on IO. Marshal failures are
// impossible for the Result shape (plain structs and maps), but are still
// swallowed defensively: the ledger must never fail a job.
func (e *Engine) recordLedger(f *flight, res *Result) {
	if e.ledger == nil {
		return
	}
	resultJSON, err := json.Marshal(res)
	if err != nil {
		e.log.Error("ledger: result marshal failed", "alg", f.alg, "err", err)
		return
	}
	metricsJSON, err := json.Marshal(res.Metrics)
	if err != nil {
		return
	}
	spec := f.spec
	if spec.Type == "upload" {
		// Never embed uploaded graph bytes in the chain; the spooled
		// DataDir container (content-addressed by the same id) is the
		// instance of record for replay and offline audit.
		spec = InstanceSpec{Type: "upload", ID: f.instID}
	}
	payload, err := json.Marshal(ledgerEnvelope{Spec: spec, Result: resultJSON})
	if err != nil {
		return
	}
	rec := e.ledger.Append(f.key, payload,
		ledger.HashBytes(resultJSON), ledger.HashBytes(metricsJSON))
	e.metrics.inc("ledger_appends_total", 1)
	e.metrics.set("ledger_records", rec.Seq)
}

// ledgerLookup serves a job key from the recovered chain, if present.
// Returns the decoded result; any decoding problem is treated as a miss
// (the job simply executes — never fails — and verification will flag the
// damage).
func (e *Engine) ledgerLookup(key string) (*Result, bool) {
	if e.ledger == nil {
		return nil, false
	}
	rec, ok := e.ledger.Get(key)
	if !ok {
		return nil, false
	}
	var env ledgerEnvelope
	if err := json.Unmarshal(rec.Payload, &env); err != nil {
		return nil, false
	}
	// Integrity before serving: the stored result bytes must still hash to
	// the chained result hash.
	if ledger.HashBytes(env.Result) != rec.ResultHash {
		e.log.Error("ledger record failed its result hash; not serving it",
			"key", key, "seq", rec.Seq)
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// LedgerView is the GET /v1/ledger document.
type LedgerView struct {
	Enabled bool `json:"enabled"`
	ledger.Head
	// TornTails is how many torn tail records recovery has truncated over
	// this process's lifetime (0 or 1: recovery runs once, at startup).
	TornTails uint64 `json:"torn_tails"`
	// Hits counts jobs served from the recovered chain without
	// re-execution.
	Hits uint64 `json:"hits"`
	// RecoveryError is set when startup recovery of the on-disk history
	// failed: the ledger in use is a memory-only substitute and the
	// damaged directory is still on disk, untouched.
	RecoveryError string `json:"recovery_error,omitempty"`
}

// LedgerInfo snapshots the ledger for the HTTP layer.
func (e *Engine) LedgerInfo() LedgerView {
	if e.ledger == nil {
		return LedgerView{}
	}
	v := LedgerView{
		Enabled:   true,
		Head:      e.ledger.Head(),
		TornTails: e.metrics.counter("ledger_torn_tail_total"),
		Hits:      e.metrics.counter("ledger_hits_total"),
	}
	if e.ledgerRecoveryErr != nil {
		v.RecoveryError = e.ledgerRecoveryErr.Error()
	}
	return v
}

// VerifyLedger re-reads the entire chain from its backing store,
// revalidates every checksum and link, and cross-checks the stored head
// against the live in-memory chain (POST /v1/ledger/verify). ok reports
// whether the ledger is enabled at all.
func (e *Engine) VerifyLedger() (ledger.VerifyReport, bool) {
	if e.ledger == nil {
		return ledger.VerifyReport{}, false
	}
	rep := e.ledger.Verify()
	if e.ledgerRecoveryErr != nil {
		// Startup recovery failed and the chain in use is a memory-only
		// substitute; a clean verify of the substitute says nothing about
		// the damaged history still sitting in the ledger directory, so the
		// report must carry the original recovery error.
		rep.OK = false
		rep.Error = fmt.Sprintf("ledger degraded at startup, verifying a memory-only substitute; on-disk recovery failed with: %v", e.ledgerRecoveryErr)
	}
	e.metrics.inc("ledger_verify_total", 1)
	if !rep.OK {
		e.metrics.inc("ledger_verify_failed_total", 1)
		e.log.Error("ledger verification failed", "records", rep.Records, "err", rep.Error)
	}
	return rep, true
}

// SyncLedger blocks until every record appended so far is durable (or the
// ledger degraded). Tests and the crash harness use it to establish the
// durability point before a kill.
func (e *Engine) SyncLedger() {
	if e.ledger != nil {
		e.ledger.Sync()
	}
}

// ---- Offline audit (cmd/mrverify) ----------------------------------------

// AuditReport summarizes an offline ledger audit: chain verification over
// the whole store plus re-execution of a sample of ledgered jobs.
type AuditReport struct {
	Records  uint64   `json:"records"`
	Segments int      `json:"segments"`
	HeadSeq  uint64   `json:"head_seq"`
	HeadLink string   `json:"head_link"`
	TornTail bool     `json:"torn_tail"`
	Keys     int      `json:"keys"`
	Replayed int      `json:"replayed"`
	Matched  int      `json:"matched"`
	Failures []string `json:"failures,omitempty"`
}

// OK reports a fully successful audit.
func (r AuditReport) OK() bool { return len(r.Failures) == 0 && r.Matched == r.Replayed }

// AuditLedger is the offline integrity check behind cmd/mrverify: it
// re-reads a ledger directory (read-only — safe against a live server),
// verifies the full Merkle chain, then re-executes `sample` of the
// ledgered jobs (0 = all; sampled deterministically from seed) against
// their recorded instance specs — resolving uploads from the spooled
// dataDir containers — and requires each re-execution to reproduce the
// chained result and metrics hashes bit-for-bit. Determinism as an
// end-to-end integrity check: a passing audit proves the stored results
// are exactly what running the jobs today produces.
func AuditLedger(dir, dataDir string, sample int, seed uint64, workers int,
	logf func(format string, args ...any)) (AuditReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var rep AuditReport
	var seq uint64
	var link ledger.Hash
	latest := make(map[string]*ledger.Record)
	order := []string{}
	stats, err := ledger.ReadDir(dir, func(r *ledger.Record) error {
		next, err := verifyLedgerChain(seq, link, r)
		if err != nil {
			return err
		}
		seq, link = r.Seq, next
		if _, ok := latest[r.Key]; !ok {
			order = append(order, r.Key)
		}
		latest[r.Key] = cloneAuditRecord(r)
		return nil
	})
	rep.Records, rep.Segments, rep.TornTail = stats.Records, stats.Segments, stats.TornTail
	rep.HeadSeq, rep.HeadLink = seq, link.String()
	rep.Keys = len(latest)
	if err != nil {
		return rep, err
	}
	logf("chain ok: %d records, %d sealed segments, head seq %d link %s",
		rep.Records, rep.Segments, rep.HeadSeq, rep.HeadLink)

	picks := order
	if sample > 0 && sample < len(order) {
		// Deterministic sample: seeded shuffle, first `sample` keys.
		r := rng.New(seed)
		shuffled := append([]string(nil), order...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		picks = shuffled[:sample]
	}
	for _, key := range picks {
		rec := latest[key]
		rep.Replayed++
		if err := auditRecord(rec, dataDir, workers); err != nil {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("seq %d key %q: %v", rec.Seq, rec.Key, err))
			logf("FAIL seq %d: %v", rec.Seq, err)
			continue
		}
		rep.Matched++
		logf("ok   seq %d: %s", rec.Seq, rec.Key)
	}
	return rep, nil
}

// verifyLedgerChain mirrors the ledger's internal chain fold for the
// read-only audit path.
func verifyLedgerChain(prevSeq uint64, prevLink ledger.Hash, r *ledger.Record) (ledger.Hash, error) {
	return ledger.VerifyStep(prevSeq, prevLink, r)
}

// cloneAuditRecord keeps a stable copy of a replayed record (ReadDir may
// reuse buffers).
func cloneAuditRecord(r *ledger.Record) *ledger.Record {
	c := *r
	c.Payload = append([]byte(nil), r.Payload...)
	return &c
}

// auditRecord re-executes one ledgered job and compares hashes.
func auditRecord(rec *ledger.Record, dataDir string, workers int) error {
	var env ledgerEnvelope
	if err := json.Unmarshal(rec.Payload, &env); err != nil {
		return fmt.Errorf("payload: %w", err)
	}
	if got := ledger.HashBytes(env.Result); got != rec.ResultHash {
		return fmt.Errorf("stored result bytes do not match the chained result hash")
	}
	var stored Result
	if err := json.Unmarshal(env.Result, &stored); err != nil {
		return fmt.Errorf("stored result: %w", err)
	}
	alg, ok := core.LookupAlgorithm(stored.Alg)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", stored.Alg)
	}
	in, err := buildAuditInstance(env.Spec, dataDir)
	if err != nil {
		return fmt.Errorf("instance: %w", err)
	}
	run, err := alg.Run(in, core.Params{Mu: stored.Mu, Seed: stored.Seed, Workers: workers}, stored.Args)
	if err != nil {
		return fmt.Errorf("re-execution: %w", err)
	}
	redone := Result{InstanceID: stored.InstanceID, Alg: stored.Alg, Args: stored.Args,
		Mu: stored.Mu, Seed: stored.Seed, RunResult: *run}
	redoneJSON, err := json.Marshal(&redone)
	if err != nil {
		return err
	}
	if ledger.HashBytes(redoneJSON) != rec.ResultHash {
		return fmt.Errorf("re-executed result hash differs from the chain (stored %s, got %s)",
			rec.ResultHash, ledger.HashBytes(redoneJSON))
	}
	metricsJSON, err := json.Marshal(run.Metrics)
	if err != nil {
		return err
	}
	if ledger.HashBytes(metricsJSON) != rec.MetricsHash {
		return fmt.Errorf("re-executed metrics hash differs from the chain")
	}
	return nil
}

// buildAuditInstance rebuilds the instance a record was executed on. For
// generator specs this is BuildInstance; upload specs resolve by content
// id against the spooled DataDir container.
func buildAuditInstance(spec InstanceSpec, dataDir string) (core.Input, error) {
	if spec.Type == "upload" && len(spec.Data) == 0 {
		if dataDir == "" {
			return core.Input{}, fmt.Errorf("upload instance %s needs -data pointing at the server's spool directory", spec.ID)
		}
		g, err := graph.OpenMapped(spoolPath(dataDir, spec.ID))
		if err != nil {
			return core.Input{}, err
		}
		in := core.Input{Graph: g}
		materialize(in)
		return in, nil
	}
	return BuildInstance(spec)
}
