package service

import (
	"io"
	"time"

	"repro/internal/mpc"
	"repro/internal/obs"
)

// Metrics is the service's view onto an obs.Registry: service counters, a
// job-latency histogram, a per-job active-machines histogram, and the
// process-wide simulator totals (executor pool, transport, recovery,
// chaos) exposed as gauges. WritePlain (GET /metrics) renders the
// registry as a deterministic plain-text document whose line order and
// formats are byte-compatible with the pre-obs bespoke writer — pinned by
// TestMetricsGoldenDocument. All methods are safe for concurrent use.
type Metrics struct {
	reg      *obs.Registry
	counters *obs.CounterSet
	latency  *obs.Histogram
	active   *obs.Histogram
}

// latencyBucketCount covers 1ms .. 2^17ms (~2 minutes) in power-of-two
// buckets; slower jobs land in the +Inf bucket.
const latencyBucketCount = 18

// activeBucketCount covers 1 .. 2^13 mean active machines per round in
// power-of-two buckets; larger clusters land in the +Inf bucket.
const activeBucketCount = 14

// totalsFuncs are the process-wide simulator totals the registry renders
// as gauges. NewMetrics wires the real mpc counters; the golden test
// injects fixed values so the byte-format pin is independent of whatever
// other tests in the binary have run.
type totalsFuncs struct {
	pool      func() (rounds, chunks uint64)
	transport func() (batches, bytes uint64)
	recovery  func() (retries, reconnects, respawns uint64)
	chaos     func() (delays, dups, drops, tears uint64)
}

// NewMetrics returns a metrics set over the live process-wide totals.
func NewMetrics() *Metrics {
	return newMetricsWith(totalsFuncs{
		pool:      mpc.PoolTotals,
		transport: mpc.TransportTotals,
		recovery:  mpc.RecoveryTotals,
		chaos:     mpc.ChaosTotals,
	})
}

// newMetricsWith lays the registry out in the canonical exposition order:
// the sorted service counters, the two histograms, then the fixed-order
// process-wide gauges. Registration order is rendering order (obs), so
// this function is the single definition of the /metrics document shape.
func newMetricsWith(t totalsFuncs) *Metrics {
	m := &Metrics{
		reg:      obs.NewRegistry(),
		counters: obs.NewCounterSet("mrserve_"),
		latency:  obs.NewHistogram("mrserve_job_latency_ms", latencyBucketCount),
		active:   obs.NewHistogram("mrserve_job_active_machines", activeBucketCount),
	}
	m.reg.Register(m.counters)
	m.reg.Register(m.latency)
	m.reg.Register(m.active)
	// Executor-pool utilisation is process-wide (every job's cluster shares
	// the persistent-pool implementation): batches executed by pooled
	// workers and task chunks claimed, straight from the simulator.
	m.reg.Register(obs.NewGaugeFunc("mrserve_executor_pool_rounds_total", func() uint64 {
		rounds, _ := t.pool()
		return rounds
	}))
	m.reg.Register(obs.NewGaugeFunc("mrserve_executor_pool_chunks_total", func() uint64 {
		_, chunks := t.pool()
		return chunks
	}))
	// Sharded-execution activity is likewise process-wide: column batches
	// moved and wire bytes written across every transport endpoint (bytes
	// stay 0 for the in-memory transport).
	m.reg.Register(obs.NewGaugeFunc("mrserve_transport_batches_total", func() uint64 {
		batches, _ := t.transport()
		return batches
	}))
	m.reg.Register(obs.NewGaugeFunc("mrserve_transport_bytes_total", func() uint64 {
		_, bytes := t.transport()
		return bytes
	}))
	// Fault-tolerance activity, also process-wide: dial/send retries,
	// connection re-establishments with replay, worker respawns (counted by
	// the mrshard supervisor via mpc.AddWorkerRespawns), and the faults the
	// chaos harness injected on purpose.
	m.reg.Register(obs.NewGaugeFunc("mrserve_transport_retries_total", func() uint64 {
		retries, _, _ := t.recovery()
		return retries
	}))
	m.reg.Register(obs.NewGaugeFunc("mrserve_transport_reconnects_total", func() uint64 {
		_, reconnects, _ := t.recovery()
		return reconnects
	}))
	m.reg.Register(obs.NewGaugeFunc("mrserve_worker_respawns_total", func() uint64 {
		_, _, respawns := t.recovery()
		return respawns
	}))
	m.reg.Register(obs.NewGaugeFunc("mrserve_chaos_faults_total", func() uint64 {
		delays, dups, drops, tears := t.chaos()
		return delays + dups + drops + tears
	}))
	return m
}

// inc adds delta to the named counter (a zero delta materializes it as an
// explicit 0 line, which the engine uses to pre-seed incident counters).
func (m *Metrics) inc(name string, delta uint64) { m.counters.Add(name, delta) }

// set overwrites a gauge-valued entry in the counter set (the ledger's
// record count and 0/1 degradation flag live in the same sorted block as
// the counters).
func (m *Metrics) set(name string, value uint64) { m.counters.Set(name, value) }

// observeLatency records one completed-job latency in the histogram.
func (m *Metrics) observeLatency(d time.Duration) {
	m.latency.Observe(float64(d) / float64(time.Millisecond))
}

// observeActivity records one completed job's mean active machines per
// round (Metrics.ActiveSum / Rounds) in the activity histogram.
func (m *Metrics) observeActivity(run mpc.Metrics) {
	if run.Rounds == 0 {
		return
	}
	m.active.Observe(float64(run.ActiveSum) / float64(run.Rounds))
}

// counter reads one counter (testing helper).
func (m *Metrics) counter(name string) uint64 { return m.counters.Value(name) }

// WritePlain renders the registry as the deterministic plain-text
// /metrics document.
func (m *Metrics) WritePlain(w io.Writer) error { return m.reg.WriteText(w) }
