package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Metrics collects service counters and a job-latency histogram, rendered
// as a deterministic plain-text document by WritePlain (GET /metrics).
// All methods are safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	counters map[string]uint64

	// latencyBuckets[i] counts jobs with latency <= 2^i milliseconds;
	// latencyOver counts the rest. latencySum/latencyCount feed the mean.
	latencyBuckets [latencyBucketCount]uint64
	latencyOver    uint64
	latencySum     float64 // milliseconds
	latencyCount   uint64
}

// latencyBucketCount covers 1ms .. 2^17ms (~2 minutes) in power-of-two
// buckets; slower jobs land in the +Inf bucket.
const latencyBucketCount = 18

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]uint64)}
}

// inc adds delta to the named counter.
func (m *Metrics) inc(name string, delta uint64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// observeLatency records one completed-job latency in the histogram.
func (m *Metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.latencySum += ms
	m.latencyCount++
	bound := 1.0
	placed := false
	for i := 0; i < latencyBucketCount; i++ {
		if ms <= bound {
			m.latencyBuckets[i]++
			placed = true
			break
		}
		bound *= 2
	}
	if !placed {
		m.latencyOver++
	}
	m.mu.Unlock()
}

// counter reads one counter (testing helper).
func (m *Metrics) counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// WritePlain renders every counter (sorted by name) and the latency
// histogram in a Prometheus-style plain-text format.
func (m *Metrics) WritePlain(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.counters))
	for name := range m.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	lines := make([]string, 0, len(names)+latencyBucketCount+4)
	for _, name := range names {
		lines = append(lines, fmt.Sprintf("mrserve_%s %d", name, m.counters[name]))
	}
	cum := uint64(0)
	bound := 1
	for i := 0; i < latencyBucketCount; i++ {
		cum += m.latencyBuckets[i]
		lines = append(lines, fmt.Sprintf("mrserve_job_latency_ms_bucket{le=%q} %d", fmt.Sprint(bound), cum))
		bound *= 2
	}
	lines = append(lines,
		fmt.Sprintf("mrserve_job_latency_ms_bucket{le=\"+Inf\"} %d", cum+m.latencyOver),
		fmt.Sprintf("mrserve_job_latency_ms_sum %.3f", m.latencySum),
		fmt.Sprintf("mrserve_job_latency_ms_count %d", m.latencyCount))
	m.mu.Unlock()

	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
