package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/mpc"
)

// Metrics collects service counters, a job-latency histogram and a
// per-job active-machines histogram, rendered as a deterministic plain-text
// document by WritePlain (GET /metrics). All methods are safe for
// concurrent use.
type Metrics struct {
	mu sync.Mutex

	counters map[string]uint64

	// latencyBuckets[i] counts jobs with latency <= 2^i milliseconds;
	// latencyOver counts the rest. latencySum/latencyCount feed the mean.
	latencyBuckets [latencyBucketCount]uint64
	latencyOver    uint64
	latencySum     float64 // milliseconds
	latencyCount   uint64

	// activeBuckets[i] counts completed jobs whose mean active machines per
	// simulator round was <= 2^i; activeOver counts the rest. Together with
	// the executor-pool counters this is the operator's view of scheduling
	// efficiency: how much of each job's cluster actually works per round.
	activeBuckets [activeBucketCount]uint64
	activeOver    uint64
	activeSum     float64
	activeCount   uint64
}

// latencyBucketCount covers 1ms .. 2^17ms (~2 minutes) in power-of-two
// buckets; slower jobs land in the +Inf bucket.
const latencyBucketCount = 18

// activeBucketCount covers 1 .. 2^13 mean active machines per round in
// power-of-two buckets; larger clusters land in the +Inf bucket.
const activeBucketCount = 14

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]uint64)}
}

// inc adds delta to the named counter.
func (m *Metrics) inc(name string, delta uint64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// observeLatency records one completed-job latency in the histogram.
func (m *Metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.latencySum += ms
	m.latencyCount++
	bound := 1.0
	placed := false
	for i := 0; i < latencyBucketCount; i++ {
		if ms <= bound {
			m.latencyBuckets[i]++
			placed = true
			break
		}
		bound *= 2
	}
	if !placed {
		m.latencyOver++
	}
	m.mu.Unlock()
}

// observeActivity records one completed job's mean active machines per
// round (Metrics.ActiveSum / Rounds) in the activity histogram.
func (m *Metrics) observeActivity(run mpc.Metrics) {
	if run.Rounds == 0 {
		return
	}
	mean := float64(run.ActiveSum) / float64(run.Rounds)
	m.mu.Lock()
	m.activeSum += mean
	m.activeCount++
	bound := 1.0
	placed := false
	for i := 0; i < activeBucketCount; i++ {
		if mean <= bound {
			m.activeBuckets[i]++
			placed = true
			break
		}
		bound *= 2
	}
	if !placed {
		m.activeOver++
	}
	m.mu.Unlock()
}

// counter reads one counter (testing helper).
func (m *Metrics) counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// WritePlain renders every counter (sorted by name) and the latency
// histogram in a Prometheus-style plain-text format.
func (m *Metrics) WritePlain(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.counters))
	for name := range m.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	lines := make([]string, 0, len(names)+latencyBucketCount+4)
	for _, name := range names {
		lines = append(lines, fmt.Sprintf("mrserve_%s %d", name, m.counters[name]))
	}
	cum := uint64(0)
	bound := 1
	for i := 0; i < latencyBucketCount; i++ {
		cum += m.latencyBuckets[i]
		lines = append(lines, fmt.Sprintf("mrserve_job_latency_ms_bucket{le=%q} %d", fmt.Sprint(bound), cum))
		bound *= 2
	}
	lines = append(lines,
		fmt.Sprintf("mrserve_job_latency_ms_bucket{le=\"+Inf\"} %d", cum+m.latencyOver),
		fmt.Sprintf("mrserve_job_latency_ms_sum %.3f", m.latencySum),
		fmt.Sprintf("mrserve_job_latency_ms_count %d", m.latencyCount))
	cum = 0
	bound = 1
	for i := 0; i < activeBucketCount; i++ {
		cum += m.activeBuckets[i]
		lines = append(lines, fmt.Sprintf("mrserve_job_active_machines_bucket{le=%q} %d", fmt.Sprint(bound), cum))
		bound *= 2
	}
	lines = append(lines,
		fmt.Sprintf("mrserve_job_active_machines_bucket{le=\"+Inf\"} %d", cum+m.activeOver),
		fmt.Sprintf("mrserve_job_active_machines_sum %.3f", m.activeSum),
		fmt.Sprintf("mrserve_job_active_machines_count %d", m.activeCount))
	// Executor-pool utilisation is process-wide (every job's cluster shares
	// the persistent-pool implementation): batches executed by pooled
	// workers and task chunks claimed, straight from the simulator.
	poolRounds, poolChunks := mpc.PoolTotals()
	lines = append(lines,
		fmt.Sprintf("mrserve_executor_pool_rounds_total %d", poolRounds),
		fmt.Sprintf("mrserve_executor_pool_chunks_total %d", poolChunks))
	// Sharded-execution activity is likewise process-wide: column batches
	// moved and wire bytes written across every transport endpoint (bytes
	// stay 0 for the in-memory transport).
	tBatches, tBytes := mpc.TransportTotals()
	lines = append(lines,
		fmt.Sprintf("mrserve_transport_batches_total %d", tBatches),
		fmt.Sprintf("mrserve_transport_bytes_total %d", tBytes))
	// Fault-tolerance activity, also process-wide: dial/send retries,
	// connection re-establishments with replay, worker respawns (counted by
	// the mrshard supervisor via mpc.AddWorkerRespawns), and the faults the
	// chaos harness injected on purpose.
	retries, reconnects, respawns := mpc.RecoveryTotals()
	delays, dups, drops, tears := mpc.ChaosTotals()
	lines = append(lines,
		fmt.Sprintf("mrserve_transport_retries_total %d", retries),
		fmt.Sprintf("mrserve_transport_reconnects_total %d", reconnects),
		fmt.Sprintf("mrserve_worker_respawns_total %d", respawns),
		fmt.Sprintf("mrserve_chaos_faults_total %d", delays+dups+drops+tears))
	m.mu.Unlock()

	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
