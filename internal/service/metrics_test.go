package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/mpc"
)

// goldenMetrics builds a metrics set with fixed injected process-wide
// totals and a deterministic observation history, so the rendered
// document is byte-for-byte reproducible regardless of what other tests
// in the binary did to the real mpc counters.
func goldenMetrics() *Metrics {
	m := newMetricsWith(totalsFuncs{
		pool:      func() (uint64, uint64) { return 1200, 4800 },
		transport: func() (uint64, uint64) { return 37, 65536 },
		recovery:  func() (uint64, uint64, uint64) { return 2, 1, 3 },
		chaos:     func() (uint64, uint64, uint64, uint64) { return 4, 0, 1, 2 },
	})
	// The counter mix NewEngine seeds plus a short serving history.
	m.inc("shards", 0)
	m.inc("fallback_unsharded_total", 0)
	m.inc("jobs_abandoned_total", 0)
	m.inc("jobs_submitted_total", 5)
	m.inc("jobs_completed_total", 4)
	m.inc("jobs_cache_hits_total", 1)
	m.inc("jobs_coalesced_total", 1)
	m.inc("flights_executed_total", 3)
	m.inc("jobs_failed_total", 1)
	m.observeLatency(700 * time.Microsecond)                     // le="1"
	m.observeLatency(1500 * time.Microsecond)                    // le="2"
	m.observeLatency(250 * time.Millisecond)                     // le="256"
	m.observeLatency(200 * time.Second)                          // +Inf (beyond 2^17 ms)
	m.observeActivity(mpc.Metrics{Rounds: 4, ActiveSum: 40})     // mean 10, le="16"
	m.observeActivity(mpc.Metrics{Rounds: 2, ActiveSum: 40000})  // mean 20000, +Inf
	m.observeActivity(mpc.Metrics{Rounds: 10, ActiveSum: 10})    // mean 1, le="1"
	m.observeActivity(mpc.Metrics{Rounds: 1, ActiveSum: 0})      // mean 0, le="1"
	m.observeActivity(mpc.Metrics{Rounds: 0, ActiveSum: 999999}) // ignored
	return m
}

// TestMetricsGoldenDocument pins the /metrics exposition byte-for-byte:
// sorted service counters, the two power-of-two histograms in the exact
// historical format, then the eight fixed-order process-wide gauges.
// serve_smoke.sh greps exact lines out of this document, so any drift is
// an API break. Regenerate deliberately with
// UPDATE_GOLDEN=1 go test ./internal/service -run TestMetricsGolden
func TestMetricsGoldenDocument(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenMetrics().WritePlain(&buf); err != nil {
		t.Fatalf("WritePlain: %v", err)
	}
	golden := filepath.Join("testdata", "metrics_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("/metrics document drifted from %s\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestMetricsLiveTotalsWired checks NewMetrics reads the real process-wide
// mpc counters (values only sanity-checked: other tests move them).
func TestMetricsLiveTotalsWired(t *testing.T) {
	before, _, _ := mpc.RecoveryTotals()
	mpc.AddWorkerRespawns(0) // no-op, proves linkage compiles against the real API
	var buf bytes.Buffer
	if err := NewMetrics().WritePlain(&buf); err != nil {
		t.Fatalf("WritePlain: %v", err)
	}
	for _, want := range []string{
		"mrserve_executor_pool_rounds_total ",
		"mrserve_transport_batches_total ",
		"mrserve_worker_respawns_total ",
		"mrserve_chaos_faults_total ",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("live document missing %q:\n%s", want, buf.Bytes())
		}
	}
	after, _, _ := mpc.RecoveryTotals()
	if after < before {
		t.Errorf("recovery totals went backwards: %d -> %d", before, after)
	}
}
