package service

// Out-of-core serving: uploads in any format share one content id, DataDir
// spools them to mapped containers, and evicted spooled instances
// resurrect from disk instead of failing.

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// uploadGraph is a small deterministic weighted graph for upload tests.
func uploadGraph() *graph.Graph {
	r := rng.New(31)
	g := graph.GNM(120, 600, r)
	g.AssignUniformWeights(r, 1, 30)
	return g
}

// encodeAll returns the same graph in every transport format Upload accepts.
func encodeAll(t *testing.T, g *graph.Graph) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	var text, bin, comp bytes.Buffer
	if err := graph.Encode(&text, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.EncodeContainer(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.EncodeContainerCompressed(&comp, g); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(text.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	out["text"] = text.Bytes()
	out["container"] = bin.Bytes()
	out["compressed"] = comp.Bytes()
	out["gzip-text"] = gz.Bytes()
	return out
}

// TestUploadFormatInvariantID checks that every encoding of the same graph
// uploads to the same content-addressed instance id.
func TestUploadFormatInvariantID(t *testing.T) {
	e := NewEngine(Config{Pool: 1})
	defer e.Close()
	g := uploadGraph()
	var firstID string
	for name, data := range encodeAll(t, g) {
		id, info, err := e.Upload(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if firstID == "" {
			firstID = id
		}
		if id != firstID {
			t.Fatalf("%s uploaded as id %s, want %s (ids must be format-invariant)", name, id, firstID)
		}
		if info.N != g.N || info.M != g.M() {
			t.Fatalf("%s: info (%d,%d), want (%d,%d)", name, info.N, info.M, g.N, g.M())
		}
	}
}

// TestDataDirSpoolsUploads checks that with DataDir set, uploads are
// spooled as containers, served mapped, and produce results identical to
// heap-served uploads.
func TestDataDirSpoolsUploads(t *testing.T) {
	g := uploadGraph()
	var text bytes.Buffer
	if err := graph.Encode(&text, g); err != nil {
		t.Fatal(err)
	}
	req := func(id string) JobRequest {
		return JobRequest{
			Instance: InstanceSpec{Type: "upload", ID: id},
			Alg:      "matching",
			Seed:     7,
		}
	}

	heapEng := NewEngine(Config{Pool: 1})
	defer heapEng.Close()
	heapID, heapInfo, err := heapEng.Upload(text.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if heapInfo.Mapped {
		t.Fatal("upload without DataDir reported Mapped")
	}
	heapRes := finished(t, heapEng, mustSubmit(t, heapEng, req(heapID)))

	dir := t.TempDir()
	mapEng := NewEngine(Config{Pool: 1, DataDir: dir})
	defer mapEng.Close()
	mapID, mapInfo, err := mapEng.Upload(text.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if mapID != heapID {
		t.Fatalf("spooled upload id %s differs from heap id %s", mapID, heapID)
	}
	if !mapInfo.Mapped {
		t.Fatal("upload with DataDir not served mapped")
	}
	spool := filepath.Join(dir, mapID+".mrg")
	if err := graph.VerifyContainer(spool); err != nil {
		t.Fatalf("spooled container: %v", err)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, ".spool-*")); len(leftovers) != 0 {
		t.Fatalf("temp spool files leaked: %v", leftovers)
	}

	mapRes := finished(t, mapEng, mustSubmit(t, mapEng, req(mapID)))
	if mapRes.Result.Summary != heapRes.Result.Summary ||
		mapRes.Result.Metrics != heapRes.Result.Metrics {
		t.Fatalf("mapped result differs from heap result:\n  heap:   %s\n  mapped: %s",
			heapRes.Result.Summary, mapRes.Result.Summary)
	}

	// The instance listing reports the mapped form.
	for _, info := range mapEng.Instances() {
		if info.ID == mapID && !info.Mapped {
			t.Fatal("instance listing lost the Mapped flag")
		}
	}
}

// TestDataDirResurrection checks that an upload evicted from the instance
// cache is remapped from the spool on the next job, instead of failing with
// unknown-id.
func TestDataDirResurrection(t *testing.T) {
	dir := t.TempDir()
	// Capacity 1: the second upload evicts the first.
	e := NewEngine(Config{Pool: 1, Instances: 1, DataDir: dir})
	defer e.Close()

	var a, b bytes.Buffer
	if err := graph.Encode(&a, uploadGraph()); err != nil {
		t.Fatal(err)
	}
	g2 := graph.GNM(80, 200, rng.New(99))
	g2.AssignUnitWeights()
	if err := graph.Encode(&b, g2); err != nil {
		t.Fatal(err)
	}
	idA, _, err := e.Upload(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Upload(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if len(e.Instances()) != 1 {
		t.Fatalf("cache holds %d instances, want 1 (eviction)", len(e.Instances()))
	}

	j := mustSubmit(t, e, JobRequest{
		Instance: InstanceSpec{Type: "upload", ID: idA},
		Alg:      "mis",
		Seed:     3,
	})
	v := finished(t, e, j)
	if v.Result == nil || v.Result.InstanceID != idA {
		t.Fatal("resurrected job did not run against the original instance")
	}

	// Without a data directory the same eviction is fatal for the id.
	plain := NewEngine(Config{Pool: 1, Instances: 1})
	defer plain.Close()
	idP, _, err := plain.Upload(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plain.Upload(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	jp := mustSubmit(t, plain, JobRequest{
		Instance: InstanceSpec{Type: "upload", ID: idP},
		Alg:      "mis",
		Seed:     3,
	})
	jp.Wait()
	if vp := plain.Snapshot(jp); vp.Status != StatusFailed {
		t.Fatalf("evicted upload without DataDir: status %s, want failed", vp.Status)
	}
}

// TestPreloadFile checks that preloading a graph file registers it under
// the same id an HTTP upload of the bytes would get, for both text and
// container files.
func TestPreloadFile(t *testing.T) {
	g := uploadGraph()
	var text bytes.Buffer
	if err := graph.Encode(&text, g); err != nil {
		t.Fatal(err)
	}
	ref := NewEngine(Config{Pool: 1})
	defer ref.Close()
	wantID, _, err := ref.Upload(text.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(textPath, text.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "g.mrg")
	if err := graph.WriteContainerFile(binPath, g); err != nil {
		t.Fatal(err)
	}

	e := NewEngine(Config{Pool: 1, DataDir: filepath.Join(dir, "data")})
	defer e.Close()
	for _, path := range []string{textPath, binPath} {
		id, info, err := e.PreloadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if id != wantID {
			t.Fatalf("%s: preloaded as %s, upload id is %s", path, id, wantID)
		}
		if !info.Mapped {
			t.Fatalf("%s: preloaded instance not mapped", path)
		}
	}

	v := finished(t, e, mustSubmit(t, e, JobRequest{
		Instance: InstanceSpec{Type: "upload", ID: wantID},
		Alg:      "vcolour",
		Seed:     5,
	}))
	if v.Result == nil {
		t.Fatal("no result from preloaded instance")
	}
}
