package service

import (
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/ledger"
)

// The data directory is the daemon's out-of-core instance store: when
// Config.DataDir is set, every uploaded or preloaded graph is spooled to
// DataDir/<id>.mrg as a raw binary container and served through
// graph.OpenMapped. The kernel's page cache then decides how much of each
// instance is resident; the engine holds only the O(header) mapping plus
// the small edge-list alias, one physical mapping shared by every
// concurrent job referencing the instance. Because the file name is the
// content-addressed instance id, an evicted upload can be resurrected from
// disk on the next reference instead of failing (instanceCache.get).

// spoolPath is the content-addressed container location for an instance id.
func spoolPath(dir, id string) string { return filepath.Join(dir, id+".mrg") }

// spoolMapped writes g to the data directory as a raw binary container
// (unless the content-addressed file already exists) and reopens it mapped.
// The write is atomic AND durable — temp file, fsync, rename, directory
// fsync — so neither a concurrent spool of the same id nor a crash at any
// point can leave a partial or unlinked container behind. Durability
// matters here because the job ledger references spooled instances by
// content id across restarts: a torn <id>.mrg would poison every future
// replay of the jobs recorded against it.
func spoolMapped(dir, id string, g *graph.Graph) (*graph.Graph, error) {
	path := spoolPath(dir, id)
	if _, err := os.Stat(path); err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		tmp, err := os.CreateTemp(dir, ".spool-*.tmp")
		if err != nil {
			return nil, err
		}
		tmpName := tmp.Name()
		if err := graph.EncodeContainer(tmp, g); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return nil, err
		}
		// The container's bytes must be on stable storage before the
		// rename publishes the name: rename-then-crash must never expose
		// an empty or torn file under the content-addressed id.
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return nil, err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmpName)
			return nil, err
		}
		if err := os.Rename(tmpName, path); err != nil {
			os.Remove(tmpName)
			return nil, err
		}
		// And the directory entry itself must survive the crash, or the
		// file exists with no name.
		if err := ledger.SyncDir(dir); err != nil {
			return nil, err
		}
	}
	return graph.OpenMapped(path)
}

// openSpooled maps a previously spooled instance, if the data directory has
// it. Used to resurrect evicted uploads by id.
func openSpooled(dir, id string) (*graph.Graph, error) {
	if dir == "" {
		return nil, os.ErrNotExist
	}
	return graph.OpenMapped(spoolPath(dir, id))
}
