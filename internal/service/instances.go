package service

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// instanceCache builds each distinct instance spec once and shares the
// immutable built instance across all jobs referencing it. Distinct specs
// build concurrently; identical specs single-flight through a per-entry
// sync.Once, so a burst of jobs for a new instance costs one build. Beyond
// the capacity, the least recently used entries are evicted — eviction
// drops only the cache reference, never an instance a running job holds.
type instanceCache struct {
	mu      sync.Mutex
	cap     int
	dataDir string // spooled-container store; "" disables resurrection
	entries map[string]*instanceEntry
	tick    uint64 // recency clock
	metrics *Metrics
}

type instanceEntry struct {
	id   string
	spec InstanceSpec
	once sync.Once
	in   core.Input
	err  error
	// built flips after once completes; guarded by the cache mutex for
	// the listing (the builder goroutine sets it while holding it).
	built    bool
	words    int64
	lastUsed uint64
	uploaded bool
}

func newInstanceCache(cap int, dataDir string, metrics *Metrics) *instanceCache {
	return &instanceCache{cap: cap, dataDir: dataDir,
		entries: make(map[string]*instanceEntry), metrics: metrics}
}

// get returns the built instance for spec, building it on first use. The
// id must be SpecID(spec).
func (c *instanceCache) get(id string, spec InstanceSpec) (core.Input, error) {
	c.mu.Lock()
	e, ok := c.entries[id]
	if !ok {
		if spec.Type == "upload" && len(spec.Data) == 0 {
			// Not in the cache and no bytes to rebuild from. With a data
			// directory, an earlier upload of this id left a spooled
			// container behind — remap it (O(header)) instead of failing,
			// so eviction never loses an out-of-core instance.
			g, rerr := openSpooled(c.dataDir, id)
			if rerr != nil {
				c.mu.Unlock()
				return core.Input{}, fmt.Errorf("service: unknown instance id %q (evicted or never uploaded)", id)
			}
			e = &instanceEntry{id: id, spec: spec, in: core.Input{Graph: g}, uploaded: true}
			e.once.Do(func() {}) // already built; get must not rebuild
			e.built = true
			e.words = instanceWords(e.in)
			c.entries[id] = e
			c.metrics.inc("instances_remapped_total", 1)
		} else {
			e = &instanceEntry{id: id, spec: spec}
			c.entries[id] = e
		}
	}
	// Refresh recency before evicting so a full cache never victimizes
	// the entry being requested.
	c.tick++
	e.lastUsed = c.tick
	if !ok {
		c.evictLocked()
	}
	c.mu.Unlock()

	e.once.Do(func() {
		in, err := BuildInstance(e.spec)
		c.mu.Lock()
		e.in, e.err = in, err
		e.built = true
		if err == nil {
			e.words = instanceWords(in)
			// Uploaded bytes are only needed to build; drop them once
			// the instance exists.
			e.spec.Data = nil
		}
		c.mu.Unlock()
		if err == nil {
			c.metrics.inc("instances_built_total", 1)
		}
	})
	if e.err == nil {
		c.metrics.inc("instance_cache_requests_total", 1)
	}
	return e.in, e.err
}

// put inserts a pre-built instance (uploads).
func (c *instanceCache) put(id string, spec InstanceSpec, in core.Input) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; ok {
		return
	}
	spec.Data = nil
	e := &instanceEntry{id: id, spec: spec, in: in, built: true, words: instanceWords(in), uploaded: true}
	e.once.Do(func() {}) // mark built: get must not rebuild
	c.tick++
	e.lastUsed = c.tick
	c.entries[id] = e
	c.metrics.inc("instances_built_total", 1)
	c.evictLocked()
}

// evictLocked removes least-recently-used entries beyond capacity.
func (c *instanceCache) evictLocked() {
	for len(c.entries) > c.cap {
		var victim *instanceEntry
		for _, e := range c.entries {
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		delete(c.entries, victim.id)
		c.metrics.inc("instances_evicted_total", 1)
	}
}

// InstanceInfo is one row of the GET /v1/instances listing.
type InstanceInfo struct {
	ID       string `json:"id"`
	Type     string `json:"type"`
	N        int    `json:"n,omitempty"`
	M        int    `json:"m,omitempty"`
	Sets     int    `json:"sets,omitempty"`
	Elements int    `json:"elements,omitempty"`
	Words    int64  `json:"words"`
	Uploaded bool   `json:"uploaded,omitempty"`
	Building bool   `json:"building,omitempty"`
	// Mapped marks instances served zero-copy from an mmap'ed binary
	// container (Config.DataDir) rather than from the heap.
	Mapped bool `json:"mapped,omitempty"`
}

// list snapshots the cache, most recently used first.
func (c *instanceCache) list() []InstanceInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := make([]*instanceEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].lastUsed > entries[j].lastUsed })
	out := make([]InstanceInfo, 0, len(entries))
	for _, e := range entries {
		if e.built && e.err != nil {
			continue // failed builds linger only until evicted; don't list them
		}
		info := InstanceInfo{ID: e.id, Type: e.spec.Type, Words: e.words,
			Uploaded: e.uploaded, Building: !e.built}
		if g := e.in.Graph; g != nil {
			info.N, info.M, info.Mapped = g.N, g.M(), g.Mapped()
		}
		if cov := e.in.Cover; cov != nil {
			info.Sets, info.Elements = cov.NumSets(), cov.NumElements
		}
		out = append(out, info)
	}
	return out
}
