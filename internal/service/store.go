package service

import "container/list"

// resultStore is a small LRU cache from job key to completed Result.
// Results are immutable once stored, so a cache hit can be handed to a
// caller without copying. Guarded by the engine mutex.
type resultStore struct {
	cap   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *storedResult
}

type storedResult struct {
	key string
	res *Result
}

func newResultStore(cap int) *resultStore {
	return &resultStore{cap: cap, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key, refreshing its recency.
func (s *resultStore) get(key string) (*Result, bool) {
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*storedResult).res, true
}

// put inserts (or refreshes) a result, evicting the least recently used
// entry beyond capacity.
func (s *resultStore) put(key string, res *Result) {
	if el, ok := s.items[key]; ok {
		el.Value.(*storedResult).res = res
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&storedResult{key: key, res: res})
	for s.order.Len() > s.cap {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.items, last.Value.(*storedResult).key)
	}
}

// len reports the number of cached results.
func (s *resultStore) len() int { return s.order.Len() }
