package service

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
)

// directRun executes a request the way cmd/mrrun does — build the instance
// from the spec, run the algorithm through the registry — bypassing the
// engine entirely. It is the reference for the serving-path determinism
// tests.
func directRun(t testing.TB, req JobRequest) *core.RunResult {
	t.Helper()
	in, err := BuildInstance(req.Instance)
	if err != nil {
		t.Fatal(err)
	}
	alg, ok := core.LookupAlgorithm(req.Alg)
	if !ok {
		t.Fatalf("unknown algorithm %q", req.Alg)
	}
	mu := defaultMu
	if req.Mu != nil {
		mu = *req.Mu
	}
	res, err := alg.Run(in, core.Params{Mu: mu, Seed: req.Seed, Workers: 0}, req.Args)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustSubmit submits and fails the test on error.
func mustSubmit(t testing.TB, e *Engine, req JobRequest) *Job {
	t.Helper()
	j, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// finished waits for the job and returns its final view, failing on error.
func finished(t testing.TB, e *Engine, j *Job) JobView {
	t.Helper()
	j.Wait()
	v := e.Snapshot(j)
	if v.Status != StatusDone {
		t.Fatalf("job %s: status %s, error %q", v.ID, v.Status, v.Error)
	}
	return v
}

// assertSameResult asserts the deterministic payload matches the direct
// reference bit for bit: summary string, scalars, and model metrics.
func assertSameResult(t *testing.T, label string, got *Result, want *core.RunResult) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil result", label)
	}
	if got.Summary != want.Summary {
		t.Errorf("%s: summary %q, want %q", label, got.Summary, want.Summary)
	}
	if got.Size != want.Size || got.Weight != want.Weight || got.Valid != want.Valid ||
		got.Iterations != want.Iterations {
		t.Errorf("%s: scalars (%d, %v, %v, %d), want (%d, %v, %v, %d)", label,
			got.Size, got.Weight, got.Valid, got.Iterations,
			want.Size, want.Weight, want.Valid, want.Iterations)
	}
	if got.Metrics != want.Metrics {
		t.Errorf("%s: metrics %+v, want %+v", label, got.Metrics, want.Metrics)
	}
}

// TestServingPathsDeterminism is the end-to-end determinism check: the
// same (instance spec, alg, args, µ, seed) must return bit-identical
// results served cold, coalesced into a concurrent identical request,
// repeated from cache, and on an engine with a parallel round executor —
// all equal to the direct (mrrun-style) run.
func TestServingPathsDeterminism(t *testing.T) {
	reqs := []JobRequest{
		{Instance: InstanceSpec{Type: "density", N: 150, C: 0.3, Seed: 7}, Alg: "matching", Seed: 7},
		{Instance: InstanceSpec{Type: "density", N: 120, C: 0.3, Seed: 4}, Alg: "mis", Seed: 4},
		{Instance: InstanceSpec{Type: "vertexcover", N: 100, C: 0.3, Seed: 3}, Alg: "vertexcover", Seed: 3},
		{Instance: InstanceSpec{Type: "setcover-f", N: 60, C: 0.3, F: 3, Seed: 2}, Alg: "setcover-f", Seed: 2},
		{Instance: InstanceSpec{Type: "setcover-greedy", N: 120, Seed: 9}, Alg: "setcover-greedy",
			Args: map[string]float64{"eps": 0.3}, Seed: 9},
		{Instance: InstanceSpec{Type: "density", N: 100, C: 0.3, Seed: 5}, Alg: "bmatching",
			Args: map[string]float64{"b": 3}, Seed: 5},
	}
	for _, req := range reqs {
		req := req
		t.Run(req.Alg, func(t *testing.T) {
			want := directRun(t, req)

			// Cold.
			e := NewEngine(Config{Pool: 2})
			defer e.Close()
			cold := finished(t, e, mustSubmit(t, e, req))
			if cold.Source != SourceRun {
				t.Fatalf("cold source %q", cold.Source)
			}
			assertSameResult(t, "cold", cold.Result, want)

			// Repeated: served from the LRU result store.
			cached := finished(t, e, mustSubmit(t, e, req))
			if cached.Source != SourceCache {
				t.Fatalf("repeat source %q, want cache", cached.Source)
			}
			assertSameResult(t, "cached", cached.Result, want)

			// Coalesced: on a fresh single-worker engine, occupy the
			// worker, then submit the job twice; the second submission
			// must attach to the first's flight.
			e2 := NewEngine(Config{Pool: 1})
			defer e2.Close()
			blocker := mustSubmit(t, e2, JobRequest{
				Instance: InstanceSpec{Type: "density", N: 200, C: 0.3, Seed: 99},
				Alg:      "luby", Seed: 99,
			})
			leader := mustSubmit(t, e2, req)
			follower := mustSubmit(t, e2, req)
			blocker.Wait()
			lv, fv := finished(t, e2, leader), finished(t, e2, follower)
			if lv.Source != SourceRun || fv.Source != SourceBatch {
				t.Fatalf("coalesced sources (%q, %q), want (run, batch)", lv.Source, fv.Source)
			}
			assertSameResult(t, "leader", lv.Result, want)
			assertSameResult(t, "follower", fv.Result, want)

			// Parallel round executor: wall-clock-only by contract.
			e3 := NewEngine(Config{Pool: 1, Workers: -1})
			defer e3.Close()
			par := finished(t, e3, mustSubmit(t, e3, req))
			assertSameResult(t, "parallel-executor", par.Result, want)
		})
	}
}

// TestEngineHammer floods the engine with concurrent identical and
// distinct jobs (run under -race by CI). Every job must complete with the
// result of its key's reference run — no cross-job interference in
// results or model metrics — and each distinct key must execute exactly
// once (single-flight + cache).
func TestEngineHammer(t *testing.T) {
	reqs := []JobRequest{
		{Instance: InstanceSpec{Type: "density", N: 90, C: 0.3, Seed: 1}, Alg: "mis", Seed: 1},
		{Instance: InstanceSpec{Type: "density", N: 90, C: 0.3, Seed: 1}, Alg: "luby", Seed: 8},
		{Instance: InstanceSpec{Type: "density", N: 80, C: 0.3, Seed: 2}, Alg: "matching", Seed: 5},
		{Instance: InstanceSpec{Type: "setcover-f", N: 40, C: 0.3, F: 3, Seed: 3}, Alg: "setcover-f", Seed: 2},
		{Instance: InstanceSpec{Type: "density", N: 70, C: 0.3, Seed: 4}, Alg: "vcolour", Seed: 6},
	}
	want := make([]*core.RunResult, len(reqs))
	for i, req := range reqs {
		want[i] = directRun(t, req)
	}

	e := NewEngine(Config{Pool: 4, Results: 64, Instances: 16})
	defer e.Close()

	const waves = 8
	var wg sync.WaitGroup
	views := make([]JobView, waves*len(reqs))
	errs := make([]error, waves*len(reqs))
	for w := 0; w < waves; w++ {
		for i, req := range reqs {
			wg.Add(1)
			go func(slot int, req JobRequest) {
				defer wg.Done()
				j, err := e.Submit(req)
				if err != nil {
					errs[slot] = err
					return
				}
				j.Wait()
				views[slot] = e.Snapshot(j)
			}(w*len(reqs)+i, req)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	for slot, v := range views {
		i := slot % len(reqs)
		if v.Status != StatusDone {
			t.Fatalf("slot %d (%s): status %s, error %q", slot, reqs[i].Alg, v.Status, v.Error)
		}
		assertSameResult(t, fmt.Sprintf("slot %d (%s, source %s)", slot, reqs[i].Alg, v.Source),
			v.Result, want[i])
	}

	m := e.Metrics()
	if got := m.counter("flights_executed_total"); got != uint64(len(reqs)) {
		t.Errorf("flights executed %d, want %d (single-flight per distinct key)", got, len(reqs))
	}
	if got := m.counter("jobs_completed_total"); got != waves*uint64(len(reqs)) {
		t.Errorf("jobs completed %d, want %d", got, waves*len(reqs))
	}
	coalesced := m.counter("jobs_coalesced_total")
	hits := m.counter("jobs_cache_hits_total")
	if coalesced+hits != (waves-1)*uint64(len(reqs)) {
		t.Errorf("coalesced %d + cache hits %d = %d, want %d",
			coalesced, hits, coalesced+hits, (waves-1)*len(reqs))
	}
	// The instance cache must have built each distinct spec exactly once
	// (two reqs share a spec).
	if got := m.counter("instances_built_total"); got != 4 {
		t.Errorf("instances built %d, want 4", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := NewEngine(Config{Pool: 1})
	defer e.Close()
	spec := InstanceSpec{Type: "density", N: 50, C: 0.3, Seed: 1}
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"unknown alg", JobRequest{Instance: spec, Alg: "nope"}},
		{"unknown arg", JobRequest{Instance: spec, Alg: "matching", Args: map[string]float64{"zeta": 1}}},
		{"bad spec type", JobRequest{Instance: InstanceSpec{Type: "wat", N: 5}, Alg: "matching"}},
		{"zero n", JobRequest{Instance: InstanceSpec{Type: "density"}, Alg: "matching"}},
		{"huge n", JobRequest{Instance: InstanceSpec{Type: "density", N: 1 << 30, C: 0.3}, Alg: "matching"}},
		{"incompatible input", JobRequest{Instance: spec, Alg: "setcover-f"}},
		{"graph alg on setcover", JobRequest{Instance: InstanceSpec{Type: "setcover-greedy", N: 40}, Alg: "mis"}},
		{"upload without data", JobRequest{Instance: InstanceSpec{Type: "upload"}, Alg: "mis"}},
	}
	for _, tc := range cases {
		if _, err := e.Submit(tc.req); err == nil {
			t.Errorf("%s: expected a submit error", tc.name)
		}
	}
	// A valid bmatching b must be >= 1; that is a run-time failure (the
	// job fails, the submit succeeds).
	j := mustSubmit(t, e, JobRequest{Instance: spec, Alg: "bmatching",
		Args: map[string]float64{"b": 0}, Seed: 1})
	j.Wait()
	if v := e.Snapshot(j); v.Status != StatusFailed || v.Error == "" {
		t.Errorf("b=0 job: status %s, error %q; want failed", v.Status, v.Error)
	}
}

func TestSpecIDs(t *testing.T) {
	a := InstanceSpec{Type: "density", N: 100, C: 0.3, Seed: 1}
	b := InstanceSpec{Type: "density", N: 100, C: 0.3, Seed: 2}
	idA1, err := SpecID(a)
	if err != nil {
		t.Fatal(err)
	}
	idA2, _ := SpecID(a)
	idB, _ := SpecID(b)
	if idA1 != idA2 {
		t.Errorf("spec id unstable: %s vs %s", idA1, idA2)
	}
	if idA1 == idB {
		t.Errorf("distinct seeds share id %s", idA1)
	}
	if _, err := SpecID(InstanceSpec{Type: "density", N: -1}); err == nil {
		t.Error("negative n: expected error")
	}
}

func TestJobKeyCanonicalization(t *testing.T) {
	// Argument order and absent-vs-explicit defaults must not change the
	// key: both submissions below coalesce or cache-hit.
	e := NewEngine(Config{Pool: 1})
	defer e.Close()
	spec := InstanceSpec{Type: "density", N: 60, C: 0.3, Seed: 3}
	j1 := finished(t, e, mustSubmit(t, e, JobRequest{Instance: spec, Alg: "bmatching",
		Args: map[string]float64{"b": 2, "eps": 0.2}, Seed: 3}))
	j2 := finished(t, e, mustSubmit(t, e, JobRequest{Instance: spec, Alg: "bmatching", Seed: 3}))
	if j2.Source != SourceCache {
		t.Fatalf("defaulted-args resubmit source %q, want cache", j2.Source)
	}
	if j1.Result.Summary != j2.Result.Summary {
		t.Fatalf("summaries differ: %q vs %q", j1.Result.Summary, j2.Result.Summary)
	}
}

func TestInstanceEviction(t *testing.T) {
	e := NewEngine(Config{Pool: 1, Instances: 2})
	defer e.Close()
	submit := func(specSeed, jobSeed uint64) {
		finished(t, e, mustSubmit(t, e, JobRequest{
			Instance: InstanceSpec{Type: "density", N: 50, C: 0.3, Seed: specSeed},
			Alg:      "mis", Seed: jobSeed,
		}))
	}
	for seed := uint64(1); seed <= 3; seed++ {
		submit(seed, seed)
	}
	if got := len(e.Instances()); got > 2 {
		t.Errorf("instance cache holds %d entries, cap 2", got)
	}
	if got := e.Metrics().counter("instances_evicted_total"); got < 1 {
		t.Errorf("expected at least one eviction, got %d", got)
	}
	// Eviction must victimize the LRU entry, never the entry being
	// inserted: spec 3 (just requested) stays cached, so a new job on it
	// builds nothing.
	found := false
	for _, info := range e.Instances() {
		id, _ := SpecID(InstanceSpec{Type: "density", N: 50, C: 0.3, Seed: 3})
		if info.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatal("most recently used instance was evicted")
	}
	built := e.Metrics().counter("instances_built_total")
	submit(3, 99) // distinct job key, same instance
	if got := e.Metrics().counter("instances_built_total"); got != built {
		t.Errorf("cached instance rebuilt: builds %d -> %d", built, got)
	}
}

func TestResultStoreLRU(t *testing.T) {
	s := newResultStore(2)
	r := func(i int) *Result { return &Result{Seed: uint64(i)} }
	s.put("a", r(1))
	s.put("b", r(2))
	if _, ok := s.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	s.put("c", r(3)) // evicts b
	if _, ok := s.get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := s.get(k); !ok {
			t.Errorf("%s missing", k)
		}
	}
	if s.len() != 2 {
		t.Errorf("len %d, want 2", s.len())
	}
}

func TestUploadServesJobs(t *testing.T) {
	// Upload a graph, run on it by id, and check the result equals the
	// direct run on inline data.
	in, err := BuildInstance(InstanceSpec{Type: "density", N: 80, C: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	data := encodeGraph(t, in)

	e := NewEngine(Config{Pool: 1})
	defer e.Close()
	id, info, err := e.Upload(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 80 || info.M != in.Graph.M() {
		t.Fatalf("upload info %+v", info)
	}
	want := directRun(t, JobRequest{Instance: InstanceSpec{Type: "upload", Data: data}, Alg: "luby", Seed: 2})
	v := finished(t, e, mustSubmit(t, e, JobRequest{
		Instance: InstanceSpec{Type: "upload", ID: id}, Alg: "luby", Seed: 2,
	}))
	assertSameResult(t, "upload-by-id", v.Result, want)

	// Unknown (or evicted) id: submit succeeds, job fails gracefully.
	j := mustSubmit(t, e, JobRequest{Instance: InstanceSpec{Type: "upload", ID: "feedbeef"}, Alg: "luby", Seed: 2})
	j.Wait()
	if view := e.Snapshot(j); view.Status != StatusFailed {
		t.Fatalf("unknown id: status %s, want failed", view.Status)
	}
}

func TestEngineCloseDrains(t *testing.T) {
	e := NewEngine(Config{Pool: 1})
	jobs := make([]*Job, 0, 4)
	for seed := uint64(1); seed <= 4; seed++ {
		jobs = append(jobs, mustSubmit(t, e, JobRequest{
			Instance: InstanceSpec{Type: "density", N: 60, C: 0.3, Seed: 1},
			Alg:      "mis", Seed: seed,
		}))
	}
	e.Close()
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not completed by Close", j.ID)
		}
		if v := e.Snapshot(j); v.Status != StatusDone {
			t.Fatalf("job %s: status %s after drain", j.ID, v.Status)
		}
	}
	if _, err := e.Submit(JobRequest{
		Instance: InstanceSpec{Type: "density", N: 60, C: 0.3, Seed: 1},
		Alg:      "mis", Seed: 9,
	}); err == nil {
		t.Fatal("submit after Close should fail")
	}
}

func TestAlgorithmsRegistry(t *testing.T) {
	algs := core.Algorithms()
	if len(algs) != 12 {
		t.Fatalf("registry has %d algorithms, want 12", len(algs))
	}
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.Name
	}
	if !reflect.DeepEqual(names, []string{
		"bmatching", "clique", "ecolour", "filtering", "luby", "matching",
		"mis", "mis-simple", "setcover-f", "setcover-greedy", "vcolour", "vertexcover",
	}) {
		t.Fatalf("registry names %v", names)
	}
	for _, a := range algs {
		if _, ok := core.LookupAlgorithm(a.Name); !ok {
			t.Errorf("lookup %q failed", a.Name)
		}
	}
}
