package service

// Graceful-degradation and abandonment tests for the engine: transport
// failure falls back to bit-identical unsharded execution (counted),
// abandoning a job cancels its flight, and chaos injected under the
// service still yields bit-identical results.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mpc"
)

// TestFallbackUnsharded: a sharded engine whose transport cannot come up
// degrades to unsharded in-process execution with a bit-identical result,
// and counts the fallback.
func TestFallbackUnsharded(t *testing.T) {
	req := JobRequest{
		Instance: InstanceSpec{Type: "density", N: 150, C: 0.3, Seed: 7},
		Alg:      "matching", Seed: 7,
	}
	want := directRun(t, req)

	broken := func(k int) ([]mpc.Transport, error) {
		return nil, fmt.Errorf("%w: injected fabric outage", mpc.ErrTransport)
	}
	e := NewEngine(Config{Pool: 1, Shards: 2, transportFactory: broken})
	defer e.Close()
	v := finished(t, e, mustSubmit(t, e, req))
	assertSameResult(t, "fallback", v.Result, want)
	if got := e.metrics.counter("fallback_unsharded_total"); got != 1 {
		t.Errorf("fallback_unsharded_total = %d, want 1", got)
	}

	// With -no-fallback the same outage fails the job instead.
	e2 := NewEngine(Config{Pool: 1, Shards: 2, transportFactory: broken, NoFallback: true})
	defer e2.Close()
	j := mustSubmit(t, e2, req)
	j.Wait()
	if v := e2.Snapshot(j); v.Status != StatusFailed || !strings.Contains(v.Error, "injected fabric outage") {
		t.Errorf("no-fallback job: status %s error %q, want failed with the transport error", v.Status, v.Error)
	}
	if got := e2.metrics.counter("fallback_unsharded_total"); got != 0 {
		t.Errorf("no-fallback engine counted %d fallbacks", got)
	}
}

// TestAbandonCancelsFlight: abandoning a queued job's only waiter cancels
// the flight — the job fails with the context error instead of burning the
// pool — while a job with a surviving waiter keeps running.
func TestAbandonCancelsFlight(t *testing.T) {
	e := NewEngine(Config{Pool: 1})
	defer e.Close()
	// Occupy the single worker long enough that the jobs below stay queued
	// while we abandon.
	blocker := mustSubmit(t, e, JobRequest{
		Instance: InstanceSpec{Type: "density", N: 20000, C: 0.3, Seed: 42},
		Alg:      "luby", Seed: 42,
	})

	// Two identical submissions batch into one flight: abandoning one
	// waiter must not cancel the other's work.
	shared := JobRequest{
		Instance: InstanceSpec{Type: "density", N: 90, C: 0.3, Seed: 5},
		Alg:      "mis", Seed: 5,
	}
	lead := mustSubmit(t, e, shared)
	follow := mustSubmit(t, e, shared)
	e.Abandon(follow)

	// A job whose sole waiter leaves is canceled.
	doomed := mustSubmit(t, e, JobRequest{
		Instance: InstanceSpec{Type: "density", N: 80, C: 0.3, Seed: 21},
		Alg:      "mis", Seed: 21,
	})
	e.Abandon(doomed)

	blocker.Wait()
	lead.Wait()
	doomed.Wait()
	if v := e.Snapshot(lead); v.Status != StatusDone {
		t.Errorf("shared flight with a surviving waiter: status %s error %q", v.Status, v.Error)
	}
	if v := e.Snapshot(doomed); v.Status != StatusFailed || !strings.Contains(v.Error, "canceled") {
		t.Errorf("abandoned job: status %s error %q, want failed with a canceled error", v.Status, v.Error)
	}
	if got := e.metrics.counter("jobs_abandoned_total"); got != 2 {
		t.Errorf("jobs_abandoned_total = %d, want 2", got)
	}
	// Abandoning a finished job is a no-op.
	e.Abandon(blocker)
	if v := e.Snapshot(blocker); v.Status != StatusDone {
		t.Errorf("abandon after completion changed status to %s", v.Status)
	}
}

// TestServiceChaosDeterminism: chaos injected under the service's sharded
// TCP transport — every cross-shard batch sent twice — is healed by the
// wire dedup and the served result stays bit-identical to the direct run.
// (DupEvery is 1 because this workload's sparse traffic makes only a
// handful of cross-shard sends; a sparser schedule could miss all of them.)
func TestServiceChaosDeterminism(t *testing.T) {
	req := JobRequest{
		Instance: InstanceSpec{Type: "density", N: 150, C: 0.3, Seed: 7},
		Alg:      "matching", Seed: 7,
	}
	want := directRun(t, req)
	e := NewEngine(Config{
		Pool: 1, Shards: 2, Transport: "tcp",
		TransportOpts: mpc.TransportOpts{BarrierTimeout: 30 * time.Second},
		Chaos:         mpc.ChaosSpec{Seed: 7, DupEvery: 1},
	})
	defer e.Close()
	v := finished(t, e, mustSubmit(t, e, req))
	assertSameResult(t, "chaos-tcp", v.Result, want)
	if _, dups, _, _ := mpc.ChaosTotals(); dups == 0 {
		t.Error("chaos schedule injected no duplicate frames; the test proved nothing")
	}
	if got := e.metrics.counter("fallback_unsharded_total"); got != 0 {
		t.Errorf("healable chaos forced %d unsharded fallbacks", got)
	}
}

// TestMetricsRecoveryLines: /metrics exports the transport-recovery and
// chaos counters alongside the engine's own fallback and abandonment
// counts, even when all are zero.
func TestMetricsRecoveryLines(t *testing.T) {
	e := NewEngine(Config{Pool: 1})
	defer e.Close()
	var buf bytes.Buffer
	e.metrics.WritePlain(&buf)
	text := buf.String()
	for _, want := range []string{
		"mrserve_fallback_unsharded_total 0",
		"mrserve_jobs_abandoned_total 0",
		"mrserve_transport_retries_total ",
		"mrserve_transport_reconnects_total ",
		"mrserve_worker_respawns_total ",
		"mrserve_chaos_faults_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
