package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
)

// Server is the HTTP JSON API over an Engine.
//
//	POST /v1/jobs              submit a job; {"wait": true} blocks until done
//	GET  /v1/jobs/{id}         poll a job
//	GET  /v1/jobs/{id}/trace   the job's wall-clock round trace (phase
//	                           timings; readable live while it runs)
//	GET  /v1/instances   list cached instances
//	POST /v1/instances   upload a graph (text, binary container, or gzip
//	                     of either — sniffed; the content id is
//	                     format-invariant)
//	GET  /v1/algorithms  list the algorithm registry with param schemas
//	GET  /v1/ledger      durable job ledger head + stats (chain link,
//	                     persisted seq, degradation, torn tails)
//	POST /v1/ledger/verify  re-read the whole chain from storage and
//	                     verify every checksum and link (200 ok / 500
//	                     with the damaged file pinpointed)
//	GET  /metrics        plain-text counters and latency histogram
type Server struct {
	engine *Engine
	mux    *http.ServeMux
}

// maxUploadBytes bounds instance uploads (decompressed text can be much
// larger; the decoder's own header checks bound the result).
const maxUploadBytes = 256 << 20

// NewServer wires the routes.
func NewServer(e *Engine) *Server {
	s := &Server{engine: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.getJobTrace)
	s.mux.HandleFunc("GET /v1/instances", s.listInstances)
	s.mux.HandleFunc("POST /v1/instances", s.uploadInstance)
	s.mux.HandleFunc("GET /v1/algorithms", s.listAlgorithms)
	s.mux.HandleFunc("GET /v1/ledger", s.ledgerInfo)
	s.mux.HandleFunc("POST /v1/ledger/verify", s.ledgerVerify)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// jobSubmission is the POST /v1/jobs body: a JobRequest plus transport
// options.
type jobSubmission struct {
	JobRequest
	Wait bool `json:"wait,omitempty"`
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var sub jobSubmission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	j, err := s.engine.Submit(sub.JobRequest)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) {
			// Transient backpressure, not a malformed request: clients
			// should retry, so it must not look like a 4xx validation
			// failure.
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	if sub.Wait {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			// The client stopped waiting: withdraw this job's interest so a
			// flight nobody wants anymore cancels at its next round instead
			// of burning the worker slot to completion.
			s.engine.Abandon(j)
			writeJSON(w, http.StatusAccepted, s.engine.Snapshot(j))
			return
		}
		writeJSON(w, http.StatusOK, s.engine.Snapshot(j))
		return
	}
	writeJSON(w, http.StatusAccepted, s.engine.Snapshot(j))
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) getJobTrace(w http.ResponseWriter, r *http.Request) {
	view, ok := s.engine.Trace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) listInstances(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"instances": s.engine.Instances()})
}

func (s *Server) uploadInstance(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("upload: %v", err))
		return
	}
	_, info, err := s.engine.Upload(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// algorithmView is one GET /v1/algorithms row.
type algorithmView struct {
	Name    string           `json:"name"`
	Summary string           `json:"summary"`
	Input   string           `json:"input"`
	Params  []core.ParamSpec `json:"params,omitempty"`
}

func (s *Server) listAlgorithms(w http.ResponseWriter, r *http.Request) {
	algs := core.Algorithms()
	out := make([]algorithmView, 0, len(algs))
	for _, a := range algs {
		out = append(out, algorithmView{
			Name: a.Name, Summary: a.Summary,
			Input: a.Input.String(), Params: a.Params,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": out})
}

func (s *Server) ledgerInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.LedgerInfo())
}

func (s *Server) ledgerVerify(w http.ResponseWriter, r *http.Request) {
	rep, enabled := s.engine.VerifyLedger()
	if !enabled {
		writeError(w, http.StatusNotFound, fmt.Errorf("ledger disabled (start mrserve with -ledger)"))
		return
	}
	status := http.StatusOK
	if !rep.OK {
		// Verification failure is an integrity incident, not a bad
		// request: surface it as a server-side error with the report —
		// including the damaged file — as the body.
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, rep)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.engine.Metrics().WritePlain(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
