package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/setcover"
)

// InstanceSpec declares a problem instance. Specs are pure data: building
// one is deterministic (BuildInstance), so a spec's canonical hash (ID)
// names the instance it produces, and the instance cache can share one
// built instance across every job that references the same spec.
//
// Types and their fields:
//
//	density          n, c, seed   — graph.Density(n, c): m = n^{1+c} edges,
//	                                uniform edge weights in [1,100)
//	vertexcover      n, c, seed   — the density graph plus uniform vertex
//	                                weights in [1,10), converted to the
//	                                f = 2 set cover instance
//	setcover-f       n, c, f, seed — setcover.RandomFrequency: n sets,
//	                                m = n^{1+c} elements, frequency ≤ f
//	setcover-greedy  n, seed      — setcover.RandomSized: n sets over
//	                                max(n/10, 10) elements, ∆ ≈ 12
//	upload           data | id    — a graph in any format graph.DecodeAuto
//	                                accepts (text, binary container, gzip
//	                                wrappings of either); id references a
//	                                previously uploaded instance by its
//	                                content hash, which is format-invariant
//
// The generator seed discipline mirrors cmd/mrrun: a root rng.New(seed)
// split once per generator draw, in a fixed order.
type InstanceSpec struct {
	Type string  `json:"type"`
	N    int     `json:"n,omitempty"`
	C    float64 `json:"c,omitempty"`
	F    int     `json:"f,omitempty"`
	Seed uint64  `json:"seed,omitempty"`
	// Data carries uploaded graph bytes (base64 in JSON) for type
	// "upload". ID references an instance already in the cache instead;
	// when Data is set, ID is ignored and recomputed from the content.
	Data []byte `json:"data,omitempty"`
	ID   string `json:"id,omitempty"`
}

// maxInstanceN bounds generator sizes so a malformed request cannot ask the
// daemon for a terabyte instance.
const maxInstanceN = 1 << 22

// Validate checks the spec's parameters without building anything.
func (s InstanceSpec) Validate() error {
	switch s.Type {
	case "density", "vertexcover":
		if s.N < 1 || s.N > maxInstanceN {
			return fmt.Errorf("service: %s spec needs 1 <= n <= %d, got %d", s.Type, maxInstanceN, s.N)
		}
		if s.C < 0 || s.C > 1 {
			return fmt.Errorf("service: %s spec needs 0 <= c <= 1, got %g", s.Type, s.C)
		}
	case "setcover-f":
		if s.N < 1 || s.N > maxInstanceN {
			return fmt.Errorf("service: setcover-f spec needs 1 <= n <= %d, got %d", maxInstanceN, s.N)
		}
		if s.C < 0 || s.C > 1 {
			return fmt.Errorf("service: setcover-f spec needs 0 <= c <= 1, got %g", s.C)
		}
		if s.F < 1 || s.F > s.N {
			return fmt.Errorf("service: setcover-f spec needs 1 <= f <= n, got f=%d n=%d", s.F, s.N)
		}
	case "setcover-greedy":
		if s.N < 1 || s.N > maxInstanceN {
			return fmt.Errorf("service: setcover-greedy spec needs 1 <= n <= %d, got %d", maxInstanceN, s.N)
		}
	case "upload":
		if len(s.Data) == 0 && s.ID == "" {
			return fmt.Errorf("service: upload spec needs data or id")
		}
	case "":
		return fmt.Errorf("service: instance spec missing type")
	default:
		return fmt.Errorf("service: unknown instance type %q", s.Type)
	}
	return nil
}

// Provides reports whether instances of this spec satisfy an algorithm's
// input requirement.
func (s InstanceSpec) Provides(kind core.InputKind) bool {
	switch s.Type {
	case "density", "upload":
		return kind == core.InputGraph
	case "vertexcover":
		// The built input carries both the graph and the derived set
		// cover instance, so plain graph algorithms can run on it too.
		return kind == core.InputGraph || kind == core.InputVertexCover
	case "setcover-f", "setcover-greedy":
		return kind == core.InputSetCover
	}
	return false
}

// canonical returns the deterministic serialization hashed into the spec
// ID. Only the fields that affect the built instance participate.
func (s InstanceSpec) canonical() (string, error) {
	switch s.Type {
	case "density", "vertexcover":
		return fmt.Sprintf("%s n=%d c=%g seed=%d", s.Type, s.N, s.C, s.Seed), nil
	case "setcover-f":
		return fmt.Sprintf("setcover-f n=%d c=%g f=%d seed=%d", s.N, s.C, s.F, s.Seed), nil
	case "setcover-greedy":
		return fmt.Sprintf("setcover-greedy n=%d seed=%d", s.N, s.Seed), nil
	case "upload":
		if len(s.Data) == 0 {
			if s.ID == "" {
				return "", fmt.Errorf("service: upload spec needs data or id")
			}
			return "", errUploadByID
		}
		g, err := graph.DecodeAuto(bytes.NewReader(s.Data))
		if err != nil {
			return "", err
		}
		return uploadCanonical(g)
	}
	return "", fmt.Errorf("service: unknown instance type %q", s.Type)
}

// uploadCanonical returns the canonical serialization of an uploaded graph:
// the decoded, re-encoded text content. Hashing this makes the id invariant
// under transport format — text, gzip, or binary container uploads of the
// same graph share one instance — but sensitive to edge order (edge order is
// part of the algorithms' determinism contract).
func uploadCanonical(g *graph.Graph) (string, error) {
	var buf bytes.Buffer
	if err := graph.Encode(&buf, g); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return "upload sha256=" + hex.EncodeToString(sum[:]), nil
}

// canonicalID hashes a canonical serialization into a spec id.
func canonicalID(canon string) string {
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:16])
}

// errUploadByID marks a spec that references an uploaded instance by id:
// it cannot be built from the spec alone, only found in the cache.
var errUploadByID = fmt.Errorf("service: upload spec references an instance by id")

// SpecID returns the canonical content hash naming the instance the spec
// builds. For upload-by-id specs it returns the referenced id verbatim.
func SpecID(s InstanceSpec) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	canon, err := s.canonical()
	if err == errUploadByID {
		return s.ID, nil
	}
	if err != nil {
		return "", err
	}
	return canonicalID(canon), nil
}

// BuildInstance deterministically builds the instance a spec describes and
// pre-materializes every lazily-built index (CSR adjacency, weight slab,
// set cover dual), so the returned Input is safe to share across concurrent
// readers. Upload-by-id specs cannot be built here; the instance cache
// resolves them.
func BuildInstance(s InstanceSpec) (core.Input, error) {
	if err := s.Validate(); err != nil {
		return core.Input{}, err
	}
	r := rng.New(s.Seed)
	var in core.Input
	switch s.Type {
	case "density":
		g := graph.Density(s.N, s.C, r.Split())
		g.AssignUniformWeights(r.Split(), 1, 100)
		in = core.Input{Graph: g}
	case "vertexcover":
		g := graph.Density(s.N, s.C, r.Split())
		g.AssignUniformWeights(r.Split(), 1, 100)
		wr := r.Split()
		w := make([]float64, g.N)
		for i := range w {
			w[i] = wr.UniformWeight(1, 10)
		}
		in = core.Input{Graph: g, Cover: setcover.FromVertexCover(g, w)}
	case "setcover-f":
		m := int(math.Pow(float64(s.N), 1+s.C))
		in = core.Input{Cover: setcover.RandomFrequency(s.N, m, s.F, 10, r.Split())}
	case "setcover-greedy":
		m := s.N / 10
		if m < 10 {
			m = 10
		}
		in = core.Input{Cover: setcover.RandomSized(s.N, m, 12, 8, r.Split())}
	case "upload":
		if len(s.Data) == 0 {
			return core.Input{}, errUploadByID
		}
		g, err := graph.DecodeAuto(bytes.NewReader(s.Data))
		if err != nil {
			return core.Input{}, err
		}
		in = core.Input{Graph: g}
	default:
		return core.Input{}, fmt.Errorf("service: unknown instance type %q", s.Type)
	}
	materialize(in)
	return in, nil
}

// materialize forces every lazily-built index so concurrent jobs only ever
// read. Graph.Build/buildWeights and Instance.Dual mutate on first use —
// done here, once, before the instance is shared.
func materialize(in core.Input) {
	if g := in.Graph; g != nil {
		g.Build()
		if g.N > 0 {
			g.NeighborsW(0)
		}
	}
	if c := in.Cover; c != nil {
		c.Dual()
	}
}

// instanceWords approximates the resident size of an instance in words,
// for the instance listing.
func instanceWords(in core.Input) int64 {
	var w int64
	if g := in.Graph; g != nil {
		w += int64(g.N) + 4*int64(g.M())
	}
	if c := in.Cover; c != nil {
		w += int64(c.NumSets()) + 2*int64(c.TotalSize())
	}
	return w
}
