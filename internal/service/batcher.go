package service

import (
	"context"

	"repro/internal/obs"
)

// The single-flight batcher: concurrent jobs with identical keys — same
// (instance spec, algorithm, canonical args, µ, seed) — coalesce into one
// flight. The first job becomes the flight leader and is the one the
// worker pool executes; later identical jobs attach to the open flight and
// receive the leader's result when it lands (fan-out). Because jobs are
// deterministic, coalescing is invisible in the result: a batched job
// carries bit-identical output to a cold run, it just cost nothing extra.
//
// The batcher's state is guarded by the engine mutex (not its own): the
// engine must check "result cached? flight open?" and act atomically, or a
// completing flight could slip between the two checks and a fresh
// identical request would re-execute needlessly.

// flight is one in-flight execution and the jobs awaiting its result.
type flight struct {
	key    string
	alg    string
	spec   InstanceSpec
	instID string // SpecID(spec), computed once at submit time
	args   map[string]float64
	mu     float64
	seed   uint64
	jobs   []*Job

	// ring retains the flight's newest round spans (wall-clock phase
	// timings) for GET /v1/jobs/{id}/trace; nil when tracing is disabled.
	// It is internally synchronized, so a running flight's trace can be
	// snapshotted live without the engine mutex.
	ring *obs.RingSink

	// ctx cancels the execution between simulator rounds once every waiter
	// has abandoned the flight (Engine.Abandon). waiters counts jobs whose
	// submitter is still interested; it is guarded by the engine mutex like
	// the rest of the flight.
	ctx     context.Context
	cancel  context.CancelFunc
	waiters int
}

// batcher indexes open flights by job key. All methods require the engine
// mutex.
type batcher struct {
	flights map[string]*flight
}

func newBatcher() *batcher {
	return &batcher{flights: make(map[string]*flight)}
}

// attach adds j to the flight for key, opening one if needed. It returns
// the flight and whether j is its leader (leader == the flight is new and
// must be handed to the worker pool).
func (b *batcher) attach(key string, j *Job, open func() *flight) (f *flight, leader bool) {
	if f, ok := b.flights[key]; ok {
		f.jobs = append(f.jobs, j)
		f.waiters++
		j.flight = f
		return f, false
	}
	f = open()
	f.key = key
	f.jobs = []*Job{j}
	f.waiters = 1
	j.flight = f
	b.flights[key] = f
	return f, true
}

// complete closes the flight for key and returns it for result fan-out.
func (b *batcher) complete(key string) *flight {
	f := b.flights[key]
	delete(b.flights, key)
	return f
}

// open reports the number of open flights.
func (b *batcher) open() int { return len(b.flights) }
