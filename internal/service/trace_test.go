package service

import (
	"bytes"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitDone submits req with wait=true and returns the final view.
func waitDone(t *testing.T, url string, req JobRequest) JobView {
	t.Helper()
	var view JobView
	sub := jobSubmission{JobRequest: req, Wait: true}
	if status := postJSON(t, url+"/v1/jobs", sub, &view); status != http.StatusOK {
		t.Fatalf("submit status %d", status)
	}
	if view.Status != StatusDone {
		t.Fatalf("job %s finished %s: %s", view.ID, view.Status, view.Error)
	}
	return view
}

// TestHTTPJobTrace runs a job and checks its trace endpoint: one span per
// executed round, phase durations within the wall clock, cache-served
// resubmissions reporting zero rounds, sharded runs carrying per-shard
// wire words.
func TestHTTPJobTrace(t *testing.T) {
	srv, _ := newTestServer(t, Config{Pool: 1, Shards: 2})
	req := JobRequest{
		Instance: InstanceSpec{Type: "density", N: 200, C: 0.3, Seed: 7},
		Alg:      "mis", Seed: 7,
	}
	view := waitDone(t, srv.URL, req)

	var trace TraceView
	if status := getJSON(t, srv.URL+"/v1/jobs/"+view.ID+"/trace", &trace); status != http.StatusOK {
		t.Fatalf("trace status %d", status)
	}
	if trace.ID != view.ID || trace.Status != StatusDone || trace.Label != "mis" {
		t.Fatalf("trace envelope wrong: %+v", trace)
	}
	if len(trace.Rounds) != view.Result.Metrics.Rounds {
		t.Fatalf("%d trace rounds for %d executed rounds",
			len(trace.Rounds), view.Result.Metrics.Rounds)
	}
	sharded := false
	for i, r := range trace.Rounds {
		if r.Round != i+1 {
			t.Errorf("round %d numbered %d", i+1, r.Round)
		}
		if sum := r.Compute + r.Merge + r.Barrier + r.Replay; sum > r.WallUS+1000 {
			t.Errorf("round %d phases (%.1fus) exceed wall clock (%.1fus)", r.Round, sum, r.WallUS)
		}
		if len(r.ShardWireWords) == 2 {
			sharded = true
		}
	}
	if !sharded {
		t.Error("sharded engine produced no per-shard wire words in any round")
	}

	// The same request again is a cache hit: same Result, no trace rounds.
	again := waitDone(t, srv.URL, req)
	if again.Source != SourceCache {
		t.Fatalf("resubmission source = %s, want cache", again.Source)
	}
	var cached TraceView
	if status := getJSON(t, srv.URL+"/v1/jobs/"+again.ID+"/trace", &cached); status != http.StatusOK {
		t.Fatalf("cached trace status %d", status)
	}
	if len(cached.Rounds) != 0 || cached.Source != SourceCache {
		t.Fatalf("cache-served job should carry an empty trace, got %+v", cached)
	}

	var errBody map[string]string
	if status := getJSON(t, srv.URL+"/v1/jobs/j-99999999/trace", &errBody); status != http.StatusNotFound {
		t.Fatalf("unknown job trace status %d", status)
	}
}

// TestTraceDisabled checks TraceRounds < 0 switches round tracing off:
// executed jobs report zero spans and the endpoint still answers.
func TestTraceDisabled(t *testing.T) {
	srv, _ := newTestServer(t, Config{Pool: 1, TraceRounds: -1})
	view := waitDone(t, srv.URL, JobRequest{
		Instance: InstanceSpec{Type: "density", N: 100, C: 0.3, Seed: 3},
		Alg:      "mis", Seed: 3,
	})
	var trace TraceView
	if status := getJSON(t, srv.URL+"/v1/jobs/"+view.ID+"/trace", &trace); status != http.StatusOK {
		t.Fatalf("trace status %d", status)
	}
	if len(trace.Rounds) != 0 {
		t.Fatalf("tracing disabled but %d rounds recorded", len(trace.Rounds))
	}
}

// TestTraceRingRetention checks the ring keeps the newest spans and
// reports the evicted count.
func TestTraceRingRetention(t *testing.T) {
	e := NewEngine(Config{Pool: 1, TraceRounds: 2})
	defer e.Close()
	j, err := e.Submit(JobRequest{
		Instance: InstanceSpec{Type: "density", N: 300, C: 0.3, Seed: 5},
		Alg:      "mis", Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	view := e.Snapshot(j)
	if view.Status != StatusDone {
		t.Fatalf("job failed: %s", view.Error)
	}
	rounds := view.Result.Metrics.Rounds
	if rounds <= 2 {
		t.Skipf("workload ran only %d rounds; retention untestable", rounds)
	}
	trace, ok := e.Trace(j.ID)
	if !ok {
		t.Fatal("trace lookup failed")
	}
	if len(trace.Rounds) != 2 {
		t.Fatalf("ring kept %d rounds, want 2", len(trace.Rounds))
	}
	if int(trace.Dropped) != rounds-2 {
		t.Fatalf("Dropped = %d, want %d", trace.Dropped, rounds-2)
	}
	if trace.Rounds[1].Round != rounds {
		t.Fatalf("newest retained round is %d, want %d", trace.Rounds[1].Round, rounds)
	}
}

// TestEngineStructuredLogging checks the lifecycle events carry job ids
// and algorithm names through a real slog handler.
func TestEngineStructuredLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	e := NewEngine(Config{Pool: 1, Logger: logger})
	defer e.Close()
	j, err := e.Submit(JobRequest{
		Instance: InstanceSpec{Type: "density", N: 100, C: 0.3, Seed: 9},
		Alg:      "mis", Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	// flight-done logging happens after the job channel closes; give the
	// worker a beat to finish its bookkeeping.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		out := buf.String()
		mu.Unlock()
		if strings.Contains(out, "flight done") || time.Now().After(deadline) {
			for _, want := range []string{"job submitted", "flight executing", "flight done", j.ID, "alg=mis"} {
				if !strings.Contains(out, want) {
					t.Errorf("log output missing %q:\n%s", want, out)
				}
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// lockedWriter serializes concurrent handler writes in the test above.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
