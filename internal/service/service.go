// Package service is the concurrent job-serving subsystem over the MPC
// simulator: the layer that turns "run one algorithm once per process"
// (cmd/mrrun) into "serve many algorithm jobs from one long-lived daemon"
// (cmd/mrserve), the ROADMAP's serving north star.
//
// The pieces, bottom to top:
//
//   - InstanceSpec + BuildInstance (spec.go): a declarative, hashable
//     description of a problem instance — generator parameters or uploaded
//     graph bytes. Building is deterministic: one spec, one instance,
//     bit-identical everywhere.
//   - the instance cache (instances.go): builds each distinct spec once
//     (single-flight) and shares the immutable instance across all jobs
//     that reference it, with LRU eviction beyond a capacity.
//   - the job engine (engine.go) with its single-flight batcher
//     (batcher.go) and LRU result store (store.go): a bounded worker pool
//     executes jobs, identical in-flight requests coalesce into one
//     execution whose result fans out to every waiter, and completed
//     results are served from cache.
//   - Metrics (metrics.go): plain-text counters and a job-latency
//     histogram for GET /metrics.
//   - Server (http.go): the HTTP JSON API (POST /v1/jobs, GET
//     /v1/jobs/{id}, GET/POST /v1/instances, GET /v1/algorithms,
//     GET /metrics).
//
// # Determinism
//
// A job is the tuple (instance spec, algorithm, canonical args, µ, seed).
// Its Result is a pure function of that tuple: the same job served cold,
// coalesced into a concurrent identical request, or answered from the
// result cache carries bit-identical solution summaries and model metrics
// (rounds, words, max space). Only the Job envelope (id, source, timing)
// differs between serving paths. This is the same executor-independence
// contract the simulator already guarantees (DESIGN.md): the engine's
// worker pool and per-job round executor change wall-clock, never results.
package service

import (
	"log/slog"
	"runtime"

	"repro/internal/mpc"
	"repro/internal/obs"
)

// Config sizes the engine.
type Config struct {
	// Pool is the number of jobs executed concurrently (the worker pool
	// size). Default: GOMAXPROCS.
	Pool int
	// Workers is the per-job round-executor pool handed to core.Params
	// (0|1 sequential, >1 that many goroutines, <0 one per CPU). It never
	// changes results, only wall-clock. Default: 1 (sequential) — with
	// several jobs in flight, cross-job parallelism usually beats
	// within-job parallelism.
	Workers int
	// Shards partitions every job's clusters across that many in-process
	// shards over the in-memory transport (core.Params.Shards). Results
	// and metrics are bit-identical to unsharded execution; 0 or 1 runs
	// unsharded. Default: 0.
	Shards int
	// Results caps the LRU result store. Default: 256.
	Results int
	// Instances caps the instance cache entry count. Default: 64.
	Instances int
	// QueueDepth bounds the number of queued (not yet running)
	// executions; submissions beyond it are rejected. Default: 1024.
	QueueDepth int
	// JobHistory caps retained completed job records. Default: 4096.
	JobHistory int
	// Transport selects the wire for sharded jobs: "" or "mem" exchanges
	// cross-shard column batches through the in-memory group, "tcp"
	// through a loopback TCP mesh (one node per shard inside this
	// process) — the same frame encoding, checksums and recovery
	// machinery cmd/mrshard uses across real processes. Results are
	// bit-identical either way; anything else is treated as "mem"
	// (cmd/mrserve validates the flag before it gets here).
	Transport string
	// TransportOpts tunes the sharded transport: dial/barrier deadlines,
	// retry budget, heartbeat cadence and the recovery wire log. The zero
	// value uses the mpc defaults.
	TransportOpts mpc.TransportOpts
	// NoFallback disables graceful degradation: by default a sharded job
	// whose flight fails with mpc.ErrTransport is re-executed unsharded
	// in-process (bit-identical by construction — the shards replicate the
	// same SPMD program) and counted in fallback_unsharded_total. With
	// NoFallback set the job fails instead.
	NoFallback bool
	// Chaos injects a deterministic fault schedule into every sharded
	// job's transport endpoints (soak/testing tool); the zero spec
	// injects nothing.
	Chaos mpc.ChaosSpec
	// TraceRounds caps the per-flight round-trace ring served by
	// GET /v1/jobs/{id}/trace: each executed flight retains its newest
	// TraceRounds wall-clock round spans (phase timings — observability
	// only, never part of the deterministic Result). 0 uses the default
	// 256; negative disables round tracing. Default: 256.
	TraceRounds int
	// Logger receives structured lifecycle events (submissions, flight
	// executions, fallbacks) tagged with job and flight ids. nil disables
	// logging.
	Logger *slog.Logger
	// DataDir, when set, is the out-of-core instance store: uploaded and
	// preloaded graphs are spooled there as content-addressed raw binary
	// containers (<id>.mrg) and served zero-copy through graph.OpenMapped,
	// one physical mapping shared across all concurrent jobs. Evicted
	// uploads resurrect from the spool instead of failing. Empty disables
	// spooling; instances live on the heap.
	DataDir string
	// LedgerDir, when set, enables the durable Merkle-chained job ledger
	// (internal/ledger): every completed job is appended to an append-only
	// segmented log under this directory, the chain is verified on open
	// (a torn tail record after a kill -9 is truncated, not fatal), and a
	// restarted server serves pre-crash results bit-identically from the
	// recovered chain instead of re-executing them. Ledger IO never blocks
	// or fails a job: write errors retry with seeded backoff, then degrade
	// the ledger to memory-only operation. Empty disables the ledger.
	LedgerDir string
	// LedgerSegmentBytes rotates the ledger's active segment past this
	// size; 0 uses ledger.DefaultSegmentBytes.
	LedgerSegmentBytes int64

	// transportFactory overrides the resolved transport (tests).
	transportFactory mpc.TransportFactory
}

// transport resolves the factory handed to core.Params.Transport for
// sharded jobs: the test hook if set, else the named transport, with the
// chaos schedule (if any) wrapped around it.
func (c Config) transport() mpc.TransportFactory {
	f := c.transportFactory
	if f == nil {
		switch c.Transport {
		case "tcp":
			f = mpc.TCPLoopback(c.TransportOpts)
		default:
			if c.Chaos.Enabled() {
				// Chaos needs a concrete factory to wrap; nil would select
				// the in-memory group deep inside mpc, past the wrapper.
				f = mpc.MemTransport
			}
		}
	}
	return c.Chaos.Wrap(f)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Results <= 0 {
		c.Results = 256
	}
	if c.Instances <= 0 {
		c.Instances = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 4096
	}
	if c.TraceRounds == 0 {
		c.TraceRounds = 256
	}
	return c
}

// logger resolves the configured logger, substituting the nop logger for
// nil so the engine never needs a nil check at call sites.
func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return obs.NopLogger()
}
