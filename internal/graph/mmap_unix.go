//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The returned bool
// reports that the bytes are a real mapping (must be munmap'ed); the fd may
// be closed immediately after, the mapping survives it.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// munmap releases a mapping produced by mmapFile.
func munmap(data []byte) error { return syscall.Munmap(data) }
