//go:build !unix

package graph

import (
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap reads the file into the heap.
// OpenMapped still works — same views, same behaviour — it just loses the
// zero-copy and page-cache-tiering properties.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// munmap is a no-op for heap-backed pseudo-mappings.
func munmap(data []byte) error { return nil }
