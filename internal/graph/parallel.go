package graph

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// This file holds the package's parallelism knob and the shared helpers the
// parallel Build and generator paths use. Everything here is deterministic:
// work is partitioned into fixed chunks, each chunk computes into its own
// disjoint output range, and merges happen in a fixed (chunk-ascending)
// order, so the result is bit-identical for every worker count.

// parWorkers is the number of goroutines the package's parallel paths
// (Build, GNM, RMAT, RandomBipartite) may use. 0 means "one per CPU"
// (runtime.GOMAXPROCS). It is read atomically so tests can flip it.
var parWorkers atomic.Int32

// SetParallelism sets the worker count for the package's parallel paths:
// 0 restores the default (one per CPU), 1 forces the sequential paths, and
// w > 1 uses up to w goroutines. The output of every Build and generator is
// bit-identical across all settings; only wall-clock changes. It returns
// the previous setting so tests can restore it.
func SetParallelism(w int) int {
	if w < 0 {
		w = 0
	}
	return int(parWorkers.Swap(int32(w)))
}

// parallelism resolves the active worker count.
func parallelism() int {
	w := int(parWorkers.Load())
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Minimum work-item counts below which the parallel paths fall back to the
// sequential code: goroutine fan-out costs more than it saves on small
// instances, and small instances dominate the test suite.
const (
	buildParallelMin = 1 << 14 // edges
	genParallelMin   = 1 << 13 // edges still to generate
)

// chunkRanges splits [0, count) into at most workers near-equal contiguous
// ranges and returns the boundaries (len = chunks+1). Every chunk is
// non-empty; an empty range yields no chunks ([]int{0}).
func chunkRanges(count, workers int) []int {
	if workers > count {
		workers = count
	}
	if workers < 1 {
		return []int{0}
	}
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = count * i / workers
	}
	return bounds
}

// runChunks executes fn(chunk, lo, hi) for each chunk range concurrently.
func runChunks(bounds []int, fn func(chunk, lo, hi int)) {
	var wg sync.WaitGroup
	for c := 0; c+1 < len(bounds); c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fn(c, bounds[c], bounds[c+1])
		}(c)
	}
	wg.Wait()
}

// speculateAttempts runs `count` generator attempts across workers, where
// the sequential generator consumes exactly drawsPerAttempt raw Uint64
// draws per attempt. base is the stream position of attempt 0; each chunk
// gets a clone jumped to its first attempt's draw offset and runs
// gen(r, lo, hi), which must write its candidates into indices [lo, hi) of
// a caller-owned slice and consume exactly drawsPerAttempt draws per
// attempt from r.
//
// The return value is the number of attempts whose candidates are valid: it
// equals count unless some chunk's actual consumption diverged from the
// speculation (possible only through Intn's internal rejection, probability
// < n/2^64 per draw), in which case every attempt before the first dirty
// chunk is still exact and the caller falls back to the sequential path for
// the rest.
func speculateAttempts(base *rng.RNG, count int, drawsPerAttempt uint64, gen func(r *rng.RNG, lo, hi int)) int {
	workers := parallelism()
	bounds := chunkRanges(count, workers)
	dirty := make([]bool, len(bounds)-1)
	runChunks(bounds, func(chunk, lo, hi int) {
		r := base.Clone()
		r.Jump(uint64(lo) * drawsPerAttempt)
		start := r.Clone()
		gen(r, lo, hi)
		if r.DrawsSince(start) != uint64(hi-lo)*drawsPerAttempt {
			dirty[chunk] = true
		}
	})
	for c, d := range dirty {
		if d {
			return bounds[c]
		}
	}
	return count
}

// speculativeLoop runs the generator attempt loop
//
//	for remaining() > 0 { accept(drawOne(r)) }
//
// parallelizing the draws when profitable: workers speculatively compute
// candidates for disjoint chunks of the attempt stream (drawOne must
// consume exactly drawsPerAttempt raw draws, so chunk positions are known
// up front via rng.Jump), and accept replays them sequentially in attempt
// order. The consumed stream — and therefore the generated output and the
// final position of r — is bit-identical to the sequential loop for every
// worker count. If a chunk's speculation is invalidated (an Intn internal
// rejection, probability < bound/2^64 per draw), the valid candidate
// prefix is kept and the rest falls back to the sequential loop from the
// exact stream position.
func speculativeLoop(r *rng.RNG, drawsPerAttempt uint64, remaining func() int,
	drawOne func(r *rng.RNG) [2]int32, accept func(p [2]int32)) {
	sequential := func(r *rng.RNG) {
		for remaining() > 0 {
			accept(drawOne(r))
		}
	}
	if parallelism() <= 1 || remaining() < genParallelMin {
		sequential(r)
		return
	}
	origin := r.Clone()
	attempts := uint64(0) // attempts the accept loop has consumed
	for remaining() > 0 {
		need := remaining()
		batch := need + need/4 + 64 // oversample for rejected attempts
		cand := make([][2]int32, batch)
		base := origin.Clone()
		base.Jump(attempts * drawsPerAttempt)
		valid := speculateAttempts(base, batch, drawsPerAttempt, func(rr *rng.RNG, lo, hi int) {
			for i := lo; i < hi; i++ {
				cand[i] = drawOne(rr)
			}
		})
		for i := 0; i < valid && remaining() > 0; i++ {
			attempts++
			accept(cand[i])
		}
		if valid < batch && remaining() > 0 {
			*r = *origin
			r.Jump(attempts * drawsPerAttempt)
			sequential(r)
			return
		}
	}
	*r = *origin
	r.Jump(attempts * drawsPerAttempt)
}
