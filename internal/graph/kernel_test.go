package graph

import (
	"testing"

	"repro/internal/rng"
)

// edgesEqual compares two edge lists exactly (order, endpoints, weights).
func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGeneratorDeterminismAcrossWorkers checks the parallel-generation
// contract: for every Workers setting the generators produce the identical
// edge list AND leave the caller's RNG at the identical stream position
// (callers keep drawing from it, e.g. for weights).
func TestGeneratorDeterminismAcrossWorkers(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	gens := []struct {
		name string
		run  func(r *rng.RNG) *Graph
	}{
		// Sizes chosen above genParallelMin so the speculative path engages.
		{"GNM-sparse", func(r *rng.RNG) *Graph { return GNM(1000, 20000, r) }},
		{"GNM-dense", func(r *rng.RNG) *Graph { return GNM(200, 15000, r) }},
		{"Density", func(r *rng.RNG) *Graph { return Density(500, 0.6, r) }},
		{"RMAT", func(r *rng.RNG) *Graph { return RMATDefault(12, 20000, r) }},
		{"Bipartite", func(r *rng.RNG) *Graph { return RandomBipartite(400, 400, 20000, r) }},
	}
	for _, gen := range gens {
		t.Run(gen.name, func(t *testing.T) {
			SetParallelism(1)
			rSeq := rng.New(71)
			want := gen.run(rSeq)
			wantNext := rSeq.Uint64()
			for _, w := range []int{2, 4, 7} {
				SetParallelism(w)
				r := rng.New(71)
				got := gen.run(r)
				if !edgesEqual(got.Edges, want.Edges) {
					t.Fatalf("workers=%d: edge list differs from sequential", w)
				}
				if next := r.Uint64(); next != wantNext {
					t.Fatalf("workers=%d: RNG left at a different stream position", w)
				}
			}
		})
	}
}

// TestBuildParallelMatchesSequential checks that the parallel CSR build
// produces slab-identical adjacency (same neighbour order, weights, and
// edge ids per vertex) for every worker count.
func TestBuildParallelMatchesSequential(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	r := rng.New(5)
	g := GNM(2000, 40000, r) // above buildParallelMin
	g.AssignUniformWeights(r, 1, 10)

	SetParallelism(1)
	g.Invalidate()
	g.Build()
	type adj struct {
		nbr []int32
		w   []float64
		ids []int32
	}
	want := make([]adj, g.N)
	for v := 0; v < g.N; v++ {
		nbrs, ws := g.NeighborsW(v)
		want[v] = adj{
			nbr: append([]int32(nil), nbrs...),
			w:   append([]float64(nil), ws...),
			ids: append([]int32(nil), g.IncidentEdges(v)...),
		}
	}
	for _, workers := range []int{2, 3, 8} {
		SetParallelism(workers)
		g.Invalidate()
		g.Build()
		for v := 0; v < g.N; v++ {
			nbrs, ws := g.NeighborsW(v)
			ids := g.IncidentEdges(v)
			if len(nbrs) != len(want[v].nbr) {
				t.Fatalf("workers=%d v=%d: degree differs", workers, v)
			}
			for i := range nbrs {
				if nbrs[i] != want[v].nbr[i] || ws[i] != want[v].w[i] || ids[i] != want[v].ids[i] {
					t.Fatalf("workers=%d v=%d slot %d: (%d,%g,%d) != (%d,%g,%d)",
						workers, v, i, nbrs[i], ws[i], ids[i],
						want[v].nbr[i], want[v].w[i], want[v].ids[i])
				}
			}
		}
	}
}

// TestNeighborsIncidentEdgesAgreement checks the positional contract on a
// multigraph with parallel edges: entry i of Neighbors(v), NeighborsW(v)
// and IncidentEdges(v) all describe the same incident edge, and multiplicity
// is preserved.
func TestNeighborsIncidentEdgesAgreement(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(0, 1, 2.5) // parallel edge
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 0, 4)
	g.AddEdge(3, 2, 5)
	for v := 0; v < g.N; v++ {
		ids := g.IncidentEdges(v)
		nbrs, ws := g.NeighborsW(v)
		if len(ids) != len(nbrs) || len(ws) != len(nbrs) || len(nbrs) != g.Degree(v) {
			t.Fatalf("v=%d: slab lengths disagree", v)
		}
		if len(g.Neighbors(v)) != len(nbrs) {
			t.Fatalf("v=%d: Neighbors and NeighborsW disagree", v)
		}
		for i, id := range ids {
			e := g.Edges[id]
			if e.Other(v) != int(nbrs[i]) {
				t.Fatalf("v=%d slot %d: neighbour %d but edge %d is (%d,%d)",
					v, i, nbrs[i], id, e.U, e.V)
			}
			if e.W != ws[i] {
				t.Fatalf("v=%d slot %d: weight %g but edge has %g", v, i, ws[i], e.W)
			}
		}
	}
	if g.Degree(0) != 3 || g.Degree(1) != 3 {
		t.Fatalf("multiplicity lost: deg(0)=%d deg(1)=%d", g.Degree(0), g.Degree(1))
	}
	// The two parallel (0,1) edges must appear as distinct slots with their
	// own weights and edge ids.
	seen := map[int32]bool{}
	for _, id := range g.IncidentEdges(0) {
		if seen[id] {
			t.Fatal("edge id repeated within one incidence list")
		}
		seen[id] = true
	}
}

// TestWeightMutationInvalidatesSlabs checks that the weight-assignment
// helpers refresh the CSR weight slab.
func TestWeightMutationInvalidatesSlabs(t *testing.T) {
	g := Path(4)
	_, ws := g.NeighborsW(0)
	if ws[0] != 1 {
		t.Fatalf("initial weight %g", ws[0])
	}
	g.AssignUniformWeights(rng.New(1), 5, 6)
	_, ws = g.NeighborsW(0)
	if ws[0] < 5 || ws[0] >= 6 {
		t.Fatalf("stale weight slab after AssignUniformWeights: %g", ws[0])
	}
	g.AssignUnitWeights()
	_, ws = g.NeighborsW(0)
	if ws[0] != 1 {
		t.Fatalf("stale weight slab after AssignUnitWeights: %g", ws[0])
	}
	g.Edges[0].W = 9
	g.Invalidate()
	_, ws = g.NeighborsW(0)
	if ws[0] != 9 {
		t.Fatalf("stale weight slab after Invalidate: %g", ws[0])
	}
}

// TestVertexSet checks the bitmap→map conversion helper.
func TestVertexSet(t *testing.T) {
	set := VertexSet([]bool{true, false, true, false, false, true})
	if len(set) != 3 || !set[0] || !set[2] || !set[5] || set[1] {
		t.Fatalf("VertexSet = %v", set)
	}
	if len(VertexSet(nil)) != 0 {
		t.Fatal("VertexSet(nil) not empty")
	}
}
