package graph

import (
	"repro/internal/rng"
)

// RMAT generates a graph by the recursive-matrix (R-MAT) process of
// Chakrabarti, Zhan and Faloutsos, the standard synthetic model for the
// skewed, community-structured graphs of the paper's motivating workloads
// (Graph500 uses a = 0.57, b = c = 0.19, d = 0.05).
//
// The vertex count is 2^scale; m distinct edges are drawn by recursively
// descending into quadrants of the adjacency matrix with probabilities
// (a, b, c, d); self-loops and duplicates are rejected and re-drawn, so the
// returned graph is simple with exactly m edges (m must fit).
func RMAT(scale int, m int, a, b, c float64, r *rng.RNG) *Graph {
	if scale < 1 || scale > 30 {
		panic("graph: RMAT scale must be in [1,30]")
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		panic("graph: RMAT requires a>0, b,c>=0, a+b+c<1")
	}
	n := 1 << scale
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic("graph: RMAT m exceeds simple-graph capacity")
	}
	g := New(n)
	seen := make(map[[2]int]bool, m)
	for len(g.Edges) < m {
		u, v := 0, 0
		for level := 0; level < scale; level++ {
			x := r.Float64()
			switch {
			case x < a:
				// top-left: no bits set
			case x < a+b:
				v |= 1 << level
			case x < a+b+c:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		if u == v {
			continue
		}
		p := normPair(u, v)
		if seen[p] {
			continue
		}
		seen[p] = true
		g.AddEdge(u, v, 1)
	}
	return g
}

// RMATDefault generates an R-MAT graph with the Graph500 parameters.
func RMATDefault(scale, m int, r *rng.RNG) *Graph {
	return RMAT(scale, m, 0.57, 0.19, 0.19, r)
}
