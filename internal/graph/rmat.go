package graph

import (
	"repro/internal/rng"
)

// RMAT generates a graph by the recursive-matrix (R-MAT) process of
// Chakrabarti, Zhan and Faloutsos, the standard synthetic model for the
// skewed, community-structured graphs of the paper's motivating workloads
// (Graph500 uses a = 0.57, b = c = 0.19, d = 0.05).
//
// The vertex count is 2^scale; m distinct edges are drawn by recursively
// descending into quadrants of the adjacency matrix with probabilities
// (a, b, c, d); self-loops and duplicates are rejected and re-drawn, so the
// returned graph is simple with exactly m edges (m must fit).
func RMAT(scale int, m int, a, b, c float64, r *rng.RNG) *Graph {
	if scale < 1 || scale > 30 {
		panic("graph: RMAT scale must be in [1,30]")
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		panic("graph: RMAT requires a>0, b,c>=0, a+b+c<1")
	}
	n := 1 << scale
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic("graph: RMAT m exceeds simple-graph capacity")
	}
	g := New(n)
	seen := make(map[[2]int]bool, m)
	accept := func(u, v int) {
		if u == v {
			return
		}
		p := normPair(u, v)
		if seen[p] {
			return
		}
		seen[p] = true
		g.AddEdge(u, v, 1)
	}
	// Every attempt consumes exactly `scale` Float64 draws (Float64 never
	// rejects internally), so the quadrant descents — the expensive part —
	// fan out across workers through the shared speculative driver.
	speculativeLoop(r, uint64(scale), func() int { return m - len(g.Edges) },
		func(rr *rng.RNG) [2]int32 {
			u, v := rmatDescend(rr, scale, a, b, c)
			return [2]int32{int32(u), int32(v)}
		},
		func(p [2]int32) { accept(int(p[0]), int(p[1])) })
	return g
}

// rmatDescend draws one R-MAT candidate pair by descending `scale` levels
// of the recursive quadrant matrix, consuming exactly scale Float64 draws.
func rmatDescend(r *rng.RNG, scale int, a, b, c float64) (int, int) {
	u, v := 0, 0
	for level := 0; level < scale; level++ {
		x := r.Float64()
		switch {
		case x < a:
			// top-left: no bits set
		case x < a+b:
			v |= 1 << level
		case x < a+b+c:
			u |= 1 << level
		default:
			u |= 1 << level
			v |= 1 << level
		}
	}
	return u, v
}

// RMATDefault generates an R-MAT graph with the Graph500 parameters.
func RMATDefault(scale, m int, r *rng.RNG) *Graph {
	return RMAT(scale, m, 0.57, 0.19, 0.19, r)
}
