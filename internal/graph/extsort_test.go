package graph

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rng"
)

// edgeFeeder replays a fixed edge list through BuildExternal's callback.
func edgeFeeder(edges []Edge) func() (Edge, error) {
	i := 0
	return func() (Edge, error) {
		if i >= len(edges) {
			return Edge{}, errors.New("exhausted")
		}
		e := edges[i]
		i++
		return e, nil
	}
}

// TestBuildExternalByteIdentical is the acceptance criterion: a chunk budget
// far smaller than the edge list (forcing many spilled runs and a wide
// merge) must produce a container byte-identical to the in-heap encoder.
func TestBuildExternalByteIdentical(t *testing.T) {
	r := rng.New(99)
	g := GNM(800, 6000, r)
	g.AssignUniformWeights(r, 1, 50)

	dir := t.TempDir()
	want := filepath.Join(dir, "heap.mrg")
	if err := WriteContainerFile(want, g); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{0 /* default: single in-memory chunk */, 257, 2, 4096} {
		got := filepath.Join(dir, "ext.mrg")
		err := BuildExternal(got, g.N, g.M(), edgeFeeder(g.Edges),
			&ExtBuildConfig{ChunkEdges: chunk, TmpDir: dir})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		wantB, err := os.ReadFile(want)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := os.ReadFile(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantB, gotB) {
			t.Fatalf("chunk=%d: external container differs from in-heap container", chunk)
		}
	}

	// No run files may leak.
	runs, err := filepath.Glob(filepath.Join(dir, "mrg-extsort-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("leaked %d temporary run files", len(runs))
	}
}

// TestBuildExternalValidation checks the streaming validator matches the
// in-heap rules: bad endpoints, self-loops, non-finite weights, short
// streams.
func TestBuildExternalValidation(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.mrg")
	cases := []struct {
		name  string
		n, m  int
		edges []Edge
		want  string
	}{
		{"endpoint-range", 3, 1, []Edge{{U: 0, V: 3, W: 1}}, "invalid edge"},
		{"negative", 3, 1, []Edge{{U: -1, V: 2, W: 1}}, "invalid edge"},
		{"self-loop", 3, 1, []Edge{{U: 1, V: 1, W: 1}}, "invalid edge"},
		{"non-finite", 3, 1, []Edge{{U: 0, V: 1, W: math.Inf(1)}}, "non-finite"},
		{"short-stream", 3, 2, []Edge{{U: 0, V: 1, W: 1}}, "edge stream ended"},
		{"negative-m", 3, -1, nil, "negative dimensions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := BuildExternal(out, tc.n, tc.m, edgeFeeder(tc.edges), &ExtBuildConfig{TmpDir: dir})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestConvertFile checks every source format converts to the same container
// bytes as writing the in-heap graph directly.
func TestConvertFile(t *testing.T) {
	r := rng.New(7)
	g := GNM(300, 1500, r)
	g.AssignUniformWeights(r, 1, 10)
	dir := t.TempDir()

	want := filepath.Join(dir, "want.mrg")
	if err := WriteContainerFile(want, g); err != nil {
		t.Fatal(err)
	}
	wantB, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}

	for _, src := range []string{"g.txt", "g.txt.gz", "g.mrg", "g.mrgz", "g.mrg.gz"} {
		srcPath := filepath.Join(dir, src)
		if err := WriteFile(srcPath, g); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		dst := filepath.Join(dir, "conv-"+src+".mrg")
		if err := ConvertFile(srcPath, dst, &ExtBuildConfig{ChunkEdges: 101, TmpDir: dir}); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		gotB, err := os.ReadFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantB, gotB) {
			t.Fatalf("%s: converted container differs from direct encoding", src)
		}
	}
}
