package graph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(90)
	g := GNM(30, 80, r)
	g.AssignUniformWeights(r, 0.001, 1e6)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.M() != g.M() {
		t.Fatalf("dims: got (%d,%d), want (%d,%d)", h.N, h.M(), g.N, g.M())
	}
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatalf("edge %d: got %+v, want %+v (weights must round-trip exactly)",
				i, h.Edges[i], g.Edges[i])
		}
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	in := "graph 3 2\n# a comment\ne 0 1 1.5\n\ne 1 2 2.5\n"
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.Edges[1].W != 2.5 {
		t.Fatalf("decoded %+v", g.Edges)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "graf 3 2\n",
		"negative dims": "graph -1 0\n",
		"bad edge":      "graph 3 1\nx 0 1 1\n",
		"bad endpoint":  "graph 3 1\ne a 1 1\n",
		"bad weight":    "graph 3 1\ne 0 1 zzz\n",
		"out of range":  "graph 3 1\ne 0 5 1\n",
		"self loop":     "graph 3 1\ne 1 1 1\n",
		"count miss":    "graph 3 5\ne 0 1 1\n",
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, New(4)); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 0 {
		t.Fatal("empty graph round trip")
	}
}

func TestCanonicalEncoding(t *testing.T) {
	// Two graphs with the same edge set in different orders encode equally
	// after SortEdges.
	a := New(4)
	a.AddEdge(2, 3, 1)
	a.AddEdge(0, 1, 1)
	b := New(4)
	b.AddEdge(1, 0, 1)
	b.AddEdge(3, 2, 1)
	a.SortEdges()
	b.SortEdges()
	var ba, bb bytes.Buffer
	if err := Encode(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&bb, b); err != nil {
		t.Fatal(err)
	}
	sa, sb := ba.String(), bb.String()
	// Canonical up to endpoint orientation within an edge.
	if len(sa) != len(sb) {
		t.Fatalf("canonical encodings differ:\n%s\nvs\n%s", sa, sb)
	}
}
