package graph

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(90)
	g := GNM(30, 80, r)
	g.AssignUniformWeights(r, 0.001, 1e6)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.M() != g.M() {
		t.Fatalf("dims: got (%d,%d), want (%d,%d)", h.N, h.M(), g.N, g.M())
	}
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatalf("edge %d: got %+v, want %+v (weights must round-trip exactly)",
				i, h.Edges[i], g.Edges[i])
		}
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	in := "graph 3 2\n# a comment\ne 0 1 1.5\n\ne 1 2 2.5\n"
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.Edges[1].W != 2.5 {
		t.Fatalf("decoded %+v", g.Edges)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "graf 3 2\n",
		"negative dims": "graph -1 0\n",
		"bad edge":      "graph 3 1\nx 0 1 1\n",
		"bad endpoint":  "graph 3 1\ne a 1 1\n",
		"bad weight":    "graph 3 1\ne 0 1 zzz\n",
		"out of range":  "graph 3 1\ne 0 5 1\n",
		"self loop":     "graph 3 1\ne 1 1 1\n",
		"count miss":    "graph 3 5\ne 0 1 1\n",
		"excess edges":  "graph 3 1\ne 0 1 1\ne 1 2 1\n",
		"negative u":    "graph 3 1\ne -1 1 1\n",
		"nan weight":    "graph 3 1\ne 0 1 NaN\n",
		"+inf weight":   "graph 3 1\ne 0 1 +Inf\n",
		"-inf weight":   "graph 3 1\ne 0 1 -Inf\n",
		"inf weight":    "graph 3 1\ne 0 1 Infinity\n",
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestGzipRoundTrip(t *testing.T) {
	r := rng.New(7)
	g := GNM(40, 120, r)
	g.AssignUniformWeights(r, 0.5, 50)

	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.txt.gz"} {
		path := dir + "/" + name
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.N != g.N || h.M() != g.M() {
			t.Fatalf("%s: dims (%d,%d), want (%d,%d)", name, h.N, h.M(), g.N, g.M())
		}
		for i := range g.Edges {
			if g.Edges[i] != h.Edges[i] {
				t.Fatalf("%s: edge %d: got %+v, want %+v", name, i, h.Edges[i], g.Edges[i])
			}
		}
	}

	// The .gz file really is gzip: sniffable magic, and decodes through
	// DecodeAuto from a plain reader too.
	raw, err := os.ReadFile(dir + "/g.txt.gz")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("g.txt.gz does not start with the gzip magic: % x", raw[:2])
	}
	h, err := DecodeAuto(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != g.M() {
		t.Fatalf("DecodeAuto(gzip bytes): m=%d, want %d", h.M(), g.M())
	}
}

func TestDecodeAutoPlain(t *testing.T) {
	g, err := DecodeAuto(strings.NewReader("graph 2 1\ne 0 1 3.25\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Edges[0].W != 3.25 {
		t.Fatalf("decoded %+v", g.Edges)
	}
}

func TestDecodeAutoTruncatedGzip(t *testing.T) {
	if _, err := DecodeAuto(bytes.NewReader([]byte{0x1f, 0x8b})); err == nil {
		t.Fatal("expected error for truncated gzip input")
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, New(4)); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 0 {
		t.Fatal("empty graph round trip")
	}
}

func TestCanonicalEncoding(t *testing.T) {
	// Two graphs with the same edge set in different orders encode equally
	// after SortEdges.
	a := New(4)
	a.AddEdge(2, 3, 1)
	a.AddEdge(0, 1, 1)
	b := New(4)
	b.AddEdge(1, 0, 1)
	b.AddEdge(3, 2, 1)
	a.SortEdges()
	b.SortEdges()
	var ba, bb bytes.Buffer
	if err := Encode(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&bb, b); err != nil {
		t.Fatal(err)
	}
	sa, sb := ba.String(), bb.String()
	// Canonical up to endpoint orientation within an edge.
	if len(sa) != len(sb) {
		t.Fatalf("canonical encodings differ:\n%s\nvs\n%s", sa, sb)
	}
}
