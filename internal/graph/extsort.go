package graph

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// This file is the out-of-core construction path: BuildExternal turns a
// stream of edges into a raw binary container without ever holding the
// graph in memory. Peak memory is O(n) (the degree histogram) plus the
// configured chunk budget; everything else spools through temporary run
// files and a k-way merge.
//
// The output is byte-identical to WriteContainerFile on the in-heap graph
// built from the same edge stream. That works because the in-heap CSR slab
// order has a closed form: within a vertex, incident half-edges appear in
// ascending global edge index. The external path therefore tags every
// half-edge with (vertex, edge index), sorts runs by that key, and the
// merge reproduces the slab order exactly — no reference to the in-heap
// code path, same bytes out.

// ExtBuildConfig tunes BuildExternal. The zero value (or nil) uses the
// defaults; results never depend on the configuration, only peak memory and
// speed do.
type ExtBuildConfig struct {
	// ChunkEdges is the number of half-edge records buffered and sorted per
	// temporary run (two records per input edge). Default 1<<21 (~48 MB of
	// run buffer). Smaller budgets mean more runs and a wider merge.
	ChunkEdges int
	// TmpDir receives the temporary run files. Default: the directory of
	// the output file, so spill I/O lands on the same filesystem.
	TmpDir string
}

func (c *ExtBuildConfig) withDefaults(outPath string) ExtBuildConfig {
	out := ExtBuildConfig{}
	if c != nil {
		out = *c
	}
	if out.ChunkEdges <= 0 {
		out.ChunkEdges = 1 << 21
	}
	if out.ChunkEdges < 2 {
		out.ChunkEdges = 2
	}
	if out.TmpDir == "" {
		out.TmpDir = filepath.Dir(outPath)
	}
	return out
}

// halfEdge is one directed incidence: edge idx contributes nbr (and the
// edge's weight) to vertex v's slab range. The merge key (v, idx) is
// globally unique — an edge's two half-edges carry different v.
type halfEdge struct {
	v, nbr, idx int32
	w           float64
}

const halfEdgeRec = 20 // v i32 | nbr i32 | idx i32 | w f64 on the run files

// fileRegionWriter is a sequential io.Writer positioned at a fixed offset
// of an os.File; three of them let the merge emit the adjNbr, adjEdge and
// adjW sections in one pass, each section strictly sequentially.
type fileRegionWriter struct {
	f   *os.File
	off int64
}

func (w *fileRegionWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// BuildExternal streams m edges from next into a raw binary container at
// path, using external sorting so the graph never needs to fit in memory.
// next is called exactly m times and must yield the edges in their input
// order (the order that defines the graph: g.Edges, and through it every
// algorithm's determinism contract). The resulting file is byte-identical
// to WriteContainerFile(path, g) for the in-heap g with the same edges.
func BuildExternal(path string, n, m int, next func() (Edge, error), cfg *ExtBuildConfig) (err error) {
	if n < 0 || m < 0 {
		return fmt.Errorf("graph: negative dimensions n=%d m=%d", n, m)
	}
	if err := checkCSRBounds(n, m); err != nil {
		return err
	}
	conf := cfg.withDefaults(path)
	h := rawLayout(n, m)

	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}()
	// Pre-size the file: the holes between sections read as zeros, which is
	// exactly the padding EncodeContainer writes.
	if err := out.Truncate(int64(h.totalSize())); err != nil {
		return err
	}

	var runs []*os.File
	defer func() {
		for _, r := range runs {
			name := r.Name()
			r.Close()
			os.Remove(name)
		}
	}()

	// Pass 1: stream the edges. Each edge is validated, written to the
	// edges section in input order, counted into the degree histogram, and
	// split into two half-edges buffered for sorting.
	deg := make([]int32, n+1) // deg[v+1] = degree of v, then prefix-summed
	chunk := make([]halfEdge, 0, conf.ChunkEdges)
	recBuf := make([]byte, halfEdgeRec)
	spill := func() error {
		sort.Slice(chunk, func(i, j int) bool {
			if chunk[i].v != chunk[j].v {
				return chunk[i].v < chunk[j].v
			}
			return chunk[i].idx < chunk[j].idx
		})
		run, err := os.CreateTemp(conf.TmpDir, "mrg-extsort-*.run")
		if err != nil {
			return err
		}
		runs = append(runs, run)
		bw := bufio.NewWriterSize(run, 1<<16)
		le := binary.LittleEndian
		for _, he := range chunk {
			le.PutUint32(recBuf, uint32(he.v))
			le.PutUint32(recBuf[4:], uint32(he.nbr))
			le.PutUint32(recBuf[8:], uint32(he.idx))
			le.PutUint64(recBuf[12:], math.Float64bits(he.w))
			if _, err := bw.Write(recBuf); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		chunk = chunk[:0]
		return nil
	}

	edgeSec := h.sections[4]
	var edgeEnc sectionEncoder
	edgeEnc.reset(&fileRegionWriter{f: out, off: int64(edgeSec.off)})
	for i := 0; i < m; i++ {
		e, err := next()
		if err != nil {
			return fmt.Errorf("graph: edge stream ended at edge %d of %d: %v", i, m, err)
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			return fmt.Errorf("graph: invalid edge (%d,%d) for n=%d", e.U, e.V, n)
		}
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return fmt.Errorf("graph: non-finite weight on edge (%d,%d)", e.U, e.V)
		}
		edgeEnc.putEdge(e)
		deg[e.U+1]++
		deg[e.V+1]++
		chunk = append(chunk,
			halfEdge{v: int32(e.U), nbr: int32(e.V), idx: int32(i), w: e.W},
			halfEdge{v: int32(e.V), nbr: int32(e.U), idx: int32(i), w: e.W})
		if len(chunk) >= conf.ChunkEdges {
			if err := spill(); err != nil {
				return err
			}
		}
	}
	crc, nbytes, err := edgeEnc.finish()
	if err != nil {
		return err
	}
	if nbytes != edgeSec.len {
		return fmt.Errorf("graph: edge section wrote %d bytes, layout promises %d", nbytes, edgeSec.len)
	}
	h.sections[4].crc = crc

	// adjStart: prefix-sum the histogram in place and write it out.
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	var enc sectionEncoder
	enc.reset(&fileRegionWriter{f: out, off: int64(h.sections[0].off)})
	enc.putInt32s(deg)
	if h.sections[0].crc, _, err = enc.finish(); err != nil {
		return err
	}

	// Merge: the spilled runs plus the in-memory tail chunk, ascending by
	// (v, idx), emit the three positional slabs in one pass.
	sort.Slice(chunk, func(i, j int) bool {
		if chunk[i].v != chunk[j].v {
			return chunk[i].v < chunk[j].v
		}
		return chunk[i].idx < chunk[j].idx
	})
	sources := make([]halfEdgeSource, 0, len(runs)+1)
	for _, run := range runs {
		if _, err := run.Seek(0, 0); err != nil {
			return err
		}
		sources = append(sources, &runSource{r: bufio.NewReaderSize(run, 1<<16)})
	}
	if len(chunk) > 0 {
		sources = append(sources, &memSource{rec: chunk})
	}

	var nbrEnc, edgeIdxEnc, wEnc sectionEncoder
	nbrEnc.reset(&fileRegionWriter{f: out, off: int64(h.sections[1].off)})
	edgeIdxEnc.reset(&fileRegionWriter{f: out, off: int64(h.sections[2].off)})
	wEnc.reset(&fileRegionWriter{f: out, off: int64(h.sections[3].off)})

	mh := make(mergeHeap, 0, len(sources))
	for _, src := range sources {
		he, ok, err := src.next()
		if err != nil {
			return err
		}
		if ok {
			mh = append(mh, mergeItem{he: he, src: src})
		}
	}
	heap.Init(&mh)
	emitted := 0
	for len(mh) > 0 {
		it := mh[0]
		nbrEnc.putUint32(uint32(it.he.nbr))
		edgeIdxEnc.putUint32(uint32(it.he.idx))
		wEnc.putUint64(math.Float64bits(it.he.w))
		emitted++
		he, ok, err := it.src.next()
		if err != nil {
			return err
		}
		if ok {
			mh[0].he = he
			heap.Fix(&mh, 0)
		} else {
			heap.Pop(&mh)
		}
	}
	if emitted != 2*m {
		return fmt.Errorf("graph: merge emitted %d half-edges, expected %d", emitted, 2*m)
	}
	if h.sections[1].crc, _, err = nbrEnc.finish(); err != nil {
		return err
	}
	if h.sections[2].crc, _, err = edgeIdxEnc.finish(); err != nil {
		return err
	}
	if h.sections[3].crc, _, err = wEnc.finish(); err != nil {
		return err
	}

	// Patch the now-complete prologue (section checksums) into place.
	if _, err := out.WriteAt(h.marshal(), 0); err != nil {
		return err
	}
	return nil
}

// halfEdgeSource yields half-edges in ascending (v, idx) order.
type halfEdgeSource interface {
	next() (halfEdge, bool, error)
}

// runSource streams a spilled, sorted run file.
type runSource struct {
	r   *bufio.Reader
	buf [halfEdgeRec]byte
}

func (s *runSource) next() (halfEdge, bool, error) {
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		if err == io.EOF {
			return halfEdge{}, false, nil
		}
		return halfEdge{}, false, err
	}
	le := binary.LittleEndian
	return halfEdge{
		v:   int32(le.Uint32(s.buf[:])),
		nbr: int32(le.Uint32(s.buf[4:])),
		idx: int32(le.Uint32(s.buf[8:])),
		w:   math.Float64frombits(le.Uint64(s.buf[12:])),
	}, true, nil
}

// memSource drains the sorted in-memory tail chunk.
type memSource struct{ rec []halfEdge }

func (s *memSource) next() (halfEdge, bool, error) {
	if len(s.rec) == 0 {
		return halfEdge{}, false, nil
	}
	he := s.rec[0]
	s.rec = s.rec[1:]
	return he, true, nil
}

// mergeItem pairs a source's current head with the source.
type mergeItem struct {
	he  halfEdge
	src halfEdgeSource
}

// mergeHeap is a min-heap on the unique key (v, idx).
type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].he.v != h[j].he.v {
		return h[i].he.v < h[j].he.v
	}
	return h[i].he.idx < h[j].he.idx
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}
