// Package graph provides the graph representation, generators, and solution
// validators used throughout the reproduction.
//
// The MapReduce algorithms of Harvey, Liaw and Liu are parameterized by the
// number of vertices n, the edge density exponent c (the graph has m = n^{1+c}
// edges), and the per-machine space exponent µ. The generators in this
// package produce graphs with a prescribed (n, m), which lets the benchmark
// harness sweep exactly the parameters of the paper's Figure 1.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Edge is an undirected weighted edge between vertices U and V.
// For unweighted problems the weight is 1.
type Edge struct {
	U, V int
	W    float64
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge (%d,%d)", v, e.U, e.V))
}

// Graph is an undirected weighted multigraph on vertices 0..N-1 stored as an
// edge list with an optional CSR adjacency index. Self-loops are rejected by
// AddEdge; parallel edges are permitted by the representation but the
// generators never produce them.
type Graph struct {
	N     int
	Edges []Edge

	// CSR adjacency over edge indices, built by Build.
	adjStart []int // len N+1
	adjEdge  []int // len 2*len(Edges); values are edge indices
	built    bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{N: n}
}

// AddEdge appends an undirected edge {u,v} with weight w.
// It panics on out-of-range endpoints or self-loops.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, g.N))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
	g.built = false
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Build constructs the CSR adjacency index. It is idempotent and called
// automatically by the accessors that need it.
func (g *Graph) Build() {
	if g.built {
		return
	}
	deg := make([]int, g.N+1)
	for _, e := range g.Edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < g.N; i++ {
		deg[i+1] += deg[i]
	}
	g.adjStart = deg
	g.adjEdge = make([]int, 2*len(g.Edges))
	fill := make([]int, g.N)
	copy(fill, g.adjStart[:g.N])
	for i, e := range g.Edges {
		g.adjEdge[fill[e.U]] = i
		fill[e.U]++
		g.adjEdge[fill[e.V]] = i
		fill[e.V]++
	}
	g.built = true
}

// IncidentEdges returns the indices (into g.Edges) of edges incident to v.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) IncidentEdges(v int) []int {
	g.Build()
	return g.adjEdge[g.adjStart[v]:g.adjStart[v+1]]
}

// Neighbours returns the neighbours of v (with multiplicity for parallel
// edges). The slice is freshly allocated.
func (g *Graph) Neighbours(v int) []int {
	ids := g.IncidentEdges(v)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = g.Edges[id].Other(v)
	}
	return out
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.Build()
	return g.adjStart[v+1] - g.adjStart[v]
}

// Degrees returns the degree sequence.
func (g *Graph) Degrees() []int {
	g.Build()
	d := make([]int, g.N)
	for v := range d {
		d[v] = g.adjStart[v+1] - g.adjStart[v]
	}
	return d
}

// MaxDegree returns the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}

// DensityExponent returns c such that m = n^{1+c}, the paper's density
// parameter. Returns 0 for graphs with fewer than 2 vertices or no edges.
func (g *Graph) DensityExponent() float64 {
	if g.N < 2 || len(g.Edges) == 0 {
		return 0
	}
	return math.Log(float64(len(g.Edges)))/math.Log(float64(g.N)) - 1
}

// Clone returns a deep copy of g (without the adjacency index).
func (g *Graph) Clone() *Graph {
	h := New(g.N)
	h.Edges = append([]Edge(nil), g.Edges...)
	return h
}

// HasEdgeSet returns a set membership function over the vertex pairs of g.
// Useful for validators; pairs are normalized to (min,max).
func (g *Graph) HasEdgeSet() map[[2]int]bool {
	set := make(map[[2]int]bool, len(g.Edges))
	for _, e := range g.Edges {
		set[normPair(e.U, e.V)] = true
	}
	return set
}

func normPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// SortEdges sorts the edge list lexicographically by (min endpoint, max
// endpoint, weight). Used to make serialized graphs deterministic.
func (g *Graph) SortEdges() {
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		au, av := minmax(a.U, a.V)
		bu, bv := minmax(b.U, b.V)
		if au != bu {
			return au < bu
		}
		if av != bv {
			return av < bv
		}
		return a.W < b.W
	})
	g.built = false
}

func minmax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

// AssignUniformWeights overwrites every edge weight with a uniform draw from
// [lo, hi).
func (g *Graph) AssignUniformWeights(r *rng.RNG, lo, hi float64) {
	for i := range g.Edges {
		g.Edges[i].W = r.UniformWeight(lo, hi)
	}
}

// AssignUnitWeights sets every edge weight to 1.
func (g *Graph) AssignUnitWeights() {
	for i := range g.Edges {
		g.Edges[i].W = 1
	}
}
