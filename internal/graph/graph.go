// Package graph provides the graph representation, generators, and solution
// validators used throughout the reproduction.
//
// The MapReduce algorithms of Harvey, Liaw and Liu are parameterized by the
// number of vertices n, the edge density exponent c (the graph has m = n^{1+c}
// edges), and the per-machine space exponent µ. The generators in this
// package produce graphs with a prescribed (n, m), which lets the benchmark
// harness sweep exactly the parameters of the paper's Figure 1.
//
// # The CSR-native kernel
//
// Every algorithm in this repository is, per machine, dominated by one
// primitive: scan the neighbours of a vertex and test or accumulate their
// state. Build therefore lays the adjacency out as three parallel CSR slabs
// indexed by the same offsets — neighbour vertex ids (int32), edge weights
// (float64), and edge indices (int32) — so the hot form of that primitive,
// Neighbors(v), is a contiguous int32 slice with no per-edge indirection,
// no Other() branch, and half the memory per endpoint of an int-based
// layout. IncidentEdges(v) remains for the call sites that need edge
// identity (matching and b-matching pair records); its slice is positional
// with Neighbors(v), so `nbrs[i]` is the other endpoint of edge `ids[i]`.
//
// Build itself is parallel on large graphs: per-chunk degree histograms are
// merged in fixed chunk order, so the slab layout is bit-identical for
// every worker count (see SetParallelism).
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Edge is an undirected weighted edge between vertices U and V.
// For unweighted problems the weight is 1.
type Edge struct {
	U, V int
	W    float64
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e. Hot loops should prefer the positional Neighbors slice
// over calling Other per edge.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge (%d,%d)", v, e.U, e.V))
}

// Graph is an undirected weighted multigraph on vertices 0..N-1 stored as an
// edge list with a CSR adjacency index over three parallel slabs (neighbour
// ids, weights, edge indices), built by Build. Self-loops are rejected by
// AddEdge; parallel edges are permitted by the representation but the
// generators never produce them.
type Graph struct {
	N     int
	Edges []Edge

	// CSR adjacency, built by Build: for vertex v the half-open slab range
	// is adjStart[v]:adjStart[v+1]. The three slabs are positional: entry k
	// of the range describes one incident edge — adjNbr[k] is the other
	// endpoint, adjW[k] its weight, adjEdge[k] its index into Edges. The
	// weight slab is filled lazily on first NeighborsW use (most algorithms
	// never read weights through the adjacency, so Build skips the 2m
	// float64 writes).
	adjStart []int32   // len N+1
	adjNbr   []int32   // len 2*len(Edges); neighbour vertex ids
	adjW     []float64 // len 2*len(Edges); edge weights, lazily filled
	adjEdge  []int32   // len 2*len(Edges); edge indices
	built    bool
	wBuilt   bool

	// backing, when non-nil, is the read-only mmap the slabs (and on
	// matching hosts the edge list) alias. It pins the mapping for the
	// graph's lifetime; see OpenMapped in mmap.go. Mapped graphs are
	// immutable: the in-place mutators panic instead of faulting.
	backing *mapping
}

// Mapped reports whether g's storage aliases a read-only file mapping
// (OpenMapped). Mapped graphs must not be mutated in place.
func (g *Graph) Mapped() bool { return g.backing != nil }

// Close releases g's file mapping, if any. After Close every accessor on a
// mapped graph is invalid; callers that share g concurrently must not call
// Close while readers remain (the instance cache instead drops its
// reference and lets the finalizer unmap). Heap graphs ignore Close.
func (g *Graph) Close() error {
	if g.backing == nil {
		return nil
	}
	b := g.backing
	g.backing = nil
	return b.close()
}

// ensureMutable panics when an in-place mutator runs on a mapped graph —
// a clear error instead of a segfault on the read-only pages.
func (g *Graph) ensureMutable() {
	if g.backing != nil {
		panic("graph: cannot mutate a mapped graph (OpenMapped instances are read-only; Clone first)")
	}
}

// checkCSRBounds rejects dimensions whose CSR slab offsets overflow the
// int32 kernel: the half-edge slabs are indexed by int32, so both n and 2m
// must stay below 2^31. Build panics with this error; the decoding paths
// (Decode, ReadContainer, BuildExternal) return it before allocating.
func checkCSRBounds(n, m int) error {
	if n > math.MaxInt32 || m < 0 || 2*m > math.MaxInt32 || m > math.MaxInt32/2 {
		return errCSRBounds(n, m)
	}
	return nil
}

func errCSRBounds(n, m int) error {
	return fmt.Errorf("graph: n=%d m=%d exceeds the int32 CSR kernel (need n <= %d and 2m <= %d)",
		n, m, math.MaxInt32, math.MaxInt32)
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{N: n}
}

// AddEdge appends an undirected edge {u,v} with weight w.
// It panics on out-of-range endpoints or self-loops.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.ensureMutable()
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, g.N))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
	g.built = false
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Invalidate marks the CSR index stale, forcing the next accessor to
// rebuild it. Callers that mutate g.Edges directly (endpoints or weights)
// must call it; AddEdge, SortEdges and the Assign*Weights helpers do so
// themselves.
func (g *Graph) Invalidate() { g.built = false }

// Build constructs the CSR adjacency slabs. It is idempotent and called
// automatically by the accessors that need it. On graphs with at least
// 2^14 edges and m ≥ n (the per-chunk histograms cost Θ(chunks·n)) it runs
// on the package's parallel workers (SetParallelism) with a layout
// bit-identical to the sequential pass.
func (g *Graph) Build() {
	if g.built {
		return
	}
	m := len(g.Edges)
	if err := checkCSRBounds(g.N, m); err != nil {
		panic(err)
	}
	workers := parallelism()
	// The parallel path spends Θ(chunks·N) on per-chunk histograms, so it
	// only pays off when the edge count dominates the vertex count; a
	// sparse N ≫ m graph builds faster (and far smaller) sequentially.
	if workers > 1 && m >= buildParallelMin && m >= g.N {
		g.buildParallel(workers)
	} else {
		g.buildSequential()
	}
	g.built = true
	g.wBuilt = false
}

// buildWeights fills the positional weight slab from the edge-index slab.
// Called lazily by NeighborsW; like Build it must not race with concurrent
// accessors, so callers sharing a graph across goroutines should touch
// NeighborsW once up front (the same contract as Build itself).
func (g *Graph) buildWeights() {
	if g.wBuilt {
		return
	}
	if cap(g.adjW) < len(g.adjEdge) {
		g.adjW = make([]float64, len(g.adjEdge))
	} else {
		g.adjW = g.adjW[:len(g.adjEdge)]
	}
	fill := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			g.adjW[k] = g.Edges[g.adjEdge[k]].W
		}
	}
	if workers := parallelism(); workers > 1 && len(g.adjEdge) >= buildParallelMin {
		runChunks(chunkRanges(len(g.adjEdge), workers), func(_, lo, hi int) { fill(lo, hi) })
	} else {
		fill(0, len(g.adjEdge))
	}
	g.wBuilt = true
}

func (g *Graph) buildSequential() {
	m := len(g.Edges)
	start := make([]int32, g.N+1)
	for i := range g.Edges {
		e := &g.Edges[i]
		start[e.U+1]++
		start[e.V+1]++
	}
	for v := 0; v < g.N; v++ {
		start[v+1] += start[v]
	}
	g.adjStart = start
	g.adjNbr = make([]int32, 2*m)
	g.adjEdge = make([]int32, 2*m)
	fill := make([]int32, g.N)
	copy(fill, start[:g.N])
	for i := range g.Edges {
		e := &g.Edges[i]
		ku := fill[e.U]
		g.adjNbr[ku] = int32(e.V)
		g.adjEdge[ku] = int32(i)
		fill[e.U] = ku + 1
		kv := fill[e.V]
		g.adjNbr[kv] = int32(e.U)
		g.adjEdge[kv] = int32(i)
		fill[e.V] = kv + 1
	}
}

// buildParallel fills the same slabs as buildSequential using per-chunk
// degree histograms: pass 1 counts each chunk's endpoints per vertex, the
// prefix-sum merge assigns every (chunk, vertex) pair its write base in
// fixed chunk order, and pass 2 lets each chunk scan its own edges again,
// writing into disjoint slots. Within a vertex the slab order is (chunk
// ascending, then in-chunk edge ascending) = global edge index ascending —
// exactly the sequential layout.
func (g *Graph) buildParallel(workers int) {
	m := len(g.Edges)
	bounds := chunkRanges(m, workers)
	chunks := len(bounds) - 1
	counts := make([][]int32, chunks)
	runChunks(bounds, func(chunk, lo, hi int) {
		cnt := make([]int32, g.N)
		for i := lo; i < hi; i++ {
			e := &g.Edges[i]
			cnt[e.U]++
			cnt[e.V]++
		}
		counts[chunk] = cnt
	})
	// Merge: per vertex, convert the chunk counts into chunk write bases and
	// the global adjStart prefix sums.
	start := make([]int32, g.N+1)
	total := int32(0)
	for v := 0; v < g.N; v++ {
		start[v] = total
		for c := 0; c < chunks; c++ {
			base := total
			total += counts[c][v]
			counts[c][v] = base
		}
	}
	start[g.N] = total
	g.adjStart = start
	g.adjNbr = make([]int32, 2*m)
	g.adjEdge = make([]int32, 2*m)
	runChunks(bounds, func(chunk, lo, hi int) {
		fill := counts[chunk]
		for i := lo; i < hi; i++ {
			e := &g.Edges[i]
			ku := fill[e.U]
			g.adjNbr[ku] = int32(e.V)
			g.adjEdge[ku] = int32(i)
			fill[e.U] = ku + 1
			kv := fill[e.V]
			g.adjNbr[kv] = int32(e.U)
			g.adjEdge[kv] = int32(i)
			fill[e.V] = kv + 1
		}
	})
}

// IncidentEdges returns the indices (into g.Edges) of edges incident to v.
// The returned slice aliases internal storage and must not be modified. It
// is positional with Neighbors(v): entry i of both slices describes the
// same incident edge.
func (g *Graph) IncidentEdges(v int) []int32 {
	g.Build()
	return g.adjEdge[g.adjStart[v]:g.adjStart[v+1]]
}

// Neighbors returns the neighbours of v (with multiplicity for parallel
// edges) as a contiguous slice of vertex ids. The slice aliases internal
// storage and must not be modified. This is the hot neighbour-scan form:
// no edge-id indirection, no Other() branch.
func (g *Graph) Neighbors(v int) []int32 {
	g.Build()
	return g.adjNbr[g.adjStart[v]:g.adjStart[v+1]]
}

// NeighborsW returns the neighbours of v and, positionally, the weights of
// the connecting edges. Both slices alias internal storage and must not be
// modified. The weight slab is filled on first use; callers sharing g
// across goroutines should call NeighborsW once before fanning out, the
// same contract as Build.
func (g *Graph) NeighborsW(v int) ([]int32, []float64) {
	g.Build()
	g.buildWeights()
	lo, hi := g.adjStart[v], g.adjStart[v+1]
	return g.adjNbr[lo:hi], g.adjW[lo:hi]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.Build()
	return int(g.adjStart[v+1] - g.adjStart[v])
}

// Degrees returns the degree sequence.
func (g *Graph) Degrees() []int {
	g.Build()
	d := make([]int, g.N)
	for v := range d {
		d[v] = int(g.adjStart[v+1] - g.adjStart[v])
	}
	return d
}

// MaxDegree returns the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}

// DensityExponent returns c such that m = n^{1+c}, the paper's density
// parameter. Returns 0 for graphs with fewer than 2 vertices or no edges.
func (g *Graph) DensityExponent() float64 {
	if g.N < 2 || len(g.Edges) == 0 {
		return 0
	}
	return math.Log(float64(len(g.Edges)))/math.Log(float64(g.N)) - 1
}

// Clone returns a deep copy of g (without the adjacency index).
func (g *Graph) Clone() *Graph {
	h := New(g.N)
	h.Edges = append([]Edge(nil), g.Edges...)
	return h
}

// HasEdgeSet returns a set membership function over the vertex pairs of g.
// Useful for validators; pairs are normalized to (min,max).
func (g *Graph) HasEdgeSet() map[[2]int]bool {
	set := make(map[[2]int]bool, len(g.Edges))
	for _, e := range g.Edges {
		set[normPair(e.U, e.V)] = true
	}
	return set
}

func normPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// SortEdges sorts the edge list lexicographically by (min endpoint, max
// endpoint, weight). Used to make serialized graphs deterministic.
func (g *Graph) SortEdges() {
	g.ensureMutable()
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		au, av := minmax(a.U, a.V)
		bu, bv := minmax(b.U, b.V)
		if au != bu {
			return au < bu
		}
		if av != bv {
			return av < bv
		}
		return a.W < b.W
	})
	g.built = false
}

func minmax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

// VertexSet converts a []bool membership bitmap into the map[int]bool shape
// the validators and public results use. The map is pre-sized to the exact
// member count, so assembly does a single allocation and no rehash growth.
func VertexSet(bits []bool) map[int]bool {
	count := 0
	for _, b := range bits {
		if b {
			count++
		}
	}
	set := make(map[int]bool, count)
	for v, b := range bits {
		if b {
			set[v] = true
		}
	}
	return set
}

// AssignUniformWeights overwrites every edge weight with a uniform draw from
// [lo, hi) and invalidates the CSR weight slab (endpoints are untouched, so
// the adjacency slabs stay valid).
func (g *Graph) AssignUniformWeights(r *rng.RNG, lo, hi float64) {
	g.ensureMutable()
	for i := range g.Edges {
		g.Edges[i].W = r.UniformWeight(lo, hi)
	}
	g.wBuilt = false
}

// AssignUnitWeights sets every edge weight to 1 and invalidates the CSR
// weight slab (endpoints are untouched, so the adjacency slabs stay valid).
func (g *Graph) AssignUnitWeights() {
	g.ensureMutable()
	for i := range g.Edges {
		g.Edges[i].W = 1
	}
	g.wBuilt = false
}
