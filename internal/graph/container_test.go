package graph

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/rng"
)

// testGraph builds a moderately sized weighted random graph.
func testGraph(t testing.TB) *Graph {
	t.Helper()
	r := rng.New(17)
	g := GNM(500, 3000, r)
	g.AssignUniformWeights(r, 1, 100)
	return g
}

// graphsEquivalent compares two graphs on every kernel accessor.
func graphsEquivalent(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.N != want.N || got.M() != want.M() {
		t.Fatalf("dimensions differ: got (%d,%d) want (%d,%d)", got.N, got.M(), want.N, want.M())
	}
	if !edgesEqual(got.Edges, want.Edges) {
		t.Fatal("edge lists differ")
	}
	for v := 0; v < want.N; v++ {
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("v=%d: degree %d != %d", v, got.Degree(v), want.Degree(v))
		}
		gn, gw := got.NeighborsW(v)
		wn, ww := want.NeighborsW(v)
		gi, wi := got.IncidentEdges(v), want.IncidentEdges(v)
		for k := range wn {
			if gn[k] != wn[k] || gw[k] != ww[k] || gi[k] != wi[k] {
				t.Fatalf("v=%d slot %d: (%d,%g,%d) != (%d,%g,%d)",
					v, k, gn[k], gw[k], gi[k], wn[k], ww[k], wi[k])
			}
		}
	}
}

// TestContainerRoundTrip checks encode → decode and encode → open-mapped
// against the in-heap graph on all accessors, raw and compressed.
func TestContainerRoundTrip(t *testing.T) {
	g := testGraph(t)

	var raw bytes.Buffer
	if err := EncodeContainer(&raw, g); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadContainer(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, dec)

	path := filepath.Join(t.TempDir(), "g.mrg")
	if err := os.WriteFile(path, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Fatal("OpenMapped graph does not report Mapped")
	}
	graphsEquivalent(t, g, mapped)
	if err := VerifyContainer(path); err != nil {
		t.Fatalf("VerifyContainer: %v", err)
	}

	var comp bytes.Buffer
	if err := EncodeContainerCompressed(&comp, g); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= raw.Len() {
		t.Fatalf("compressed container (%d bytes) not smaller than raw (%d bytes)", comp.Len(), raw.Len())
	}
	cdec, err := ReadContainer(bytes.NewReader(comp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, cdec)
}

// TestContainerUnitWeights checks the unit-weight compressed fast path and
// gzip-wrapped container sniffing through DecodeAuto.
func TestContainerUnitWeights(t *testing.T) {
	g := Path(50)
	var comp, weighted bytes.Buffer
	if err := EncodeContainerCompressed(&comp, g); err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	h.Edges[3].W = 2.5
	if err := EncodeContainerCompressed(&weighted, h); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= weighted.Len() {
		t.Fatalf("unit-weight container (%d bytes) not smaller than weighted (%d bytes)", comp.Len(), weighted.Len())
	}
	dec, err := ReadContainer(bytes.NewReader(comp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, dec)

	// gzip(container) decodes through DecodeAuto's nested sniff.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(comp.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	gdec, err := DecodeAuto(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, gdec)
}

// TestContainerRejectsCorrupt checks that malformed containers are rejected
// by both the sequential reader and the mapped opener.
func TestContainerRejectsCorrupt(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EncodeContainer(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	h, _, err := parseHeaderBytes(good)
	if err != nil {
		t.Fatal(err)
	}
	nbrSec, _ := h.find(secAdjNbr)

	cases := []struct {
		name   string
		mutate func(b []byte) []byte
		mapped bool // OpenMapped must also reject it
	}{
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, true},
		{"truncated-header", func(b []byte) []byte { return b[:16] }, true},
		{"truncated-table", func(b []byte) []byte { return b[:headerSize+10] }, true},
		{"truncated-section", func(b []byte) []byte { return b[:len(b)-9] }, true},
		{"header-bit-flip", func(b []byte) []byte { b[9] ^= 1; return b }, true}, // n changes, CRC catches it
		{"section-checksum", func(b []byte) []byte { b[nbrSec.off] ^= 1; return b }, false},
		{"zero-sections", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[28:], 0)
			return b
		}, true},
		{"section-out-of-bounds", func(b []byte) []byte {
			// Grow a section length; the header CRC must be recomputed so
			// only the bounds check can catch it.
			binary.LittleEndian.PutUint64(b[headerSize+16:], uint64(len(b))*2)
			crcOff := headerSize + len(h.sections)*sectionSize
			binary.LittleEndian.PutUint32(b[crcOff:], crc32Of(b[:crcOff]))
			return b
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(append([]byte(nil), good...))
			if _, err := ReadContainer(bytes.NewReader(bad)); err == nil {
				t.Fatal("ReadContainer accepted a corrupt container")
			}
			path := filepath.Join(t.TempDir(), "bad.mrg")
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if tc.mapped {
				if _, err := OpenMapped(path); err == nil {
					t.Fatal("OpenMapped accepted a corrupt container")
				}
			}
			// VerifyContainer checks payload checksums too, so it must
			// reject every corruption in the table.
			if err := VerifyContainer(path); err == nil {
				t.Fatal("VerifyContainer accepted a corrupt container")
			}
		})
	}
}

func crc32Of(b []byte) uint32 {
	cw := crcWriter{}
	cw.Write(b)
	return cw.crc
}

// TestWriteFileExtensions checks the extension-driven format selection and
// that ReadFile transparently maps raw containers.
func TestWriteFileExtensions(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name   string
		mapped bool
	}{
		{"g.txt", false},
		{"g.txt.gz", false},
		{"g.mrg", true},
		{"g.mrgz", false},
		{"g.mrg.gz", false}, // gzip-wrapped container decodes to the heap
	} {
		path := filepath.Join(dir, tc.name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Mapped() != tc.mapped {
			t.Fatalf("%s: Mapped()=%v, want %v", tc.name, got.Mapped(), tc.mapped)
		}
		graphsEquivalent(t, g, got)
		got.Close()
	}
}

// TestMappedGraphImmutable checks the in-place mutators panic with a clear
// error instead of faulting on the read-only pages, and that Clone yields a
// mutable heap copy.
func TestMappedGraphImmutable(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.mrg")
	if err := WriteContainerFile(path, g); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	for name, mutate := range map[string]func(){
		"AddEdge":              func() { mapped.AddEdge(0, 1, 1) },
		"AssignUnitWeights":    func() { mapped.AssignUnitWeights() },
		"AssignUniformWeights": func() { mapped.AssignUniformWeights(rng.New(1), 0, 1) },
		"SortEdges":            func() { mapped.SortEdges() },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s did not panic on a mapped graph", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "mapped") {
					t.Fatalf("%s panicked with %v, want a mapped-graph error", name, r)
				}
			}()
			mutate()
		}()
	}

	clone := mapped.Clone()
	if clone.Mapped() {
		t.Fatal("Clone of a mapped graph is still mapped")
	}
	clone.AssignUnitWeights() // must not panic
	if clone.M() != g.M() {
		t.Fatal("clone lost edges")
	}
}

// TestCSRBoundsRejected checks the overflow hardening: dimensions whose
// slab offsets exceed int32 are rejected with a clear error by the decode
// paths and with a panic carrying the same error by Build.
func TestCSRBoundsRejected(t *testing.T) {
	big := int64(math.MaxInt32)/2 + 1 // 2m overflows int32
	text := "graph 10 " + formatInt(big) + "\n"
	if _, err := Decode(strings.NewReader(text)); err == nil ||
		!strings.Contains(err.Error(), "CSR kernel") {
		t.Fatalf("Decode accepted 2m > MaxInt32: %v", err)
	}
	hugeN := "graph " + formatInt(int64(math.MaxInt32)+1) + " 0\n"
	if _, err := Decode(strings.NewReader(hugeN)); err == nil ||
		!strings.Contains(err.Error(), "CSR kernel") {
		t.Fatalf("Decode accepted n > MaxInt32: %v", err)
	}

	if err := BuildExternal(filepath.Join(t.TempDir(), "x.mrg"), 10, int(big),
		func() (Edge, error) { return Edge{}, nil }, nil); err == nil ||
		!strings.Contains(err.Error(), "CSR kernel") {
		t.Fatalf("BuildExternal accepted 2m > MaxInt32: %v", err)
	}

	// A crafted container header promising overflowing dimensions must be
	// rejected before any allocation.
	g := Path(3)
	var buf bytes.Buffer
	if err := EncodeContainer(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint64(b[16:], uint64(big)) // m
	crcOff := headerSize + 5*sectionSize
	binary.LittleEndian.PutUint32(b[crcOff:], crc32Of(b[:crcOff]))
	if _, err := ReadContainer(bytes.NewReader(b)); err == nil ||
		!strings.Contains(err.Error(), "CSR kernel") {
		t.Fatalf("ReadContainer accepted an overflowing header: %v", err)
	}

	// Build panics with the same clear error.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build did not panic on overflowing dimensions")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "CSR kernel") {
			t.Fatalf("Build panicked with %v, want the CSR bounds error", r)
		}
	}()
	huge := &Graph{N: math.MaxInt32 + 1}
	huge.Build()
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// TestGoldenContainer pins the on-disk format: the committed fixture must
// decode to the expected graph and re-encode byte-identically.
func TestGoldenContainer(t *testing.T) {
	const golden = "testdata/golden.mrg"
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with go generate or scripts): %v", err)
	}
	g, err := ReadContainer(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden container no longer decodes: %v", err)
	}
	want := goldenGraph()
	graphsEquivalent(t, want, g)

	var re bytes.Buffer
	if err := EncodeContainer(&re, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), data) {
		t.Fatal("re-encoding the golden graph changed the bytes: the on-disk format drifted")
	}

	mapped, err := OpenMapped(golden)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	graphsEquivalent(t, want, mapped)
}

// goldenGraph is the fixture's content; regenerating the fixture must use
// exactly this graph (see TestGoldenContainer and scripts in CI).
func goldenGraph() *Graph {
	r := rng.New(20180617)
	g := GNM(64, 256, r)
	g.AssignUniformWeights(r, 1, 100)
	return g
}
