package graph

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"runtime"
	"unsafe"
)

// This file is the mmap-backed side of the binary container: OpenMapped
// maps a raw container read-only and serves the kernel accessors
// (Neighbors, NeighborsW, IncidentEdges, Degree — and g.Edges itself) as
// zero-copy views straight off the mapping. Opening costs O(header): no
// edge is touched until an algorithm scans it, and then the OS page cache —
// not the Go heap — decides what stays resident, which is what lets an
// instance 10-100x larger than memory run at all.
//
// Lifetime: the returned *Graph pins the mapping. Explicit Close unmaps;
// otherwise a finalizer unmaps when the last reference (graph or any job
// holding it) is collected, so the instance cache can evict a mapped
// instance while jobs still scan it. One file, one mapping, any number of
// concurrent readers.

// mapping is the pinned byte range behind a mapped graph. data is either a
// live mmap (unmap true) or a heap buffer on platforms without mmap.
type mapping struct {
	data  []byte
	unmap bool
}

// close releases the mapping; idempotent.
func (m *mapping) close() error {
	data, doUnmap := m.data, m.unmap
	m.data, m.unmap = nil, false
	runtime.SetFinalizer(m, nil)
	if doUnmap && data != nil {
		return munmap(data)
	}
	return nil
}

// hostLittleEndian reports the native byte order; the container's on-disk
// layout is little-endian, so only LE hosts can alias sections in place.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// edgeLayoutMatches reports whether the in-memory Edge struct has exactly
// the on-disk record layout (u i64, v i64, w f64 — 24 bytes, 8-aligned), so
// the edges section can back g.Edges directly. True on every 64-bit
// little-endian platform Go supports.
var edgeLayoutMatches = hostLittleEndian &&
	unsafe.Sizeof(Edge{}) == 24 &&
	unsafe.Offsetof(Edge{}.V) == 8 &&
	unsafe.Offsetof(Edge{}.W) == 16

// viewInt32, viewFloat64 and viewEdges reinterpret an aligned byte section
// as a typed slice without copying. The container format 8-aligns every
// section and mmap returns page-aligned bases, so the casts are aligned.
func viewInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewFloat64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewEdges(b []byte) []Edge {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*Edge)(unsafe.Pointer(&b[0])), len(b)/24)
}

// OpenMapped opens the raw binary container at path as a read-only mapped
// graph: the CSR slabs (and the edge list, on 64-bit little-endian hosts)
// are zero-copy views of the file mapping, the open itself is O(header),
// and one physical mapping serves any number of concurrent readers.
//
// The header checksum and every section bound are verified; section
// payloads are not (that would fault in the whole file — run
// VerifyContainer for a full integrity check). Compressed containers and
// big-endian hosts fall back to ReadContainer: same graph, heap-resident.
//
// The returned graph is immutable — in-place mutators panic; Clone gives a
// mutable heap copy. Close (or garbage collection of the graph and every
// holder of its slices) releases the mapping.
func OpenMapped(path string) (*Graph, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()

	prefix := make([]byte, headerSize)
	if _, err := fh.ReadAt(prefix, 0); err != nil {
		return nil, fmt.Errorf("graph: container header: %v", err)
	}
	_, total, err := parseHeaderBytes(prefix)
	if err != nil {
		return nil, err
	}
	full := make([]byte, total)
	if _, err := fh.ReadAt(full, 0); err != nil {
		return nil, fmt.Errorf("graph: container section table: %v", err)
	}
	h, _, err := parseHeaderBytes(full)
	if err != nil {
		return nil, err
	}

	if h.flags&flagCompressed != 0 || !hostLittleEndian {
		// Not mappable: decode to the heap through the verifying path.
		if _, err := fh.Seek(0, 0); err != nil {
			return nil, err
		}
		return ReadContainer(fh)
	}

	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	size := h.totalSize()
	if uint64(st.Size()) < size {
		return nil, fmt.Errorf("graph: container truncated: %d bytes on disk, header promises %d", st.Size(), size)
	}

	data, mapped, err := mmapFile(fh, int(size))
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %v", path, err)
	}
	m := &mapping{data: data, unmap: mapped}
	runtime.SetFinalizer(m, (*mapping).close)

	sec := func(kind uint32) []byte {
		s, _ := h.find(kind)
		return data[s.off : s.off+s.len]
	}
	g := New(int(h.n))
	g.adjStart = viewInt32(sec(secAdjStart))
	g.adjNbr = viewInt32(sec(secAdjNbr))
	g.adjEdge = viewInt32(sec(secAdjEdge))
	g.adjW = viewFloat64(sec(secAdjW))
	if edgeLayoutMatches {
		g.Edges = viewEdges(sec(secEdges))
	} else {
		// 32-bit host: the record layout differs from Edge, copy out.
		g.Edges = decodeEdgeSection(sec(secEdges))
	}
	g.built = true
	g.wBuilt = true
	g.backing = m
	return g, nil
}

// decodeEdgeSection decodes the edges section field by field (the fallback
// when the in-memory Edge layout differs from the on-disk record).
func decodeEdgeSection(b []byte) []Edge {
	edges := make([]Edge, len(b)/24)
	for i := range edges {
		rec := b[i*24 : i*24+24]
		edges[i] = Edge{
			U: int(int64(binary.LittleEndian.Uint64(rec))),
			V: int(int64(binary.LittleEndian.Uint64(rec[8:]))),
			W: math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
		}
	}
	return edges
}
