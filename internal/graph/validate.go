package graph

// This file contains solution validators: pure functions that check whether a
// proposed solution is feasible for its problem. Every MapReduce algorithm in
// internal/core is tested against these, so they are written for clarity and
// independence from the solvers (no shared helper logic that could hide a
// common bug).

// IsMatching reports whether the edge indices in sel form a matching in g:
// no two selected edges share an endpoint, and every index is valid and
// distinct.
func IsMatching(g *Graph, sel []int) bool {
	used := make([]bool, g.N)
	seen := make([]bool, len(g.Edges))
	for _, id := range sel {
		if id < 0 || id >= len(g.Edges) || seen[id] {
			return false
		}
		seen[id] = true
		e := g.Edges[id]
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U] = true
		used[e.V] = true
	}
	return true
}

// IsMaximalMatching reports whether sel is a matching that cannot be extended
// by any edge of g.
func IsMaximalMatching(g *Graph, sel []int) bool {
	if !IsMatching(g, sel) {
		return false
	}
	used := make([]bool, g.N)
	for _, id := range sel {
		used[g.Edges[id].U] = true
		used[g.Edges[id].V] = true
	}
	for _, e := range g.Edges {
		if !used[e.U] && !used[e.V] {
			return false
		}
	}
	return true
}

// MatchingWeight returns the total weight of the selected edges.
func MatchingWeight(g *Graph, sel []int) float64 {
	w := 0.0
	for _, id := range sel {
		w += g.Edges[id].W
	}
	return w
}

// IsBMatching reports whether sel is a b-matching: each vertex v is covered
// by at most b(v) selected edges.
func IsBMatching(g *Graph, sel []int, b func(v int) int) bool {
	load := make([]int, g.N)
	seen := make([]bool, len(g.Edges))
	for _, id := range sel {
		if id < 0 || id >= len(g.Edges) || seen[id] {
			return false
		}
		seen[id] = true
		e := g.Edges[id]
		load[e.U]++
		load[e.V]++
		if load[e.U] > b(e.U) || load[e.V] > b(e.V) {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether the vertex set covers every edge of g.
func IsVertexCover(g *Graph, cover map[int]bool) bool {
	for _, e := range g.Edges {
		if !cover[e.U] && !cover[e.V] {
			return false
		}
	}
	return true
}

// CoverWeight returns the total weight of a vertex set under w.
func CoverWeight(cover map[int]bool, w []float64) float64 {
	s := 0.0
	for v, in := range cover {
		if in {
			s += w[v]
		}
	}
	return s
}

// IsIndependentSet reports whether no edge of g has both endpoints in set.
func IsIndependentSet(g *Graph, set map[int]bool) bool {
	for _, e := range g.Edges {
		if set[e.U] && set[e.V] {
			return false
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is independent and every vertex
// outside it has a neighbour inside it. The map is converted to a bitmap
// once up front so the per-edge and per-neighbour tests are slice loads,
// not map lookups.
func IsMaximalIndependentSet(g *Graph, set map[int]bool) bool {
	in := make([]bool, g.N)
	for v, ok := range set {
		if ok && v >= 0 && v < g.N {
			in[v] = true
		}
	}
	for _, e := range g.Edges {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	g.Build()
	for v := 0; v < g.N; v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// IsClique reports whether every pair of vertices in set is joined in g.
func IsClique(g *Graph, set []int) bool {
	have := g.HasEdgeSet()
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if set[i] == set[j] {
				return false
			}
			if !have[normPair(set[i], set[j])] {
				return false
			}
		}
	}
	return true
}

// IsMaximalClique reports whether set is a clique and no vertex outside set
// is adjacent to all of set.
func IsMaximalClique(g *Graph, set []int) bool {
	if !IsClique(g, set) {
		return false
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	have := g.HasEdgeSet()
	for v := 0; v < g.N; v++ {
		if in[v] {
			continue
		}
		adjacentToAll := true
		for _, u := range set {
			if !have[normPair(u, v)] {
				adjacentToAll = false
				break
			}
		}
		if adjacentToAll {
			return false
		}
	}
	return true
}

// IsProperVertexColouring reports whether colour assigns every vertex a
// colour and no edge is monochromatic.
func IsProperVertexColouring(g *Graph, colour []int) bool {
	if len(colour) != g.N {
		return false
	}
	for _, e := range g.Edges {
		if colour[e.U] == colour[e.V] {
			return false
		}
	}
	return true
}

// IsProperEdgeColouring reports whether colour assigns every edge a colour
// and no two edges sharing a vertex have the same colour.
func IsProperEdgeColouring(g *Graph, colour []int) bool {
	if len(colour) != len(g.Edges) {
		return false
	}
	seen := make(map[[2]int]bool) // (vertex, colour)
	for id, e := range g.Edges {
		c := colour[id]
		ku := [2]int{e.U, c}
		kv := [2]int{e.V, c}
		if seen[ku] || seen[kv] {
			return false
		}
		seen[ku] = true
		seen[kv] = true
	}
	return true
}

// NumColours returns the number of distinct colours used.
func NumColours(colour []int) int {
	set := make(map[int]bool, len(colour))
	for _, c := range colour {
		set[c] = true
	}
	return len(set)
}
