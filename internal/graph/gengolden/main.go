// Command gengolden regenerates the committed golden container fixture used
// by TestGoldenContainer to pin the on-disk format. Run from the repo root:
//
//	go run ./internal/graph/gengolden
package main

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	r := rng.New(20180617)
	g := graph.GNM(64, 256, r)
	g.AssignUniformWeights(r, 1, 100)
	if err := graph.WriteContainerFile("internal/graph/testdata/golden.mrg", g); err != nil {
		panic(err)
	}
}
