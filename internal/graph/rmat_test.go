package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestRMATBasics(t *testing.T) {
	r := rng.New(120)
	g := RMATDefault(8, 1000, r) // n = 256
	if g.N != 256 || g.M() != 1000 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	seen := make(map[[2]int]bool)
	for _, e := range g.Edges {
		if e.U == e.V {
			t.Fatal("self loop")
		}
		p := normPair(e.U, e.V)
		if seen[p] {
			t.Fatal("duplicate edge")
		}
		seen[p] = true
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// R-MAT with Graph500 parameters concentrates edges on low-id vertices:
	// the max degree should far exceed the average.
	r := rng.New(121)
	g := RMATDefault(10, 8000, r) // n = 1024
	avg := 2 * float64(g.M()) / float64(g.N)
	if float64(g.MaxDegree()) < 3*avg {
		t.Fatalf("max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestRMATPanics(t *testing.T) {
	r := rng.New(122)
	cases := []func(){
		func() { RMAT(0, 1, 0.5, 0.2, 0.2, r) },
		func() { RMAT(31, 1, 0.5, 0.2, 0.2, r) },
		func() { RMAT(4, 1, 0, 0.2, 0.2, r) },
		func() { RMAT(4, 1, 0.5, 0.3, 0.3, r) }, // a+b+c >= 1
		func() { RMAT(2, 100, 0.5, 0.2, 0.2, r) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRMATUniformCornerIsGNMLike(t *testing.T) {
	// With a=b=c=d=0.25 the process is uniform over the matrix: degrees
	// should be fairly balanced.
	r := rng.New(123)
	g := RMAT(8, 2000, 0.25, 0.25, 0.25, r)
	avg := 2 * float64(g.M()) / float64(g.N)
	if float64(g.MaxDegree()) > 4*avg {
		t.Fatalf("uniform R-MAT unexpectedly skewed: max %d vs avg %.1f", g.MaxDegree(), avg)
	}
}
