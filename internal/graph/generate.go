package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// GNM returns an Erdős–Rényi G(n, m) graph: m distinct edges chosen uniformly
// from all vertex pairs, with unit weights. It panics if m exceeds the number
// of available pairs.
func GNM(n, m int, r *rng.RNG) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: GNM(%d, %d) exceeds %d possible edges", n, m, maxM))
	}
	g := New(n)
	if m == 0 {
		return g
	}
	if m > maxM/2 {
		// Dense: enumerate pairs and sample without replacement.
		idx := r.SampleWithoutReplacement(maxM, m)
		for _, k := range idx {
			u, v := pairFromIndex(k)
			g.AddEdge(u, v, 1)
		}
		return g
	}
	// Sparse: rejection sampling with a seen-set.
	seen := make(map[[2]int]bool, m)
	for len(g.Edges) < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		p := normPair(u, v)
		if seen[p] {
			continue
		}
		seen[p] = true
		g.AddEdge(u, v, 1)
	}
	return g
}

// pairFromIndex maps k in [0, n(n-1)/2) to the k-th pair (u,v), u < v, in the
// triangular enumeration (0,1),(0,2),(1,2),(0,3),(1,3),(2,3),...
func pairFromIndex(k int) (int, int) {
	// v is the largest integer with v(v-1)/2 <= k.
	v := int((1 + math.Sqrt(1+8*float64(k))) / 2)
	for v*(v-1)/2 > k {
		v--
	}
	for (v+1)*v/2 <= k {
		v++
	}
	u := k - v*(v-1)/2
	return u, v
}

// Density returns a graph with n vertices and floor(n^{1+c}) edges (capped at
// the complete graph) sampled as G(n,m). This is the paper's standard
// workload: m = n^{1+c}.
func Density(n int, c float64, r *rng.RNG) *Graph {
	m := int(math.Floor(math.Pow(float64(n), 1+c)))
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	return GNM(n, m, r)
}

// PreferentialAttachment returns a power-law graph built by preferential
// attachment: vertices arrive one at a time and attach k edges to existing
// vertices chosen proportionally to their current degree (plus one). This
// mirrors the heavy-tailed degree distributions of the social-network
// workloads that motivate the paper.
func PreferentialAttachment(n, k int, r *rng.RNG) *Graph {
	if k < 1 {
		panic("graph: PreferentialAttachment requires k >= 1")
	}
	g := New(n)
	if n < 2 {
		return g
	}
	// targets is a multiset of endpoints; each edge contributes both ends, so
	// sampling uniformly from it is degree-proportional sampling.
	targets := make([]int, 0, 2*k*n)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		attach := k
		if v < k {
			attach = v
		}
		chosen := make(map[int]bool, attach)
		for len(chosen) < attach {
			var t int
			// Mix degree-proportional with uniform to guarantee progress on
			// small target sets.
			if len(targets) > 0 && r.Bernoulli(0.9) {
				t = targets[r.Intn(len(targets))]
			} else {
				t = r.Intn(v)
			}
			if t == v || chosen[t] {
				continue
			}
			chosen[t] = true
			g.AddEdge(v, t, 1)
			targets = append(targets, v, t)
		}
	}
	return g
}

// RandomBipartite returns a bipartite graph with left vertices 0..nl-1 and
// right vertices nl..nl+nr-1 and m distinct edges chosen uniformly.
func RandomBipartite(nl, nr, m int, r *rng.RNG) *Graph {
	maxM := nl * nr
	if m > maxM {
		panic(fmt.Sprintf("graph: RandomBipartite(%d,%d,%d) exceeds %d pairs", nl, nr, m, maxM))
	}
	g := New(nl + nr)
	if m == 0 {
		return g
	}
	if m > maxM/2 {
		idx := r.SampleWithoutReplacement(maxM, m)
		for _, k := range idx {
			g.AddEdge(k/nr, nl+k%nr, 1)
		}
		return g
	}
	seen := make(map[int]bool, m)
	for len(g.Edges) < m {
		l := r.Intn(nl)
		rt := r.Intn(nr)
		key := l*nr + rt
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddEdge(l, nl+rt, 1)
	}
	return g
}

// Star returns a star on n vertices centred at vertex 0.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v, 1)
	}
	return g
}

// Path returns a path 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, 1)
	}
	return g
}

// Cycle returns a cycle on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	g := Path(n)
	g.AddEdge(n-1, 0, 1)
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v, 1)
		}
	}
	return g
}

// PlantClique adds a clique on k uniformly chosen vertices to g (skipping
// pairs already joined) and returns the planted vertex set. Used by the
// maximal-clique experiments.
func PlantClique(g *Graph, k int, r *rng.RNG) []int {
	if k > g.N {
		panic("graph: PlantClique k > n")
	}
	vs := r.SampleWithoutReplacement(g.N, k)
	have := g.HasEdgeSet()
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			p := normPair(vs[i], vs[j])
			if !have[p] {
				g.AddEdge(p[0], p[1], 1)
				have[p] = true
			}
		}
	}
	return vs
}

// Grid returns an r-by-c grid graph (4-neighbour).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < rows {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}
