package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// GNM returns an Erdős–Rényi G(n, m) graph: m distinct edges chosen uniformly
// from all vertex pairs, with unit weights. It panics if m exceeds the number
// of available pairs. Large instances construct on the package's parallel
// workers (SetParallelism) with output bit-identical to the sequential path,
// including the final position of r.
func GNM(n, m int, r *rng.RNG) *Graph {
	if n > math.MaxInt32 {
		// Candidates travel as int32 (the CSR kernel's id width); reject
		// oversized universes up front rather than truncate silently.
		panic("graph: GNM limited to n below 2^31")
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: GNM(%d, %d) exceeds %d possible edges", n, m, maxM))
	}
	g := New(n)
	if m == 0 {
		return g
	}
	if m > maxM/2 {
		// Dense: enumerate pairs and sample without replacement. The map-based
		// sampling is inherently sequential; the triangular pair decode (a
		// sqrt plus correction loop per index) is not, so it fans out.
		idx := r.SampleWithoutReplacement(maxM, m)
		pairs := decodePairs(idx)
		for _, p := range pairs {
			g.AddEdge(int(p[0]), int(p[1]), 1)
		}
		return g
	}
	// Sparse: rejection sampling with a seen-set. The candidate draws fan
	// out across workers; the accept loop replays them in attempt order.
	seen := make(map[[2]int]bool, m)
	generatePairs(r, n, n, func() int { return m - len(g.Edges) }, func(u, v int) {
		if u == v {
			return
		}
		p := normPair(u, v)
		if seen[p] {
			return
		}
		seen[p] = true
		g.AddEdge(u, v, 1)
	})
	return g
}

// decodePairs maps triangular pair indices to (u,v) endpoint pairs,
// in parallel when the batch is large.
func decodePairs(idx []int) [][2]int32 {
	pairs := make([][2]int32, len(idx))
	decode := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u, v := pairFromIndex(idx[i])
			pairs[i] = [2]int32{int32(u), int32(v)}
		}
	}
	if workers := parallelism(); workers > 1 && len(idx) >= genParallelMin {
		runChunks(chunkRanges(len(idx), workers), func(_, lo, hi int) { decode(lo, hi) })
	} else {
		decode(0, len(idx))
	}
	return pairs
}

// generatePairs runs the generator attempt loop
//
//	for remaining() > 0 { accept(r.Intn(boundA), r.Intn(boundB)) }
//
// through the shared speculative driver: each attempt consumes exactly two
// raw draws (modulo Intn's internal rejection, which the driver detects).
func generatePairs(r *rng.RNG, boundA, boundB int, remaining func() int, accept func(a, b int)) {
	speculativeLoop(r, 2, remaining,
		func(rr *rng.RNG) [2]int32 {
			return [2]int32{int32(rr.Intn(boundA)), int32(rr.Intn(boundB))}
		},
		func(p [2]int32) { accept(int(p[0]), int(p[1])) })
}

// pairFromIndex maps k in [0, n(n-1)/2) to the k-th pair (u,v), u < v, in the
// triangular enumeration (0,1),(0,2),(1,2),(0,3),(1,3),(2,3),...
func pairFromIndex(k int) (int, int) {
	// v is the largest integer with v(v-1)/2 <= k.
	v := int((1 + math.Sqrt(1+8*float64(k))) / 2)
	for v*(v-1)/2 > k {
		v--
	}
	for (v+1)*v/2 <= k {
		v++
	}
	u := k - v*(v-1)/2
	return u, v
}

// Density returns a graph with n vertices and floor(n^{1+c}) edges (capped at
// the complete graph) sampled as G(n,m). This is the paper's standard
// workload: m = n^{1+c}.
func Density(n int, c float64, r *rng.RNG) *Graph {
	m := int(math.Floor(math.Pow(float64(n), 1+c)))
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	return GNM(n, m, r)
}

// PreferentialAttachment returns a power-law graph built by preferential
// attachment: vertices arrive one at a time and attach k edges to existing
// vertices chosen proportionally to their current degree (plus one). This
// mirrors the heavy-tailed degree distributions of the social-network
// workloads that motivate the paper.
func PreferentialAttachment(n, k int, r *rng.RNG) *Graph {
	if k < 1 {
		panic("graph: PreferentialAttachment requires k >= 1")
	}
	g := New(n)
	if n < 2 {
		return g
	}
	// targets is a multiset of endpoints; each edge contributes both ends, so
	// sampling uniformly from it is degree-proportional sampling.
	targets := make([]int, 0, 2*k*n)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		attach := k
		if v < k {
			attach = v
		}
		chosen := make(map[int]bool, attach)
		for len(chosen) < attach {
			var t int
			// Mix degree-proportional with uniform to guarantee progress on
			// small target sets.
			if len(targets) > 0 && r.Bernoulli(0.9) {
				t = targets[r.Intn(len(targets))]
			} else {
				t = r.Intn(v)
			}
			if t == v || chosen[t] {
				continue
			}
			chosen[t] = true
			g.AddEdge(v, t, 1)
			targets = append(targets, v, t)
		}
	}
	return g
}

// RandomBipartite returns a bipartite graph with left vertices 0..nl-1 and
// right vertices nl..nl+nr-1 and m distinct edges chosen uniformly.
func RandomBipartite(nl, nr, m int, r *rng.RNG) *Graph {
	if nl > math.MaxInt32 || nr > math.MaxInt32 {
		panic("graph: RandomBipartite limited to sides below 2^31")
	}
	maxM := nl * nr
	if m > maxM {
		panic(fmt.Sprintf("graph: RandomBipartite(%d,%d,%d) exceeds %d pairs", nl, nr, m, maxM))
	}
	g := New(nl + nr)
	if m == 0 {
		return g
	}
	if m > maxM/2 {
		idx := r.SampleWithoutReplacement(maxM, m)
		for _, k := range idx {
			g.AddEdge(k/nr, nl+k%nr, 1)
		}
		return g
	}
	seen := make(map[int]bool, m)
	generatePairs(r, nl, nr, func() int { return m - len(g.Edges) }, func(l, rt int) {
		key := l*nr + rt
		if seen[key] {
			return
		}
		seen[key] = true
		g.AddEdge(l, nl+rt, 1)
	})
	return g
}

// Star returns a star on n vertices centred at vertex 0.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v, 1)
	}
	return g
}

// Path returns a path 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, 1)
	}
	return g
}

// Cycle returns a cycle on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	g := Path(n)
	g.AddEdge(n-1, 0, 1)
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v, 1)
		}
	}
	return g
}

// PlantClique adds a clique on k uniformly chosen vertices to g (skipping
// pairs already joined) and returns the planted vertex set. Used by the
// maximal-clique experiments.
func PlantClique(g *Graph, k int, r *rng.RNG) []int {
	if k > g.N {
		panic("graph: PlantClique k > n")
	}
	vs := r.SampleWithoutReplacement(g.N, k)
	have := g.HasEdgeSet()
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			p := normPair(vs[i], vs[j])
			if !have[p] {
				g.AddEdge(p[0], p[1], 1)
				have[p] = true
			}
		}
	}
	return vs
}

// Grid returns an r-by-c grid graph (4-neighbour).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < rows {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}
