package graph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// This file implements a small deterministic text format for graphs so that
// instances can be saved, shared and re-run (cmd/mrrun accepts them, and
// cmd/mrserve serves uploaded instances). The format is line-oriented:
//
//	graph <n> <m>
//	e <u> <v> <w>
//	...
//
// Weights are serialized with full float64 round-trip precision. The file
// helpers speak gzip transparently: ReadFile and DecodeAuto sniff the gzip
// magic bytes, WriteFile compresses when the path ends in ".gz". Big
// instances are roughly an order of magnitude smaller compressed.

// Encode writes g to w in the text format, with edges in their current
// order. Call SortEdges first for a canonical encoding.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V,
			strconv.FormatFloat(e.W, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a graph in the text format produced by Encode.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "graph %d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %v", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative dimensions in header")
	}
	g := New(n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "e" {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q", fields[1])
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q", fields[2])
		}
		wt, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad weight %q", fields[3])
		}
		if math.IsNaN(wt) || math.IsInf(wt, 0) {
			return nil, fmt.Errorf("graph: non-finite weight %q on edge (%d,%d)", fields[3], u, v)
		}
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("graph: invalid edge (%d,%d) for n=%d", u, v, n)
		}
		if g.M() >= m {
			return nil, fmt.Errorf("graph: header promises %d edges, found more", m)
		}
		g.AddEdge(u, v, wt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: header promises %d edges, found %d", m, g.M())
	}
	return g, nil
}

// gzipMagic is the two-byte gzip member header (RFC 1952).
var gzipMagic = [2]byte{0x1f, 0x8b}

// DecodeAuto reads a graph in the Encode text format, transparently
// decompressing gzip input. The format is sniffed from the first two bytes,
// so callers need not know whether the stream is compressed.
func DecodeAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err == nil && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graph: gzip: %v", err)
		}
		defer zr.Close()
		g, err := Decode(zr)
		if err != nil {
			return nil, err
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("graph: gzip: %v", err)
		}
		return g, nil
	}
	return Decode(br)
}

// ReadFile loads a graph from path, gzip or plain text.
func ReadFile(path string) (*Graph, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return DecodeAuto(fh)
}

// WriteFile saves g to path in the Encode text format, gzip-compressed when
// the path ends in ".gz".
func WriteFile(path string, g *Graph) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(fh)
		if err := Encode(zw, g); err != nil {
			fh.Close()
			return err
		}
		if err := zw.Close(); err != nil {
			fh.Close()
			return err
		}
	} else if err := Encode(fh, g); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
