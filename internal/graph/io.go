package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a small deterministic text format for graphs so that
// instances can be saved, shared and re-run (cmd/mrrun accepts them). The
// format is line-oriented:
//
//	graph <n> <m>
//	e <u> <v> <w>
//	...
//
// Weights are serialized with full float64 round-trip precision.

// Encode writes g to w in the text format, with edges in their current
// order. Call SortEdges first for a canonical encoding.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V,
			strconv.FormatFloat(e.W, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a graph in the text format produced by Encode.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "graph %d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %v", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative dimensions in header")
	}
	g := New(n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "e" {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q", fields[1])
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q", fields[2])
		}
		wt, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad weight %q", fields[3])
		}
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("graph: invalid edge (%d,%d) for n=%d", u, v, n)
		}
		g.AddEdge(u, v, wt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: header promises %d edges, found %d", m, g.M())
	}
	return g, nil
}
