package graph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// This file implements a small deterministic text format for graphs so that
// instances can be saved, shared and re-run (cmd/mrrun accepts them, and
// cmd/mrserve serves uploaded instances). The format is line-oriented:
//
//	graph <n> <m>
//	e <u> <v> <w>
//	...
//
// Weights are serialized with full float64 round-trip precision. The file
// helpers sniff formats transparently: ReadFile and DecodeAuto accept the
// text format, the binary container (container.go, raw or compressed), and
// gzip wrappings of either, dispatching on the leading magic bytes, so
// every ingest point (mrrun -load, mrserve uploads, fixtures) speaks all
// formats through this one path. WriteFile picks the output format from
// the extension (.mrg container, .mrgz compressed container, .gz gzip).

// Encode writes g to w in the text format, with edges in their current
// order. Call SortEdges first for a canonical encoding.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V,
			strconv.FormatFloat(e.W, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// textStream is a streaming parser for the text format: header first, then
// one edge per Next call. It backs both Decode (into a heap graph) and
// ConvertFile's external build (never holding the edges).
type textStream struct {
	sc   *bufio.Scanner
	n, m int
	read int
}

// newTextStream parses the header line.
func newTextStream(r io.Reader) (*textStream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "graph %d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %v", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative dimensions in header")
	}
	if err := checkCSRBounds(n, m); err != nil {
		return nil, err
	}
	return &textStream{sc: sc, n: n, m: m}, nil
}

// Next returns the next edge. After exactly m edges it verifies the
// trailing input and returns io.EOF.
func (t *textStream) Next() (Edge, error) {
	for t.sc.Scan() {
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "e" {
			return Edge{}, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return Edge{}, fmt.Errorf("graph: bad endpoint %q", fields[1])
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return Edge{}, fmt.Errorf("graph: bad endpoint %q", fields[2])
		}
		wt, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return Edge{}, fmt.Errorf("graph: bad weight %q", fields[3])
		}
		if math.IsNaN(wt) || math.IsInf(wt, 0) {
			return Edge{}, fmt.Errorf("graph: non-finite weight %q on edge (%d,%d)", fields[3], u, v)
		}
		if u < 0 || u >= t.n || v < 0 || v >= t.n || u == v {
			return Edge{}, fmt.Errorf("graph: invalid edge (%d,%d) for n=%d", u, v, t.n)
		}
		if t.read >= t.m {
			return Edge{}, fmt.Errorf("graph: header promises %d edges, found more", t.m)
		}
		t.read++
		return Edge{U: u, V: v, W: wt}, nil
	}
	if err := t.sc.Err(); err != nil {
		return Edge{}, err
	}
	if t.read != t.m {
		return Edge{}, fmt.Errorf("graph: header promises %d edges, found %d", t.m, t.read)
	}
	return Edge{}, io.EOF
}

// Decode reads a graph in the text format produced by Encode.
func Decode(r io.Reader) (*Graph, error) {
	t, err := newTextStream(r)
	if err != nil {
		return nil, err
	}
	g := New(t.n)
	g.Edges = make([]Edge, 0, t.m)
	for {
		e, err := t.Next()
		if err == io.EOF {
			return g, nil
		}
		if err != nil {
			return nil, err
		}
		g.Edges = append(g.Edges, e)
	}
}

// gzipMagic is the two-byte gzip member header (RFC 1952).
var gzipMagic = [2]byte{0x1f, 0x8b}

// sniff classifies the head bytes of a graph stream.
type streamKind int

const (
	kindText streamKind = iota
	kindGzip
	kindContainer
)

func sniff(head []byte) streamKind {
	if len(head) >= 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		return kindGzip
	}
	if len(head) >= len(ContainerMagic) && string(head[:len(ContainerMagic)]) == string(ContainerMagic[:]) {
		return kindContainer
	}
	return kindText
}

// DecodeAuto reads a graph in any of the three supported encodings — the
// Encode text format, the binary container (raw or compressed), or a gzip
// wrapping of either — sniffing the format from the first bytes. This is
// the one ingest path: mrrun -load, mrbench fixtures and mrserve instance
// uploads all accept all formats through it. The result is always a heap
// graph; use ReadFile or OpenMapped on a file path to get the zero-copy
// mapped form of a raw container.
func DecodeAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(len(ContainerMagic))
	switch sniff(head) {
	case kindGzip:
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graph: gzip: %v", err)
		}
		defer zr.Close()
		g, err := DecodeAuto(zr) // the wrapped stream is sniffed again
		if err != nil {
			return nil, err
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("graph: gzip: %v", err)
		}
		return g, nil
	case kindContainer:
		return ReadContainer(br)
	default:
		return Decode(br)
	}
}

// ReadFile loads a graph from path in any supported format. Raw binary
// containers are opened via OpenMapped — zero-copy, O(header) — so callers
// automatically get the out-of-core form when the file provides it; text,
// gzip and compressed containers decode into the heap.
func ReadFile(path string) (*Graph, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, len(ContainerMagic))
	k, _ := fh.ReadAt(head, 0)
	if sniff(head[:k]) == kindContainer {
		fh.Close()
		return OpenMapped(path)
	}
	defer fh.Close()
	return DecodeAuto(fh)
}

// WriteFile saves g to path in the format the extension selects:
//
//	.mrg          raw binary container (mappable; OpenMapped serves it)
//	.mrgz         delta-varint compressed binary container (cold storage)
//	.gz           gzip-wrapped — applied to the inner extension's format
//	anything else Encode text
func WriteFile(path string, g *Graph) error {
	inner := strings.TrimSuffix(path, ".gz")
	encode := Encode
	switch {
	case strings.HasSuffix(inner, ".mrg"):
		encode = EncodeContainer
	case strings.HasSuffix(inner, ".mrgz"):
		encode = EncodeContainerCompressed
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(fh)
		if err := encode(zw, g); err != nil {
			fh.Close()
			return err
		}
		if err := zw.Close(); err != nil {
			fh.Close()
			return err
		}
	} else if err := encode(fh, g); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// ConvertFile rewrites the graph at src — any format ReadFile accepts — as
// a raw binary container at dst. Text input is streamed through
// BuildExternal, so converting never needs the graph in memory; container
// input (raw or compressed) is re-encoded through the heap-free mapped view
// where possible. The output is byte-identical to
// WriteContainerFile(dst, ReadFile(src)).
func ConvertFile(src, dst string, cfg *ExtBuildConfig) error {
	fh, err := os.Open(src)
	if err != nil {
		return err
	}
	defer fh.Close()
	head := make([]byte, len(ContainerMagic))
	k, _ := fh.ReadAt(head, 0)
	if sniff(head[:k]) == kindContainer {
		g, err := OpenMapped(src)
		if err != nil {
			return err
		}
		defer g.Close()
		return WriteContainerFile(dst, g)
	}

	var r io.Reader = bufio.NewReaderSize(fh, 1<<16)
	if sniff(head[:k]) == kindGzip {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return fmt.Errorf("graph: gzip: %v", err)
		}
		defer zr.Close()
		br := bufio.NewReader(zr)
		inner, _ := br.Peek(len(ContainerMagic))
		if sniff(inner) == kindContainer {
			g, err := ReadContainer(br)
			if err != nil {
				return err
			}
			return WriteContainerFile(dst, g)
		}
		r = br
	}
	t, err := newTextStream(r)
	if err != nil {
		return err
	}
	return BuildExternal(dst, t.n, t.m, func() (Edge, error) { return t.Next() }, cfg)
}
