package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(1, 2, 1.0)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Edges[0].W != 2.5 {
		t.Fatalf("weight = %v", g.Edges[0].W)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"self-loop", func() { New(3).AddEdge(1, 1, 1) }},
		{"out of range", func() { New(3).AddEdge(0, 3, 1) }},
		{"negative", func() { New(3).AddEdge(-1, 0, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-endpoint")
		}
	}()
	e.Other(5)
}

func TestAdjacency(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	if d := g.Degree(0); d != 2 {
		t.Fatalf("deg(0) = %d", d)
	}
	if d := g.Degree(3); d != 1 {
		t.Fatalf("deg(3) = %d", d)
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
	set := map[int32]bool{nb[0]: true, nb[1]: true}
	if !set[1] || !set[2] {
		t.Fatalf("neighbors(0) = %v, want {1,2}", nb)
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("maxdeg = %d", g.MaxDegree())
	}
}

func TestAdjacencyRebuildAfterAdd(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if g.Degree(0) != 1 {
		t.Fatal("deg before")
	}
	g.AddEdge(0, 2, 1)
	if g.Degree(0) != 2 {
		t.Fatal("adjacency not rebuilt after AddEdge")
	}
}

func TestDegreeSumEqualsTwiceM(t *testing.T) {
	r := rng.New(1)
	g := GNM(50, 200, r)
	sum := 0
	for _, d := range g.Degrees() {
		sum += d
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum %d != 2m %d", sum, 2*g.M())
	}
}

func TestGNMProperties(t *testing.T) {
	r := rng.New(2)
	for _, tc := range []struct{ n, m int }{{10, 0}, {10, 45}, {10, 20}, {100, 1000}, {5, 10}} {
		g := GNM(tc.n, tc.m, r)
		if g.N != tc.n || g.M() != tc.m {
			t.Fatalf("GNM(%d,%d): got n=%d m=%d", tc.n, tc.m, g.N, g.M())
		}
		seen := make(map[[2]int]bool)
		for _, e := range g.Edges {
			if e.U == e.V {
				t.Fatal("self loop")
			}
			p := normPair(e.U, e.V)
			if seen[p] {
				t.Fatalf("duplicate edge %v", p)
			}
			seen[p] = true
		}
	}
}

func TestGNMPanicsOnTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GNM(4, 7, rng.New(1))
}

func TestPairFromIndex(t *testing.T) {
	// Enumerate all pairs for small n and verify bijection.
	n := 20
	seen := make(map[[2]int]bool)
	for k := 0; k < n*(n-1)/2; k++ {
		u, v := pairFromIndex(k)
		if u < 0 || v <= u || v >= n {
			t.Fatalf("pairFromIndex(%d) = (%d,%d)", k, u, v)
		}
		p := [2]int{u, v}
		if seen[p] {
			t.Fatalf("duplicate pair %v at k=%d", p, k)
		}
		seen[p] = true
	}
}

func TestDensityExponent(t *testing.T) {
	r := rng.New(3)
	n, c := 100, 0.3
	g := Density(n, c, r)
	got := g.DensityExponent()
	if math.Abs(got-c) > 0.05 {
		t.Fatalf("density exponent %v, want ~%v", got, c)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	r := rng.New(4)
	g := PreferentialAttachment(200, 3, r)
	if g.N != 200 {
		t.Fatal("n wrong")
	}
	// Every vertex v >= 3 attaches exactly 3 edges; v in {1,2} attach v.
	want := 0
	for v := 1; v < 200; v++ {
		k := 3
		if v < 3 {
			k = v
		}
		want += k
	}
	if g.M() != want {
		t.Fatalf("m = %d, want %d", g.M(), want)
	}
	for _, e := range g.Edges {
		if e.U == e.V {
			t.Fatal("self loop")
		}
	}
	// Heavy tail: max degree should exceed average by a lot.
	avg := 2 * float64(g.M()) / float64(g.N)
	if float64(g.MaxDegree()) < 2*avg {
		t.Fatalf("max degree %d not heavy-tailed vs avg %v", g.MaxDegree(), avg)
	}
}

func TestRandomBipartite(t *testing.T) {
	r := rng.New(5)
	g := RandomBipartite(10, 15, 60, r)
	if g.N != 25 || g.M() != 60 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	for _, e := range g.Edges {
		l, rt := e.U, e.V
		if l > rt {
			l, rt = rt, l
		}
		if l >= 10 || rt < 10 {
			t.Fatalf("edge (%d,%d) not bipartite", e.U, e.V)
		}
	}
	// Dense branch.
	g2 := RandomBipartite(4, 4, 15, r)
	if g2.M() != 15 {
		t.Fatal("dense bipartite wrong m")
	}
}

func TestFixedFamilies(t *testing.T) {
	if g := Star(5); g.M() != 4 || g.Degree(0) != 4 {
		t.Fatal("star")
	}
	if g := Path(5); g.M() != 4 || g.MaxDegree() != 2 {
		t.Fatal("path")
	}
	if g := Cycle(5); g.M() != 5 || g.MaxDegree() != 2 {
		t.Fatal("cycle")
	}
	if g := Complete(5); g.M() != 10 || g.MaxDegree() != 4 {
		t.Fatal("complete")
	}
	if g := Grid(3, 4); g.N != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("grid m=%d", Grid(3, 4).M())
	}
}

func TestPlantClique(t *testing.T) {
	r := rng.New(6)
	g := GNM(50, 100, r)
	vs := PlantClique(g, 8, r)
	if len(vs) != 8 {
		t.Fatal("planted size")
	}
	if !IsClique(g, vs) {
		t.Fatal("planted set is not a clique")
	}
	// No duplicate edges introduced.
	seen := make(map[[2]int]bool)
	for _, e := range g.Edges {
		p := normPair(e.U, e.V)
		if seen[p] {
			t.Fatalf("duplicate edge %v", p)
		}
		seen[p] = true
	}
}

func TestWeights(t *testing.T) {
	r := rng.New(7)
	g := GNM(20, 50, r)
	g.AssignUniformWeights(r, 2, 5)
	for _, e := range g.Edges {
		if e.W < 2 || e.W >= 5 {
			t.Fatalf("weight %v out of range", e.W)
		}
	}
	g.AssignUnitWeights()
	if g.TotalWeight() != 50 {
		t.Fatal("unit weights")
	}
}

func TestClone(t *testing.T) {
	g := Path(4)
	h := g.Clone()
	h.AddEdge(0, 3, 1)
	if g.M() == h.M() {
		t.Fatal("clone shares edge slice")
	}
}

func TestSortEdgesDeterministic(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 0, 1)
	g.SortEdges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}}
	for i, e := range g.Edges {
		if got := normPair(e.U, e.V); got != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got, want[i])
		}
	}
}

func TestValidatorsMatching(t *testing.T) {
	g := Path(4) // edges 0:(0,1) 1:(1,2) 2:(2,3)
	if !IsMatching(g, []int{0, 2}) {
		t.Fatal("0,2 should match")
	}
	if IsMatching(g, []int{0, 1}) {
		t.Fatal("0,1 share vertex 1")
	}
	if IsMatching(g, []int{0, 0}) {
		t.Fatal("duplicate edge")
	}
	if IsMatching(g, []int{5}) {
		t.Fatal("out of range")
	}
	if !IsMaximalMatching(g, []int{1}) {
		t.Fatal("{(1,2)} is maximal in P4")
	}
	if IsMaximalMatching(g, []int{0}) {
		t.Fatal("{(0,1)} is not maximal: (2,3) free")
	}
	if w := MatchingWeight(g, []int{0, 2}); w != 2 {
		t.Fatalf("weight %v", w)
	}
}

func TestValidatorsBMatching(t *testing.T) {
	g := Star(4) // edges 0:(0,1) 1:(0,2) 2:(0,3)
	b2 := func(v int) int { return 2 }
	if !IsBMatching(g, []int{0, 1}, b2) {
		t.Fatal("2 edges at centre allowed with b=2")
	}
	if IsBMatching(g, []int{0, 1, 2}, b2) {
		t.Fatal("3 edges at centre violates b=2")
	}
	b1 := func(v int) int { return 1 }
	if IsBMatching(g, []int{0, 1}, b1) {
		t.Fatal("b=1 must reduce to matching")
	}
}

func TestValidatorsVertexCover(t *testing.T) {
	g := Path(4)
	if !IsVertexCover(g, map[int]bool{1: true, 2: true}) {
		t.Fatal("{1,2} covers P4")
	}
	if IsVertexCover(g, map[int]bool{0: true, 3: true}) {
		t.Fatal("{0,3} misses edge (1,2)")
	}
	w := []float64{1, 2, 3, 4}
	if cw := CoverWeight(map[int]bool{1: true, 3: true}, w); cw != 6 {
		t.Fatalf("cover weight %v", cw)
	}
}

func TestValidatorsMIS(t *testing.T) {
	g := Path(4)
	if !IsIndependentSet(g, map[int]bool{0: true, 2: true}) {
		t.Fatal("{0,2} independent")
	}
	if IsIndependentSet(g, map[int]bool{0: true, 1: true}) {
		t.Fatal("{0,1} not independent")
	}
	if !IsMaximalIndependentSet(g, map[int]bool{0: true, 2: true}) {
		t.Fatal("{0,2} maximal? vertex 3 adjacent to 2: yes")
	}
	if IsMaximalIndependentSet(g, map[int]bool{0: true}) {
		t.Fatal("{0} not maximal (2 or 3 free)")
	}
	if !IsMaximalIndependentSet(g, map[int]bool{1: true, 3: true}) {
		t.Fatal("{1,3} is an MIS")
	}
}

func TestValidatorsClique(t *testing.T) {
	g := Complete(4)
	if !IsMaximalClique(g, []int{0, 1, 2, 3}) {
		t.Fatal("K4 full set")
	}
	if IsMaximalClique(g, []int{0, 1}) {
		t.Fatal("{0,1} extendable in K4")
	}
	p := Path(3)
	if !IsMaximalClique(p, []int{0, 1}) {
		t.Fatal("edge is a maximal clique in P3")
	}
	if IsClique(p, []int{0, 2}) {
		t.Fatal("{0,2} not adjacent in P3")
	}
	if IsClique(p, []int{0, 0}) {
		t.Fatal("duplicate vertex")
	}
}

func TestValidatorsColouring(t *testing.T) {
	g := Cycle(4)
	if !IsProperVertexColouring(g, []int{0, 1, 0, 1}) {
		t.Fatal("2-colouring of C4")
	}
	if IsProperVertexColouring(g, []int{0, 0, 1, 1}) {
		t.Fatal("monochromatic edge")
	}
	if IsProperVertexColouring(g, []int{0, 1}) {
		t.Fatal("wrong length")
	}
	if NumColours([]int{0, 1, 0, 1}) != 2 {
		t.Fatal("NumColours")
	}
	// Edge colouring of a path: alternate.
	p := Path(3)
	if !IsProperEdgeColouring(p, []int{0, 1}) {
		t.Fatal("P3 edge colouring")
	}
	if IsProperEdgeColouring(p, []int{0, 0}) {
		t.Fatal("shared vertex, same colour")
	}
}

func TestQuickGNMNoDupes(t *testing.T) {
	r := rng.New(11)
	f := func(a, b uint8) bool {
		n := int(a%30) + 2
		maxM := n * (n - 1) / 2
		m := int(b) % (maxM + 1)
		g := GNM(n, m, r)
		if g.M() != m {
			return false
		}
		seen := make(map[[2]int]bool)
		for _, e := range g.Edges {
			p := normPair(e.U, e.V)
			if seen[p] || e.U == e.V {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSum(t *testing.T) {
	r := rng.New(12)
	f := func(a uint8) bool {
		n := int(a%40) + 2
		m := n // sparse
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := GNM(n, m, r)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
