package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// This file implements the binary graph container: a versioned, checksummed,
// directly-mappable on-disk form of the CSR kernel. The text format (io.go)
// re-parses every edge on load; the container stores the built slabs
// verbatim, so a cold load is O(header) — OpenMapped (mmap.go) serves the
// kernel accessors as zero-copy views straight off the page cache, and
// ReadContainer rebuilds a heap graph with a single sequential read.
//
// Layout (all integers little-endian, every section 8-byte aligned):
//
//	header     magic "MRGRAPH1" | n u64 | m u64 | flags u32 | nsec u32
//	table      nsec × { kind u32 | _ u32 | off u64 | len u64 | crc32c u32 | _ u32 }
//	headerCRC  crc32c over header+table | _ u32
//	sections   zero-padded to 8-byte boundaries, in offset order
//
// Raw containers (flags == 0) carry the five sections of a built graph:
//
//	adjStart  (n+1) × i32      CSR offsets
//	adjNbr    2m × i32         neighbour vertex ids, slab order
//	adjEdge   2m × i32         edge indices, positional with adjNbr
//	adjW      2m × f64         edge weights, positional with adjNbr
//	edges     m × {u i64, v i64, w f64}   the edge list, input order
//
// The edge record layout equals the in-memory Edge struct on 64-bit
// little-endian hosts, so a mapping aliases g.Edges too. Compressed
// containers (flagCompressed, WriteFile ".mrgz") replace all five with one
// delta-varint edge stream for cold storage; they are not mappable and
// decode through the heap path. Section checksums are CRC-32C; ReadContainer
// verifies them on every load, OpenMapped verifies the header checksum only
// (the point of mapping is not to touch 2m words up front) — use
// VerifyContainer for a full offline check.

// ContainerMagic identifies the binary container format, version 1 ("1" is
// the version byte: bump it for incompatible layout changes).
var ContainerMagic = [8]byte{'M', 'R', 'G', 'R', 'A', 'P', 'H', '1'}

// Container flags.
const (
	// flagCompressed marks a delta-varint edge-stream container (cold
	// storage; not mappable).
	flagCompressed = 1 << 0
	// flagUnitWeights marks a compressed container whose edges all weigh 1;
	// the weight column is omitted from the stream.
	flagUnitWeights = 1 << 1
)

// Section kinds.
const (
	secAdjStart = 1
	secAdjNbr   = 2
	secAdjEdge  = 3
	secAdjW     = 4
	secEdges    = 5
	secVarint   = 6
)

const (
	headerSize   = 32 // magic + n + m + flags + nsec
	sectionSize  = 32 // kind + pad + off + len + crc + pad
	headerCRCLen = 8  // crc32c + pad
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// section is one table entry.
type section struct {
	kind uint32
	off  uint64
	len  uint64
	crc  uint32
}

// containerHeader is the parsed fixed prologue.
type containerHeader struct {
	n, m     uint64
	flags    uint32
	sections []section
}

// headerLen returns the total prologue length for nsec sections.
func headerLen(nsec int) int { return headerSize + nsec*sectionSize + headerCRCLen }

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// rawLayout computes the five-section layout of a raw container for a graph
// with n vertices and m edges. Checksums are zero; writers fill them.
func rawLayout(n, m int) containerHeader {
	h := containerHeader{n: uint64(n), m: uint64(m)}
	off := uint64(headerLen(5))
	add := func(kind uint32, size uint64) {
		off = align8(off)
		h.sections = append(h.sections, section{kind: kind, off: off, len: size})
		off += size
	}
	add(secAdjStart, uint64(n+1)*4)
	add(secAdjNbr, uint64(2*m)*4)
	add(secAdjEdge, uint64(2*m)*4)
	add(secAdjW, uint64(2*m)*8)
	add(secEdges, uint64(m)*24)
	return h
}

// totalSize returns the container file size the header describes.
func (h containerHeader) totalSize() uint64 {
	end := uint64(headerLen(len(h.sections)))
	for _, s := range h.sections {
		if s.off+s.len > end {
			end = s.off + s.len
		}
	}
	return end
}

// find returns the section of the given kind.
func (h containerHeader) find(kind uint32) (section, bool) {
	for _, s := range h.sections {
		if s.kind == kind {
			return s, true
		}
	}
	return section{}, false
}

// marshal serializes the prologue (header + table + header CRC).
func (h containerHeader) marshal() []byte {
	buf := make([]byte, headerLen(len(h.sections)))
	copy(buf, ContainerMagic[:])
	le := binary.LittleEndian
	le.PutUint64(buf[8:], h.n)
	le.PutUint64(buf[16:], h.m)
	le.PutUint32(buf[24:], h.flags)
	le.PutUint32(buf[28:], uint32(len(h.sections)))
	for i, s := range h.sections {
		b := buf[headerSize+i*sectionSize:]
		le.PutUint32(b, s.kind)
		le.PutUint64(b[8:], s.off)
		le.PutUint64(b[16:], s.len)
		le.PutUint32(b[24:], s.crc)
	}
	crcOff := headerSize + len(h.sections)*sectionSize
	le.PutUint32(buf[crcOff:], crc32.Checksum(buf[:crcOff], castagnoli))
	return buf
}

// parseHeaderBytes validates and parses a serialized prologue. prefix must
// hold at least headerSize bytes; the full prologue length is returned so
// callers with a short prefix can re-read.
func parseHeaderBytes(prefix []byte) (containerHeader, int, error) {
	var h containerHeader
	if len(prefix) < headerSize {
		return h, 0, fmt.Errorf("graph: container truncated in header (%d bytes)", len(prefix))
	}
	if string(prefix[:8]) != string(ContainerMagic[:]) {
		return h, 0, fmt.Errorf("graph: bad container magic %q", prefix[:8])
	}
	le := binary.LittleEndian
	h.n = le.Uint64(prefix[8:])
	h.m = le.Uint64(prefix[16:])
	h.flags = le.Uint32(prefix[24:])
	nsec := int(le.Uint32(prefix[28:]))
	if nsec < 1 || nsec > 16 {
		return h, 0, fmt.Errorf("graph: container declares %d sections", nsec)
	}
	total := headerLen(nsec)
	if len(prefix) < total {
		return h, total, nil // caller must supply the full prologue
	}
	crcOff := headerSize + nsec*sectionSize
	want := le.Uint32(prefix[crcOff:])
	if got := crc32.Checksum(prefix[:crcOff], castagnoli); got != want {
		return h, total, fmt.Errorf("graph: container header checksum mismatch (%08x != %08x)", got, want)
	}
	if h.n > math.MaxInt32 || 2*h.m > math.MaxInt32 {
		return h, total, fmt.Errorf("graph: %v", errCSRBounds(int(h.n), int(h.m)))
	}
	for i := 0; i < nsec; i++ {
		b := prefix[headerSize+i*sectionSize:]
		s := section{
			kind: le.Uint32(b),
			off:  le.Uint64(b[8:]),
			len:  le.Uint64(b[16:]),
			crc:  le.Uint32(b[24:]),
		}
		if s.off < uint64(total) || s.off%8 != 0 || s.off+s.len < s.off {
			return h, total, fmt.Errorf("graph: container section %d has bad bounds [%d,+%d)", i, s.off, s.len)
		}
		h.sections = append(h.sections, s)
	}
	if err := h.checkSections(); err != nil {
		return h, total, err
	}
	return h, total, nil
}

// checkSections verifies the section set matches the flags and the declared
// n/m, so readers can index sections without further bounds checks.
func (h containerHeader) checkSections() error {
	if h.flags&flagCompressed != 0 {
		if _, ok := h.find(secVarint); !ok {
			return fmt.Errorf("graph: compressed container missing edge stream section")
		}
		return nil
	}
	want := []struct {
		kind uint32
		len  uint64
	}{
		{secAdjStart, (h.n + 1) * 4},
		{secAdjNbr, 2 * h.m * 4},
		{secAdjEdge, 2 * h.m * 4},
		{secAdjW, 2 * h.m * 8},
		{secEdges, h.m * 24},
	}
	for _, w := range want {
		s, ok := h.find(w.kind)
		if !ok {
			return fmt.Errorf("graph: container missing section kind %d", w.kind)
		}
		if s.len != w.len {
			return fmt.Errorf("graph: container section kind %d has %d bytes, header promises %d",
				w.kind, s.len, w.len)
		}
	}
	return nil
}

// --- encoding ---

// crcWriter streams bytes to an io.Writer while maintaining a CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   uint64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	cw.n += uint64(len(p))
	if cw.w == nil {
		return len(p), nil
	}
	return cw.w.Write(p)
}

// sectionEncoder writes one section's payload in the canonical byte layout,
// via a reused little-endian scratch buffer (works on any host byte order).
type sectionEncoder struct {
	cw      crcWriter
	scratch [1 << 13]byte
	fill    int
	err     error
}

func (se *sectionEncoder) reset(w io.Writer) {
	se.cw = crcWriter{w: w}
	se.fill = 0
	se.err = nil
}

func (se *sectionEncoder) flush() {
	if se.err == nil && se.fill > 0 {
		_, se.err = se.cw.Write(se.scratch[:se.fill])
	}
	se.fill = 0
}

func (se *sectionEncoder) need(n int) []byte {
	if se.fill+n > len(se.scratch) {
		se.flush()
	}
	b := se.scratch[se.fill : se.fill+n]
	se.fill += n
	return b
}

func (se *sectionEncoder) putUint32(v uint32) { binary.LittleEndian.PutUint32(se.need(4), v) }
func (se *sectionEncoder) putUint64(v uint64) { binary.LittleEndian.PutUint64(se.need(8), v) }

func (se *sectionEncoder) putInt32s(vs []int32) {
	for _, v := range vs {
		se.putUint32(uint32(v))
	}
}

func (se *sectionEncoder) putFloat64s(vs []float64) {
	for _, v := range vs {
		se.putUint64(math.Float64bits(v))
	}
}

func (se *sectionEncoder) putEdge(e Edge) {
	b := se.need(24)
	le := binary.LittleEndian
	le.PutUint64(b, uint64(int64(e.U)))
	le.PutUint64(b[8:], uint64(int64(e.V)))
	le.PutUint64(b[16:], math.Float64bits(e.W))
}

// finish flushes and returns the section checksum and byte count.
func (se *sectionEncoder) finish() (uint32, uint64, error) {
	se.flush()
	return se.cw.crc, se.cw.n, se.err
}

// rawSections enumerates the five raw payloads of a built graph in layout
// order; the writer and the checksum pass share it.
func rawSections(g *Graph) []func(se *sectionEncoder) {
	return []func(se *sectionEncoder){
		func(se *sectionEncoder) { se.putInt32s(g.adjStart) },
		func(se *sectionEncoder) { se.putInt32s(g.adjNbr) },
		func(se *sectionEncoder) { se.putInt32s(g.adjEdge) },
		func(se *sectionEncoder) { se.putFloat64s(g.adjW) },
		func(se *sectionEncoder) {
			for _, e := range g.Edges {
				se.putEdge(e)
			}
		},
	}
}

// EncodeContainer writes g to w as a raw (mappable) binary container. The
// encoding is canonical: the same graph — same N, edge list and edge order —
// produces byte-identical output everywhere (in particular, BuildExternal
// emits the same bytes without ever holding the graph in memory).
func EncodeContainer(w io.Writer, g *Graph) error {
	if err := checkCSRBounds(g.N, len(g.Edges)); err != nil {
		return err
	}
	g.Build()
	g.buildWeights()
	h := rawLayout(g.N, len(g.Edges))
	parts := rawSections(g)

	// Pass 1: checksums (the table precedes the payload on the wire).
	var se sectionEncoder
	for i, part := range parts {
		se.reset(nil)
		part(&se)
		crc, n, err := se.finish()
		if err != nil {
			return err
		}
		if n != h.sections[i].len {
			return fmt.Errorf("graph: container section %d encoded %d bytes, layout promises %d", i, n, h.sections[i].len)
		}
		h.sections[i].crc = crc
	}

	// Pass 2: stream prologue, padding and payloads.
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(h.marshal()); err != nil {
		return err
	}
	pos := uint64(headerLen(len(h.sections)))
	for i, part := range parts {
		for ; pos < h.sections[i].off; pos++ {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
		}
		se.reset(bw)
		part(&se)
		if _, _, err := se.finish(); err != nil {
			return err
		}
		pos += h.sections[i].len
	}
	return bw.Flush()
}

// EncodeContainerCompressed writes g to w as a delta-varint compressed
// container: one edge-stream section (zigzag delta of U, delta of V from U,
// raw float64 weight — omitted entirely when every weight is 1). Compressed
// containers are for cold storage: they are typically several times smaller
// than raw but decode through the heap path, never via mmap.
func EncodeContainerCompressed(w io.Writer, g *Graph) error {
	if err := checkCSRBounds(g.N, len(g.Edges)); err != nil {
		return err
	}
	h := containerHeader{n: uint64(g.N), m: uint64(len(g.Edges)), flags: flagCompressed}
	unit := true
	for _, e := range g.Edges {
		if e.W != 1 {
			unit = false
			break
		}
	}
	if unit {
		h.flags |= flagUnitWeights
	}

	encode := func(se *sectionEncoder) {
		var varint [binary.MaxVarintLen64]byte
		putVarint := func(v int64) {
			n := binary.PutVarint(varint[:], v)
			copy(se.need(n), varint[:n])
		}
		prevU := 0
		for _, e := range g.Edges {
			putVarint(int64(e.U - prevU))
			putVarint(int64(e.V - e.U))
			if !unit {
				se.putUint64(math.Float64bits(e.W))
			}
			prevU = e.U
		}
	}

	var se sectionEncoder
	se.reset(nil)
	encode(&se)
	crc, n, err := se.finish()
	if err != nil {
		return err
	}
	h.sections = []section{{kind: secVarint, off: align8(uint64(headerLen(1))), len: n, crc: crc}}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(h.marshal()); err != nil {
		return err
	}
	for pos := uint64(headerLen(1)); pos < h.sections[0].off; pos++ {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	}
	se.reset(bw)
	encode(&se)
	if _, _, err := se.finish(); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteContainerFile saves g to path as a raw binary container.
func WriteContainerFile(path string, g *Graph) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeContainer(fh, g); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// --- decoding ---

// readFullProlog reads and parses the prologue from a sequential reader.
func readFullProlog(r io.Reader) (containerHeader, int, error) {
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(r, head); err != nil {
		return containerHeader{}, 0, fmt.Errorf("graph: container header: %v", err)
	}
	_, total, err := parseHeaderBytes(head)
	if err != nil {
		return containerHeader{}, 0, err
	}
	full := make([]byte, total)
	copy(full, head)
	if _, err := io.ReadFull(r, full[headerSize:]); err != nil {
		return containerHeader{}, 0, fmt.Errorf("graph: container section table: %v", err)
	}
	h, _, err := parseHeaderBytes(full)
	return h, total, err
}

// sectionDecoder reads one section's payload sequentially, verifying its
// checksum at the end.
type sectionDecoder struct {
	r       io.Reader
	crc     uint32
	scratch [1 << 13]byte
	buf     []byte // unread slice of scratch
}

func (sd *sectionDecoder) next(n int) ([]byte, error) {
	for len(sd.buf) < n {
		// Refill: compact the remainder to the front, then read.
		rem := copy(sd.scratch[:], sd.buf)
		k, err := sd.r.Read(sd.scratch[rem:])
		if k > 0 {
			sd.crc = crc32.Update(sd.crc, castagnoli, sd.scratch[rem:rem+k])
		}
		sd.buf = sd.scratch[:rem+k]
		if len(sd.buf) >= n {
			break
		}
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		if err != nil {
			return nil, err
		}
	}
	out := sd.buf[:n]
	sd.buf = sd.buf[n:]
	return out, nil
}

func (sd *sectionDecoder) uint32() (uint32, error) {
	b, err := sd.next(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (sd *sectionDecoder) uint64() (uint64, error) {
	b, err := sd.next(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// decodeSection runs body over exactly s.len payload bytes and verifies the
// checksum. The reader must be positioned at the section start.
func decodeSection(r io.Reader, s section, body func(sd *sectionDecoder) error) error {
	sd := sectionDecoder{r: io.LimitReader(r, int64(s.len))}
	if err := body(&sd); err != nil {
		return fmt.Errorf("graph: container section kind %d: %v", s.kind, err)
	}
	if len(sd.buf) != 0 {
		return fmt.Errorf("graph: container section kind %d has %d trailing bytes", s.kind, len(sd.buf))
	}
	if sd.crc != s.crc {
		return fmt.Errorf("graph: container section kind %d checksum mismatch (%08x != %08x)", s.kind, sd.crc, s.crc)
	}
	return nil
}

// ReadContainer decodes a binary container (raw or compressed) from a
// sequential reader into a heap graph, verifying every section checksum.
// Raw containers arrive fully built (the slabs are read, not recomputed);
// compressed containers carry only the edge stream and rebuild the CSR index
// lazily like any other graph.
func ReadContainer(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, total, err := readFullProlog(br)
	if err != nil {
		return nil, err
	}
	pos := uint64(total)
	skipTo := func(off uint64) error {
		if off < pos {
			return fmt.Errorf("graph: container sections out of order")
		}
		if _, err := io.CopyN(io.Discard, br, int64(off-pos)); err != nil {
			return fmt.Errorf("graph: container padding: %v", err)
		}
		pos = off
		return nil
	}

	g := New(int(h.n))
	if h.flags&flagCompressed != 0 {
		s, _ := h.find(secVarint)
		if err := skipTo(s.off); err != nil {
			return nil, err
		}
		err := decodeSection(br, s, func(sd *sectionDecoder) error {
			g.Edges = make([]Edge, 0, int(h.m))
			byteReader := &sectionByteReader{sd: sd}
			prevU := 0
			for i := uint64(0); i < h.m; i++ {
				du, err := binary.ReadVarint(byteReader)
				if err != nil {
					return err
				}
				dv, err := binary.ReadVarint(byteReader)
				if err != nil {
					return err
				}
				u := prevU + int(du)
				v := u + int(dv)
				w := 1.0
				if h.flags&flagUnitWeights == 0 {
					bits, err := sd.uint64()
					if err != nil {
						return err
					}
					w = math.Float64frombits(bits)
				}
				if u < 0 || u >= g.N || v < 0 || v >= g.N || u == v {
					return fmt.Errorf("invalid edge (%d,%d) for n=%d", u, v, g.N)
				}
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("non-finite weight on edge (%d,%d)", u, v)
				}
				g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
				prevU = u
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return g, nil
	}

	// Raw: read the five sections in offset order into fresh slabs.
	g.Edges = make([]Edge, int(h.m))
	g.adjStart = make([]int32, int(h.n)+1)
	g.adjNbr = make([]int32, 2*int(h.m))
	g.adjEdge = make([]int32, 2*int(h.m))
	g.adjW = make([]float64, 2*int(h.m))
	readInt32s := func(dst []int32) func(sd *sectionDecoder) error {
		return func(sd *sectionDecoder) error {
			for i := range dst {
				v, err := sd.uint32()
				if err != nil {
					return err
				}
				dst[i] = int32(v)
			}
			return nil
		}
	}
	bodies := map[uint32]func(sd *sectionDecoder) error{
		secAdjStart: readInt32s(g.adjStart),
		secAdjNbr:   readInt32s(g.adjNbr),
		secAdjEdge:  readInt32s(g.adjEdge),
		secAdjW: func(sd *sectionDecoder) error {
			for i := range g.adjW {
				bits, err := sd.uint64()
				if err != nil {
					return err
				}
				g.adjW[i] = math.Float64frombits(bits)
			}
			return nil
		},
		secEdges: func(sd *sectionDecoder) error {
			for i := range g.Edges {
				b, err := sd.next(24)
				if err != nil {
					return err
				}
				le := binary.LittleEndian
				g.Edges[i] = Edge{
					U: int(int64(le.Uint64(b))),
					V: int(int64(le.Uint64(b[8:]))),
					W: math.Float64frombits(le.Uint64(b[16:])),
				}
			}
			return nil
		},
	}
	for _, s := range h.sections {
		if err := skipTo(s.off); err != nil {
			return nil, err
		}
		body, ok := bodies[s.kind]
		if !ok {
			// Unknown section kinds are skipped, not rejected: a newer
			// writer may append sections an old reader can ignore.
			if _, err := io.CopyN(io.Discard, br, int64(s.len)); err != nil {
				return nil, fmt.Errorf("graph: container section kind %d: %v", s.kind, err)
			}
			pos += s.len
			continue
		}
		if err := decodeSection(br, s, body); err != nil {
			return nil, err
		}
		pos += s.len
	}
	if err := g.validateSlabs(); err != nil {
		return nil, err
	}
	g.built = true
	g.wBuilt = true
	return g, nil
}

// sectionByteReader adapts a sectionDecoder to io.ByteReader for varints.
type sectionByteReader struct{ sd *sectionDecoder }

func (r *sectionByteReader) ReadByte() (byte, error) {
	b, err := r.sd.next(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// validateSlabs sanity-checks slabs loaded from external bytes: monotone
// adjStart covering exactly 2m half-edges, in-range neighbour ids and edge
// indices, and edge endpoints inside [0,n). The checksums catch corruption;
// this catches well-formed containers that lie.
func (g *Graph) validateSlabs() error {
	m := len(g.Edges)
	if len(g.adjStart) != g.N+1 || int(g.adjStart[g.N]) != 2*m || g.adjStart[0] != 0 {
		return fmt.Errorf("graph: container adjacency index does not cover 2m=%d half-edges", 2*m)
	}
	for v := 0; v < g.N; v++ {
		if g.adjStart[v] > g.adjStart[v+1] {
			return fmt.Errorf("graph: container adjacency index not monotone at vertex %d", v)
		}
	}
	for k := range g.adjNbr {
		if u := g.adjNbr[k]; u < 0 || int(u) >= g.N {
			return fmt.Errorf("graph: container neighbour id %d out of range", u)
		}
		if id := g.adjEdge[k]; id < 0 || int(id) >= m {
			return fmt.Errorf("graph: container edge index %d out of range", id)
		}
	}
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N || e.U == e.V {
			return fmt.Errorf("graph: container edge %d = (%d,%d) invalid for n=%d", i, e.U, e.V, g.N)
		}
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return fmt.Errorf("graph: container edge %d has non-finite weight", i)
		}
	}
	return nil
}

// VerifyContainer checks every checksum of the container at path — the full
// offline integrity check that OpenMapped deliberately skips.
func VerifyContainer(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	br := bufio.NewReaderSize(fh, 1<<16)
	h, total, err := readFullProlog(br)
	if err != nil {
		return err
	}
	pos := uint64(total)
	for _, s := range h.sections {
		if s.off < pos {
			return fmt.Errorf("graph: container sections out of order")
		}
		if _, err := io.CopyN(io.Discard, br, int64(s.off-pos)); err != nil {
			return err
		}
		crc := uint32(0)
		buf := make([]byte, 1<<16)
		remaining := s.len
		for remaining > 0 {
			chunk := buf
			if uint64(len(chunk)) > remaining {
				chunk = chunk[:remaining]
			}
			k, err := io.ReadFull(br, chunk)
			if err != nil {
				return fmt.Errorf("graph: container section kind %d truncated: %v", s.kind, err)
			}
			crc = crc32.Update(crc, castagnoli, chunk[:k])
			remaining -= uint64(k)
		}
		if crc != s.crc {
			return fmt.Errorf("graph: container section kind %d checksum mismatch (%08x != %08x)", s.kind, crc, s.crc)
		}
		pos = s.off + s.len
	}
	return nil
}
