package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedNow gives tests a reproducible append clock.
func fixedNow() func() time.Time {
	t := time.Unix(1700000000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// appendN appends n records with distinct keys and payloads and syncs.
func appendN(t *testing.T, l *Ledger, n, from int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		payload := []byte(fmt.Sprintf(`{"result":"r%d"}`, i))
		l.Append(fmt.Sprintf("key-%d", i), payload,
			HashBytes(payload), HashBytes([]byte(fmt.Sprintf("m%d", i))))
	}
	l.Sync()
}

func TestMemRoundTripAndVerify(t *testing.T) {
	l, err := Open(Options{Store: NewMemStore(), Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 10, 0)
	h := l.Head()
	if h.Seq != 10 || h.Persisted != 10 || h.Keys != 10 || h.Degraded {
		t.Fatalf("head = %+v", h)
	}
	rep := l.Verify()
	if !rep.OK || rep.Records != 10 || rep.HeadLink != h.Link {
		t.Fatalf("verify = %+v, head %+v", rep, h)
	}
	r, ok := l.Get("key-3")
	if !ok || !bytes.Equal(r.Payload, []byte(`{"result":"r3"}`)) {
		t.Fatalf("Get(key-3) = %+v %v", r, ok)
	}
}

func TestDiskRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	store, stats, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.TornTail {
		t.Fatalf("fresh dir stats = %+v", stats)
	}
	l, err := Open(Options{Store: store, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 25, 0)
	head1 := l.Head()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	store2, stats2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Records != 25 || stats2.TornTail {
		t.Fatalf("reopen stats = %+v", stats2)
	}
	l2, err := Open(Options{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	h := l2.Head()
	if h.Seq != 25 || h.Link != head1.Link || h.Persisted != 25 {
		t.Fatalf("reopened head %+v, want link %s", h, head1.Link)
	}
	for i := 0; i < 25; i++ {
		r, ok := l2.Get(fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(r.Payload, []byte(fmt.Sprintf(`{"result":"r%d"}`, i))) {
			t.Fatalf("record %d not served across reopen: %+v %v", i, r, ok)
		}
	}
	if rep := l2.Verify(); !rep.OK || rep.Records != 25 {
		t.Fatalf("verify after reopen = %+v", rep)
	}
}

func TestDiskSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDisk(dir, DiskOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Store: store, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	// Sync per append so each record is its own batch: the batcher
	// otherwise coalesces the whole burst into one write and one rotation.
	for i := 0; i < 40; i++ {
		p := []byte(fmt.Sprintf(`{"result":"r%d"}`, i))
		l.Append(fmt.Sprintf("key-%d", i), p, HashBytes(p), Hash{})
		l.Sync()
	}
	l.Close()

	segs, err := sealedSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 sealed segments, got %v (err %v)", segs, err)
	}
	store2, stats, err := OpenDisk(dir, DiskOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 40 || stats.Segments != len(segs) {
		t.Fatalf("stats = %+v, segs %d", stats, len(segs))
	}
	l2, err := Open(Options{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep := l2.Verify(); !rep.OK || rep.Records != 40 {
		t.Fatalf("verify = %+v", rep)
	}
}

// TestTornTailTruncatedExactlyOnce simulates a kill -9 mid-write: a valid
// prefix plus a partial record in the active file. The first recovery
// truncates it (reported in stats); the second recovery finds a clean
// file.
func TestTornTailTruncatedExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Store: store, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 0)
	head := l.Head()
	l.Close()

	// A torn write: the frame claims more bytes than were flushed.
	active := filepath.Join(dir, activeName)
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 48)
	torn[4] = 200 // bodyLen=200, but only 40 bytes of body follow
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store2, stats, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TornTail || stats.Records != 5 || stats.TruncatedBytes != 48 {
		t.Fatalf("first recovery stats = %+v", stats)
	}
	l2, err := Open(Options{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	if h := l2.Head(); h.Seq != 5 || h.Link != head.Link {
		t.Fatalf("recovered head %+v, want %+v", h, head)
	}
	if rep := l2.Verify(); !rep.OK {
		t.Fatalf("verify after truncation = %+v", rep)
	}
	l2.Close()

	// Exactly once: the second recovery must see a clean tail.
	store3, stats3, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.TornTail || stats3.Records != 5 {
		t.Fatalf("second recovery stats = %+v (torn tail should be gone)", stats3)
	}
	store3.Close()
}

// TestCorruptionPinpointed flips one byte mid-file and requires both
// recovery and live verification to name the damaged file instead of
// truncating or silently serving.
func TestCorruptionPinpointed(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Store: store, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8, 0)

	// Corrupt one payload byte of an early record, underneath the running
	// ledger.
	active := filepath.Join(dir, activeName)
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	data[40] ^= 0xff
	if err := os.WriteFile(active, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := l.Verify()
	if rep.OK {
		t.Fatalf("verify accepted a corrupted record: %+v", rep)
	}
	if !strings.Contains(rep.Error, activeName) {
		t.Fatalf("verify error does not pinpoint the file: %q", rep.Error)
	}
	l.Close()

	// Recovery must refuse too (corruption is not a torn tail: valid
	// records follow the damage).
	_, _, err = OpenDisk(dir, DiskOptions{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("OpenDisk on corrupt dir: err = %v, want *CorruptError", err)
	}
	if ce.Path != active {
		t.Fatalf("corrupt error names %q, want %q", ce.Path, active)
	}
}

// TestVerifyDetectsDivergentHistory rewrites the store with a different
// but internally consistent chain; the live ledger's verify must reject it
// via the in-memory cross-check.
func TestVerifyDetectsDivergentHistory(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Store: store, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 3, 0)

	// Forge a fresh, self-consistent 1-record chain in place.
	forged := &Record{Seq: 1, Time: 42, Key: "key-0", Payload: []byte("{}")}
	forged.ResultHash = HashBytes(forged.Payload)
	forged.Link = chainLink(Hash{}, forged)
	if err := os.WriteFile(filepath.Join(dir, activeName),
		appendRecord(nil, forged), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := l.Verify()
	if rep.OK {
		t.Fatalf("verify accepted a forged history: %+v", rep)
	}
	if !strings.Contains(rep.Error, "chain broken") {
		t.Fatalf("unexpected verify error: %q", rep.Error)
	}
}

// flakyStore fails its first n Append calls.
type flakyStore struct {
	*MemStore
	mu    sync.Mutex
	fails int
	calls int
}

func (s *flakyStore) Append(recs []*Record) error {
	s.mu.Lock()
	s.calls++
	fail := s.calls <= s.fails
	s.mu.Unlock()
	if fail {
		return errors.New("injected IO error")
	}
	return s.MemStore.Append(recs)
}

// TestBatcherRetriesThenSucceeds: transient store errors are retried on
// the backoff schedule and the batch still lands durably.
func TestBatcherRetriesThenSucceeds(t *testing.T) {
	fs := &flakyStore{MemStore: NewMemStore(), fails: 2}
	l, err := Open(Options{Store: fs, Retries: 4,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 0)
	h := l.Head()
	if h.Degraded || h.Persisted != 1 {
		t.Fatalf("head after transient errors = %+v", h)
	}
	if h.Retries < 2 || h.IOErrors < 2 {
		t.Fatalf("retry accounting = %+v, want >= 2 retries", h)
	}
	if fs.Len() != 1 {
		t.Fatalf("store holds %d records, want 1", fs.Len())
	}
}

// TestBatcherDegradesAfterRetryBudget: a persistently failing store trips
// degraded mode exactly once; appends keep working in memory and are never
// lost to the caller.
func TestBatcherDegradesAfterRetryBudget(t *testing.T) {
	fs := &flakyStore{MemStore: NewMemStore(), fails: 1 << 30}
	degraded := make(chan error, 2)
	l, err := Open(Options{Store: fs, Retries: 1,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		OnDegrade: func(err error) { degraded <- err }, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append("k", []byte("{}"), Hash{}, Hash{})
	select {
	case err := <-degraded:
		if err == nil {
			t.Fatal("OnDegrade called with nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ledger never degraded")
	}
	l.Sync() // must not hang in degraded mode
	if !l.Degraded() {
		t.Fatal("Degraded() = false after OnDegrade fired")
	}
	// The chain still serves and grows in memory.
	l.Append("k2", []byte("{}"), Hash{}, Hash{})
	if _, ok := l.Get("k2"); !ok {
		t.Fatal("memory-only append not indexed")
	}
	h := l.Head()
	if h.Seq != 2 || h.Persisted != 0 {
		t.Fatalf("degraded head = %+v", h)
	}
	if len(degraded) != 0 {
		t.Fatal("OnDegrade fired more than once")
	}
}

// TestAppendUnwoundAfterFailedBatch simulates the aftermath of a Write or
// Sync failure that left a partial batch in the append-only active file:
// the unwind must truncate the file back to its pre-batch size so a
// retried Append lands on a clean tail — no duplicate sequence numbers, no
// garbage mid-file — and the whole history still recovers and verifies.
func TestAppendUnwoundAfterFailedBatch(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Record{Seq: 1, Time: 1, Key: "a", Payload: []byte("{}")}
	r1.Link = chainLink(Hash{}, r1)
	if err := store.Append([]*Record{r1}); err != nil {
		t.Fatal(err)
	}

	// A failing batch: some bytes reached the file before the error.
	store.mu.Lock()
	if _, err := store.f.Write([]byte("half a batch, then an IO error")); err != nil {
		store.mu.Unlock()
		t.Fatal(err)
	}
	cause := errors.New("injected write error")
	if got := store.unwindLocked(cause); got != cause {
		store.mu.Unlock()
		t.Fatalf("unwind returned %v, want the injected cause", got)
	}
	store.mu.Unlock()

	// The retry appends the next record onto the restored tail.
	r2 := &Record{Seq: 2, Time: 2, Key: "b", Payload: []byte("{}")}
	r2.Link = chainLink(r1.Link, r2)
	if err := store.Append([]*Record{r2}); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, stats, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || stats.TornTail {
		t.Fatalf("recovery after unwind = %+v, want 2 clean records", stats)
	}
	l, err := Open(Options{Store: store2})
	if err != nil {
		t.Fatalf("chain broken after unwound retry: %v", err)
	}
	l.Close()
}

// terminalStore always fails Append with an error marked not retryable.
type terminalStore struct {
	*MemStore
	calls int
}

func (s *terminalStore) Append(recs []*Record) error {
	s.calls++
	return fmt.Errorf("injected: %w", ErrTerminal)
}

// TestTerminalErrorSkipsRetries: an Append failure wrapping ErrTerminal
// must degrade the ledger immediately — retrying a store that could not
// restore its invariants risks duplicating already-written records.
func TestTerminalErrorSkipsRetries(t *testing.T) {
	ts := &terminalStore{MemStore: NewMemStore()}
	degraded := make(chan error, 1)
	l, err := Open(Options{Store: ts, Retries: 8, RetryBase: time.Millisecond,
		OnDegrade: func(err error) { degraded <- err }, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append("k", []byte("{}"), Hash{}, Hash{})
	select {
	case err := <-degraded:
		if !errors.Is(err, ErrTerminal) {
			t.Fatalf("degrade error = %v, want ErrTerminal", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ledger never degraded on a terminal error")
	}
	if ts.calls != 1 {
		t.Fatalf("terminal error was retried: %d Append calls, want 1", ts.calls)
	}
}

// replayHookStore runs a hook before delegating Replay, letting a test
// interleave appends between Verify's links snapshot and its store replay.
type replayHookStore struct {
	Store
	before func()
}

func (s *replayHookStore) Replay(fn func(*Record) error) error {
	if s.before != nil {
		s.before()
	}
	return s.Store.Replay(fn)
}

// TestVerifyRacingAppends: records appended and flushed after Verify took
// its in-memory snapshot are legitimate history, not a failure — while a
// store holding records the live chain has never seen still is.
func TestVerifyRacingAppends(t *testing.T) {
	hs := &replayHookStore{Store: NewMemStore()}
	l, err := Open(Options{Store: hs, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 3, 0)
	hs.before = func() {
		hs.before = nil
		appendN(t, l, 2, 3) // lands in the store after Verify's snapshot
	}
	rep := l.Verify()
	if !rep.OK || rep.Records != 5 || rep.HeadSeq != 5 {
		t.Fatalf("verify racing appends = %+v, want OK with 5 records", rep)
	}
	if h := l.Head(); rep.HeadLink != h.Link {
		t.Fatalf("verify head link %s, live head %s", rep.HeadLink, h.Link)
	}

	// A record beyond the live chain head is still tampering.
	l.mu.Lock()
	prevSeq, prevLink := l.lastSeq, l.lastLink
	l.mu.Unlock()
	extra := &Record{Seq: prevSeq + 1, Time: 99, Key: "forged", Payload: []byte("{}")}
	extra.Link = chainLink(prevLink, extra)
	if err := hs.Store.Append([]*Record{extra}); err != nil {
		t.Fatal(err)
	}
	if rep := l.Verify(); rep.OK || !strings.Contains(rep.Error, "beyond the in-memory chain head") {
		t.Fatalf("verify accepted store history beyond the live chain: %+v", rep)
	}
}

// TestConcurrentAppends hammers Append from many goroutines; the chain
// must come out gapless and verifiable.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDisk(dir, DiskOptions{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const G, per = 8, 25
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := []byte(fmt.Sprintf(`{"g":%d,"i":%d}`, g, i))
				l.Append(fmt.Sprintf("k-%d-%d", g, i), p, HashBytes(p), Hash{})
			}
		}(g)
	}
	wg.Wait()
	l.Sync()
	if rep := l.Verify(); !rep.OK || rep.Records != G*per {
		t.Fatalf("verify = %+v, want %d records", rep, G*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// And the whole thing replays cleanly in a fresh process image.
	store2, stats, err := OpenDisk(dir, DiskOptions{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != G*per {
		t.Fatalf("reopen found %d records, want %d", stats.Records, G*per)
	}
	l2, err := Open(Options{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

// TestReadDirToleratesTornTail: the offline read path skips a torn active
// tail without repairing it, and reports sealed-segment corruption
// strictly.
func TestReadDirToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	store, _, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Store: store, Now: fixedNow()})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 0)
	l.Close()

	active := filepath.Join(dir, activeName)
	f, _ := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{1, 2, 3})
	f.Close()
	before, _ := os.Stat(active)

	var n int
	stats, err := ReadDir(dir, func(r *Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || stats.Records != 4 || !stats.TornTail {
		t.Fatalf("ReadDir n=%d stats=%+v", n, stats)
	}
	after, _ := os.Stat(active)
	if after.Size() != before.Size() {
		t.Fatal("ReadDir modified the ledger (must be read-only)")
	}
}
