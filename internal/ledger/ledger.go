package ledger

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/mpc"
)

// Options configures a Ledger.
type Options struct {
	// Store is the persistence backend. Required.
	Store Store
	// Retries is how many times a failing Store.Append is retried (with
	// the jittered exponential backoff below) before the ledger declares
	// itself degraded; 0 means 4, negative means none.
	Retries int
	// RetryBase/RetryMax bound the backoff schedule (mpc.BackoffDelay —
	// the same deterministic seeded schedule the TCP transport uses).
	// Zero means 10ms / 500ms.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the backoff jitter.
	RetrySeed uint64
	// OnDegrade is called once, from the batcher goroutine, when the store
	// gives up and the ledger falls back to memory-only operation. May be
	// nil.
	OnDegrade func(err error)
	// Now is the append timestamp source; nil means time.Now. Injectable
	// for tests that need reproducible chains.
	Now func() time.Time
}

func (o Options) retries() int {
	if o.Retries == 0 {
		return 4
	}
	if o.Retries < 0 {
		return 0
	}
	return o.Retries
}

func (o Options) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 10 * time.Millisecond
}

func (o Options) retryMax() time.Duration {
	if o.RetryMax > 0 {
		return o.RetryMax
	}
	return 500 * time.Millisecond
}

func (o Options) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

// Head is a snapshot of the ledger's state.
type Head struct {
	// Seq is the newest record's sequence number (0 = empty chain) and
	// Link its chain link — the Merkle head. Records equals Seq: the chain
	// is append-only and gapless.
	Seq  uint64 `json:"seq"`
	Link string `json:"link"`
	// Persisted is the newest sequence number the store has confirmed
	// durable. It trails Seq by at most one in-flight batch, and stops
	// advancing in degraded mode.
	Persisted uint64 `json:"persisted"`
	// Keys is the number of distinct job keys indexed for replay serving.
	Keys int `json:"keys"`
	// Degraded is true after a store failure exhausted its retries: the
	// chain keeps growing in memory, disk writes have stopped.
	Degraded bool `json:"degraded"`
	// Appends / Retries / IOErrors count batcher activity: records
	// appended this process, backoff retries taken, and store errors seen.
	Appends  uint64 `json:"appends"`
	Retries  uint64 `json:"retries"`
	IOErrors uint64 `json:"io_errors"`
}

// Ledger is the Merkle-chained job ledger: an in-memory chain head and
// replay index over a durable Store, fed by a single batcher goroutine so
// Append never blocks on IO.
type Ledger struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // signals the batcher and Sync waiters
	lastSeq  uint64
	lastLink Hash
	links    []Hash             // links[i] = link of seq i+1, for Verify cross-checks
	index    map[string]*Record // key -> newest record, for replay serving
	pending  []*Record          // appended, not yet handed to the store
	flushing bool               // a batch is inside Store.Append right now
	closed   bool
	degraded bool

	persisted uint64
	appends   uint64
	retries   uint64
	ioErrors  uint64

	done chan struct{} // batcher exited
}

// Open replays the store, verifies the full chain (sequence continuity
// and every link), builds the replay index, and starts the write batcher.
// A chain violation aborts the open with a *ChainError (or *CorruptError
// from the store's framing checks) — a ledger that fails its own history
// must not silently keep appending to it.
func Open(opts Options) (*Ledger, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("ledger: Options.Store is required")
	}
	l := &Ledger{opts: opts, index: make(map[string]*Record), done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	err := opts.Store.Replay(func(r *Record) error {
		link, err := verifyChain(l.lastSeq, l.lastLink, r)
		if err != nil {
			return err
		}
		c := cloneRecord(r)
		l.lastSeq, l.lastLink = c.Seq, link
		l.links = append(l.links, link)
		l.index[c.Key] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.persisted = l.lastSeq
	go l.batcher()
	return l, nil
}

// Append chains a new record and queues it for durable storage, returning
// the chained record. It never blocks on IO: the batcher goroutine owns
// every store write, coalescing whatever accumulated since its last flush
// into one Append+fsync. Safe for concurrent use.
func (l *Ledger) Append(key string, payload []byte, resultHash, metricsHash Hash) *Record {
	r := &Record{
		Time:        l.opts.now().UnixNano(),
		Key:         key,
		ResultHash:  resultHash,
		MetricsHash: metricsHash,
		Payload:     append([]byte(nil), payload...),
	}
	l.mu.Lock()
	r.Seq = l.lastSeq + 1
	r.Link = chainLink(l.lastLink, r)
	l.lastSeq, l.lastLink = r.Seq, r.Link
	l.links = append(l.links, r.Link)
	l.index[key] = r
	l.appends++
	if !l.degraded && !l.closed {
		l.pending = append(l.pending, r)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return r
}

// Get returns the newest record for a job key, if any. The caller must
// not mutate the record.
func (l *Ledger) Get(key string) (*Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.index[key]
	return r, ok
}

// Each calls fn for the newest record of every indexed key, in unspecified
// order, holding no lock during the calls (it snapshots first).
func (l *Ledger) Each(fn func(*Record)) {
	l.mu.Lock()
	snap := make([]*Record, 0, len(l.index))
	for _, r := range l.index {
		snap = append(snap, r)
	}
	l.mu.Unlock()
	for _, r := range snap {
		fn(r)
	}
}

// Head snapshots the ledger state.
func (l *Ledger) Head() Head {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Head{
		Seq: l.lastSeq, Link: l.lastLink.String(),
		Persisted: l.persisted, Keys: len(l.index),
		Degraded: l.degraded,
		Appends:  l.appends, Retries: l.retries, IOErrors: l.ioErrors,
	}
}

// Degraded reports whether the ledger has fallen back to memory-only
// operation after a store failure.
func (l *Ledger) Degraded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// VerifyReport is the outcome of a full chain verification.
type VerifyReport struct {
	// OK is true when every stored record's frame, checksum, sequence and
	// chain link verified, and the stored head agrees with the in-memory
	// chain at that sequence.
	OK bool `json:"ok"`
	// Records is how many stored records verified before the first
	// problem (all of them when OK).
	Records uint64 `json:"records"`
	// HeadSeq/HeadLink are the newest verified stored record.
	HeadSeq  uint64 `json:"head_seq"`
	HeadLink string `json:"head_link"`
	// Error describes the first failure; for store corruption it names
	// the damaged file and byte offset.
	Error string `json:"error,omitempty"`
}

// Verify re-reads the entire store from its backing storage, recomputes
// every checksum and chain link, and cross-checks the stored records
// against the in-memory chain — so it detects tampering that happened
// underneath a running process, not just at startup. Safe to call while
// appends are in flight: the store serializes replay against batch writes,
// and records flushed after the initial links snapshot are chain-verified
// and then cross-checked against the live chain re-read at the end, never
// misreported as failures.
func (l *Ledger) Verify() VerifyReport {
	l.mu.Lock()
	links := l.links // append-only; safe to read a snapshot reference
	n := uint64(len(links))
	l.mu.Unlock()

	var rep VerifyReport
	var seq uint64
	var link Hash
	err := l.opts.Store.Replay(func(r *Record) error {
		next, err := verifyChain(seq, link, r)
		if err != nil {
			return err
		}
		// Cross-check against the chain this process has in memory: a
		// store that verifies internally but diverges from the live chain
		// is still tampered (e.g. a truncated-and-regrown history).
		if r.Seq <= n && links[r.Seq-1] != next {
			return &ChainError{Seq: r.Seq, Want: links[r.Seq-1], Got: next}
		}
		seq, link = r.Seq, next
		rep.Records++
		return nil
	})
	rep.HeadSeq, rep.HeadLink = seq, link.String()
	if err != nil {
		rep.Error = err.Error()
		return rep
	}
	// The store may legitimately hold records appended (and flushed) after
	// the snapshot above was taken, so judge the stored head against the
	// chain as it is NOW: it is tampering only if the store holds history
	// the in-memory chain has never seen, or a head link that disagrees
	// with the live chain at that sequence.
	l.mu.Lock()
	cur := l.links
	l.mu.Unlock()
	if seq > uint64(len(cur)) {
		rep.Error = fmt.Sprintf("ledger: store holds seq %d beyond the in-memory chain head %d", seq, len(cur))
		return rep
	}
	if seq > 0 && cur[seq-1] != link {
		rep.Error = (&ChainError{Seq: seq, Want: cur[seq-1], Got: link}).Error()
		return rep
	}
	rep.OK = true
	return rep
}

// Sync blocks until every record appended so far is either durably stored
// or the ledger has degraded. Tests and graceful shutdown use it.
func (l *Ledger) Sync() {
	l.mu.Lock()
	for (len(l.pending) > 0 || l.flushing) && !l.degraded {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// Close flushes pending records, stops the batcher, and closes the store.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	return l.opts.Store.Close()
}

// batcher is the single writer: it drains whatever accumulated since its
// last flush into one Store.Append (one fsync per batch, however many jobs
// completed meanwhile), retrying transient failures on the seeded backoff
// schedule and degrading to memory-only operation when the budget is
// spent.
func (l *Ledger) batcher() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.pending) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		batch := l.pending
		l.pending = nil
		l.flushing = true
		l.mu.Unlock()

		err := l.writeBatch(batch)

		l.mu.Lock()
		if err == nil {
			l.persisted = batch[len(batch)-1].Seq
		} else if !l.degraded {
			l.degraded = true
			l.pending = nil
			if l.opts.OnDegrade != nil {
				// Called under the lock deliberately: degradation is
				// observed exactly once, before any later Append sees the
				// flag. The callback must not call back into the ledger.
				l.opts.OnDegrade(err)
			}
		}
		l.flushing = false
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// writeBatch pushes one batch into the store with retries. An error
// wrapping ErrTerminal is never retried: the store could not restore its
// pre-batch state, so re-sending the batch could duplicate or corrupt
// already-written records — degrading is the only safe answer.
func (l *Ledger) writeBatch(batch []*Record) error {
	retries := l.opts.retries()
	var err error
	for attempt := 0; ; attempt++ {
		err = l.opts.Store.Append(batch)
		if err == nil {
			return nil
		}
		l.mu.Lock()
		l.ioErrors++
		l.mu.Unlock()
		if attempt >= retries || errors.Is(err, ErrTerminal) {
			return err
		}
		l.mu.Lock()
		l.retries++
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return err
		}
		time.Sleep(mpc.BackoffDelay(attempt+1, l.opts.retryBase(), l.opts.retryMax(), l.opts.RetrySeed))
	}
}
