// Package ledger is the durable, Merkle-chained job ledger: an append-only
// log of (job key → result hash, metrics hash, timestamp, chain link)
// records behind one Store interface, fed by a write batcher that never
// blocks the appender on IO.
//
// Every result in this repo is bit-deterministic (DESIGN.md), which turns a
// hash chain into an end-to-end integrity check: any ledgered job can be
// re-executed from its recorded instance spec and its result hash compared
// against the chain (cmd/mrverify). The chain rule is
//
//	link_i = SHA-256(link_{i-1} ‖ seq ‖ time ‖ len(key) ‖ key ‖
//	                 resultHash ‖ metricsHash ‖ SHA-256(payload))
//
// with link_0 = 32 zero bytes, so a single flipped byte anywhere in the
// history changes every later link and the head no longer matches.
//
// Two stores ship: an in-memory store (tests, and the degraded fallback
// when disk IO fails) and an append-only segmented disk store with a
// CRC-32C per record, fsync per batch, and atomic rename segment rotation
// (disk.go). A torn tail record — the signature of a kill -9 mid-write —
// is truncated on recovery, exactly once; any other checksum failure is
// corruption and is reported with the offending file pinpointed, never
// silently served.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// HashSize is the size of every hash in a record (SHA-256).
const HashSize = sha256.Size

// Hash is one SHA-256 value: a result hash, metrics hash, or chain link.
type Hash [HashSize]byte

// String renders the hash in hex.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// HashBytes hashes arbitrary bytes (the canonical result document, the
// canonical metrics document, a record payload).
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// Record is one chained ledger entry. Records are immutable once appended;
// the ledger hands out pointers and callers must not mutate them.
type Record struct {
	// Seq is the 1-based position in the chain.
	Seq uint64
	// Time is the append wall-clock in unix nanoseconds. It participates
	// in the chain (tamper-evident) but never in result determinism.
	Time int64
	// Key is the job key: the canonical (instance, alg, args, µ, seed)
	// string the service batches and caches on.
	Key string
	// ResultHash is SHA-256 of the canonical result document; re-executing
	// the job must reproduce it bit-for-bit (the mrverify contract).
	ResultHash Hash
	// MetricsHash is SHA-256 of the canonical model-metrics document
	// (rounds, words, space) — the second half of the determinism
	// invariant, chained separately so a metrics drift is attributable.
	MetricsHash Hash
	// Payload is the self-contained replay envelope (instance spec +
	// result document) that lets a restarted server serve this job without
	// re-executing it. It is covered by the chain through its hash.
	Payload []byte
	// Link is the Merkle chain link for this record (see the chain rule in
	// the package comment).
	Link Hash
}

// chainLink computes the link for a record given the previous link. Pure
// function of (prev, record header, payload hash): recovery, verification
// and the offline auditor all recompute it independently.
func chainLink(prev Hash, r *Record) Hash {
	h := sha256.New()
	var u [8]byte
	h.Write(prev[:])
	binary.LittleEndian.PutUint64(u[:], r.Seq)
	h.Write(u[:])
	binary.LittleEndian.PutUint64(u[:], uint64(r.Time))
	h.Write(u[:])
	binary.LittleEndian.PutUint64(u[:], uint64(len(r.Key)))
	h.Write(u[:])
	h.Write([]byte(r.Key))
	h.Write(r.ResultHash[:])
	h.Write(r.MetricsHash[:])
	p := HashBytes(r.Payload)
	h.Write(p[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// ChainError reports a record whose link or sequence number contradicts
// the chain — tampering or a logic error, never a torn write (torn tails
// are detected below the chain, by the store's CRC framing).
type ChainError struct {
	Seq  uint64 // the offending record's sequence number
	Want Hash   // recomputed link
	Got  Hash   // link stored in the record
	Msg  string
}

func (e *ChainError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("ledger: chain broken at seq %d: %s", e.Seq, e.Msg)
	}
	return fmt.Sprintf("ledger: chain broken at seq %d: recomputed link %s, stored %s",
		e.Seq, e.Want, e.Got)
}

// verifyChain folds one record into a running chain verification: checks
// seq continuity and the stored link against the recomputed one.
func verifyChain(prevSeq uint64, prevLink Hash, r *Record) (Hash, error) {
	if r.Seq != prevSeq+1 {
		return Hash{}, &ChainError{Seq: r.Seq,
			Msg: fmt.Sprintf("sequence jumped from %d to %d", prevSeq, r.Seq)}
	}
	want := chainLink(prevLink, r)
	if want != r.Link {
		return Hash{}, &ChainError{Seq: r.Seq, Want: want, Got: r.Link}
	}
	return want, nil
}

// VerifyStep folds one record into an external chain verification: it
// checks sequence continuity and the stored link against the recomputed
// one, returning the new running link. The offline auditor (cmd/mrverify)
// uses it to re-derive the whole chain independently of any Ledger.
func VerifyStep(prevSeq uint64, prevLink Hash, r *Record) (Hash, error) {
	return verifyChain(prevSeq, prevLink, r)
}

// cloneRecord deep-copies a record so the ledger's retained copy is
// independent of caller-owned payload bytes.
func cloneRecord(r *Record) *Record {
	c := *r
	c.Payload = append([]byte(nil), r.Payload...)
	return &c
}
