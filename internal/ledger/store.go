package ledger

import (
	"errors"
	"sync"
)

// ErrTerminal marks a Store.Append failure that must not be retried: the
// store could not restore its invariants after the failure, so re-sending
// the same batch risks duplicating or corrupting bytes already written.
// Backends wrap it (errors.Is) and the ledger degrades immediately instead
// of retrying.
var ErrTerminal = errors.New("ledger: store failure is not retryable")

// Store is the pluggable persistence backend behind the ledger. The
// ledger's write batcher is the only appender, and it is single-threaded;
// Replay may be called concurrently with Append (the on-demand verify
// path), so implementations must serialize the two internally.
type Store interface {
	// Append durably persists one batch of already-chained records, in
	// order. Durable means: when Append returns nil, the records survive a
	// process kill (for the disk store, data is fsynced; the in-memory
	// store is durable only for the process lifetime, which is its
	// contract). A failing Append must leave the store exactly as it was
	// before the call — the ledger retries the same batch — or return an
	// error wrapping ErrTerminal when it cannot.
	Append(recs []*Record) error
	// Replay streams every persisted record in sequence order, reading
	// the backing storage afresh — so verification observes what is
	// actually stored now, not a cached view. fn must not retain the
	// record past the call unless it clones it.
	Replay(fn func(*Record) error) error
	// Close releases resources. The ledger flushes before closing.
	Close() error
}

// MemStore is the in-memory Store: a slice under a mutex. It backs tests
// and the degraded fallback mode, where disk IO has failed but the process
// keeps a verifiable chain for its own lifetime.
type MemStore struct {
	mu   sync.Mutex
	recs []*Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(recs []*Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.recs = append(s.recs, cloneRecord(r))
	}
	return nil
}

// Replay implements Store.
func (s *MemStore) Replay(fn func(*Record) error) error {
	s.mu.Lock()
	snap := make([]*Record, len(s.recs))
	copy(snap, s.recs)
	s.mu.Unlock()
	for _, r := range snap {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// Len reports the number of stored records (testing helper).
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}
