package ledger

// The append-only segmented disk store. Layout of a ledger directory:
//
//	seg-00000001.log   sealed segments, complete and immutable
//	seg-00000002.log
//	ledger.active      the tail segment being appended
//
// Each record is framed as
//
//	u32  CRC-32C (Castagnoli) over the body
//	u32  body length
//	body: u64 seq · i64 unix-nanos · u32 keyLen · u32 payloadLen ·
//	      key · payload · resultHash(32) · metricsHash(32) · link(32)
//
// all little-endian. Appends write one batch, then fsync — the durability
// point the ledger reports to callers. When the active file grows past the
// segment budget it is sealed: fsync, atomic rename to the next seg-N name,
// directory fsync, fresh active file. Only the active file can therefore
// ever hold a torn record (a kill -9 between write and fsync); sealed
// segments were complete before the rename made them visible under their
// final name. Recovery truncates a torn active tail exactly once and
// treats any other CRC failure as corruption, pinpointing the file.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// DefaultSegmentBytes is the default segment rotation budget.
const DefaultSegmentBytes = 8 << 20

// maxBodyBytes caps one record's body so a corrupted length field cannot
// ask recovery for a multi-gigabyte allocation.
const maxBodyBytes = 1 << 30

// recordOverhead counts the fixed bytes around key+payload.
const recordOverhead = 4 + 4 + 8 + 8 + 4 + 4 + 3*HashSize

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// activeName is the tail segment file name.
const activeName = "ledger.active"

// segName formats the n-th sealed segment file name.
func segName(n int) string { return fmt.Sprintf("seg-%08d.log", n) }

// CorruptError reports a record that failed its CRC or framing check
// somewhere verification cannot excuse as a torn tail. Path and Offset
// pinpoint the damage for operators (and for scripts/ledger_smoke.sh,
// which corrupts one byte with dd and asserts the report names the file).
type CorruptError struct {
	Path   string // file holding the bad record
	Offset int64  // byte offset of the record's frame
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ledger: corrupt record in %s at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// DiskOptions tunes the disk store.
type DiskOptions struct {
	// SegmentBytes rotates the active file once it reaches this size;
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
}

func (o DiskOptions) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

// RecoverStats reports what OpenDisk found and repaired.
type RecoverStats struct {
	// Records is the number of valid records on disk.
	Records uint64
	// Segments counts sealed segments (the active file excluded).
	Segments int
	// TornTail is true when a partial or checksum-failing record at the
	// physical tail of the active file was truncated away — the expected
	// aftermath of a kill -9 mid-write, repaired exactly once.
	TornTail bool
	// TruncatedBytes is how many trailing bytes the torn-tail repair
	// removed.
	TruncatedBytes int64
}

// DiskStore is the append-only segmented file Store.
type DiskStore struct {
	// The ledger's batcher is the only appender, but Replay (on-demand
	// verification) may run concurrently with it, so both take mu: a
	// replay never observes a half-written batch.
	mu      sync.Mutex
	dir     string
	opts    DiskOptions
	f       *os.File // the active file, positioned at its end
	size    int64    // current active file size
	sealed  int      // number of sealed segments
	scratch []byte   // encode buffer reused across batches
}

// OpenDisk opens (creating if needed) a ledger directory, validates every
// record frame on disk, truncates a torn active tail, and returns the
// store positioned for appending. Chain validation (links, sequence) is
// the ledger's job on top; OpenDisk validates framing and checksums.
func OpenDisk(dir string, opts DiskOptions) (*DiskStore, RecoverStats, error) {
	var stats RecoverStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}
	segs, err := sealedSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	for _, path := range segs {
		n, good, torn, err := scanFile(path, nil)
		if err != nil {
			return nil, stats, err
		}
		if torn {
			// Sealed segments were fsynced before the rename made them
			// visible; a torn record here is damage, not a crash artifact.
			return nil, stats, &CorruptError{Path: path, Offset: good,
				Reason: "sealed segment ends in a torn or checksum-failing record"}
		}
		stats.Records += n
	}
	stats.Segments = len(segs)

	active := filepath.Join(dir, activeName)
	n, good, torn, err := scanFile(active, nil)
	if err != nil && !os.IsNotExist(err) {
		return nil, stats, err
	}
	stats.Records += n
	if torn {
		info, statErr := os.Stat(active)
		if statErr != nil {
			return nil, stats, statErr
		}
		stats.TornTail = true
		stats.TruncatedBytes = info.Size() - good
		if err := truncateTail(active, good); err != nil {
			return nil, stats, err
		}
	}
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, stats, err
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, stats, err
	}
	return &DiskStore{dir: dir, opts: opts, f: f, size: size, sealed: len(segs)}, stats, nil
}

// sealedSegments lists seg-*.log in order.
func sealedSegments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// truncateTail cuts a file to size and syncs the result.
func truncateTail(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// Append implements Store: encode the batch, write, fsync, rotate if the
// active file is past its budget. A failing write or fsync is unwound
// (the active file truncated back to its pre-batch size) so the ledger's
// retry re-appends the batch onto a clean tail.
func (s *DiskStore) Append(recs []*Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := s.scratch[:0]
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	s.scratch = buf[:0]
	if _, err := s.f.Write(buf); err != nil {
		return s.unwindLocked(err)
	}
	if err := s.f.Sync(); err != nil {
		return s.unwindLocked(err)
	}
	s.size += int64(len(buf))
	if s.size >= s.opts.segmentBytes() {
		s.rotateLocked()
	}
	return nil
}

// unwindLocked makes a failed Append idempotent. The batch's bytes may
// already sit — partially or fully — in the append-only active file even
// though Write or Sync returned an error; without an unwind, a retry would
// re-append the same records and the duplicate sequence numbers (or the
// garbage half-record mid-file) would read as corruption on the next open.
// Truncating back to s.size (only advanced after a fully synced batch)
// restores the pre-batch tail; the file is in O_APPEND mode, so the retry
// writes land at the restored end. If the truncate itself fails the tail
// state is unknown and retrying could corrupt the chain, so the error is
// marked terminal: the ledger degrades instead of retrying.
func (s *DiskStore) unwindLocked(cause error) error {
	if err := s.f.Truncate(s.size); err != nil {
		return fmt.Errorf("ledger: append failed (%v) and the active file could not be truncated back to %d bytes (%v): %w",
			cause, s.size, err, ErrTerminal)
	}
	return cause
}

// rotateLocked seals the active file under the next segment name and
// starts a fresh one. The rename is atomic, and the directory is fsynced
// after, so a crash leaves either the old layout or the new — never a
// half-rotated ledger. The batch that triggered rotation is already
// durable, so every failure in here is deliberately non-fatal: the store
// keeps appending through the file descriptor it already holds and tries
// to rotate again on a later batch, rather than returning an error the
// ledger would answer by re-sending a batch that is safely on disk.
func (s *DiskStore) rotateLocked() {
	active := filepath.Join(s.dir, activeName)
	if err := os.Rename(active, filepath.Join(s.dir, segName(s.sealed+1))); err != nil {
		return
	}
	s.sealed++
	f, err := os.OpenFile(active, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// No fresh active file could be made: undo the rename so the file
		// the store keeps appending to is still the active tail (only the
		// active file may ever hold a torn record), and retry the whole
		// rotation on a later batch. If even the rename-back fails, keep
		// appending through the open fd to the sealed name — it is the
		// highest-numbered segment and there is no active file, so replay
		// order and sequence continuity still hold.
		if rerr := os.Rename(filepath.Join(s.dir, segName(s.sealed)), active); rerr == nil {
			s.sealed--
		}
		SyncDir(s.dir)
		return
	}
	old := s.f
	s.f, s.size = f, 0
	old.Close()
	SyncDir(s.dir)
}

// Replay implements Store: stream every record from disk, strictly — the
// store repaired any legitimate torn tail at open, so a failing checksum
// during replay is corruption and surfaces as a *CorruptError naming the
// file.
func (s *DiskStore) Replay(fn func(*Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := sealedSegments(s.dir)
	if err != nil {
		return err
	}
	segs = append(segs, filepath.Join(s.dir, activeName))
	for _, path := range segs {
		if _, good, torn, err := scanFile(path, fn); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		} else if torn {
			// The store repaired any legitimate torn active tail at open, so
			// a failing tail record now — sealed or active — is damage.
			return &CorruptError{Path: path, Offset: good,
				Reason: "torn or checksum-failing record at the file tail"}
		}
	}
	return nil
}

// Close implements Store.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// ReadStats summarizes an offline ReadDir pass.
type ReadStats struct {
	Records  uint64
	Segments int
	// TornTail reports a partial trailing record in the active file that
	// the read-only pass skipped (a concurrently running server may be
	// mid-append; its own recovery or fsync will resolve it).
	TornTail bool
}

// ReadDir is the read-only replay used by the offline auditor
// (cmd/mrverify): it never truncates or repairs, tolerates a torn tail in
// the active file (skipping it), and reports strict corruption everywhere
// else. Safe to run against a live server's ledger directory.
func ReadDir(dir string, fn func(*Record) error) (ReadStats, error) {
	var stats ReadStats
	segs, err := sealedSegments(dir)
	if err != nil {
		return stats, err
	}
	for _, path := range segs {
		n, good, torn, err := scanFile(path, fn)
		if err != nil {
			return stats, err
		}
		if torn {
			return stats, &CorruptError{Path: path, Offset: good,
				Reason: "sealed segment ends in a torn or checksum-failing record"}
		}
		stats.Records += n
	}
	stats.Segments = len(segs)
	n, _, torn, err := scanFile(filepath.Join(dir, activeName), fn)
	if err != nil && !os.IsNotExist(err) {
		return stats, err
	}
	stats.Records += n
	stats.TornTail = torn
	return stats, nil
}

// appendRecord encodes one record frame onto buf.
func appendRecord(buf []byte, r *Record) []byte {
	bodyLen := recordOverhead - 8 + len(r.Key) + len(r.Payload)
	start := len(buf)
	buf = append(buf, make([]byte, 8)...) // crc + len, patched below
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Time))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Payload)))
	buf = append(buf, r.Key...)
	buf = append(buf, r.Payload...)
	buf = append(buf, r.ResultHash[:]...)
	buf = append(buf, r.MetricsHash[:]...)
	buf = append(buf, r.Link[:]...)
	body := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], crc32.Checksum(body, crcTable))
	binary.LittleEndian.PutUint32(buf[start+4:], uint32(len(body)))
	if len(body) != bodyLen {
		panic("ledger: record encoding drifted from recordOverhead")
	}
	return buf
}

// scanFile parses every record frame in path, calling fn (when non-nil)
// for each. Returns the count, the byte offset after the last whole valid
// record, and whether the file ends in a torn record: one whose frame runs
// past EOF, or whose checksum fails with no valid data after it. A
// checksum failure that is NOT at the physical tail is corruption and
// returns a *CorruptError instead.
func scanFile(path string, fn func(*Record) error) (n uint64, good int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return n, off, true, nil
		}
		crc := binary.LittleEndian.Uint32(rest)
		bodyLen := int64(binary.LittleEndian.Uint32(rest[4:]))
		if bodyLen > maxBodyBytes || bodyLen < recordOverhead-8 {
			// A garbage length field: indistinguishable from a torn partial
			// header if it is the last thing in the file.
			return n, off, true, nil
		}
		if int64(len(rest)) < 8+bodyLen {
			return n, off, true, nil
		}
		body := rest[8 : 8+bodyLen]
		if crc32.Checksum(body, crcTable) != crc {
			if int64(len(rest)) == 8+bodyLen {
				// The failing record is the physical tail: a torn write.
				return n, off, true, nil
			}
			return n, off, false, &CorruptError{Path: path, Offset: off,
				Reason: "CRC-32C mismatch"}
		}
		rec, derr := decodeBody(body)
		if derr != nil {
			return n, off, false, &CorruptError{Path: path, Offset: off, Reason: derr.Error()}
		}
		if fn != nil {
			if ferr := fn(rec); ferr != nil {
				return n, off, false, ferr
			}
		}
		n++
		off += 8 + bodyLen
	}
	return n, off, false, nil
}

// decodeBody parses a checksum-validated record body.
func decodeBody(body []byte) (*Record, error) {
	r := &Record{}
	r.Seq = binary.LittleEndian.Uint64(body)
	r.Time = int64(binary.LittleEndian.Uint64(body[8:]))
	keyLen := int(binary.LittleEndian.Uint32(body[16:]))
	payLen := int(binary.LittleEndian.Uint32(body[20:]))
	if keyLen < 0 || payLen < 0 || 24+keyLen+payLen+3*HashSize != len(body) {
		return nil, fmt.Errorf("inconsistent key/payload lengths")
	}
	p := 24
	r.Key = string(body[p : p+keyLen])
	p += keyLen
	r.Payload = append([]byte(nil), body[p:p+payLen]...)
	p += payLen
	copy(r.ResultHash[:], body[p:])
	p += HashSize
	copy(r.MetricsHash[:], body[p:])
	p += HashSize
	copy(r.Link[:], body[p:])
	return r, nil
}

// SyncDir fsyncs a directory so a just-renamed or just-created entry
// survives a crash. Best-effort on filesystems that reject directory
// fsync: the error is ignored there, matching common practice.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
