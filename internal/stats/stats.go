// Package stats provides the summary statistics used by the multi-trial
// experiments: mean, standard deviation, min/max, and quantiles over small
// samples of measured metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 measurements.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation
// between order statistics. It panics on an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary as "mean ± std [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f]", s.Mean, s.Std, s.Min, s.Max)
}

// MeanStd renders just "mean ± std".
func (s Summary) MeanStd() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std)
}
