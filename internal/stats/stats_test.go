package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for q=%v", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
}

func TestQuickMeanWithinRange(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min-1e-9 && s.Median <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	s := Summarize([]float64{1, 3})
	if s.String() == "" || s.MeanStd() == "" {
		t.Fatal("empty render")
	}
}
