package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must differ from parent's continuing stream.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split child mirrors parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 100; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(10)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 100}} {
		s := r.SampleWithoutReplacement(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("sample(%d,%d) len=%d", tc.n, tc.k, len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("sample out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate in sample: %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element of [0,5) should appear in a 2-sample with prob 2/5.
	r := New(12)
	counts := make([]int, 5)
	const trials = 50000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(5, 2) {
			counts[v]++
		}
	}
	for v, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-0.4) > 0.02 {
			t.Fatalf("element %d rate %v, want ~0.4", v, rate)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(13)
	cases := []struct {
		n int
		p float64
	}{{10, 0.5}, {100, 0.1}, {10000, 0.3}, {10000, 0.001}}
	for _, tc := range cases {
		const trials = 5000
		sum := 0.0
		for i := 0; i < trials; i++ {
			x := r.Binomial(tc.n, tc.p)
			if x < 0 || x > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, x)
			}
			sum += float64(x)
		}
		mean := sum / trials
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+0.5 {
			t.Fatalf("Binomial(%d,%v) mean = %v, want ~%v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(14)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, .5) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(10, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(10, 1) != 10")
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(99)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSampleDistinct(t *testing.T) {
	r := New(100)
	f := func(a, b uint8) bool {
		n := int(a%50) + 1
		k := int(b) % (n + 1)
		s := r.SampleWithoutReplacement(n, k)
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(s) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpPositive(t *testing.T) {
	r := New(15)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		e := r.Exp()
		if e < 0 {
			t.Fatalf("Exp() = %v < 0", e)
		}
		sum += e
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000003)
	}
}

func TestJumpMatchesDraws(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 7, 100, 12345} {
		a := New(42)
		b := New(42)
		for i := uint64(0); i < n; i++ {
			a.Uint64()
		}
		b.Jump(n)
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Jump(%d) diverges from %d sequential draws", n, n)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(7)
	a.Uint64()
	b := a.Clone()
	if a.Uint64() != b.Uint64() {
		t.Fatal("clone not at the same position")
	}
	b.Uint64()
	if a.Clone().Uint64() == b.Clone().Uint64() {
		t.Fatal("clone positions should have diverged")
	}
}

func TestDrawsSince(t *testing.T) {
	r := New(99)
	start := r.Clone()
	draws := uint64(0)
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			r.Uint64()
			draws++
		case 1:
			r.Intn(1000) // may consume >1 draw on rejection; count via a probe
			probe := start.Clone()
			probe.Jump(r.DrawsSince(start))
			if probe.Uint64() != r.Clone().Uint64() {
				t.Fatal("DrawsSince inconsistent with Jump after Intn")
			}
			draws = r.DrawsSince(start)
		case 2:
			r.Jump(13)
			draws += 13
		}
		if got := r.DrawsSince(start); got != draws {
			t.Fatalf("DrawsSince = %d, want %d (step %d)", got, draws, i)
		}
	}
}
