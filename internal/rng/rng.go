// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every randomized algorithm in this repository.
//
// The generator is SplitMix64 (Steele, Lea, Flood 2014): a 64-bit state
// advanced by a Weyl increment and finalized with a variant of the MurmurHash3
// mixer. It is not cryptographically secure, but it is statistically strong,
// allocation-free, and — crucially for reproducible experiments — splittable:
// independent child streams can be forked deterministically from a parent.
//
// All algorithms in internal/core and internal/seq take an explicit *rng.RNG
// (or a seed), so every experiment in the benchmark harness is exactly
// reproducible from its seed.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New to make seeding explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// golden is 2^64 / phi, the Weyl increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split forks a child generator whose stream is independent of the parent's
// subsequent output. The parent advances by one step.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Clone returns a copy of r at its current stream position. The clone and
// the original produce identical subsequent output and advance independently.
func (r *RNG) Clone() *RNG {
	return &RNG{state: r.state}
}

// Jump advances the generator by n raw Uint64 draws in O(1). Because
// SplitMix64's state is an affine counter (state += golden per draw),
// r.Jump(n) leaves r exactly where n calls to Uint64 would. This is what
// lets parallel generators hand each worker chunk its own stream position
// while staying bit-identical to a sequential draw sequence.
func (r *RNG) Jump(n uint64) {
	r.state += n * golden
}

// goldenInv is the multiplicative inverse of golden modulo 2^64 (golden is
// odd, hence invertible), computed by Newton iteration: each step doubles
// the number of correct low bits.
var goldenInv = func() uint64 {
	x := uint64(golden) // correct to 3 bits
	for i := 0; i < 5; i++ {
		x *= 2 - golden*x
	}
	return x
}()

// DrawsSince returns how many raw Uint64 draws (including Jumps) separate r
// from the earlier position past. It is exact for any pair of positions on
// the same stream: the state difference divided by the (odd, invertible)
// Weyl increment.
func (r *RNG) DrawsSince(past *RNG) uint64 {
	return (r.state - past.state) * goldenInv
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless method would be faster, but modulo bias is
	// negligible for n far below 2^64 and this keeps the code obvious.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// UniformWeight returns a uniform weight in [lo, hi).
func (r *RNG) UniformWeight(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, via the
// Fisher-Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct uniform indices from [0, n),
// in no particular order. It panics if k > n or k < 0.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Binomial returns a sample from Binomial(n, p). For small n it sums
// Bernoulli trials; for large n it uses the normal approximation when the
// variance is large enough that the approximation error is negligible for
// our simulation purposes (sampling set sizes), falling back to inversion.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		c := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				c++
			}
		}
		return c
	}
	mean := float64(n) * p
	variance := mean * (1 - p)
	if variance >= 100 {
		// Normal approximation with continuity correction.
		x := int(math.Round(mean + math.Sqrt(variance)*r.normFloat64()))
		if x < 0 {
			x = 0
		}
		if x > n {
			x = n
		}
		return x
	}
	// Inversion by sequential search; fine for small mean.
	q := math.Pow(1-p, float64(n))
	u := r.Float64()
	cum := q
	k := 0
	for u > cum && k < n {
		k++
		q *= (float64(n-k+1) / float64(k)) * (p / (1 - p))
		cum += q
	}
	return k
}

// normFloat64 returns a standard normal variate via the polar method.
func (r *RNG) normFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
