package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
)

// Ablations probe the design choices the paper's analysis leans on: sample
// sizes, group sizes, the ε-adjustment, and the broadcast tree.

func init() {
	register(Experiment{
		ID:    "A1.SampleSize",
		Title: "Ablation: sample budget η vs iterations in Algorithm 1 (Lemma 2.2)",
		Run:   runAblationSampleSize,
	})
	register(Experiment{
		ID:    "A2.GroupSize",
		Title: "Ablation: hungry-greedy group size vs iterations (Lemma 3.2 / A.1)",
		Run:   runAblationGroupSize,
	})
	register(Experiment{
		ID:    "A3.EpsAdjust",
		Title: "Ablation: ε-adjusted vs plain reductions in b-matching (Appendix D.2)",
		Run:   runAblationEpsAdjusted,
	})
	register(Experiment{
		ID:    "A4.Broadcast",
		Title: "Ablation: broadcast tree degree vs rounds and per-machine load (§2.2)",
		Run:   runAblationBroadcast,
	})
	register(Experiment{
		ID:    "A5.Bucketing",
		Title: "Ablation: ε-greedy bucket width vs cover weight (Algorithm 3)",
		Run:   runAblationBucketing,
	})
}

func runAblationSampleSize(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "A1.SampleSize",
		Title:      "Sample budget η vs iterations of Algorithm 1",
		PaperClaim: "with η = n^{1+µ}, |U_{r+1}| ≤ 2|U_r|/n^µ w.h.p., so ⌈c/µ⌉ iterations suffice (Lemma 2.2 / Theorem 2.3)",
		Columns:    []string{"η/n^{1+µ}", "iters", "rounds", "w(ALG)", "ratio vs LB"},
	}
	n, mu := 600, 0.2
	if rc.Quick {
		n = 200
	}
	r := rng.New(rc.Seed)
	g := graph.Density(n, 0.35, r.Split())
	w := make([]float64, g.N)
	wr := r.Split()
	for i := range w {
		w[i] = wr.UniformWeight(1, 10)
	}
	inst := setcover.FromVertexCover(g, w)
	base := math.Pow(float64(n), 1+mu)
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		etaW := int(base * scale)
		res, err := core.RLRSetCover(inst, rc.params(mu, r.Uint64()),
			core.CoverOptions{VertexCoverMode: true, Eta: etaW})
		if err != nil {
			return nil, err
		}
		t.Observe(res.Metrics)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d µ=%.2f η=%d", n, mu, etaW),
			Cells: map[string]string{
				"η/n^{1+µ}":   f2(scale),
				"iters":       d(res.Iterations),
				"rounds":      d(res.Metrics.Rounds),
				"w(ALG)":      f2(res.Weight),
				"ratio vs LB": f3(res.Weight / res.LowerBound),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Iterations shrink as η grows (larger samples kill more elements per round) while the approximation "+
			"ratio is unaffected — the local ratio guarantee is order-independent.")
	return t, nil
}

func runAblationGroupSize(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "A2.GroupSize",
		Title:      "Hungry-greedy sampling intensity vs iterations (via µ)",
		PaperClaim: "groups of n^{µ/2} heavy vertices make |V_H| shrink by n^{µ/4} per batch (Lemma 3.2)",
		Columns:    []string{"µ", "alg2 iters", "alg2 rounds", "alg6 iters", "alg6 rounds"},
	}
	n := 800
	if rc.Quick {
		n = 250
	}
	r := rng.New(rc.Seed)
	g := graph.Density(n, 0.3, r.Split())
	for _, mu := range []float64{0.1, 0.2, 0.3, 0.4} {
		r2, err := core.MIS(g, rc.params(mu, r.Uint64()))
		if err != nil {
			return nil, err
		}
		r6, err := core.MISFast(g, rc.params(mu, r.Uint64()))
		if err != nil {
			return nil, err
		}
		if !graph.IsMaximalIndependentSet(g, r2.Set) || !graph.IsMaximalIndependentSet(g, r6.Set) {
			return nil, errInvalid("MIS ablation")
		}
		t.Observe(r2.Metrics)
		t.Observe(r6.Metrics)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d c=0.30 µ=%.2f", n, mu),
			Cells: map[string]string{
				"µ":           f2(mu),
				"alg2 iters":  d(r2.Iterations),
				"alg2 rounds": d(r2.Metrics.Rounds),
				"alg6 iters":  d(r6.Iterations),
				"alg6 rounds": d(r6.Metrics.Rounds),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Larger µ ⇒ larger groups and machine budgets ⇒ fewer iterations; Algorithm 6 needs fewer "+
			"iterations than Algorithm 2 at equal µ, matching O(c/µ) vs O(1/µ²).")
	return t, nil
}

func runAblationEpsAdjusted(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "A3.EpsAdjust",
		Title:      "ε-adjusted kill rule in sequential b-matching local ratio",
		PaperClaim: "with plain reductions (ε→0) a vertex must select ~b edges before any die; the ε-adjustment kills all non-heavy edges after b·ln(1/δ) selections (Appendix D.2)",
		Columns:    []string{"ε", "stack size", "w(ALG)", "w/brute-ish", "bound 3−2/b+2ε"},
	}
	nEdges := 18
	r := rng.New(rc.Seed)
	g := graph.GNM(8, nEdges, r.Split())
	g.AssignUniformWeights(r.Split(), 1, 10)
	b := func(int) int { return 3 }
	opt := seq.BruteForceBMatching(g, b)
	for _, eps := range []float64{0.01, 0.1, 0.25, 0.5, 1.0} {
		lr := seq.NewBMatchingLocalRatio(g, b, eps)
		for id := 0; id < g.M(); id++ {
			lr.Push(id)
		}
		sel := lr.Unwind()
		w := graph.MatchingWeight(g, sel)
		t.Rows = append(t.Rows, Row{
			Config: cfg("K8-ish m=%d b=3 ε=%.2f", g.M(), eps),
			Cells: map[string]string{
				"ε":              f2(eps),
				"stack size":     d(lr.StackSize()),
				"w(ALG)":         f2(w),
				"w/brute-ish":    f3(w / opt),
				"bound 3−2/b+2ε": f2(3 - 2.0/3 + 2*eps),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Small ε keeps more edges alive longer (bigger stacks, better weight); large ε kills aggressively "+
			"(smaller stacks, worse weight) — the trade-off Appendix D tunes with δ = ε/(1+ε).")
	return t, nil
}

func runAblationBroadcast(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "A4.Broadcast",
		Title:      "Broadcast tree degree in the general set cover path",
		PaperClaim: "a degree-n^µ tree spreads C to all machines in O(c/µ) rounds without exceeding any sender's space (§2.2)",
		Columns:    []string{"degree", "iters", "rounds", "rounds/iter", "maxSpace"},
	}
	// The tree degree is n^µ, so varying µ varies the degree; this ablation
	// uses the general (non-VC) path where broadcast dominates rounds.
	n := 300
	if rc.Quick {
		n = 150
	}
	r := rng.New(rc.Seed)
	inst := setcover.RandomFrequency(n, int(math.Pow(float64(n), 1.35)), 4, 10, r.Split())
	for _, mu := range []float64{0.05, 0.15, 0.3, 0.5} {
		res, err := core.RLRSetCover(inst, rc.params(mu, r.Uint64()), core.CoverOptions{})
		if err != nil {
			return nil, err
		}
		deg := int(math.Pow(float64(n), mu))
		if deg < 2 {
			deg = 2
		}
		t.Observe(res.Metrics)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d f=4 µ=%.2f", n, mu),
			Cells: map[string]string{
				"degree":      d(deg),
				"iters":       d(res.Iterations),
				"rounds":      d(res.Metrics.Rounds),
				"rounds/iter": f2(float64(res.Metrics.Rounds) / float64(res.Iterations)),
				"maxSpace":    d(res.Metrics.MaxSpace),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Higher µ ⇒ higher tree degree and bigger machines ⇒ shallower trees and fewer rounds per "+
			"iteration, at the cost of per-machine space — the c/µ trade-off of Theorem 2.4.")
	return t, nil
}

func runAblationBucketing(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "A5.Bucketing",
		Title:      "ε-greedy bucket width in Algorithm 3",
		PaperClaim: "wider buckets (larger ε) mean fewer L-levels but a worse (1+ε)·H_∆ guarantee (Theorem 4.5)",
		Columns:    []string{"ε", "iters", "rounds", "w(ALG)", "ratio vs greedy"},
	}
	n, m := 1500, 150
	if rc.Quick {
		n, m = 400, 60
	}
	r := rng.New(rc.Seed)
	inst := setcover.RandomSized(n, m, 10, 8, r.Split())
	greedy := inst.Weight(seq.GreedySetCover(inst, 0))
	for _, eps := range []float64{0.05, 0.2, 0.5, 1.0} {
		res, err := core.HGSetCover(inst, rc.params(0.3, r.Uint64()), core.HGCoverOptions{Eps: eps})
		if err != nil {
			return nil, err
		}
		t.Observe(res.Metrics)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d m=%d ε=%.2f", n, m, eps),
			Cells: map[string]string{
				"ε":               f2(eps),
				"iters":           d(res.Iterations),
				"rounds":          d(res.Metrics.Rounds),
				"w(ALG)":          f2(res.Weight),
				"ratio vs greedy": f3(res.Weight / greedy),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Iterations fall as ε grows (each bucket admits more sets) while the weight drifts above the exact "+
			"greedy benchmark — the rounds-vs-quality dial of Theorem 4.5.")
	return t, nil
}
