package bench

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "F1.VCol",
		Title: "Vertex colouring: (1+o(1))∆ colours in O(1) rounds (Theorem 6.4)",
		Run:   runFig1VertexColouring,
	})
	register(Experiment{
		ID:    "F1.ECol",
		Title: "Edge colouring: (1+o(1))∆ colours in O(1) rounds (Theorem 6.6)",
		Run:   runFig1EdgeColouring,
	})
}

func colouringConfs(quick bool) []struct {
	n  int
	c  float64
	mu float64
} {
	confs := []struct {
		n  int
		c  float64
		mu float64
	}{
		{1000, 0.3, 0.1}, {1000, 0.3, 0.2}, {3000, 0.3, 0.2}, {3000, 0.45, 0.2},
	}
	if quick {
		confs = confs[:1]
		confs[0].n = 300
	}
	return confs
}

func runFig1VertexColouring(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.VCol",
		Title:      "Vertex colouring (Algorithm 5)",
		PaperClaim: "(1+o(1))∆ colours, O(1) rounds, O(n^{1+µ}) space",
		Columns:    []string{"m", "∆", "κ", "colours", "colours/∆", "(∆+1) seq", "rounds", "violations"},
	}
	r := rng.New(rc.Seed)
	for _, cf := range colouringConfs(rc.Quick) {
		g := graph.Density(cf.n, cf.c, r.Split())
		res, err := core.VertexColouring(g, rc.params(cf.mu, r.Uint64()))
		if err != nil {
			return nil, err
		}
		if !graph.IsProperVertexColouring(g, res.Colours) {
			return nil, errInvalid("vertex colouring")
		}
		t.Observe(res.Metrics)
		delta := g.MaxDegree()
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d c=%.2f µ=%.2f", cf.n, cf.c, cf.mu),
			Cells: map[string]string{
				"m":          d(g.M()),
				"∆":          d(delta),
				"κ":          d(res.Groups),
				"colours":    d(res.NumColours),
				"colours/∆":  f3(float64(res.NumColours) / float64(delta)),
				"(∆+1) seq":  d(delta + 1),
				"rounds":     d(res.Metrics.Rounds),
				"violations": d(res.Metrics.Violations),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Shape check: colours/∆ → 1 as n grows (the o(1) term is 6·sqrt(ln n)/n^{µ/2} + n^{-µ}); rounds "+
			"are a constant independent of n.")
	return t, nil
}

func runFig1EdgeColouring(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.ECol",
		Title:      "Edge colouring (Algorithm 5 + Misra–Gries per group, Remark 6.5)",
		PaperClaim: "(1+o(1))∆ colours, O(1) rounds, O(n^{1+µ}) space",
		Columns:    []string{"m", "∆", "κ", "colours", "colours/∆", "vizing ∆+1", "rounds", "violations"},
	}
	r := rng.New(rc.Seed)
	for _, cf := range colouringConfs(rc.Quick) {
		g := graph.Density(cf.n, cf.c, r.Split())
		res, err := core.EdgeColouring(g, rc.params(cf.mu, r.Uint64()))
		if err != nil {
			return nil, err
		}
		if !graph.IsProperEdgeColouring(g, res.Colours) {
			return nil, errInvalid("edge colouring")
		}
		t.Observe(res.Metrics)
		delta := g.MaxDegree()
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d c=%.2f µ=%.2f", cf.n, cf.c, cf.mu),
			Cells: map[string]string{
				"m":          d(g.M()),
				"∆":          d(delta),
				"κ":          d(res.Groups),
				"colours":    d(res.NumColours),
				"colours/∆":  f3(float64(res.NumColours) / float64(delta)),
				"vizing ∆+1": d(delta + 1),
				"rounds":     d(res.Metrics.Rounds),
				"violations": d(res.Metrics.Violations),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Per-group Misra–Gries uses ∆_i+1 ≤ (1+o(1))∆/κ + 1 colours; the κ groups multiply back to "+
			"(1+o(1))∆ total. Rounds stay constant in n.")
	return t, nil
}
