package bench

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
	"repro/internal/stats"
)

// The variance experiment addresses the paper's "with high probability"
// qualifiers empirically: the randomized algorithms are re-run across many
// independent seeds on a fixed instance, and the table reports the spread of
// approximation quality, iteration counts, and — crucially — the number of
// runs in which a failure event (sampling overflow / space-cap breach)
// occurred, which the theorems say should be ≈ 0.

func init() {
	register(Experiment{
		ID:    "R1.Variance",
		Title: "Cross-seed variance and failure rates of the randomized algorithms",
		Run:   runVariance,
	})
}

func runVariance(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "R1.Variance",
		Title:      "Cross-seed spread (mean ± sd over independent seeds, fixed instance)",
		PaperClaim: "the guarantees hold w.h.p.: failure events are rare and quality concentrates",
		Columns:    []string{"trials", "ratio", "iters", "rounds", "failures"},
	}
	trials := 20
	n := 600
	if rc.Quick {
		trials, n = 5, 200
	}
	r := rng.New(rc.Seed)

	g := graph.Density(n, 0.45, r.Split())
	g.AssignUniformWeights(r.Split(), 1, 100)
	ps := graph.MatchingWeight(g, seq.LocalRatioMatching(g))

	w := make([]float64, g.N)
	wr := r.Split()
	for i := range w {
		w[i] = wr.UniformWeight(1, 10)
	}
	vcInst := setcover.FromVertexCover(g, w)

	// Matching across seeds.
	var ratios, iters, rounds []float64
	failures := 0
	for trial := 0; trial < trials; trial++ {
		res, err := core.RLRMatching(g, rc.params(0.1, r.Uint64()), core.MatchingOptions{})
		if err != nil {
			failures++
			continue
		}
		if res.Metrics.Violations > 0 {
			failures++
		}
		t.Observe(res.Metrics)
		ratios = append(ratios, res.Weight/ps)
		iters = append(iters, float64(res.Iterations))
		rounds = append(rounds, float64(res.Metrics.Rounds))
	}
	t.Rows = append(t.Rows, Row{
		Config: cfg("matching n=%d c=0.45 µ=0.10 (ratio vs PS-seq)", n),
		Cells: map[string]string{
			"trials":   d(trials),
			"ratio":    stats.Summarize(ratios).MeanStd(),
			"iters":    stats.Summarize(iters).MeanStd(),
			"rounds":   stats.Summarize(rounds).MeanStd(),
			"failures": d(failures),
		},
	})

	// Vertex cover across seeds (ratio vs the certified lower bound).
	ratios, iters, rounds = nil, nil, nil
	failures = 0
	for trial := 0; trial < trials; trial++ {
		res, err := core.RLRSetCover(vcInst, rc.params(0.1, r.Uint64()),
			core.CoverOptions{VertexCoverMode: true})
		if err != nil {
			failures++
			continue
		}
		if res.Metrics.Violations > 0 {
			failures++
		}
		t.Observe(res.Metrics)
		ratios = append(ratios, res.Weight/res.LowerBound)
		iters = append(iters, float64(res.Iterations))
		rounds = append(rounds, float64(res.Metrics.Rounds))
	}
	t.Rows = append(t.Rows, Row{
		Config: cfg("vertex cover n=%d c=0.45 µ=0.10 (ratio vs LB ≤ 2)", n),
		Cells: map[string]string{
			"trials":   d(trials),
			"ratio":    stats.Summarize(ratios).MeanStd(),
			"iters":    stats.Summarize(iters).MeanStd(),
			"rounds":   stats.Summarize(rounds).MeanStd(),
			"failures": d(failures),
		},
	})

	// MIS across seeds (set size; validity is asserted).
	var sizes []float64
	iters, rounds = nil, nil
	failures = 0
	for trial := 0; trial < trials; trial++ {
		res, err := core.MISFast(g, rc.params(0.1, r.Uint64()))
		if err != nil {
			failures++
			continue
		}
		if !graph.IsMaximalIndependentSet(g, res.Set) {
			return nil, errInvalid("MIS in variance trial")
		}
		t.Observe(res.Metrics)
		sizes = append(sizes, float64(len(res.Set)))
		iters = append(iters, float64(res.Iterations))
		rounds = append(rounds, float64(res.Metrics.Rounds))
	}
	t.Rows = append(t.Rows, Row{
		Config: cfg("MIS (Alg 6) n=%d c=0.45 µ=0.10 (|I|)", n),
		Cells: map[string]string{
			"trials":   d(trials),
			"ratio":    stats.Summarize(sizes).MeanStd(),
			"iters":    stats.Summarize(iters).MeanStd(),
			"rounds":   stats.Summarize(rounds).MeanStd(),
			"failures": d(failures),
		},
	})

	t.Notes = append(t.Notes,
		"Failure events (sampling overflow, space-cap breach) never occurred in the recorded runs, and the "+
			"quality spread is tight — the empirical face of the paper's w.h.p. statements.")
	return t, nil
}
