package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "F1.MIS",
		Title: "Maximal independent set: O(c/µ) rounds (Theorems 3.3 / A.3) vs Luby",
		Run:   runFig1MIS,
	})
	register(Experiment{
		ID:    "F1.Clique",
		Title: "Maximal clique: O(1/µ) rounds without materializing the complement (Corollary B.1)",
		Run:   runFig1Clique,
	})
}

func runFig1MIS(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.MIS",
		Title:      "Maximal independent set: hungry-greedy (Algorithms 2 & 6) vs Luby",
		PaperClaim: "Algorithm 2: O(1/µ²) rounds; Algorithm 6: O(c/µ) rounds; Luby: O(log n) rounds",
		Columns:    []string{"m", "alg", "iters", "rounds", "|I|", "maxSpace/cap", "violations"},
	}
	confs := []struct {
		n  int
		c  float64
		mu float64
	}{
		{1000, 0.2, 0.2}, {1000, 0.4, 0.2}, {3000, 0.3, 0.2}, {3000, 0.3, 0.3},
	}
	if rc.Quick {
		confs = confs[:1]
		confs[0].n = 300
	}
	r := rng.New(rc.Seed)
	for _, cf := range confs {
		g := graph.Density(cf.n, cf.c, r.Split())
		cap := math.Pow(float64(cf.n), 1+cf.mu)
		algos := []struct {
			name string
			run  func() (*core.MISResult, error)
		}{
			{"HG-simple (Alg 2)", func() (*core.MISResult, error) {
				return core.MIS(g, rc.params(cf.mu, r.Uint64()))
			}},
			{"HG-fast (Alg 6)", func() (*core.MISResult, error) {
				return core.MISFast(g, rc.params(cf.mu, r.Uint64()))
			}},
			{"Luby", func() (*core.MISResult, error) {
				return core.LubyMIS(g, rc.params(cf.mu, r.Uint64()))
			}},
		}
		for _, a := range algos {
			res, err := a.run()
			if err != nil {
				return nil, err
			}
			if !graph.IsMaximalIndependentSet(g, res.Set) {
				return nil, errInvalid("MIS (" + a.name + ")")
			}
			t.Observe(res.Metrics)
			t.Rows = append(t.Rows, Row{
				Config: cfg("n=%d c=%.2f µ=%.2f", cf.n, cf.c, cf.mu),
				Cells: map[string]string{
					"m":            d(g.M()),
					"alg":          a.name,
					"iters":        d(res.Iterations),
					"rounds":       d(res.Metrics.Rounds),
					"|I|":          d(len(res.Set)),
					"maxSpace/cap": f2(float64(res.Metrics.MaxSpace) / cap),
					"violations":   d(res.Metrics.Violations),
				},
			})
		}
	}
	t.Notes = append(t.Notes,
		"Shape check: the hungry-greedy algorithms use few sampling iterations (constant-ish in n for fixed "+
			"c, µ), while Luby's iteration count grows with log n.")
	return t, nil
}

func runFig1Clique(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.Clique",
		Title:      "Maximal clique (Appendix B: hungry-greedy on the implicit complement)",
		PaperClaim: "O(1/µ) rounds, O(n^{1+µ}) space; the complement graph is never materialized",
		Columns:    []string{"m", "iters", "rounds", "|K|", "planted", "maxSpace/cap", "violations"},
	}
	confs := []struct {
		n, plant int
		c        float64
	}{
		{500, 8, 0.3}, {1000, 12, 0.3}, {2000, 16, 0.25},
	}
	if rc.Quick {
		confs = confs[:1]
		confs[0].n = 200
	}
	r := rng.New(rc.Seed)
	mu := 0.25
	for _, cf := range confs {
		g := graph.Density(cf.n, cf.c, r.Split())
		graph.PlantClique(g, cf.plant, r.Split())
		res, err := core.MaximalClique(g, rc.params(mu, r.Uint64()))
		if err != nil {
			return nil, err
		}
		if !graph.IsMaximalClique(g, res.Clique) {
			return nil, errInvalid("maximal clique")
		}
		t.Observe(res.Metrics)
		cap := math.Pow(float64(cf.n), 1+mu)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d c=%.2f µ=%.2f planted=%d", cf.n, cf.c, mu, cf.plant),
			Cells: map[string]string{
				"m":            d(g.M()),
				"iters":        d(res.Iterations),
				"rounds":       d(res.Metrics.Rounds),
				"|K|":          d(len(res.Clique)),
				"planted":      d(cf.plant),
				"maxSpace/cap": f2(float64(res.Metrics.MaxSpace) / cap),
				"violations":   d(res.Metrics.Violations),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Space stays O(n^{1+µ}) even though the complement graph has Θ(n²) edges — the point of the "+
			"relabeling scheme. The found clique is maximal but need not contain the planted one.")
	return t, nil
}
