package bench

import (
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/setcover"
)

// The decay experiment reproduces the paper's central lemmas as measured
// trajectories rather than aggregates: Lemma 2.2 (|U_{r+1}| ≤ 2|U_r|/n^µ
// for Algorithm 1), Lemma 5.4 (per-iteration edge-kill for Algorithm 4),
// Lemma C.1 (constant-factor decay at η = Θ(n)), and Lemma A.2 (edge decay
// for Algorithm 6).

func init() {
	register(Experiment{
		ID:    "F3.Decay",
		Title: "Per-iteration decay trajectories (Lemmas 2.2, 5.4, A.2, C.1)",
		Run:   runDecay,
	})
}

func fmtHistory(initial int64, h []int64) string {
	parts := []string{d64(initial)}
	for _, v := range h {
		parts = append(parts, d64(v))
	}
	return strings.Join(parts, " → ")
}

func decayFactor(initial int64, h []int64) float64 {
	// Geometric mean per-iteration shrink factor over the strictly
	// decreasing prefix (the final step to zero is excluded: it reflects
	// the p = 1 endgame, not the sampling decay).
	prev := float64(initial)
	prod := 1.0
	steps := 0
	for _, v := range h {
		if v == 0 {
			break
		}
		prod *= float64(v) / prev
		prev = float64(v)
		steps++
	}
	if steps == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(steps))
}

func runDecay(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F3.Decay",
		Title:      "Alive-set decay per sampling iteration",
		PaperClaim: "Lemma 2.2: |U_{r+1}| ≤ 2|U_r|/n^µ; Lemma 5.4: ∆ shrinks by n^{µ/4}; Lemma C.1: E|E_{i+1}| ≤ 0.975|E_i| at η = Θ(n)",
		Columns:    []string{"trajectory", "mean shrink/iter", "lemma bound/iter"},
	}
	n := 2000
	if rc.Quick {
		n = 500
	}
	r := rng.New(rc.Seed)
	mu := 0.1

	// Algorithm 1 (vertex cover): |U_r| history.
	g := graph.Density(n, 0.45, r.Split())
	w := make([]float64, g.N)
	wr := r.Split()
	for i := range w {
		w[i] = wr.UniformWeight(1, 10)
	}
	inst := setcover.FromVertexCover(g, w)
	cres, err := core.RLRSetCover(inst, rc.params(mu, r.Uint64()),
		core.CoverOptions{VertexCoverMode: true})
	if err != nil {
		return nil, err
	}
	t.Observe(cres.Metrics)
	t.Rows = append(t.Rows, Row{
		Config: cfg("Alg 1 |U_r|, n=%d m=%d µ=%.2f", n, g.M(), mu),
		Cells: map[string]string{
			"trajectory":       fmtHistory(int64(g.M()), cres.History),
			"mean shrink/iter": f3(decayFactor(int64(g.M()), cres.History)),
			"lemma bound/iter": f3(2 / math.Pow(float64(n), mu)),
		},
	})

	// Algorithm 4 (matching): |E_i| history at η = n^{1+µ}.
	g2 := graph.Density(n, 0.45, r.Split())
	g2.AssignUniformWeights(r.Split(), 1, 100)
	mres, err := core.RLRMatching(g2, rc.params(mu, r.Uint64()), core.MatchingOptions{})
	if err != nil {
		return nil, err
	}
	t.Observe(mres.Metrics)
	t.Rows = append(t.Rows, Row{
		Config: cfg("Alg 4 |E_i|, n=%d m=%d µ=%.2f", n, g2.M(), mu),
		Cells: map[string]string{
			"trajectory":       fmtHistory(int64(g2.M()), mres.History),
			"mean shrink/iter": f3(decayFactor(int64(g2.M()), mres.History)),
			"lemma bound/iter": "n/a (Lemma 5.4 bounds ∆, not |E|)",
		},
	})

	// Appendix C (matching at η = Θ(n)): slower, constant-factor decay.
	lres, err := core.RLRMatching(g2, rc.params(0, r.Uint64()),
		core.MatchingOptions{Eta: g2.N})
	if err != nil {
		return nil, err
	}
	t.Observe(lres.Metrics)
	t.Rows = append(t.Rows, Row{
		Config: cfg("App C |E_i|, η=n, n=%d m=%d", n, g2.M()),
		Cells: map[string]string{
			"trajectory":       fmtHistory(int64(g2.M()), lres.History),
			"mean shrink/iter": f3(decayFactor(int64(g2.M()), lres.History)),
			"lemma bound/iter": "0.975 (in expectation)",
		},
	})

	// Algorithm 6 (MIS): |E_k| history.
	ires, err := core.MISFast(g2, rc.params(mu, r.Uint64()))
	if err != nil {
		return nil, err
	}
	t.Observe(ires.Metrics)
	if len(ires.History) > 0 {
		t.Rows = append(t.Rows, Row{
			Config: cfg("Alg 6 |E_k|, n=%d m=%d µ=%.2f", n, g2.M(), mu),
			Cells: map[string]string{
				"trajectory":       fmtHistory(ires.History[0], ires.History[1:]),
				"mean shrink/iter": f3(decayFactor(ires.History[0], ires.History[1:])),
				"lemma bound/iter": f3(2 / math.Pow(float64(n), mu/8)),
			},
		})
	}

	t.Notes = append(t.Notes,
		"Measured shrink factors sit well below the lemma bounds (the lemmas are worst-case w.h.p. "+
			"statements); the µ = 0 variant decays by a much milder constant factor per iteration, exactly "+
			"the Lemma C.1 vs Lemma 5.4 contrast that separates O(log n) from O(c/µ) iterations.")
	return t, nil
}
