package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
)

// The workload experiment runs the headline algorithms on the skewed graph
// families that motivate the paper (social-network-like degree
// distributions): preferential attachment and R-MAT, alongside the G(n,m)
// family used in the Figure 1 sweeps. Heavy-tailed degrees are the stress
// case for the hungry-greedy technique (few very heavy vertices) and for
// the colouring partition (Lemma 6.1's concentration).

func init() {
	register(Experiment{
		ID:    "F2.Workloads",
		Title: "Robustness on skewed workloads (preferential attachment, R-MAT)",
		Run:   runWorkloads,
	})
}

func runWorkloads(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F2.Workloads",
		Title:      "Headline algorithms on skewed graph families",
		PaperClaim: "the guarantees are worst-case: they must hold on heavy-tailed inputs too",
		Columns: []string{"family", "m", "∆", "match ratio", "match iters",
			"MIS iters", "colours/∆", "violations"},
	}
	n := 2000
	if rc.Quick {
		n = 400
	}
	r := rng.New(rc.Seed)
	scale := 11
	if rc.Quick {
		scale = 9
	}
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"G(n,m) c=0.3", graph.Density(n, 0.3, r.Split())},
		{"pref-attach k=5", graph.PreferentialAttachment(n, 5, r.Split())},
		{fmt.Sprintf("R-MAT scale=%d", scale), graph.RMATDefault(scale, 8*n, r.Split())},
	}
	mu := 0.2
	for _, fam := range families {
		g := fam.g
		g.AssignUniformWeights(r.Split(), 1, 100)
		mres, err := core.RLRMatching(g, rc.params(mu, r.Uint64()), core.MatchingOptions{})
		if err != nil {
			return nil, err
		}
		if !graph.IsMatching(g, mres.Edges) {
			return nil, errInvalid("matching on " + fam.name)
		}
		ps := graph.MatchingWeight(g, seq.LocalRatioMatching(g))
		ires, err := core.MISFast(g, rc.params(mu, r.Uint64()))
		if err != nil {
			return nil, err
		}
		if !graph.IsMaximalIndependentSet(g, ires.Set) {
			return nil, errInvalid("MIS on " + fam.name)
		}
		cres, err := core.VertexColouring(g, rc.params(mu, r.Uint64()))
		if err != nil {
			return nil, err
		}
		if !graph.IsProperVertexColouring(g, cres.Colours) {
			return nil, errInvalid("colouring on " + fam.name)
		}
		t.Observe(mres.Metrics)
		t.Observe(ires.Metrics)
		t.Observe(cres.Metrics)
		violations := mres.Metrics.Violations + ires.Metrics.Violations + cres.Metrics.Violations
		t.Rows = append(t.Rows, Row{
			Config: cfg("%s n=%d", fam.name, g.N),
			Cells: map[string]string{
				"family":      fam.name,
				"m":           d(g.M()),
				"∆":           d(g.MaxDegree()),
				"match ratio": f3(mres.Weight / ps),
				"match iters": d(mres.Iterations),
				"MIS iters":   d(ires.Iterations),
				"colours/∆":   f3(float64(cres.NumColours) / float64(g.MaxDegree())),
				"violations":  d(violations),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Validity and approximation hold on every family; heavy-tailed degrees (∆ ≫ average) do not break "+
			"the sampling arguments — if anything the hungry-greedy phases finish faster because the heavy "+
			"set is small.")
	return t, nil
}
