package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
)

func init() {
	register(Experiment{
		ID:    "F1.Match",
		Title: "Weighted matching: 2-approx, O(c/µ) rounds, O(n^{1+µ}) space (Theorem 5.6)",
		Run:   runFig1Matching,
	})
	register(Experiment{
		ID:    "F1.MatchLin",
		Title: "Weighted matching with O(n) space: O(log n) rounds (Appendix C)",
		Run:   runFig1MatchingLinear,
	})
	register(Experiment{
		ID:    "F1.BMatch",
		Title: "Weighted b-matching: (3−2/b+2ε)-approx (Appendix D)",
		Run:   runFig1BMatching,
	})
}

func runFig1Matching(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.Match",
		Title:      "Weighted matching (randomized local ratio, Algorithm 4)",
		PaperClaim: "approximation 2, rounds O(c/µ), space per machine O(n^{1+µ})",
		Columns: []string{"m", "machines", "iters", "rounds", "maxSpace/cap",
			"w(ALG)", "w(PS-seq)", "w(greedy)", "w(filter-8apx)", "ratio vs best-seq", "violations"},
	}
	ns := []int{1000, 3000}
	cs := []float64{0.15, 0.3, 0.45}
	mus := []float64{0.1, 0.2, 0.3}
	if rc.Quick {
		ns, cs, mus = []int{300}, []float64{0.3}, []float64{0.2}
	}
	r := rng.New(rc.Seed)
	for _, n := range ns {
		for _, c := range cs {
			for _, mu := range mus {
				g := graph.Density(n, c, r.Split())
				g.AssignUniformWeights(r.Split(), 1, 100)
				res, err := core.RLRMatching(g, rc.params(mu, r.Uint64()), core.MatchingOptions{})
				if err != nil {
					return nil, err
				}
				ps := graph.MatchingWeight(g, seq.LocalRatioMatching(g))
				gr := graph.MatchingWeight(g, seq.GreedyMatching(g))
				lay, err := core.FilteringWeightedMatching(g, rc.params(mu, r.Uint64()))
				if err != nil {
					return nil, err
				}
				best := math.Max(ps, gr)
				cap := math.Pow(float64(n), 1+mu)
				t.Observe(res.Metrics)
				t.Observe(lay.Metrics)
				t.Rows = append(t.Rows, Row{
					Config: cfg("n=%d c=%.2f µ=%.2f", n, c, mu),
					Cells: map[string]string{
						"m":                 d(g.M()),
						"machines":          d(res.Metrics.Machines),
						"iters":             d(res.Iterations),
						"rounds":            d(res.Metrics.Rounds),
						"maxSpace/cap":      f2(float64(res.Metrics.MaxSpace) / cap),
						"w(ALG)":            f2(res.Weight),
						"w(PS-seq)":         f2(ps),
						"w(greedy)":         f2(gr),
						"w(filter-8apx)":    f2(lay.Weight),
						"ratio vs best-seq": f3(res.Weight / best),
						"violations":        d(res.Metrics.Violations),
					},
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"Shape check: both ALG and the sequential baselines are 2-approximations, so 'ratio vs best-seq' should sit near 1; "+
			"iterations should grow roughly linearly in c/µ; maxSpace/cap stays O(1). "+
			"'w(filter-8apx)' is the prior-work layered filtering baseline of Figure 1 — the paper's algorithm should win or tie.")
	return t, nil
}

func runFig1MatchingLinear(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.MatchLin",
		Title:      "Weighted matching with η = Θ(n) space (Appendix C)",
		PaperClaim: "2-approx, O(log n) rounds, O(n) space per machine",
		Columns:    []string{"m", "iters", "iters/log2(n)", "rounds", "ratio vs PS-seq"},
	}
	ns := []int{500, 1000, 2000, 4000}
	if rc.Quick {
		ns = []int{300, 600}
	}
	r := rng.New(rc.Seed)
	c := 0.3
	for _, n := range ns {
		g := graph.Density(n, c, r.Split())
		g.AssignUniformWeights(r.Split(), 1, 100)
		res, err := core.RLRMatching(g, rc.params(0, r.Uint64()), core.MatchingOptions{Eta: n})
		if err != nil {
			return nil, err
		}
		ps := graph.MatchingWeight(g, seq.LocalRatioMatching(g))
		t.Observe(res.Metrics)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d c=%.2f η=n", n, c),
			Cells: map[string]string{
				"m":               d(g.M()),
				"iters":           d(res.Iterations),
				"iters/log2(n)":   f2(float64(res.Iterations) / math.Log2(float64(n))),
				"rounds":          d(res.Metrics.Rounds),
				"ratio vs PS-seq": f3(res.Weight / ps),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Shape check: iters/log2(n) should be roughly flat across n (Theorem C.2's O(log n) iterations).")
	return t, nil
}

func runFig1BMatching(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.BMatch",
		Title:      "Weighted b-matching (ε-adjusted local ratio, Algorithm 7)",
		PaperClaim: "approximation 3−2/b+2ε, O(c/µ) rounds, O(b·log(1/ε)·n^{1+µ}) space",
		Columns:    []string{"b", "iters", "rounds", "w(ALG)", "w(seq-LR)", "ratio vs seq", "bound 3-2/b+2ε"},
	}
	n, c, mu, eps := 600, 0.3, 0.2, 0.2
	if rc.Quick {
		n = 200
	}
	r := rng.New(rc.Seed)
	g := graph.Density(n, c, r.Split())
	g.AssignUniformWeights(r.Split(), 1, 100)
	bs := []int{1, 2, 3, 4, 8}
	if rc.Quick {
		bs = []int{1, 2}
	}
	for _, bcap := range bs {
		bf := func(int) int { return bcap }
		res, err := core.BMatching(g, rc.params(mu, r.Uint64()), core.BMatchingOptions{B: bf, Eps: eps})
		if err != nil {
			return nil, err
		}
		if !graph.IsBMatching(g, res.Edges, bf) {
			return nil, errInvalid("b-matching")
		}
		sw := graph.MatchingWeight(g, seq.LocalRatioBMatching(g, bf, eps))
		t.Observe(res.Metrics)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d c=%.2f µ=%.2f ε=%.2f b=%d", n, c, mu, eps, bcap),
			Cells: map[string]string{
				"b":              d(bcap),
				"iters":          d(res.Iterations),
				"rounds":         d(res.Metrics.Rounds),
				"w(ALG)":         f2(res.Weight),
				"w(seq-LR)":      f2(sw),
				"ratio vs seq":   f3(res.Weight / sw),
				"bound 3-2/b+2ε": f2(3 - 2/math.Max(2, float64(bcap)) + 2*eps),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Shape check: weight grows with b (more capacity), the MR weight tracks the sequential ε-adjusted local ratio, "+
			"and b=1 reduces to the matching algorithm's quality.")
	return t, nil
}

type errInvalid string

func (e errInvalid) Error() string { return "bench: invalid solution from " + string(e) }
