package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"A1.SampleSize", "A2.GroupSize", "A3.EpsAdjust", "A4.Broadcast", "A5.Bucketing",
		"F1.BMatch", "F1.Clique", "F1.ECol", "F1.MIS", "F1.Match", "F1.MatchLin",
		"F1.SCf", "F1.SClnD", "F1.VC", "F1.VCol", "F2.Workloads", "F3.Decay", "R1.Variance",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("F1.Match"); !ok {
		t.Fatal("F1.Match missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestAllExperimentsQuickMode(t *testing.T) {
	// Every experiment must run end to end in quick mode and render a
	// non-empty markdown table.
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(RunConfig{Seed: 12345, Quick: true, Workers: 2})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: no rows", e.ID)
			}
			for _, row := range tab.Rows {
				for _, col := range tab.Columns {
					if row.Cells[col] == "" {
						t.Fatalf("%s: empty cell %q in row %q", e.ID, col, row.Config)
					}
				}
			}
			var buf bytes.Buffer
			if err := tab.WriteMarkdown(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, tab.ID) || !strings.Contains(out, "| config |") {
				t.Fatalf("%s: malformed markdown:\n%s", e.ID, out)
			}
		})
	}
}

func TestMarkdownEscaping(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "t",
		Columns: []string{"a"},
		Rows:    []Row{{Config: "c", Cells: map[string]string{"a": "1"}}},
		Notes:   []string{"note"},
	}
	var buf bytes.Buffer
	if err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### X", "| config | a |", "| c | 1 |", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
