package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
)

func init() {
	register(Experiment{
		ID:    "F1.VC",
		Title: "Weighted vertex cover: 2-approx, O(c/µ) rounds, O(n^{1+µ}) space (Theorem 2.4, f=2)",
		Run:   runFig1VertexCover,
	})
	register(Experiment{
		ID:    "F1.SCf",
		Title: "Weighted set cover: f-approx, O((c/µ)²) rounds, O(f·n^{1+µ}) space (Theorem 2.4)",
		Run:   runFig1SetCoverF,
	})
	register(Experiment{
		ID:    "F1.SClnD",
		Title: "Weighted set cover: (1+ε)·ln∆-approx (Theorem 4.6)",
		Run:   runFig1SetCoverLnDelta,
	})
}

func runFig1VertexCover(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.VC",
		Title:      "Weighted vertex cover (Algorithm 1 with the f=2 fast path)",
		PaperClaim: "approximation 2, rounds O(c/µ), space per machine O(n^{1+µ})",
		Columns: []string{"m", "machines", "iters", "rounds", "w(ALG)", "LP lower bound",
			"ratio vs LB", "maxSpace/cap", "violations"},
	}
	ns := []int{1000, 3000}
	cs := []float64{0.15, 0.3, 0.45}
	mus := []float64{0.1, 0.2, 0.3}
	if rc.Quick {
		ns, cs, mus = []int{300}, []float64{0.3}, []float64{0.2}
	}
	r := rng.New(rc.Seed)
	for _, n := range ns {
		for _, c := range cs {
			for _, mu := range mus {
				g := graph.Density(n, c, r.Split())
				w := make([]float64, g.N)
				wr := r.Split()
				for i := range w {
					w[i] = wr.UniformWeight(1, 10)
				}
				inst := setcover.FromVertexCover(g, w)
				res, err := core.RLRSetCover(inst, rc.params(mu, r.Uint64()),
					core.CoverOptions{VertexCoverMode: true})
				if err != nil {
					return nil, err
				}
				cap := 2 * math.Pow(float64(n), 1+mu) // f·n^{1+µ}, f=2
				t.Observe(res.Metrics)
				t.Rows = append(t.Rows, Row{
					Config: cfg("n=%d c=%.2f µ=%.2f", n, c, mu),
					Cells: map[string]string{
						"m":              d(g.M()),
						"machines":       d(res.Metrics.Machines),
						"iters":          d(res.Iterations),
						"rounds":         d(res.Metrics.Rounds),
						"w(ALG)":         f2(res.Weight),
						"LP lower bound": f2(res.LowerBound),
						"ratio vs LB":    f3(res.Weight / res.LowerBound),
						"maxSpace/cap":   f2(float64(res.Metrics.MaxSpace) / cap),
						"violations":     d(res.Metrics.Violations),
					},
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"'LP lower bound' is the local ratio certificate Σε_j ≤ OPT, so 'ratio vs LB' ≤ 2 certifies the "+
			"2-approximation end to end; iterations grow ~linearly in c/µ.")
	return t, nil
}

func runFig1SetCoverF(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.SCf",
		Title:      "Weighted set cover, f-approximation (Algorithm 1, general f)",
		PaperClaim: "approximation f, rounds O((c/µ)²), space per machine O(f·n^{1+µ})",
		Columns: []string{"f", "m", "iters", "rounds", "rounds/iter", "w(ALG)",
			"f·LB", "ratio vs LB", "violations"},
	}
	n := 400
	mu := 0.2
	fs := []int{2, 3, 4, 6}
	if rc.Quick {
		n, fs = 100, []int{2, 3}
	}
	r := rng.New(rc.Seed)
	for _, f := range fs {
		m := int(math.Pow(float64(n), 1.4))
		inst := setcover.RandomFrequency(n, m, f, 10, r.Split())
		res, err := core.RLRSetCover(inst, rc.params(mu, r.Uint64()), core.CoverOptions{})
		if err != nil {
			return nil, err
		}
		ff := float64(inst.MaxFrequency())
		t.Observe(res.Metrics)
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d m=%d µ=%.2f f=%d", n, m, mu, f),
			Cells: map[string]string{
				"f":           d(inst.MaxFrequency()),
				"m":           d(m),
				"iters":       d(res.Iterations),
				"rounds":      d(res.Metrics.Rounds),
				"rounds/iter": f2(float64(res.Metrics.Rounds) / float64(res.Iterations)),
				"w(ALG)":      f2(res.Weight),
				"f·LB":        f2(ff * res.LowerBound),
				"ratio vs LB": f3(res.Weight / res.LowerBound),
				"violations":  d(res.Metrics.Violations),
			},
		})
	}
	t.Notes = append(t.Notes,
		"'ratio vs LB' ≤ f certifies the f-approximation; the general path pays tree-broadcast rounds per "+
			"iteration (the (c/µ)² of Theorem 2.4) — compare 'rounds/iter' here against F1.VC's fast path.")
	return t, nil
}

func runFig1SetCoverLnDelta(rc RunConfig) (*Table, error) {
	t := &Table{
		ID:         "F1.SClnD",
		Title:      "Weighted set cover, (1+ε)·H_∆ approximation (Algorithm 3)",
		PaperClaim: "approximation (1+ε)·ln∆, rounds O(log(Φ)·log(∆·wmax/wmin)/(µ²·log²m)), space O(m^{1+µ})",
		Columns: []string{"n", "m", "∆", "iters", "rounds", "w(ALG)", "w(greedy-seq)",
			"ratio vs greedy", "(1+ε)H_∆", "violations"},
	}
	eps := 0.2
	confs := []struct{ n, m, delta int }{
		{2000, 150, 10},
		{4000, 300, 16},
		{8000, 400, 25},
	}
	if rc.Quick {
		confs = confs[:1]
		confs[0] = struct{ n, m, delta int }{500, 80, 8}
	}
	r := rng.New(rc.Seed)
	for _, cf := range confs {
		inst := setcover.RandomSized(cf.n, cf.m, cf.delta, 8, r.Split())
		res, err := core.HGSetCover(inst, rc.params(0.3, r.Uint64()), core.HGCoverOptions{Eps: eps})
		if err != nil {
			return nil, err
		}
		greedy := inst.Weight(seq.GreedySetCover(inst, 0))
		t.Observe(res.Metrics)
		hd := 0.0
		for i := 1; i <= inst.MaxSetSize(); i++ {
			hd += 1 / float64(i)
		}
		t.Rows = append(t.Rows, Row{
			Config: cfg("n=%d m=%d ∆≈%d ε=%.2f µ=0.3", cf.n, cf.m, cf.delta, eps),
			Cells: map[string]string{
				"n":               d(cf.n),
				"m":               d(cf.m),
				"∆":               d(inst.MaxSetSize()),
				"iters":           d(res.Iterations),
				"rounds":          d(res.Metrics.Rounds),
				"w(ALG)":          f2(res.Weight),
				"w(greedy-seq)":   f2(greedy),
				"ratio vs greedy": f3(res.Weight / greedy),
				"(1+ε)H_∆":        f2((1 + eps) * hd),
				"violations":      d(res.Metrics.Violations),
			},
		})
	}
	t.Notes = append(t.Notes,
		"Sequential greedy is an H_∆-approximation; 'ratio vs greedy' near 1 (and certainly ≤ (1+ε)·"+
			"H_∆/1) shows the MapReduce ε-greedy matches the greedy benchmark in the m ≪ n regime.")
	return t, nil
}
