// Package bench is the experiment harness that regenerates the paper's
// Figure 1 — its single results exhibit — empirically. One Experiment exists
// per Figure 1 row (and per appendix theorem); each runs the corresponding
// MapReduce algorithm on generated workloads across a parameter sweep and
// reports, per configuration:
//
//   - the measured approximation quality against a baseline or certificate,
//   - the measured number of MapReduce rounds against the theorem's bound
//     shape,
//   - the measured per-machine space high-water mark against the cap, and
//   - the communication volume.
//
// The cmd/mrbench binary drives these experiments and renders the tables
// recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mpc"
	"repro/internal/obs"
)

// Row is one measured configuration of an experiment.
type Row struct {
	// Config describes the parameter point, e.g. "n=1000 c=0.3 mu=0.2".
	Config string
	// Cells are the measured values keyed by column name.
	Cells map[string]string
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment id from DESIGN.md (e.g. "F1.Match").
	ID string
	// Title is the Figure 1 row being reproduced.
	Title string
	// PaperClaim is the bound the paper states for this row.
	PaperClaim string
	// Columns is the column order.
	Columns []string
	// Rows are the measurements.
	Rows []Row
	// Notes carries caveats (failure rates, substitutions).
	Notes []string

	// Per-experiment scheduling-activity aggregate, fed by Observe: across
	// every algorithm run of the experiment, the mean and max number of
	// machines that actually ran per simulator round (RoundStat.Active /
	// Metrics.ActiveSum). Under sparse scheduling this is the experiment's
	// measured per-round work, the quantity the paper's geometric decay
	// shrinks; mrbench reports it per experiment in text and JSON output.
	activeSum int64
	roundSum  int64
	activeMax int
}

// Observe folds one run's measured scheduling activity into the table's
// per-experiment aggregate. Experiments call it once per algorithm run.
func (t *Table) Observe(m mpc.Metrics) {
	t.activeSum += m.ActiveSum
	t.roundSum += int64(m.Rounds)
	if m.ActiveMax > t.activeMax {
		t.activeMax = m.ActiveMax
	}
}

// ActiveMeanPerRound returns the mean number of machines that ran per round
// across every observed run (0 if nothing was observed).
func (t *Table) ActiveMeanPerRound() float64 {
	if t.roundSum == 0 {
		return 0
	}
	return float64(t.activeSum) / float64(t.roundSum)
}

// ActiveMaxPerRound returns the largest single-round machine activity seen
// across every observed run.
func (t *Table) ActiveMaxPerRound() int { return t.activeMax }

// RunConfig carries the knobs shared by every experiment run.
type RunConfig struct {
	// Seed is the root random seed; runs are reproducible given Seed.
	Seed uint64
	// Quick shrinks the parameter sweeps (used by CI).
	Quick bool
	// Workers is the simulator round-executor pool size, forwarded to
	// core.Params.Workers: 0 or 1 sequential, > 1 that many goroutines,
	// < 0 one per CPU. Results are identical for every setting.
	Workers int
	// Shards partitions every cluster across this many in-process shards
	// over the in-memory transport, forwarded to core.Params.Shards.
	// Results are bit-identical for every setting; 0 or 1 runs unsharded.
	Shards int
	// Sink, when non-nil, receives the wall-clock round spans of every
	// algorithm run (core.Params.Sink) — mrbench attaches a phase
	// accumulator per experiment to report mean compute/merge/barrier time
	// per round. Purely observational: results are bit-identical with or
	// without it.
	Sink obs.TraceSink
}

// params builds the core.Params for one algorithm run: the experiment's µ
// and per-run seed plus the harness-wide executor, sharding and tracing
// knobs. Every experiment goes through here so a configured trace sink
// covers the whole sweep.
func (rc RunConfig) params(mu float64, seed uint64) core.Params {
	p := core.Params{Mu: mu, Seed: seed, Workers: rc.Workers, Shards: rc.Shards}
	if rc.Sink != nil {
		p.Sink = rc.Sink
	}
	return p
}

// Experiment produces a Table given a run configuration.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) (*Table, error)
}

// registry of all experiments, populated by the fig1_*.go files.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// WriteMarkdown renders t as a GitHub-flavoured markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.PaperClaim != "" {
		if _, err := fmt.Fprintf(w, "Paper claim: %s\n\n", t.PaperClaim); err != nil {
			return err
		}
	}
	header := append([]string{"config"}, t.Columns...)
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, 0, len(header))
		cells = append(cells, row.Config)
		for _, col := range t.Columns {
			cells = append(cells, row.Cells[col])
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n%s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func f2(v float64) string                           { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string                           { return fmt.Sprintf("%.3f", v) }
func d(v int) string                                { return fmt.Sprintf("%d", v) }
func d64(v int64) string                            { return fmt.Sprintf("%d", v) }
func cfg(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }
