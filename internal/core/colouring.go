package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/seq"
)

// ColouringResult is the output of VertexColouring and EdgeColouring.
type ColouringResult struct {
	// Colours assigns a colour to every vertex (VertexColouring) or edge
	// (EdgeColouring). Colours are globally distinct across groups: colour
	// = group * (maxGroupColours) + local colour.
	Colours []int
	// NumColours is the number of distinct colours used.
	NumColours int
	// Groups is κ, the number of random groups.
	Groups int
	// MaxGroupDegree is the largest maximum degree of any group subgraph.
	MaxGroupDegree int
	// Metrics are the measured MapReduce costs.
	Metrics mpc.Metrics
}

// colouringGroups returns κ = n^{(c−µ)/2} clamped to [1, n], with c
// estimated from the instance (m = n^{1+c}).
func colouringGroups(n, m int, mu float64) int {
	if n < 2 || m == 0 {
		return 1
	}
	c := math.Log(float64(m))/math.Log(float64(n)) - 1
	if c < mu {
		return 1
	}
	k := int(math.Round(math.Pow(float64(n), (c-mu)/2)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// VertexColouring is Algorithm 5: (1+o(1))∆ vertex colouring in O(1) rounds
// (Theorem 6.4). Vertices are randomly partitioned into κ = n^{(c−µ)/2}
// groups; each group's induced subgraph is routed to its own machine, which
// colours it greedily with ∆_i + 1 colours; the global colour of v is the
// pair (group, local colour). Lemma 6.1 bounds ∆_i ≤ (1+o(1))∆/κ and
// Lemma 6.2 bounds each group's edge count by 13·n^{1+µ} w.h.p., so the
// total colour count is (1+o(1))∆.
func VertexColouring(g *graph.Graph, p Params) (*ColouringResult, error) {
	n, m := g.N, g.M()
	if n == 0 {
		return &ColouringResult{Colours: []int{}}, nil
	}
	etaWords := eta(n, p.Mu, 8)
	kappa := colouringGroups(n, m, p.Mu)
	// Machine 0 coordinates; group i is coloured on machine 1+i; edges are
	// initially spread over all machines.
	M := 1 + kappa
	if dm := dataMachines(3*m, 4*etaWords); dm > M {
		M = dm
	}
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	r := rng.New(p.Seed)
	edgeOwner := func(id int) int { return 1 + id%(M-1) }
	groupMachine := func(grp int) int { return 1 + grp%(M-1) }

	ownedEdges := partitionByOwner(m, M, edgeOwner)
	resident := make([]int, M)
	for id := 0; id < m; id++ {
		resident[edgeOwner(id)] += 3
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}

	// Group assignment is a shared hash (every machine can evaluate it), so
	// no communication is needed to learn a vertex's group.
	group := make([]int, n)
	for v := 0; v < n; v++ {
		group[v] = r.Intn(kappa)
	}

	// Route round: every monochromatic edge goes to its group's machine.
	// The per-group edge lists are assembled up front in machine order,
	// then edge order — the order they arrive in — because groups are
	// shared destinations that concurrent senders could not append to. The
	// same pass arms the machines that will send (Arm deduplicates).
	groupEdges := make([][]graph.Edge, kappa)
	for machine := 1; machine < M; machine++ {
		for _, id := range ownedEdges[machine] {
			e := g.Edges[id]
			if group[e.U] == group[e.V] {
				groupEdges[group[e.U]] = append(groupEdges[group[e.U]], e)
				cluster.Arm(machine)
			}
		}
	}
	err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for _, id := range ownedEdges[machine] {
			e := g.Edges[id]
			if group[e.U] == group[e.V] {
				out.SendInts(groupMachine(group[e.U]), int64(e.U), int64(e.V))
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Failure check (Line 4): any group with more than 13·n^{1+µ} edges
	// fails the algorithm (a w.h.p.-never event).
	capEdges := int(math.Ceil(13 * math.Pow(float64(n), 1+p.Mu)))
	for i, ge := range groupEdges {
		if len(ge) > capEdges {
			return nil, fmt.Errorf("core: VertexColouring group %d has %d > 13n^{1+µ} = %d edges", i, len(ge), capEdges)
		}
	}

	// Each group machine colours its induced subgraph greedily; one round
	// of local computation plus one output round. The groups are
	// independent (each writes only its own vertices' colours), so the
	// colouring runs under the cluster's executor.
	colours := make([]int, n)
	localColour := make([]int, n)
	groupDeg := make([]int, kappa)
	groupMaxLocal := make([]int, kappa)
	cluster.Exec().Execute(kappa, func(i int) {
		sub, toLocal := induced(g.N, groupEdges[i], func(v int) bool { return group[v] == i })
		col := seq.GreedyVertexColouring(sub, nil)
		groupDeg[i] = sub.MaxDegree()
		for v := 0; v < n; v++ {
			if group[v] == i {
				localColour[v] = col[toLocal[v]]
				if localColour[v] > groupMaxLocal[i] {
					groupMaxLocal[i] = localColour[v]
				}
			}
		}
	})
	maxGroupDeg, maxLocal := 0, 0
	for i := 0; i < kappa; i++ {
		if groupDeg[i] > maxGroupDeg {
			maxGroupDeg = groupDeg[i]
		}
		if groupMaxLocal[i] > maxLocal {
			maxLocal = groupMaxLocal[i]
		}
	}
	// Output round: group machines emit (v, group, local colour). A machine
	// hosting a group whose induced subgraph has no edges received no route
	// traffic, so every machine hosting any vertex's group is armed.
	for v := 0; v < n; v++ {
		cluster.Arm(groupMachine(group[v]))
	}
	err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for v := 0; v < n; v++ {
			if groupMachine(group[v]) == machine {
				out.SendInts(0, int64(v), int64(group[v]), int64(localColour[v]))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	stride := maxLocal + 1
	for v := 0; v < n; v++ {
		colours[v] = group[v]*stride + localColour[v]
	}

	return &ColouringResult{
		Colours:        colours,
		NumColours:     graph.NumColours(colours),
		Groups:         kappa,
		MaxGroupDegree: maxGroupDeg,
		Metrics:        cluster.Metrics(),
	}, nil
}

// EdgeColouring is the edge-colouring variant of Algorithm 5 (Remark 6.5,
// Theorem 6.6): edges are randomly partitioned into κ groups, each group is
// edge-coloured with ∆_i + 1 colours by the Misra–Gries algorithm, and the
// global colour of an edge is the pair (group, local colour).
func EdgeColouring(g *graph.Graph, p Params) (*ColouringResult, error) {
	n, m := g.N, g.M()
	if m == 0 {
		return &ColouringResult{Colours: []int{}}, nil
	}
	etaWords := eta(n, p.Mu, 8)
	kappa := colouringGroups(n, m, p.Mu)
	M := 1 + kappa
	if dm := dataMachines(3*m, 4*etaWords); dm > M {
		M = dm
	}
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	r := rng.New(p.Seed)
	edgeOwner := func(id int) int { return 1 + id%(M-1) }
	groupMachine := func(grp int) int { return 1 + grp%(M-1) }

	ownedEdges := partitionByOwner(m, M, edgeOwner)
	resident := make([]int, M)
	for id := 0; id < m; id++ {
		resident[edgeOwner(id)] += 3
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}

	group := make([]int, m)
	for id := 0; id < m; id++ {
		group[id] = r.Intn(kappa)
	}

	// Route round: each edge goes to its group's machine, so every machine
	// owning an edge sends and is armed. The output round needs no arming:
	// a machine emits only for groups with edges, and those received route
	// traffic. Group edge lists are assembled up front in arrival (machine,
	// then edge) order.
	groupIDs := make([][]int, kappa)
	for machine := 1; machine < M; machine++ {
		if len(ownedEdges[machine]) > 0 {
			cluster.Arm(machine)
		}
		for _, id := range ownedEdges[machine] {
			groupIDs[group[id]] = append(groupIDs[group[id]], id)
		}
	}
	err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for _, id := range ownedEdges[machine] {
			e := g.Edges[id]
			out.SendInts(groupMachine(group[id]), int64(e.U), int64(e.V))
		}
	})
	if err != nil {
		return nil, err
	}
	capEdges := int(math.Ceil(13 * math.Pow(float64(n), 1+p.Mu)))
	for i, ids := range groupIDs {
		if len(ids) > capEdges {
			return nil, fmt.Errorf("core: EdgeColouring group %d has %d > %d edges", i, len(ids), capEdges)
		}
	}

	// Per-group Misra–Gries colouring is independent across groups (each
	// writes only its own edges' colours), so it runs under the cluster's
	// executor.
	colours := make([]int, m)
	localColour := make([]int, m)
	groupDeg := make([]int, kappa)
	groupMaxLocal := make([]int, kappa)
	cluster.Exec().Execute(kappa, func(i int) {
		// Build the group subgraph on the same vertex ids (compacted).
		sub := graph.New(n)
		for _, id := range groupIDs[i] {
			e := g.Edges[id]
			sub.AddEdge(e.U, e.V, 1)
		}
		col := seq.MisraGries(sub)
		groupDeg[i] = sub.MaxDegree()
		for k, id := range groupIDs[i] {
			localColour[id] = col[k]
			if col[k] > groupMaxLocal[i] {
				groupMaxLocal[i] = col[k]
			}
		}
	})
	maxGroupDeg, maxLocal := 0, 0
	for i := 0; i < kappa; i++ {
		if groupDeg[i] > maxGroupDeg {
			maxGroupDeg = groupDeg[i]
		}
		if groupMaxLocal[i] > maxLocal {
			maxLocal = groupMaxLocal[i]
		}
	}
	// Output round.
	err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for id := 0; id < m; id++ {
			if groupMachine(group[id]) == machine {
				out.SendInts(0, int64(id), int64(group[id]), int64(localColour[id]))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	stride := maxLocal + 1
	for id := 0; id < m; id++ {
		colours[id] = group[id]*stride + localColour[id]
	}

	return &ColouringResult{
		Colours:        colours,
		NumColours:     graph.NumColours(colours),
		Groups:         kappa,
		MaxGroupDegree: maxGroupDeg,
		Metrics:        cluster.Metrics(),
	}, nil
}

// induced builds the subgraph induced by the vertices selected by keep,
// using the provided edge list, with compacted vertex ids. It returns the
// subgraph and the old→new vertex id map.
func induced(n int, edges []graph.Edge, keep func(v int) bool) (*graph.Graph, map[int]int) {
	toLocal := make(map[int]int)
	for v := 0; v < n; v++ {
		if keep(v) {
			toLocal[v] = len(toLocal)
		}
	}
	sub := graph.New(len(toLocal))
	for _, e := range edges {
		sub.AddEdge(toLocal[e.U], toLocal[e.V], e.W)
	}
	return sub, toLocal
}
