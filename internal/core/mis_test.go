package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMISSmallGraphs(t *testing.T) {
	r := rng.New(50)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(20)
		m := r.Intn(3 * n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := MIS(g, Params{Mu: 0.3, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Set) {
			t.Fatalf("trial %d: not an MIS", trial)
		}
	}
}

func TestMISFastSmallGraphs(t *testing.T) {
	r := rng.New(51)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(20)
		m := r.Intn(3 * n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := MISFast(g, Params{Mu: 0.3, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Set) {
			t.Fatalf("trial %d: not an MIS", trial)
		}
	}
}

func TestMISStructuredGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"star":     graph.Star(30),
		"path":     graph.Path(25),
		"cycle":    graph.Cycle(24),
		"complete": graph.Complete(15),
		"empty":    graph.New(10),
		"grid":     graph.Grid(5, 6),
	}
	for name, g := range cases {
		for _, algo := range []struct {
			name string
			f    func(*graph.Graph, Params) (*MISResult, error)
		}{{"MIS", MIS}, {"MISFast", MISFast}} {
			res, err := algo.f(g, Params{Mu: 0.25, Seed: 7})
			if err != nil {
				t.Fatalf("%s/%s: %v", algo.name, name, err)
			}
			if !graph.IsMaximalIndependentSet(g, res.Set) {
				t.Fatalf("%s/%s: not an MIS", algo.name, name)
			}
		}
	}
}

func TestMISStarPicksLeaves(t *testing.T) {
	// In a star, either the centre alone or all leaves form the MIS; both
	// are valid, but the set must have size 1 or n-1.
	g := graph.Star(20)
	res, err := MISFast(g, Params{Mu: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 && len(res.Set) != 19 {
		t.Fatalf("star MIS size %d", len(res.Set))
	}
}

func TestMISMediumDensity(t *testing.T) {
	r := rng.New(52)
	g := graph.Density(400, 0.25, r)
	res, err := MISFast(g, Params{Mu: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(g, res.Set) {
		t.Fatal("not an MIS")
	}
	if res.Metrics.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if res.Metrics.Violations != 0 {
		t.Fatalf("space violations: %d (max space %d)", res.Metrics.Violations, res.Metrics.MaxSpace)
	}
}

func TestMISDeterministic(t *testing.T) {
	r := rng.New(53)
	g := graph.Density(150, 0.3, r)
	a, err := MISFast(g, Params{Mu: 0.25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MISFast(g, Params{Mu: 0.25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Set) != len(b.Set) || a.Metrics.Rounds != b.Metrics.Rounds {
		t.Fatal("same seed differs")
	}
	for v := range a.Set {
		if !b.Set[v] {
			t.Fatal("sets differ")
		}
	}
}

func TestMISPowerLaw(t *testing.T) {
	g := graph.PreferentialAttachment(500, 4, rng.New(54))
	res, err := MISFast(g, Params{Mu: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(g, res.Set) {
		t.Fatal("not an MIS on power-law graph")
	}
}
