package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/seq"
)

// BMatchingOptions tunes BMatching.
type BMatchingOptions struct {
	// B gives each vertex's capacity; nil means b(v) = 2 everywhere.
	B func(v int) int
	// Eps is the ε of the ε-adjusted reductions (default 0.25): edges die
	// once reduced below a 1/(1+ε) fraction of their weight, giving the
	// (3 − 2/b + 2ε) approximation.
	Eps float64
	// Eta overrides the per-vertex sampling scale n^µ factor base (default
	// n^{1+µ} total budget as in Algorithm 7).
	Eta int
}

// BMatching is Algorithm 7: the ε-adjusted randomized local ratio
// (3 − 2/max{2,b} + 2ε)-approximation for maximum weight b-matching
// (Appendix D, Theorem D.3).
//
// Unlike the matching algorithm (which samples every edge i.i.d.), each
// vertex here samples a fixed number b(v)·ln(1/δ)·n^µ of its alive incident
// edges, δ = ε/(1+ε), and the central machine pushes up to b(v)·ln(1/δ)
// heaviest sampled edges per vertex, applying ε-adjusted reductions. This is
// what makes all non-heavy edges at the vertex die despite the 1/b(v)
// dilution of each reduction.
func BMatching(g *graph.Graph, p Params, opt BMatchingOptions) (*MatchingResult, error) {
	n, m := g.N, g.M()
	b := opt.B
	if b == nil {
		b = func(int) int { return 2 }
	}
	eps := opt.Eps
	if eps <= 0 {
		eps = 0.25
	}
	if m == 0 {
		return &MatchingResult{}, nil
	}
	delta := eps / (1 + eps)
	lnInvDelta := math.Log(1 / delta)
	if lnInvDelta < 1 {
		lnInvDelta = 1
	}
	etaWords := opt.Eta
	if etaWords <= 0 {
		etaWords = eta(n, p.Mu, 8)
	}
	nMu := math.Pow(float64(n), p.Mu)
	if nMu < 1 {
		nMu = 1
	}

	// Vertex-partitioned layout (Appendix D samples per vertex): owners
	// hold each vertex's incident edge ids with weights and alive bits.
	M := dataMachines(3*n+3*m, 4*etaWords)
	cluster := newCluster(M, etaWords*maxB(g, b), p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)
	vertexOwner := func(v int) int { return 1 + v%(M-1) }

	g.Build()
	owned := partitionByOwner(n, M, vertexOwner)
	resident := make([]int, M)
	for v := 0; v < n; v++ {
		resident[vertexOwner(v)] += 2 + 2*g.Degree(v)
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}
	cluster.SetResident(0, 2*n)

	lr := seq.NewBMatchingLocalRatio(g, b, eps)
	alive := make([]bool, m)
	aliveCount := int64(0)
	for id := range alive {
		if g.Edges[id].W > 0 {
			alive[id] = true
			aliveCount++
		}
	}

	res := &MatchingResult{}
	for aliveCount > 0 {
		if res.Iterations >= p.maxIter() {
			return nil, fmt.Errorf("core: BMatching exceeded %d iterations", p.maxIter())
		}
		res.Iterations++

		// Sampling round: vertex v samples b(v)·ln(1/δ)·n^µ alive incident
		// edges without replacement (all of them when |E_i| is small,
		// Line 7) and ships (edge id, weight) pairs to the central machine.
		smallGraph := float64(aliveCount) < 2*float64(maxB(g, b))*lnInvDelta*float64(etaWords)/nMu
		// Draw each vertex's edge sample machine by machine before the round
		// (machine order, then vertex order); the closures replay the
		// per-machine plans concurrently.
		perVertex := make(map[int][]int)
		// plan lists, per machine, every owned vertex with alive incident
		// edges — such a vertex always ships its (possibly header-only)
		// payload, which is what the word accounting charges.
		plan := make([][]int, M)
		for machine := 1; machine < M; machine++ {
			for _, v := range owned[machine] {
				var aliveIDs []int
				for _, id := range g.IncidentEdges(v) {
					if alive[id] {
						aliveIDs = append(aliveIDs, int(id))
					}
				}
				if len(aliveIDs) == 0 {
					continue
				}
				want := int(math.Ceil(float64(b(v)) * lnInvDelta * nMu))
				var chosen []int
				if smallGraph || want >= len(aliveIDs) {
					chosen = aliveIDs
				} else {
					for _, idx := range r.SampleWithoutReplacement(len(aliveIDs), want) {
						chosen = append(chosen, aliveIDs[idx])
					}
				}
				plan[machine] = append(plan[machine], v)
				perVertex[v] = chosen
			}
		}
		armPlanned(cluster, plan)
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for _, v := range plan[machine] {
				out.Begin(0)
				out.Int(int64(v))
				for _, id := range perVertex[v] {
					out.Int(int64(id))
				}
				out.End()
			}
		})
		if err != nil {
			return nil, err
		}

		// Central machine (Lines 11-17): per vertex, push up to
		// b(v)·ln(1/δ) heaviest sampled alive edges with ε-adjusted
		// reductions.
		vertices := make([]int, 0, len(perVertex))
		for v := range perVertex {
			vertices = append(vertices, v)
		}
		sort.Ints(vertices)
		changed := make(map[int]bool)
		for _, v := range vertices {
			budget := int(math.Ceil(float64(b(v)) * lnInvDelta))
			ids := append([]int(nil), perVertex[v]...)
			sort.Slice(ids, func(a, c int) bool {
				wa, wc := lr.Reduced(ids[a]), lr.Reduced(ids[c])
				if wa != wc {
					return wa > wc
				}
				return ids[a] < ids[c]
			})
			for j := 0; j < budget && j < len(ids); j++ {
				// Re-pick the heaviest alive each time: reductions at v
				// subtract the same amount from every incident edge, so the
				// order within δ(v) is stable and a sorted scan suffices.
				if _, ok := lr.Push(ids[j]); ok {
					e := g.Edges[ids[j]]
					changed[e.U] = true
					changed[e.V] = true
				}
			}
		}
		cluster.SetResident(0, 2*n+2*lr.StackSize())

		// Dissemination: central routes the changed potentials ϕ(v) to the
		// vertex owners; owners re-evaluate the ε-adjusted kill rule for
		// their incident edges.
		changedList := make([]int, 0, len(changed))
		for v := range changed {
			changedList = append(changedList, v)
		}
		sort.Ints(changedList)
		cluster.Arm(0) // the forwarding round runs off its delivered records
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			if machine != 0 {
				return
			}
			for _, v := range changedList {
				out.Begin(vertexOwner(v))
				out.Int(int64(v))
				out.Float(lr.Phi(v))
				out.End()
			}
		})
		if err != nil {
			return nil, err
		}
		// Owners receive the new potentials and forward them along their
		// alive incident edges to the other endpoint's owner.
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				v := int(msg.Ints[0])
				// IncidentEdges and Neighbors are positional: slot i of both
				// describes the same incident edge, so the edge id and the
				// other endpoint come from one scan with no Other() branch.
				ids := g.IncidentEdges(v)
				nbrs := g.Neighbors(v)
				for i, id := range ids {
					if alive[id] {
						out.Begin(vertexOwner(int(nbrs[i])))
						out.Int(int64(id))
						out.Float(msg.Floats[0])
						out.End()
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		// Delivery round; then refresh aliveness from the kill rule.
		if err := cluster.Quiet(); err != nil {
			return nil, err
		}
		counts := make([]int64, M)
		for id := 0; id < m; id++ {
			if alive[id] && !lr.Alive(id) {
				alive[id] = false
			}
			if alive[id] {
				e := g.Edges[id]
				counts[vertexOwner(e.U)]++ // counted once, by U's owner
			}
		}
		total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
			return []int64{counts[machine]}
		})
		if err != nil {
			return nil, err
		}
		aliveCount = total[0]
	}

	res.Edges = lr.Unwind()
	res.Weight = graph.MatchingWeight(g, res.Edges)
	res.StackSize = lr.StackSize()
	res.Metrics = cluster.Metrics()
	return res, nil
}

// maxB returns max_v b(v), used for space budgeting.
func maxB(g *graph.Graph, b func(int) int) int {
	mb := 1
	for v := 0; v < g.N; v++ {
		if bv := b(v); bv > mb {
			mb = bv
		}
	}
	return mb
}
