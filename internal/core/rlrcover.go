package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
)

// CoverResult is the output of RLRSetCover and HGSetCover.
type CoverResult struct {
	// Cover are the indices of the selected sets.
	Cover []int
	// Weight is the total weight of the cover.
	Weight float64
	// LowerBound is a certified lower bound on OPT (the local ratio
	// reduction total; zero for HGSetCover, which certifies differently).
	LowerBound float64
	// Iterations is the number of outer sampling iterations executed.
	Iterations int
	// History records the alive-element count |U_r| after each iteration:
	// the decay trajectory of Lemma 2.2 (|U_{r+1}| ≤ 2|U_r|/n^µ w.h.p.).
	History []int64
	// Metrics are the measured MapReduce costs.
	Metrics mpc.Metrics
}

// CoverOptions tunes RLRSetCover.
type CoverOptions struct {
	// Eta overrides the per-round sample budget η (default n^{1+µ} where n
	// is the number of sets).
	Eta int
	// VertexCoverMode enables the f = 2 fast path of Theorem 2.4: instead
	// of broadcasting the new cover sets to every machine through the
	// O(log_{n^µ} M)-depth tree, the central machine notifies each new
	// cover set's owner, which forwards one bit per covered element. This
	// turns the O((c/µ)²) round bound into O(c/µ).
	VertexCoverMode bool
}

// RLRSetCover is Algorithm 1: the randomized local ratio f-approximation for
// minimum weight set cover in MapReduce (Theorems 2.3 and 2.4).
//
// Elements are distributed across machines in the dual representation: the
// owner of element j stores T_j = {i : j ∈ S_i} and an alive bit (alive
// means no set containing j is in the cover yet). Each iteration samples
// alive elements with probability p = min(1, 2η/|U_r|), ships the sampled
// T_j's to the central machine, which runs the sequential local ratio
// algorithm of Bar-Yehuda and Even on them against its persistent residual
// weights, and disseminates the newly zero-weight sets so the machines can
// kill newly covered elements.
func RLRSetCover(inst *setcover.Instance, p Params, opt CoverOptions) (*CoverResult, error) {
	n := inst.NumSets()
	m := inst.NumElements
	if m == 0 {
		return &CoverResult{}, nil
	}
	etaWords := opt.Eta
	if etaWords <= 0 {
		etaWords = eta(n, p.Mu, 8)
	}
	dual := inst.Dual()
	inputWords := 0
	for _, t := range dual {
		inputWords += len(t) + 2
	}
	// Machine 0 is the dedicated central machine; machines 1..M-1 hold the
	// element (and, in vertex-cover mode, set) partitions.
	M := dataMachines(inputWords, 4*etaWords)
	cluster := newCluster(M, etaWords*(1+inst.MaxFrequency()), p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)

	elemOwner := func(j int) int { return 1 + j%(M-1) }
	setOwner := func(i int) int { return 1 + i%(M-1) }

	ownedElems := partitionByOwner(m, M, elemOwner)

	// Resident: element owners hold T_j + alive bit; in vertex-cover mode
	// set owners additionally hold their element lists for bit forwarding;
	// everyone keeps an n-bit view of the cover in general mode.
	resident := make([]int, M)
	for j := 0; j < m; j++ {
		resident[elemOwner(j)] += len(dual[j]) + 2
	}
	if opt.VertexCoverMode {
		for i, s := range inst.Sets {
			resident[setOwner(i)] += len(s) + 1
		}
	} else {
		for machine := 1; machine < M; machine++ {
			resident[machine] += n // local copy of the cover bitmap
		}
	}
	for machine := 0; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}

	// Central machine: residual weights and the cover.
	lr := seq.NewCoverLocalRatio(inst)
	cluster.AddResident(0, 2*n)

	alive := make([]bool, m)
	aliveCount := int64(0)
	for j := range alive {
		if len(dual[j]) == 0 {
			return nil, fmt.Errorf("core: element %d is uncoverable", j)
		}
		alive[j] = true
		aliveCount++
	}

	res := &CoverResult{}
	for iter := 0; aliveCount > 0; iter++ {
		if iter >= p.maxIter() {
			return nil, fmt.Errorf("core: RLRSetCover exceeded %d iterations", p.maxIter())
		}
		res.Iterations++

		// Sampling round (Line 5): each alive element joins U' with
		// probability p = min(1, 2η/|U_r|) and ships (j, T_j) to central.
		prob := math.Min(1, 2*float64(etaWords)/float64(aliveCount))
		// Draw the sample machine by machine before the round; the closures
		// replay each machine's plan concurrently.
		var sampled []int
		plan := make([][]int, M)
		for machine := 1; machine < M; machine++ {
			for _, j := range ownedElems[machine] {
				if alive[j] && r.Bernoulli(prob) {
					plan[machine] = append(plan[machine], j)
					sampled = append(sampled, j)
				}
			}
		}
		armPlanned(cluster, plan)
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for _, j := range plan[machine] {
				out.Begin(0)
				out.Int(int64(j))
				for _, i := range dual[j] {
					out.Int(int64(i))
				}
				out.End()
			}
		})
		if err != nil {
			return nil, err
		}
		// Line 6: |U'| > 6η is a failure.
		if prob < 1 && len(sampled) > 6*etaWords {
			return nil, fmt.Errorf("core: RLRSetCover sampling overflow (%d > 6η=%d)", len(sampled), 6*etaWords)
		}

		// Central machine (Lines 7-8): run local ratio on the sample in
		// ascending element order; record newly zeroed sets.
		sort.Ints(sampled)
		coverBefore := len(lr.Cover())
		for _, j := range sampled {
			if !lr.Covered(j) {
				lr.Process(j)
			}
		}
		newSets := lr.Cover()[coverBefore:]

		// Dissemination (Line 9): tell the element owners which sets joined
		// the cover so they can kill covered elements.
		if opt.VertexCoverMode {
			// f = 2 fast path: central → set owner → element owner, two
			// routed rounds, O(1) additional rounds per iteration. Only the
			// central machine starts from an empty inbox.
			cluster.Arm(0)
			err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
				if machine != 0 {
					return
				}
				for _, i := range newSets {
					out.SendInts(setOwner(i), int64(i))
				}
			})
			if err != nil {
				return nil, err
			}
			err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
				for msg, ok := in.Next(); ok; msg, ok = in.Next() {
					i := int(msg.Ints[0])
					for _, j := range inst.Sets[i] {
						if alive[j] {
							out.SendInts(elemOwner(j), int64(j))
						}
					}
				}
			})
			if err != nil {
				return nil, err
			}
			// Delivery round: element owners mark covered elements dead.
			err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
				for msg, ok := in.Next(); ok; msg, ok = in.Next() {
					alive[int(msg.Ints[0])] = false
				}
			})
			if err != nil {
				return nil, err
			}
		} else {
			// General f: broadcast the new cover sets down the degree-n^µ
			// tree (§2.2); every machine then kills its covered elements
			// locally using its T_j lists.
			payload := make([]int64, len(newSets))
			for k, i := range newSets {
				payload[k] = int64(i)
			}
			if err := tree.Broadcast(cluster, payload, nil); err != nil {
				return nil, err
			}
			for j := 0; j < m; j++ {
				if alive[j] && lr.Covered(j) {
					alive[j] = false
				}
			}
		}
		// In vertex-cover mode the forwarding already killed exactly the
		// elements of the new sets; elements covered earlier stay dead, and
		// lr.Covered is the ground truth either way.
		counts := make([]int64, M)
		for j := 0; j < m; j++ {
			if alive[j] && lr.Covered(j) {
				alive[j] = false
			}
			if alive[j] {
				counts[elemOwner(j)]++
			}
		}
		if opt.VertexCoverMode {
			// Theorem 2.4 (f = 2): per-machine counts go straight to the
			// central machine, which replies with |U_{r+1}| — two rounds,
			// independent of the tree depth.
			total, err := directAllReduce(cluster, 0, func(machine int) int64 {
				return counts[machine]
			})
			if err != nil {
				return nil, err
			}
			aliveCount = total
		} else {
			total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
				return []int64{counts[machine]}
			})
			if err != nil {
				return nil, err
			}
			aliveCount = total[0]
		}
		res.History = append(res.History, aliveCount)
	}

	res.Cover = append([]int(nil), lr.Cover()...)
	res.Weight = inst.Weight(res.Cover)
	res.LowerBound = lr.SumEps
	res.Metrics = cluster.Metrics()
	return res, nil
}
