package core

// Integration tests: cross-algorithm consistency, adversarial graph
// families, strict space-cap semantics, and property-based checks that
// randomly generated instances never break the approximation guarantees.

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
)

func TestMatchingOnAdversarialFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"star":  graph.Star(40),
		"path":  graph.Path(40),
		"cycle": graph.Cycle(41),
		"K12":   graph.Complete(12),
		"grid":  graph.Grid(6, 7),
	}
	r := rng.New(100)
	for name, g := range families {
		g.AssignUniformWeights(r, 1, 10)
		res, err := RLRMatching(g, Params{Mu: 0.3, Seed: 3}, MatchingOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.IsMatching(g, res.Edges) {
			t.Fatalf("%s: invalid matching", name)
		}
		// Local ratio guarantees half of the (computable for these sizes)
		// greedy weight, which is itself at least OPT/2: cross-check weakly.
		gw := graph.MatchingWeight(g, seq.GreedyMatching(g))
		if res.Weight < gw/2-1e-9 {
			t.Fatalf("%s: MR weight %v < greedy/2 = %v", name, res.Weight, gw/2)
		}
	}
}

func TestMatchingStarTakesHeaviestSpoke(t *testing.T) {
	// In a star all edges conflict: the 2-approx must pick a single edge of
	// at least half the max spoke weight; local ratio picks the heaviest
	// sampled one, so with full sampling it is exactly the max.
	g := graph.New(6)
	weights := []float64{3, 9, 4, 1, 7}
	for i, w := range weights {
		g.AddEdge(0, i+1, w)
	}
	res, err := RLRMatching(g, Params{Mu: 0.5, Seed: 1}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 {
		t.Fatalf("star matching size %d", len(res.Edges))
	}
	if res.Weight < 4.5 {
		t.Fatalf("star matching weight %v < max/2", res.Weight)
	}
}

func TestVertexCoverStarPrefersCentre(t *testing.T) {
	// Star with cheap centre: the 2-approx must cost at most 2*w(centre).
	g := graph.Star(30)
	w := make([]float64, g.N)
	w[0] = 1
	for i := 1; i < g.N; i++ {
		w[i] = 100
	}
	inst := setcover.FromVertexCover(g, w)
	res, err := RLRSetCover(inst, Params{Mu: 0.3, Seed: 2}, CoverOptions{VertexCoverMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight > 2 {
		t.Fatalf("star cover weight %v > 2*OPT = 2", res.Weight)
	}
}

func TestStrictModeSurfacesCapBreach(t *testing.T) {
	// Force a tiny η so the whole-graph gather in the final matching
	// iteration cannot fit: strict mode must fail, lenient must record.
	r := rng.New(101)
	g := graph.Density(200, 0.4, r)
	g.AssignUniformWeights(r, 1, 10)
	_, err := RLRMatching(g, Params{Mu: 0.05, Seed: 1, Strict: true},
		MatchingOptions{Eta: 16})
	if err == nil {
		t.Skip("tiny eta fit anyway; adjust if generator changes")
	}
	if !errors.Is(err, mpc.ErrSpaceExceeded) && err != nil {
		// Sampling overflow is the other acceptable failure mode.
		t.Logf("failed with %v (acceptable: space cap or sampling overflow)", err)
	}
	res, err := RLRMatching(g, Params{Mu: 0.05, Seed: 1, Strict: false},
		MatchingOptions{Eta: 16})
	if err != nil {
		// Lenient mode can still fail on sampling overflow; only a space
		// error would be wrong here.
		if errors.Is(err, mpc.ErrSpaceExceeded) {
			t.Fatalf("lenient mode returned space error: %v", err)
		}
		return
	}
	if res.Metrics.Violations == 0 {
		t.Fatal("lenient run recorded no violations despite tiny cap")
	}
}

func TestQuickMatchingTwoApprox(t *testing.T) {
	r := rng.New(102)
	f := func(a, b, s uint8) bool {
		n := int(a%6) + 4
		m := int(b)%13 + 1
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		g.AssignUniformWeights(r, 1, 20)
		res, err := RLRMatching(g, Params{Mu: 0.3, Seed: uint64(s)}, MatchingOptions{})
		if err != nil || !graph.IsMatching(g, res.Edges) {
			return false
		}
		return 2*res.Weight >= seq.BruteForceMatching(g)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetCoverFApprox(t *testing.T) {
	r := rng.New(103)
	f := func(a, b, s uint8) bool {
		n := int(a%8) + 3
		m := int(b%15) + 3
		fq := int(s)%3 + 1
		if fq > n {
			fq = n
		}
		inst := setcover.RandomFrequency(n, m, fq, 6, r)
		res, err := RLRSetCover(inst, Params{Mu: 0.3, Seed: uint64(s)}, CoverOptions{})
		if err != nil || !inst.IsCover(res.Cover) {
			return false
		}
		_, opt := seq.BruteForceSetCover(inst)
		return res.Weight <= float64(inst.MaxFrequency())*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMISValidity(t *testing.T) {
	r := rng.New(104)
	f := func(a, b, s uint8) bool {
		n := int(a%15) + 3
		m := int(b) % (n * 2)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := MISFast(g, Params{Mu: 0.25, Seed: uint64(s)})
		if err != nil {
			return false
		}
		return graph.IsMaximalIndependentSet(g, res.Set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickColouringProper(t *testing.T) {
	r := rng.New(105)
	f := func(a, b, s uint8) bool {
		n := int(a%20) + 3
		m := int(b) % (3 * n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		vres, err := VertexColouring(g, Params{Mu: 0.2, Seed: uint64(s)})
		if err != nil || !graph.IsProperVertexColouring(g, vres.Colours) {
			return false
		}
		eres, err := EdgeColouring(g, Params{Mu: 0.2, Seed: uint64(s)})
		return err == nil && graph.IsProperEdgeColouring(g, eres.Colours)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMISAlgorithmsAgreeOnValidity(t *testing.T) {
	// All three MIS algorithms must return valid (possibly different) MISs
	// on the same graph.
	r := rng.New(106)
	g := graph.Density(250, 0.3, r)
	for name, f := range map[string]func(*graph.Graph, Params) (*MISResult, error){
		"Alg2": MIS, "Alg6": MISFast, "Luby": LubyMIS,
	} {
		res, err := f(g, Params{Mu: 0.25, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Set) {
			t.Fatalf("%s: invalid MIS", name)
		}
	}
}

func TestBipartiteWorkloads(t *testing.T) {
	// Bipartite graphs (the Kumar et al. matching setting): matching and
	// b-matching must behave; MIS of one side is natural but any MIS is fine.
	r := rng.New(107)
	g := graph.RandomBipartite(60, 80, 500, r)
	g.AssignUniformWeights(r, 1, 10)
	mres, err := RLRMatching(g, Params{Mu: 0.25, Seed: 4}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, mres.Edges) {
		t.Fatal("invalid bipartite matching")
	}
	bres, err := BMatching(g, Params{Mu: 0.25, Seed: 4}, BMatchingOptions{Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsBMatching(g, bres.Edges, func(int) int { return 2 }) {
		t.Fatal("invalid bipartite b-matching")
	}
	if bres.Weight < mres.Weight-1e-9 {
		t.Fatalf("b=2 weight %v below b=1 weight %v: capacity can only help", bres.Weight, mres.Weight)
	}
}

func TestPowerLawWorkloads(t *testing.T) {
	// The motivating social-network-like degree distribution.
	g := graph.PreferentialAttachment(400, 3, rng.New(108))
	g.AssignUniformWeights(rng.New(109), 1, 100)
	res, err := RLRMatching(g, Params{Mu: 0.25, Seed: 5}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, res.Edges) {
		t.Fatal("invalid matching on power-law graph")
	}
	cres, err := MaximalClique(g, Params{Mu: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalClique(g, cres.Clique) {
		t.Fatal("invalid clique on power-law graph")
	}
	vcol, err := VertexColouring(g, Params{Mu: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsProperVertexColouring(g, vcol.Colours) {
		t.Fatal("improper colouring on power-law graph")
	}
}

func TestFilteringAndRLRCoverConsistency(t *testing.T) {
	// Unweighted vertex cover two ways: filtering's matched vertices vs
	// Algorithm 1 with unit weights. Both must cover; both are
	// 2-approximations of the unweighted optimum, so their sizes are within
	// a factor 2 of each other... up to each being 2-approx: factor 4 bound,
	// and in practice much closer.
	r := rng.New(110)
	g := graph.Density(300, 0.3, r)
	fres, err := FilteringMatching(g, Params{Mu: 0.25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, g.N)
	for i := range w {
		w[i] = 1
	}
	inst := setcover.FromVertexCover(g, w)
	cres, err := RLRSetCover(inst, Params{Mu: 0.25, Seed: 6}, CoverOptions{VertexCoverMode: true})
	if err != nil {
		t.Fatal(err)
	}
	coverSet := map[int]bool{}
	for _, v := range cres.Cover {
		coverSet[v] = true
	}
	if !graph.IsVertexCover(g, coverSet) || !graph.IsVertexCover(g, fres.VertexCover) {
		t.Fatal("invalid cover")
	}
	a, b := float64(len(coverSet)), float64(len(fres.VertexCover))
	if a > 4*b || b > 4*a {
		t.Fatalf("cover sizes %v and %v diverge beyond mutual 2-approx bounds", a, b)
	}
}

func TestHistoriesDecreaseToZero(t *testing.T) {
	r := rng.New(111)
	g := graph.Density(500, 0.4, r)
	g.AssignUniformWeights(r, 1, 10)
	mres, err := RLRMatching(g, Params{Mu: 0.1, Seed: 1}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.History) == 0 || mres.History[len(mres.History)-1] != 0 {
		t.Fatalf("matching history must end at 0: %v", mres.History)
	}
	prev := int64(g.M())
	for _, v := range mres.History {
		if v > prev {
			t.Fatalf("matching history not non-increasing: %v", mres.History)
		}
		prev = v
	}

	w := make([]float64, g.N)
	for i := range w {
		w[i] = r.UniformWeight(1, 10)
	}
	inst := setcover.FromVertexCover(g, w)
	cres, err := RLRSetCover(inst, Params{Mu: 0.1, Seed: 1}, CoverOptions{VertexCoverMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.History) == 0 || cres.History[len(cres.History)-1] != 0 {
		t.Fatalf("cover history must end at 0: %v", cres.History)
	}
	prev = int64(g.M())
	for _, v := range cres.History {
		if v > prev {
			t.Fatalf("cover history not non-increasing: %v", cres.History)
		}
		prev = v
	}

	ires, err := MISFast(g, Params{Mu: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev = int64(g.M()) + 1
	for _, v := range ires.History {
		if v > prev {
			t.Fatalf("MIS history not non-increasing: %v", ires.History)
		}
		prev = v
	}
}
