package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMaximalCliqueSmall(t *testing.T) {
	r := rng.New(60)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(15)
		m := r.Intn(3*n + 1)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := MaximalClique(g, Params{Mu: 0.3, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Clique) == 0 && n > 0 {
			t.Fatalf("trial %d: empty clique on nonempty graph", trial)
		}
		if !graph.IsMaximalClique(g, res.Clique) {
			t.Fatalf("trial %d: not a maximal clique: %v", trial, res.Clique)
		}
	}
}

func TestMaximalCliqueStructured(t *testing.T) {
	cases := map[string]*graph.Graph{
		"complete": graph.Complete(12),
		"star":     graph.Star(15),
		"path":     graph.Path(10),
		"empty":    graph.New(6),
		"cycle":    graph.Cycle(7),
	}
	for name, g := range cases {
		res, err := MaximalClique(g, Params{Mu: 0.25, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N > 0 && len(res.Clique) == 0 {
			t.Fatalf("%s: empty clique", name)
		}
		if !graph.IsMaximalClique(g, res.Clique) {
			t.Fatalf("%s: not maximal: %v", name, res.Clique)
		}
	}
	// The complete graph's only maximal clique is everything.
	res, _ := MaximalClique(graph.Complete(12), Params{Mu: 0.25, Seed: 4})
	if len(res.Clique) != 12 {
		t.Fatalf("K12 clique size %d", len(res.Clique))
	}
}

func TestMaximalCliquePlanted(t *testing.T) {
	r := rng.New(61)
	g := graph.GNM(100, 300, r)
	planted := graph.PlantClique(g, 10, r)
	res, err := MaximalClique(g, Params{Mu: 0.25, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalClique(g, res.Clique) {
		t.Fatal("not maximal")
	}
	_ = planted // the found clique need not be the planted one, only maximal
}

func TestMaximalCliqueMedium(t *testing.T) {
	r := rng.New(62)
	g := graph.Density(200, 0.3, r)
	res, err := MaximalClique(g, Params{Mu: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalClique(g, res.Clique) {
		t.Fatal("not maximal")
	}
	if res.Metrics.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestLubyMISSmall(t *testing.T) {
	r := rng.New(63)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(20)
		m := r.Intn(3 * n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := LubyMIS(g, Params{Mu: 0.3, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Set) {
			t.Fatalf("trial %d: not an MIS", trial)
		}
	}
}

func TestLubyMISMedium(t *testing.T) {
	r := rng.New(64)
	g := graph.Density(300, 0.3, r)
	res, err := LubyMIS(g, Params{Mu: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(g, res.Set) {
		t.Fatal("not an MIS")
	}
}

func TestFilteringMatchingSmall(t *testing.T) {
	r := rng.New(65)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(15)
		m := r.Intn(3*n + 1)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := FilteringMatching(g, Params{Mu: 0.3, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsMaximalMatching(g, res.Edges) {
			t.Fatalf("trial %d: not a maximal matching", trial)
		}
		if !graph.IsVertexCover(g, res.VertexCover) {
			t.Fatalf("trial %d: matched vertices are not a vertex cover", trial)
		}
		if len(res.VertexCover) != 2*len(res.Edges) {
			t.Fatalf("trial %d: cover size %d != 2*matching %d", trial, len(res.VertexCover), len(res.Edges))
		}
	}
}

func TestFilteringMatchingMedium(t *testing.T) {
	r := rng.New(66)
	g := graph.Density(400, 0.3, r)
	res, err := FilteringMatching(g, Params{Mu: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalMatching(g, res.Edges) {
		t.Fatal("not maximal")
	}
	if res.Metrics.Violations != 0 {
		t.Fatalf("space violations: %d", res.Metrics.Violations)
	}
}
