package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
)

// LubyMIS is Luby's classic randomized maximal independent set algorithm
// executed in the MapReduce model, the O(log n)-round baseline the paper's
// hungry-greedy algorithms are measured against (§6 notes its clean
// MapReduce implementation via one machine per PRAM processor; here vertices
// are block-partitioned instead, which only helps).
//
// Each round every alive vertex draws a uniform priority and exchanges it
// with its alive neighbours; local minima join the independent set, and
// their neighbourhoods are removed. Expected rounds: O(log n).
func LubyMIS(g *graph.Graph, p Params) (*MISResult, error) {
	n := g.N
	if n == 0 {
		return &MISResult{Set: map[int]bool{}}, nil
	}
	g.Build()
	etaWords := eta(n, p.Mu, 8)
	M := dataMachines(3*n+2*g.M(), 4*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)
	vertexOwner := func(v int) int { return 1 + v%(M-1) }

	inI := make([]bool, n)
	dominated := make([]bool, n)
	aliveVertex := func(v int) bool { return !inI[v] && !dominated[v] }

	// Per-machine partition: owned[machine] lists the machine's vertices in
	// ascending order. Rounds only write per-vertex state owned by the
	// invoking machine, so they are race-free under a parallel executor.
	owned := partitionByOwner(n, M, vertexOwner)
	resident := make([]int, M)
	for v := 0; v < n; v++ {
		resident[vertexOwner(v)] += 3 + g.Degree(v)
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}

	aliveCount := int64(n)
	iterations := 0
	for aliveCount > 0 {
		if iterations >= p.maxIter() {
			return nil, fmt.Errorf("core: LubyMIS exceeded %d iterations", p.maxIter())
		}
		iterations++

		// Draw priorities machine by machine before the round (the order the
		// machines would draw in), then exchange them along alive edges.
		// Ties are broken by vertex id; priorities are 53-bit uniform, so
		// ties are essentially impossible anyway. A machine participates in
		// this iteration's rounds exactly while it still owns an alive
		// vertex (an isolated alive vertex receives no traffic but must
		// still declare itself a local minimum), so those machines are
		// armed and retired machines go dormant.
		priority := make([]float64, n)
		hasAlive := make([]bool, M)
		for machine := 1; machine < M; machine++ {
			for _, v := range owned[machine] {
				if aliveVertex(v) {
					priority[v] = r.Float64()
					hasAlive[machine] = true
				}
			}
		}
		armAlive := func() {
			for machine := 1; machine < M; machine++ {
				if hasAlive[machine] {
					cluster.Arm(machine)
				}
			}
		}
		armAlive()
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for _, v := range owned[machine] {
				if !aliveVertex(v) {
					continue
				}
				for _, u := range g.Neighbors(v) {
					if !inI[u] && !dominated[u] {
						out.Begin(vertexOwner(int(u)))
						out.Int(int64(u))
						out.Int(int64(v))
						out.Float(priority[v])
						out.End()
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}

		// Local minima join I and announce it to their neighbours' owners.
		better := func(pu float64, u int, pv float64, v int) bool {
			if pu != pv {
				return pu < pv
			}
			return u < v
		}
		localMin := make([]bool, n)
		armAlive()
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			lowest := make(map[int]bool) // v -> seen a better neighbour
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				u := int(msg.Ints[0]) // recipient vertex
				v := int(msg.Ints[1]) // sending neighbour
				if better(msg.Floats[0], v, priority[u], u) {
					lowest[u] = true
				}
			}
			for _, v := range owned[machine] {
				if !aliveVertex(v) {
					continue
				}
				if !lowest[v] {
					localMin[v] = true
					for _, u := range g.Neighbors(v) {
						if !inI[u] && !dominated[u] {
							out.SendInts(vertexOwner(int(u)), int64(u), int64(v))
						}
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}

		// Apply: local minima enter I, their alive neighbours become
		// dominated. (Two adjacent local minima cannot both exist because
		// the priority order is strict.)
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				u := int(msg.Ints[0])
				if aliveVertex(u) && !localMin[u] {
					dominated[u] = true
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			if localMin[v] && aliveVertex(v) {
				inI[v] = true
			}
		}

		counts := make([]int64, M)
		for v := 0; v < n; v++ {
			if aliveVertex(v) {
				counts[vertexOwner(v)]++
			}
		}
		total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
			return []int64{counts[machine]}
		})
		if err != nil {
			return nil, err
		}
		aliveCount = total[0]
	}

	return &MISResult{Set: graph.VertexSet(inI), Iterations: iterations, Metrics: cluster.Metrics()}, nil
}
