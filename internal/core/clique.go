package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
)

// CliqueResult is the output of MaximalClique.
type CliqueResult struct {
	// Clique is the maximal clique found.
	Clique []int
	// Iterations is the number of hungry-greedy batches executed.
	Iterations int
	// Metrics are the measured MapReduce costs.
	Metrics mpc.Metrics
}

// MaximalClique is the Appendix B algorithm: maximal clique via the
// hungry-greedy MIS algorithm run on the complement graph, made feasible in
// sublinear space by the relabeling scheme. The complement graph can have
// Ω(n²) edges and is never materialized; instead each iteration only ever
// computes the complement neighbourhoods of the sampled vertices, which is
// the O(n^{1+µ})-word quantity the paper bounds.
//
// The distributed state follows Appendix B's invariants: an active set A
// (vertices adjacent to every clique member; the paper's relabeled [k]),
// per-vertex active-degree deg_A(v), and hence the complement degree
// d̄(v) = |A| − 1 − deg_A(v). Adding v to the clique replaces A by A ∩ N(v),
// which the central machine performs using v's complement list — exactly
// what the relabeling scheme lets a machine send.
func MaximalClique(g *graph.Graph, p Params) (*CliqueResult, error) {
	n := g.N
	if n == 0 {
		return &CliqueResult{}, nil
	}
	g.Build()
	etaWords := eta(n, p.Mu, 8)
	M := dataMachines(3*n+2*g.M(), 4*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	r := rng.New(p.Seed)
	vertexOwner := func(v int) int { return 1 + v%(M-1) }

	inA := make([]bool, n)
	degA := make([]int, n)
	nbrMark := make([]bool, n) // activeComplement scratch, reused per call
	owned := partitionByOwner(n, M, vertexOwner)
	for v := 0; v < n; v++ {
		inA[v] = true
		degA[v] = g.Degree(v)
	}
	resident := make([]int, M)
	for v := 0; v < n; v++ {
		resident[vertexOwner(v)] += 3 + g.Degree(v)
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}
	cluster.SetResident(0, n) // central: the active-set bitmap (the labels)

	sizeA := int64(n)
	var clique []int
	iterations := 0

	// relabelRounds charges the relabeling traffic of Appendix B: the
	// central machine sends each active vertex its new label (one routed
	// round) and every active vertex forwards its label to its neighbours
	// (a second round). The simulator keeps vertex ids; the words charged
	// are those of the real label exchange, which is what lets a vertex
	// compute its complement list [k] \ σ(N_A(v)) in sublinear space.
	relabelRounds := func() error {
		cluster.Arm(0) // only the central machine acts on an empty inbox
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			if machine != 0 {
				return
			}
			for v := 0; v < n; v++ {
				if inA[v] {
					out.SendInts(vertexOwner(v), int64(v))
				}
			}
		})
		if err != nil {
			return err
		}
		return cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				v := int(msg.Ints[0])
				for _, u := range g.Neighbors(v) {
					out.SendInts(vertexOwner(int(u)), int64(u), int64(v))
				}
			}
		})
	}

	alpha := p.Mu / 2
	if alpha <= 0 {
		alpha = 0.05
	}
	phases := int(math.Ceil(1 / alpha))
	nf := float64(n)
	groupSize := int(math.Ceil(math.Pow(nf, p.Mu/2)))

	type cliqueCand struct {
		v    int
		comp []int64 // active non-neighbours at sampling time
	}

	compDeg := func(v int) int {
		if !inA[v] {
			return 0
		}
		return int(sizeA) - 1 - degA[v]
	}

	// removeFromA applies a batch of removals: central notifies owners, and
	// owners notify the removed vertices' neighbours so deg_A stays correct.
	// The entries of removed are distinct and active, so the |A| update is
	// applied once up front rather than from inside the concurrent round.
	removeFromA := func(removed []int) error {
		cluster.Arm(0) // rounds 2 and 3 run off their delivered records
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			if machine != 0 {
				return
			}
			for _, v := range removed {
				out.SendInts(vertexOwner(v), int64(v))
			}
		})
		if err != nil {
			return err
		}
		sizeA -= int64(len(removed))
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				v := int(msg.Ints[0])
				if inA[v] {
					inA[v] = false
					for _, u := range g.Neighbors(v) {
						out.SendInts(vertexOwner(int(u)), int64(u))
					}
				}
			}
		})
		if err != nil {
			return err
		}
		return cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				u := int(msg.Ints[0])
				if degA[u] > 0 {
					degA[u]--
				}
			}
		})
	}

	// processBatch adds candidates to the clique hungry-greedy style: one
	// addition per group, threshold on the current complement degree.
	processBatch := func(groups [][]cliqueCand, threshold int) error {
		removedSet := make(map[int]bool)
		var removed []int
		activeNow := func(u int) bool { return inA[u] && !removedSet[u] }
		for _, group := range groups {
			for _, cand := range group {
				if !activeNow(cand.v) {
					continue
				}
				// Current complement degree: entries of the sampled
				// complement list still active, plus nothing new can have
				// joined (A only shrinks).
				cur := 0
				for _, u := range cand.comp {
					if activeNow(int(u)) {
						cur++
					}
				}
				if threshold > 0 && cur < threshold {
					continue
				}
				// Add cand.v to the clique: remove v and its active
				// non-neighbours from A.
				clique = append(clique, cand.v)
				if !removedSet[cand.v] {
					removedSet[cand.v] = true
					removed = append(removed, cand.v)
				}
				for _, u := range cand.comp {
					if activeNow(int(u)) {
						removedSet[int(u)] = true
						removed = append(removed, int(u))
					}
				}
				break
			}
		}
		return removeFromA(removed)
	}

	for i := 1; i <= phases && sizeA > 0; i++ {
		threshold := int(math.Ceil(math.Pow(nf, 1-float64(i)*alpha)))
		if threshold < 1 {
			threshold = 1
		}
		heavyMin := math.Pow(nf, float64(i)*alpha)
		for sizeA > 0 {
			if iterations >= p.maxIter() {
				return nil, fmt.Errorf("core: MaximalClique exceeded %d iterations", p.maxIter())
			}
			// Count complement-heavy vertices (direct aggregation).
			heavy, err := directAllReduce(cluster, 0, func(machine int) int64 {
				c := int64(0)
				for _, v := range owned[machine] {
					if inA[v] && compDeg(v) >= threshold {
						c++
					}
				}
				return c
			})
			if err != nil {
				return nil, err
			}
			if heavy == 0 {
				break
			}
			if err := relabelRounds(); err != nil {
				return nil, err
			}
			prob := 1.0
			gatherAll := float64(heavy) < heavyMin
			if !gatherAll {
				prob = math.Min(1, heavyMin*float64(groupSize)/float64(heavy))
			}
			// Draw the sample machine by machine before the round; the
			// closures replay each machine's plan concurrently.
			var sample []cliqueCand
			plan := make([][]cliqueCand, M)
			for machine := 1; machine < M; machine++ {
				for _, v := range owned[machine] {
					if !inA[v] || compDeg(v) < threshold || !r.Bernoulli(prob) {
						continue
					}
					cand := cliqueCand{v: v, comp: activeComplement(g, inA, v, nbrMark)}
					plan[machine] = append(plan[machine], cand)
					sample = append(sample, cand)
				}
			}
			armPlanned(cluster, plan)
			err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
				for _, cand := range plan[machine] {
					out.Begin(0)
					out.Int(int64(cand.v))
					out.Ints(cand.comp...)
					out.End()
				}
			})
			if err != nil {
				return nil, err
			}
			iterations++
			var groups [][]cliqueCand
			if gatherAll {
				sort.Slice(sample, func(a, b int) bool { return sample[a].v < sample[b].v })
				for k := range sample {
					groups = append(groups, sample[k:k+1])
				}
				if err := processBatch(groups, 0); err != nil {
					return nil, err
				}
				break
			}
			r.Shuffle(len(sample), func(a, b int) { sample[a], sample[b] = sample[b], sample[a] })
			for k := 0; k < len(sample); k += groupSize {
				end := k + groupSize
				if end > len(sample) {
					end = len(sample)
				}
				groups = append(groups, sample[k:end])
			}
			if err := processBatch(groups, threshold); err != nil {
				return nil, err
			}
		}
	}

	// After the last phase every active vertex has complement degree 0, so
	// A is a clique all of whose members are adjacent to every clique
	// member: gather and add them all (one round of ids).
	var leftovers []int
	leftoverPlan := make([][]int64, M)
	for machine := 1; machine < M; machine++ {
		for _, v := range owned[machine] {
			if inA[v] {
				leftoverPlan[machine] = append(leftoverPlan[machine], int64(v))
				leftovers = append(leftovers, v)
			}
		}
	}
	armPlanned(cluster, leftoverPlan)
	err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for _, v := range leftoverPlan[machine] {
			out.SendInts(0, v)
		}
	})
	if err != nil {
		return nil, err
	}
	clique = append(clique, leftovers...)
	sort.Ints(clique)

	return &CliqueResult{
		Clique:     clique,
		Iterations: iterations,
		Metrics:    cluster.Metrics(),
	}, nil
}

// activeComplement returns the active non-neighbours of v, excluding v.
// nbrMark is a caller-owned all-false scratch bitmap of size g.N; it is
// marked from the contiguous neighbour slice and cleared again before
// returning, replacing a per-call map build.
func activeComplement(g *graph.Graph, inA []bool, v int, nbrMark []bool) []int64 {
	nbrs := g.Neighbors(v)
	for _, u := range nbrs {
		nbrMark[u] = true
	}
	var out []int64
	for u := 0; u < g.N; u++ {
		if u != v && inA[u] && !nbrMark[u] {
			out = append(out, int64(u))
		}
	}
	for _, u := range nbrs {
		nbrMark[u] = false
	}
	return out
}
