// Package core implements the MapReduce algorithms of Harvey, Liaw and Liu,
// "Greedy and Local Ratio Algorithms in the MapReduce Model" (SPAA 2018), on
// the cluster simulator of internal/mpc:
//
//   - Algorithm 1: randomized local ratio f-approximation for weighted set
//     cover (Theorems 2.3/2.4), including the f = 2 vertex-cover fast path;
//   - Algorithm 2: hungry-greedy maximal independent set in O(1/µ²) rounds
//     (Theorem 3.3);
//   - Algorithm 6: improved maximal independent set in O(c/µ) rounds
//     (Theorem A.3);
//   - Appendix B: maximal clique via the active-set/relabeling scheme
//     (Corollary B.1);
//   - Algorithm 3: hungry-greedy (1+ε)·H_∆ approximation for weighted set
//     cover (Theorems 4.5/4.6);
//   - Algorithm 4: randomized local ratio 2-approximation for maximum weight
//     matching (Theorems 5.5/5.6), including the µ = 0 linear-space variant
//     (Appendix C);
//   - Algorithm 7: ε-adjusted local ratio (3−2/b+2ε)-approximation for
//     maximum weight b-matching (Appendix D);
//   - Algorithm 5: (1+o(1))∆ vertex colouring and edge colouring in O(1)
//     rounds (Theorems 6.4/6.6);
//
// plus two prior-work baselines used in the Figure 1 comparisons: the
// filtering technique of Lattanzi et al. for maximal matching, and Luby's
// MIS.
//
// Every algorithm runs its communication for real on an mpc.Cluster, so the
// returned metrics (rounds, words, per-machine space high-water) are
// measured quantities, directly comparable to the bounds in Figure 1.
package core

import (
	"context"
	"math"

	"repro/internal/mpc"
	"repro/internal/obs"
)

// Params are the model parameters shared by all algorithms.
type Params struct {
	// Mu is the space exponent µ: each machine has ~n^{1+µ} words (graph
	// problems) or ~m^{1+µ} words (the m ≪ n set cover regime).
	Mu float64
	// Seed drives all randomness; runs are deterministic given Seed.
	Seed uint64
	// Strict makes the cluster fail hard when a machine exceeds its space
	// cap, mirroring the "fail" lines of Algorithms 1, 3 and 4. When false,
	// violations are recorded in the metrics but execution continues.
	Strict bool
	// MaxIterations bounds the main loop as a safety net against
	// non-termination; 0 means a generous default.
	MaxIterations int
	// Workers selects the simulator's round executor: 0 or 1 executes the
	// machines of each round sequentially, > 1 runs them concurrently on a
	// pool of that many goroutines, < 0 uses one per CPU. Results and
	// metrics are identical for every setting; only wall-clock changes.
	Workers int
	// Dense disables the simulator's sparse round scheduling, invoking
	// every machine's RoundFunc every round as the pre-arming simulator
	// did. The algorithms arm exactly the machines that must act on empty
	// inboxes, so results and model metrics are identical either way (the
	// equivalence tests enforce it); sparse is the default because tail
	// rounds then cost O(active machines) instead of O(M).
	Dense bool
	// Shards partitions every cluster's machines contiguously across that
	// many shards, exchanging cross-shard traffic through a transport
	// (mpc.Config.Shards). Results and metrics are bit-identical to
	// unsharded runs — TestShardedEquivalence enforces it; 0 or 1 runs
	// unsharded.
	Shards int
	// Transport builds the transport endpoints for sharded runs; nil is
	// the in-memory group (single-process sharding). Multi-process fleets
	// (cmd/mrshard) install a TCP node factory here.
	Transport mpc.TransportFactory
	// Ctx, when non-nil, cancels the run between rounds: once canceled,
	// every cluster's next Round returns the context's error, so an
	// abandoned job stops burning rounds instead of running to completion.
	Ctx context.Context
	// Sink, when non-nil, streams a wall-clock phase-timed span per
	// simulator round to the observability layer (mpc.Config.Sink).
	// Timing is segregated from the deterministic results and metrics:
	// attaching a sink never changes what a run computes.
	Sink obs.TraceSink
	// TraceLabel annotates the run's trace spans (e.g. a job id).
	TraceLabel string
}

func (p Params) maxIter() int {
	if p.MaxIterations > 0 {
		return p.MaxIterations
	}
	return 10000
}

// eta returns the per-machine space target base^{1+mu}, at least minimum.
func eta(base int, mu float64, minimum int) int {
	e := int(math.Ceil(math.Pow(float64(base), 1+mu)))
	if e < minimum {
		e = minimum
	}
	return e
}

// machinesFor returns the machine count ceil(inputWords / capWords), at
// least 1.
func machinesFor(inputWords, capWords int) int {
	if capWords <= 0 || inputWords <= 0 {
		return 1
	}
	m := (inputWords + capWords - 1) / capWords
	if m < 1 {
		m = 1
	}
	return m
}

// treeDegree returns the broadcast tree degree n^µ (at least 2), the degree
// the paper uses in §2.2 and §4.1.
func treeDegree(base int, mu float64) int {
	d := int(math.Pow(float64(base), mu))
	if d < 2 {
		d = 2
	}
	return d
}

// newCluster builds a cluster with machines sized by cap and a slack factor:
// the paper's caps are O(·), so the enforced cap is slack*cap words. The
// cluster inherits the Params' strictness and round executor.
func newCluster(machines, cap int, p Params, slack float64) *mpc.Cluster {
	enforced := 0
	if cap > 0 {
		enforced = int(float64(cap) * slack)
	}
	return mpc.NewCluster(mpc.Config{
		Machines:   machines,
		SpaceCap:   enforced,
		Strict:     p.Strict,
		Workers:    p.Workers,
		Sparse:     !p.Dense,
		Shards:     p.Shards,
		Transport:  p.Transport,
		Ctx:        p.Ctx,
		Sink:       p.Sink,
		TraceLabel: p.TraceLabel,
	})
}

// capSlack is the constant-factor slack applied to enforced space caps. The
// theorems bound space as O(n^{1+µ}); the explicit constants in the paper
// (6η samples in Algorithm 1, 8η in Algorithm 4, 13n^{1+µ} edges per group
// in Algorithm 5) motivate a default slack of 32 "words per O(1) items".
const capSlack = 32

// partitionByOwner returns, for each machine, the ids it owns in ascending
// order. Every algorithm keeps its items (vertices, edges, elements, sets)
// in such a partition: the ascending per-machine order is the iteration
// order the pre-drawn sampling plans replay, so it is part of the
// determinism contract — see DESIGN.md.
func partitionByOwner(count, machines int, owner func(id int) int) [][]int {
	out := make([][]int, machines)
	for id := 0; id < count; id++ {
		out[owner(id)] = append(out[owner(id)], id)
	}
	return out
}

// armPlanned arms every machine whose pre-drawn per-machine plan is
// non-empty — the common sparse-scheduling pattern of the sampling rounds,
// where the driver already knows exactly which machines will send.
func armPlanned[T any](c *mpc.Cluster, plan [][]T) {
	for machine, p := range plan {
		if len(p) > 0 {
			c.Arm(machine)
		}
	}
}

// dataMachines returns the cluster size for a layout with a dedicated
// central machine (machine 0) plus enough data machines to hold inputWords
// under capWords each. The paper's blue-line computations run on a single
// distinguished machine; giving it no data partition keeps its space budget
// for the samples it receives.
func dataMachines(inputWords, capWords int) int {
	return 1 + machinesFor(inputWords, capWords)
}

// directAllReduce computes the sum of per-machine int64 contributions using
// the 2-round direct scheme of Theorem 2.4's f = 2 case: every machine sends
// its count straight to the central machine, which replies with the total to
// every machine. This beats the broadcast tree when M is small relative to
// the space cap (the tree exists because a direct send of a large payload
// could exceed the cap; a single word per machine cannot).
func directAllReduce(c *mpc.Cluster, central int, value func(machine int) int64) (int64, error) {
	c.ArmAll() // every machine contributes a word, empty inbox or not
	err := c.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		out.SendInts(central, value(machine))
	})
	if err != nil {
		return 0, err
	}
	total := int64(0)
	err = c.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		if machine != central {
			return
		}
		for msg, ok := in.Next(); ok; msg, ok = in.Next() {
			total += msg.Ints[0]
		}
		for to := 0; to < c.M(); to++ {
			if to != central {
				out.SendInts(to, total)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}
