package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/setcover"
)

// This file is the algorithm registry: one table mapping algorithm names to
// a uniform runner plus a parameter schema. cmd/mrrun dispatches through it,
// cmd/mrserve serves it over HTTP, and the bench harness can enumerate it —
// a new algorithm registered here appears in all three at once.

// InputKind declares what instance shape an algorithm consumes.
type InputKind int

const (
	// InputGraph algorithms consume Input.Graph.
	InputGraph InputKind = iota
	// InputSetCover algorithms consume Input.Cover.
	InputSetCover
	// InputVertexCover algorithms consume both: the set cover instance
	// derived from a vertex-weighted graph (setcover.FromVertexCover) plus
	// the graph itself for validation.
	InputVertexCover
)

// String names the kind for schemas and error messages.
func (k InputKind) String() string {
	switch k {
	case InputGraph:
		return "graph"
	case InputSetCover:
		return "setcover"
	case InputVertexCover:
		return "vertexcover"
	}
	return fmt.Sprintf("InputKind(%d)", int(k))
}

// Input is a problem instance handed to a registered algorithm. Which fields
// are set depends on the InputKind. Algorithms must treat the instance as
// immutable: the service layer shares one Input across concurrent jobs.
type Input struct {
	Graph *graph.Graph
	Cover *setcover.Instance
}

// check validates that in carries the fields kind requires.
func (in Input) check(kind InputKind) error {
	switch kind {
	case InputGraph:
		if in.Graph == nil {
			return fmt.Errorf("core: algorithm requires a graph instance")
		}
	case InputSetCover:
		if in.Cover == nil {
			return fmt.Errorf("core: algorithm requires a set cover instance")
		}
	case InputVertexCover:
		if in.Graph == nil || in.Cover == nil {
			return fmt.Errorf("core: algorithm requires a vertex cover instance (graph + derived set cover)")
		}
	}
	return nil
}

// ParamSpec describes one algorithm-specific numeric parameter.
type ParamSpec struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Help    string  `json:"help"`
}

// RunResult is the uniform outcome of one algorithm execution. Summary is
// the one-line human-readable solution summary (what mrrun prints); the
// scalar fields carry the same information for machine consumers. Given the
// same instance, parameters and Params.Seed, every field is deterministic.
type RunResult struct {
	Summary    string      `json:"summary"`
	Size       int         `json:"size"`
	Weight     float64     `json:"weight"`
	Valid      bool        `json:"valid"`
	Iterations int         `json:"iterations"`
	Metrics    mpc.Metrics `json:"metrics"`
}

// Algorithm is one registry entry.
type Algorithm struct {
	// Name is the dispatch key (mrrun -alg, the service's "alg" field).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Input declares the instance shape the runner consumes.
	Input InputKind
	// Params is the schema of the algorithm-specific parameters accepted in
	// the args map; absent keys take their defaults.
	Params []ParamSpec
	// run executes the algorithm. args has been canonicalized: every
	// schema key present, no unknown keys.
	run func(in Input, p Params, args map[string]float64) (*RunResult, error)
}

// CanonArgs fills defaults for absent parameters and rejects unknown ones.
// The returned map has exactly the schema's keys, making it a canonical
// basis for request hashing.
func (a Algorithm) CanonArgs(args map[string]float64) (map[string]float64, error) {
	out := make(map[string]float64, len(a.Params))
	for _, p := range a.Params {
		out[p.Name] = p.Default
	}
	for k, v := range args {
		if _, ok := out[k]; !ok {
			return nil, fmt.Errorf("core: algorithm %q has no parameter %q", a.Name, k)
		}
		out[k] = v
	}
	return out, nil
}

// Run validates the input and arguments and executes the algorithm.
func (a Algorithm) Run(in Input, p Params, args map[string]float64) (*RunResult, error) {
	if err := in.check(a.Input); err != nil {
		return nil, fmt.Errorf("%v (algorithm %q)", err, a.Name)
	}
	canon, err := a.CanonArgs(args)
	if err != nil {
		return nil, err
	}
	return a.run(in, p, canon)
}

// Algorithms returns the registry entries in name order.
func Algorithms() []Algorithm {
	out := append([]Algorithm(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupAlgorithm finds a registry entry by name.
func LookupAlgorithm(name string) (Algorithm, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return Algorithm{}, false
}

var registry = []Algorithm{
	{
		Name:    "matching",
		Summary: "Algorithm 4: randomized local ratio 2-approximate maximum weight matching",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := RLRMatching(in.Graph, p, MatchingOptions{})
			if err != nil {
				return nil, err
			}
			valid := graph.IsMatching(in.Graph, res.Edges)
			return &RunResult{
				Summary: fmt.Sprintf("matching: %d edges, weight %.2f, valid=%v, iters=%d",
					len(res.Edges), res.Weight, valid, res.Iterations),
				Size: len(res.Edges), Weight: res.Weight, Valid: valid,
				Iterations: res.Iterations, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "bmatching",
		Summary: "Algorithm 7: ε-adjusted local ratio (3−2/b+2ε)-approximate b-matching",
		Input:   InputGraph,
		Params: []ParamSpec{
			{Name: "b", Default: 2, Help: "per-vertex capacity"},
			{Name: "eps", Default: 0.2, Help: "ε of the ε-adjusted reductions"},
		},
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			b := int(args["b"])
			if b < 1 {
				return nil, fmt.Errorf("core: bmatching requires b >= 1, got %d", b)
			}
			bf := func(int) int { return b }
			res, err := BMatching(in.Graph, p, BMatchingOptions{B: bf, Eps: args["eps"]})
			if err != nil {
				return nil, err
			}
			valid := graph.IsBMatching(in.Graph, res.Edges, bf)
			return &RunResult{
				Summary: fmt.Sprintf("b-matching (b=%d): %d edges, weight %.2f, valid=%v, iters=%d",
					b, len(res.Edges), res.Weight, valid, res.Iterations),
				Size: len(res.Edges), Weight: res.Weight, Valid: valid,
				Iterations: res.Iterations, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "vertexcover",
		Summary: "Theorem 2.4 (f=2 fast path): local ratio 2-approximate weighted vertex cover",
		Input:   InputVertexCover,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := RLRSetCover(in.Cover, p, CoverOptions{VertexCoverMode: true})
			if err != nil {
				return nil, err
			}
			cover := make(map[int]bool, len(res.Cover))
			for _, v := range res.Cover {
				cover[v] = true
			}
			valid := graph.IsVertexCover(in.Graph, cover)
			return &RunResult{
				Summary: fmt.Sprintf("vertex cover: %d vertices, weight %.2f, valid=%v, ratio-vs-LB %.3f, iters=%d",
					len(res.Cover), res.Weight, valid, res.Weight/res.LowerBound, res.Iterations),
				Size: len(res.Cover), Weight: res.Weight, Valid: valid,
				Iterations: res.Iterations, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "setcover-f",
		Summary: "Algorithm 1: randomized local ratio f-approximate weighted set cover",
		Input:   InputSetCover,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := RLRSetCover(in.Cover, p, CoverOptions{})
			if err != nil {
				return nil, err
			}
			valid := in.Cover.IsCover(res.Cover)
			return &RunResult{
				Summary: fmt.Sprintf("set cover (f=%d): %d sets, weight %.2f, valid=%v, ratio-vs-LB %.3f, iters=%d",
					in.Cover.MaxFrequency(), len(res.Cover), res.Weight, valid,
					res.Weight/res.LowerBound, res.Iterations),
				Size: len(res.Cover), Weight: res.Weight, Valid: valid,
				Iterations: res.Iterations, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "setcover-greedy",
		Summary: "Algorithm 3: hungry-greedy (1+ε)·H_∆-approximate weighted set cover",
		Input:   InputSetCover,
		Params: []ParamSpec{
			{Name: "eps", Default: 0.2, Help: "ε of the ε-greedy selection rule"},
		},
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := HGSetCover(in.Cover, p, HGCoverOptions{Eps: args["eps"]})
			if err != nil {
				return nil, err
			}
			valid := in.Cover.IsCover(res.Cover)
			return &RunResult{
				Summary: fmt.Sprintf("set cover (hungry-greedy): %d sets, weight %.2f, valid=%v, iters=%d",
					len(res.Cover), res.Weight, valid, res.Iterations),
				Size: len(res.Cover), Weight: res.Weight, Valid: valid,
				Iterations: res.Iterations, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "mis",
		Summary: "Algorithm 6: improved maximal independent set in O(c/µ) rounds",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := MISFast(in.Graph, p)
			if err != nil {
				return nil, err
			}
			return misResult("MIS (Algorithm 6)", in.Graph, res), nil
		},
	},
	{
		Name:    "mis-simple",
		Summary: "Algorithm 2: hungry-greedy maximal independent set in O(1/µ²) rounds",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := MIS(in.Graph, p)
			if err != nil {
				return nil, err
			}
			return misResult("MIS (Algorithm 2)", in.Graph, res), nil
		},
	},
	{
		Name:    "luby",
		Summary: "baseline: Luby's maximal independent set",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := LubyMIS(in.Graph, p)
			if err != nil {
				return nil, err
			}
			return misResult("MIS (Luby)", in.Graph, res), nil
		},
	},
	{
		Name:    "clique",
		Summary: "Appendix B: maximal clique via relabeled complement MIS",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := MaximalClique(in.Graph, p)
			if err != nil {
				return nil, err
			}
			valid := graph.IsMaximalClique(in.Graph, res.Clique)
			return &RunResult{
				Summary: fmt.Sprintf("maximal clique: |K|=%d, valid=%v, iters=%d",
					len(res.Clique), valid, res.Iterations),
				Size: len(res.Clique), Valid: valid,
				Iterations: res.Iterations, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "filtering",
		Summary: "baseline: filtering maximal matching (Lattanzi et al.)",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := FilteringMatching(in.Graph, p)
			if err != nil {
				return nil, err
			}
			valid := graph.IsMaximalMatching(in.Graph, res.Edges)
			return &RunResult{
				Summary: fmt.Sprintf("filtering maximal matching: %d edges, maximal=%v, iters=%d",
					len(res.Edges), valid, res.Iterations),
				Size: len(res.Edges), Valid: valid,
				Iterations: res.Iterations, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "vcolour",
		Summary: "Algorithm 5: (1+o(1))∆ vertex colouring in O(1) rounds",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := VertexColouring(in.Graph, p)
			if err != nil {
				return nil, err
			}
			valid := graph.IsProperVertexColouring(in.Graph, res.Colours)
			return &RunResult{
				Summary: fmt.Sprintf("vertex colouring: %d colours (∆=%d, κ=%d), proper=%v",
					res.NumColours, in.Graph.MaxDegree(), res.Groups, valid),
				Size: res.NumColours, Valid: valid, Metrics: res.Metrics,
			}, nil
		},
	},
	{
		Name:    "ecolour",
		Summary: "Theorem 6.6: (1+o(1))∆ edge colouring in O(1) rounds",
		Input:   InputGraph,
		run: func(in Input, p Params, args map[string]float64) (*RunResult, error) {
			res, err := EdgeColouring(in.Graph, p)
			if err != nil {
				return nil, err
			}
			valid := graph.IsProperEdgeColouring(in.Graph, res.Colours)
			return &RunResult{
				Summary: fmt.Sprintf("edge colouring: %d colours (∆=%d, κ=%d), proper=%v",
					res.NumColours, in.Graph.MaxDegree(), res.Groups, valid),
				Size: res.NumColours, Valid: valid, Metrics: res.Metrics,
			}, nil
		},
	},
}

// misResult builds the uniform result shared by the three MIS variants.
func misResult(label string, g *graph.Graph, res *MISResult) *RunResult {
	valid := graph.IsMaximalIndependentSet(g, res.Set)
	return &RunResult{
		Summary: fmt.Sprintf("%s: |I|=%d, valid=%v, iters=%d",
			label, len(res.Set), valid, res.Iterations),
		Size: len(res.Set), Valid: valid,
		Iterations: res.Iterations, Metrics: res.Metrics,
	}
}
