package core

// Every algorithm must be exactly reproducible from its seed (the property
// the experiment harness depends on) and must handle degenerate inputs.
// Reproducibility is also required *across executors*: the parallel round
// executor must produce the same results and the same measured metrics as
// the sequential one, machine for machine and word for word.

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func TestDeterminismAllAlgorithms(t *testing.T) {
	r := rng.New(160)
	g := graph.Density(150, 0.35, r)
	g.AssignUniformWeights(r, 1, 10)
	w := make([]float64, g.N)
	for i := range w {
		w[i] = r.UniformWeight(1, 10)
	}
	vcInst := setcover.FromVertexCover(g, w)
	scInst := setcover.RandomSized(300, 60, 8, 5, r)
	p := Params{Mu: 0.25, Seed: 77}

	type run struct {
		name string
		f    func() (int, float64, int, error) // size, weight, rounds
	}
	runs := []run{
		{"RLRMatching", func() (int, float64, int, error) {
			res, err := RLRMatching(g, p, MatchingOptions{})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
		{"BMatching", func() (int, float64, int, error) {
			res, err := BMatching(g, p, BMatchingOptions{Eps: 0.2})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
		{"RLRSetCover", func() (int, float64, int, error) {
			res, err := RLRSetCover(vcInst, p, CoverOptions{VertexCoverMode: true})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Cover), res.Weight, res.Metrics.Rounds, nil
		}},
		{"HGSetCover", func() (int, float64, int, error) {
			res, err := HGSetCover(scInst, p, HGCoverOptions{Eps: 0.2})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Cover), res.Weight, res.Metrics.Rounds, nil
		}},
		{"MIS", func() (int, float64, int, error) {
			res, err := MIS(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Set), 0, res.Metrics.Rounds, nil
		}},
		{"MISFast", func() (int, float64, int, error) {
			res, err := MISFast(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Set), 0, res.Metrics.Rounds, nil
		}},
		{"LubyMIS", func() (int, float64, int, error) {
			res, err := LubyMIS(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Set), 0, res.Metrics.Rounds, nil
		}},
		{"MaximalClique", func() (int, float64, int, error) {
			res, err := MaximalClique(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Clique), 0, res.Metrics.Rounds, nil
		}},
		{"VertexColouring", func() (int, float64, int, error) {
			res, err := VertexColouring(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.NumColours, 0, res.Metrics.Rounds, nil
		}},
		{"EdgeColouring", func() (int, float64, int, error) {
			res, err := EdgeColouring(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.NumColours, 0, res.Metrics.Rounds, nil
		}},
		{"FilteringMatching", func() (int, float64, int, error) {
			res, err := FilteringMatching(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), 0, res.Metrics.Rounds, nil
		}},
		{"FilteringWeighted", func() (int, float64, int, error) {
			res, err := FilteringWeightedMatching(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
		{"LayeredParallel", func() (int, float64, int, error) {
			res, err := LayeredParallelMatching(g, p, 0.5)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
	}
	for _, rn := range runs {
		s1, w1, r1, err := rn.f()
		if err != nil {
			t.Fatalf("%s first run: %v", rn.name, err)
		}
		s2, w2, r2, err := rn.f()
		if err != nil {
			t.Fatalf("%s second run: %v", rn.name, err)
		}
		if s1 != s2 || w1 != w2 || r1 != r2 {
			t.Fatalf("%s not deterministic: (%d,%v,%d) vs (%d,%v,%d)",
				rn.name, s1, w1, r1, s2, w2, r2)
		}
	}
}

// scrubActive zeroes the scheduling-activity fields, which are the only
// metrics allowed to differ between sparse and dense execution; everything
// the paper's theorems bound (rounds, words, messages, space high-water,
// violations) must be bit-identical.
func scrubActive(m mpc.Metrics) mpc.Metrics {
	m.ActiveSum, m.ActiveMax = 0, 0
	return m
}

// scrubResultActive zeroes the activity fields inside a result struct so
// full-result comparisons across scheduling modes see only model-level data.
func scrubResultActive(res interface{}) {
	switch r := res.(type) {
	case *MISResult:
		r.Metrics = scrubActive(r.Metrics)
	case *CoverResult:
		r.Metrics = scrubActive(r.Metrics)
	case *MatchingResult:
		r.Metrics = scrubActive(r.Metrics)
	case *ColouringResult:
		r.Metrics = scrubActive(r.Metrics)
	case *CliqueResult:
		r.Metrics = scrubActive(r.Metrics)
	case *FilteringResult:
		r.Metrics = scrubActive(r.Metrics)
	}
}

// TestExecutorEquivalence runs every algorithm across the full scheduling
// matrix — {dense, sparse} × {sequential, 4-worker parallel pool} — and
// requires results (full result structs, including histories and solution
// sets) and model metrics identical to the dense sequential baseline, i.e.
// the pre-sparse simulator. Run under -race this is also the enforcement
// that every RoundFunc in this package confines its writes to machine-owned
// state, and that the arming contract covers every machine that must act on
// an empty inbox (a missed Arm shows up as a diverging result). The two
// sparse runs must additionally agree on the activity metrics themselves:
// scheduling is executor-independent.
func TestExecutorEquivalence(t *testing.T) {
	r := rng.New(424242)
	g := graph.Density(180, 0.35, r)
	g.AssignUniformWeights(r, 1, 10)
	w := make([]float64, g.N)
	for i := range w {
		w[i] = r.UniformWeight(1, 10)
	}
	vcInst := setcover.FromVertexCover(g, w)
	scInst := setcover.RandomSized(320, 64, 8, 5, r)

	type run struct {
		name string
		f    func(p Params) (interface{}, mpc.Metrics, error)
	}
	runs := []run{
		{"RLRMatching", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := RLRMatching(g, p, MatchingOptions{})
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"BMatching", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := BMatching(g, p, BMatchingOptions{Eps: 0.2})
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"RLRSetCover-VC", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := RLRSetCover(vcInst, p, CoverOptions{VertexCoverMode: true})
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"RLRSetCover-general", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := RLRSetCover(vcInst, p, CoverOptions{})
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"HGSetCover", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := HGSetCover(scInst, p, HGCoverOptions{Eps: 0.2})
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"HGSetCover-preprocess", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := HGSetCover(scInst, p, HGCoverOptions{Eps: 0.2, Preprocess: true})
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"MIS", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := MIS(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"MISFast", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := MISFast(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"LubyMIS", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := LubyMIS(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"MaximalClique", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := MaximalClique(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"VertexColouring", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := VertexColouring(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"EdgeColouring", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := EdgeColouring(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"FilteringMatching", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := FilteringMatching(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"FilteringWeighted", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := FilteringWeightedMatching(g, p)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
		{"LayeredParallel", func(p Params) (interface{}, mpc.Metrics, error) {
			res, err := LayeredParallelMatching(g, p, 0.5)
			if err != nil {
				return nil, mpc.Metrics{}, err
			}
			return res, res.Metrics, nil
		}},
	}
	modes := []struct {
		name string
		p    Params
	}{
		{"dense-seq", Params{Mu: 0.25, Seed: 99, Workers: 1, Dense: true}},
		{"dense-par", Params{Mu: 0.25, Seed: 99, Workers: 4, Dense: true}},
		{"sparse-seq", Params{Mu: 0.25, Seed: 99, Workers: 1}},
		{"sparse-par", Params{Mu: 0.25, Seed: 99, Workers: 4}},
	}
	for _, rn := range runs {
		rn := rn
		t.Run(rn.name, func(t *testing.T) {
			var baseStr string
			var baseMet mpc.Metrics
			var sparseMet []mpc.Metrics
			for i, mode := range modes {
				res, met, err := rn.f(mode.p)
				if err != nil {
					t.Fatalf("%s run: %v", mode.name, err)
				}
				if !mode.p.Dense {
					sparseMet = append(sparseMet, met)
					if met.ActiveSum > baseMet.ActiveSum {
						t.Errorf("%s ran more RoundFunc invocations (%d) than dense (%d)",
							mode.name, met.ActiveSum, baseMet.ActiveSum)
					}
				}
				// fmt prints struct fields in order and map keys sorted, so
				// the rendered forms compare the complete results (solution
				// sets, weights, histories, model metrics) with only the
				// activity fields masked.
				scrubResultActive(res)
				str := fmt.Sprintf("%+v", res)
				if i == 0 {
					baseStr, baseMet = str, met
					continue
				}
				if scrubActive(met) != scrubActive(baseMet) {
					t.Errorf("%s metrics diverge from dense-seq:\n  base %+v\n  got  %+v",
						mode.name, baseMet, met)
				}
				if str != baseStr {
					t.Errorf("%s results diverge from dense-seq:\n  base %.300s\n  got  %.300s",
						mode.name, baseStr, str)
				}
			}
			if len(sparseMet) == 2 && sparseMet[0] != sparseMet[1] {
				t.Errorf("sparse scheduling is executor-dependent:\n  seq %+v\n  par %+v",
					sparseMet[0], sparseMet[1])
			}
		})
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := graph.New(0)
	one := graph.New(1)
	p := Params{Mu: 0.2, Seed: 1}

	if res, err := RLRMatching(empty, p, MatchingOptions{}); err != nil || len(res.Edges) != 0 {
		t.Fatal("matching on empty graph")
	}
	if res, err := BMatching(empty, p, BMatchingOptions{}); err != nil || len(res.Edges) != 0 {
		t.Fatal("b-matching on empty graph")
	}
	if res, err := MISFast(one, p); err != nil || len(res.Set) != 1 {
		t.Fatal("MIS of a single vertex must be that vertex")
	}
	if res, err := MIS(one, p); err != nil || len(res.Set) != 1 {
		t.Fatal("Alg2 MIS of a single vertex")
	}
	if res, err := LubyMIS(one, p); err != nil || len(res.Set) != 1 {
		t.Fatal("Luby MIS of a single vertex")
	}
	if res, err := MaximalClique(one, p); err != nil || len(res.Clique) != 1 {
		t.Fatal("clique of a single vertex")
	}
	if res, err := VertexColouring(one, p); err != nil || len(res.Colours) != 1 {
		t.Fatal("colouring a single vertex")
	}
	if res, err := FilteringMatching(empty, p); err != nil || len(res.Edges) != 0 {
		t.Fatal("filtering on empty graph")
	}
	inst := &setcover.Instance{NumElements: 0}
	if res, err := RLRSetCover(inst, p, CoverOptions{}); err != nil || len(res.Cover) != 0 {
		t.Fatal("set cover with no elements")
	}
	if res, err := HGSetCover(inst, p, HGCoverOptions{}); err != nil || len(res.Cover) != 0 {
		t.Fatal("hg set cover with no elements")
	}
}
