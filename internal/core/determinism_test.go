package core

// Every algorithm must be exactly reproducible from its seed (the property
// the experiment harness depends on) and must handle degenerate inputs.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func TestDeterminismAllAlgorithms(t *testing.T) {
	r := rng.New(160)
	g := graph.Density(150, 0.35, r)
	g.AssignUniformWeights(r, 1, 10)
	w := make([]float64, g.N)
	for i := range w {
		w[i] = r.UniformWeight(1, 10)
	}
	vcInst := setcover.FromVertexCover(g, w)
	scInst := setcover.RandomSized(300, 60, 8, 5, r)
	p := Params{Mu: 0.25, Seed: 77}

	type run struct {
		name string
		f    func() (int, float64, int, error) // size, weight, rounds
	}
	runs := []run{
		{"RLRMatching", func() (int, float64, int, error) {
			res, err := RLRMatching(g, p, MatchingOptions{})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
		{"BMatching", func() (int, float64, int, error) {
			res, err := BMatching(g, p, BMatchingOptions{Eps: 0.2})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
		{"RLRSetCover", func() (int, float64, int, error) {
			res, err := RLRSetCover(vcInst, p, CoverOptions{VertexCoverMode: true})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Cover), res.Weight, res.Metrics.Rounds, nil
		}},
		{"HGSetCover", func() (int, float64, int, error) {
			res, err := HGSetCover(scInst, p, HGCoverOptions{Eps: 0.2})
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Cover), res.Weight, res.Metrics.Rounds, nil
		}},
		{"MIS", func() (int, float64, int, error) {
			res, err := MIS(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Set), 0, res.Metrics.Rounds, nil
		}},
		{"MISFast", func() (int, float64, int, error) {
			res, err := MISFast(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Set), 0, res.Metrics.Rounds, nil
		}},
		{"LubyMIS", func() (int, float64, int, error) {
			res, err := LubyMIS(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Set), 0, res.Metrics.Rounds, nil
		}},
		{"MaximalClique", func() (int, float64, int, error) {
			res, err := MaximalClique(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Clique), 0, res.Metrics.Rounds, nil
		}},
		{"VertexColouring", func() (int, float64, int, error) {
			res, err := VertexColouring(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.NumColours, 0, res.Metrics.Rounds, nil
		}},
		{"EdgeColouring", func() (int, float64, int, error) {
			res, err := EdgeColouring(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.NumColours, 0, res.Metrics.Rounds, nil
		}},
		{"FilteringMatching", func() (int, float64, int, error) {
			res, err := FilteringMatching(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), 0, res.Metrics.Rounds, nil
		}},
		{"FilteringWeighted", func() (int, float64, int, error) {
			res, err := FilteringWeightedMatching(g, p)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
		{"LayeredParallel", func() (int, float64, int, error) {
			res, err := LayeredParallelMatching(g, p, 0.5)
			if err != nil {
				return 0, 0, 0, err
			}
			return len(res.Edges), res.Weight, res.Metrics.Rounds, nil
		}},
	}
	for _, rn := range runs {
		s1, w1, r1, err := rn.f()
		if err != nil {
			t.Fatalf("%s first run: %v", rn.name, err)
		}
		s2, w2, r2, err := rn.f()
		if err != nil {
			t.Fatalf("%s second run: %v", rn.name, err)
		}
		if s1 != s2 || w1 != w2 || r1 != r2 {
			t.Fatalf("%s not deterministic: (%d,%v,%d) vs (%d,%v,%d)",
				rn.name, s1, w1, r1, s2, w2, r2)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := graph.New(0)
	one := graph.New(1)
	p := Params{Mu: 0.2, Seed: 1}

	if res, err := RLRMatching(empty, p, MatchingOptions{}); err != nil || len(res.Edges) != 0 {
		t.Fatal("matching on empty graph")
	}
	if res, err := BMatching(empty, p, BMatchingOptions{}); err != nil || len(res.Edges) != 0 {
		t.Fatal("b-matching on empty graph")
	}
	if res, err := MISFast(one, p); err != nil || len(res.Set) != 1 {
		t.Fatal("MIS of a single vertex must be that vertex")
	}
	if res, err := MIS(one, p); err != nil || len(res.Set) != 1 {
		t.Fatal("Alg2 MIS of a single vertex")
	}
	if res, err := LubyMIS(one, p); err != nil || len(res.Set) != 1 {
		t.Fatal("Luby MIS of a single vertex")
	}
	if res, err := MaximalClique(one, p); err != nil || len(res.Clique) != 1 {
		t.Fatal("clique of a single vertex")
	}
	if res, err := VertexColouring(one, p); err != nil || len(res.Colours) != 1 {
		t.Fatal("colouring a single vertex")
	}
	if res, err := FilteringMatching(empty, p); err != nil || len(res.Edges) != 0 {
		t.Fatal("filtering on empty graph")
	}
	inst := &setcover.Instance{NumElements: 0}
	if res, err := RLRSetCover(inst, p, CoverOptions{}); err != nil || len(res.Cover) != 0 {
		t.Fatal("set cover with no elements")
	}
	if res, err := HGSetCover(inst, p, HGCoverOptions{}); err != nil || len(res.Cover) != 0 {
		t.Fatal("hg set cover with no elements")
	}
}
