package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
)

// FilteringResult is the output of the Lattanzi et al. filtering baselines.
type FilteringResult struct {
	// Edges are the selected matching edges.
	Edges []int
	// VertexCover is the 2-approximate unweighted vertex cover induced by
	// the maximal matching (both endpoints of every matched edge).
	VertexCover map[int]bool
	// Iterations is the number of filtering iterations.
	Iterations int
	// Metrics are the measured MapReduce costs.
	Metrics mpc.Metrics
}

// FilteringMatching is the filtering technique of Lattanzi, Moseley, Suri
// and Vassilvitskii (SPAA 2011) for unweighted maximal matching, the
// prior-work baseline in Figure 1 (2-approximation for matching; its matched
// vertices give a 2-approximation for unweighted vertex cover).
//
// Each iteration samples edges with probability η/|E|, computes a maximal
// matching of the sample on the central machine, and keeps only edges with
// both endpoints unmatched; when the residue fits on one machine it is
// finished there.
func FilteringMatching(g *graph.Graph, p Params) (*FilteringResult, error) {
	n, m := g.N, g.M()
	if m == 0 {
		return &FilteringResult{VertexCover: map[int]bool{}}, nil
	}
	etaWords := eta(n, p.Mu, 8)
	M := dataMachines(3*m, 3*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)
	edgeOwner := func(id int) int { return 1 + id%(M-1) }

	ownedEdges := partitionByOwner(m, M, edgeOwner)
	resident := make([]int, M)
	for id := 0; id < m; id++ {
		resident[edgeOwner(id)] += 3
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}
	cluster.SetResident(0, n) // matched-vertex bitmap

	matched := make([]bool, n)
	alive := make([]bool, m)
	aliveCount := int64(m)
	for id := range alive {
		alive[id] = true
	}
	var matching []int
	iterations := 0

	// centralMaximal adds a maximal matching over the given edge ids
	// (respecting already-matched vertices) and returns the newly matched
	// vertices.
	centralMaximal := func(ids []int) []int {
		sort.Ints(ids)
		var newly []int
		for _, id := range ids {
			e := g.Edges[id]
			if !matched[e.U] && !matched[e.V] {
				matched[e.U] = true
				matched[e.V] = true
				matching = append(matching, id)
				newly = append(newly, e.U, e.V)
			}
		}
		return newly
	}

	for aliveCount > 0 {
		if iterations >= p.maxIter() {
			return nil, fmt.Errorf("core: FilteringMatching exceeded %d iterations", p.maxIter())
		}
		iterations++
		final := aliveCount <= int64(etaWords)
		prob := 1.0
		if !final {
			prob = math.Min(1, float64(etaWords)/float64(aliveCount))
		}
		// Draw the sample machine by machine before the round; the closures
		// replay each machine's plan concurrently.
		var sampled []int
		plan := make([][]int64, M)
		for machine := 1; machine < M; machine++ {
			for _, id := range ownedEdges[machine] {
				if !alive[id] {
					continue
				}
				if final || r.Bernoulli(prob) {
					plan[machine] = append(plan[machine], int64(id))
					sampled = append(sampled, id)
				}
			}
		}
		armPlanned(cluster, plan)
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for _, id := range plan[machine] {
				out.SendInts(0, id)
			}
		})
		if err != nil {
			return nil, err
		}
		newly := centralMaximal(sampled)

		// Broadcast the newly matched vertices down the tree; owners kill
		// incident edges.
		payload := make([]int64, len(newly))
		for i, v := range newly {
			payload[i] = int64(v)
		}
		if err := tree.Broadcast(cluster, payload, nil); err != nil {
			return nil, err
		}
		counts := make([]int64, M)
		for id := 0; id < m; id++ {
			if alive[id] {
				e := g.Edges[id]
				if matched[e.U] || matched[e.V] || final {
					alive[id] = false
				}
			}
			if alive[id] {
				counts[edgeOwner(id)]++
			}
		}
		total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
			return []int64{counts[machine]}
		})
		if err != nil {
			return nil, err
		}
		aliveCount = total[0]
	}

	// matched is exactly the endpoint set of the maximal matching, so the
	// public cover map is one pre-sized conversion from the bitmap.
	return &FilteringResult{
		Edges:       matching,
		VertexCover: graph.VertexSet(matched),
		Iterations:  iterations,
		Metrics:     cluster.Metrics(),
	}, nil
}
