package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
)

// FilteringWeightedMatching is the layered filtering 8-approximation for
// maximum weight matching of Lattanzi et al. (SPAA 2011) — the prior-work
// comparator row of Figure 1 that the paper's 2-approximation (Algorithm 4)
// improves on.
//
// Edges are bucketed into geometric weight classes [2^i·w_min, 2^{i+1}·w_min)
// and the classes are processed from heaviest to lightest; within a class an
// unweighted maximal matching is computed by filtering, restricted to edges
// whose endpoints are still free. Greedy-by-layer loses a factor 4 on top of
// maximality's factor 2, giving 8.
func FilteringWeightedMatching(g *graph.Graph, p Params) (*MatchingResult, error) {
	n, m := g.N, g.M()
	if m == 0 {
		return &MatchingResult{}, nil
	}
	wmin := math.Inf(1)
	for _, e := range g.Edges {
		if e.W <= 0 {
			return nil, fmt.Errorf("core: FilteringWeightedMatching requires positive weights")
		}
		wmin = math.Min(wmin, e.W)
	}
	classOf := func(w float64) int { return int(math.Floor(math.Log2(w / wmin))) }
	maxClass := 0
	for _, e := range g.Edges {
		if c := classOf(e.W); c > maxClass {
			maxClass = c
		}
	}

	etaWords := eta(n, p.Mu, 8)
	M := dataMachines(3*m, 3*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)
	edgeOwner := func(id int) int { return 1 + id%(M-1) }

	ownedEdges := partitionByOwner(m, M, edgeOwner)
	resident := make([]int, M)
	for id := 0; id < m; id++ {
		resident[edgeOwner(id)] += 3
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}
	cluster.SetResident(0, n)

	matched := make([]bool, n)
	var matching []int
	res := &MatchingResult{}

	// filterClass runs the unweighted filtering loop over the edges of one
	// weight class, respecting the globally matched vertices.
	filterClass := func(class int) error {
		alive := make([]bool, m)
		aliveCount := int64(0)
		for id, e := range g.Edges {
			if classOf(e.W) == class && !matched[e.U] && !matched[e.V] {
				alive[id] = true
				aliveCount++
			}
		}
		for aliveCount > 0 {
			if res.Iterations >= p.maxIter() {
				return fmt.Errorf("core: FilteringWeightedMatching exceeded %d iterations", p.maxIter())
			}
			res.Iterations++
			final := aliveCount <= int64(etaWords)
			prob := 1.0
			if !final {
				prob = math.Min(1, float64(etaWords)/float64(aliveCount))
			}
			var sampled []int
			plan := make([][]int64, M)
			for machine := 1; machine < M; machine++ {
				for _, id := range ownedEdges[machine] {
					if !alive[id] {
						continue
					}
					if final || r.Bernoulli(prob) {
						plan[machine] = append(plan[machine], int64(id))
						sampled = append(sampled, id)
					}
				}
			}
			armPlanned(cluster, plan)
			err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
				for _, id := range plan[machine] {
					out.SendInts(0, id)
				}
			})
			if err != nil {
				return err
			}
			sort.Ints(sampled)
			var newly []int64
			for _, id := range sampled {
				e := g.Edges[id]
				if !matched[e.U] && !matched[e.V] {
					matched[e.U] = true
					matched[e.V] = true
					matching = append(matching, id)
					newly = append(newly, int64(e.U), int64(e.V))
				}
			}
			if err := tree.Broadcast(cluster, newly, nil); err != nil {
				return err
			}
			counts := make([]int64, M)
			for id := 0; id < m; id++ {
				if alive[id] {
					e := g.Edges[id]
					if matched[e.U] || matched[e.V] || final {
						alive[id] = false
					}
				}
				if alive[id] {
					counts[edgeOwner(id)]++
				}
			}
			total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
				return []int64{counts[machine]}
			})
			if err != nil {
				return err
			}
			aliveCount = total[0]
		}
		return nil
	}

	for class := maxClass; class >= 0; class-- {
		// Skipping empty classes costs nothing: check locally whether any
		// edge of this class is alive before spending rounds on it.
		empty := true
		for _, e := range g.Edges {
			if classOf(e.W) == class && !matched[e.U] && !matched[e.V] {
				empty = false
				break
			}
		}
		if empty {
			continue
		}
		if err := filterClass(class); err != nil {
			return nil, err
		}
	}

	res.Edges = matching
	res.Weight = graph.MatchingWeight(g, matching)
	res.Metrics = cluster.Metrics()
	return res, nil
}

// LayeredParallelMatching is the Crouch–Stubbs-style improvement over the
// sequential layering of FilteringWeightedMatching — the (4+ε) comparator
// row of Figure 1 ([14], applied to MapReduce by Grigorescu et al.). Edge
// weights are rounded into geometric classes [(1+eps)^i, (1+eps)^{i+1}); an
// unweighted maximal matching is computed in every class simultaneously
// (each class's filtering iterations share the cluster's rounds rather than
// running one class after another); finally the central machine merges the
// class matchings greedily from heaviest class to lightest.
func LayeredParallelMatching(g *graph.Graph, p Params, eps float64) (*MatchingResult, error) {
	n, m := g.N, g.M()
	if m == 0 {
		return &MatchingResult{}, nil
	}
	if eps <= 0 {
		eps = 0.5
	}
	wmin := math.Inf(1)
	for _, e := range g.Edges {
		if e.W <= 0 {
			return nil, fmt.Errorf("core: LayeredParallelMatching requires positive weights")
		}
		wmin = math.Min(wmin, e.W)
	}
	base := math.Log(1 + eps)
	classOf := func(w float64) int { return int(math.Floor(math.Log(w/wmin) / base)) }
	maxClass := 0
	for _, e := range g.Edges {
		if c := classOf(e.W); c > maxClass {
			maxClass = c
		}
	}

	etaWords := eta(n, p.Mu, 8)
	M := dataMachines(3*m, 3*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)
	edgeOwner := func(id int) int { return 1 + id%(M-1) }

	ownedEdges := partitionByOwner(m, M, edgeOwner)
	resident := make([]int, M)
	for id := 0; id < m; id++ {
		resident[edgeOwner(id)] += 3
	}
	for machine := 1; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}
	cluster.SetResident(0, n)

	// Per-class matched-vertex sets and matchings, filtered in lockstep:
	// every iteration samples each class's alive edges in one shared round.
	matchedIn := make([]map[int]bool, maxClass+1)
	classMatch := make([][]int, maxClass+1)
	for c := range matchedIn {
		matchedIn[c] = make(map[int]bool)
	}
	alive := make([]bool, m)
	aliveCount := int64(0)
	for id := range alive {
		alive[id] = true
		aliveCount++
	}
	res := &MatchingResult{}
	for aliveCount > 0 {
		if res.Iterations >= p.maxIter() {
			return nil, fmt.Errorf("core: LayeredParallelMatching exceeded %d iterations", p.maxIter())
		}
		res.Iterations++
		final := aliveCount <= int64(etaWords)
		prob := 1.0
		if !final {
			prob = math.Min(1, float64(etaWords)/float64(aliveCount))
		}
		var sampled []int
		plan := make([][]int64, M)
		for machine := 1; machine < M; machine++ {
			for _, id := range ownedEdges[machine] {
				if !alive[id] {
					continue
				}
				if final || r.Bernoulli(prob) {
					plan[machine] = append(plan[machine], int64(id))
					sampled = append(sampled, id)
				}
			}
		}
		armPlanned(cluster, plan)
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for _, id := range plan[machine] {
				out.SendInts(0, id)
			}
		})
		if err != nil {
			return nil, err
		}
		sort.Ints(sampled)
		var newly []int64
		for _, id := range sampled {
			e := g.Edges[id]
			c := classOf(e.W)
			if !matchedIn[c][e.U] && !matchedIn[c][e.V] {
				matchedIn[c][e.U] = true
				matchedIn[c][e.V] = true
				classMatch[c] = append(classMatch[c], id)
				newly = append(newly, int64(c), int64(e.U), int64(e.V))
			}
		}
		if err := tree.Broadcast(cluster, newly, nil); err != nil {
			return nil, err
		}
		counts := make([]int64, M)
		for id := 0; id < m; id++ {
			if alive[id] {
				e := g.Edges[id]
				c := classOf(e.W)
				if matchedIn[c][e.U] || matchedIn[c][e.V] || final {
					alive[id] = false
				}
			}
			if alive[id] {
				counts[edgeOwner(id)]++
			}
		}
		total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
			return []int64{counts[machine]}
		})
		if err != nil {
			return nil, err
		}
		aliveCount = total[0]
	}

	// Merge on the central machine: classes from heaviest to lightest,
	// edges greedily if both endpoints are globally free.
	used := make([]bool, n)
	var matching []int
	for c := maxClass; c >= 0; c-- {
		for _, id := range classMatch[c] {
			e := g.Edges[id]
			if !used[e.U] && !used[e.V] {
				used[e.U] = true
				used[e.V] = true
				matching = append(matching, id)
			}
		}
	}
	res.Edges = matching
	res.Weight = graph.MatchingWeight(g, matching)
	res.Metrics = cluster.Metrics()
	return res, nil
}
