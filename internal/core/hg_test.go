package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
)

func harmonic(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

func TestHGSetCoverSmallExact(t *testing.T) {
	r := rng.New(70)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(10)
		m := 4 + r.Intn(12)
		inst := setcover.RandomSized(n, m, 5, 4, r)
		eps := 0.2
		res, err := HGSetCover(inst, Params{Mu: 0.3, Seed: uint64(trial)}, HGCoverOptions{Eps: eps})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !inst.IsCover(res.Cover) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		_, opt := seq.BruteForceSetCover(inst)
		bound := (1 + eps) * harmonic(inst.MaxSetSize()) * opt
		if res.Weight > bound+1e-9 {
			t.Fatalf("trial %d: weight %v > (1+eps)H_delta*OPT = %v", trial, res.Weight, bound)
		}
	}
}

func TestHGSetCoverMedium(t *testing.T) {
	// The m << n regime of Theorem 4.6.
	r := rng.New(71)
	inst := setcover.RandomSized(3000, 200, 12, 8, r)
	res, err := HGSetCover(inst, Params{Mu: 0.3, Seed: 3}, HGCoverOptions{Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("not a cover")
	}
	// Compare against sequential greedy: the MR solution may not beat it,
	// but should be within (1+eps)^2 of it on average-quality instances.
	greedy := inst.Weight(seq.GreedySetCover(inst, 0))
	if res.Weight > 3*greedy {
		t.Fatalf("MR cover %v is wildly worse than greedy %v", res.Weight, greedy)
	}
	if res.Metrics.Rounds == 0 {
		t.Fatal("no rounds")
	}
}

func TestHGSetCoverVsFApprox(t *testing.T) {
	// On an instance with large f and small delta... the lnDelta algorithm
	// should not be catastrophically worse; both must be valid covers.
	r := rng.New(72)
	inst := setcover.RandomSized(500, 100, 6, 5, r)
	hg, err := HGSetCover(inst, Params{Mu: 0.3, Seed: 1}, HGCoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rlr, err := RLRSetCover(inst, Params{Mu: 0.3, Seed: 1}, CoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(hg.Cover) || !inst.IsCover(rlr.Cover) {
		t.Fatal("invalid cover")
	}
	// With small delta (H_delta ~ 2.5) and large f (~tens), hungry-greedy
	// should usually win on weight.
	if hg.Weight > 2*rlr.Weight {
		t.Fatalf("hungry-greedy %v should not be 2x worse than f-approx %v (f=%d, delta=%d)",
			hg.Weight, rlr.Weight, inst.MaxFrequency(), inst.MaxSetSize())
	}
}

func TestBMatchingSmallExact(t *testing.T) {
	r := rng.New(73)
	for _, bcap := range []int{1, 2, 3} {
		bf := func(int) int { return bcap }
		for trial := 0; trial < 15; trial++ {
			n := 5 + r.Intn(5)
			m := 1 + r.Intn(14)
			if max := n * (n - 1) / 2; m > max {
				m = max
			}
			g := graph.GNM(n, m, r)
			g.AssignUniformWeights(r, 1, 10)
			eps := 0.15
			res, err := BMatching(g, Params{Mu: 0.3, Seed: uint64(trial)}, BMatchingOptions{B: bf, Eps: eps})
			if err != nil {
				t.Fatalf("b=%d trial %d: %v", bcap, trial, err)
			}
			if !graph.IsBMatching(g, res.Edges, bf) {
				t.Fatalf("b=%d trial %d: invalid b-matching", bcap, trial)
			}
			opt := seq.BruteForceBMatching(g, bf)
			ratio := 3 - 2/math.Max(2, float64(bcap)) + 2*eps
			if ratio*res.Weight < opt-1e-9 {
				t.Fatalf("b=%d trial %d: weight %v vs OPT %v breaks ratio %v",
					bcap, trial, res.Weight, opt, ratio)
			}
		}
	}
}

func TestBMatchingMedium(t *testing.T) {
	r := rng.New(74)
	g := graph.Density(200, 0.3, r)
	g.AssignUniformWeights(r, 1, 50)
	caps := make([]int, g.N)
	for v := range caps {
		caps[v] = 1 + r.Intn(4)
	}
	bf := func(v int) int { return caps[v] }
	res, err := BMatching(g, Params{Mu: 0.25, Seed: 8}, BMatchingOptions{B: bf, Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsBMatching(g, res.Edges, bf) {
		t.Fatal("invalid b-matching")
	}
	// Sanity: with capacities >= 1 everywhere the solution should weigh at
	// least as much as a plain greedy matching divided by the ratio bound.
	greedy := graph.MatchingWeight(g, seq.GreedyMatching(g))
	if res.Weight < greedy/4 {
		t.Fatalf("b-matching weight %v suspiciously below matching %v", res.Weight, greedy)
	}
}

func TestVertexColouringSmall(t *testing.T) {
	r := rng.New(75)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(30)
		m := r.Intn(4*n + 1)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := VertexColouring(g, Params{Mu: 0.2, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsProperVertexColouring(g, res.Colours) {
			t.Fatalf("trial %d: improper colouring", trial)
		}
	}
}

func TestVertexColouringBound(t *testing.T) {
	// Medium graph: colour count should be at most
	// (1 + 6*sqrt(ln n)/n^{µ/2} + n^{-µ}) * ∆ + κ (rounding slack).
	r := rng.New(76)
	n := 500
	mu := 0.2
	g := graph.Density(n, 0.4, r)
	res, err := VertexColouring(g, Params{Mu: mu, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsProperVertexColouring(g, res.Colours) {
		t.Fatal("improper")
	}
	delta := float64(g.MaxDegree())
	slack := 1 + math.Sqrt(6*math.Log(float64(n)))/math.Pow(float64(n), mu/2) + math.Pow(float64(n), -mu)
	bound := slack*delta + float64(res.Groups)
	if float64(res.NumColours) > bound {
		t.Fatalf("%d colours > (1+o(1))∆ bound %v (∆=%v, κ=%d)", res.NumColours, bound, delta, res.Groups)
	}
}

func TestEdgeColouringSmall(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(25)
		m := r.Intn(4*n + 1)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		res, err := EdgeColouring(g, Params{Mu: 0.2, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsProperEdgeColouring(g, res.Colours) {
			t.Fatalf("trial %d: improper edge colouring", trial)
		}
	}
}

func TestEdgeColouringBound(t *testing.T) {
	r := rng.New(78)
	n := 400
	mu := 0.2
	g := graph.Density(n, 0.4, r)
	res, err := EdgeColouring(g, Params{Mu: mu, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsProperEdgeColouring(g, res.Colours) {
		t.Fatal("improper")
	}
	delta := float64(g.MaxDegree())
	slack := 1 + math.Sqrt(6*math.Log(float64(n)))/math.Pow(float64(n), mu/2) + math.Pow(float64(n), -mu)
	bound := slack*delta + float64(res.Groups)
	if float64(res.NumColours) > bound {
		t.Fatalf("%d colours > bound %v (∆=%v, κ=%d)", res.NumColours, bound, delta, res.Groups)
	}
}

func TestColouringConstantRounds(t *testing.T) {
	// Algorithm 5 must use O(1) rounds regardless of graph size.
	r := rng.New(79)
	for _, n := range []int{100, 400, 900} {
		g := graph.Density(n, 0.3, r)
		res, err := VertexColouring(g, Params{Mu: 0.2, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.Rounds > 4 {
			t.Fatalf("n=%d: %d rounds, want O(1) <= 4", n, res.Metrics.Rounds)
		}
		rese, err := EdgeColouring(g, Params{Mu: 0.2, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if rese.Metrics.Rounds > 4 {
			t.Fatalf("edge n=%d: %d rounds", n, rese.Metrics.Rounds)
		}
	}
}

func TestColouringEmptyGraph(t *testing.T) {
	g := graph.New(5)
	res, err := VertexColouring(g, Params{Mu: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsProperVertexColouring(g, res.Colours) {
		t.Fatal("empty graph colouring")
	}
	rese, err := EdgeColouring(g, Params{Mu: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rese.Colours) != 0 {
		t.Fatal("edge colours on empty graph")
	}
}

func TestHGSetCoverPreprocess(t *testing.T) {
	// A wide weight spread: without preprocessing the L-ladder is long;
	// Remark 4.7 clamps it. The solution must stay a valid cover and cheap
	// sets must be auto-selected while absurdly expensive ones never appear.
	r := rng.New(83)
	inst := setcover.RandomSized(800, 120, 8, 4, r)
	// Make set 0 essentially free and set 1 absurdly expensive.
	inst.Weights[0] = 1e-9
	inst.Weights[1] = 1e12
	res, err := HGSetCover(inst, Params{Mu: 0.3, Seed: 9}, HGCoverOptions{Eps: 0.2, Preprocess: true})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("not a cover")
	}
	foundCheap, foundExpensive := false, false
	for _, i := range res.Cover {
		if i == 0 {
			foundCheap = true
		}
		if i == 1 {
			foundExpensive = true
		}
	}
	if !foundCheap {
		t.Fatal("free set not auto-selected by preprocessing")
	}
	if foundExpensive {
		t.Fatal("absurdly expensive set selected despite Remark 4.7 clamp")
	}
}

func TestHGSetCoverPreprocessMatchesPlainQuality(t *testing.T) {
	r := rng.New(84)
	inst := setcover.RandomSized(600, 100, 8, 6, r)
	plain, err := HGSetCover(inst, Params{Mu: 0.3, Seed: 2}, HGCoverOptions{Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := HGSetCover(inst, Params{Mu: 0.3, Seed: 2}, HGCoverOptions{Eps: 0.2, Preprocess: true})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(pre.Cover) {
		t.Fatal("preprocessed cover invalid")
	}
	// Preprocessing costs at most ~ε·OPT extra; on benign instances the two
	// should be close.
	if pre.Weight > 1.5*plain.Weight+1e-9 {
		t.Fatalf("preprocessed weight %v far above plain %v", pre.Weight, plain.Weight)
	}
}
