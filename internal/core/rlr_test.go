package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
	"repro/internal/setcover"
)

func TestRLRMatchingEmptyGraph(t *testing.T) {
	g := graph.New(5)
	res, err := RLRMatching(g, Params{Mu: 0.2, Seed: 1}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 {
		t.Fatal("matching on empty graph")
	}
}

func TestRLRMatchingSmallExact(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(5)
		m := 1 + r.Intn(15)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		g.AssignUniformWeights(r, 1, 10)
		res, err := RLRMatching(g, Params{Mu: 0.3, Seed: uint64(trial)}, MatchingOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsMatching(g, res.Edges) {
			t.Fatalf("trial %d: invalid matching", trial)
		}
		opt := seq.BruteForceMatching(g)
		if 2*res.Weight < opt-1e-9 {
			t.Fatalf("trial %d: weight %v < OPT/2 (OPT=%v)", trial, res.Weight, opt)
		}
	}
}

func TestRLRMatchingMediumVsSequential(t *testing.T) {
	r := rng.New(6)
	g := graph.Density(300, 0.25, r)
	g.AssignUniformWeights(r, 1, 100)
	res, err := RLRMatching(g, Params{Mu: 0.15, Seed: 99}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, res.Edges) {
		t.Fatal("invalid matching")
	}
	// The sequential local ratio matching is a 2-approximation too; the two
	// should be within a factor 2 of each other (both >= OPT/2, <= OPT).
	sw := graph.MatchingWeight(g, seq.LocalRatioMatching(g))
	if res.Weight < sw/2-1e-9 || sw < res.Weight/2-1e-9 {
		t.Fatalf("MR weight %v vs sequential %v outside mutual factor 2", res.Weight, sw)
	}
	if res.Metrics.Rounds == 0 || res.Metrics.WordsSent == 0 {
		t.Fatal("metrics not recorded")
	}
	if res.Metrics.Violations != 0 {
		t.Fatalf("space violations: %d (max space %d)", res.Metrics.Violations, res.Metrics.MaxSpace)
	}
}

func TestRLRMatchingDeterministicGivenSeed(t *testing.T) {
	r := rng.New(7)
	g := graph.Density(100, 0.3, r)
	g.AssignUniformWeights(r, 1, 10)
	a, err := RLRMatching(g, Params{Mu: 0.2, Seed: 42}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RLRMatching(g, Params{Mu: 0.2, Seed: 42}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight || a.Iterations != b.Iterations {
		t.Fatal("same seed produced different runs")
	}
	if a.Metrics.Rounds != b.Metrics.Rounds || a.Metrics.WordsSent != b.Metrics.WordsSent {
		t.Fatal("same seed produced different metrics")
	}
}

func TestRLRMatchingLinearSpaceVariant(t *testing.T) {
	// Appendix C: η = Θ(n). More iterations, but still a valid
	// 2-approximation.
	r := rng.New(8)
	g := graph.Density(150, 0.3, r)
	g.AssignUniformWeights(r, 1, 10)
	res, err := RLRMatching(g, Params{Mu: 0, Seed: 3}, MatchingOptions{Eta: g.N})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, res.Edges) {
		t.Fatal("invalid matching")
	}
	resBig, err := RLRMatching(g, Params{Mu: 0.4, Seed: 3}, MatchingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations <= resBig.Iterations {
		t.Fatalf("linear-space variant should need more iterations: %d vs %d",
			res.Iterations, resBig.Iterations)
	}
}

func TestRLRSetCoverSmallExact(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(8)
		m := 4 + r.Intn(20)
		f := 1 + r.Intn(3)
		if f > n {
			f = n
		}
		inst := setcover.RandomFrequency(n, m, f, 5, r)
		res, err := RLRSetCover(inst, Params{Mu: 0.3, Seed: uint64(trial)}, CoverOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !inst.IsCover(res.Cover) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		_, opt := seq.BruteForceSetCover(inst)
		ff := float64(inst.MaxFrequency())
		if res.Weight > ff*opt+1e-9 {
			t.Fatalf("trial %d: weight %v > f*OPT = %v*%v", trial, res.Weight, ff, opt)
		}
		if res.LowerBound > opt+1e-9 {
			t.Fatalf("trial %d: lower bound %v > OPT %v", trial, res.LowerBound, opt)
		}
	}
}

func TestRLRSetCoverMedium(t *testing.T) {
	r := rng.New(10)
	inst := setcover.RandomFrequency(60, 4000, 4, 10, r)
	res, err := RLRSetCover(inst, Params{Mu: 0.2, Seed: 5}, CoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("not a cover")
	}
	f := float64(inst.MaxFrequency())
	if res.Weight > f*res.LowerBound+1e-9 {
		t.Fatalf("weight %v > f * lower bound %v", res.Weight, f*res.LowerBound)
	}
	if res.Metrics.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestRLRVertexCoverFastPath(t *testing.T) {
	r := rng.New(11)
	g := graph.Density(120, 0.3, r)
	w := make([]float64, g.N)
	for i := range w {
		w[i] = r.UniformWeight(1, 10)
	}
	inst := setcover.FromVertexCover(g, w)
	resVC, err := RLRSetCover(inst, Params{Mu: 0.2, Seed: 6}, CoverOptions{VertexCoverMode: true})
	if err != nil {
		t.Fatal(err)
	}
	coverSet := map[int]bool{}
	for _, v := range resVC.Cover {
		coverSet[v] = true
	}
	if !graph.IsVertexCover(g, coverSet) {
		t.Fatal("not a vertex cover")
	}
	if resVC.Weight > 2*resVC.LowerBound+1e-9 {
		t.Fatalf("weight %v > 2*LB %v", resVC.Weight, resVC.LowerBound)
	}
	// The fast path avoids the broadcast tree; with the same seed and
	// instance it should use at most as many rounds per iteration as the
	// general path.
	resGen, err := RLRSetCover(inst, Params{Mu: 0.2, Seed: 6}, CoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	perIterVC := float64(resVC.Metrics.Rounds) / float64(resVC.Iterations)
	perIterGen := float64(resGen.Metrics.Rounds) / float64(resGen.Iterations)
	if perIterVC > perIterGen+1e-9 {
		t.Fatalf("fast path uses more rounds/iter (%v) than general (%v)", perIterVC, perIterGen)
	}
}

func TestRLRSetCoverSingleSetInstance(t *testing.T) {
	inst := &setcover.Instance{
		NumElements: 3,
		Sets:        [][]int{{0, 1, 2}},
		Weights:     []float64{2},
	}
	res, err := RLRSetCover(inst, Params{Mu: 0.2, Seed: 1}, CoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 1 || res.Cover[0] != 0 {
		t.Fatalf("cover = %v", res.Cover)
	}
}

func TestRLRSetCoverUncoverableElement(t *testing.T) {
	inst := &setcover.Instance{
		NumElements: 2,
		Sets:        [][]int{{0}},
		Weights:     []float64{1},
	}
	if _, err := RLRSetCover(inst, Params{Mu: 0.2, Seed: 1}, CoverOptions{}); err == nil {
		t.Fatal("expected error for uncoverable element")
	}
}
