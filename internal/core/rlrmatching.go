package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/seq"
)

// MatchingResult is the output of RLRMatching and BMatching.
type MatchingResult struct {
	// Edges are the indices of the selected edges.
	Edges []int
	// Weight is the total weight of the selection.
	Weight float64
	// Iterations is the number of outer sampling iterations executed.
	Iterations int
	// StackSize is the number of edges the local ratio stack accumulated.
	StackSize int
	// History records the alive-edge count after each iteration: the decay
	// trajectory bounded by Lemmas 5.3/5.4 (factor n^{µ/4} per iteration)
	// and Lemma C.1 (constant factor when η = Θ(n)).
	History []int64
	// Metrics are the measured MapReduce costs.
	Metrics mpc.Metrics
}

// MatchingOptions tunes RLRMatching beyond the shared Params.
type MatchingOptions struct {
	// Eta overrides the per-machine sample budget η (default n^{1+µ}).
	// Appendix C's linear-space variant corresponds to Eta = n (or µ = 0).
	Eta int
}

// RLRMatching is Algorithm 4: the randomized local ratio 2-approximation for
// maximum weight matching in MapReduce (Theorems 5.5 and 5.6).
//
// Edges are distributed across machines; in each iteration every alive edge
// samples itself into E'_u and E'_v independently with probability
// p = min(η/|E_i|, 1) and sampled edges are sent to the central machine,
// which runs the Paz–Schwartzman local ratio step for each vertex (push the
// heaviest sampled alive edge). The central machine then routes the changed
// potentials ϕ(v) back through the vertex owners to the edges, which update
// their alive bits. When no positive-weight edge remains, the central
// machine unwinds the stack into a matching.
//
// With η = n^{1+µ}, µ constant, the loop terminates in O(c/µ) iterations
// w.h.p.; with η = Θ(n) (µ = 0) it terminates in O(log n) iterations
// (Appendix C).
func RLRMatching(g *graph.Graph, p Params, opt MatchingOptions) (*MatchingResult, error) {
	n, m := g.N, g.M()
	if m == 0 {
		return &MatchingResult{}, nil
	}
	etaWords := opt.Eta
	if etaWords <= 0 {
		etaWords = eta(n, p.Mu, 8)
	}
	// Machine 0 is the dedicated central machine; machines 1..M-1 hold the
	// edge and vertex partitions.
	M := dataMachines(4*m, 4*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)

	edgeOwner := func(id int) int { return 1 + id%(M-1) }
	vertexOwner := func(v int) int { return 1 + v%(M-1) }

	// Resident state: each edge owner stores (u, v, w, alive) per edge; each
	// vertex owner stores ϕ(v) plus the incident edge list used to forward
	// potentials.
	alive := make([]bool, m)
	for id := range alive {
		alive[id] = g.Edges[id].W > 0
	}
	g.Build()
	ownedEdges := partitionByOwner(m, M, edgeOwner)
	resident := make([]int, M)
	for id := range g.Edges {
		resident[edgeOwner(id)] += 4
	}
	for v := 0; v < n; v++ {
		resident[vertexOwner(v)] += 2 + g.Degree(v)
	}
	for machine := 0; machine < M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}

	// Central machine state: the local ratio potentials and stack.
	lr := seq.NewMatchingLocalRatio(g)
	cluster.AddResident(0, 2*n) // ϕ plus stacked-bit bookkeeping

	res := &MatchingResult{}
	aliveCount := int64(0)
	for _, a := range alive {
		if a {
			aliveCount++
		}
	}

	for iter := 0; aliveCount > 0; iter++ {
		if iter >= p.maxIter() {
			return nil, fmt.Errorf("core: RLRMatching exceeded %d iterations", p.maxIter())
		}
		res.Iterations++

		// Sampling round: edge owners sample each alive edge into E'_u and
		// E'_v independently and ship sampled edges to the central machine.
		// Message layout: [edgeID, sideMask] with sideMask bit0 = sampled
		// for U's list, bit1 = sampled for V's list.
		full := aliveCount < 4*int64(etaWords)
		prob := 1.0
		if !full {
			prob = math.Min(1, float64(etaWords)/float64(aliveCount))
		}
		// Draw the two per-edge side samples machine by machine before the
		// round; the closures replay each machine's plan concurrently.
		sampledSides := int64(0)
		var sampleIDs []int64
		plan := make([][]int64, M)
		for machine := 1; machine < M; machine++ {
			for _, id := range ownedEdges[machine] {
				if !alive[id] {
					continue
				}
				mask := int64(0)
				if full || r.Bernoulli(prob) {
					mask |= 1
				}
				if full || r.Bernoulli(prob) {
					mask |= 2
				}
				if mask != 0 {
					plan[machine] = append(plan[machine], int64(id), mask)
					if mask&1 != 0 {
						sampledSides++
					}
					if mask&2 != 0 {
						sampledSides++
					}
					sampleIDs = append(sampleIDs, int64(id), mask)
				}
			}
		}
		armPlanned(cluster, plan)
		err := cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for i := 0; i+1 < len(plan[machine]); i += 2 {
				out.SendInts(0, plan[machine][i], plan[machine][i+1])
			}
		})
		if err != nil {
			return nil, err
		}

		// Line 10-11: if Σ|E'_v| > 8η the algorithm fails. This is a
		// w.h.p.-never event at the paper's constants.
		if !full && sampledSides > 8*int64(etaWords) {
			return nil, fmt.Errorf("core: RLRMatching sampling overflow (%d > 8η=%d)", sampledSides, 8*etaWords)
		}

		// Central machine: group sampled edges per vertex and push the
		// heaviest alive edge of each E'_v (Lines 12-14).
		perVertex := make(map[int][]int) // vertex -> sampled edge ids
		for i := 0; i+1 < len(sampleIDs); i += 2 {
			id, mask := int(sampleIDs[i]), sampleIDs[i+1]
			e := g.Edges[id]
			if mask&1 != 0 {
				perVertex[e.U] = append(perVertex[e.U], id)
			}
			if mask&2 != 0 {
				perVertex[e.V] = append(perVertex[e.V], id)
			}
		}
		vertices := make([]int, 0, len(perVertex))
		for v := range perVertex {
			vertices = append(vertices, v)
		}
		sort.Ints(vertices)
		changed := make(map[int]bool)
		var pushed []int64
		for _, v := range vertices {
			best, bestW := -1, 0.0
			for _, id := range perVertex[v] {
				if !lr.Alive(id) {
					continue
				}
				if w := lr.Reduced(id); w > bestW {
					best, bestW = id, w
				}
			}
			if best < 0 {
				continue
			}
			if _, ok := lr.Push(best); ok {
				e := g.Edges[best]
				changed[e.U] = true
				changed[e.V] = true
				pushed = append(pushed, int64(best))
			}
		}
		cluster.SetResident(0, 2*n+2*lr.StackSize())

		// Update round A: central sends the changed ϕ values to the vertex
		// owners and the stacked edge ids to the edge owners (§5.3).
		changedList := make([]int, 0, len(changed))
		for v := range changed {
			changedList = append(changedList, v)
		}
		sort.Ints(changedList)
		cluster.Arm(0) // rounds B and the delivery round run off their inboxes
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			if machine != 0 {
				return
			}
			for _, v := range changedList {
				out.Begin(vertexOwner(v))
				out.Int(int64(v))
				out.Float(lr.Phi(v))
				out.End()
			}
			for _, id := range pushed {
				out.SendInts(edgeOwner(int(id)), id)
			}
		})
		if err != nil {
			return nil, err
		}

		// Update round B: vertex owners forward ϕ(v) to the machines owning
		// v's alive incident edges; edge owners mark stacked edges dead and
		// recompute aliveness from the received potentials.
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				if len(msg.Floats) == 1 {
					v := int(msg.Ints[0])
					phi := msg.Floats[0]
					for _, id := range g.IncidentEdges(v) {
						if alive[id] {
							out.Begin(edgeOwner(int(id)))
							out.Int(int64(id))
							out.Int(int64(v))
							out.Float(phi)
							out.End()
						}
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		// Deliver round B's messages and apply them. Stacked edges die; an
		// edge receiving a potential recomputes its reduced weight (the
		// simulator reads lr, which holds exactly the values the messages
		// carry).
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for msg, ok := in.Next(); ok; msg, ok = in.Next() {
				if len(msg.Floats) == 1 && len(msg.Ints) == 2 {
					id := int(msg.Ints[0])
					if alive[id] && !lr.Alive(id) {
						alive[id] = false
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for _, id := range pushed {
			alive[id] = false
		}
		// Any edge whose potential made it non-positive is dead even if its
		// owner received no message this iteration (both endpoints
		// unchanged ⇒ weight unchanged, so this only affects edges with a
		// changed endpoint — exactly the ones messaged above).
		// Recompute the alive count with an aggregation over the tree.
		counts := make([]int64, M)
		for id := 0; id < m; id++ {
			if alive[id] && !lr.Alive(id) {
				alive[id] = false
			}
			if alive[id] {
				counts[edgeOwner(id)]++
			}
		}
		total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
			return []int64{counts[machine]}
		})
		if err != nil {
			return nil, err
		}
		aliveCount = total[0]
		res.History = append(res.History, aliveCount)
	}

	res.Edges = lr.Unwind()
	res.Weight = graph.MatchingWeight(g, res.Edges)
	res.StackSize = lr.StackSize()
	res.Metrics = cluster.Metrics()
	return res, nil
}
