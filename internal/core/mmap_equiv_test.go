package core

// Out-of-core equivalence: a graph served from a read-only mmap'ed binary
// container must be indistinguishable from the same graph held in the heap.
// Every registered graph algorithm runs on both forms; the summaries and the
// full mpc.Metrics must match bit for bit (the repo's determinism contract
// extends across storage forms, not just executors). The test runs under
// -race in CI, so it also exercises concurrent-safe reads of the shared
// mapping through the parallel executor.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func TestMmapMatchesHeap(t *testing.T) {
	r := rng.New(4242)
	heap := graph.Density(220, 0.4, r)
	heap.AssignUniformWeights(r, 1, 20)

	path := filepath.Join(t.TempDir(), "g.mrg")
	if err := graph.WriteContainerFile(path, heap); err != nil {
		t.Fatal(err)
	}
	mapped, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Fatal("container did not open as a mapped graph")
	}

	vcWeights := func(g *graph.Graph) []float64 {
		w := make([]float64, g.N)
		wr := rng.New(11)
		for i := range w {
			w[i] = wr.UniformWeight(1, 10)
		}
		return w
	}
	input := func(g *graph.Graph, kind InputKind) Input {
		in := Input{Graph: g}
		if kind == InputVertexCover {
			in.Cover = setcover.FromVertexCover(g, vcWeights(g))
		}
		return in
	}

	p := Params{Mu: 0.3, Seed: 99, Workers: 4}
	ran := 0
	for _, alg := range Algorithms() {
		if alg.Input == InputSetCover {
			continue // no graph involved; nothing to compare
		}
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			want, err := alg.Run(input(heap, alg.Input), p, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := alg.Run(input(mapped, alg.Input), p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Summary != want.Summary {
				t.Errorf("summary differs:\n  heap:   %s\n  mapped: %s", want.Summary, got.Summary)
			}
			if got.Metrics != want.Metrics {
				t.Errorf("metrics differ:\n  heap:   %+v\n  mapped: %+v", want.Metrics, got.Metrics)
			}
			if got.Size != want.Size || got.Weight != want.Weight ||
				got.Valid != want.Valid || got.Iterations != want.Iterations {
				t.Errorf("scalars differ: heap %+v, mapped %+v", want, got)
			}
		})
		ran++
	}
	if ran < 8 {
		t.Fatalf("only %d graph algorithms exercised; registry shrank?", ran)
	}
}

// TestMmapSharedAcrossGoroutines scans one mapping from many goroutines the
// way concurrent service jobs share a cached instance; under -race this
// proves the mapped views need no synchronization.
func TestMmapSharedAcrossGoroutines(t *testing.T) {
	r := rng.New(5)
	g := graph.Density(300, 0.4, r)
	g.AssignUniformWeights(r, 1, 5)
	path := filepath.Join(t.TempDir(), "g.mrg")
	if err := graph.WriteContainerFile(path, g); err != nil {
		t.Fatal(err)
	}
	mapped, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	wantSum := scanSum(g)
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			if got := scanSum(mapped); got != wantSum {
				errs <- os.ErrInvalid
				return
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal("concurrent mapped scan produced a different checksum")
		}
	}
}

func scanSum(g *graph.Graph) float64 {
	var sum float64
	for v := 0; v < g.N; v++ {
		nbrs, ws := g.NeighborsW(v)
		for i := range nbrs {
			sum += float64(nbrs[i]) + ws[i] + float64(g.IncidentEdges(v)[i])
		}
	}
	return sum
}
