package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
)

// MISResult is the output of the maximal independent set algorithms.
type MISResult struct {
	// Set is the maximal independent set.
	Set map[int]bool
	// Iterations is the number of hungry-greedy batches executed.
	Iterations int
	// Phases is the number of degree-threshold phases executed.
	Phases int
	// History records the alive-edge count measured before each iteration
	// of MISFast: the decay trajectory of Lemma A.2 (factor n^{µ/8} per
	// iteration). Unused by the other MIS variants.
	History []int64
	// Metrics are the measured MapReduce costs.
	Metrics mpc.Metrics
}

// misState is the shared distributed state of Algorithms 2 and 6: vertices
// (with adjacency lists) partitioned over data machines, per-vertex status
// and alive-degree, and the central machine's record of the independent set.
//
// The per-vertex arrays are owner-partitioned: during a round, machine k's
// RoundFunc invocation only ever writes entries of vertices it owns, so the
// rounds are race-free under a parallel executor. Random sampling decisions
// are drawn before the round starts (in machine order, then vertex order —
// the order the machines would draw in), and the round's closures read the
// resulting per-machine plans.
type misState struct {
	g       *graph.Graph
	cluster *mpc.Cluster
	r       *rng.RNG
	M       int

	owned [][]int // owned[machine]: vertices of machine, ascending

	inI       []bool // v ∈ I
	dominated []bool // v ∈ N+(I) \ I
	dI        []int  // alive degree: |N(v) \ N+(I)|, 0 if v ∈ N+(I)
}

func (s *misState) vertexOwner(v int) int { return 1 + v%(s.M-1) }

func (s *misState) aliveVertex(v int) bool { return !s.inI[v] && !s.dominated[v] }

func newMISState(g *graph.Graph, cluster *mpc.Cluster, r *rng.RNG) *misState {
	g.Build()
	s := &misState{
		g:         g,
		cluster:   cluster,
		r:         r,
		M:         cluster.M(),
		inI:       make([]bool, g.N),
		dominated: make([]bool, g.N),
		dI:        make([]int, g.N),
	}
	s.owned = partitionByOwner(g.N, s.M, s.vertexOwner)
	for v := 0; v < g.N; v++ {
		s.dI[v] = g.Degree(v)
	}
	resident := make([]int, s.M)
	for v := 0; v < g.N; v++ {
		resident[s.vertexOwner(v)] += 3 + g.Degree(v)
	}
	for machine := 1; machine < s.M; machine++ {
		cluster.SetResident(machine, resident[machine])
	}
	cluster.SetResident(0, g.N) // central: I and N+(I) bitmaps
	return s
}

// aliveNeighbours returns v's neighbours outside N+(I), scanning the
// contiguous CSR neighbour slice (no edge-id indirection).
func (s *misState) aliveNeighbours(v int) []int64 {
	var out []int64
	for _, u := range s.g.Neighbors(v) {
		if !s.inI[u] && !s.dominated[u] {
			out = append(out, int64(u))
		}
	}
	return out
}

// addToIFromLists marks the vertices in add as members of I and their listed
// alive neighbours as dominated, returning the newly dominated vertices
// (including the I members themselves for ownership notification purposes).
type centralBatch struct {
	added        []int
	newDominated []int
}

// disseminate ships the batch results back to the vertex owners (one routed
// round), then lets owners notify their dominated vertices' neighbours so
// every alive vertex can update dI (a second routed round plus a delivery
// round), mirroring the update step of Theorem 3.3's proof sketch.
func (s *misState) disseminate(batch centralBatch) error {
	// Round 1: central tells each owner which of its vertices entered I or
	// became dominated. Only the central machine acts on an empty inbox;
	// rounds 2 and 3 are driven entirely by delivered records.
	s.cluster.Arm(0)
	err := s.cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		if machine != 0 {
			return
		}
		for _, v := range batch.added {
			out.SendInts(s.vertexOwner(v), int64(v), 1)
		}
		for _, v := range batch.newDominated {
			out.SendInts(s.vertexOwner(v), int64(v), 0)
		}
	})
	if err != nil {
		return err
	}
	// Round 2: owners record the status change and broadcast "v left the
	// alive set" to the owners of v's neighbours.
	err = s.cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for msg, ok := in.Next(); ok; msg, ok = in.Next() {
			v := int(msg.Ints[0])
			if msg.Ints[1] == 1 {
				s.inI[v] = true
			} else {
				s.dominated[v] = true
			}
			s.dI[v] = 0
			for _, u := range s.g.Neighbors(v) {
				out.SendInts(s.vertexOwner(int(u)), int64(u))
			}
		}
	})
	if err != nil {
		return err
	}
	// Round 3: owners decrement dI of their still-alive vertices once per
	// removed neighbour.
	return s.cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for msg, ok := in.Next(); ok; msg, ok = in.Next() {
			u := int(msg.Ints[0])
			if s.aliveVertex(u) && s.dI[u] > 0 {
				s.dI[u]--
			}
		}
	})
}

// centralProcessGroups runs the hungry-greedy inner loop on the central
// machine: candidates arrive in groups; from each group the first vertex
// whose current alive degree (w.r.t. the central machine's view of N+(I))
// is at least threshold joins I. Candidate lists were computed against the
// alive set at sampling time; the central machine re-filters them against
// its batch-local dominated set, exactly as the paper's central machine can
// (it holds the sampled neighbour lists).
func (s *misState) centralProcessGroups(groups [][]candidate, threshold int) centralBatch {
	return s.centralProcessGroupsWithState(groups, threshold, make(map[int]bool))
}

type candidate struct {
	v         int
	aliveNbrs []int64
}

// sampleToCentral performs the sampling round: every vertex for which
// include(v) is true joins the sample with probability prob and ships
// (v, alive neighbour list) to the central machine. The sampling decisions
// are drawn up front in machine order, then vertex order — the order the
// machines would draw in — into a per-machine plan, which the round's
// closures replay concurrently. The returned candidates are in submission
// order (machine order, then vertex order), which the central machine chops
// into groups.
func (s *misState) sampleToCentral(include func(v int) bool, prob float64) ([]candidate, error) {
	plan := make([][]candidate, s.M)
	var sample []candidate
	for machine := 1; machine < s.M; machine++ {
		for _, v := range s.owned[machine] {
			if !include(v) || !s.r.Bernoulli(prob) {
				continue
			}
			cand := candidate{v: v, aliveNbrs: s.aliveNeighbours(v)}
			plan[machine] = append(plan[machine], cand)
			sample = append(sample, cand)
		}
	}
	armPlanned(s.cluster, plan)
	err := s.cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
		for _, cand := range plan[machine] {
			out.Begin(0)
			out.Int(int64(cand.v))
			out.Ints(cand.aliveNbrs...)
			out.End()
		}
	})
	if err != nil {
		return nil, err
	}
	return sample, nil
}

// chopGroups splits a shuffled sample into groups of the given size.
func chopGroups(r *rng.RNG, sample []candidate, groupSize int) [][]candidate {
	r.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
	if groupSize < 1 {
		groupSize = 1
	}
	var groups [][]candidate
	for i := 0; i < len(sample); i += groupSize {
		end := i + groupSize
		if end > len(sample) {
			end = len(sample)
		}
		groups = append(groups, sample[i:end])
	}
	return groups
}

// finishCentrally gathers the remaining alive vertices with their alive
// adjacency onto the central machine (one round) and completes the
// independent set greedily.
func (s *misState) finishCentrally() error {
	leftovers, err := s.sampleToCentral(s.aliveVertex, 1)
	if err != nil {
		return err
	}
	sort.Slice(leftovers, func(i, j int) bool { return leftovers[i].v < leftovers[j].v })
	blocked := make(map[int]bool)
	var batch centralBatch
	for _, cand := range leftovers {
		if blocked[cand.v] {
			continue
		}
		batch.added = append(batch.added, cand.v)
		blocked[cand.v] = true
		for _, u := range cand.aliveNbrs {
			if !blocked[int(u)] {
				batch.newDominated = append(batch.newDominated, int(u))
				blocked[int(u)] = true
			}
		}
	}
	return s.disseminate(batch)
}

// aliveEdgeCount aggregates Σ_v alive dI(v) / 2 = |E_k| over the tree.
func (s *misState) aliveEdgeCount(tree *mpc.Tree) (int64, error) {
	counts := make([]int64, s.M)
	for v := 0; v < s.g.N; v++ {
		if s.aliveVertex(v) {
			counts[s.vertexOwner(v)] += int64(s.dI[v])
		}
	}
	total, err := tree.AllReduceSum(s.cluster, 1, func(machine int) []int64 {
		return []int64{counts[machine]}
	})
	if err != nil {
		return 0, err
	}
	return total[0] / 2, nil
}

// result assembles the final MISResult. The membership bitmap s.inI is the
// internal representation; the public map shape is a single pre-sized
// conversion (no per-insert rehash growth).
func (s *misState) result(iterations, phases int) *MISResult {
	return &MISResult{
		Set:        graph.VertexSet(s.inI),
		Iterations: iterations,
		Phases:     phases,
		Metrics:    s.cluster.Metrics(),
	}
}

// MIS is Algorithm 2: the warm-up hungry-greedy maximal independent set in
// O(1/µ²) rounds (Theorem 3.3). Phases i = 1..1/α (α = µ/2) reduce the
// maximum alive degree from n^{1-(i-1)α} to n^{1-iα}; within a phase, heavy
// vertices (alive degree ≥ n^{1-iα}) are sampled in groups of n^{µ/2} and
// the central machine adds one qualifying vertex per group.
func MIS(g *graph.Graph, p Params) (*MISResult, error) {
	n := g.N
	if n == 0 {
		return &MISResult{Set: map[int]bool{}}, nil
	}
	etaWords := eta(n, p.Mu, 8)
	M := dataMachines(3*n+2*g.M(), 4*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)
	s := newMISState(g, cluster, r)

	alpha := p.Mu / 2
	if alpha <= 0 {
		alpha = 0.05
	}
	phases := int(math.Ceil(1 / alpha))
	nf := float64(n)
	groupSize := int(math.Ceil(math.Pow(nf, p.Mu/2)))
	iterations := 0

	for i := 1; i <= phases; i++ {
		thresholdF := math.Pow(nf, 1-float64(i)*alpha)
		threshold := int(math.Ceil(thresholdF))
		if threshold < 1 {
			threshold = 1
		}
		heavyMin := math.Pow(nf, float64(i)*alpha) // while |V_H| >= n^{iα}
		for {
			if iterations >= p.maxIter() {
				return nil, fmt.Errorf("core: MIS exceeded %d iterations", p.maxIter())
			}
			// Count heavy vertices (aggregated over the tree).
			counts := make([]int64, M)
			for v := 0; v < n; v++ {
				if s.aliveVertex(v) && s.dI[v] >= threshold {
					counts[s.vertexOwner(v)]++
				}
			}
			total, err := tree.AllReduceSum(cluster, 1, func(machine int) []int64 {
				return []int64{counts[machine]}
			})
			if err != nil {
				return nil, err
			}
			heavy := total[0]
			if heavy == 0 {
				break
			}
			if float64(heavy) < heavyMin {
				// Line 12: fewer than n^{iα} heavy vertices remain; gather
				// them and finish the phase centrally with a greedy MIS
				// restricted to V_H.
				heavySet := func(v int) bool { return s.aliveVertex(v) && s.dI[v] >= threshold }
				sample, err := s.sampleToCentral(heavySet, 1)
				if err != nil {
					return nil, err
				}
				sort.Slice(sample, func(a, b int) bool { return sample[a].v < sample[b].v })
				groups := make([][]candidate, len(sample))
				for k := range sample {
					groups[k] = sample[k : k+1]
				}
				batch := s.centralProcessGroups(groups, 0)
				if err := s.disseminate(batch); err != nil {
					return nil, err
				}
				iterations++
				break
			}
			// Draw ~n^{iα} groups of n^{µ/2} heavy vertices via
			// self-sampling (each heavy vertex joins with probability
			// groups*groupSize/|V_H|).
			target := heavyMin * float64(groupSize)
			prob := math.Min(1, target/float64(heavy))
			heavySet := func(v int) bool { return s.aliveVertex(v) && s.dI[v] >= threshold }
			sample, err := s.sampleToCentral(heavySet, prob)
			if err != nil {
				return nil, err
			}
			groups := chopGroups(r, sample, groupSize)
			batch := s.centralProcessGroups(groups, threshold)
			if err := s.disseminate(batch); err != nil {
				return nil, err
			}
			iterations++
		}
	}
	// All alive vertices now have dI < n^{1-phases*α} ≤ 1, i.e. dI = 0:
	// gather and add them all.
	if err := s.finishCentrally(); err != nil {
		return nil, err
	}
	return s.result(iterations, phases), nil
}

// MISFast is Algorithm 6: the improved hungry-greedy maximal independent
// set in O(c/µ) rounds (Theorem A.3). Each iteration buckets alive vertices
// into degree classes V_{k,i} = {v : n^{1-iα} ≤ d_I(v) < n^{1-(i-1)α}},
// samples n^{(i+1)α} groups of n^{µ/2} vertices from each class, and the
// central machine adds one vertex with d_I ≥ n^{1-(i+1)α} per group; the
// alive edge count drops by a factor n^{µ/8} per iteration w.h.p.
// (Lemma A.2). When fewer than n^{1+µ} edges remain the residual graph is
// gathered and finished centrally.
func MISFast(g *graph.Graph, p Params) (*MISResult, error) {
	n := g.N
	if n == 0 {
		return &MISResult{Set: map[int]bool{}}, nil
	}
	etaWords := eta(n, p.Mu, 8)
	M := dataMachines(3*n+2*g.M(), 4*etaWords)
	cluster := newCluster(M, etaWords, p, capSlack)
	defer cluster.Close()
	tree := mpc.NewTree(cluster, 0, treeDegree(n, p.Mu))
	r := rng.New(p.Seed)
	s := newMISState(g, cluster, r)

	alpha := p.Mu / 8
	if alpha <= 0 {
		alpha = 0.0125
	}
	classes := int(math.Ceil(1 / alpha))
	nf := float64(n)
	groupSize := int(math.Ceil(math.Pow(nf, p.Mu/2)))
	iterations := 0
	var history []int64

	for {
		if iterations >= p.maxIter() {
			return nil, fmt.Errorf("core: MISFast exceeded %d iterations", p.maxIter())
		}
		edges, err := s.aliveEdgeCount(tree)
		if err != nil {
			return nil, err
		}
		history = append(history, edges)
		if float64(edges) < math.Pow(nf, 1+p.Mu) {
			break
		}
		iterations++
		// One sampling round covers all degree classes: each alive vertex
		// knows its class from d_I and self-samples with the class's rate.
		classOf := func(v int) int {
			if !s.aliveVertex(v) || s.dI[v] == 0 {
				return -1
			}
			d := float64(s.dI[v])
			// class i: n^{1-iα} <= d < n^{1-(i-1)α}
			i := int(math.Ceil((1 - math.Log(d)/math.Log(nf)) / alpha))
			if i < 1 {
				i = 1
			}
			if i > classes {
				i = classes
			}
			return i
		}
		classCounts := make([]int64, classes+1)
		machineClassCounts := make([][]int64, M)
		for machine := range machineClassCounts {
			machineClassCounts[machine] = make([]int64, classes+1)
		}
		for v := 0; v < n; v++ {
			if i := classOf(v); i >= 1 {
				machineClassCounts[s.vertexOwner(v)][i]++
			}
		}
		totals, err := tree.AllReduceSum(cluster, classes+1, func(machine int) []int64 {
			return machineClassCounts[machine]
		})
		if err != nil {
			return nil, err
		}
		copy(classCounts, totals)

		sampleProb := func(v int) float64 {
			i := classOf(v)
			if i < 1 || classCounts[i] == 0 {
				return 0
			}
			target := math.Pow(nf, float64(i+1)*alpha) * float64(groupSize)
			return math.Min(1, target/float64(classCounts[i]))
		}
		// Draw the sampling decisions machine by machine (each machine's
		// vertices in ascending order), then replay the per-machine plans
		// inside the round.
		byClass := make([][]candidate, classes+1)
		plan := make([][]candidate, M)
		for machine := 1; machine < M; machine++ {
			for _, v := range s.owned[machine] {
				i := classOf(v)
				if i < 1 || !r.Bernoulli(sampleProb(v)) {
					continue
				}
				cand := candidate{v: v, aliveNbrs: s.aliveNeighbours(v)}
				plan[machine] = append(plan[machine], cand)
				byClass[i] = append(byClass[i], cand)
			}
		}
		armPlanned(cluster, plan)
		err = cluster.Round(func(machine int, in *mpc.Inbox, out *mpc.Outbox) {
			for _, cand := range plan[machine] {
				out.Begin(0)
				out.Int(int64(cand.v))
				out.Ints(cand.aliveNbrs...)
				out.End()
			}
		})
		if err != nil {
			return nil, err
		}
		// Central machine: process classes in increasing i; threshold for
		// class i is n^{1-(i+1)α}.
		var batch centralBatch
		batchDominated := make(map[int]bool)
		for i := 1; i <= classes; i++ {
			if len(byClass[i]) == 0 {
				continue
			}
			threshold := int(math.Ceil(math.Pow(nf, 1-float64(i+1)*alpha)))
			if threshold < 1 {
				threshold = 1
			}
			groups := chopGroups(r, byClass[i], groupSize)
			sub := s.centralProcessGroupsWithState(groups, threshold, batchDominated)
			batch.added = append(batch.added, sub.added...)
			batch.newDominated = append(batch.newDominated, sub.newDominated...)
		}
		if err := s.disseminate(batch); err != nil {
			return nil, err
		}
	}
	if err := s.finishCentrally(); err != nil {
		return nil, err
	}
	res := s.result(iterations, 0)
	res.History = history
	return res, nil
}

// centralProcessGroupsWithState is centralProcessGroups sharing a dominated
// set across multiple class batches within the same iteration.
func (s *misState) centralProcessGroupsWithState(groups [][]candidate, threshold int, batchDominated map[int]bool) centralBatch {
	var batch centralBatch
	isAlive := func(v int) bool {
		return s.aliveVertex(v) && !batchDominated[v]
	}
	for _, group := range groups {
		for _, cand := range group {
			if !isAlive(cand.v) {
				continue
			}
			deg := 0
			for _, u := range cand.aliveNbrs {
				if isAlive(int(u)) {
					deg++
				}
			}
			if deg < threshold {
				continue
			}
			batch.added = append(batch.added, cand.v)
			batchDominated[cand.v] = true
			for _, u := range cand.aliveNbrs {
				if isAlive(int(u)) {
					batch.newDominated = append(batch.newDominated, int(u))
					batchDominated[int(u)] = true
				}
			}
			break
		}
	}
	return batch
}
