package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/seq"
)

func TestFilteringWeightedMatchingSmallExact(t *testing.T) {
	r := rng.New(80)
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(5)
		m := 1 + r.Intn(15)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		g.AssignUniformWeights(r, 1, 50)
		res, err := FilteringWeightedMatching(g, Params{Mu: 0.3, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsMatching(g, res.Edges) {
			t.Fatalf("trial %d: invalid matching", trial)
		}
		opt := seq.BruteForceMatching(g)
		if 8*res.Weight < opt-1e-9 {
			t.Fatalf("trial %d: weight %v < OPT/8 (OPT=%v)", trial, res.Weight, opt)
		}
	}
}

func TestFilteringWeightedMatchingRejectsNonPositive(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 0)
	if _, err := FilteringWeightedMatching(g, Params{Mu: 0.2, Seed: 1}); err == nil {
		t.Fatal("expected error for zero weight")
	}
}

func TestRLRBeatsLayeredFiltering(t *testing.T) {
	// The Figure 1 "who wins" shape: the paper's 2-approximation should
	// usually beat the prior 8-approximation on weight. Demand it on
	// average over several graphs (any single instance can tie).
	r := rng.New(81)
	winsRLR, total := 0.0, 0.0
	for trial := 0; trial < 10; trial++ {
		g := graph.Density(250, 0.3, r)
		g.AssignUniformWeights(r, 1, 1000) // wide spread stresses layering
		rlr, err := RLRMatching(g, Params{Mu: 0.25, Seed: uint64(trial)}, MatchingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lay, err := FilteringWeightedMatching(g, Params{Mu: 0.25, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		winsRLR += rlr.Weight / lay.Weight
		total++
	}
	if avg := winsRLR / total; avg < 1.0 {
		t.Fatalf("RLR/layered average weight ratio %v < 1: the 2-approx should win", avg)
	}
}

func TestFilteringWeightedMatchingUniformWeights(t *testing.T) {
	// With all weights in one class the algorithm degenerates to plain
	// filtering and the result must be a maximal matching.
	r := rng.New(82)
	g := graph.GNM(60, 200, r)
	g.AssignUnitWeights()
	res, err := FilteringWeightedMatching(g, Params{Mu: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalMatching(g, res.Edges) {
		t.Fatal("uniform-weight layered filtering must give a maximal matching")
	}
}

func TestLayeredParallelMatchingValid(t *testing.T) {
	r := rng.New(85)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(8)
		m := 1 + r.Intn(16)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := graph.GNM(n, m, r)
		g.AssignUniformWeights(r, 1, 100)
		res, err := LayeredParallelMatching(g, Params{Mu: 0.3, Seed: uint64(trial)}, 0.5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graph.IsMatching(g, res.Edges) {
			t.Fatalf("trial %d: invalid matching", trial)
		}
		// Conservative sanity bound: the merged matching keeps at least the
		// heaviest class's contribution, so it cannot be arbitrarily bad.
		opt := seq.BruteForceMatching(g)
		if 8*res.Weight < opt-1e-9 {
			t.Fatalf("trial %d: weight %v below OPT/8", trial, res.Weight)
		}
	}
}

func TestLayeredParallelFewerIterationsThanSequentialLayers(t *testing.T) {
	// The point of the parallel variant: classes filter simultaneously, so
	// the iteration count does not scale with the number of weight classes.
	r := rng.New(86)
	g := graph.Density(300, 0.4, r)
	g.AssignUniformWeights(r, 1, 10000) // many weight classes
	par, err := LayeredParallelMatching(g, Params{Mu: 0.15, Seed: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sequ, err := FilteringWeightedMatching(g, Params{Mu: 0.15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if par.Iterations > sequ.Iterations {
		t.Fatalf("parallel layers used %d iterations vs sequential %d", par.Iterations, sequ.Iterations)
	}
	if !graph.IsMatching(g, par.Edges) || !graph.IsMatching(g, sequ.Edges) {
		t.Fatal("invalid matching")
	}
}
